package s3asim_test

import (
	"fmt"

	"s3asim"
)

// ExampleRun simulates a small S3aSim application and prints which
// strategy was used and whether the output file was fully written.
func ExampleRun() {
	cfg := s3asim.DefaultConfig()
	cfg.Procs = 4
	cfg.Workload.NumQueries = 2
	cfg.Workload.NumFragments = 8
	cfg.Workload.MinResults = 10
	cfg.Workload.MaxResults = 10
	cfg.Workload.QueryHist = s3asim.UniformHistogram(100, 1000)
	cfg.Workload.DBSeqHist = s3asim.UniformHistogram(100, 5000)
	cfg.Workload.Seed = 1

	rep, err := s3asim.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("strategy=%s procs=%d covered=%v\n",
		rep.Strategy, rep.Procs, rep.FileCoverage == rep.OutputBytes)
	// Output:
	// strategy=WW-List procs=4 covered=true
}

// ExampleParseStrategy resolves strategies by their paper names.
func ExampleParseStrategy() {
	for _, name := range []string{"MW", "WW-POSIX", "WW-List", "WW-Coll"} {
		s, err := s3asim.ParseStrategy(name)
		fmt.Println(s, err == nil, s.WorkerWriting())
	}
	// Output:
	// MW true false
	// WW-POSIX true true
	// WW-List true true
	// WW-Coll true true
}

// ExampleRunProcessSweep runs a miniature Figure-2 sweep and prints the
// winner at the largest process count.
func ExampleRunProcessSweep() {
	opts := s3asim.QuickOptions()
	opts.Procs = []int{2, 4}
	opts.Strategies = []s3asim.Strategy{s3asim.MW, s3asim.WWList}
	sweep, err := s3asim.RunProcessSweep(opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mw := sweep.Cell(s3asim.MW, false, 4).Overall
	list := sweep.Cell(s3asim.WWList, false, 4).Overall
	fmt.Printf("WW-List faster than MW at 4 procs: %v\n", list < mw)
	// Output:
	// WW-List faster than MW at 4 procs: true
}

// ExampleNTHistogram shows the NT-database statistics the paper reports.
func ExampleNTHistogram() {
	h := s3asim.NTHistogram()
	fmt.Printf("min=%d mean≈%dKB-scale max>43MB=%v\n",
		h.Min(), int(h.Mean())/1000, h.Max() > 43<<20)
	// Output:
	// min=6 mean≈4KB-scale max>43MB=true
}
