package s3asim_test

import (
	"testing"

	"s3asim"
)

// TestFacadeQuickRun exercises the public API end to end at small scale.
func TestFacadeQuickRun(t *testing.T) {
	cfg := s3asim.DefaultConfig()
	cfg.Procs = 4
	cfg.Workload.NumQueries = 2
	cfg.Workload.NumFragments = 8
	cfg.Workload.MinResults = 10
	cfg.Workload.MaxResults = 15
	cfg.Workload.QueryHist = s3asim.UniformHistogram(100, 1000)
	cfg.Workload.DBSeqHist = s3asim.UniformHistogram(100, 5000)
	for _, s := range s3asim.Strategies {
		cfg.Strategy = s
		rep, err := s3asim.Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.Overall <= 0 || rep.FileCoverage != rep.OutputBytes {
			t.Fatalf("%v: bad report %+v", s, rep)
		}
	}
}

func TestFacadeStrategyNames(t *testing.T) {
	for _, s := range s3asim.Strategies {
		got, err := s3asim.ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("%v: %v %v", s, got, err)
		}
	}
}

func TestFacadeHistogramsAndWorkload(t *testing.T) {
	nt := s3asim.NTHistogram()
	if nt.Min() != 6 {
		t.Fatalf("NT min = %d", nt.Min())
	}
	wl := s3asim.DefaultWorkload()
	if wl.NumQueries != 20 || wl.NumFragments != 128 {
		t.Fatalf("default workload = %+v", wl)
	}
}

func TestFacadeQuickSweep(t *testing.T) {
	opts := s3asim.QuickOptions()
	opts.Procs = []int{2, 4}
	opts.Strategies = []s3asim.Strategy{s3asim.WWList, s3asim.MW}
	sweep, err := s3asim.RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Cell(s3asim.WWList, false, 2) == nil {
		t.Fatal("missing cell")
	}
	if sweep.OverallTable(false).NumRows() != 2 {
		t.Fatal("overall table rows")
	}
}
