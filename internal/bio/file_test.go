package bio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"s3asim/internal/stats"
)

func TestFASTAFileRoundTrip(t *testing.T) {
	db := Generate(GenSpec{NumSeqs: 20, SizeHist: stats.Uniform(50, 300), Seed: 3})
	for _, name := range []string{"db.fasta", "db.fasta.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := WriteFASTAFile(path, db.Seqs, 70); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadFASTAFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(back) != len(db.Seqs) {
			t.Fatalf("%s: %d records, want %d", name, len(back), len(db.Seqs))
		}
		for i := range back {
			if back[i].ID != db.Seqs[i].ID || !bytes.Equal(back[i].Data, db.Seqs[i].Data) {
				t.Fatalf("%s: record %d differs", name, i)
			}
		}
	}
}

func TestReadFASTAFileErrors(t *testing.T) {
	if _, err := ReadFASTAFile(filepath.Join(t.TempDir(), "missing.fasta")); err == nil {
		t.Fatal("missing file accepted")
	}
	// A .gz name with non-gzip content must fail cleanly.
	path := filepath.Join(t.TempDir(), "bad.fasta.gz")
	if err := WriteFASTAFile(filepath.Join(t.TempDir(), "tmp.fasta"), []Sequence{{ID: "a", Data: []byte("ACGT")}}, 70); err != nil {
		t.Fatal(err)
	}
	if err := writeRaw(path, ">a\nACGT\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFASTAFile(path); err == nil {
		t.Fatal("non-gzip .gz accepted")
	}
}

func writeRaw(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
