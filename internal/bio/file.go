package bio

import (
	"compress/gzip"
	"io"
	"os"
	"strings"
)

// ReadFASTAFile reads FASTA records from a file, decompressing
// transparently when the name ends in ".gz" — the paper's database is
// distributed exactly that way (nt.gz).
func ReadFASTAFile(path string) ([]Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		r = zr
	}
	return ReadFASTA(r)
}

// WriteFASTAFile writes records to a file, compressing when the name ends
// in ".gz".
func WriteFASTAFile(path string, seqs []Sequence, width int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if err := WriteFASTA(zw, seqs, width); err != nil {
			zw.Close()
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		return f.Close()
	}
	if err := WriteFASTA(f, seqs, width); err != nil {
		return err
	}
	return f.Close()
}
