// Package bio provides the sequence substrate that real database-segmented
// search tools (mpiBLAST, pioBLAST) operate on: FASTA reading and writing,
// synthetic database generation driven by size histograms (the paper uses
// the NCBI NT database's size histogram rather than its contents), and
// database segmentation into fragments.
package bio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Sequence is one FASTA record.
type Sequence struct {
	ID          string // text up to the first whitespace after '>'
	Description string // remainder of the header line
	Data        []byte // residues, newlines stripped
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Data) }

// ReadFASTA parses FASTA records from r. Lines before the first '>' header
// are an error; empty sequences are allowed (some tools emit them).
func ReadFASTA(r io.Reader) ([]Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var out []Sequence
	var cur *Sequence
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if len(text) == 0 {
			continue
		}
		if text[0] == '>' {
			out = append(out, Sequence{})
			cur = &out[len(out)-1]
			header := strings.TrimSpace(text[1:])
			if sp := strings.IndexAny(header, " \t"); sp >= 0 {
				cur.ID = header[:sp]
				cur.Description = strings.TrimSpace(header[sp+1:])
			} else {
				cur.ID = header
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("bio: line %d: sequence data before first FASTA header", line)
		}
		if strings.Contains(text, ">") {
			return nil, fmt.Errorf("bio: line %d: '>' within sequence data", line)
		}
		// Residue lines may contain stray whitespace (some emitters align
		// columns); drop all of it so sequence data is whitespace-free.
		cur.Data = append(cur.Data, dropSpace(text)...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("bio: no FASTA records found")
	}
	return out, nil
}

// WriteFASTA writes records to w, wrapping sequence lines at width
// characters (≤0 selects the conventional 70).
func WriteFASTA(w io.Writer, seqs []Sequence, width int) error {
	if width <= 0 {
		width = 70
	}
	bw := bufio.NewWriter(w)
	for i := range seqs {
		s := &seqs[i]
		if s.Description != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Description)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		for off := 0; off < len(s.Data); off += width {
			end := off + width
			if end > len(s.Data) {
				end = len(s.Data)
			}
			bw.Write(s.Data[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// dropSpace removes every ASCII whitespace byte from a residue line.
func dropSpace(s string) []byte {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n', '\v', '\f':
		default:
			out = append(out, s[i])
		}
	}
	return out
}

// ParseFASTAString is a convenience wrapper for tests and examples.
func ParseFASTAString(s string) ([]Sequence, error) {
	return ReadFASTA(bytes.NewReader([]byte(s)))
}
