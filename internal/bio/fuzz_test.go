package bio

import (
	"bytes"
	"testing"
)

// FuzzReadFASTA asserts the parser never panics and that successful parses
// survive a write/read round trip.
func FuzzReadFASTA(f *testing.F) {
	f.Add([]byte(">a desc\nACGT\nTTTT\n>b\nGGGG\n"))
	f.Add([]byte(">x\n"))
	f.Add([]byte("garbage before header\n>a\nAC"))
	f.Add([]byte(">"))
	f.Add([]byte(">a\r\nAC GT\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, err := ReadFASTA(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, seqs, 60); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		back, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(back) != len(seqs) {
			t.Fatalf("round trip lost records: %d vs %d", len(back), len(seqs))
		}
		for i := range seqs {
			if !bytes.Equal(back[i].Data, seqs[i].Data) {
				t.Fatalf("record %d data changed", i)
			}
		}
	})
}
