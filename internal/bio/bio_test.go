package bio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"s3asim/internal/stats"
)

const sampleFASTA = `>Perilla_0001 Perilla frutescens CDS
TTGGTATCCACGGAAGAGAGAGAAAATGTTGGGAATTTTCAGCGGAC
GTATAGTATCATTGCCGGAAGAGCTGGTGGCTGCCGGGAACC
>Perilla_0002
GGAGGGTGGCTGGTGGGTATTGGCGGCCCGACC

>Perilla_0003 short
ACGT
`

func TestReadFASTA(t *testing.T) {
	seqs, err := ParseFASTAString(sampleFASTA)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("records = %d, want 3", len(seqs))
	}
	if seqs[0].ID != "Perilla_0001" || seqs[0].Description != "Perilla frutescens CDS" {
		t.Fatalf("header parse: %+v", seqs[0])
	}
	if seqs[0].Len() != 47+42 {
		t.Fatalf("multiline sequence length = %d, want %d", seqs[0].Len(), 47+42)
	}
	if seqs[1].ID != "Perilla_0002" || seqs[1].Description != "" {
		t.Fatalf("bare header parse: %+v", seqs[1])
	}
	if string(seqs[2].Data) != "ACGT" {
		t.Fatalf("third sequence = %q", seqs[2].Data)
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ParseFASTAString("ACGT\n>late header\nACGT\n"); err == nil {
		t.Fatal("data before header should fail")
	}
	if _, err := ParseFASTAString(""); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := []Sequence{
		{ID: "a", Description: "first", Data: bytes.Repeat([]byte("ACGT"), 50)},
		{ID: "b", Data: []byte("TTTT")},
		{ID: "c", Description: "empty"},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, in, 60); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip records = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Description != in[i].Description ||
			!bytes.Equal(out[i].Data, in[i].Data) {
			t.Fatalf("record %d differs: %+v vs %+v", i, out[i], in[i])
		}
	}
	// Wrapping actually happened.
	lines := strings.Split(buf.String(), "\n")
	for _, l := range lines {
		if len(l) > 61 {
			t.Fatalf("line longer than width: %q", l)
		}
	}
}

func TestGenerateDatabaseDeterministic(t *testing.T) {
	spec := GenSpec{NumSeqs: 50, SizeHist: stats.Uniform(10, 100), Seed: 9}
	a := Generate(spec)
	b := Generate(spec)
	if len(a.Seqs) != 50 || a.TotalBytes != b.TotalBytes {
		t.Fatal("generation not deterministic")
	}
	for i := range a.Seqs {
		if !bytes.Equal(a.Seqs[i].Data, b.Seqs[i].Data) {
			t.Fatalf("sequence %d content differs", i)
		}
	}
}

func TestGenerateRespectsAlphabetAndSizes(t *testing.T) {
	spec := GenSpec{NumSeqs: 30, SizeHist: stats.Uniform(5, 50), Alphabet: DNAAlphabet, Seed: 2}
	db := Generate(spec)
	for i := range db.Seqs {
		n := db.Seqs[i].Len()
		if n < 5 || n > 50 {
			t.Fatalf("sequence %d length %d out of histogram", i, n)
		}
		for _, c := range db.Seqs[i].Data {
			if !strings.ContainsRune(DNAAlphabet, rune(c)) {
				t.Fatalf("sequence %d has foreign residue %c", i, c)
			}
		}
	}
	min, max, mean := db.Stats()
	if min < 5 || max > 50 || mean < 5 || mean > 50 {
		t.Fatalf("stats out of range: %d %d %.1f", min, max, mean)
	}
}

func TestPartitionCoversDatabase(t *testing.T) {
	db := Generate(GenSpec{NumSeqs: 101, SizeHist: stats.Uniform(10, 5000), Seed: 4})
	for _, k := range []int{1, 2, 7, 16, 128} {
		frags := db.Partition(k)
		if len(frags) != k {
			t.Fatalf("k=%d: %d fragments", k, len(frags))
		}
		pos := 0
		var total int64
		for i, f := range frags {
			if f.Index != i || f.Start != pos || f.End < f.Start {
				t.Fatalf("k=%d fragment %d malformed: %+v (pos %d)", k, i, f, pos)
			}
			pos = f.End
			total += f.Bytes
			seqs := db.FragmentSeqs(f)
			var b int64
			for j := range seqs {
				b += int64(seqs[j].Len())
			}
			if b != f.Bytes {
				t.Fatalf("k=%d fragment %d bytes %d, want %d", k, i, f.Bytes, b)
			}
		}
		if pos != len(db.Seqs) || total != db.TotalBytes {
			t.Fatalf("k=%d: coverage pos=%d total=%d, want %d/%d",
				k, pos, total, len(db.Seqs), db.TotalBytes)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	db := Generate(GenSpec{NumSeqs: 1000, SizeHist: stats.Uniform(100, 200), Seed: 7})
	frags := db.Partition(10)
	avg := float64(db.TotalBytes) / 10
	for _, f := range frags {
		if float64(f.Bytes) < avg*0.8 || float64(f.Bytes) > avg*1.2 {
			t.Fatalf("fragment %d bytes %d far from average %.0f", f.Index, f.Bytes, avg)
		}
	}
}

// Property: partitioning is a exact cover for any k and any database shape.
func TestPropertyPartitionExactCover(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%64) + 1
		k := int(kRaw%32) + 1
		db := Generate(GenSpec{NumSeqs: n, SizeHist: stats.Uniform(1, 500), Seed: seed})
		frags := db.Partition(k)
		pos := 0
		var total int64
		for i, fr := range frags {
			if fr.Start != pos || fr.Index != i {
				return false
			}
			pos = fr.End
			total += fr.Bytes
		}
		return pos == len(db.Seqs) && total == db.TotalBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNTLikeDatabaseMatchesPaperShape(t *testing.T) {
	db := Generate(GenSpec{NumSeqs: 3000, SizeHist: stats.NTLike(), Seed: 13})
	min, _, mean := db.Stats()
	if min < 6 {
		t.Fatalf("min sequence %d below NT minimum", min)
	}
	if mean < 1500 || mean > 20000 {
		t.Fatalf("mean %.0f wildly off the NT mean of 4401", mean)
	}
}
