package bio

import (
	"fmt"

	"s3asim/internal/stats"
)

// Alphabets for synthetic sequence generation.
const (
	DNAAlphabet     = "ACGT"
	ProteinAlphabet = "ACDEFGHIKLMNPQRSTVWY"
)

// Database is an ordered collection of sequences plus cached totals.
type Database struct {
	Seqs       []Sequence
	TotalBytes int64
}

// NewDatabase wraps sequences in a Database.
func NewDatabase(seqs []Sequence) *Database {
	db := &Database{Seqs: seqs}
	for i := range seqs {
		db.TotalBytes += int64(seqs[i].Len())
	}
	return db
}

// GenSpec describes a synthetic database: sequence count, a size histogram
// (for example stats.NTLike), an alphabet, and a seed. Everything is
// deterministic in the spec.
type GenSpec struct {
	NumSeqs  int
	SizeHist *stats.BoxHistogram
	Alphabet string
	Prefix   string // sequence ID prefix, default "SYN"
	Seed     int64
}

// Generate synthesizes a database. Each sequence's length and content are
// drawn from an independent substream of the seed, so the database is
// stable under any partitioning.
func Generate(spec GenSpec) *Database {
	if spec.NumSeqs < 1 {
		panic("bio: NumSeqs must be >= 1")
	}
	if spec.Alphabet == "" {
		spec.Alphabet = DNAAlphabet
	}
	if spec.Prefix == "" {
		spec.Prefix = "SYN"
	}
	seqs := make([]Sequence, spec.NumSeqs)
	for i := range seqs {
		rng := stats.SubRand(spec.Seed, int64(i))
		n := spec.SizeHist.Sample(rng)
		data := make([]byte, n)
		for j := range data {
			data[j] = spec.Alphabet[rng.Intn(len(spec.Alphabet))]
		}
		seqs[i] = Sequence{
			ID:          fmt.Sprintf("%s%07d", spec.Prefix, i),
			Description: fmt.Sprintf("synthetic length=%d", n),
			Data:        data,
		}
	}
	return NewDatabase(seqs)
}

// Fragment is one database segment: a contiguous run of sequences.
type Fragment struct {
	Index      int
	Start, End int // sequence index range [Start, End)
	Bytes      int64
}

// Partition segments the database into k fragments of contiguous sequences
// with approximately equal total bytes — database segmentation as in
// mpiBLAST (paper Fig. 1). Fragments may be empty when k exceeds the
// sequence count.
func (db *Database) Partition(k int) []Fragment {
	if k < 1 {
		panic("bio: need at least one fragment")
	}
	frags := make([]Fragment, k)
	seq := 0
	remaining := db.TotalBytes
	for i := 0; i < k; i++ {
		frags[i].Index = i
		frags[i].Start = seq
		target := remaining / int64(k-i)
		var got int64
		for seq < len(db.Seqs) && (i == k-1 || got < target) {
			got += int64(db.Seqs[seq].Len())
			seq++
		}
		frags[i].End = seq
		frags[i].Bytes = got
		remaining -= got
	}
	return frags
}

// FragmentSeqs returns the sequences of fragment f.
func (db *Database) FragmentSeqs(f Fragment) []Sequence {
	return db.Seqs[f.Start:f.End]
}

// Stats computes min/mean/max sequence lengths.
func (db *Database) Stats() (min, max int64, mean float64) {
	if len(db.Seqs) == 0 {
		return 0, 0, 0
	}
	min = int64(db.Seqs[0].Len())
	for i := range db.Seqs {
		n := int64(db.Seqs[i].Len())
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	mean = float64(db.TotalBytes) / float64(len(db.Seqs))
	return
}
