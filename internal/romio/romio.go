// Package romio implements a simulated MPI-IO layer in the spirit of
// ROMIO/ADIO over the simulated MPI (internal/mpi) and PVFS2
// (internal/pvfs) substrates. It provides:
//
//   - individual contiguous writes (MPI_File_write_at),
//   - individual noncontiguous writes with three ADIO methods — plain POSIX
//     (one file-system request per segment, issued sequentially), PVFS2
//     native list I/O (one batched request per server, issued in parallel),
//     and generic data sieving (read-modify-write of a sieve buffer),
//   - collective writes (MPI_File_write_at_all) using the two-phase
//     algorithm: entry synchronization, redistribution of data to
//     aggregator-owned file domains over the simulated network, aggregator
//     writes, and exit synchronization,
//   - MPI_File_sync.
//
// The hints structure mirrors the ROMIO hints the paper manipulates
// (cb_nodes, buffer sizes, individual-write method).
package romio

import (
	"fmt"

	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
)

// Method selects the ADIO implementation used for individual noncontiguous
// writes.
type Method int

const (
	// Posix issues one contiguous file-system write per segment,
	// sequentially — MPI_File_write without optimization (paper §2.3).
	Posix Method = iota
	// ListIO uses PVFS2's native list interface: segments batched into one
	// request per server, all servers engaged in parallel (paper §2.3,
	// [Ching et al. 2002]).
	ListIO
	// DataSieve uses ROMIO's generic write data sieving: read a sieve
	// buffer covering the extent, overlay the segments, write it back.
	DataSieve
)

// String returns the method's conventional name.
func (m Method) String() string {
	switch m {
	case Posix:
		return "posix"
	case ListIO:
		return "list"
	case DataSieve:
		return "sieve"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// CollMethod selects the collective-write implementation.
type CollMethod int

const (
	// TwoPhase is ROMIO's default: entry synchronization, redistribution
	// of data to aggregator-owned file domains, aggregated writes, exit
	// synchronization.
	TwoPhase CollMethod = iota
	// ListSync is the collective the paper's conclusion proposes: every
	// rank writes its own segments with native list I/O, bracketed by
	// barriers — no redistribution, no aggregators. ("a collective I/O
	// method implemented with list I/O and forced synchronization may be a
	// more efficient collective I/O method than the default two phase I/O
	// method in ROMIO")
	ListSync
)

// String names the collective method.
func (m CollMethod) String() string {
	if m == ListSync {
		return "list-sync"
	}
	return "two-phase"
}

// Hints mirrors the MPI-IO hints relevant to the paper's experiments.
type Hints struct {
	// CBNodes is the number of two-phase aggregators (cb_nodes);
	// 0 means every participant aggregates.
	CBNodes int
	// CollWriteMethod selects the collective-write algorithm.
	CollWriteMethod CollMethod
	// IndWriteMethod selects the individual noncontiguous write path.
	IndWriteMethod Method
	// SieveBufferSize is the data-sieving window (ind_wr_buffer_size);
	// 0 defaults to 512 KB.
	SieveBufferSize int64
	// TwoPhasePlanPerSeg models the per-segment access-pattern processing
	// every participant performs in ROMIO's two-phase algorithm (offset
	// flattening and file-domain assignment are computed over the *union*
	// of all ranks' segments, on every rank). 0 defaults to 400 µs.
	TwoPhasePlanPerSeg des.Time
}

// DefaultHints matches ROMIO defaults as configured in the paper: two-phase
// collective I/O with all ranks aggregating, 512 KB sieve buffers.
func DefaultHints() Hints {
	return Hints{
		IndWriteMethod:     ListIO,
		SieveBufferSize:    512 * 1024,
		TwoPhasePlanPerSeg: 400 * des.Microsecond,
	}
}

// Validate bounds-checks the hints. A zero SieveBufferSize means "use the
// default"; any other value must be a power of two of at least 4 KiB, because
// the sieve window walk degenerates (zero-length read-modify-write windows
// that never consume a segment) for smaller or odd sizes.
func (h Hints) Validate() error {
	if h.CBNodes < 0 {
		return fmt.Errorf("romio: cb_nodes %d is negative", h.CBNodes)
	}
	if h.CollWriteMethod != TwoPhase && h.CollWriteMethod != ListSync {
		return fmt.Errorf("romio: unknown collective write method %d", int(h.CollWriteMethod))
	}
	if h.IndWriteMethod != Posix && h.IndWriteMethod != ListIO && h.IndWriteMethod != DataSieve {
		return fmt.Errorf("romio: unknown individual write method %d", int(h.IndWriteMethod))
	}
	if s := h.SieveBufferSize; s != 0 {
		if s < 4096 || s&(s-1) != 0 {
			return fmt.Errorf("romio: ind_wr_buffer_size %d must be 0 (default) or a power of two >= 4 KiB", s)
		}
	}
	if h.TwoPhasePlanPerSeg < 0 {
		return fmt.Errorf("romio: two-phase plan cost %v is negative", h.TwoPhasePlanPerSeg)
	}
	return nil
}

// sieveBuffer resolves the sieve window size, clamping the degenerate <= 0
// case to the 512 KB ROMIO default.
func (h Hints) sieveBuffer() int64 {
	if h.SieveBufferSize <= 0 {
		return 512 * 1024
	}
	return h.SieveBufferSize
}

// File is an MPI-IO file handle shared by all ranks of a world: the
// underlying PVFS2 file plus one storage port per node, so file traffic
// contends with message traffic on the same NICs.
type File struct {
	w     *mpi.World
	pv    *pvfs.File
	hints Hints
	ports []*pvfs.Port // indexed by rank
}

// Open collectively creates/opens name on fs for every rank of w. It must
// be called from a simulated process (typically rank 0 before the run, or
// any setup proc).
func Open(p *des.Proc, w *mpi.World, fs *pvfs.FileSystem, name string, hints Hints) *File {
	if hints.SieveBufferSize <= 0 {
		hints.SieveBufferSize = 512 * 1024
	}
	pv := fs.Lookup(name)
	if pv == nil {
		pv = fs.Create(p, name)
	}
	f := &File{w: w, pv: pv, hints: hints}
	bw := w.Config().Bandwidth
	for i := 0; i < w.Size(); i++ {
		send, recv := w.NodeNIC(i)
		f.ports = append(f.ports, &pvfs.Port{Send: send, Recv: recv, Bandwidth: bw})
	}
	return f
}

// PV exposes the underlying PVFS file for verification and reporting.
func (f *File) PV() *pvfs.File { return f.pv }

// Hints returns the hints the file was opened with.
func (f *File) Hints() Hints { return f.hints }

// port returns rank r's storage port.
func (f *File) port(r *mpi.Rank) *pvfs.Port { return f.ports[r.Rank()] }

// WriteAt performs an individual contiguous write from rank r.
func (f *File) WriteAt(r *mpi.Rank, off, n int64, data []byte) {
	f.pv.Write(r.Proc(), f.port(r), off, n, data)
}

// ReadAt performs an individual contiguous read from rank r, returning the
// stored bytes when the file system captures data (nil otherwise).
func (f *File) ReadAt(r *mpi.Rank, off, n int64) []byte {
	return f.pv.Read(r.Proc(), f.port(r), off, n)
}

// WriteSegs performs an individual noncontiguous write of segs from rank r
// using the hinted ADIO method. The methods live in WriteSegsOp (so FSM
// processes can run them resumably); this wrapper drives it to completion
// for goroutine processes.
func (f *File) WriteSegs(r *mpi.Rank, segs []pvfs.Segment) {
	var op WriteSegsOp
	op.Init(f, r, segs)
	op.Step()
}

// WriteSegsHinted is WriteSegs with a per-call hint override — the adaptive
// controller's path, where the individual-write method and sieve window vary
// per batch instead of being fixed at Open.
func (f *File) WriteSegsHinted(r *mpi.Rank, segs []pvfs.Segment, h Hints) {
	var op WriteSegsOp
	op.InitHinted(f, r, segs, h)
	op.Step()
}

// Sync flushes the file from rank r (MPI_File_sync).
func (f *File) Sync(r *mpi.Rank) {
	f.pv.Sync(r.Proc(), f.port(r))
}
