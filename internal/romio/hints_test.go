package romio

import (
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
)

func TestMethodNames(t *testing.T) {
	if Posix.String() != "posix" || ListIO.String() != "list" || DataSieve.String() != "sieve" {
		t.Fatal("method names")
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method should still render")
	}
	if TwoPhase.String() != "two-phase" || ListSync.String() != "list-sync" {
		t.Fatal("collective method names")
	}
}

func TestDefaultHints(t *testing.T) {
	h := DefaultHints()
	if h.IndWriteMethod != ListIO || h.SieveBufferSize != 512*1024 {
		t.Fatalf("defaults = %+v", h)
	}
	if h.TwoPhasePlanPerSeg <= 0 {
		t.Fatal("two-phase planning cost unset")
	}
	if h.CollWriteMethod != TwoPhase {
		t.Fatal("default collective should be two-phase (ROMIO default)")
	}
}

func TestOpenDefaultsSieveBuffer(t *testing.T) {
	sim := des.New()
	w := mpi.NewWorld(sim, 1, testNet())
	fs := pvfs.New(sim, testFS())
	var f *File
	sim.Spawn("open", func(p *des.Proc) {
		f = Open(p, w, fs, "x", Hints{IndWriteMethod: DataSieve})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Hints().SieveBufferSize != 512*1024 {
		t.Fatalf("sieve buffer defaulted to %d", f.Hints().SieveBufferSize)
	}
	if f.PV() == nil {
		t.Fatal("PV accessor nil")
	}
}

func TestCBNodesClampedToGroup(t *testing.T) {
	e := newEnv(t, 3, Hints{CBNodes: 50, IndWriteMethod: ListIO})
	g := e.f.NewGroup([]int{0, 1, 2})
	if got := g.numAggregators(); got != 3 {
		t.Fatalf("aggregators = %d, want clamped to 3", got)
	}
	if g.Size() != 3 {
		t.Fatalf("Size = %d", g.Size())
	}
}

func TestListSyncCollectiveImage(t *testing.T) {
	h := DefaultHints()
	h.CollWriteMethod = ListSync
	e := newEnv(t, 3, h)
	g := e.f.NewGroup([]int{0, 1, 2})
	const segSize = 40
	for rk := 0; rk < 3; rk++ {
		rk := rk
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			for round := 0; round < 2; round++ {
				off := int64(round*3+rk) * segSize
				g.WriteAll(r, []pvfs.Segment{
					{Offset: off, Length: segSize, Data: pattern(off, segSize)},
				})
			}
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	total := int64(2 * 3 * segSize)
	if !e.f.PV().FullyCovers(total) {
		t.Fatal("list-sync collective left gaps")
	}
	if e.f.PV().OverlappedBytes() != 0 {
		t.Fatal("list-sync collective overlapped")
	}
}

func TestForeignRankPanicsInCollective(t *testing.T) {
	e := newEnv(t, 3, DefaultHints())
	g := e.f.NewGroup([]int{0, 1})
	panicked := false
	e.w.Spawn(2, "foreign", func(r *mpi.Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		g.WriteAll(r, nil)
	})
	e.w.Spawn(0, "a", func(r *mpi.Rank) { r.Compute(des.Millisecond) })
	e.w.Spawn(1, "b", func(r *mpi.Rank) { r.Compute(des.Millisecond) })
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("foreign rank accepted into collective")
	}
}
