package romio

import (
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
)

func TestMethodNames(t *testing.T) {
	if Posix.String() != "posix" || ListIO.String() != "list" || DataSieve.String() != "sieve" {
		t.Fatal("method names")
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method should still render")
	}
	if TwoPhase.String() != "two-phase" || ListSync.String() != "list-sync" {
		t.Fatal("collective method names")
	}
}

func TestDefaultHints(t *testing.T) {
	h := DefaultHints()
	if h.IndWriteMethod != ListIO || h.SieveBufferSize != 512*1024 {
		t.Fatalf("defaults = %+v", h)
	}
	if h.TwoPhasePlanPerSeg <= 0 {
		t.Fatal("two-phase planning cost unset")
	}
	if h.CollWriteMethod != TwoPhase {
		t.Fatal("default collective should be two-phase (ROMIO default)")
	}
}

func TestOpenDefaultsSieveBuffer(t *testing.T) {
	sim := des.New()
	w := mpi.NewWorld(sim, 1, testNet())
	fs := pvfs.New(sim, testFS())
	var f *File
	sim.Spawn("open", func(p *des.Proc) {
		f = Open(p, w, fs, "x", Hints{IndWriteMethod: DataSieve})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Hints().SieveBufferSize != 512*1024 {
		t.Fatalf("sieve buffer defaulted to %d", f.Hints().SieveBufferSize)
	}
	if f.PV() == nil {
		t.Fatal("PV accessor nil")
	}
}

func TestCBNodesClampedToGroup(t *testing.T) {
	e := newEnv(t, 3, Hints{CBNodes: 50, IndWriteMethod: ListIO})
	g := e.f.NewGroup([]int{0, 1, 2})
	if got := g.numAggregators(); got != 3 {
		t.Fatalf("aggregators = %d, want clamped to 3", got)
	}
	if g.Size() != 3 {
		t.Fatalf("Size = %d", g.Size())
	}
}

func TestListSyncCollectiveImage(t *testing.T) {
	h := DefaultHints()
	h.CollWriteMethod = ListSync
	e := newEnv(t, 3, h)
	g := e.f.NewGroup([]int{0, 1, 2})
	const segSize = 40
	for rk := 0; rk < 3; rk++ {
		rk := rk
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			for round := 0; round < 2; round++ {
				off := int64(round*3+rk) * segSize
				g.WriteAll(r, []pvfs.Segment{
					{Offset: off, Length: segSize, Data: pattern(off, segSize)},
				})
			}
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	total := int64(2 * 3 * segSize)
	if !e.f.PV().FullyCovers(total) {
		t.Fatal("list-sync collective left gaps")
	}
	if e.f.PV().OverlappedBytes() != 0 {
		t.Fatal("list-sync collective overlapped")
	}
}

func TestHintsValidate(t *testing.T) {
	if err := DefaultHints().Validate(); err != nil {
		t.Fatalf("default hints invalid: %v", err)
	}
	if err := (Hints{}).Validate(); err != nil {
		t.Fatalf("zero hints invalid: %v", err)
	}
	good := []Hints{
		{SieveBufferSize: 4096},
		{SieveBufferSize: 8 * 1024 * 1024},
		{CBNodes: 128},
		{TwoPhasePlanPerSeg: des.Millisecond},
	}
	for i, h := range good {
		if err := h.Validate(); err != nil {
			t.Errorf("good case %d (%+v): %v", i, h, err)
		}
	}
	bad := []Hints{
		{CBNodes: -1},
		{SieveBufferSize: 1024},  // below 4 KiB
		{SieveBufferSize: 12288}, // not a power of two
		{SieveBufferSize: -4096},
		{TwoPhasePlanPerSeg: -des.Microsecond},
		{IndWriteMethod: Method(7)},
		{CollWriteMethod: CollMethod(7)},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad case %d (%+v): Validate accepted it", i, h)
		}
	}
}

func TestSieveZeroBufferTerminates(t *testing.T) {
	// A zero/negative ind_wr_buffer_size used to arm a degenerate sieve loop:
	// winHi == winLo, so no segment ever left the carry list. The hinted path
	// clamps it to the 512 KB default; pin that the write terminates and
	// lands every byte.
	for _, size := range []int64{0, -1} {
		e := newEnv(t, 1, DefaultHints())
		const segSize = 64
		e.w.Spawn(0, "r0", func(r *mpi.Rank) {
			e.f.WriteSegsHinted(r, []pvfs.Segment{
				{Offset: 0, Length: segSize, Data: pattern(0, segSize)},
				{Offset: 2 * segSize, Length: segSize, Data: pattern(2*segSize, segSize)},
			}, Hints{IndWriteMethod: DataSieve, SieveBufferSize: size})
		})
		if err := e.sim.Run(); err != nil {
			t.Fatal(err)
		}
		// The sieve window spans the whole extent, so the read-modify-write
		// lands one contiguous image over it.
		if !e.f.PV().FullyCovers(3 * segSize) {
			t.Fatalf("sieve buffer %d: extent not covered", size)
		}
	}
}

func TestWriteSegsHintedOverridesMethod(t *testing.T) {
	// File opened with list I/O; the per-call override selects POSIX. The
	// POSIX path issues one file-system request per segment sequentially, so
	// it must take strictly longer than the batched list path on the same
	// segment set.
	segs := func() []pvfs.Segment {
		var s []pvfs.Segment
		for i := int64(0); i < 8; i++ {
			s = append(s, pvfs.Segment{Offset: i * 512, Length: 256, Data: pattern(i*512, 256)})
		}
		return s
	}
	eList := newEnv(t, 1, DefaultHints())
	var tList des.Time
	eList.w.Spawn(0, "r0", func(r *mpi.Rank) {
		eList.f.WriteSegs(r, segs())
		tList = r.Now()
	})
	if err := eList.sim.Run(); err != nil {
		t.Fatal(err)
	}
	ePosix := newEnv(t, 1, DefaultHints())
	var tPosix des.Time
	ePosix.w.Spawn(0, "r0", func(r *mpi.Rank) {
		ePosix.f.WriteSegsHinted(r, segs(), Hints{IndWriteMethod: Posix})
		tPosix = r.Now()
	})
	if err := ePosix.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if tPosix <= tList {
		t.Fatalf("posix override %v not slower than list default %v", tPosix, tList)
	}
}

func TestWriteAllHintedCBNodesOverride(t *testing.T) {
	// The round creator's hints decide cb_nodes for the whole round; a
	// one-aggregator override must still land a complete, non-overlapping
	// image.
	e := newEnv(t, 3, DefaultHints())
	g := e.f.NewGroup([]int{0, 1, 2})
	h := DefaultHints()
	h.CBNodes = 1
	const segSize = 48
	for rk := 0; rk < 3; rk++ {
		rk := rk
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			off := int64(rk) * segSize
			g.WriteAllHinted(r, []pvfs.Segment{
				{Offset: off, Length: segSize, Data: pattern(off, segSize)},
			}, h)
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.f.PV().FullyCovers(3 * segSize) {
		t.Fatal("hinted collective left gaps")
	}
	if e.f.PV().OverlappedBytes() != 0 {
		t.Fatal("hinted collective overlapped")
	}
}

func TestForeignRankPanicsInCollective(t *testing.T) {
	e := newEnv(t, 3, DefaultHints())
	g := e.f.NewGroup([]int{0, 1})
	panicked := false
	e.w.Spawn(2, "foreign", func(r *mpi.Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		g.WriteAll(r, nil)
	})
	e.w.Spawn(0, "a", func(r *mpi.Rank) { r.Compute(des.Millisecond) })
	e.w.Spawn(1, "b", func(r *mpi.Rank) { r.Compute(des.Millisecond) })
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("foreign rank accepted into collective")
	}
}
