package romio

import (
	"sort"

	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
)

// collTagBase keeps two-phase exchange tags out of the application's tag
// space.
const collTagBase = 1 << 20

// Group is a collective-I/O participant set over a File — the "all workers"
// group in S3aSim's WW-Coll strategy. Every member must call WriteAll for
// every collective round, in the same order, with its (possibly empty)
// segment list; this is the MPI_File_write_at_all contract.
type Group struct {
	f       *File
	ranks   []int
	entry   *mpi.Barrier
	exit    *mpi.Barrier
	indexOf map[int]int // rank -> position in ranks

	round uint64
	cur   *collRound
}

type collRound struct {
	id       uint64
	segs     map[int][]pvfs.Segment
	plan     *collPlan
	departed int
}

// collPlan is the deterministic two-phase exchange plan every member
// derives after the entry barrier.
type collPlan struct {
	lo, hi      int64
	aggregators []int                          // ranks that own file domains
	domains     []int64                        // domain i = [domains[i], domains[i+1])
	sendPieces  map[int]map[int][]pvfs.Segment // contributor -> aggregator -> pieces
}

// NewGroup creates a collective group over the given ranks.
func (f *File) NewGroup(ranks []int) *Group {
	if len(ranks) == 0 {
		panic("romio: empty collective group")
	}
	g := &Group{
		f:       f,
		ranks:   append([]int(nil), ranks...),
		entry:   f.w.NewBarrier(len(ranks)),
		exit:    f.w.NewBarrier(len(ranks)),
		indexOf: make(map[int]int, len(ranks)),
	}
	sort.Ints(g.ranks)
	for i, rk := range g.ranks {
		g.indexOf[rk] = i
	}
	return g
}

// Size returns the number of participants.
func (g *Group) Size() int { return len(g.ranks) }

// Deregister permanently removes a dead rank from the collective group:
// future rounds are planned over the survivors, and the entry/exit barriers
// shrink — releasing survivors already parked behind the dead rank. The
// engine's fail-stop-at-checkpoints rule guarantees the dead rank is not
// mid-round (a rank that entered a round always completes it), so the
// removal can never invalidate a live exchange plan: a built plan implies
// the entry barrier released, which implies every then-member arrived.
// Unknown ranks are ignored.
func (g *Group) Deregister(rank int) {
	i, ok := g.indexOf[rank]
	if !ok {
		return
	}
	// Copy on shrink: a retired plan may still alias the old backing array.
	g.ranks = append(append([]int(nil), g.ranks[:i]...), g.ranks[i+1:]...)
	delete(g.indexOf, rank)
	for j, rk := range g.ranks {
		g.indexOf[rk] = j
	}
	if g.cur != nil {
		delete(g.cur.segs, rank)
		if g.cur.departed >= len(g.ranks) {
			g.cur = nil
		}
	}
	g.entry.Deregister()
	g.exit.Deregister()
}

// numAggregators resolves the cb_nodes hint against the group size.
func (g *Group) numAggregators() int {
	n := g.f.hints.CBNodes
	if n <= 0 || n > len(g.ranks) {
		n = len(g.ranks)
	}
	return n
}

// WriteAll performs one collective two-phase write round. Blocks until the
// round's exit synchronization — the "inherent synchronization of
// collective I/O" whose cost the paper measures.
func (g *Group) WriteAll(r *mpi.Rank, segs []pvfs.Segment) {
	if _, ok := g.indexOf[r.Rank()]; !ok {
		panic("romio: rank not in collective group")
	}
	// Register this rank's contribution for the current round.
	if g.cur == nil {
		g.cur = &collRound{id: g.round, segs: make(map[int][]pvfs.Segment, len(g.ranks))}
		g.round++
	}
	round := g.cur
	round.segs[r.Rank()] = segs

	if g.f.hints.CollWriteMethod == ListSync {
		// The paper's proposed collective: each rank writes its own
		// segments with native list I/O as soon as it arrives, with a
		// forced synchronization only at the END of the I/O operation —
		// no entry barrier, no pattern exchange, no redistribution.
		if len(segs) > 0 {
			g.f.pv.WriteList(r.Proc(), g.f.port(r), segs)
		}
	} else {
		// Phase 0: everyone synchronizes so the exchange plan is complete.
		g.entry.Arrive(r)
		if round.plan == nil {
			round.plan = g.buildPlan(round)
		}
		plan := round.plan

		if plan != nil { // nil plan: nobody had data this round
			// Phase 1: every participant processes the union access pattern
			// (ROMIO flattens and domain-assigns all ranks' offsets locally).
			perSeg := g.f.hints.TwoPhasePlanPerSeg
			if perSeg <= 0 {
				perSeg = 400 * des.Microsecond
			}
			totalSegs := 0
			for _, rsegs := range round.segs {
				totalSegs += len(rsegs)
			}
			planStart := r.Now()
			r.Proc().Sleep(des.Time(totalSegs) * perSeg)
			if c := r.World().Causal(); c != nil {
				// Flattening the union pattern is I/O software overhead.
				c.Busy(r.Proc().Name(), causal.CatIOService, planStart, r.Now())
			}
			// Phase 2: redistribute to aggregators and write the domains.
			g.exchangeAndWrite(r, plan, round.id)
		}
	}

	// Phase 3: exit synchronization; last one out retires the round (>=
	// absorbs membership shrinking under fault-driven deregistration).
	round.departed++
	if round.departed >= len(g.ranks) {
		g.cur = nil
	}
	g.exit.Arrive(r)
}

// buildPlan computes the aggregate extent, file domains, and the
// contributor->aggregator piece matrix. Runs once per round, after the
// entry barrier, so every member's data is registered.
func (g *Group) buildPlan(round *collRound) *collPlan {
	var lo, hi int64
	first := true
	for _, segs := range round.segs {
		for _, s := range segs {
			if first || s.Offset < lo {
				lo = s.Offset
			}
			if first || s.Offset+s.Length > hi {
				hi = s.Offset + s.Length
			}
			first = false
		}
	}
	if first {
		return nil // empty round
	}
	nAgg := g.numAggregators()
	plan := &collPlan{lo: lo, hi: hi, sendPieces: make(map[int]map[int][]pvfs.Segment)}
	// ROMIO divides the aggregate extent evenly among aggregators.
	span := hi - lo
	per := (span + int64(nAgg) - 1) / int64(nAgg)
	plan.domains = make([]int64, nAgg+1)
	for i := 0; i <= nAgg; i++ {
		b := lo + int64(i)*per
		if b > hi {
			b = hi
		}
		plan.domains[i] = b
	}
	plan.aggregators = g.ranks[:nAgg]

	domainOf := func(x int64) int {
		d := int((x - lo) / per)
		if d >= nAgg {
			d = nAgg - 1
		}
		return d
	}
	for contributor, segs := range round.segs {
		for _, s := range segs {
			off, n := s.Offset, s.Length
			var pos int64
			for n > 0 {
				d := domainOf(off)
				dEnd := plan.domains[d+1]
				take := n
				if off+take > dEnd {
					take = dEnd - off
				}
				piece := pvfs.Segment{Offset: off, Length: take}
				if s.Data != nil {
					piece.Data = s.Data[pos : pos+take]
				}
				agg := plan.aggregators[d]
				m := plan.sendPieces[contributor]
				if m == nil {
					m = make(map[int][]pvfs.Segment)
					plan.sendPieces[contributor] = m
				}
				m[agg] = append(m[agg], piece)
				off += take
				pos += take
				n -= take
			}
		}
	}
	return plan
}

// exchangeAndWrite runs the data redistribution and, for aggregators, the
// domain write. Every member executes the same deterministic plan, so sends
// and receives pair up without further negotiation.
func (g *Group) exchangeAndWrite(r *mpi.Rank, plan *collPlan, roundID uint64) {
	me := r.Rank()
	tag := collTagBase + int(roundID&0xFFFF)

	// Start all outbound transfers, visiting aggregators in deterministic
	// (sorted-rank) order so the event schedule replays identically.
	var sends []*mpi.Request
	var local []pvfs.Segment
	mine := plan.sendPieces[me]
	for _, agg := range plan.aggregators {
		pieces, ok := mine[agg]
		if !ok {
			continue
		}
		if agg == me {
			local = append(local, pieces...) // no self-message
			continue
		}
		var bytes int64
		for _, pc := range pieces {
			bytes += pc.Length
		}
		sends = append(sends, r.Isend(agg, tag, bytes, pieces))
	}

	// Aggregators gather their domain.
	if isAggregator(me, plan) {
		expected := 0
		for contributor, m := range plan.sendPieces {
			if contributor == me {
				continue
			}
			if _, ok := m[me]; ok {
				expected++
			}
		}
		gathered := append([]pvfs.Segment(nil), local...)
		for i := 0; i < expected; i++ {
			msg := r.Recv(mpi.AnySource, tag)
			gathered = append(gathered, msg.Payload.([]pvfs.Segment)...)
		}
		if len(gathered) > 0 {
			coalesced := coalesce(gathered)
			g.f.pv.WriteList(r.Proc(), g.f.port(r), coalesced)
		}
	}

	r.WaitAll(sends...)
}

// isAggregator reports whether rank owns a file domain in the plan.
func isAggregator(rank int, plan *collPlan) bool {
	for _, a := range plan.aggregators {
		if a == rank {
			return true
		}
	}
	return false
}

// coalesce sorts segments by offset and merges adjacent runs — inside an
// aggregator's file domain the gathered pieces are usually dense, which is
// precisely why two-phase writes are storage-efficient.
func coalesce(segs []pvfs.Segment) []pvfs.Segment {
	sort.Slice(segs, func(i, j int) bool { return segs[i].Offset < segs[j].Offset })
	out := segs[:0:0]
	for _, s := range segs {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Offset+last.Length == s.Offset &&
				(last.Data != nil) == (s.Data != nil) {
				if last.Data != nil {
					last.Data = append(append([]byte(nil), last.Data...), s.Data...)
				}
				last.Length += s.Length
				continue
			}
		}
		out = append(out, s)
	}
	return out
}
