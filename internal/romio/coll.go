package romio

import (
	"sort"

	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
)

// collTagBase keeps two-phase exchange tags out of the application's tag
// space.
const collTagBase = 1 << 20

// Group is a collective-I/O participant set over a File — the "all workers"
// group in S3aSim's WW-Coll strategy. Every member must call WriteAll for
// every collective round, in the same order, with its (possibly empty)
// segment list; this is the MPI_File_write_at_all contract.
type Group struct {
	f       *File
	ranks   []int
	entry   *mpi.Barrier
	exit    *mpi.Barrier
	indexOf map[int]int // rank -> position in ranks

	round   uint64
	cur     *collRound
	curRead *collRound
}

type collRound struct {
	id       uint64
	segs     map[int][]pvfs.Segment
	plan     *collPlan
	departed int
	// hints are the round creator's effective hints: collective method,
	// cb_nodes, and plan cost all come from here, so a per-batch override
	// (adaptive mode) applies consistently to every member of the round.
	hints Hints
}

// collPlan is the deterministic two-phase exchange plan every member
// derives after the entry barrier.
type collPlan struct {
	lo, hi      int64
	aggregators []int                          // ranks that own file domains
	domains     []int64                        // domain i = [domains[i], domains[i+1])
	sendPieces  map[int]map[int][]pvfs.Segment // contributor -> aggregator -> pieces
}

// NewGroup creates a collective group over the given ranks.
func (f *File) NewGroup(ranks []int) *Group {
	if len(ranks) == 0 {
		panic("romio: empty collective group")
	}
	g := &Group{
		f:       f,
		ranks:   append([]int(nil), ranks...),
		entry:   f.w.NewBarrier(len(ranks)),
		exit:    f.w.NewBarrier(len(ranks)),
		indexOf: make(map[int]int, len(ranks)),
	}
	sort.Ints(g.ranks)
	for i, rk := range g.ranks {
		g.indexOf[rk] = i
	}
	return g
}

// Size returns the number of participants.
func (g *Group) Size() int { return len(g.ranks) }

// Deregister permanently removes a dead rank from the collective group:
// future rounds are planned over the survivors, and the entry/exit barriers
// shrink — releasing survivors already parked behind the dead rank. The
// engine's fail-stop-at-checkpoints rule guarantees the dead rank is not
// mid-round (a rank that entered a round always completes it), so the
// removal can never invalidate a live exchange plan: a built plan implies
// the entry barrier released, which implies every then-member arrived.
// Unknown ranks are ignored.
func (g *Group) Deregister(rank int) {
	i, ok := g.indexOf[rank]
	if !ok {
		return
	}
	// Copy on shrink: a retired plan may still alias the old backing array.
	g.ranks = append(append([]int(nil), g.ranks[:i]...), g.ranks[i+1:]...)
	delete(g.indexOf, rank)
	for j, rk := range g.ranks {
		g.indexOf[rk] = j
	}
	if g.cur != nil {
		delete(g.cur.segs, rank)
		if g.cur.departed >= len(g.ranks) {
			g.cur = nil
		}
	}
	if g.curRead != nil {
		delete(g.curRead.segs, rank)
		if g.curRead.departed >= len(g.ranks) {
			g.curRead = nil
		}
	}
	g.entry.Deregister()
	g.exit.Deregister()
}

// numAggregators resolves the file's open-time cb_nodes hint against the
// group size.
func (g *Group) numAggregators() int { return g.numAggregatorsFor(g.f.hints) }

// numAggregatorsFor resolves a cb_nodes hint against the group size.
func (g *Group) numAggregatorsFor(h Hints) int {
	n := h.CBNodes
	if n <= 0 || n > len(g.ranks) {
		n = len(g.ranks)
	}
	return n
}

// WriteAll performs one collective write round. Blocks until the round's
// exit synchronization — the "inherent synchronization of collective I/O"
// whose cost the paper measures. The round itself lives in CollWriteOp (so
// FSM processes can run it resumably); this wrapper drives it to completion
// for goroutine processes.
func (g *Group) WriteAll(r *mpi.Rank, segs []pvfs.Segment) {
	var op CollWriteOp
	op.Init(g, r, segs)
	op.Step()
}

// WriteAllHinted is WriteAll with a per-round hint override (see
// CollWriteOp.InitHinted for the first-arriver-stamps-the-round rule).
func (g *Group) WriteAllHinted(r *mpi.Rank, segs []pvfs.Segment, h Hints) {
	var op CollWriteOp
	op.InitHinted(g, r, segs, h)
	op.Step()
}

// buildPlan computes the aggregate extent, file domains, and the
// contributor->aggregator piece matrix. Runs once per round, after the
// entry barrier, so every member's data is registered.
func (g *Group) buildPlan(round *collRound) *collPlan {
	var lo, hi int64
	first := true
	for _, segs := range round.segs {
		for _, s := range segs {
			if first || s.Offset < lo {
				lo = s.Offset
			}
			if first || s.Offset+s.Length > hi {
				hi = s.Offset + s.Length
			}
			first = false
		}
	}
	if first {
		return nil // empty round
	}
	nAgg := g.numAggregatorsFor(round.hints)
	plan := &collPlan{lo: lo, hi: hi, sendPieces: make(map[int]map[int][]pvfs.Segment)}
	// ROMIO divides the aggregate extent evenly among aggregators.
	span := hi - lo
	per := (span + int64(nAgg) - 1) / int64(nAgg)
	plan.domains = make([]int64, nAgg+1)
	for i := 0; i <= nAgg; i++ {
		b := lo + int64(i)*per
		if b > hi {
			b = hi
		}
		plan.domains[i] = b
	}
	plan.aggregators = g.ranks[:nAgg]

	domainOf := func(x int64) int {
		d := int((x - lo) / per)
		if d >= nAgg {
			d = nAgg - 1
		}
		return d
	}
	for contributor, segs := range round.segs {
		for _, s := range segs {
			off, n := s.Offset, s.Length
			var pos int64
			for n > 0 {
				d := domainOf(off)
				dEnd := plan.domains[d+1]
				take := n
				if off+take > dEnd {
					take = dEnd - off
				}
				piece := pvfs.Segment{Offset: off, Length: take}
				if s.Data != nil {
					piece.Data = s.Data[pos : pos+take]
				}
				agg := plan.aggregators[d]
				m := plan.sendPieces[contributor]
				if m == nil {
					m = make(map[int][]pvfs.Segment)
					plan.sendPieces[contributor] = m
				}
				m[agg] = append(m[agg], piece)
				off += take
				pos += take
				n -= take
			}
		}
	}
	return plan
}

// isAggregator reports whether rank owns a file domain in the plan.
func isAggregator(rank int, plan *collPlan) bool {
	for _, a := range plan.aggregators {
		if a == rank {
			return true
		}
	}
	return false
}

// coalesce sorts segments by offset and merges adjacent runs — inside an
// aggregator's file domain the gathered pieces are usually dense, which is
// precisely why two-phase writes are storage-efficient.
func coalesce(segs []pvfs.Segment) []pvfs.Segment {
	sort.Slice(segs, func(i, j int) bool { return segs[i].Offset < segs[j].Offset })
	out := segs[:0:0]
	for _, s := range segs {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Offset+last.Length == s.Offset &&
				(last.Data != nil) == (s.Data != nil) {
				if last.Data != nil {
					last.Data = append(append([]byte(nil), last.Data...), s.Data...)
				}
				last.Length += s.Length
				continue
			}
		}
		out = append(out, s)
	}
	return out
}
