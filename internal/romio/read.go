package romio

import (
	"sort"

	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
)

// This file holds the romio layer's read-side resumable operations, the
// mirror of the write side in op.go: the individual noncontiguous read
// (ReadSegsOp, with POSIX / list / data-sieving ADIO methods) and the
// collective read (CollReadOp, two-phase or list-sync). Both serve
// goroutine and FSM processes identically; the blocking File.ReadSegs and
// Group.ReadAll wrappers are Init + one Step.

// collReadTagBase keeps collective-read exchange tags disjoint from the
// collective-write tag space, so interleaved read and write rounds can
// never cross-match.
const collReadTagBase = 1 << 21

// ReadSegsOp is an individual noncontiguous read of a segment list as a
// resumable operation. The method mirrors the write side: Posix issues one
// contiguous read per segment sequentially, ListIO one batched list-I/O
// request per server, and DataSieve reads whole sieve-buffer windows and
// extracts the wanted ranges (read sieving has no write-back, so its only
// cost over list I/O is the extra bytes pulled through the servers).
type ReadSegsOp struct {
	f      *File
	r      *mpi.Rank
	method Method
	segs   []pvfs.Segment
	data   [][]byte // per original segment; nil entries unless capturing
	issue  pvfs.IssueOp
	pc     uint8

	// Posix state: next segment to read.
	i     int
	armed bool

	// Data-sieving state: the remaining sorted sub-ranges and the current
	// window (same windowing as the write sieve in WriteSegsOp).
	sorted []sieveRange
	winLo  int64
	winN   int64
	last   int64
	j      int
}

// sieveRange is a pending sub-range of one original segment: where it sits
// in the file and where its bytes land in the caller's output.
type sieveRange struct {
	off, n int64
	idx    int   // original segment index
	pos    int64 // byte position within that segment
}

const (
	rsegsDone uint8 = iota
	rsegsPosix
	rsegsList
	rsegsSieveHead
	rsegsSieveRead
)

// Init arms the op for rank r over segs using the given ADIO read method.
// An empty list completes immediately.
func (op *ReadSegsOp) Init(f *File, r *mpi.Rank, method Method, segs []pvfs.Segment) {
	op.f, op.r, op.method, op.segs = f, r, method, segs
	op.data = nil
	if len(segs) == 0 {
		op.pc = rsegsDone
		return
	}
	op.data = make([][]byte, len(segs))
	switch method {
	case Posix:
		op.i, op.armed = 0, false
		op.pc = rsegsPosix
	case ListIO:
		op.issue.InitReadList(r.Proc(), f.pv, f.port(r), segs)
		op.pc = rsegsList
	case DataSieve:
		op.sorted = op.sorted[:0]
		for i, s := range segs {
			op.sorted = append(op.sorted, sieveRange{off: s.Offset, n: s.Length, idx: i})
		}
		sort.Slice(op.sorted, func(a, b int) bool {
			return op.sorted[a].off < op.sorted[b].off
		})
		op.pc = rsegsSieveHead
	}
}

// Step drives the read; true means every segment's bytes are in from
// storage (and, when the file system captures data, in Data()).
func (op *ReadSegsOp) Step() bool {
	f, r := op.f, op.r
	p, port := r.Proc(), f.port(r)
	for {
		switch op.pc {
		case rsegsDone:
			return true
		case rsegsPosix:
			// One contiguous file-system read per segment, sequentially —
			// MPI_File_read without optimization.
			for op.i < len(op.segs) {
				if !op.armed {
					s := op.segs[op.i]
					op.issue.InitRead(p, f.pv, port, s.Offset, s.Length)
					op.armed = true
				}
				if !op.issue.Step() {
					return false
				}
				op.data[op.i] = op.issue.ReadData()
				op.armed = false
				op.i++
			}
			op.pc = rsegsDone
			return true
		case rsegsList:
			if !op.issue.Step() {
				return false
			}
			if got := op.issue.ReadSegsData(); got != nil {
				copy(op.data, got)
			}
			op.pc = rsegsDone
			return true
		case rsegsSieveHead:
			if len(op.sorted) == 0 {
				op.pc = rsegsDone
				return true
			}
			winLo := op.sorted[0].off
			winHi := winLo + f.hints.SieveBufferSize
			// Collect the ranges that start inside this window.
			j := 0
			last := winLo
			for j < len(op.sorted) && op.sorted[j].off < winHi {
				if end := op.sorted[j].off + op.sorted[j].n; end > last {
					last = end
				}
				j++
			}
			if last > winHi {
				last = winHi
			}
			op.winLo, op.last, op.j = winLo, last, j
			op.winN = last - winLo
			op.issue.InitRead(p, f.pv, port, winLo, op.winN)
			op.pc = rsegsSieveRead
		case rsegsSieveRead:
			if !op.issue.Step() {
				return false
			}
			img := op.issue.ReadData() // nil unless capturing
			var carry []sieveRange
			for k := 0; k < op.j; k++ {
				s := op.sorted[k]
				hi := s.off + s.n
				if hi > op.last {
					hi = op.last
				}
				if img != nil && hi > s.off {
					if op.data[s.idx] == nil {
						op.data[s.idx] = make([]byte, op.segs[s.idx].Length)
					}
					copy(op.data[s.idx][s.pos:s.pos+(hi-s.off)], img[s.off-op.winLo:hi-op.winLo])
				}
				// Any tail beyond the window re-slices into the next pass.
				if s.off+s.n > op.last {
					over := s.off + s.n - op.last
					carry = append(carry, sieveRange{
						off: op.last, n: over, idx: s.idx, pos: s.pos + s.n - over,
					})
				}
			}
			rest := append(carry, op.sorted[op.j:]...)
			sort.Slice(rest, func(a, b int) bool { return rest[a].off < rest[b].off })
			op.sorted = rest
			op.pc = rsegsSieveHead
		}
	}
}

// Data returns the bytes read per original segment, zero-filled in file
// gaps. Entries are nil unless the file system captures data. Valid only
// after Step has returned true.
func (op *ReadSegsOp) Data() [][]byte { return op.data }

// ReadSegs performs an individual noncontiguous read of segs from rank r
// using the given ADIO method, returning the per-segment bytes (nil entries
// unless the file system captures data). The methods live in ReadSegsOp so
// FSM processes can run them resumably; this wrapper drives it to
// completion for goroutine processes.
func (f *File) ReadSegs(r *mpi.Rank, method Method, segs []pvfs.Segment) [][]byte {
	var op ReadSegsOp
	op.Init(f, r, method, segs)
	op.Step()
	return op.Data()
}

// CollReadOp is Group.ReadAll as a resumable operation: one collective read
// round using the group's collective method. Two-phase runs the write
// algorithm in reverse — entry synchronization, union-pattern processing,
// aggregators list-read their file domains, redistribution of the data from
// aggregators back to contributors, exit synchronization. ListSync reads
// each rank's own segments with native list I/O and synchronizes only at
// the end. Read rounds use their own round state and tag space, so they
// interleave safely with write rounds.
type CollReadOp struct {
	g    *Group
	r    *mpi.Rank
	segs []pvfs.Segment
	data [][]byte

	round     *collRound
	plan      *collPlan
	barrier   mpi.BarrierOp
	issue     pvfs.IssueOp
	planStart des.Time

	// Exchange state (aggregator → contributor direction).
	tag      int
	sends    []*mpi.Request
	expected int
	recvd    int
	rreq     *mpi.Request
	rwait    mpi.WaitOp
	sendWait mpi.WaitAllOp

	pc uint8
}

const (
	rcollListRead  uint8 = iota // ListSync: own-segments list read in flight
	rcollEntry                  // two-phase: parked at the entry barrier
	rcollPlanSleep              // two-phase: paying the plan-processing cost
	rcollAggRead                // aggregator: domain list read in flight
	rcollRecv                   // contributor: gathering own pieces back
	rcollSendWait               // waiting out the outbound transfers
	rcollExit                   // parked at the exit barrier
)

// Init registers rank r's read contribution for the current read round and
// arms the op. Like CollWriteOp.Init, every group member must call it for
// every round, in the same order.
func (op *CollReadOp) Init(g *Group, r *mpi.Rank, segs []pvfs.Segment) {
	if _, ok := g.indexOf[r.Rank()]; !ok {
		panic("romio: rank not in collective group")
	}
	op.g, op.r, op.segs = g, r, segs
	op.plan = nil
	op.sends = op.sends[:0]
	op.rreq = nil
	op.data = nil
	if len(segs) > 0 {
		op.data = make([][]byte, len(segs))
	}
	if g.curRead == nil {
		g.curRead = &collRound{id: g.round, segs: make(map[int][]pvfs.Segment, len(g.ranks)), hints: g.f.hints}
		g.round++
	}
	op.round = g.curRead
	op.round.segs[r.Rank()] = segs

	if g.f.hints.CollWriteMethod == ListSync {
		// Each rank reads its own segments with native list I/O on arrival;
		// the only synchronization is the exit barrier.
		if len(segs) > 0 {
			op.issue.InitReadList(r.Proc(), g.f.pv, g.f.port(r), segs)
			op.pc = rcollListRead
			return
		}
		op.depart()
		return
	}
	op.barrier.Init(g.entry, r)
	op.pc = rcollEntry
}

// depart retires this rank from the read round (last one out clears it) and
// arms the exit barrier.
func (op *CollReadOp) depart() {
	g := op.g
	op.round.departed++
	if op.round.departed >= len(g.ranks) {
		g.curRead = nil
	}
	op.barrier.Init(g.exit, op.r)
	op.pc = rcollExit
}

// fill materializes the caller's per-segment bytes from the file's captured
// store. The costed path (reads, redistribution transfers) has already run;
// the aggregators' list reads covered exactly these bytes, so the stored
// extents are the content the exchange delivered — including any corruption
// a fault left behind.
func (op *CollReadOp) fill() {
	if !op.g.f.pv.Captures() {
		return
	}
	for i, s := range op.segs {
		op.data[i] = op.g.f.pv.ReadBack(s.Offset, s.Length)
	}
}

// Step drives the round; true means the exit synchronization has released.
func (op *CollReadOp) Step() bool {
	g, r := op.g, op.r
	p := r.Proc()
	for {
		switch op.pc {
		case rcollListRead:
			if !op.issue.Step() {
				return false
			}
			if got := op.issue.ReadSegsData(); got != nil {
				copy(op.data, got)
			}
			op.depart()
		case rcollEntry:
			if !op.barrier.Step() {
				return false
			}
			if op.round.plan == nil {
				op.round.plan = g.buildPlan(op.round)
			}
			op.plan = op.round.plan
			if op.plan == nil { // nil plan: nobody wanted data this round
				op.depart()
				continue
			}
			// Phase 1: every participant processes the union access pattern,
			// exactly as on the write side.
			perSeg := g.f.hints.TwoPhasePlanPerSeg
			if perSeg <= 0 {
				perSeg = 400 * des.Microsecond
			}
			totalSegs := 0
			for _, rsegs := range op.round.segs {
				totalSegs += len(rsegs)
			}
			op.planStart = r.Now()
			op.pc = rcollPlanSleep
			p.Sleep(des.Time(totalSegs) * perSeg)
			if p.Yielded() {
				return false
			}
		case rcollPlanSleep:
			if c := r.World().Causal(); c != nil {
				c.Busy(p.Name(), causal.CatIOService, op.planStart, r.Now())
			}
			// Phase 2: aggregators read their domains, then scatter the data
			// back to contributors — the write exchange reversed.
			op.startExchange()
		case rcollAggRead:
			if !op.issue.Step() {
				return false
			}
			// Domain data is in; launch the scatter to every contributor
			// that wanted pieces from this domain.
			me := r.Rank()
			for _, contributor := range sortedContributors(op.plan) {
				if contributor == me {
					continue
				}
				pieces, ok := op.plan.sendPieces[contributor][me]
				if !ok {
					continue
				}
				var bytes int64
				for _, pc := range pieces {
					bytes += pc.Length
				}
				op.sends = append(op.sends, r.Isend(contributor, op.tag, bytes, pieces))
			}
			op.pc = rcollRecv
		case rcollRecv:
			// Contributors gather their pieces back from the aggregators.
			for op.recvd < op.expected {
				if op.rreq == nil {
					op.rreq = r.Irecv(mpi.AnySource, op.tag)
					op.rwait.Init(r, op.rreq)
				}
				if !op.rwait.Step() {
					return false
				}
				op.rreq = nil
				op.recvd++
			}
			op.sendWait.Init(r, op.sends)
			op.pc = rcollSendWait
		case rcollSendWait:
			if !op.sendWait.Step() {
				return false
			}
			op.fill()
			op.depart()
		case rcollExit:
			return op.barrier.Step()
		}
	}
}

// startExchange arms phase 2: aggregators begin their coalesced domain list
// read; pure contributors go straight to gathering. Pairing needs no
// negotiation because every member derives the same plan.
func (op *CollReadOp) startExchange() {
	r, plan := op.r, op.plan
	me := r.Rank()
	op.tag = collReadTagBase + int(op.round.id&0xFFFF)

	// How many aggregators owe this rank data (self-owned pieces excluded).
	expected := 0
	if mine, ok := plan.sendPieces[me]; ok {
		for agg := range mine {
			if agg != me {
				expected++
			}
		}
	}
	op.expected, op.recvd = expected, 0

	if isAggregator(me, plan) {
		// Gather every piece in my domain, coalesce, and read it in one
		// list-I/O operation — dense inside a file domain, like the write.
		var domain []pvfs.Segment
		for _, contributor := range sortedContributors(plan) {
			domain = append(domain, plan.sendPieces[contributor][me]...)
		}
		if len(domain) > 0 {
			coalesced := coalesce(domain)
			op.issue.InitReadList(r.Proc(), op.g.f.pv, op.g.f.port(r), coalesced)
			op.pc = rcollAggRead
			return
		}
	}
	op.pc = rcollRecv
}

// Data returns the bytes read per original segment, zero-filled in file
// gaps. Entries are nil unless the file system captures data. Valid only
// after Step has returned true.
func (op *CollReadOp) Data() [][]byte { return op.data }

// ReadAll performs one collective read round from rank r, returning the
// per-segment bytes (nil entries unless the file system captures data).
// Blocks until the round's exit synchronization; the round itself lives in
// CollReadOp so FSM processes can run it resumably.
func (g *Group) ReadAll(r *mpi.Rank, segs []pvfs.Segment) [][]byte {
	var op CollReadOp
	op.Init(g, r, segs)
	op.Step()
	return op.Data()
}

// sortedContributors returns the plan's contributor ranks in ascending
// order, for deterministic iteration over the sendPieces map.
func sortedContributors(plan *collPlan) []int {
	out := make([]int, 0, len(plan.sendPieces))
	for c := range plan.sendPieces {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
