package romio

import (
	"sort"

	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
)

// This file holds the romio layer's resumable operations: the individual
// noncontiguous write (WriteSegsOp) and the collective write (CollWriteOp),
// in the same op/Step form as mpi's and pvfs's ops. The blocking methods on
// File and Group are wrappers (Init + one Step) over these, so goroutine and
// FSM processes execute the identical event sequence.

// StartReadAt arms op as rank r's individual contiguous read (the resumable
// form of ReadAt; fetch captured bytes with op.ReadData after completion).
func (f *File) StartReadAt(op *pvfs.IssueOp, r *mpi.Rank, off, n int64) {
	op.InitRead(r.Proc(), f.pv, f.port(r), off, n)
}

// StartWriteAt arms op as rank r's individual contiguous write (the
// resumable form of WriteAt).
func (f *File) StartWriteAt(op *pvfs.IssueOp, r *mpi.Rank, off, n int64, data []byte) {
	op.InitWrite(r.Proc(), f.pv, f.port(r), off, n, data)
}

// StartSync arms op as rank r's file sync (the resumable form of Sync).
func (f *File) StartSync(op *pvfs.IssueOp, r *mpi.Rank) {
	op.InitSync(r.Proc(), f.pv, f.port(r))
}

// WriteSegsOp is File.WriteSegs as a resumable operation: an individual
// noncontiguous write of a segment list using the hinted ADIO method.
type WriteSegsOp struct {
	f     *File
	r     *mpi.Rank
	segs  []pvfs.Segment
	hints Hints
	issue pvfs.IssueOp
	pc    uint8

	// Posix state: next segment to write.
	i     int
	armed bool

	// Data-sieving state: the remaining sorted segments and the current
	// window (see the method comment on the sieve states below).
	sorted []pvfs.Segment
	winLo  int64
	winN   int64
	last   int64
	j      int
}

const (
	segsDone uint8 = iota
	segsPosix
	segsList
	segsSieveHead
	segsSieveRead
	segsSieveWrite
)

// Init arms the op for rank r over segs using the file's open-time hints.
// An empty list completes immediately.
func (op *WriteSegsOp) Init(f *File, r *mpi.Rank, segs []pvfs.Segment) {
	op.InitHinted(f, r, segs, f.hints)
}

// InitHinted arms the op with a per-call hint override: the individual-write
// method and sieve window come from h instead of the file's open-time hints.
func (op *WriteSegsOp) InitHinted(f *File, r *mpi.Rank, segs []pvfs.Segment, h Hints) {
	op.f, op.r, op.segs, op.hints = f, r, segs, h
	if len(segs) == 0 {
		op.pc = segsDone
		return
	}
	switch h.IndWriteMethod {
	case Posix:
		op.i, op.armed = 0, false
		op.pc = segsPosix
	case ListIO:
		op.issue.InitWriteList(r.Proc(), f.pv, f.port(r), segs)
		op.pc = segsList
	case DataSieve:
		// ROMIO's generic write data sieving: for each sieve-buffer-sized
		// window of the segments' extent that contains data, read the
		// window, overlay the segments, and write it back contiguously.
		op.sorted = append([]pvfs.Segment(nil), segs...)
		sort.Slice(op.sorted, func(i, j int) bool {
			return op.sorted[i].Offset < op.sorted[j].Offset
		})
		op.pc = segsSieveHead
	}
}

// Step drives the write; true means every segment is on storage.
func (op *WriteSegsOp) Step() bool {
	f, r := op.f, op.r
	p, port := r.Proc(), f.port(r)
	for {
		switch op.pc {
		case segsDone:
			return true
		case segsPosix:
			// One contiguous file-system write per segment, sequentially —
			// MPI_File_write without optimization (paper §2.3).
			for op.i < len(op.segs) {
				if !op.armed {
					s := op.segs[op.i]
					op.issue.InitWrite(p, f.pv, port, s.Offset, s.Length, s.Data)
					op.armed = true
				}
				if !op.issue.Step() {
					return false
				}
				op.armed = false
				op.i++
			}
			return true
		case segsList:
			return op.issue.Step()
		case segsSieveHead:
			if len(op.sorted) == 0 {
				return true
			}
			winLo := op.sorted[0].Offset
			winHi := winLo + op.hints.sieveBuffer()
			// Collect the segments that start inside this window.
			j := 0
			last := winLo
			for j < len(op.sorted) && op.sorted[j].Offset < winHi {
				if end := op.sorted[j].Offset + op.sorted[j].Length; end > last {
					last = end
				}
				j++
			}
			if last > winHi {
				last = winHi
			}
			op.winLo, op.last, op.j = winLo, last, j
			op.winN = last - winLo
			// Read-modify-write the window. The read back is what makes data
			// sieving expensive for sparse write patterns.
			op.issue.InitRead(p, f.pv, port, winLo, op.winN)
			op.pc = segsSieveRead
		case segsSieveRead:
			if !op.issue.Step() {
				return false
			}
			img := op.issue.ReadData()
			if img == nil {
				img = make([]byte, op.winN)
			}
			for k := 0; k < op.j; k++ {
				s := op.sorted[k]
				lo := s.Offset
				hi := s.Offset + s.Length
				if hi > op.last {
					hi = op.last
				}
				if s.Data != nil && hi > lo {
					copy(img[lo-op.winLo:hi-op.winLo], s.Data[:hi-lo])
				}
			}
			op.issue.InitWrite(p, f.pv, port, op.winLo, op.winN, img)
			op.pc = segsSieveWrite
		case segsSieveWrite:
			if !op.issue.Step() {
				return false
			}
			// Any tail of a window segment beyond the window is re-sliced
			// into the next iteration.
			var carry []pvfs.Segment
			for k := 0; k < op.j; k++ {
				s := op.sorted[k]
				if s.Offset+s.Length > op.last {
					over := s.Offset + s.Length - op.last
					cs := pvfs.Segment{Offset: op.last, Length: over}
					if s.Data != nil {
						cs.Data = s.Data[s.Length-over:]
					}
					carry = append(carry, cs)
				}
			}
			rest := append(carry, op.sorted[op.j:]...)
			sort.Slice(rest, func(a, b int) bool { return rest[a].Offset < rest[b].Offset })
			op.sorted = rest
			op.pc = segsSieveHead
		}
	}
}

// CollWriteOp is Group.WriteAll as a resumable operation: one collective
// write round — registration, entry synchronization, plan processing, data
// redistribution, aggregator writes, and exit synchronization.
type CollWriteOp struct {
	g    *Group
	r    *mpi.Rank
	segs []pvfs.Segment

	round     *collRound
	plan      *collPlan
	barrier   mpi.BarrierOp
	issue     pvfs.IssueOp
	planStart des.Time

	// Exchange state.
	tag      int
	sends    []*mpi.Request
	gathered []pvfs.Segment
	expected int
	recvd    int
	rreq     *mpi.Request
	rwait    mpi.WaitOp
	sendWait mpi.WaitAllOp

	pc uint8
}

const (
	collListWrite uint8 = iota // ListSync: own-segments list write in flight
	collEntry                  // two-phase: parked at the entry barrier
	collPlanSleep              // two-phase: paying the plan-processing cost
	collRecv                   // aggregator: gathering contributed pieces
	collAggWrite               // aggregator: domain list write in flight
	collSendWait               // waiting out the outbound transfers
	collExit                   // parked at the exit barrier
)

// Init registers rank r's contribution for the current round and arms the
// op. Must be called exactly when the blocking WriteAll would have been:
// registration and round bookkeeping happen here.
func (op *CollWriteOp) Init(g *Group, r *mpi.Rank, segs []pvfs.Segment) {
	op.InitHinted(g, r, segs, g.f.hints)
}

// InitHinted is Init with a per-round hint override. The first rank to
// arrive stamps the round's hints; every later arrival follows the stamped
// round (the MPI_File_write_at_all contract requires all members to agree on
// the round anyway, and the adaptive master hands every worker the same
// hints per batch).
func (op *CollWriteOp) InitHinted(g *Group, r *mpi.Rank, segs []pvfs.Segment, h Hints) {
	if _, ok := g.indexOf[r.Rank()]; !ok {
		panic("romio: rank not in collective group")
	}
	op.g, op.r, op.segs = g, r, segs
	op.plan = nil
	op.sends = op.sends[:0]
	op.gathered = nil
	op.rreq = nil
	if g.cur == nil {
		g.cur = &collRound{id: g.round, segs: make(map[int][]pvfs.Segment, len(g.ranks)), hints: h}
		g.round++
	}
	op.round = g.cur
	op.round.segs[r.Rank()] = segs

	if op.round.hints.CollWriteMethod == ListSync {
		// The paper's proposed collective: each rank writes its own
		// segments with native list I/O as soon as it arrives, with a
		// forced synchronization only at the END of the I/O operation —
		// no entry barrier, no pattern exchange, no redistribution.
		if len(segs) > 0 {
			op.issue.InitWriteList(r.Proc(), g.f.pv, g.f.port(r), segs)
			op.pc = collListWrite
			return
		}
		op.depart()
		return
	}
	// Phase 0: everyone synchronizes so the exchange plan is complete.
	op.barrier.Init(g.entry, r)
	op.pc = collEntry
}

// depart retires this rank from the round (last one out clears it) and arms
// the exit barrier — phase 3 of every path through the collective.
func (op *CollWriteOp) depart() {
	g := op.g
	op.round.departed++
	if op.round.departed >= len(g.ranks) {
		g.cur = nil
	}
	op.barrier.Init(g.exit, op.r)
	op.pc = collExit
}

// Step drives the round; true means the exit synchronization has released —
// the "inherent synchronization of collective I/O" whose cost the paper
// measures.
func (op *CollWriteOp) Step() bool {
	g, r := op.g, op.r
	p := r.Proc()
	for {
		switch op.pc {
		case collListWrite:
			if !op.issue.Step() {
				return false
			}
			op.depart()
		case collEntry:
			if !op.barrier.Step() {
				return false
			}
			if op.round.plan == nil {
				op.round.plan = g.buildPlan(op.round)
			}
			op.plan = op.round.plan
			if op.plan == nil { // nil plan: nobody had data this round
				op.depart()
				continue
			}
			// Phase 1: every participant processes the union access pattern
			// (ROMIO flattens and domain-assigns all ranks' offsets locally).
			perSeg := op.round.hints.TwoPhasePlanPerSeg
			if perSeg <= 0 {
				perSeg = 400 * des.Microsecond
			}
			totalSegs := 0
			for _, rsegs := range op.round.segs {
				totalSegs += len(rsegs)
			}
			op.planStart = r.Now()
			op.pc = collPlanSleep
			p.Sleep(des.Time(totalSegs) * perSeg)
			if p.Yielded() {
				return false
			}
		case collPlanSleep:
			if c := r.World().Causal(); c != nil {
				// Flattening the union pattern is I/O software overhead.
				c.Busy(p.Name(), causal.CatIOService, op.planStart, r.Now())
			}
			// Phase 2: redistribute to aggregators and write the domains.
			op.startExchange()
		case collRecv:
			// Aggregators gather their domain.
			for op.recvd < op.expected {
				if op.rreq == nil {
					op.rreq = r.Irecv(mpi.AnySource, op.tag)
					op.rwait.Init(r, op.rreq)
				}
				if !op.rwait.Step() {
					return false
				}
				op.gathered = append(op.gathered, op.rreq.Message().Payload.([]pvfs.Segment)...)
				op.rreq = nil
				op.recvd++
			}
			if len(op.gathered) > 0 {
				coalesced := coalesce(op.gathered)
				op.issue.InitWriteList(p, g.f.pv, g.f.port(r), coalesced)
				op.pc = collAggWrite
				continue
			}
			op.sendWait.Init(r, op.sends)
			op.pc = collSendWait
		case collAggWrite:
			if !op.issue.Step() {
				return false
			}
			op.sendWait.Init(r, op.sends)
			op.pc = collSendWait
		case collSendWait:
			if !op.sendWait.Step() {
				return false
			}
			op.depart()
		case collExit:
			return op.barrier.Step()
		}
	}
}

// startExchange launches the redistribution: outbound transfers to
// aggregators in deterministic (sorted-rank) order, self-contributions kept
// local, and — on aggregators — the gather accounting. Sends and receives
// pair up without negotiation because every member executes the same plan.
func (op *CollWriteOp) startExchange() {
	r, plan := op.r, op.plan
	me := r.Rank()
	op.tag = collTagBase + int(op.round.id&0xFFFF)

	var local []pvfs.Segment
	mine := plan.sendPieces[me]
	for _, agg := range plan.aggregators {
		pieces, ok := mine[agg]
		if !ok {
			continue
		}
		if agg == me {
			local = append(local, pieces...) // no self-message
			continue
		}
		var bytes int64
		for _, pc := range pieces {
			bytes += pc.Length
		}
		op.sends = append(op.sends, r.Isend(agg, op.tag, bytes, pieces))
	}

	if isAggregator(me, plan) {
		expected := 0
		for contributor, m := range plan.sendPieces {
			if contributor == me {
				continue
			}
			if _, ok := m[me]; ok {
				expected++
			}
		}
		op.expected, op.recvd = expected, 0
		op.gathered = append([]pvfs.Segment(nil), local...)
		op.pc = collRecv
		return
	}
	op.sendWait.Init(r, op.sends)
	op.pc = collSendWait
}
