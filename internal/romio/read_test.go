package romio

import (
	"bytes"
	"testing"

	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
)

func TestReadSegsAllMethodsReturnWrittenBytes(t *testing.T) {
	segs := sparseSegs(7, 9, 45, 30)
	for _, m := range []Method{Posix, ListIO, DataSieve} {
		e := newEnv(t, 1, DefaultHints())
		var got [][]byte
		e.w.Spawn(0, "r0", func(r *mpi.Rank) {
			e.f.WriteSegs(r, segs)
			got = e.f.ReadSegs(r, m, segs)
		})
		if err := e.sim.Run(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(got) != len(segs) {
			t.Fatalf("%v: %d results for %d segments", m, len(got), len(segs))
		}
		for i, s := range segs {
			if !bytes.Equal(got[i], s.Data) {
				t.Fatalf("%v: segment %d content mismatch", m, i)
			}
		}
	}
}

// TestReadSegsZeroFillsHoles reads a range that was never written plus one
// spanning written and unwritten bytes: every method must agree with the
// file's sparse semantics.
func TestReadSegsZeroFillsHoles(t *testing.T) {
	written := pvfs.Segment{Offset: 100, Length: 50, Data: pattern(100, 50)}
	reads := []pvfs.Segment{
		{Offset: 0, Length: 40},   // pure hole
		{Offset: 80, Length: 100}, // hole + extent + hole
		{Offset: 120, Length: 10}, // interior
	}
	want := make([][]byte, len(reads))
	for i, s := range reads {
		want[i] = make([]byte, s.Length)
		for j := int64(0); j < s.Length; j++ {
			off := s.Offset + j
			if off >= written.Offset && off < written.Offset+written.Length {
				want[i][j] = written.Data[off-written.Offset]
			}
		}
	}
	for _, m := range []Method{Posix, ListIO, DataSieve} {
		e := newEnv(t, 1, DefaultHints())
		var got [][]byte
		e.w.Spawn(0, "r0", func(r *mpi.Rank) {
			e.f.WriteSegs(r, []pvfs.Segment{written})
			got = e.f.ReadSegs(r, m, reads)
		})
		if err := e.sim.Run(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i := range reads {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%v: read %d = %v, want %v", m, i, got[i], want[i])
			}
		}
	}
}

// TestReadSegsSieveSmallBuffer forces multiple sieve windows and carries
// (segments larger than the buffer) on the read path.
func TestReadSegsSieveSmallBuffer(t *testing.T) {
	h := DefaultHints()
	h.SieveBufferSize = 64
	segs := []pvfs.Segment{
		{Offset: 0, Length: 200, Data: pattern(0, 200)},     // 4 windows
		{Offset: 300, Length: 30, Data: pattern(300, 30)},   // own window
		{Offset: 340, Length: 100, Data: pattern(340, 100)}, // carries past 2 windows
	}
	e := newEnv(t, 1, h)
	var got [][]byte
	e.w.Spawn(0, "r0", func(r *mpi.Rank) {
		e.f.WriteSegs(r, segs)
		got = e.f.ReadSegs(r, DataSieve, segs)
	})
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, s := range segs {
		if !bytes.Equal(got[i], s.Data) {
			t.Fatalf("segment %d: sieve read mismatch", i)
		}
	}
}

// TestCollectiveReadImage writes interleaved segments with a collective
// round, then reads them back with a collective read round: every rank must
// get exactly its own contribution, under both collective methods.
func TestCollectiveReadImage(t *testing.T) {
	for _, cm := range []CollMethod{TwoPhase, ListSync} {
		const n = 4
		h := DefaultHints()
		h.CollWriteMethod = cm
		e := newEnv(t, n, h)
		g := e.f.NewGroup([]int{0, 1, 2, 3})
		const segSize = 50
		perRank := make([][]pvfs.Segment, n)
		for i := 0; i < 32; i++ {
			off := int64(i) * segSize
			perRank[i%n] = append(perRank[i%n],
				pvfs.Segment{Offset: off, Length: segSize, Data: pattern(off, segSize)})
		}
		got := make([][][]byte, n)
		for rk := 0; rk < n; rk++ {
			rk := rk
			e.w.Spawn(rk, "r", func(r *mpi.Rank) {
				g.WriteAll(r, perRank[rk])
				got[rk] = g.ReadAll(r, perRank[rk])
			})
		}
		if err := e.sim.Run(); err != nil {
			t.Fatalf("%v: %v", cm, err)
		}
		for rk := 0; rk < n; rk++ {
			for i, s := range perRank[rk] {
				if !bytes.Equal(got[rk][i], s.Data) {
					t.Fatalf("%v: rank %d segment %d mismatch", cm, rk, i)
				}
			}
		}
	}
}

// TestCollectiveReadEmptyContributor checks that ranks with nothing to read
// still participate in (and are released from) the round.
func TestCollectiveReadEmptyContributor(t *testing.T) {
	const n = 3
	e := newEnv(t, n, DefaultHints())
	g := e.f.NewGroup([]int{0, 1, 2})
	seg := pvfs.Segment{Offset: 0, Length: 100, Data: pattern(0, 100)}
	var got [][]byte
	done := 0
	for rk := 0; rk < n; rk++ {
		rk := rk
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			var segs []pvfs.Segment
			if rk == 1 {
				segs = []pvfs.Segment{seg}
			}
			g.WriteAll(r, segs)
			res := g.ReadAll(r, segs)
			if rk == 1 {
				got = res
			}
			done++
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if len(got) != 1 || !bytes.Equal(got[0], seg.Data) {
		t.Fatal("reading rank got wrong bytes")
	}
}

// TestInterleavedWriteReadRounds alternates collective write and read rounds:
// the separate read-round state and tag space must keep them from
// cross-matching.
func TestInterleavedWriteReadRounds(t *testing.T) {
	const n = 3
	const rounds = 3
	const segSize = 40
	e := newEnv(t, n, DefaultHints())
	g := e.f.NewGroup([]int{0, 1, 2})
	mismatches := 0
	for rk := 0; rk < n; rk++ {
		rk := rk
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			for round := 0; round < rounds; round++ {
				off := int64(round*n+rk) * segSize
				segs := []pvfs.Segment{{Offset: off, Length: segSize, Data: pattern(off, segSize)}}
				g.WriteAll(r, segs)
				got := g.ReadAll(r, segs)
				if len(got) != 1 || !bytes.Equal(got[0], segs[0].Data) {
					mismatches++
				}
			}
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if mismatches != 0 {
		t.Fatalf("%d read mismatches across interleaved rounds", mismatches)
	}
}
