package romio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
)

func testNet() mpi.NetConfig {
	return mpi.NetConfig{
		Latency:      10 * des.Microsecond,
		Bandwidth:    100e6,
		EagerLimit:   16 * 1024,
		ProcsPerNode: 1,
	}
}

func testFS() pvfs.Config {
	return pvfs.Config{
		NumServers:       4,
		StripSize:        64,
		RequestOverhead:  200 * des.Microsecond,
		SegmentOverhead:  20 * des.Microsecond,
		ServiceBandwidth: 100e6,
		SyncBase:         50 * des.Microsecond,
		SyncBandwidth:    100e6,
		MetaOverhead:     50 * des.Microsecond,
		NetLatency:       10 * des.Microsecond,
		CaptureData:      true,
	}
}

// env wires a world, a file system, and an open file.
type env struct {
	sim *des.Simulation
	w   *mpi.World
	fs  *pvfs.FileSystem
	f   *File
}

func newEnv(t *testing.T, ranks int, hints Hints) *env {
	t.Helper()
	sim := des.New()
	w := mpi.NewWorld(sim, ranks, testNet())
	fs := pvfs.New(sim, testFS())
	e := &env{sim: sim, w: w, fs: fs}
	sim.Spawn("open", func(p *des.Proc) {
		e.f = Open(p, w, fs, "out", hints)
	})
	if !sim.RunUntil(des.Second) && e.f == nil {
		t.Fatal("open did not complete")
	}
	return e
}

func pattern(off, n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((off + int64(i)) % 251)
	}
	return b
}

func TestWriteAtStoresData(t *testing.T) {
	e := newEnv(t, 1, DefaultHints())
	e.w.Spawn(0, "r0", func(r *mpi.Rank) {
		e.f.WriteAt(r, 10, 300, pattern(10, 300))
	})
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.f.PV().ReadBack(10, 300); !bytes.Equal(got, pattern(10, 300)) {
		t.Fatal("WriteAt image mismatch")
	}
}

// sparseSegs builds interleaved segments with gaps.
func sparseSegs(base int64, count int, size, gap int64) []pvfs.Segment {
	var segs []pvfs.Segment
	off := base
	for i := 0; i < count; i++ {
		segs = append(segs, pvfs.Segment{Offset: off, Length: size, Data: pattern(off, size)})
		off += size + gap
	}
	return segs
}

func TestIndividualMethodsProduceSameImage(t *testing.T) {
	segs := sparseSegs(7, 9, 45, 30)
	var total int64
	for _, s := range segs {
		if s.Offset+s.Length > total {
			total = s.Offset + s.Length
		}
	}
	images := map[Method][]byte{}
	for _, m := range []Method{Posix, ListIO, DataSieve} {
		h := DefaultHints()
		h.IndWriteMethod = m
		e := newEnv(t, 1, h)
		e.w.Spawn(0, "r0", func(r *mpi.Rank) {
			e.f.WriteSegs(r, segs)
		})
		if err := e.sim.Run(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		images[m] = e.f.PV().ReadBack(0, total)
		if m != DataSieve && e.f.PV().OverlappedBytes() != 0 {
			t.Fatalf("%v: unexpected overlap", m)
		}
	}
	if !bytes.Equal(images[Posix], images[ListIO]) {
		t.Fatal("posix and list images differ")
	}
	if !bytes.Equal(images[Posix], images[DataSieve]) {
		t.Fatal("posix and sieve images differ")
	}
}

func TestDataSievePreservesExistingBytes(t *testing.T) {
	h := DefaultHints()
	h.IndWriteMethod = DataSieve
	e := newEnv(t, 1, h)
	e.w.Spawn(0, "r0", func(r *mpi.Rank) {
		// Pre-existing data across the extent.
		e.f.WriteAt(r, 0, 200, pattern(0, 200))
		// Sieved sparse overwrite of two pieces.
		e.f.WriteSegs(r, []pvfs.Segment{
			{Offset: 20, Length: 10, Data: bytes.Repeat([]byte{0xAA}, 10)},
			{Offset: 90, Length: 10, Data: bytes.Repeat([]byte{0xBB}, 10)},
		})
	})
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	img := e.f.PV().ReadBack(0, 200)
	want := pattern(0, 200)
	copy(want[20:30], bytes.Repeat([]byte{0xAA}, 10))
	copy(want[90:100], bytes.Repeat([]byte{0xBB}, 10))
	if !bytes.Equal(img, want) {
		t.Fatal("data sieving clobbered bytes between segments")
	}
}

func TestDataSieveMultipleWindows(t *testing.T) {
	h := DefaultHints()
	h.IndWriteMethod = DataSieve
	h.SieveBufferSize = 100 // force several windows
	e := newEnv(t, 1, h)
	segs := sparseSegs(0, 12, 30, 25) // extent 0..~660, several windows
	var total int64
	for _, s := range segs {
		total = s.Offset + s.Length
	}
	e.w.Spawn(0, "r0", func(r *mpi.Rank) {
		e.f.WriteSegs(r, segs)
	})
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	img := e.f.PV().ReadBack(0, total)
	want := make([]byte, total)
	for _, s := range segs {
		copy(want[s.Offset:s.Offset+s.Length], s.Data)
	}
	if !bytes.Equal(img, want) {
		t.Fatal("multi-window sieve image mismatch")
	}
}

func TestDataSieveSegmentLargerThanBuffer(t *testing.T) {
	h := DefaultHints()
	h.IndWriteMethod = DataSieve
	h.SieveBufferSize = 64
	e := newEnv(t, 1, h)
	data := pattern(5, 300)
	e.w.Spawn(0, "r0", func(r *mpi.Rank) {
		e.f.WriteSegs(r, []pvfs.Segment{{Offset: 5, Length: 300, Data: data}})
	})
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.f.PV().ReadBack(5, 300); !bytes.Equal(got, data) {
		t.Fatal("oversized segment mishandled by sieve")
	}
}

func TestListIOFasterThanPosixForScatteredSegments(t *testing.T) {
	segs := sparseSegs(0, 16, 40, 40) // spans all 4 servers repeatedly
	run := func(m Method) des.Time {
		h := DefaultHints()
		h.IndWriteMethod = m
		e := newEnv(t, 1, h)
		var took des.Time
		e.w.Spawn(0, "r0", func(r *mpi.Rank) {
			start := r.Now()
			e.f.WriteSegs(r, segs)
			took = r.Now() - start
		})
		if err := e.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	list, posix := run(ListIO), run(Posix)
	if list >= posix {
		t.Fatalf("list (%v) should beat posix (%v) on scattered segments", list, posix)
	}
}

func TestCollectiveWriteImage(t *testing.T) {
	const n = 4
	e := newEnv(t, n, DefaultHints())
	g := e.f.NewGroup([]int{0, 1, 2, 3})
	// Interleaved round-robin segments over [0, 1600).
	const segSize = 50
	total := int64(0)
	perRank := make([][]pvfs.Segment, n)
	for i := 0; i < 32; i++ {
		off := int64(i) * segSize
		perRank[i%n] = append(perRank[i%n],
			pvfs.Segment{Offset: off, Length: segSize, Data: pattern(off, segSize)})
		total = off + segSize
	}
	var releases []des.Time
	for rk := 0; rk < n; rk++ {
		rk := rk
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			g.WriteAll(r, perRank[rk])
			releases = append(releases, r.Now())
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, total)
	for _, segs := range perRank {
		for _, s := range segs {
			copy(want[s.Offset:], s.Data)
		}
	}
	if !bytes.Equal(e.f.PV().ReadBack(0, total), want) {
		t.Fatal("collective image mismatch")
	}
	if e.f.PV().OverlappedBytes() != 0 {
		t.Fatal("collective write overlapped")
	}
	for _, at := range releases[1:] {
		if at != releases[0] {
			t.Fatalf("ranks released at different times: %v", releases)
		}
	}
}

func TestCollectiveMultipleRounds(t *testing.T) {
	const n = 3
	e := newEnv(t, n, DefaultHints())
	g := e.f.NewGroup([]int{0, 1, 2})
	const rounds = 4
	const segSize = 30
	for rk := 0; rk < n; rk++ {
		rk := rk
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			for round := 0; round < rounds; round++ {
				off := int64(round*n+rk) * segSize
				g.WriteAll(r, []pvfs.Segment{
					{Offset: off, Length: segSize, Data: pattern(off, segSize)},
				})
			}
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	total := int64(rounds * n * segSize)
	if !e.f.PV().FullyCovers(total) {
		t.Fatal("not fully covered after all rounds")
	}
	want := make([]byte, total)
	for i := int64(0); i < total; i++ {
		want[i] = byte(i % 251)
	}
	if !bytes.Equal(e.f.PV().ReadBack(0, total), want) {
		t.Fatal("multi-round collective image mismatch")
	}
}

func TestCollectiveEmptyContributor(t *testing.T) {
	const n = 3
	e := newEnv(t, n, DefaultHints())
	g := e.f.NewGroup([]int{0, 1, 2})
	for rk := 0; rk < n; rk++ {
		rk := rk
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			var segs []pvfs.Segment
			if rk == 1 {
				segs = []pvfs.Segment{{Offset: 0, Length: 100, Data: pattern(0, 100)}}
			}
			g.WriteAll(r, segs)
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e.f.PV().ReadBack(0, 100), pattern(0, 100)) {
		t.Fatal("image mismatch with empty contributors")
	}
}

func TestCollectiveAllEmptyRound(t *testing.T) {
	const n = 2
	e := newEnv(t, n, DefaultHints())
	g := e.f.NewGroup([]int{0, 1})
	done := 0
	for rk := 0; rk < n; rk++ {
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			g.WriteAll(r, nil)
			done++
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
}

func TestCollectiveCBNodesHint(t *testing.T) {
	h := DefaultHints()
	h.CBNodes = 1 // single aggregator
	const n = 4
	e := newEnv(t, n, h)
	g := e.f.NewGroup([]int{0, 1, 2, 3})
	const segSize = 40
	for rk := 0; rk < n; rk++ {
		rk := rk
		e.w.Spawn(rk, "r", func(r *mpi.Rank) {
			off := int64(rk) * segSize
			g.WriteAll(r, []pvfs.Segment{
				{Offset: off, Length: segSize, Data: pattern(off, segSize)},
			})
		})
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	total := int64(n * segSize)
	want := make([]byte, total)
	for i := range want {
		want[i] = byte(i % 251)
	}
	if !bytes.Equal(e.f.PV().ReadBack(0, total), want) {
		t.Fatal("single-aggregator image mismatch")
	}
	// With one aggregator and a fully dense extent, the write coalesces into
	// one request per server at most.
	if got := e.fs.Stats().TotalRequests; got > uint64(testFS().NumServers) {
		t.Fatalf("requests = %d, want ≤ %d (coalesced)", got, testFS().NumServers)
	}
}

func TestSyncRuns(t *testing.T) {
	e := newEnv(t, 1, DefaultHints())
	e.w.Spawn(0, "r0", func(r *mpi.Rank) {
		e.f.WriteAt(r, 0, 100, pattern(0, 100))
		before := r.Now()
		e.f.Sync(r)
		if r.Now() == before {
			t.Error("sync should take time")
		}
	})
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesce(t *testing.T) {
	segs := []pvfs.Segment{
		{Offset: 100, Length: 10, Data: bytes.Repeat([]byte{2}, 10)},
		{Offset: 0, Length: 50, Data: bytes.Repeat([]byte{1}, 50)},
		{Offset: 50, Length: 50, Data: bytes.Repeat([]byte{3}, 50)},
		{Offset: 200, Length: 10, Data: bytes.Repeat([]byte{4}, 10)},
	}
	out := coalesce(segs)
	if len(out) != 2 {
		t.Fatalf("coalesced to %d runs, want 2", len(out))
	}
	if out[0].Offset != 0 || out[0].Length != 110 {
		t.Fatalf("run 0 = %+v", out[0])
	}
	if out[1].Offset != 200 || out[1].Length != 10 {
		t.Fatalf("run 1 = %+v", out[1])
	}
	if int64(len(out[0].Data)) != out[0].Length {
		t.Fatalf("run 0 data length %d", len(out[0].Data))
	}
	if out[0].Data[49] != 1 || out[0].Data[50] != 3 || out[0].Data[100] != 2 {
		t.Fatal("coalesced data out of order")
	}
}

// Property: collective and individual list writes of the same random
// disjoint segment assignment produce identical images.
func TestPropertyCollectiveMatchesIndividual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 3
		perRank := make([][]pvfs.Segment, n)
		off := int64(0)
		for i := 0; i < 12; i++ {
			length := int64(rng.Intn(90)) + 1
			seg := pvfs.Segment{Offset: off, Length: length, Data: pattern(off, length)}
			owner := rng.Intn(n)
			perRank[owner] = append(perRank[owner], seg)
			off += length
		}
		image := func(collective bool) []byte {
			e := newEnv(t, n, DefaultHints())
			g := e.f.NewGroup([]int{0, 1, 2})
			for rk := 0; rk < n; rk++ {
				rk := rk
				e.w.Spawn(rk, "r", func(r *mpi.Rank) {
					if collective {
						g.WriteAll(r, perRank[rk])
					} else {
						e.f.WriteSegs(r, perRank[rk])
					}
				})
			}
			if err := e.sim.Run(); err != nil {
				t.Error(err)
				return nil
			}
			return e.f.PV().ReadBack(0, off)
		}
		return bytes.Equal(image(true), image(false))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
