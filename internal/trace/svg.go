package trace

import (
	"fmt"
	"sort"
	"strings"

	"s3asim/internal/des"
)

// stateColors maps the engine's phase names to timeline colors; unknown
// states hash onto the palette.
var stateColors = map[string]string{
	"Setup":             "#bbbbbb",
	"Data Distribution": "#ee6677",
	"Compute":           "#4477aa",
	"Merge Results":     "#66ccee",
	"Gather Results":    "#ccbb44",
	"I/O":               "#228833",
	"Sync":              "#aa3377",
	"Other":             "#222222",
}

var extraPalette = []string{"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"}

func stateColor(name string) string {
	if c, ok := stateColors[name]; ok {
		return c
	}
	h := 0
	for i := 0; i < len(name); i++ {
		h = h*31 + int(name[i])
	}
	if h < 0 {
		h = -h
	}
	return extraPalette[h%len(extraPalette)]
}

// GanttSVG renders state events as an SVG timeline: one row per process,
// colored bars per state, a time axis, and a legend — the Jumpshot view.
func GanttSVG(events []Event, width, height int) string {
	if width < 300 {
		width = 300
	}
	procSet := map[string]bool{}
	var tMax des.Time
	names := map[string]bool{}
	for _, e := range events {
		procSet[e.Proc] = true
		if e.End > tMax {
			tMax = e.End
		}
		if !e.Point {
			names[e.Name] = true
		}
	}
	var b strings.Builder
	if len(procSet) == 0 || tMax == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="300" height="60"><text x="150" y="30" text-anchor="middle" font-size="12">(empty trace)</text></svg>` + "\n"
	}
	procs := make([]string, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	stateNames := make([]string, 0, len(names))
	for n := range names {
		stateNames = append(stateNames, n)
	}
	sort.Strings(stateNames)

	const rowH, rowGap, left, top = 16.0, 4.0, 90.0, 28.0
	legendH := 20.0 * float64((len(stateNames)+3)/4)
	if height <= 0 {
		height = int(top + float64(len(procs))*(rowH+rowGap) + 36 + legendH)
	}
	plotW := float64(width) - left - 16
	xAt := func(t des.Time) float64 { return left + float64(t)/float64(tMax)*plotW }

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="12" font-family="sans-serif">process timeline, 0 .. %s</text>`+"\n", int(left), tMax)

	for pi, p := range procs {
		y := top + float64(pi)*(rowH+rowGap)
		fmt.Fprintf(&b, `<text x="%0.1f" y="%0.1f" font-size="10" font-family="monospace" text-anchor="end">%s</text>`+"\n",
			left-6, y+rowH-4, p)
		for _, e := range events {
			if e.Proc != p || e.Point || e.End <= e.Start {
				continue
			}
			x0, x1 := xAt(e.Start), xAt(e.End)
			if x1-x0 < 0.4 {
				x1 = x0 + 0.4
			}
			fmt.Fprintf(&b, `<rect x="%0.2f" y="%0.1f" width="%0.2f" height="%0.1f" fill="%s"><title>%s %s..%s</title></rect>`+"\n",
				x0, y, x1-x0, rowH, stateColor(e.Name), e.Name, e.Start, e.End)
		}
	}
	axisY := top + float64(len(procs))*(rowH+rowGap) + 8
	fmt.Fprintf(&b, `<line x1="%0.1f" y1="%0.1f" x2="%0.1f" y2="%0.1f" stroke="#333"/>`+"\n", left, axisY, left+plotW, axisY)
	for i := 0; i <= 4; i++ {
		t := des.Time(float64(tMax) * float64(i) / 4)
		fmt.Fprintf(&b, `<text x="%0.1f" y="%0.1f" font-size="9" font-family="sans-serif" text-anchor="middle">%.1fs</text>`+"\n",
			xAt(t), axisY+12, t.Seconds())
	}
	ly := axisY + 26
	for i, n := range stateNames {
		lx := left + float64(i%4)*130
		yRow := ly + float64(i/4)*20
		fmt.Fprintf(&b, `<rect x="%0.1f" y="%0.1f" width="10" height="10" fill="%s"/>`+"\n", lx, yRow-9, stateColor(n))
		fmt.Fprintf(&b, `<text x="%0.1f" y="%0.1f" font-size="10" font-family="sans-serif">%s</text>`+"\n", lx+14, yRow, n)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
