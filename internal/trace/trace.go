// Package trace records per-process state timelines from a simulation run
// and renders them — a lightweight stand-in for the MPE/Jumpshot tooling
// the original S3aSim used for debugging (paper §3). Events serialize to
// JSON-lines and render as an ASCII Gantt chart (cmd/s3atrace).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"s3asim/internal/des"
)

// Event is one interval of a process timeline ("state", as MPE calls it) or
// an instantaneous marker. Flow events (message arrows for the Perfetto
// exporter) are point events carrying a Flow phase plus a pairing FlowID;
// they render as arrows in Perfetto and are skipped by the text renderers
// like any other point.
type Event struct {
	Proc  string   `json:"proc"`
	Name  string   `json:"name"`
	Start des.Time `json:"start"`
	End   des.Time `json:"end"` // == Start for point events
	Point bool     `json:"point,omitempty"`
	// Flow marks this event as one end of a message arrow: FlowStart on the
	// sending process at send time, FlowFinish on the receiver at arrival.
	// Events sharing a FlowID form one arrow.
	Flow   string `json:"flow,omitempty"`
	FlowID uint64 `json:"flow_id,omitempty"`
}

// Flow phases, matching the Chrome trace-event "ph" values for flow events.
const (
	FlowStart  = "s"
	FlowFinish = "f"
)

// Tracer collects events. It is designed for the single-threaded DES
// kernel: no locking, deterministic order.
type Tracer struct {
	events []Event
	open   map[string]int // proc -> index of the open state event
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{open: make(map[string]int)} }

// BeginState closes proc's current state (if any) at 'at' and opens a new
// one named name.
func (t *Tracer) BeginState(proc, name string, at des.Time) {
	if i, ok := t.open[proc]; ok {
		t.events[i].End = at
	}
	t.events = append(t.events, Event{Proc: proc, Name: name, Start: at, End: at})
	t.open[proc] = len(t.events) - 1
}

// EndState closes proc's current state at 'at' without opening another.
func (t *Tracer) EndState(proc string, at des.Time) {
	if i, ok := t.open[proc]; ok {
		t.events[i].End = at
		delete(t.open, proc)
	}
}

// Point records an instantaneous marker.
func (t *Tracer) Point(proc, name string, at des.Time) {
	t.events = append(t.events, Event{Proc: proc, Name: name, Start: at, End: at, Point: true})
}

// Events returns the recorded events (open states have End == their last
// transition; call EndState to close them).
func (t *Tracer) Events() []Event { return t.events }

// WriteJSON writes one JSON object per line.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON parses a JSON-lines event stream.
func ReadJSON(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// Gantt renders state events as an ASCII chart: one row per process, the
// time axis scaled to width columns, each cell showing the first letter of
// the state occupying most of that cell's time span.
func Gantt(events []Event, width int) string {
	if width < 10 {
		width = 10
	}
	var tMax des.Time
	procSet := map[string]bool{}
	for _, e := range events {
		if e.End > tMax {
			tMax = e.End
		}
		procSet[e.Proc] = true
	}
	if tMax == 0 || len(procSet) == 0 {
		return "(empty trace)\n"
	}
	procs := make([]string, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Strings(procs)

	nameW := 0
	for _, p := range procs {
		if len(p) > nameW {
			nameW = len(p)
		}
	}

	runes := StateRunes(events)

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s |%s| 0 .. %v\n", nameW, "proc", strings.Repeat("-", width), tMax)
	cellSpan := float64(tMax) / float64(width)
	for _, p := range procs {
		row := make([]byte, width)
		weight := make([]float64, width)
		for i := range row {
			row[i] = ' '
		}
		for _, e := range events {
			if e.Proc != p || e.Point || e.End <= e.Start {
				continue
			}
			lo := int(float64(e.Start) / cellSpan)
			hi := int(float64(e.End) / cellSpan)
			if hi >= width {
				hi = width - 1
			}
			for c := lo; c <= hi; c++ {
				cellLo := des.Time(float64(c) * cellSpan)
				cellHi := des.Time(float64(c+1) * cellSpan)
				ovLo, ovHi := e.Start, e.End
				if cellLo > ovLo {
					ovLo = cellLo
				}
				if cellHi < ovHi {
					ovHi = cellHi
				}
				if w := float64(ovHi - ovLo); w > weight[c] {
					weight[c] = w
					row[c] = runes[e.Name]
				}
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, p, row)
	}
	b.WriteString(legend(runes))
	return b.String()
}

// fallbackRunes are handed out, in order, when none of a state name's own
// letters is free.
const fallbackRunes = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// StateRunes assigns each distinct state name in events a unique display
// rune, fixing the historical collapse of states sharing a first letter.
// Each name (in sorted order, so the assignment is deterministic) prefers
// its own alphanumeric bytes in order — "Compute" is C, "Gather Results" is
// G — then the first free fallback rune. "Sync" keeps its historical Y (the
// engine's phase set always holds both Setup and Sync). Only past 62
// distinct states do names share the '?' overflow rune.
func StateRunes(events []Event) map[string]byte {
	seen := map[string]bool{}
	var names []string
	for _, e := range events {
		if !e.Point && !seen[e.Name] {
			seen[e.Name] = true
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	assigned := map[string]byte{}
	used := map[byte]bool{}
	for _, n := range names {
		r := byte('?')
		if n == "Sync" && !used['Y'] {
			r = 'Y'
		}
		for i := 0; r == '?' && i < len(n); i++ {
			if c := n[i]; isAlnum(c) && !used[c] {
				r = c
			}
		}
		if r == '?' {
			for i := 0; i < len(fallbackRunes); i++ {
				if c := fallbackRunes[i]; !used[c] {
					r = c
					break
				}
			}
		}
		assigned[n] = r
		used[r] = true
	}
	return assigned
}

func isAlnum(c byte) bool {
	return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}

// legend lists the state-name/rune mapping in use, sorted by state name.
func legend(runes map[string]byte) string {
	names := make([]string, 0, len(runes))
	for n := range runes {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%c=%s", runes[n], n))
	}
	if len(parts) == 0 {
		return ""
	}
	return "legend: " + strings.Join(parts, " ") + "\n"
}
