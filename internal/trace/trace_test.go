package trace

import (
	"bytes"
	"strings"
	"testing"

	"s3asim/internal/des"
)

func TestStateTransitions(t *testing.T) {
	tr := New()
	tr.BeginState("p0", "Compute", 0)
	tr.BeginState("p0", "I/O", 10)
	tr.EndState("p0", 15)
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Name != "Compute" || ev[0].Start != 0 || ev[0].End != 10 {
		t.Fatalf("first = %+v", ev[0])
	}
	if ev[1].Name != "I/O" || ev[1].Start != 10 || ev[1].End != 15 {
		t.Fatalf("second = %+v", ev[1])
	}
}

func TestEndStateWithoutOpenIsNoop(t *testing.T) {
	tr := New()
	tr.EndState("ghost", 5)
	if len(tr.Events()) != 0 {
		t.Fatal("phantom event")
	}
}

func TestPointEvents(t *testing.T) {
	tr := New()
	tr.Point("p0", "flush", 7)
	ev := tr.Events()
	if len(ev) != 1 || !ev[0].Point || ev[0].Start != 7 || ev[0].End != 7 {
		t.Fatalf("point = %+v", ev)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New()
	tr.BeginState("a", "Compute", 0)
	tr.BeginState("a", "Sync", 100)
	tr.EndState("a", 150)
	tr.Point("b", "mark", 42)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr.Events()) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(tr.Events()))
	}
	for i, e := range tr.Events() {
		if back[i] != e {
			t.Fatalf("event %d: %+v vs %+v", i, back[i], e)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	tr := New()
	tr.BeginState("w1", "Compute", 0)
	tr.BeginState("w1", "I/O", 50*des.Second)
	tr.EndState("w1", 100*des.Second)
	tr.BeginState("w2", "Sync", 0)
	tr.EndState("w2", 100*des.Second)
	out := Gantt(tr.Events(), 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 2 procs + legend
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "CCCCC") || !strings.Contains(lines[1], "IIIII") {
		t.Fatalf("w1 row missing states: %q", lines[1])
	}
	if !strings.Contains(lines[2], "YYYY") {
		t.Fatalf("w2 row should be sync (Y): %q", lines[2])
	}
	if !strings.Contains(lines[3], "Y=Sync") || !strings.Contains(lines[3], "C=Compute") {
		t.Fatalf("legend wrong: %q", lines[3])
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := Gantt(nil, 40); !strings.Contains(out, "empty") {
		t.Fatalf("empty trace rendering: %q", out)
	}
}

func TestGanttDominantStateWins(t *testing.T) {
	tr := New()
	// Cell span will be 10s with width 10 over 100s: a 1s blip inside a
	// 9s state must not own the cell.
	tr.BeginState("p", "Compute", 0)
	tr.BeginState("p", "I/O", 9*des.Second)
	tr.BeginState("p", "Compute", 10*des.Second)
	tr.EndState("p", 100*des.Second)
	out := Gantt(tr.Events(), 10)
	row := strings.Split(out, "\n")[1]
	if strings.Contains(row, "I") {
		t.Fatalf("1s blip should not own a 10s cell: %q", row)
	}
}

func TestGanttSVG(t *testing.T) {
	tr := New()
	tr.BeginState("worker01", "Compute", 0)
	tr.BeginState("worker01", "I/O", 40*des.Second)
	tr.EndState("worker01", 60*des.Second)
	tr.BeginState("master0", "Data Distribution", 0)
	tr.EndState("master0", 60*des.Second)
	svg := GanttSVG(tr.Events(), 800, 0)
	for _, want := range []string{"<svg", "</svg>", "worker01", "master0",
		"Compute", "I/O", "Data Distribution", "rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 {
		t.Fatal("malformed SVG")
	}
}

func TestGanttSVGEmpty(t *testing.T) {
	if !strings.Contains(GanttSVG(nil, 400, 0), "empty trace") {
		t.Fatal("empty trace not flagged")
	}
}

func TestStateColorsStable(t *testing.T) {
	if stateColor("Compute") != stateColor("Compute") {
		t.Fatal("color not stable")
	}
	if stateColor("made-up-state") == "" {
		t.Fatal("unknown state has no color")
	}
}
