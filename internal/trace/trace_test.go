package trace

import (
	"bytes"
	"strings"
	"testing"

	"s3asim/internal/des"
)

func TestStateTransitions(t *testing.T) {
	tr := New()
	tr.BeginState("p0", "Compute", 0)
	tr.BeginState("p0", "I/O", 10)
	tr.EndState("p0", 15)
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Name != "Compute" || ev[0].Start != 0 || ev[0].End != 10 {
		t.Fatalf("first = %+v", ev[0])
	}
	if ev[1].Name != "I/O" || ev[1].Start != 10 || ev[1].End != 15 {
		t.Fatalf("second = %+v", ev[1])
	}
}

func TestEndStateWithoutOpenIsNoop(t *testing.T) {
	tr := New()
	tr.EndState("ghost", 5)
	if len(tr.Events()) != 0 {
		t.Fatal("phantom event")
	}
}

func TestPointEvents(t *testing.T) {
	tr := New()
	tr.Point("p0", "flush", 7)
	ev := tr.Events()
	if len(ev) != 1 || !ev[0].Point || ev[0].Start != 7 || ev[0].End != 7 {
		t.Fatalf("point = %+v", ev)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New()
	tr.BeginState("a", "Compute", 0)
	tr.BeginState("a", "Sync", 100)
	tr.EndState("a", 150)
	tr.Point("b", "mark", 42)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr.Events()) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(tr.Events()))
	}
	for i, e := range tr.Events() {
		if back[i] != e {
			t.Fatalf("event %d: %+v vs %+v", i, back[i], e)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	tr := New()
	tr.BeginState("w1", "Compute", 0)
	tr.BeginState("w1", "I/O", 50*des.Second)
	tr.EndState("w1", 100*des.Second)
	tr.BeginState("w2", "Sync", 0)
	tr.EndState("w2", 100*des.Second)
	out := Gantt(tr.Events(), 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 2 procs + legend
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "CCCCC") || !strings.Contains(lines[1], "IIIII") {
		t.Fatalf("w1 row missing states: %q", lines[1])
	}
	if !strings.Contains(lines[2], "YYYY") {
		t.Fatalf("w2 row should be sync (Y): %q", lines[2])
	}
	if !strings.Contains(lines[3], "Y=Sync") || !strings.Contains(lines[3], "C=Compute") {
		t.Fatalf("legend wrong: %q", lines[3])
	}
}

// TestStateRunesUnique pins the fix for the historical first-letter
// collapse: states sharing an initial ("Compute"/"Cleanup", "Setup"/"Sync")
// must get distinct display runes.
func TestStateRunesUnique(t *testing.T) {
	tr := New()
	for _, n := range []string{"Compute", "Cleanup", "Copy", "Setup", "Sync"} {
		tr.BeginState("p", n, 0)
	}
	tr.EndState("p", 10)
	runes := StateRunes(tr.Events())
	seen := map[byte]string{}
	for name, r := range runes {
		if prev, dup := seen[r]; dup {
			t.Fatalf("rune %q assigned to both %q and %q", r, prev, name)
		}
		seen[r] = name
	}
	if runes["Sync"] != 'Y' {
		t.Fatalf("Sync = %q, want historical Y", runes["Sync"])
	}
	// Names are assigned in sorted order, each preferring its own letters:
	// "Cleanup" claims C, so "Compute" falls through to its next free byte.
	if runes["Cleanup"] != 'C' || runes["Compute"] != 'o' || runes["Copy"] != 'p' {
		t.Fatalf("assignment = %v", runes)
	}
}

func TestStateRunesFallback(t *testing.T) {
	tr := New()
	// A name with no free alphanumeric byte of its own forces the fallback.
	tr.BeginState("p", "a", 0)
	tr.BeginState("p", "aa", 1)
	tr.BeginState("p", "---", 2)
	tr.EndState("p", 3)
	runes := StateRunes(tr.Events())
	if runes["a"] == runes["aa"] {
		t.Fatalf("collision: %v", runes)
	}
	if r := runes["---"]; !isAlnum(r) {
		t.Fatalf("fallback rune %q not alphanumeric", r)
	}
}

func TestGanttLegendDistinguishesCollidingStates(t *testing.T) {
	tr := New()
	tr.BeginState("p", "Compute", 0)
	tr.BeginState("p", "Cleanup", 50*des.Second)
	tr.EndState("p", 100*des.Second)
	out := Gantt(tr.Events(), 20)
	row := strings.Split(out, "\n")[1]
	// Two different runes must appear in the row, one per state.
	if !strings.Contains(row, "C") || strings.Count(strings.TrimSpace(strings.Trim(row, "|p ")), "C") == 20 {
		t.Fatalf("row = %q", row)
	}
	legend := out[strings.Index(out, "legend:"):]
	if !strings.Contains(legend, "=Compute") || !strings.Contains(legend, "=Cleanup") {
		t.Fatalf("legend = %q", legend)
	}
	// The two states must not share a legend rune.
	runes := StateRunes(tr.Events())
	if runes["Compute"] == runes["Cleanup"] {
		t.Fatalf("states share rune %q", runes["Compute"])
	}
}

// TestJSONRoundTripOpenStates checks serialization of a tracer whose states
// were never closed (End == last transition) plus point events — the shape a
// crashed or truncated run leaves behind.
func TestJSONRoundTripOpenStates(t *testing.T) {
	tr := New()
	tr.BeginState("a", "Compute", 0)
	tr.BeginState("a", "I/O", 100) // closes Compute, stays open
	tr.Point("a", "mark", 150)
	tr.BeginState("b", "Sync", 50) // open, never touched again
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 {
		t.Fatalf("events = %d, want 4", len(back))
	}
	for i, e := range tr.Events() {
		if back[i] != e {
			t.Fatalf("event %d: %+v vs %+v", i, back[i], e)
		}
	}
	if back[1].Start != 100 || back[1].End != 100 {
		t.Fatalf("open state should round-trip with End == Start: %+v", back[1])
	}
	if !back[2].Point {
		t.Fatalf("point lost: %+v", back[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := Gantt(nil, 40); !strings.Contains(out, "empty") {
		t.Fatalf("empty trace rendering: %q", out)
	}
}

func TestGanttDominantStateWins(t *testing.T) {
	tr := New()
	// Cell span will be 10s with width 10 over 100s: a 1s blip inside a
	// 9s state must not own the cell.
	tr.BeginState("p", "Compute", 0)
	tr.BeginState("p", "I/O", 9*des.Second)
	tr.BeginState("p", "Compute", 10*des.Second)
	tr.EndState("p", 100*des.Second)
	out := Gantt(tr.Events(), 10)
	row := strings.Split(out, "\n")[1]
	if strings.Contains(row, "I") {
		t.Fatalf("1s blip should not own a 10s cell: %q", row)
	}
}

func TestGanttSVG(t *testing.T) {
	tr := New()
	tr.BeginState("worker01", "Compute", 0)
	tr.BeginState("worker01", "I/O", 40*des.Second)
	tr.EndState("worker01", 60*des.Second)
	tr.BeginState("master0", "Data Distribution", 0)
	tr.EndState("master0", 60*des.Second)
	svg := GanttSVG(tr.Events(), 800, 0)
	for _, want := range []string{"<svg", "</svg>", "worker01", "master0",
		"Compute", "I/O", "Data Distribution", "rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 {
		t.Fatal("malformed SVG")
	}
}

func TestGanttSVGEmpty(t *testing.T) {
	if !strings.Contains(GanttSVG(nil, 400, 0), "empty trace") {
		t.Fatal("empty trace not flagged")
	}
}

func TestStateColorsStable(t *testing.T) {
	if stateColor("Compute") != stateColor("Compute") {
		t.Fatal("color not stable")
	}
	if stateColor("made-up-state") == "" {
		t.Fatal("unknown state has no color")
	}
}
