package causal

import (
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

const ms = des.Millisecond

// TestWalkFollowsEdges builds the canonical two-process exchange: A computes,
// sends to B at t=10ms; B waits from 2ms, the message lands at 12ms; B then
// computes until 20ms. The path must be: B compute [12,20] ← transit [10,12]
// ← jump to A ← A compute [0,10].
func TestWalkFollowsEdges(t *testing.T) {
	r := NewRecorder()
	r.Busy("A", CatCompute, 0, 10*ms)
	r.WaitEdge("B", 2*ms, 12*ms, CatTransit, "A", 10*ms)
	r.Busy("B", CatCompute, 12*ms, 20*ms)

	att := r.CriticalPath(20 * ms)
	if err := att.Check(); err != nil {
		t.Fatal(err)
	}
	if att.EndProc != "B" {
		t.Fatalf("end proc %q, want B", att.EndProc)
	}
	if got := att.ByCat[CatCompute]; got != 18*ms {
		t.Fatalf("compute %v, want 18ms", got)
	}
	if got := att.ByCat[CatTransit]; got != 2*ms {
		t.Fatalf("transit %v, want 2ms", got)
	}
}

// TestWalkChainDecomposition pins the PVFS-style local decomposition.
func TestWalkChainDecomposition(t *testing.T) {
	r := NewRecorder()
	r.Busy("A", CatCompute, 0, 4*ms)
	r.WaitChain("A", 4*ms, 20*ms, []Segment{
		{At: 4 * ms, Cat: CatTransit},
		{At: 6 * ms, Cat: CatIOQueue},
		{At: 10 * ms, Cat: CatIOService},
		{At: 18 * ms, Cat: CatTransit},
	})
	att := r.CriticalPath(20 * ms)
	if err := att.Check(); err != nil {
		t.Fatal(err)
	}
	want := Breakdown{}
	want[CatCompute] = 4 * ms
	want[CatTransit] = 4 * ms // 2ms out + 2ms back
	want[CatIOQueue] = 4 * ms
	want[CatIOService] = 8 * ms
	if att.ByCat != want {
		t.Fatalf("got %v want %v", att.ByCat, want)
	}
}

// TestWalkGapsGoToOther: uninstrumented time must surface as CatOther, not
// vanish (that would break conservation).
func TestWalkGapsGoToOther(t *testing.T) {
	r := NewRecorder()
	r.Busy("A", CatCompute, 2*ms, 5*ms)
	// Gap [0,2), gap [5,8), then a tail beyond the last interval [8,10).
	att := r.CriticalPath(10 * ms)
	if err := att.Check(); err != nil {
		t.Fatal(err)
	}
	if got := att.ByCat[CatOther]; got != 7*ms {
		t.Fatalf("other %v, want 7ms", got)
	}
	if got := att.ByCat[CatCompute]; got != 3*ms {
		t.Fatalf("compute %v, want 3ms", got)
	}
}

// TestWalkDegenerateEdge: an edge pointing at an unknown process or into the
// future must degrade to a plain wait, never wedge or double-count.
func TestWalkDegenerateEdge(t *testing.T) {
	r := NewRecorder()
	r.WaitEdge("A", 0, 5*ms, CatSyncWait, "ghost", 3*ms)
	r.WaitEdge("A", 5*ms, 8*ms, CatTransit, "A", 9*ms) // cause after wait end
	att := r.CriticalPath(8 * ms)
	if err := att.Check(); err != nil {
		t.Fatal(err)
	}
	if att.ByCat[CatSyncWait] != 5*ms || att.ByCat[CatTransit] != 3*ms {
		t.Fatalf("got %v", att.ByCat)
	}
}

// TestWalkEmptyRecorder: a recorder that saw nothing attributes everything
// to CatOther and still conserves.
func TestWalkEmptyRecorder(t *testing.T) {
	att := NewRecorder().CriticalPath(10 * ms)
	if err := att.Check(); err != nil {
		t.Fatal(err)
	}
	if att.ByCat[CatOther] != 10*ms {
		t.Fatalf("got %v", att.ByCat)
	}
	var nilRec *Recorder
	att = nilRec.CriticalPath(10 * ms)
	if err := att.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestBetweenPartitions: windows must partition the path exactly.
func TestBetweenPartitions(t *testing.T) {
	r := NewRecorder()
	r.Busy("A", CatCompute, 0, 6*ms)
	r.WaitPlain("A", 6*ms, 10*ms, CatSyncWait)
	att := r.CriticalPath(10 * ms)
	var sum Breakdown
	sum.Add(att.Between(0, 3*ms))
	sum.Add(att.Between(3*ms, 7*ms))
	sum.Add(att.Between(7*ms, 10*ms))
	if sum != att.ByCat {
		t.Fatalf("windows %v != path %v", sum, att.ByCat)
	}
}

// TestFlowEventsPairUp: each flow yields exactly one start and one finish
// event sharing an id, with start no later than finish.
func TestFlowEventsPairUp(t *testing.T) {
	r := NewRecorder()
	r.SetCaptureFlows(true)
	r.Flow(1, "msg.3", "A", "B", 1*ms, 2*ms)
	r.Flow(2, "msg.4", "B", "A", 3*ms, 5*ms)
	evs := r.FlowEvents()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	byID := map[uint64][]trace.Event{}
	for _, e := range evs {
		if !e.Point || e.Start != e.End {
			t.Fatalf("flow event must be a point: %+v", e)
		}
		byID[e.FlowID] = append(byID[e.FlowID], e)
	}
	for id, pair := range byID {
		if len(pair) != 2 || pair[0].Flow != trace.FlowStart || pair[1].Flow != trace.FlowFinish {
			t.Fatalf("flow %d does not pair up: %+v", id, pair)
		}
		if pair[0].Start > pair[1].Start {
			t.Fatalf("flow %d finishes before it starts", id)
		}
	}
	// Flows are off by default.
	r2 := NewRecorder()
	r2.Flow(9, "m", "A", "B", 0, ms)
	if len(r2.Flows()) != 0 {
		t.Fatal("flows recorded without SetCaptureFlows")
	}
}

// TestNilRecorderSafe: every recording method must be callable on nil.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Busy("A", CatCompute, 0, ms)
	r.WaitEdge("A", 0, ms, CatTransit, "B", 0)
	r.WaitChain("A", 0, ms, nil)
	r.WaitPlain("A", 0, ms, CatOther)
	r.Flow(1, "m", "A", "B", 0, ms)
	r.SetCaptureFlows(true)
	if r.Intervals() != 0 || r.Totals() != (Breakdown{}) || r.Procs() != nil {
		t.Fatal("nil recorder accumulated state")
	}
}

// TestTotalsCountsEverything: Totals aggregates busy and blocked intervals
// across processes, decomposing chains.
func TestTotalsCountsEverything(t *testing.T) {
	r := NewRecorder()
	r.Busy("A", CatCompute, 0, 4*ms)
	r.Busy("B", CatCompute, 0, 2*ms)
	r.WaitChain("B", 2*ms, 6*ms, []Segment{
		{At: 2 * ms, Cat: CatIOQueue},
		{At: 5 * ms, Cat: CatIOService},
	})
	tot := r.Totals()
	if tot[CatCompute] != 6*ms || tot[CatIOQueue] != 3*ms || tot[CatIOService] != ms {
		t.Fatalf("got %v", tot)
	}
	if tot.Total() != 10*ms {
		t.Fatalf("total %v", tot.Total())
	}
}

// TestCriticalPathBetweenWindow pins the windowed walker: walking backward
// from (proc, hi) down to lo conserves exactly hi−lo, tiles [lo, hi), and
// follows edges across processes inside the window.
func TestCriticalPathBetweenWindow(t *testing.T) {
	r := NewRecorder()
	r.Busy("A", CatCompute, 0, 10*ms)
	r.WaitEdge("B", 2*ms, 12*ms, CatTransit, "A", 10*ms)
	r.Busy("B", CatCompute, 12*ms, 20*ms)

	// Full-range window from the furthest proc equals CriticalPath.
	full := r.CriticalPathBetween("", 0, 20*ms)
	ref := r.CriticalPath(20 * ms)
	if full.ByCat != ref.ByCat || full.EndProc != ref.EndProc {
		t.Fatalf("full window %v != CriticalPath %v", full.ByCat, ref.ByCat)
	}

	// Per-query style window: B's completion back to t=5ms. The walk bills
	// B's compute [12,20), transit [10,12), then jumps to A and bills A's
	// compute clamped at the floor: [5,10).
	att := r.CriticalPathBetween("B", 5*ms, 20*ms)
	if err := att.Check(); err != nil {
		t.Fatal(err)
	}
	if att.Total != 15*ms {
		t.Fatalf("total %v, want 15ms", att.Total)
	}
	if att.ByCat[CatCompute] != 13*ms || att.ByCat[CatTransit] != 2*ms {
		t.Fatalf("window breakdown %v", att.ByCat)
	}
	lo, hi := att.Steps[len(att.Steps)-1].Start, att.Steps[0].End
	if lo != 5*ms || hi != 20*ms {
		t.Fatalf("steps span [%v, %v), want [5ms, 20ms)", lo, hi)
	}

	// Explicit start on the non-furthest proc: A's own timeline ends at
	// 10ms, so [10,12) is uninstrumented tail for A.
	attA := r.CriticalPathBetween("A", 0, 12*ms)
	if err := attA.Check(); err != nil {
		t.Fatal(err)
	}
	if attA.ByCat[CatOther] != 2*ms || attA.ByCat[CatCompute] != 10*ms {
		t.Fatalf("explicit-proc walk %v", attA.ByCat)
	}
}

// TestCriticalPathBetweenDegenerate covers empty windows, unknown procs, and
// nil recorders: always conserving, never panicking.
func TestCriticalPathBetweenDegenerate(t *testing.T) {
	r := NewRecorder()
	r.Busy("A", CatCompute, 0, 4*ms)
	if att := r.CriticalPathBetween("A", 4*ms, 4*ms); att.Total != 0 {
		t.Fatalf("empty window total %v", att.Total)
	}
	att := r.CriticalPathBetween("nobody", 1*ms, 3*ms)
	if err := att.Check(); err != nil {
		t.Fatal(err)
	}
	if att.EndProc != "A" || att.ByCat[CatCompute] != 2*ms {
		t.Fatalf("unknown proc should fall back to furthest: %q %v", att.EndProc, att.ByCat)
	}
	var nilRec *Recorder
	if att := nilRec.CriticalPathBetween("A", 0, 2*ms); att.Check() != nil || att.ByCat[CatOther] != 2*ms {
		t.Fatalf("nil recorder window: %+v", att)
	}
	// Negative lo clamps to zero.
	if att := r.CriticalPathBetween("A", -5*ms, 4*ms); att.Total != 4*ms || att.Check() != nil {
		t.Fatalf("negative lo: %+v", att)
	}
}
