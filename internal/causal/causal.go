// Package causal records happens-before structure alongside a simulation run
// and extracts the critical path from it: the single chain of dependent
// intervals that determines the run's end-to-end virtual time. Every
// nanosecond on that chain is attributed to a category (compute, I/O service,
// I/O queue wait, collective/sync wait, merge/serialization, message transit,
// recovery), with an exact conservation invariant: the per-category sums add
// up to precisely the elapsed virtual time.
//
// The recorder is purely passive. Layers that consume virtual time (the
// simulated MPI, PVFS2, ROMIO, and the search engines) call into it at points
// where time has already been spent; the recorder never sleeps, never posts
// events, and never perturbs the event calendar. A run with a recorder
// attached is therefore event-for-event identical to a run without one.
//
// Import direction: causal depends only on internal/des and internal/trace.
// The instrumented layers (mpi, pvfs, romio, core) import causal, never the
// reverse, so the package can model their behaviour only through the generic
// interval/edge vocabulary below.
package causal

import (
	"fmt"
	"sort"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

// Category classifies where a span of virtual time went. The names mirror the
// paper's vocabulary: compute dominates CPU-bound runs, io-service and
// io-queue split the PVFS2 server time, sync-wait captures barrier and
// query-sync stalls, merge is the master's (or worker's) result
// merge/serialization cost, transit is wire+NIC time for MPI messages, and
// recovery is time spent in the resilient protocol's timeout/repair paths.
type Category int

const (
	CatCompute Category = iota
	CatMerge
	CatIOQueue
	CatIOService
	CatTransit
	CatSyncWait
	CatRecovery
	CatOther

	// NumCategories is the number of attribution categories.
	NumCategories
)

var catNames = [NumCategories]string{
	"compute", "merge", "io-queue", "io-service",
	"transit", "sync-wait", "recovery", "other",
}

// String returns the stable lowercase name used in every attribution table.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("cat(%d)", int(c))
	}
	return catNames[c]
}

// CategoryNames returns the stable table-header names in category order.
func CategoryNames() []string {
	names := make([]string, NumCategories)
	for i := range catNames {
		names[i] = catNames[i]
	}
	return names
}

// Breakdown is a per-category sum of virtual time.
type Breakdown [NumCategories]des.Time

// Total returns the sum over all categories.
func (b Breakdown) Total() des.Time {
	var t des.Time
	for _, v := range b {
		t += v
	}
	return t
}

// Add accumulates other into b.
func (b *Breakdown) Add(other Breakdown) {
	for i, v := range other {
		b[i] += v
	}
}

// Segment is one boundary of a local wait decomposition: from At until the
// next segment's At (or the interval end), time is attributed to Cat.
type Segment struct {
	At  des.Time
	Cat Category
}

// intervalKind distinguishes how an interval participates in the walk.
type intervalKind uint8

const (
	kindBusy  intervalKind = iota // proc was doing categorized work
	kindEdge                      // blocked; resolved by a remote cause
	kindChain                     // blocked; locally decomposed into segments
	kindPlain                     // blocked; single category, no remote cause
)

// interval is one recorded span on a process timeline. Timelines are
// append-only and, because each simulated process is sequential and records
// at completion, sorted by both start and end.
type interval struct {
	start, end des.Time
	cat        Category
	kind       intervalKind

	// For kindEdge: the causally preceding event — the process that released
	// this wait, and the time on that process to resume the walk from.
	edgeProc string
	edgeAt   des.Time

	// For kindChain: boundary decomposition covering [start, end].
	chain []Segment
}

// Flow is one recorded message edge: a payload that left From at Sent and
// arrived at To at Recv. Used for Perfetto flow arrows.
type Flow struct {
	ID         uint64
	Name       string
	From, To   string
	Sent, Recv des.Time
}

// Recorder accumulates per-process interval timelines plus optional message
// flows. It must only be used from inside a single simulation run (the DES
// kernel is single-threaded, so no locking is needed). The zero value is not
// usable; call NewRecorder. All recording methods are safe on a nil receiver
// so instrumentation sites can call unconditionally.
type Recorder struct {
	timelines    map[string][]interval
	procs        []string // insertion-ordered keys of timelines
	flows        []Flow
	captureFlows bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{timelines: make(map[string][]interval)}
}

// SetCaptureFlows enables recording of per-message flow edges (Perfetto
// arrows). Off by default: sweeps want attribution, not per-message detail.
func (r *Recorder) SetCaptureFlows(on bool) {
	if r != nil {
		r.captureFlows = on
	}
}

// CapturesFlows reports whether message flows are being recorded.
func (r *Recorder) CapturesFlows() bool { return r != nil && r.captureFlows }

func (r *Recorder) append(proc string, iv interval) {
	if iv.end <= iv.start {
		return
	}
	tl, ok := r.timelines[proc]
	if !ok {
		r.procs = append(r.procs, proc)
	}
	r.timelines[proc] = append(tl, iv)
}

// Busy records that proc actively spent [start, end) on cat work.
func (r *Recorder) Busy(proc string, cat Category, start, end des.Time) {
	if r == nil {
		return
	}
	r.append(proc, interval{start: start, end: end, cat: cat, kind: kindBusy})
}

// WaitEdge records that proc was blocked over [start, end) on cat, and that
// the wait was resolved by a causally preceding event on fromProc at fromAt
// (e.g. a message send, or the last arrival at a barrier). The critical-path
// walk attributes [fromAt, end) to cat on this proc and then continues on
// fromProc at fromAt.
func (r *Recorder) WaitEdge(proc string, start, end des.Time, cat Category, fromProc string, fromAt des.Time) {
	if r == nil {
		return
	}
	r.append(proc, interval{
		start: start, end: end, cat: cat, kind: kindEdge,
		edgeProc: fromProc, edgeAt: fromAt,
	})
}

// WaitChain records that proc was blocked over [start, end) and that the wait
// decomposes locally into the given boundary segments (e.g. a PVFS request's
// transit → queue → service → transit pipeline). Segments are clamped into
// [start, end) and made monotone; uncovered prefixes inherit the first
// segment's category.
func (r *Recorder) WaitChain(proc string, start, end des.Time, segs []Segment) {
	if r == nil {
		return
	}
	if len(segs) == 0 {
		r.append(proc, interval{start: start, end: end, cat: CatOther, kind: kindPlain})
		return
	}
	clamped := make([]Segment, 0, len(segs))
	lo := start
	for _, s := range segs {
		at := s.At
		if at < lo {
			at = lo
		}
		if at > end {
			at = end
		}
		clamped = append(clamped, Segment{At: at, Cat: s.Cat})
		lo = at
	}
	// Cover [start, clamped[0].At) with the first segment's category.
	clamped[0].At = start
	r.append(proc, interval{start: start, end: end, kind: kindChain, chain: clamped})
}

// WaitPlain records that proc was blocked over [start, end) on cat with no
// usable remote cause (e.g. waiting out one's own send NIC, or a timeout).
func (r *Recorder) WaitPlain(proc string, start, end des.Time, cat Category) {
	if r == nil {
		return
	}
	r.append(proc, interval{start: start, end: end, cat: cat, kind: kindPlain})
}

// Flow records a message edge for Perfetto arrows. No-op unless
// SetCaptureFlows(true) was called.
func (r *Recorder) Flow(id uint64, name, from, to string, sent, recv des.Time) {
	if r == nil || !r.captureFlows {
		return
	}
	r.flows = append(r.flows, Flow{ID: id, Name: name, From: from, To: to, Sent: sent, Recv: recv})
}

// Flows returns the recorded message edges in arrival order.
func (r *Recorder) Flows() []Flow {
	if r == nil {
		return nil
	}
	return r.flows
}

// FlowEvents converts the recorded flows into paired trace events: for each
// flow, a start event on the sending process at the send time and a finish
// event on the receiving process at the arrival time. The events carry
// Point=true (with Start==End) so every pre-existing renderer skips them;
// only the Perfetto exporter interprets the Flow fields.
func (r *Recorder) FlowEvents() []trace.Event {
	if r == nil || len(r.flows) == 0 {
		return nil
	}
	evs := make([]trace.Event, 0, 2*len(r.flows))
	for _, f := range r.flows {
		evs = append(evs,
			trace.Event{Proc: f.From, Name: f.Name, Start: f.Sent, End: f.Sent, Point: true, Flow: trace.FlowStart, FlowID: f.ID},
			trace.Event{Proc: f.To, Name: f.Name, Start: f.Recv, End: f.Recv, Point: true, Flow: trace.FlowFinish, FlowID: f.ID},
		)
	}
	return evs
}

// Totals aggregates every recorded interval (busy and blocked, across all
// processes) by category. Unlike the critical path this counts parallel work
// multiply, so the total is bounded by procs × elapsed time; it answers
// "where did all processes spend their time", not "what made the run long".
func (r *Recorder) Totals() Breakdown {
	var b Breakdown
	if r == nil {
		return b
	}
	for _, tl := range r.timelines {
		for _, iv := range tl {
			switch iv.kind {
			case kindChain:
				for k, seg := range iv.chain {
					hi := iv.end
					if k+1 < len(iv.chain) {
						hi = iv.chain[k+1].At
					}
					b[seg.Cat] += hi - seg.At
				}
			default:
				b[iv.cat] += iv.end - iv.start
			}
		}
	}
	return b
}

// Procs returns the recorded process names, sorted.
func (r *Recorder) Procs() []string {
	if r == nil {
		return nil
	}
	out := append([]string(nil), r.procs...)
	sort.Strings(out)
	return out
}

// Intervals reports the number of recorded intervals, for sizing diagnostics.
func (r *Recorder) Intervals() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, tl := range r.timelines {
		n += len(tl)
	}
	return n
}
