package causal

import (
	"fmt"
	"sort"
	"strings"

	"s3asim/internal/des"
)

// Step is one attributed span on the critical path, in walk order (i.e.
// reverse chronological). Steps tile [0, Total) exactly: each nanosecond of
// elapsed virtual time belongs to exactly one step.
type Step struct {
	Proc       string
	Start, End des.Time
	Cat        Category
}

// Attribution is the result of a critical-path walk: the full elapsed
// virtual time decomposed by category, with exact conservation
// (ByCat.Total() == Total, always).
type Attribution struct {
	// Total is the elapsed virtual time that was attributed.
	Total des.Time
	// ByCat sums the critical-path time per category.
	ByCat Breakdown
	// Steps is the path itself, reverse chronological, tiling [0, Total).
	Steps []Step
	// EndProc is the process the walk started from (the one whose recorded
	// timeline reaches furthest).
	EndProc string
	// Truncated is set if the walk hit its step safety bound and dumped the
	// remainder into CatOther. Conservation still holds.
	Truncated bool
}

// CriticalPath walks the recorded happens-before structure backward from
// `end` (normally the run's overall virtual time) and attributes every
// nanosecond of [0, end) to a category.
//
// The walk maintains a cursor (proc, t) and repeatedly asks: what was proc
// doing just before t? A busy interval bills its category and moves t to its
// start. A wait resolved by a remote edge bills its category from the causing
// event's time and jumps the cursor to the causing process. A locally
// decomposed wait bills its segments. Gaps (time no instrumentation covered:
// setup, scheduling slack) bill CatOther. Every step strictly decreases t, so
// the walk terminates and the step spans tile [0, end) exactly — that is the
// conservation invariant the tests pin.
func (r *Recorder) CriticalPath(end des.Time) *Attribution {
	return r.CriticalPathBetween("", 0, end)
}

// CriticalPathBetween is the windowed walk: backward from time hi on proc
// (the per-query/per-request form — start from the process that completed
// the work) down to time lo, attributing every nanosecond of [lo, hi). An
// empty proc starts from the process whose recorded timeline reaches
// furthest, exactly like CriticalPath; CriticalPath(end) is
// CriticalPathBetween("", 0, end). Attribution.Total is hi−lo and Steps tile
// [lo, hi), so Check() holds for windowed walks too.
func (r *Recorder) CriticalPathBetween(proc string, lo, hi des.Time) *Attribution {
	if lo < 0 {
		lo = 0
	}
	att := &Attribution{Total: hi - lo}
	if r == nil || hi <= lo {
		if att.Total < 0 {
			att.Total = 0
		}
		if att.Total > 0 {
			att.ByCat[CatOther] = att.Total
			att.Steps = []Step{{Proc: "", Start: lo, End: hi, Cat: CatOther}}
		}
		return att
	}

	// The process whose recorded timeline reaches furthest; ties break
	// lexicographically (Procs() is sorted) for determinism. It is the start
	// when no explicit proc was given (or the given one is unknown).
	var furthest string
	var maxEnd des.Time = -1
	for _, name := range r.Procs() {
		tl := r.timelines[name]
		if n := len(tl); n > 0 {
			if e := tl[n-1].end; e > maxEnd {
				maxEnd, furthest = e, name
			}
		}
	}
	startProc := proc
	if _, known := r.timelines[startProc]; !known {
		startProc = furthest
	}
	att.EndProc = startProc

	bill := func(proc string, blo, bhi des.Time, cat Category) {
		if blo < lo {
			blo = lo
		}
		if bhi <= blo {
			return
		}
		att.ByCat[cat] += bhi - blo
		// Merge with the previous step when contiguous on the same proc+cat
		// (keeps Steps compact for long uniform stretches).
		if n := len(att.Steps); n > 0 {
			last := &att.Steps[n-1]
			if last.Proc == proc && last.Cat == cat && last.Start == bhi {
				last.Start = blo
				return
			}
		}
		att.Steps = append(att.Steps, Step{Proc: proc, Start: blo, End: bhi, Cat: cat})
	}

	t := hi
	if startProc == "" {
		bill("", lo, hi, CatOther)
		return att
	}
	proc = startProc
	// Anything after the last recorded interval is uninstrumented tail
	// (e.g. stale resilient-protocol timers draining the calendar). With an
	// explicit start proc, the tail is measured against that proc's own
	// timeline — its uninstrumented time is still "other".
	if tl := r.timelines[proc]; len(tl) > 0 {
		if e := tl[len(tl)-1].end; e < t {
			bill(proc, e, t, CatOther)
			t = e
		}
	} else if maxEnd < t {
		bill(proc, maxEnd, t, CatOther)
		t = maxEnd
	}

	// Safety bound: each recorded interval can be visited at most once per
	// pass through a proc, and every step strictly decreases t; 4× total
	// intervals plus slack is far beyond any legitimate walk.
	maxSteps := 4*r.Intervals() + 64
	for steps := 0; t > lo; steps++ {
		if steps >= maxSteps {
			bill(proc, lo, t, CatOther)
			att.Truncated = true
			break
		}
		tl := r.timelines[proc]
		// Find the last interval on this timeline starting strictly before t.
		idx := sort.Search(len(tl), func(i int) bool { return tl[i].start >= t }) - 1
		if idx < 0 {
			bill(proc, lo, t, CatOther)
			break
		}
		iv := tl[idx]
		if iv.end < t {
			// Gap between instrumented intervals.
			bill(proc, iv.end, t, CatOther)
			t = iv.end
			continue
		}
		switch iv.kind {
		case kindBusy, kindPlain:
			bill(proc, iv.start, t, iv.cat)
			t = iv.start
		case kindEdge:
			if iv.edgeAt < t {
				if _, ok := r.timelines[iv.edgeProc]; ok {
					bill(proc, iv.edgeAt, t, iv.cat)
					proc, t = iv.edgeProc, iv.edgeAt
					continue
				}
			}
			// Degenerate edge (cause at/after t, or unknown proc): treat as
			// a plain wait so progress is still strict.
			bill(proc, iv.start, t, iv.cat)
			t = iv.start
		case kindChain:
			for k := len(iv.chain) - 1; k >= 0 && t > iv.start; k-- {
				seg := iv.chain[k]
				if seg.At >= t {
					continue
				}
				bill(proc, seg.At, t, seg.Cat)
				t = seg.At
			}
			if t > iv.start {
				bill(proc, iv.start, t, CatOther)
				t = iv.start
			}
		}
	}
	return att
}

// Between sums the path attribution restricted to the window [lo, hi):
// the per-query/per-batch sub-path view. Summing Between over a partition
// of [0, Total) reproduces ByCat exactly.
func (a *Attribution) Between(lo, hi des.Time) Breakdown {
	var b Breakdown
	if a == nil {
		return b
	}
	for _, s := range a.Steps {
		l, h := s.Start, s.End
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if h > l {
			b[s.Cat] += h - l
		}
	}
	return b
}

// Check verifies the conservation invariant and returns a descriptive error
// if it does not hold (it always should; this guards walker regressions).
func (a *Attribution) Check() error {
	if a == nil {
		return fmt.Errorf("causal: nil attribution")
	}
	if got := a.ByCat.Total(); got != a.Total {
		return fmt.Errorf("causal: conservation violated: categories sum to %s, elapsed %s", got, a.Total)
	}
	var steps des.Time
	for _, s := range a.Steps {
		steps += s.End - s.Start
	}
	if steps != a.Total {
		return fmt.Errorf("causal: steps tile %s, elapsed %s", steps, a.Total)
	}
	return nil
}

// Shares returns each category's fraction of the total (0 when Total is 0).
func (a *Attribution) Shares() [NumCategories]float64 {
	var out [NumCategories]float64
	if a == nil || a.Total == 0 {
		return out
	}
	for i, v := range a.ByCat {
		out[i] = float64(v) / float64(a.Total)
	}
	return out
}

// String renders a one-line summary: total plus non-zero categories.
func (a *Attribution) String() string {
	if a == nil {
		return "<nil>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%.3fs =", a.Total.Seconds())
	for c := Category(0); c < NumCategories; c++ {
		if v := a.ByCat[c]; v != 0 {
			fmt.Fprintf(&sb, " %s %.3fs", c, v.Seconds())
		}
	}
	return sb.String()
}
