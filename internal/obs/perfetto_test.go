package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a fixed timeline exercising every export path: states,
// a point marker, an open state, and more than one process.
func goldenEvents() []trace.Event {
	tr := trace.New()
	tr.BeginState("master0", "Data Distribution", 0)
	tr.EndState("master0", 3*des.Second)
	tr.BeginState("worker1", "Compute", 0)
	tr.BeginState("worker1", "I/O", 2*des.Second)
	tr.EndState("worker1", 2500*des.Millisecond)
	tr.Point("worker1", "flush", 2200*des.Millisecond)
	tr.BeginState("worker2", "Sync", des.Second) // left open
	return tr.Events()
}

func TestWritePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("perfetto output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

// TestPerfettoSchema validates the export against the Chrome trace-event
// format contract Perfetto's legacy JSON importer relies on: a traceEvents
// array whose entries all carry name/ph/ts/pid/tid, "X" slices with a
// non-negative dur, thread-scoped "i" instants, and one thread_name
// metadata record per simulated process.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" && doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, spec allows ms or ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	threadNames := map[string]bool{}
	var slices, instants int
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		ph := ev["ph"].(string)
		switch ph {
		case "M":
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Fatalf("metadata event without args: %v", ev)
			}
			if ev["name"] == "thread_name" {
				threadNames[args["name"].(string)] = true
			}
		case "X":
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				t.Fatalf("complete event needs dur >= 0: %v", ev)
			}
			if ev["ts"].(float64) < 0 {
				t.Fatalf("negative timestamp: %v", ev)
			}
			slices++
		case "i":
			if ev["s"] != "t" {
				t.Fatalf("instant should be thread-scoped: %v", ev)
			}
			instants++
		default:
			t.Fatalf("unexpected phase %q in event %v", ph, ev)
		}
	}
	for _, proc := range []string{"master0", "worker1", "worker2"} {
		if !threadNames[proc] {
			t.Fatalf("no thread_name metadata for %s (got %v)", proc, threadNames)
		}
	}
	// 4 states (one open) and 1 marker in the fixture.
	if slices != 4 || instants != 1 {
		t.Fatalf("slices=%d instants=%d, want 4 and 1", slices, instants)
	}
}

func TestPerfettoTimesInMicroseconds(t *testing.T) {
	events := []trace.Event{{Proc: "p", Name: "S", Start: des.Second, End: 2 * des.Second}}
	out := PerfettoEvents(events)
	last := out[len(out)-1]
	if last.Ts != 1e6 || last.Dur == nil || *last.Dur != 1e6 {
		t.Fatalf("ts/dur should be microseconds: ts=%g dur=%v", last.Ts, last.Dur)
	}
}

func TestPerfettoSinkExportsOnClose(t *testing.T) {
	var buf bytes.Buffer
	s := NewPerfettoSink(&buf)
	s.BeginState("p", "Compute", 0)
	s.Point("p", "mark", des.Second)
	s.EndState("p", 2*des.Second)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) < 3 {
		t.Fatalf("export too small: %d events", len(doc.TraceEvents))
	}
}
