package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"s3asim/internal/des"
	"s3asim/internal/stats"
)

// Registry is a per-run metrics store: named counters, gauges, and
// virtual-time histograms. All methods are safe for concurrent use, so one
// registry may also aggregate across concurrently running simulations —
// though per-cell registries (experiments.Options.CellMetrics) are the
// deterministic way to do that.
//
// Histograms are fixed-memory: exact count/sum/min/max/mean via
// internal/stats.Online plus sparse log-linear (HDR-style) bucket counts —
// see hist.go. Quantiles are read from the buckets with a relative error of
// at most 1/(2·histSub) (<2%), clamped to the exact observed range, so a
// long-lived registry absorbing millions of observations (an open-loop
// serving run's per-query latencies) stays bounded by the number of distinct
// buckets its value range touches, not by the observation count.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
	// win, when non-nil, additionally folds every mutation into tumbling
	// virtual-time windows (EnableWindows; see window.go).
	win *winState
}

// histogram accumulates observations for one named series. exemplars is
// populated only via ObserveExemplar: up to histExemplars IDs per bucket,
// retained by maximum value (ties broken by smaller ID) — deterministic, no
// sampling.
type histogram struct {
	online    stats.Online
	buckets   map[int32]int64
	exemplars map[int32][]Exemplar
}

// Exemplar links one retained observation back to its source (a query or
// request ID), so a histogram bucket can be traced to concrete per-query
// Perfetto tracks.
type Exemplar struct {
	ID int64   `json:"id"`
	V  float64 `json:"v"`
}

// histExemplars bounds the exemplars retained per histogram bucket.
const histExemplars = 4

// addExemplar folds e into a bucket's retained set: sorted by descending
// value then ascending ID, truncated to histExemplars. Insertion order does
// not matter, so merges stay deterministic.
func addExemplar(list []Exemplar, e Exemplar) []Exemplar {
	pos := len(list)
	for i, x := range list {
		if e.V > x.V || (e.V == x.V && e.ID < x.ID) {
			pos = i
			break
		}
	}
	if pos >= histExemplars {
		return list
	}
	list = append(list, Exemplar{})
	copy(list[pos+1:], list[pos:])
	list[pos] = e
	if len(list) > histExemplars {
		list = list[:histExemplars]
	}
	return list
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Add increments the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	if r.win != nil {
		r.win.add(name, delta, r.win.now())
	}
	r.mu.Unlock()
}

// Set stores the named gauge's current value.
func (r *Registry) Set(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	if r.win != nil {
		r.win.set(name, v, r.win.now())
	}
	r.mu.Unlock()
}

// Observe folds one observation into the named histogram.
func (r *Registry) Observe(name string, v float64) {
	r.observe(name, v, nil, nil)
}

// observe is the shared histogram path: ex, when non-nil, retains the
// observation as a bucket exemplar; at, when non-nil, overrides the window
// clock (event-time backfill).
func (r *Registry) observe(name string, v float64, ex *int64, at *des.Time) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histogram{buckets: make(map[int32]int64)}
		r.hists[name] = h
	}
	h.online.Add(v)
	key := bucketKey(v)
	h.buckets[key]++
	if ex != nil {
		if h.exemplars == nil {
			h.exemplars = make(map[int32][]Exemplar)
		}
		h.exemplars[key] = addExemplar(h.exemplars[key], Exemplar{ID: *ex, V: v})
	}
	if r.win != nil {
		t := r.win.now()
		if at != nil {
			t = *at
		}
		r.win.observe(name, v, key, t)
	}
	r.mu.Unlock()
}

// ObserveExemplar is Observe plus exemplar retention: the observation's
// bucket deterministically keeps up to histExemplars source IDs by maximum
// value, linking the histogram back to per-query traces.
func (r *Registry) ObserveExemplar(name string, v float64, id int64) {
	r.observe(name, v, &id, nil)
}

// ObserveExemplarAt is ObserveExemplar with an explicit virtual timestamp
// for the window layer.
func (r *Registry) ObserveExemplarAt(name string, v float64, id int64, at des.Time) {
	r.observe(name, v, &id, &at)
}

// ObserveTime folds a virtual-time duration into the named histogram, in
// seconds — the unit every engine-populated histogram uses.
func (r *Registry) ObserveTime(name string, t des.Time) {
	r.Observe(name, t.Seconds())
}

// HistStat summarizes one histogram: exact count/sum/min/max/mean, the
// precomputed P50/P95/P99, and the log-bucket counts the quantiles were read
// from. Bucket-derived quantiles carry a relative error of at most
// 1/(2·histSub) (<2%) and are clamped to the exact [Min, Max]. Buckets may
// be nil on hand-built or legacy stats; Quantile and Merge then fall back to
// the precomputed fields.
type HistStat struct {
	Count               int64
	Sum, Min, Max, Mean float64
	P50, P95, P99       float64
	Buckets             map[int32]int64 `json:",omitempty"`
	// Exemplars maps bucket key → up to histExemplars retained observations
	// (max value first), present only for series recorded via
	// ObserveExemplar.
	Exemplars map[int32][]Exemplar `json:",omitempty"`
}

// Quantile reads the q-quantile (0 ≤ q ≤ 1) from the bucket counts, clamped
// to the exact observed range. Without buckets it interpolates the
// precomputed anchors (Min, P50, P95, P99, Max) piecewise-linearly — the
// best available estimate for a stat that predates bucket retention.
func (h HistStat) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if len(h.Buckets) > 0 {
		return clamp(bucketQuantiles(h.Buckets, h.Count, q)[0], h.Min, h.Max)
	}
	xs := [5]float64{0, 0.5, 0.95, 0.99, 1}
	ys := [5]float64{h.Min, h.P50, h.P95, h.P99, h.Max}
	if q <= 0 {
		return ys[0]
	}
	for i := 1; i < len(xs); i++ {
		if q <= xs[i] {
			f := (q - xs[i-1]) / (xs[i] - xs[i-1])
			return ys[i-1] + f*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}

// Snapshot is an immutable copy of a registry's state. The zero value is an
// empty snapshot; see Merge for deterministic aggregation.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Hists    map[string]HistStat
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
		Hists:    make(map[string]HistStat, len(r.hists)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		st := histStat(h.online, h.buckets)
		if len(h.exemplars) > 0 {
			st.Exemplars = make(map[int32][]Exemplar, len(h.exemplars))
			for bk, list := range h.exemplars {
				st.Exemplars[bk] = append([]Exemplar(nil), list...)
			}
		}
		if r.win != nil {
			// Windowed mode: make the conservation invariant bit-exact by
			// defining the snapshot Sum as the ascending-window re-addition
			// of per-window sums (stats.Online's mean-derived sum differs in
			// the last bits for long streams).
			if sum, ok := r.win.histTotals(k); ok && st.Count > 0 {
				st.Sum = sum
				st.Mean = sum / float64(st.Count)
			}
		}
		s.Hists[k] = st
	}
	return s
}

// histStat assembles one histogram's snapshot: exact moments from the online
// accumulator, quantiles read from a private copy of the bucket counts.
func histStat(online stats.Online, buckets map[int32]int64) HistStat {
	h := HistStat{
		Count: online.N(),
		Sum:   online.Mean() * float64(online.N()),
		Min:   online.Min(),
		Max:   online.Max(),
		Mean:  online.Mean(),
	}
	if len(buckets) > 0 {
		h.Buckets = make(map[int32]int64, len(buckets))
		for k, n := range buckets {
			h.Buckets[k] = n
		}
		qs := bucketQuantiles(h.Buckets, h.Count, 0.5, 0.95, 0.99)
		h.P50 = clamp(qs[0], h.Min, h.Max)
		h.P95 = clamp(qs[1], h.Min, h.Max)
		h.P99 = clamp(qs[2], h.Min, h.Max)
	}
	return h
}

// Merge folds o into a copy of s and returns it; neither input is modified.
// Counters add; a gauge present in o overwrites s's value; histogram
// count/sum/min/max merge exactly and mean is recomputed. When both sides
// carry bucket counts the buckets are summed and the quantiles re-read from
// the merged buckets — the weighted-quantile merge stays within the bucket
// error bound of the quantiles of the combined stream. When either side
// lacks buckets (hand-built stats) the quantiles degrade to count-weighted
// averages of the inputs' quantiles, as before bucket retention. Merging in
// a fixed order is deterministic, which is how sweeps aggregate per-cell
// metrics while staying bit-identical at any parallelism.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Gauges:   make(map[string]float64, len(s.Gauges)+len(o.Gauges)),
		Hists:    make(map[string]HistStat, len(s.Hists)+len(o.Hists)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Hists {
		out.Hists[k] = v
	}
	for k, b := range o.Hists {
		a, ok := out.Hists[k]
		if !ok || a.Count == 0 {
			out.Hists[k] = b
			continue
		}
		if b.Count == 0 {
			continue
		}
		m := HistStat{Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Min: a.Min, Max: a.Max}
		if b.Min < m.Min {
			m.Min = b.Min
		}
		if b.Max > m.Max {
			m.Max = b.Max
		}
		m.Mean = m.Sum / float64(m.Count)
		if len(a.Buckets) > 0 && len(b.Buckets) > 0 {
			m.Buckets = make(map[int32]int64, len(a.Buckets)+len(b.Buckets))
			for bk, n := range a.Buckets {
				m.Buckets[bk] += n
			}
			for bk, n := range b.Buckets {
				m.Buckets[bk] += n
			}
			qs := bucketQuantiles(m.Buckets, m.Count, 0.5, 0.95, 0.99)
			m.P50 = clamp(qs[0], m.Min, m.Max)
			m.P95 = clamp(qs[1], m.Min, m.Max)
			m.P99 = clamp(qs[2], m.Min, m.Max)
		} else {
			wa, wb := float64(a.Count), float64(b.Count)
			m.P50 = (a.P50*wa + b.P50*wb) / (wa + wb)
			m.P95 = (a.P95*wa + b.P95*wb) / (wa + wb)
			m.P99 = (a.P99*wa + b.P99*wb) / (wa + wb)
		}
		if len(a.Exemplars) > 0 || len(b.Exemplars) > 0 {
			m.Exemplars = make(map[int32][]Exemplar, len(a.Exemplars)+len(b.Exemplars))
			for _, side := range []map[int32][]Exemplar{a.Exemplars, b.Exemplars} {
				for bk, list := range side {
					for _, e := range list {
						m.Exemplars[bk] = addExemplar(m.Exemplars[bk], e)
					}
				}
			}
		}
		out.Hists[k] = m
	}
	return out
}

// Empty reports whether the snapshot holds no series at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Hists) == 0
}

// Render formats the snapshot as aligned text, every section sorted by name.
func (s Snapshot) Render() string {
	var b strings.Builder
	section := func(title string, n int) bool {
		if n == 0 {
			return false
		}
		fmt.Fprintf(&b, "%s:\n", title)
		return true
	}
	if section("counters", len(s.Counters)) {
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-36s %d\n", k, s.Counters[k])
		}
	}
	if section("gauges", len(s.Gauges)) {
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-36s %g\n", k, s.Gauges[k])
		}
	}
	if section("histograms (n mean p50 p95 p99 max)", len(s.Hists)) {
		for _, k := range sortedKeys(s.Hists) {
			h := s.Hists[k]
			fmt.Fprintf(&b, "  %-36s %d %.6g %.6g %.6g %.6g %.6g\n",
				k, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
