package obs

import (
	"fmt"

	"s3asim/internal/des"
)

// Telemetry configures the virtual-time telemetry pipeline for one run
// (core.Config.Telemetry): window width, alert rules, and flight-recorder
// sizing. Everything is derived from virtual time and seeded inputs, so a
// telemetry-enabled run stays deterministic and a telemetry-disabled run is
// untouched (zero overhead, byte-identical output).
type Telemetry struct {
	// Window is the tumbling-window width (required, > 0).
	Window des.Time
	// Rules is the SLO alert rule set evaluated at window boundaries
	// (ParseRules; may be empty — windows and the flight recorder still run).
	Rules []*Rule
	// FlightEvents caps the flight recorder's event ring (default 4096).
	FlightEvents int
	// FlightKeep is how much trailing virtual time a dump captures and the
	// minimum spacing between accepted triggers (default 8×Window).
	FlightKeep des.Time
	// FlightDumps caps dumps per run (default 8).
	FlightDumps int
}

const (
	defaultFlightEvents = 4096
	defaultFlightDumps  = 8
)

// Validate checks the configuration, including rule/width compatibility.
func (t *Telemetry) Validate() error {
	if t.Window <= 0 {
		return fmt.Errorf("obs: telemetry needs a positive window width")
	}
	if t.FlightEvents < 0 || t.FlightDumps < 0 || t.FlightKeep < 0 {
		return fmt.Errorf("obs: telemetry flight-recorder sizes must be non-negative")
	}
	if _, err := NewAlertEngine(t.Window, t.Rules); err != nil {
		return err
	}
	return nil
}

// Keep resolves the flight-recorder retention window.
func (t *Telemetry) Keep() des.Time {
	if t.FlightKeep > 0 {
		return t.FlightKeep
	}
	return 8 * t.Window
}

// NewFlightRecorder builds the run's flight recorder from the resolved
// sizes.
func (t *Telemetry) NewFlightRecorder() *FlightRecorder {
	events, dumps := t.FlightEvents, t.FlightDumps
	if events == 0 {
		events = defaultFlightEvents
	}
	if dumps == 0 {
		dumps = defaultFlightDumps
	}
	return NewFlightRecorder(events, t.Keep(), dumps)
}

// NewEngine builds the run's alert engine; returns nil when the rule set is
// empty.
func (t *Telemetry) NewEngine() (*AlertEngine, error) {
	if len(t.Rules) == 0 {
		return nil, nil
	}
	return NewAlertEngine(t.Window, t.Rules)
}
