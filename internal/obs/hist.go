package obs

import (
	"math"
	"sort"
)

// Fixed-memory log-bucketed histogram core (HDR-style). A value is mapped to
// a log-linear bucket: its power-of-two octave (math.Frexp exponent) split
// into histSub equal linear sub-buckets. Bucket width is therefore at most
// 1/histSub of the value itself, so any quantile read from bucket midpoints
// is within a relative error of 1/(2·histSub) — under 2% at histSub = 32 —
// while a registry that absorbs millions of observations stores only the
// buckets its values actually touch (a few hundred for any realistic value
// range), not the observations themselves.
//
// Key layout (ascending int32 key order is ascending value order):
//
//	keyNegInf                      -Inf
//	-2 - posKey(-v)                negative finite values
//	keyZero (-1)                   zero (and NaN, defensively)
//	posKey(v) = (e+histEOff)·histSub + sub   positive finite values
//	keyPosInf                      +Inf
//
// histEOff shifts the Frexp exponent range (about [-1073, 1025] for float64)
// to non-negative, keeping positive-value keys disjoint from the reserved
// ones.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	histEOff    = 1100

	keyZero   = int32(-1)
	keyPosInf = int32(1) << 30
	keyNegInf = -(int32(1) << 30)
)

// bucketKey maps one observation to its bucket.
func bucketKey(v float64) int32 {
	switch {
	case v > 0:
		if math.IsInf(v, 1) {
			return keyPosInf
		}
		return posKey(v)
	case v < 0:
		if math.IsInf(v, -1) {
			return keyNegInf
		}
		return -2 - posKey(-v)
	default: // zero or NaN
		return keyZero
	}
}

func posKey(v float64) int32 {
	m, e := math.Frexp(v) // v = m·2^e, m ∈ [0.5, 1)
	s := int32((2*m - 1) * histSub)
	if s >= histSub {
		s = histSub - 1
	}
	return int32(e+histEOff)<<histSubBits | s
}

// bucketValue returns a bucket's representative value: the midpoint of its
// value range (0 for the zero bucket, ±Inf for the overflow buckets).
func bucketValue(k int32) float64 {
	switch {
	case k == keyZero:
		return 0
	case k == keyPosInf:
		return math.Inf(1)
	case k == keyNegInf:
		return math.Inf(-1)
	case k < 0:
		return -bucketValue(-2 - k)
	}
	e := int(k>>histSubBits) - histEOff
	s := float64(k & (histSub - 1))
	mid := 0.5 + (s+0.5)/(2*histSub)
	return math.Ldexp(mid, e)
}

// bucketQuantiles reads quantiles from a bucket map holding n observations,
// with one key sort. The rank convention mirrors stats.Quantile — the
// q-quantile sits at index q·(n-1) of the sorted observations — except that
// an observation stands at its bucket's midpoint instead of its exact value
// (the documented ≤1/(2·histSub) relative error). Callers clamp results to
// the exact observed [Min, Max].
func bucketQuantiles(buckets map[int32]int64, n int64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if n <= 0 || len(buckets) == 0 {
		return out
	}
	keys := make([]int32, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, q := range qs {
		rank := q * float64(n-1)
		if rank < 0 {
			rank = 0
		}
		var cum int64
		v := bucketValue(keys[len(keys)-1])
		for _, k := range keys {
			cum += buckets[k]
			if float64(cum) > rank {
				v = bucketValue(k)
				break
			}
		}
		out[i] = v
	}
	return out
}

// clamp bounds a bucket-derived quantile by the exact observed range.
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
