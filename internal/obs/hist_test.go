package obs

import (
	"math"
	"math/rand"
	"testing"

	"s3asim/internal/stats"
)

// relErr is the documented bucket-midpoint quantile error bound: half of one
// sub-bucket's relative width.
const relErr = 1.0 / (2 * histSub)

func TestBucketKeyOrderAndValue(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e9, -3.7, -1e-6, 0, 1e-9, 0.4999,
		0.5, 0.9, 1, 1.03125, 2, 1e6, 1e300, math.Inf(1)}
	prevKey := int32(math.MinInt32)
	for _, v := range vals {
		k := bucketKey(v)
		if k < prevKey {
			t.Fatalf("bucket keys not monotone: key(%g) = %d < previous %d", v, k, prevKey)
		}
		prevKey = k
		rep := bucketValue(k)
		switch {
		case v == 0:
			if rep != 0 {
				t.Fatalf("zero bucket representative = %g", rep)
			}
		case math.IsInf(v, 0):
			if rep != v {
				t.Fatalf("inf bucket representative = %g for %g", rep, v)
			}
		default:
			if math.Abs(rep-v) > relErr*math.Abs(v)+1e-300 {
				t.Fatalf("representative %g for %g exceeds error bound", rep, v)
			}
		}
	}
	if bucketKey(math.NaN()) != keyZero {
		t.Fatal("NaN should land in the defensive zero bucket")
	}
}

// TestHistQuantileAccuracy checks the documented error bound on a large
// log-uniform stream: every bucket-derived quantile is within relErr
// (relative) of the exact sample quantile.
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRegistry()
	samples := make([]float64, 100000)
	for i := range samples {
		v := math.Exp(rng.Float64()*18 - 9) // log-uniform over ~[1.2e-4, 8.1e3]
		samples[i] = v
		r.Observe("lat", v)
	}
	h := r.Snapshot().Hists["lat"]
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		exact := stats.Quantile(samples, q)
		got := h.Quantile(q)
		// Adjacent order statistics of a dense stream sit inside one bucket,
		// so the only error left is the midpoint-vs-value offset.
		if math.Abs(got-exact) > 2*relErr*exact {
			t.Fatalf("q=%g: bucket quantile %g vs exact %g (rel err %g > bound %g)",
				q, got, exact, math.Abs(got-exact)/exact, 2*relErr)
		}
	}
	if h.P50 != h.Quantile(0.5) || h.P95 != h.Quantile(0.95) || h.P99 != h.Quantile(0.99) {
		t.Fatal("precomputed quantiles disagree with Quantile()")
	}
}

// TestHistMergeBucketsMatchesCombinedStream pins the merged-quantile error
// bound: merging two bucketed snapshots re-reads quantiles from the summed
// buckets, which must agree with a single histogram fed both streams.
func TestHistMergeBucketsMatchesCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, both := NewRegistry(), NewRegistry(), NewRegistry()
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.Float64() * 10)
		both.Observe("h", v)
		if i%2 == 0 {
			a.Observe("h", v)
		} else {
			b.Observe("h", v)
		}
	}
	m := a.Snapshot().Merge(b.Snapshot()).Hists["h"]
	w := both.Snapshot().Hists["h"]
	if m.Count != w.Count || m.Min != w.Min || m.Max != w.Max {
		t.Fatalf("merged moments diverge: %+v vs %+v", m, w)
	}
	if m.P50 != w.P50 || m.P95 != w.P95 || m.P99 != w.P99 {
		t.Fatalf("merged bucket quantiles diverge: %+v vs %+v", m, w)
	}
	if len(m.Buckets) != len(w.Buckets) {
		t.Fatalf("merged buckets %d vs combined %d", len(m.Buckets), len(w.Buckets))
	}
}

// TestHistBoundedMemoryAtMillionObservations is the allocation guard: one
// million observations over nine decades collapse into a bounded bucket set,
// and the steady-state Observe path allocates nothing.
func TestHistBoundedMemoryAtMillionObservations(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1<<10)
	for i := range vals {
		vals[i] = math.Exp(rng.Float64()*20 - 10)
	}
	for i := 0; i < 1_000_000; i++ {
		r.Observe("big", vals[i&(len(vals)-1)])
	}
	h := r.Snapshot().Hists["big"]
	if h.Count != 1_000_000 {
		t.Fatalf("count = %d", h.Count)
	}
	// ~29 octaves × histSub sub-buckets is the value range's ceiling; the
	// sampled values touch far fewer, but any bound this side of "retain all
	// samples" proves fixed memory.
	if got, max := len(h.Buckets), 30*histSub; got > max {
		t.Fatalf("bucket count %d exceeds bound %d", got, max)
	}
	// Steady state: every value already has its bucket, so Observe performs
	// map increments only.
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Observe("big", vals[0])
	}); allocs != 0 {
		t.Fatalf("steady-state Observe allocates %v per op", allocs)
	}
}

// TestHistStatQuantileFallback covers bucket-less HistStats (hand-built or
// from legacy merges): Quantile interpolates the precomputed anchors.
func TestHistStatQuantileFallback(t *testing.T) {
	h := HistStat{Count: 100, Min: 1, Max: 10, P50: 2, P95: 8, P99: 9}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 2}, {0.95, 8}, {0.99, 9}, {1, 10}, {0.25, 1.5}, {0.97, 8.5},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if (HistStat{}).Quantile(0.5) != 0 {
		t.Fatal("empty stat quantile should be 0")
	}
}
