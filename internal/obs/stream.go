package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

// StreamSink writes timeline events to w as JSON-lines in the same record
// format the in-memory tracer serializes (trace.Event), so its output feeds
// trace.ReadJSON and every s3atrace format unchanged. Unlike the tracer it
// never buffers the whole run: each state is emitted the moment it closes
// (records therefore appear in completion order, not begin order — Gantt and
// the exporters sort by time, not record order). Close flushes states still
// open, with End == their begin time, matching the tracer's convention.
//
// All methods are safe for concurrent use, so one StreamSink may be shared
// across concurrently running simulations.
type StreamSink struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	enc  *json.Encoder
	open map[string]trace.Event
	err  error
}

// NewStreamSink returns a sink streaming to w. Call Close to flush.
func NewStreamSink(w io.Writer) *StreamSink {
	bw := bufio.NewWriter(w)
	return &StreamSink{bw: bw, enc: json.NewEncoder(bw), open: make(map[string]trace.Event)}
}

// BeginState closes proc's open state (emitting it) and opens a new one.
func (s *StreamSink) BeginState(proc, name string, at des.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.open[proc]; ok {
		e.End = at
		s.emit(e)
	}
	s.open[proc] = trace.Event{Proc: proc, Name: name, Start: at, End: at}
}

// EndState closes and emits proc's open state.
func (s *StreamSink) EndState(proc string, at des.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.open[proc]; ok {
		e.End = at
		s.emit(e)
		delete(s.open, proc)
	}
}

// Point emits an instantaneous marker immediately.
func (s *StreamSink) Point(proc, name string, at des.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit(trace.Event{Proc: proc, Name: name, Start: at, End: at, Point: true})
}

// emit encodes one record, retaining the first write error. Callers hold mu.
func (s *StreamSink) emit(e trace.Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Close emits still-open states (in sorted process order, for deterministic
// output) and flushes the buffer. It returns the first error encountered
// over the sink's lifetime.
func (s *StreamSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	procs := make([]string, 0, len(s.open))
	for p := range s.open {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	for _, p := range procs {
		s.emit(s.open[p])
		delete(s.open, p)
	}
	if err := s.bw.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}
