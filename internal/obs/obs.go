// Package obs is the unified instrumentation layer: concurrency-safe
// timeline sinks and a per-run metrics registry, the production stand-in for
// the MPE/Jumpshot tooling the original S3aSim leaned on (paper §3).
//
// The package has three pillars:
//
//   - Sink — the timeline-event interface (span begin/end, point markers).
//     The in-memory trace.Tracer satisfies it unchanged; StreamSink writes
//     JSON-lines as events complete; PerfettoSink collects a run and exports
//     Chrome trace-event JSON that opens directly in ui.perfetto.dev.
//   - Registry — concurrency-safe counters, gauges, and virtual-time
//     histograms (built on internal/stats), populated by the engine and the
//     pvfs layer and snapshotted into every core.Report.
//   - Snapshot — an immutable view of a Registry that merges
//     deterministically, so sweeps aggregate per-cell metrics in their
//     deterministic cell order and stay bit-identical at any parallelism.
package obs

import (
	"sync"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

// Sink receives per-process timeline events. BeginState closes the process's
// current state (if any) and opens a new one; EndState closes without
// opening; Point records an instantaneous marker.
//
// The DES kernel is single-threaded, so a sink used by one simulation needs
// no locking — the in-memory trace.Tracer qualifies. A sink shared across
// concurrently running simulations must be concurrency-safe (StreamSink is;
// wrap others with Locked).
type Sink interface {
	BeginState(proc, name string, at des.Time)
	EndState(proc string, at des.Time)
	Point(proc, name string, at des.Time)
}

// The in-memory tracer is the reference Sink implementation.
var _ Sink = (*trace.Tracer)(nil)

// multiSink fans every event out to each member, in order.
type multiSink []Sink

func (m multiSink) BeginState(proc, name string, at des.Time) {
	for _, s := range m {
		s.BeginState(proc, name, at)
	}
}

func (m multiSink) EndState(proc string, at des.Time) {
	for _, s := range m {
		s.EndState(proc, at)
	}
}

func (m multiSink) Point(proc, name string, at des.Time) {
	for _, s := range m {
		s.Point(proc, name, at)
	}
}

// Multi combines sinks into one that forwards every event to each, in
// argument order. Nil entries are dropped; Multi returns nil when nothing
// remains and the sole survivor when only one does.
func Multi(sinks ...Sink) Sink {
	var kept multiSink
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// lockedSink serializes access to an underlying sink.
type lockedSink struct {
	mu sync.Mutex
	s  Sink
}

// Locked wraps a sink with a mutex so it can be shared across concurrently
// running simulations (e.g. one tracer fed by several sweep cells). Event
// order across simulations then depends on goroutine scheduling — prefer
// per-cell sinks (experiments.Options.CellSink) when determinism matters.
func Locked(s Sink) Sink {
	if s == nil {
		return nil
	}
	return &lockedSink{s: s}
}

func (l *lockedSink) BeginState(proc, name string, at des.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.BeginState(proc, name, at)
}

func (l *lockedSink) EndState(proc string, at des.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.EndState(proc, at)
}

func (l *lockedSink) Point(proc, name string, at des.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.Point(proc, name, at)
}
