package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

func TestRegistryCountersGaugesHists(t *testing.T) {
	r := NewRegistry()
	r.Add("reqs", 2)
	r.Add("reqs", 3)
	r.Set("util", 0.5)
	r.Set("util", 0.75)
	for _, v := range []float64{1, 2, 3, 4} {
		r.Observe("wait", v)
	}
	r.ObserveTime("dur", 2*des.Second)

	s := r.Snapshot()
	if s.Counters["reqs"] != 5 {
		t.Fatalf("counter = %d, want 5", s.Counters["reqs"])
	}
	if s.Gauges["util"] != 0.75 {
		t.Fatalf("gauge = %g, want last-set 0.75", s.Gauges["util"])
	}
	h := s.Hists["wait"]
	if h.Count != 4 || h.Min != 1 || h.Max != 4 || h.Mean != 2.5 || h.Sum != 10 {
		t.Fatalf("hist = %+v", h)
	}
	if h.P50 <= h.Min || h.P99 > h.Max {
		t.Fatalf("quantiles out of range: %+v", h)
	}
	if d := s.Hists["dur"]; d.Count != 1 || d.Mean != 2 {
		t.Fatalf("ObserveTime should record seconds: %+v", d)
	}
	if s.Empty() {
		t.Fatal("populated snapshot reported empty")
	}
	if !(Snapshot{}).Empty() {
		t.Fatal("zero snapshot should be empty")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Add("c", 1)
	s := r.Snapshot()
	r.Add("c", 10)
	if s.Counters["c"] != 1 {
		t.Fatal("snapshot aliases live registry state")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Add("reqs", 3)
	a.Set("overall", 1.5)
	a.Observe("wait", 1)
	a.Observe("wait", 3)
	b := NewRegistry()
	b.Add("reqs", 4)
	b.Add("only_b", 1)
	b.Set("overall", 2.5)
	b.Observe("wait", 5)
	b.Observe("wait", 7)
	b.Observe("only_b_hist", 9)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["reqs"] != 7 || m.Counters["only_b"] != 1 {
		t.Fatalf("counters = %v", m.Counters)
	}
	if m.Gauges["overall"] != 2.5 {
		t.Fatalf("gauge should take the merged-in value: %v", m.Gauges)
	}
	h := m.Hists["wait"]
	if h.Count != 4 || h.Min != 1 || h.Max != 7 || h.Sum != 16 || h.Mean != 4 {
		t.Fatalf("merged hist = %+v", h)
	}
	if o := m.Hists["only_b_hist"]; o.Count != 1 || o.Mean != 9 {
		t.Fatalf("one-sided hist = %+v", o)
	}
	// Merging into the zero snapshot is how sweeps start their accumulator.
	z := (Snapshot{}).Merge(a.Snapshot())
	if z.Counters["reqs"] != 3 || z.Hists["wait"].Count != 2 {
		t.Fatalf("zero-merge = %+v", z)
	}
	// Merge must not mutate its inputs.
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	if sa.Counters["reqs"] != 3 {
		t.Fatal("Merge mutated its receiver")
	}
}

func TestSnapshotMergeQuantilesWeighted(t *testing.T) {
	a := Snapshot{Hists: map[string]HistStat{
		"h": {Count: 1, Sum: 10, Min: 10, Max: 10, Mean: 10, P50: 10, P95: 10, P99: 10},
	}}
	b := Snapshot{Hists: map[string]HistStat{
		"h": {Count: 3, Sum: 6, Min: 1, Max: 3, Mean: 2, P50: 2, P95: 2, P99: 2},
	}}
	h := a.Merge(b).Hists["h"]
	if want := (10.0*1 + 2.0*3) / 4; math.Abs(h.P50-want) > 1e-9 {
		t.Fatalf("P50 = %g, want count-weighted %g", h.P50, want)
	}
	if h.Count != 4 || h.Min != 1 || h.Max != 10 || h.Mean != 4 {
		t.Fatalf("merged = %+v", h)
	}
}

func TestSnapshotRender(t *testing.T) {
	r := NewRegistry()
	r.Add("zeta", 1)
	r.Add("alpha", 2)
	r.Set("g", 3.5)
	r.Observe("h", 1)
	out := r.Snapshot().Render()
	for _, want := range []string{"counters:", "gauges:", "histograms", "alpha", "zeta", "3.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	if (Snapshot{}).Render() != "" {
		t.Fatal("empty snapshot should render to nothing")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("n", 1)
				r.Observe("v", float64(i))
				r.Set("g", float64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 8000 || s.Hists["v"].Count != 8000 {
		t.Fatalf("lost updates: %+v", s.Counters)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing should be nil")
	}
	a, b := trace.New(), trace.New()
	if got := Multi(nil, a); got != Sink(a) {
		t.Fatal("single survivor should be returned unwrapped")
	}
	m := Multi(a, b)
	m.BeginState("p", "X", 0)
	m.Point("p", "mark", 5)
	m.EndState("p", 10)
	for _, tr := range []*trace.Tracer{a, b} {
		ev := tr.Events()
		if len(ev) != 2 || ev[0].Name != "X" || ev[0].End != 10 || !ev[1].Point {
			t.Fatalf("fan-out events = %+v", ev)
		}
	}
}

func TestLockedConcurrent(t *testing.T) {
	if Locked(nil) != nil {
		t.Fatal("Locked(nil) should be nil")
	}
	s := Locked(trace.New())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			proc := fmt.Sprintf("p%d", g)
			for i := 0; i < 200; i++ {
				s.BeginState(proc, "S", des.Time(i))
				s.Point(proc, "m", des.Time(i))
			}
			s.EndState(proc, 200)
		}()
	}
	wg.Wait()
}

func TestStreamSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamSink(&buf)
	s.BeginState("a", "Compute", 0)
	s.BeginState("a", "I/O", 10)
	s.EndState("a", 15)
	s.Point("b", "mark", 7)
	s.BeginState("c", "Sync", 20) // left open: Close must flush it
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]trace.Event{}
	for _, e := range events {
		byKey[e.Proc+"/"+e.Name] = e
	}
	if len(events) != 4 {
		t.Fatalf("events = %d: %+v", len(events), events)
	}
	if e := byKey["a/Compute"]; e.Start != 0 || e.End != 10 {
		t.Fatalf("Compute = %+v", e)
	}
	if e := byKey["a/I/O"]; e.End != 15 {
		t.Fatalf("I/O = %+v", e)
	}
	if e := byKey["b/mark"]; !e.Point || e.Start != 7 {
		t.Fatalf("mark = %+v", e)
	}
	if e := byKey["c/Sync"]; e.Start != 20 || e.End != 20 {
		t.Fatalf("open state should flush with End == begin: %+v", e)
	}
}

// TestStreamSinkMatchesTracer checks the equivalence that makes StreamSink a
// drop-in for the tracer: the same event feed yields the same set of records
// (the stream reorders to completion order, nothing more).
func TestStreamSinkMatchesTracer(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamSink(&buf)
	tr := trace.New()
	feed := func(sink Sink) {
		sink.BeginState("w", "Compute", 0)
		sink.BeginState("w", "I/O", 50)
		sink.EndState("w", 80)
		sink.BeginState("m", "Data Distribution", 0)
		sink.EndState("m", 80)
		sink.Point("w", "flush", 60)
	}
	feed(s)
	feed(tr)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("event count %d vs %d", len(got), len(want))
	}
	seen := map[trace.Event]int{}
	for _, e := range got {
		seen[e]++
	}
	for _, e := range want {
		if seen[e] == 0 {
			t.Fatalf("stream missing event %+v", e)
		}
		seen[e]--
	}
	// Same records, so the rendered Gantt charts agree too.
	if trace.Gantt(got, 40) != trace.Gantt(want, 40) {
		t.Fatal("stream and tracer render different charts")
	}
}

func TestStreamSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamSink(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			proc := fmt.Sprintf("p%d", g)
			for i := 0; i < 100; i++ {
				s.BeginState(proc, "S", des.Time(2*i))
				s.EndState(proc, des.Time(2*i+1))
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 800 {
		t.Fatalf("events = %d, want 800", len(events))
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return 0, fmt.Errorf("disk full after %d bytes", w.n)
}

func TestStreamSinkReportsWriteError(t *testing.T) {
	s := NewStreamSink(&failWriter{})
	for i := 0; i < 2000; i++ { // enough to overflow the bufio buffer
		s.Point("p", "m", des.Time(i))
	}
	if err := s.Close(); err == nil {
		t.Fatal("write error swallowed")
	}
}
