package obs

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"s3asim/internal/des"
)

func TestWindowedRatesAndGaps(t *testing.T) {
	r := NewRegistry()
	now := des.Time(0)
	r.EnableWindows(des.Second, func() des.Time { return now })

	now = des.FromSeconds(0.5)
	r.Add("reqs", 3)
	now = des.FromSeconds(2.5) // window 1 stays empty
	r.Add("reqs", 7)
	r.Set("depth", 4)
	r.FreezeWindows(des.FromSeconds(4.2))

	s := r.Windows()
	if s == nil || s.Width != des.Second {
		t.Fatalf("series = %+v", s)
	}
	if len(s.Windows) != 5 {
		t.Fatalf("want 5 contiguous windows through freeze time, got %d", len(s.Windows))
	}
	if got := s.Windows[0].Counters["reqs"]; got != 3 {
		t.Errorf("window 0 reqs = %d, want 3", got)
	}
	if s.Windows[1].Counters != nil {
		t.Errorf("window 1 should be empty, got %v", s.Windows[1].Counters)
	}
	if got := s.Windows[2].Counters["reqs"]; got != 7 {
		t.Errorf("window 2 reqs = %d, want 7", got)
	}
	if got := s.Windows[2].Gauges["depth"]; got != 4 {
		t.Errorf("window 2 depth = %g, want 4", got)
	}
	if got := s.Rate("reqs", 2, 2); got != 7 {
		t.Errorf("rate over window 2 = %g, want 7/s", got)
	}
	if got := s.Rate("reqs", 0, 4); got != 2 {
		t.Errorf("rate over all 5 windows = %g, want 10/5s", got)
	}
	// Lookbacks reaching before the series start use the nominal span.
	if got := s.Rate("reqs", -3, 0); got != 0.75 {
		t.Errorf("rate over [-3,0] = %g, want 3/4s", got)
	}
	if w := s.Windows[2]; w.Start != des.FromSeconds(2) || w.End != des.FromSeconds(3) {
		t.Errorf("window 2 bounds = [%v, %v]", w.Start, w.End)
	}
}

func TestWindowFreezeRedirectsLateMutations(t *testing.T) {
	r := NewRegistry()
	now := des.Time(0)
	r.EnableWindows(des.Second, func() des.Time { return now })
	r.FreezeWindows(des.FromSeconds(3.5))
	// Post-run backfill without explicit timestamps lands in the final
	// window regardless of the (dead) clock.
	now = des.FromSeconds(99)
	r.Add("late", 1)
	r.Observe("h", 2.5)
	s := r.Windows()
	if len(s.Windows) != 4 {
		t.Fatalf("want 4 windows, got %d", len(s.Windows))
	}
	last := s.Last()
	if last.Counters["late"] != 1 || last.Hists["h"].Count != 1 {
		t.Errorf("late mutations missed the final window: %+v", last)
	}
	if err := s.Conserve(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

// The conservation property at unit scale: a deterministic pseudo-random
// stream of counter adds, gauge sets, and observations (live-clock and
// explicit-timestamp) must conserve exactly — bit-exact sums included —
// against the end-of-run snapshot.
func TestWindowConservationProperty(t *testing.T) {
	r := NewRegistry()
	now := des.Time(0)
	r.EnableWindows(100*des.Millisecond, func() des.Time { return now })

	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	names := []string{"a", "b", "c"}
	for i := 0; i < 5000; i++ {
		at := des.Time(next() % uint64(des.FromSeconds(3)))
		v := float64(next()%1000)/100 + 1e-3
		name := names[next()%3]
		switch next() % 4 {
		case 0:
			now = at
			r.Add("ctr."+name, int64(next()%5))
		case 1:
			r.AddAt("ctr."+name, int64(next()%5), at)
		case 2:
			now = at
			r.Observe("lat."+name, v)
		case 3:
			r.ObserveExemplarAt("lat."+name, v, int64(i), at)
		}
		if i%97 == 0 {
			// Gauge conservation assumes time-ordered writes (as the engine
			// produces); use a monotone timestamp.
			r.SetAt("g."+name, v, des.FromSeconds(3*float64(i)/5000))
		}
	}
	r.FreezeWindows(des.FromSeconds(3))
	s := r.Windows()
	snap := r.Snapshot()
	if err := s.Conserve(snap); err != nil {
		t.Fatal(err)
	}
	// The bit-exactness is load-bearing: summing window sums in ascending
	// order must reproduce the snapshot Sum with == on float64.
	for name, h := range snap.Hists {
		var sum float64
		for _, w := range s.Windows {
			sum += w.Hists[name].Sum
		}
		if sum != h.Sum {
			t.Errorf("hist %s: window sum %v != snapshot sum %v (diff %g)", name, sum, h.Sum, sum-h.Sum)
		}
		if h.Count > 0 && h.Mean != h.Sum/float64(h.Count) {
			t.Errorf("hist %s: mean %v not derived from canonical sum", name, h.Mean)
		}
	}
}

func TestConserveDetectsViolations(t *testing.T) {
	r := NewRegistry()
	now := des.Time(0)
	r.EnableWindows(des.Second, func() des.Time { return now })
	r.Add("c", 2)
	r.Observe("h", 1.5)
	s := r.Windows()
	snap := r.Snapshot()
	if err := s.Conserve(snap); err != nil {
		t.Fatalf("clean state: %v", err)
	}
	snap.Counters["c"] = 3
	if err := s.Conserve(snap); err == nil {
		t.Error("counter mismatch not detected")
	}
	snap.Counters["c"] = 2
	h := snap.Hists["h"]
	h.Sum += 1e-9
	snap.Hists["h"] = h
	if err := s.Conserve(snap); err == nil {
		t.Error("histogram sum drift not detected")
	}
}

func TestHistOverMergesWindows(t *testing.T) {
	r := NewRegistry()
	r.EnableWindows(des.Second, nil)
	for i := 0; i < 100; i++ {
		r.ObserveAt("lat", float64(i+1)/100, des.FromSeconds(float64(i%3)+0.5))
	}
	s := r.Windows()
	m := s.HistOver("lat", 0, 2)
	if m.Count != 100 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if m.Min != 0.01 || m.Max != 1 {
		t.Errorf("merged min/max = %g/%g", m.Min, m.Max)
	}
	if m.P50 < 0.4 || m.P50 > 0.6 {
		t.Errorf("merged p50 = %g", m.P50)
	}
	if got := s.HistOver("lat", 5, 9).Count; got != 0 {
		t.Errorf("out-of-range merge count = %d", got)
	}
}

func TestExemplarsDeterministicTopK(t *testing.T) {
	// All values land in one bucket (identical value): retention keeps the
	// K smallest IDs, independent of insertion order.
	r1, r2 := NewRegistry(), NewRegistry()
	ids := []int64{5, 3, 9, 1, 7, 2}
	for _, id := range ids {
		r1.ObserveExemplar("h", 2.0, id)
	}
	for i := len(ids) - 1; i >= 0; i-- {
		r2.ObserveExemplar("h", 2.0, ids[i])
	}
	e1 := r1.Snapshot().Hists["h"].Exemplars
	e2 := r2.Snapshot().Hists["h"].Exemplars
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("insertion order changed exemplars: %v vs %v", e1, e2)
	}
	key := bucketKey(2.0)
	got := e1[key]
	want := []Exemplar{{ID: 1, V: 2}, {ID: 2, V: 2}, {ID: 3, V: 2}, {ID: 5, V: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("exemplars = %v, want %v", got, want)
	}
}

func TestExemplarsKeepMaxValuePerBucket(t *testing.T) {
	r := NewRegistry()
	// Values in one bucket vary within the bucket's range: max-value wins.
	base := bucketValue(bucketKey(1.0))
	for i := 0; i < 10; i++ {
		r.ObserveExemplar("h", base*(1+float64(i)/1000), int64(i))
	}
	ex := r.Snapshot().Hists["h"].Exemplars
	list := ex[bucketKey(base)]
	if len(list) != histExemplars {
		t.Fatalf("kept %d exemplars, want %d", len(list), histExemplars)
	}
	if list[0].ID != 9 {
		t.Errorf("top exemplar = %+v, want the max-value observation (ID 9)", list[0])
	}
	for i := 1; i < len(list); i++ {
		if list[i].V > list[i-1].V {
			t.Errorf("exemplars not in descending value order: %v", list)
		}
	}
}

func TestExemplarsSurviveMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.ObserveExemplar("h", 1.0, 1)
	b.ObserveExemplar("h", 1.0, 2)
	m := a.Snapshot().Merge(b.Snapshot())
	list := m.Hists["h"].Exemplars[bucketKey(1.0)]
	if len(list) != 2 || list[0].ID != 1 || list[1].ID != 2 {
		t.Fatalf("merged exemplars = %v", list)
	}
}

// The windowed registry must stay fixed-memory: after warm-up, a million
// observations into an already-touched window/bucket allocate nothing.
func TestWindowedRegistryBoundedMemoryAtMillionObservations(t *testing.T) {
	r := NewRegistry()
	now := des.Time(0)
	r.EnableWindows(des.Second, func() des.Time { return now })
	const n = 1_000_000
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = math.Exp(float64(i%37) / 5)
	}
	// Warm up every (window, bucket) cell this loop will touch.
	warm := func(scale int) {
		for i := 0; i < scale; i++ {
			now = des.FromSeconds(float64(i % 10))
			v := vals[i%len(vals)]
			r.Observe("lat", v)
			r.ObserveExemplar("lat.ex", v, int64(i))
			r.Add("reqs", 1)
		}
	}
	warm(len(vals) * 10)
	allocs := testing.AllocsPerRun(1, func() { warm(n) })
	// 3e6 recordings; allow a whisper of noise but nothing per-observation.
	if allocs > 100 {
		t.Fatalf("windowed registry allocated %.0f times across %d observations; want O(1)", allocs, 3*n)
	}
}

func TestSeriesTableRenders(t *testing.T) {
	r := NewRegistry()
	r.EnableWindows(des.Second, nil)
	r.AddAt("reqs", 10, des.FromSeconds(0.5))
	r.ObserveAt("lat", 0.2, des.FromSeconds(0.5))
	r.SetAt("depth", 3, des.FromSeconds(0.5))
	s := r.Windows()
	out := s.Table("win", "reqs", "lat", "depth").String()
	for _, want := range []string{"reqs (/s)", "lat mean", "lat p99", "depth", "10.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
