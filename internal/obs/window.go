package obs

import (
	"fmt"
	"sort"

	"s3asim/internal/des"
	"s3asim/internal/stats"
)

// This file is the windowed time-series layer of the telemetry pipeline
// (DESIGN.md §15): tumbling windows over *virtual* time that turn the
// registry's counters into rates, track gauges, and keep a per-window
// log-bucketed histogram next to each whole-run histogram. Windows are pure
// accumulators — nothing is sealed while the run executes, so recording
// costs one map lookup and a few adds, and the series is materialized once
// at the end of the run.
//
// The contract mirrors causal.Check: window values must conserve exactly
// against the end-of-run Snapshot (Series.Conserve). To make the float sum
// invariant bit-exact rather than approximately true, Snapshot itself
// computes each histogram's Sum by adding the per-window sums in ascending
// window order whenever windows are enabled — the identical float operations
// Conserve performs.

// winState holds a registry's window accumulators. It is guarded by the
// owning Registry's mutex; none of its methods lock.
type winState struct {
	width des.Time
	// clock supplies the virtual time for mutators without an explicit
	// timestamp (Add/Set/Observe). After FreezeWindows it is detached and
	// frozenAt is used instead, so post-run backfill lands deterministically.
	clock    func() des.Time
	frozen   bool
	frozenAt des.Time
	wins     map[int64]*winAcc
	maxIdx   int64
}

// winAcc accumulates one window's worth of metrics.
type winAcc struct {
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*winHist
}

// winHist is a fixed-memory per-window histogram: exact count/sum/min/max
// (sum by plain accumulation, so conservation against the snapshot is a
// matter of re-adding in the same order) plus the same sparse log-linear
// buckets as the whole-run histogram.
type winHist struct {
	count         int64
	sum, min, max float64
	buckets       map[int32]int64
}

func (w *winState) now() des.Time {
	if w.frozen || w.clock == nil {
		return w.frozenAt
	}
	return w.clock()
}

// idx maps a virtual time to its window index; window k covers
// [k·width, (k+1)·width). Negative times clamp to window 0.
func (w *winState) idx(at des.Time) int64 {
	if at < 0 {
		return 0
	}
	return int64(at) / int64(w.width)
}

func (w *winState) acc(at des.Time) *winAcc {
	i := w.idx(at)
	if i > w.maxIdx {
		w.maxIdx = i
	}
	a := w.wins[i]
	if a == nil {
		a = &winAcc{}
		w.wins[i] = a
	}
	return a
}

func (w *winState) add(name string, delta int64, at des.Time) {
	a := w.acc(at)
	if a.counters == nil {
		a.counters = make(map[string]int64)
	}
	a.counters[name] += delta
}

func (w *winState) set(name string, v float64, at des.Time) {
	a := w.acc(at)
	if a.gauges == nil {
		a.gauges = make(map[string]float64)
	}
	a.gauges[name] = v
}

func (w *winState) observe(name string, v float64, key int32, at des.Time) {
	a := w.acc(at)
	if a.hists == nil {
		a.hists = make(map[string]*winHist)
	}
	h := a.hists[name]
	if h == nil {
		h = &winHist{buckets: make(map[int32]int64)}
		a.hists[name] = h
	}
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	h.buckets[key]++
}

// sortedIdx returns the populated window indices in ascending order.
func (w *winState) sortedIdx() []int64 {
	idx := make([]int64, 0, len(w.wins))
	for i := range w.wins {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx
}

// histTotals re-adds one histogram's per-window sums in ascending window
// order — the canonical Sum for snapshots of a windowed registry, and the
// exact computation Series.Conserve repeats.
func (w *winState) histTotals(name string) (sum float64, ok bool) {
	for _, i := range w.sortedIdx() {
		if h := w.wins[i].hists[name]; h != nil {
			sum += h.sum
			ok = true
		}
	}
	return sum, ok
}

// EnableWindows switches the registry into windowed mode: every subsequent
// mutation is also folded into the tumbling virtual-time window of the given
// width. clock supplies the current virtual time for mutators without an
// explicit timestamp (pass sim.Now). Re-enabling discards any prior windows.
func (r *Registry) EnableWindows(width des.Time, clock func() des.Time) {
	if width <= 0 {
		panic("obs: EnableWindows requires a positive width")
	}
	r.mu.Lock()
	r.win = &winState{width: width, clock: clock, wins: make(map[int64]*winAcc)}
	r.mu.Unlock()
}

// FreezeWindows detaches the window clock at the end of a run: the series is
// extended to cover `end` (trailing quiet windows exist, so alert rules see
// the recovery), and post-run mutators without an explicit timestamp land in
// the final window. No-op when windows are disabled.
func (r *Registry) FreezeWindows(end des.Time) {
	r.mu.Lock()
	if w := r.win; w != nil {
		w.frozen, w.frozenAt = true, end
		if i := w.idx(end); i > w.maxIdx {
			w.maxIdx = i
		}
	}
	r.mu.Unlock()
}

// AddAt is Add with an explicit virtual timestamp for the window layer —
// used to backfill event-time metrics (a query that finished at t) after the
// fact. Identical to Add when windows are disabled.
func (r *Registry) AddAt(name string, delta int64, at des.Time) {
	r.mu.Lock()
	r.counters[name] += delta
	if r.win != nil {
		r.win.add(name, delta, at)
	}
	r.mu.Unlock()
}

// SetAt is Set with an explicit virtual timestamp for the window layer.
func (r *Registry) SetAt(name string, v float64, at des.Time) {
	r.mu.Lock()
	r.gauges[name] = v
	if r.win != nil {
		r.win.set(name, v, at)
	}
	r.mu.Unlock()
}

// ObserveAt is Observe with an explicit virtual timestamp for the window
// layer.
func (r *Registry) ObserveAt(name string, v float64, at des.Time) {
	r.observe(name, v, nil, &at)
}

// Window is one materialized tumbling window covering [Start, End). Maps are
// nil for windows nothing landed in.
type Window struct {
	Index    int64
	Start    des.Time
	End      des.Time
	Counters map[string]int64    `json:",omitempty"`
	Gauges   map[string]float64  `json:",omitempty"`
	Hists    map[string]HistStat `json:",omitempty"`
}

// Series is a registry's materialized windowed time-series: contiguous
// windows from virtual time zero through the end of the run (empty windows
// included, so rates and quantile lookbacks see quiet periods as zeros).
type Series struct {
	Width   des.Time
	Windows []Window
}

// Windows materializes the registry's windowed series. Returns nil when
// windows were never enabled.
func (r *Registry) Windows() *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.win
	if w == nil {
		return nil
	}
	s := &Series{Width: w.width, Windows: make([]Window, w.maxIdx+1)}
	for i := range s.Windows {
		win := &s.Windows[i]
		win.Index = int64(i)
		win.Start = des.Time(int64(i) * int64(w.width))
		win.End = win.Start + w.width
		a := w.wins[int64(i)]
		if a == nil {
			continue
		}
		if len(a.counters) > 0 {
			win.Counters = make(map[string]int64, len(a.counters))
			for k, v := range a.counters {
				win.Counters[k] = v
			}
		}
		if len(a.gauges) > 0 {
			win.Gauges = make(map[string]float64, len(a.gauges))
			for k, v := range a.gauges {
				win.Gauges[k] = v
			}
		}
		if len(a.hists) > 0 {
			win.Hists = make(map[string]HistStat, len(a.hists))
			for k, h := range a.hists {
				win.Hists[k] = h.stat()
			}
		}
	}
	return s
}

// stat converts a window histogram into a HistStat with the exact
// accumulated sum (not the mean-derived one).
func (h *winHist) stat() HistStat {
	st := HistStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		st.Mean = h.sum / float64(h.count)
	}
	st.Buckets = make(map[int32]int64, len(h.buckets))
	for k, n := range h.buckets {
		st.Buckets[k] = n
	}
	qs := bucketQuantiles(st.Buckets, st.Count, 0.5, 0.95, 0.99)
	st.P50 = clamp(qs[0], st.Min, st.Max)
	st.P95 = clamp(qs[1], st.Min, st.Max)
	st.P99 = clamp(qs[2], st.Min, st.Max)
	return st
}

// Last returns the final window, or a zero Window for an empty series.
func (s *Series) Last() Window {
	if s == nil || len(s.Windows) == 0 {
		return Window{}
	}
	return s.Windows[len(s.Windows)-1]
}

// CounterSum adds the named counter over the window index range [from, to]
// (clamped to the series).
func (s *Series) CounterSum(name string, from, to int64) int64 {
	var sum int64
	for i := max64(from, 0); i <= to && i < int64(len(s.Windows)); i++ {
		sum += s.Windows[i].Counters[name]
	}
	return sum
}

// Rate converts the named counter's total over [from, to] into a per-second
// rate using the nominal span (windows before the series start count as
// empty, so early lookbacks aren't inflated).
func (s *Series) Rate(name string, from, to int64) float64 {
	n := to - from + 1
	if n <= 0 {
		return 0
	}
	span := des.Time(n * int64(s.Width)).Seconds()
	return float64(s.CounterSum(name, from, to)) / span
}

// HistOver merges the named histogram over the window index range [from, to]
// (clamped): exact count/sum/min/max, buckets summed, quantiles re-read from
// the merged buckets.
func (s *Series) HistOver(name string, from, to int64) HistStat {
	var m HistStat
	for i := max64(from, 0); i <= to && i < int64(len(s.Windows)); i++ {
		h, ok := s.Windows[i].Hists[name]
		if !ok || h.Count == 0 {
			continue
		}
		if m.Count == 0 {
			m = HistStat{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
			m.Buckets = make(map[int32]int64, len(h.Buckets))
		} else {
			m.Count += h.Count
			m.Sum += h.Sum
			if h.Min < m.Min {
				m.Min = h.Min
			}
			if h.Max > m.Max {
				m.Max = h.Max
			}
		}
		for k, n := range h.Buckets {
			m.Buckets[k] += n
		}
	}
	if m.Count > 0 {
		m.Mean = m.Sum / float64(m.Count)
		qs := bucketQuantiles(m.Buckets, m.Count, 0.5, 0.95, 0.99)
		m.P50 = clamp(qs[0], m.Min, m.Max)
		m.P95 = clamp(qs[1], m.Min, m.Max)
		m.P99 = clamp(qs[2], m.Min, m.Max)
	}
	return m
}

// Conserve verifies the window/snapshot conservation invariant (the
// telemetry analogue of causal.Check): every counter's window values sum to
// its snapshot total; every histogram's window counts, sums, buckets, and
// min/max reproduce the snapshot exactly (sums bit-exactly, by re-adding in
// ascending window order — the same computation Snapshot performs); every
// gauge's snapshot value equals its value in the last window that set it
// (which assumes gauges are written in non-decreasing virtual time, as the
// engine does — last write wins on both sides).
// Returns nil on success, or an error naming the first violated series.
func (s *Series) Conserve(snap Snapshot) error {
	sums := map[string]int64{}
	for _, w := range s.Windows {
		for k, v := range w.Counters {
			sums[k] += v
		}
	}
	for _, k := range sortedKeys(snap.Counters) {
		if sums[k] != snap.Counters[k] {
			return fmt.Errorf("obs: counter %s: window sum %d != snapshot %d", k, sums[k], snap.Counters[k])
		}
		delete(sums, k)
	}
	for _, k := range sortedKeys(sums) {
		return fmt.Errorf("obs: counter %s: windows carry %d but snapshot lacks the series", k, sums[k])
	}

	type hsum struct {
		count   int64
		sum     float64
		min     float64
		max     float64
		buckets map[int32]int64
	}
	hsums := map[string]*hsum{}
	for _, w := range s.Windows {
		for k, h := range w.Hists {
			a := hsums[k]
			if a == nil {
				a = &hsum{min: h.Min, max: h.Max, buckets: map[int32]int64{}}
				hsums[k] = a
			}
			a.count += h.Count
			a.sum += h.Sum
			if h.Min < a.min {
				a.min = h.Min
			}
			if h.Max > a.max {
				a.max = h.Max
			}
			for bk, n := range h.Buckets {
				a.buckets[bk] += n
			}
		}
	}
	for _, k := range sortedKeys(snap.Hists) {
		sh := snap.Hists[k]
		a := hsums[k]
		if a == nil {
			if sh.Count != 0 {
				return fmt.Errorf("obs: hist %s: snapshot has %d observations but no windows", k, sh.Count)
			}
			continue
		}
		switch {
		case a.count != sh.Count:
			return fmt.Errorf("obs: hist %s: window count %d != snapshot %d", k, a.count, sh.Count)
		case a.sum != sh.Sum:
			return fmt.Errorf("obs: hist %s: window sum %v != snapshot %v", k, a.sum, sh.Sum)
		case a.min != sh.Min || a.max != sh.Max:
			return fmt.Errorf("obs: hist %s: window min/max %v/%v != snapshot %v/%v", k, a.min, a.max, sh.Min, sh.Max)
		}
		for bk, n := range a.buckets {
			if sh.Buckets[bk] != n {
				return fmt.Errorf("obs: hist %s: bucket %d window count %d != snapshot %d", k, bk, n, sh.Buckets[bk])
			}
		}
		for bk, n := range sh.Buckets {
			if a.buckets[bk] != n {
				return fmt.Errorf("obs: hist %s: bucket %d window count %d != snapshot %d", k, bk, a.buckets[bk], n)
			}
		}
		delete(hsums, k)
	}
	for _, k := range sortedKeys(hsums) {
		return fmt.Errorf("obs: hist %s: windows carry %d observations but snapshot lacks the series", k, hsums[k].count)
	}

	for _, k := range sortedKeys(snap.Gauges) {
		found := false
		var last float64
		for _, w := range s.Windows {
			if v, ok := w.Gauges[k]; ok {
				last, found = v, true
			}
		}
		if !found {
			return fmt.Errorf("obs: gauge %s: snapshot has a value but no window set it", k)
		}
		if last != snap.Gauges[k] {
			return fmt.Errorf("obs: gauge %s: last window value %v != snapshot %v", k, last, snap.Gauges[k])
		}
	}
	return nil
}

// Table renders selected metrics per window, one row per window: counters as
// per-second rates, histograms as count/mean/p99, gauges as raw values.
// Metrics absent from the series render as zeros.
func (s *Series) Table(title string, names ...string) *stats.Table {
	const (
		kindCounter = iota
		kindGauge
		kindHist
	)
	kinds := make([]int, len(names))
	for ni, name := range names {
		kinds[ni] = kindCounter
		for _, w := range s.Windows {
			if _, ok := w.Hists[name]; ok {
				kinds[ni] = kindHist
				break
			}
			if _, ok := w.Gauges[name]; ok {
				kinds[ni] = kindGauge
				break
			}
		}
	}
	headers := []string{"t (s)"}
	for ni, name := range names {
		switch kinds[ni] {
		case kindHist:
			headers = append(headers, name+" n", name+" mean", name+" p99")
		case kindGauge:
			headers = append(headers, name)
		default:
			headers = append(headers, name+" (/s)")
		}
	}
	t := stats.NewTable(title, headers...)
	for _, w := range s.Windows {
		row := []any{fmt.Sprintf("%.3f", w.End.Seconds())}
		for ni, name := range names {
			switch kinds[ni] {
			case kindHist:
				h := w.Hists[name]
				row = append(row, fmt.Sprintf("%d", h.Count),
					fmt.Sprintf("%.6g", h.Mean), fmt.Sprintf("%.6g", h.P99))
			case kindGauge:
				row = append(row, fmt.Sprintf("%.6g", w.Gauges[name]))
			default:
				row = append(row, fmt.Sprintf("%.2f", s.Rate(name, w.Index, w.Index)))
			}
		}
		t.AddRowf(row...)
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
