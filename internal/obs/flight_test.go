package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

func TestFlightRecorderRingBound(t *testing.T) {
	fl := NewFlightRecorder(8, des.FromSeconds(100), 1)
	for i := 0; i < 100; i++ {
		fl.Point("p", "ev", des.FromSeconds(float64(i)))
	}
	fl.Trigger("test", des.FromSeconds(99))
	dumps := fl.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d", len(dumps))
	}
	evs := dumps[0].Events
	if len(evs) != 8 {
		t.Fatalf("ring retained %d events, want 8", len(evs))
	}
	// Only the newest 8 survive, in time order.
	for i, e := range evs {
		if want := des.FromSeconds(float64(92 + i)); e.Start != want {
			t.Errorf("event %d at %v, want %v", i, e.Start, want)
		}
	}
}

func TestFlightRecorderKeepFilterAndOpenStates(t *testing.T) {
	fl := NewFlightRecorder(64, des.FromSeconds(2), 4)
	fl.Point("a", "old", des.FromSeconds(1))            // outside keep at trigger time
	fl.BeginState("b", "working", des.FromSeconds(2.5)) // still open: clipped to trigger
	fl.Point("a", "recent", des.FromSeconds(4.5))
	fl.Trigger("test", des.FromSeconds(5))
	evs := fl.Dumps()[0].Events
	if len(evs) != 2 {
		t.Fatalf("events = %+v, want open state + recent point", evs)
	}
	if evs[0].Proc != "b" || evs[0].Name != "working" || evs[0].End != des.FromSeconds(5) {
		t.Errorf("open state = %+v", evs[0])
	}
	if evs[1].Name != "recent" {
		t.Errorf("second event = %+v", evs[1])
	}
}

func TestFlightRecorderHoldoffAndCap(t *testing.T) {
	fl := NewFlightRecorder(16, des.FromSeconds(1), 2)
	fl.Trigger("one", des.FromSeconds(1))
	fl.Trigger("squelched", des.FromSeconds(1.5)) // within keep of "one"
	fl.Trigger("two", des.FromSeconds(3))
	fl.Trigger("over-cap", des.FromSeconds(10))
	dumps := fl.Dumps()
	if len(dumps) != 2 || dumps[0].Reason != "one" || dumps[1].Reason != "two" {
		t.Fatalf("dumps = %+v", dumps)
	}
	if dumps[0].Seq != 0 || dumps[1].Seq != 1 {
		t.Errorf("seqs = %d, %d", dumps[0].Seq, dumps[1].Seq)
	}
	if fl.Suppressed() != 2 {
		t.Errorf("suppressed = %d, want 2", fl.Suppressed())
	}
}

func TestFlightRecorderAutoTrigger(t *testing.T) {
	fl := NewFlightRecorder(16, des.FromSeconds(1), 4)
	fl.AutoTrigger("faults")
	fl.Point("serve", "q", des.FromSeconds(0.5)) // ordinary track: no dump
	fl.Point("faults", "crash rank=3", des.FromSeconds(0.7))
	dumps := fl.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	if dumps[0].Reason != "faults: crash rank=3" {
		t.Errorf("reason = %q", dumps[0].Reason)
	}
	if len(dumps[0].Events) != 2 {
		t.Errorf("events = %+v", dumps[0].Events)
	}
}

// Identical event streams must serialize to byte-identical JSONL artifacts —
// the determinism contract behind comparing dumps across sweep parallelism.
func TestFlightDumpJSONLDeterministic(t *testing.T) {
	build := func() ([]byte, error) {
		r := NewRegistry()
		r.EnableWindows(des.Second, nil)
		r.AddAt("total", 40, des.FromSeconds(1.5))
		r.FreezeWindows(des.FromSeconds(2))
		s := r.Windows()
		fl := NewFlightRecorder(16, des.FromSeconds(2), 2)
		fl.BeginState("w", "exec", des.FromSeconds(0.5))
		fl.EndState("w", des.FromSeconds(1.2))
		fl.Point("serve", "done", des.FromSeconds(1.4))
		fl.Trigger("alert hot", des.FromSeconds(2))
		alerts := []Alert{{Rule: "hot", Window: 1, At: des.FromSeconds(2), Fired: true, Value: 40, Slow: 40, Threshold: 10}}
		var buf bytes.Buffer
		d := fl.Dumps()[0]
		err := d.WriteJSONL(&buf, s, alerts)
		return buf.Bytes(), err
	}
	a, err := build()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := build()
	if !bytes.Equal(a, b) {
		t.Fatalf("dump bytes differ between identical runs:\n%s\n---\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(string(a)), "\n")
	wantTypes := []string{`"type":"meta"`, `"type":"window"`, `"type":"window"`, `"type":"window"`, `"type":"alert"`, `"type":"event"`, `"type":"event"`}
	if len(lines) != len(wantTypes) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(wantTypes), a)
	}
	for i, want := range wantTypes {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d = %s, want %s", i, lines[i], want)
		}
	}
	// Event records must stay valid trace.Event JSON (the Perfetto bridge).
	if !strings.Contains(lines[5], `"proc":"w"`) || !strings.Contains(lines[5], `"name":"exec"`) {
		t.Errorf("event line = %s", lines[5])
	}
}

func TestFlightRecorderIsASink(t *testing.T) {
	var _ Sink = (*FlightRecorder)(nil)
	// And it coexists with a tracer under Multi.
	fl := NewFlightRecorder(4, des.Second, 1)
	tr := trace.New()
	m := Multi(tr, fl)
	m.Point("p", "x", des.FromSeconds(0.5))
	fl.Trigger("t", des.FromSeconds(1))
	if len(fl.Dumps()) != 1 || len(tr.Events()) != 1 {
		t.Fatal("Multi did not fan out to both sinks")
	}
	if !reflect.DeepEqual(fl.Dumps()[0].Events, tr.Events()) {
		t.Errorf("flight events %+v != tracer events %+v", fl.Dumps()[0].Events, tr.Events())
	}
}
