package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

// flowEvents is the flow-event fixture: two processes exchanging two
// messages, with phase slices for the arrows to bind to.
func flowEvents() []trace.Event {
	tr := trace.New()
	tr.BeginState("master0", "Gather Results", 0)
	tr.EndState("master0", 3*des.Second)
	tr.BeginState("worker1", "Compute", 0)
	tr.EndState("worker1", 3*des.Second)
	evs := tr.Events()
	evs = append(evs,
		trace.Event{Proc: "worker1", Name: "msg.2", Start: des.Second, End: des.Second,
			Point: true, Flow: trace.FlowStart, FlowID: 7},
		trace.Event{Proc: "master0", Name: "msg.2", Start: 1200 * des.Millisecond, End: 1200 * des.Millisecond,
			Point: true, Flow: trace.FlowFinish, FlowID: 7},
		trace.Event{Proc: "master0", Name: "msg.3", Start: 2 * des.Second, End: 2 * des.Second,
			Point: true, Flow: trace.FlowStart, FlowID: 8},
		trace.Event{Proc: "worker1", Name: "msg.3", Start: 2100 * des.Millisecond, End: 2100 * des.Millisecond,
			Point: true, Flow: trace.FlowFinish, FlowID: 8},
	)
	return evs
}

func TestWritePerfettoFlowGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, flowEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_flow_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("perfetto flow output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

// TestPerfettoFlowSchema checks the flow-event contract: every "s" has "f"
// with the same id and no earlier timestamp, finishes bind to the enclosing
// slice (bp:"e"), and ids are unique per arrow.
func TestPerfettoFlowSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, flowEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	type end struct {
		ts   float64
		seen bool
	}
	starts := map[float64]end{}
	finishes := map[float64]end{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph != "s" && ph != "f" {
			continue
		}
		if ev["cat"] != "flow" {
			t.Fatalf("flow event should carry cat=flow: %v", ev)
		}
		id, ok := ev["id"].(float64)
		if !ok {
			t.Fatalf("flow event without id: %v", ev)
		}
		ts := ev["ts"].(float64)
		if ph == "s" {
			if starts[id].seen {
				t.Fatalf("duplicate flow start id %v", id)
			}
			starts[id] = end{ts: ts, seen: true}
		} else {
			if ev["bp"] != "e" {
				t.Fatalf("flow finish must bind to enclosing slice: %v", ev)
			}
			if finishes[id].seen {
				t.Fatalf("duplicate flow finish id %v", id)
			}
			finishes[id] = end{ts: ts, seen: true}
		}
	}
	if len(starts) == 0 {
		t.Fatal("fixture produced no flow events")
	}
	if len(starts) != len(finishes) {
		t.Fatalf("unpaired flows: %d starts, %d finishes", len(starts), len(finishes))
	}
	for id, s := range starts {
		f, ok := finishes[id]
		if !ok {
			t.Fatalf("flow %v has no finish", id)
		}
		if f.ts < s.ts {
			t.Fatalf("flow %v arrives before it is sent: %g < %g", id, f.ts, s.ts)
		}
	}
}

// TestFlowEventsRoundTripJSONL pins that flow events survive the JSONL
// trace format unchanged, so spooled traces can be re-exported with arrows.
func TestFlowEventsRoundTripJSONL(t *testing.T) {
	evs := flowEvents()
	var buf bytes.Buffer
	tr := trace.New()
	_ = tr
	enc := json.NewEncoder(&buf)
	for _, e := range evs {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("round trip lost events: %d vs %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d drifted: %+v vs %+v", i, got[i], evs[i])
		}
	}
}
