package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

// The Perfetto exporter emits the Chrome trace-event JSON object format
// (the "JSON Array Format" wrapped in {"traceEvents": ...}), which loads
// directly in ui.perfetto.dev and chrome://tracing — the modern stand-in
// for the Jumpshot timelines of paper §3. Each simulated process becomes a
// named thread of one process; states become complete ("X") slices and
// point markers become thread-scoped instant ("i") events. Timestamps are
// microseconds of virtual time.

// chromeEvent is one entry of the trace-event array. Field presence follows
// the Chrome trace-event format spec: every event carries ph/ts/pid/tid;
// "X" events add dur; "i" events add a scope; "M" metadata events add args.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    *uint64        `json:"id,omitempty"` // flow events: pairing id
	BP    string         `json:"bp,omitempty"` // flow finish binding point
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// PerfettoEvents converts timeline events to the Chrome trace-event array:
// thread-name metadata for every process (sorted, so tids are stable), then
// the events in recorded order. Zero-length states (e.g. still-open states
// flushed by a tracer) export as zero-duration slices.
func PerfettoEvents(events []trace.Event) []chromeEvent {
	procSet := map[string]bool{}
	for _, e := range events {
		procSet[e.Proc] = true
	}
	procs := make([]string, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	tid := make(map[string]int, len(procs))
	out := make([]chromeEvent, 0, len(procs)+1+len(events))
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "s3asim"},
	})
	for i, p := range procs {
		tid[p] = i
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: i,
			Args: map[string]any{"name": p},
		})
	}
	for _, e := range events {
		ts := e.Start.Micros()
		if e.Flow != "" {
			// Message arrows: a "s" event on the sender thread at send time
			// paired (by id) with a "f" event on the receiver at arrival.
			// bp:"e" binds the finish to the enclosing slice so the arrow
			// lands on the receiver's active state.
			id := e.FlowID
			ev := chromeEvent{
				Name: e.Name, Cat: "flow", Ph: e.Flow, Ts: ts,
				Pid: 0, Tid: tid[e.Proc], ID: &id,
			}
			if e.Flow == trace.FlowFinish {
				ev.BP = "e"
			}
			out = append(out, ev)
			continue
		}
		if e.Point {
			out = append(out, chromeEvent{
				Name: e.Name, Cat: "marker", Ph: "i", Ts: ts,
				Pid: 0, Tid: tid[e.Proc], Scope: "t",
			})
			continue
		}
		dur := (e.End - e.Start).Micros()
		if dur < 0 {
			dur = 0
		}
		out = append(out, chromeEvent{
			Name: e.Name, Cat: "phase", Ph: "X", Ts: ts, Dur: &dur,
			Pid: 0, Tid: tid[e.Proc],
		})
	}
	return out
}

// WritePerfetto writes events as a Chrome trace-event / Perfetto JSON
// document. Output is deterministic for a given event sequence.
func WritePerfetto(w io.Writer, events []trace.Event) error {
	doc := chromeTrace{TraceEvents: PerfettoEvents(events), DisplayTimeUnit: "ms"}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// PerfettoSink collects a run's timeline in memory and writes the Perfetto
// JSON document on Close. Safe for concurrent use.
type PerfettoSink struct {
	mu sync.Mutex
	tr *trace.Tracer
	w  io.Writer
}

// NewPerfettoSink returns a sink that exports to w when closed.
func NewPerfettoSink(w io.Writer) *PerfettoSink {
	return &PerfettoSink{tr: trace.New(), w: w}
}

// BeginState records a state transition.
func (s *PerfettoSink) BeginState(proc, name string, at des.Time) {
	s.mu.Lock()
	s.tr.BeginState(proc, name, at)
	s.mu.Unlock()
}

// EndState closes the process's open state.
func (s *PerfettoSink) EndState(proc string, at des.Time) {
	s.mu.Lock()
	s.tr.EndState(proc, at)
	s.mu.Unlock()
}

// Point records an instantaneous marker.
func (s *PerfettoSink) Point(proc, name string, at des.Time) {
	s.mu.Lock()
	s.tr.Point(proc, name, at)
	s.mu.Unlock()
}

// Close exports the collected timeline as Perfetto JSON.
func (s *PerfettoSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return WritePerfetto(s.w, s.tr.Events())
}
