package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"s3asim/internal/des"
)

// SLO alert engine (DESIGN.md §15): declarative rules evaluated at every
// window boundary of a run's Series, entirely in virtual time. A rule pairs
// a condition (counter rate, histogram quantile, or SLO burn rate) with a
// threshold and a fast lookback window; an optional slow lookback adds
// multiwindow AND semantics — the classic burn-rate pattern where the fast
// window gives detection latency and the slow window suppresses blips.
//
// Rule grammar (one spec string, e.g. for the -slo CLI flag):
//
//	name:rate(counter)>threshold[:opts]       counter rate over the fast window, per second
//	name:p99(hist)>threshold[:opts]           histogram quantile over the fast window (p50, p95, p999, …)
//	name:burn(bad/total)>threshold[:opts]     burn rate: (bad/total) / (1-slo); requires slo=
//
// opts is a comma list of fast=<dur>, slow=<dur> (Go durations, rounded up
// to whole windows; fast defaults to one window, slow defaults to off) and
// slo=<fraction in (0,1)> for burn rules. `<` in place of `>` fires when the
// value drops below the threshold.
//
// Evaluation replays the sealed windows in ascending order once, at the end
// of the run — semantically identical to online boundary evaluation (windows
// are tumbling, so every boundary's inputs are final when it passes), and it
// keeps the hot path free of alert bookkeeping. Firing and resolving edges
// emit alert.fire/alert.resolve points on the "alerts" timeline track and
// firing edges trigger the flight recorder.

// RuleKind selects a rule's condition.
type RuleKind int

const (
	// RuleRate thresholds a counter's per-second rate over the lookback.
	RuleRate RuleKind = iota
	// RuleQuantile thresholds a histogram quantile over the lookback.
	RuleQuantile
	// RuleBurn thresholds an SLO burn rate: the bad/total ratio over the
	// lookback divided by the error budget (1-SLO). Burn 1 consumes the
	// budget exactly; burn 14 is the classic page-worthy fast burn.
	RuleBurn
)

func (k RuleKind) String() string {
	switch k {
	case RuleRate:
		return "rate"
	case RuleQuantile:
		return "quantile"
	case RuleBurn:
		return "burn"
	}
	return fmt.Sprintf("RuleKind(%d)", int(k))
}

// Rule is one declarative alert rule; build with ParseRule or literally.
type Rule struct {
	Name      string
	Kind      RuleKind
	Metric    string  // counter (rate), histogram (quantile), or the "bad" counter (burn)
	Total     string  // burn only: the "total" counter
	Q         float64 // quantile only, in (0, 1)
	SLO       float64 // burn only: availability target in (0, 1)
	Threshold float64
	Below     bool     // fire when value < Threshold instead of >
	Fast      des.Time // fast lookback; 0 = one window
	Slow      des.Time // slow lookback; 0 = single-window semantics
}

// ParseRule parses one rule spec (grammar above).
func ParseRule(spec string) (*Rule, error) {
	fail := func(msg string) (*Rule, error) {
		return nil, fmt.Errorf("obs: rule %q: %s", spec, msg)
	}
	name, rest, ok := strings.Cut(spec, ":")
	if !ok || name == "" {
		return fail("want name:condition")
	}
	if strings.ContainsAny(name, " \t/\\") {
		return fail("name may not contain spaces or slashes")
	}
	cond, opts, _ := strings.Cut(rest, ":")
	lp := strings.IndexByte(cond, '(')
	rp := strings.IndexByte(cond, ')')
	if lp < 0 || rp < lp {
		return fail("condition wants fn(metric)")
	}
	fn, arg, tail := cond[:lp], cond[lp+1:rp], cond[rp+1:]
	if len(tail) < 2 || (tail[0] != '>' && tail[0] != '<') {
		return fail("condition wants > or < threshold after the metric")
	}
	thr, err := strconv.ParseFloat(tail[1:], 64)
	if err != nil || math.IsNaN(thr) || math.IsInf(thr, 0) {
		return fail("bad threshold")
	}
	r := &Rule{Name: name, Threshold: thr, Below: tail[0] == '<'}
	switch {
	case fn == "rate":
		r.Kind, r.Metric = RuleRate, arg
	case fn == "burn":
		bad, total, ok := strings.Cut(arg, "/")
		if !ok || bad == "" || total == "" {
			return fail("burn wants burn(bad/total)")
		}
		r.Kind, r.Metric, r.Total = RuleBurn, bad, total
	case strings.HasPrefix(fn, "p") && len(fn) > 1:
		digits := fn[1:]
		n, err := strconv.ParseUint(digits, 10, 32)
		if err != nil {
			return fail("quantile wants pNN(hist), e.g. p99 or p999")
		}
		r.Kind, r.Metric = RuleQuantile, arg
		r.Q = float64(n) / math.Pow(10, float64(len(digits)))
		if r.Q <= 0 || r.Q >= 1 {
			return fail("quantile must be in (0, 1)")
		}
	default:
		return fail("unknown condition " + fn + " (want rate, pNN, or burn)")
	}
	if r.Metric == "" {
		return fail("empty metric name")
	}
	if opts != "" {
		for _, kv := range strings.Split(opts, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fail("option " + kv + " wants k=v")
			}
			switch k {
			case "fast", "slow":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return fail("bad duration " + kv)
				}
				if k == "fast" {
					r.Fast = des.FromSeconds(d.Seconds())
				} else {
					r.Slow = des.FromSeconds(d.Seconds())
				}
			case "slo":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return fail("bad slo " + v)
				}
				r.SLO = f
			default:
				return fail("unknown option " + k)
			}
		}
	}
	if r.Kind == RuleBurn && (r.SLO <= 0 || r.SLO >= 1) {
		return fail("burn needs slo= in (0, 1)")
	}
	if r.Kind != RuleBurn && r.SLO != 0 {
		return fail("slo= only applies to burn rules")
	}
	return r, nil
}

// ParseRules parses a list of rule specs.
func ParseRules(specs []string) ([]*Rule, error) {
	rules := make([]*Rule, 0, len(specs))
	for _, s := range specs {
		r, err := ParseRule(s)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// String reconstructs the rule's spec form.
func (r *Rule) String() string {
	var cond string
	switch r.Kind {
	case RuleRate:
		cond = "rate(" + r.Metric + ")"
	case RuleQuantile:
		q := strconv.FormatFloat(r.Q, 'f', -1, 64)
		cond = "p" + strings.TrimPrefix(q, "0.") + "(" + r.Metric + ")"
	case RuleBurn:
		cond = "burn(" + r.Metric + "/" + r.Total + ")"
	}
	cmp := ">"
	if r.Below {
		cmp = "<"
	}
	s := fmt.Sprintf("%s:%s%s%g", r.Name, cond, cmp, r.Threshold)
	var opts []string
	if r.Fast > 0 {
		opts = append(opts, "fast="+durString(r.Fast))
	}
	if r.Slow > 0 {
		opts = append(opts, "slow="+durString(r.Slow))
	}
	if r.Kind == RuleBurn {
		opts = append(opts, "slo="+strconv.FormatFloat(r.SLO, 'f', -1, 64))
	}
	if len(opts) > 0 {
		s += ":" + strings.Join(opts, ",")
	}
	return s
}

func durString(t des.Time) string {
	return time.Duration(t.Seconds() * float64(time.Second)).String()
}

// windowsFor converts a lookback duration into a whole window count,
// rounding up; 0 means one window.
func windowsFor(d, width des.Time) int64 {
	if d <= 0 {
		return 1
	}
	n := (int64(d) + int64(width) - 1) / int64(width)
	if n < 1 {
		n = 1
	}
	return n
}

// Alert is one edge in a run's alert timeline: a rule firing or resolving at
// a window boundary.
type Alert struct {
	Rule      string   `json:"rule"`
	Window    int64    `json:"window"` // index of the boundary window
	At        des.Time `json:"at"`     // the boundary: window end
	Fired     bool     `json:"fired"`  // true = fire edge, false = resolve edge
	Value     float64  `json:"value"`  // fast-window value at the boundary
	Slow      float64  `json:"slow"`   // slow-window value (== Value without slow=)
	Threshold float64  `json:"threshold"`
}

// AlertEngine evaluates a rule set against a windowed series.
type AlertEngine struct {
	width des.Time
	rules []*Rule
}

// NewAlertEngine validates the rules against the window width and returns an
// engine.
func NewAlertEngine(width des.Time, rules []*Rule) (*AlertEngine, error) {
	if width <= 0 {
		return nil, fmt.Errorf("obs: alert engine needs a positive window width")
	}
	for _, r := range rules {
		if r == nil || r.Name == "" || r.Metric == "" {
			return nil, fmt.Errorf("obs: alert rule missing name or metric")
		}
	}
	return &AlertEngine{width: width, rules: rules}, nil
}

// value computes one rule's value over the window index range [from, to].
// ok=false means the condition has no data (an empty quantile or burn
// lookback) and cannot fire.
func (r *Rule) value(s *Series, from, to int64) (v float64, ok bool) {
	switch r.Kind {
	case RuleRate:
		return s.Rate(r.Metric, from, to), true
	case RuleQuantile:
		h := s.HistOver(r.Metric, from, to)
		if h.Count == 0 {
			return 0, false
		}
		return clamp(bucketQuantiles(h.Buckets, h.Count, r.Q)[0], h.Min, h.Max), true
	case RuleBurn:
		total := s.CounterSum(r.Total, from, to)
		if total == 0 {
			return 0, false
		}
		bad := s.CounterSum(r.Metric, from, to)
		return (float64(bad) / float64(total)) / (1 - r.SLO), true
	}
	return 0, false
}

func (r *Rule) exceeds(v float64) bool {
	if r.Below {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// Evaluate replays the series' window boundaries in ascending order against
// every rule, returning the edge timeline (rules in input order within one
// boundary). Firing edges emit an "alert.fire <name>" point on the "alerts"
// track of sink and trigger the flight recorder; resolve edges emit
// "alert.resolve <name>". sink and flight may be nil.
func (e *AlertEngine) Evaluate(s *Series, sink Sink, flight *FlightRecorder) []Alert {
	if s == nil || len(e.rules) == 0 {
		return nil
	}
	var out []Alert
	firing := make([]bool, len(e.rules))
	for idx := int64(0); idx < int64(len(s.Windows)); idx++ {
		at := s.Windows[idx].End
		for ri, r := range e.rules {
			nFast := windowsFor(r.Fast, e.width)
			fastVal, fastOK := r.value(s, idx-nFast+1, idx)
			slowVal, slowOK := fastVal, fastOK
			if r.Slow > 0 {
				nSlow := windowsFor(r.Slow, e.width)
				slowVal, slowOK = r.value(s, idx-nSlow+1, idx)
			}
			cond := fastOK && slowOK && r.exceeds(fastVal) && r.exceeds(slowVal)
			if cond == firing[ri] {
				continue
			}
			firing[ri] = cond
			a := Alert{
				Rule: r.Name, Window: idx, At: at, Fired: cond,
				Value: fastVal, Slow: slowVal, Threshold: r.Threshold,
			}
			out = append(out, a)
			if cond {
				if sink != nil {
					sink.Point("alerts", fmt.Sprintf("alert.fire %s %.6g", r.Name, fastVal), at)
				}
				if flight != nil {
					flight.Trigger("alert "+r.Name, at)
				}
			} else if sink != nil {
				sink.Point("alerts", "alert.resolve "+r.Name, at)
			}
		}
	}
	return out
}
