package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

// FlightRecorder is a bounded ring-buffer Sink (DESIGN.md §15): it retains
// the most recent timeline events of a run, and on a trigger — an alert
// firing, a fault injection, a readback mismatch — snapshots the last Keep
// virtual seconds into a FlightDump. Dumps cost nothing until triggered, so
// the recorder can ride along on every telemetry run; WriteJSONL serializes
// a dump (plus the surrounding windowed series and alert timeline) into a
// line-oriented artifact whose "event" records are the same trace.Event JSON
// the Perfetto exporter consumes.
//
// Determinism: the recorder observes only virtual-time events in kernel
// order, triggers fire at virtual timestamps, and dump snapshots are sorted
// by (Start, End, Proc, Name) — identical runs produce byte-identical dumps.
type FlightRecorder struct {
	mu       sync.Mutex
	keep     des.Time
	maxDumps int
	ring     []trace.Event
	pos      int                    // overwrite cursor once the ring is full
	open     map[string]trace.Event // proc → currently open state
	auto     map[string]bool        // procs whose Points auto-trigger (fault timeline)
	dumps    []FlightDump
	lastTrig des.Time
	trigged  bool
	dropped  int // triggers suppressed by holdoff or the dump cap
}

// FlightDump is one captured snapshot: the retained events overlapping
// [At-Keep, At], sorted deterministically.
type FlightDump struct {
	Seq    int           `json:"seq"`
	Reason string        `json:"reason"`
	At     des.Time      `json:"at"`
	Keep   des.Time      `json:"keep"`
	Events []trace.Event `json:"-"`
}

// NewFlightRecorder returns a recorder retaining up to events ring entries,
// dumping the trailing keep virtual time, and capturing at most maxDumps
// dumps per run (triggers within keep of the previous accepted trigger, or
// beyond the cap, are counted but suppressed — the holdoff keeps one
// incident from burning every dump slot).
func NewFlightRecorder(events int, keep des.Time, maxDumps int) *FlightRecorder {
	if events < 1 {
		events = 1
	}
	if maxDumps < 1 {
		maxDumps = 1
	}
	return &FlightRecorder{
		keep:     keep,
		maxDumps: maxDumps,
		ring:     make([]trace.Event, 0, events),
		open:     make(map[string]trace.Event),
	}
}

// AutoTrigger registers a timeline process whose Point events trigger dumps
// (core registers the fault injector's "faults" track, so crash/restart
// injections flight-record themselves).
func (f *FlightRecorder) AutoTrigger(proc string) {
	f.mu.Lock()
	if f.auto == nil {
		f.auto = make(map[string]bool)
	}
	f.auto[proc] = true
	f.mu.Unlock()
}

func (f *FlightRecorder) push(e trace.Event) {
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, e)
		return
	}
	f.ring[f.pos] = e
	f.pos = (f.pos + 1) % len(f.ring)
}

// BeginState implements Sink.
func (f *FlightRecorder) BeginState(proc, name string, at des.Time) {
	f.mu.Lock()
	if prev, ok := f.open[proc]; ok {
		prev.End = at
		f.push(prev)
	}
	f.open[proc] = trace.Event{Proc: proc, Name: name, Start: at}
	f.mu.Unlock()
}

// EndState implements Sink.
func (f *FlightRecorder) EndState(proc string, at des.Time) {
	f.mu.Lock()
	if prev, ok := f.open[proc]; ok {
		prev.End = at
		f.push(prev)
		delete(f.open, proc)
	}
	f.mu.Unlock()
}

// Point implements Sink; a point on an AutoTrigger process triggers a dump.
func (f *FlightRecorder) Point(proc, name string, at des.Time) {
	f.mu.Lock()
	f.push(trace.Event{Proc: proc, Name: name, Start: at, End: at, Point: true})
	if f.auto[proc] {
		f.trigger(fmt.Sprintf("%s: %s", proc, name), at)
	}
	f.mu.Unlock()
}

// Trigger captures a dump of the last Keep virtual time ending at `at`.
func (f *FlightRecorder) Trigger(reason string, at des.Time) {
	f.mu.Lock()
	f.trigger(reason, at)
	f.mu.Unlock()
}

func (f *FlightRecorder) trigger(reason string, at des.Time) {
	if len(f.dumps) >= f.maxDumps || (f.trigged && at-f.lastTrig < f.keep) {
		f.dropped++
		return
	}
	f.trigged, f.lastTrig = true, at
	since := at - f.keep
	var evs []trace.Event
	add := func(e trace.Event) {
		if e.Start <= at && e.End >= since {
			evs = append(evs, e)
		}
	}
	if len(f.ring) == cap(f.ring) {
		for _, e := range f.ring[f.pos:] {
			add(e)
		}
		for _, e := range f.ring[:f.pos] {
			add(e)
		}
	} else {
		for _, e := range f.ring {
			add(e)
		}
	}
	for _, proc := range sortedKeys(f.open) {
		e := f.open[proc]
		e.End = at
		add(e)
	}
	sort.SliceStable(evs, func(a, b int) bool {
		x, y := evs[a], evs[b]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.End != y.End {
			return x.End < y.End
		}
		if x.Proc != y.Proc {
			return x.Proc < y.Proc
		}
		return x.Name < y.Name
	})
	f.dumps = append(f.dumps, FlightDump{
		Seq: len(f.dumps), Reason: reason, At: at, Keep: f.keep, Events: evs,
	})
}

// Dumps returns the captured dumps in trigger order.
func (f *FlightRecorder) Dumps() []FlightDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightDump(nil), f.dumps...)
}

// Suppressed reports triggers dropped by the holdoff or the dump cap.
func (f *FlightRecorder) Suppressed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// WriteJSONL serializes the dump as JSON lines: one "meta" record, then the
// windowed series restricted to [At-Keep, At] ("window" records), the alert
// edges in that range ("alert" records), and finally every retained timeline
// event ("event" records, trace.Event JSON). series and alerts may be
// nil/empty. Output is deterministic byte-for-byte.
func (d *FlightDump) WriteJSONL(w io.Writer, series *Series, alerts []Alert) error {
	enc := json.NewEncoder(w)
	since := d.At - d.Keep
	type meta struct {
		Type   string   `json:"type"`
		Seq    int      `json:"seq"`
		Reason string   `json:"reason"`
		At     des.Time `json:"at"`
		Keep   des.Time `json:"keep"`
		Events int      `json:"events"`
	}
	if err := enc.Encode(meta{"meta", d.Seq, d.Reason, d.At, d.Keep, len(d.Events)}); err != nil {
		return err
	}
	type winRec struct {
		Type string `json:"type"`
		Window
	}
	if series != nil {
		for _, win := range series.Windows {
			if win.End <= since || win.Start > d.At {
				continue
			}
			if err := enc.Encode(winRec{"window", win}); err != nil {
				return err
			}
		}
	}
	type alertRec struct {
		Type string `json:"type"`
		Alert
	}
	for _, a := range alerts {
		if a.At < since || a.At > d.At {
			continue
		}
		if err := enc.Encode(alertRec{"alert", a}); err != nil {
			return err
		}
	}
	type eventRec struct {
		Type string `json:"type"`
		trace.Event
	}
	for _, e := range d.Events {
		if err := enc.Encode(eventRec{"event", e}); err != nil {
			return err
		}
	}
	return nil
}
