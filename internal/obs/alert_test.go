package obs

import (
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/trace"
)

func TestParseRuleForms(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
	}{
		{"hot:rate(serve.queries)>100", Rule{Name: "hot", Kind: RuleRate, Metric: "serve.queries", Threshold: 100}},
		{"slow:p99(serve.latency)>2.5:fast=2s", Rule{Name: "slow", Kind: RuleQuantile, Metric: "serve.latency", Q: 0.99, Threshold: 2.5, Fast: des.FromSeconds(2)}},
		{"tail:p999(lat)>1", Rule{Name: "tail", Kind: RuleQuantile, Metric: "lat", Q: 0.999, Threshold: 1}},
		{"cold:rate(x)<0.5", Rule{Name: "cold", Kind: RuleRate, Metric: "x", Threshold: 0.5, Below: true}},
		{
			"burny:burn(serve.slo_violations/serve.queries)>10:fast=1s,slow=5s,slo=0.99",
			Rule{
				Name: "burny", Kind: RuleBurn, Metric: "serve.slo_violations",
				Total: "serve.queries", SLO: 0.99, Threshold: 10,
				Fast: des.FromSeconds(1), Slow: des.FromSeconds(5),
			},
		},
	}
	for _, c := range cases {
		got, err := ParseRule(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if *got != c.want {
			t.Errorf("%s:\n got %+v\nwant %+v", c.spec, *got, c.want)
		}
		// String round-trips through ParseRule.
		back, err := ParseRule(got.String())
		if err != nil || *back != *got {
			t.Errorf("%s: String() %q did not round-trip: %+v, %v", c.spec, got.String(), back, err)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"",
		"noname",
		":rate(x)>1",
		"a b:rate(x)>1",
		"n:rate(x)",
		"n:rate(x)=1",
		"n:rate(x)>forty",
		"n:rate()>1",
		"n:p0(x)>1",
		"n:p100x(x)>1",
		"n:frob(x)>1",
		"n:burn(x)>1:slo=0.99",
		"n:burn(a/b)>1",
		"n:burn(a/b)>1:slo=1.5",
		"n:rate(x)>1:slo=0.9",
		"n:rate(x)>1:fast=bogus",
		"n:rate(x)>1:zoom=3",
	}
	for _, spec := range bad {
		if r, err := ParseRule(spec); err == nil {
			t.Errorf("%q: want error, got %+v", spec, r)
		}
	}
}

// seriesFrom builds a test series from per-window (bad, total) counts.
func seriesFrom(width des.Time, counts [][2]int64) *Series {
	r := NewRegistry()
	r.EnableWindows(width, nil)
	for i, c := range counts {
		at := des.Time(int64(i)*int64(width)) + width/2
		if c[0] > 0 {
			r.AddAt("bad", c[0], at)
		}
		if c[1] > 0 {
			r.AddAt("total", c[1], at)
		}
	}
	r.FreezeWindows(des.Time(int64(len(counts)) * int64(width)))
	s := r.Windows()
	// Drop the trailing boundary window FreezeWindows adds so tests see
	// exactly len(counts) windows.
	s.Windows = s.Windows[:len(counts)]
	return s
}

func TestAlertRateFireAndResolve(t *testing.T) {
	s := seriesFrom(des.Second, [][2]int64{{0, 1}, {0, 50}, {0, 60}, {0, 2}, {0, 1}})
	rule, _ := ParseRule("hot:rate(total)>10")
	eng, err := NewAlertEngine(des.Second, []*Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	al := eng.Evaluate(s, tr, nil)
	if len(al) != 2 {
		t.Fatalf("alerts = %+v, want fire+resolve", al)
	}
	if !al[0].Fired || al[0].Window != 1 || al[0].Value != 50 {
		t.Errorf("fire edge = %+v", al[0])
	}
	if al[1].Fired || al[1].Window != 3 {
		t.Errorf("resolve edge = %+v", al[1])
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Proc != "alerts" || evs[0].Name != "alert.fire hot 50" ||
		evs[1].Name != "alert.resolve hot" {
		t.Errorf("timeline = %+v", evs)
	}
}

func TestAlertMultiwindowAND(t *testing.T) {
	// The window-0 blip trips the fast condition (30 > 10) but not the
	// 3-window slow condition (mean 10, not > 10); only the sustained burst
	// at the end trips both.
	s := seriesFrom(des.Second, [][2]int64{{0, 30}, {0, 0}, {0, 0}, {0, 12}, {0, 12}, {0, 12}})
	rule, _ := ParseRule("sus:rate(total)>10:fast=1s,slow=3s")
	eng, _ := NewAlertEngine(des.Second, []*Rule{rule})
	al := eng.Evaluate(s, nil, nil)
	if len(al) != 1 || !al[0].Fired || al[0].Window != 5 {
		t.Fatalf("alerts = %+v, want a single fire at window 5 (3-window mean first exceeds 10 there)", al)
	}
	if al[0].Value != 12 || al[0].Slow != 12 {
		t.Errorf("fire edge values = %+v", al[0])
	}
}

func TestAlertBurnRate(t *testing.T) {
	// SLO 0.5 → budget 0.5. Windows 2-3 run 50% bad → burn exactly 1.
	s := seriesFrom(des.Second, [][2]int64{{0, 10}, {0, 10}, {5, 10}, {5, 10}, {0, 10}})
	rule, _ := ParseRule("burn:burn(bad/total)>0.8:slo=0.5")
	eng, _ := NewAlertEngine(des.Second, []*Rule{rule})
	al := eng.Evaluate(s, nil, nil)
	if len(al) != 2 {
		t.Fatalf("alerts = %+v", al)
	}
	if !al[0].Fired || al[0].Window != 2 || al[0].Value != 1 {
		t.Errorf("fire = %+v, want burn 1 at window 2", al[0])
	}
	if al[1].Fired || al[1].Window != 4 {
		t.Errorf("resolve = %+v", al[1])
	}
}

func TestAlertQuantileNeedsData(t *testing.T) {
	r := NewRegistry()
	r.EnableWindows(des.Second, nil)
	r.ObserveAt("lat", 5.0, des.FromSeconds(1.5))
	r.FreezeWindows(des.FromSeconds(3))
	s := r.Windows()
	rule, _ := ParseRule("slow:p99(lat)>1")
	eng, _ := NewAlertEngine(des.Second, []*Rule{rule})
	al := eng.Evaluate(s, nil, nil)
	// Empty windows cannot fire a quantile rule; the single hot window
	// fires it and the following empty window resolves it.
	if len(al) != 2 || !al[0].Fired || al[0].Window != 1 || al[1].Fired || al[1].Window != 2 {
		t.Fatalf("alerts = %+v", al)
	}
}

func TestAlertFiringTriggersFlightRecorder(t *testing.T) {
	s := seriesFrom(des.Second, [][2]int64{{0, 1}, {0, 50}, {0, 1}})
	rule, _ := ParseRule("hot:rate(total)>10")
	eng, _ := NewAlertEngine(des.Second, []*Rule{rule})
	fl := NewFlightRecorder(16, des.FromSeconds(2), 4)
	fl.Point("serve", "q1", des.FromSeconds(1.2))
	al := eng.Evaluate(s, nil, fl)
	if len(al) != 2 {
		t.Fatalf("alerts = %+v", al)
	}
	dumps := fl.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1 (fire edge only)", len(dumps))
	}
	if dumps[0].Reason != "alert hot" || dumps[0].At != des.FromSeconds(2) {
		t.Errorf("dump = %+v", dumps[0])
	}
	if len(dumps[0].Events) != 1 || dumps[0].Events[0].Name != "q1" {
		t.Errorf("dump events = %+v", dumps[0].Events)
	}
}
