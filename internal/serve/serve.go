// Package serve generates deterministic open-loop arrival schedules for the
// serving scenario (DESIGN.md §13). A Plan describes per-tenant traffic —
// Poisson, bursty (two-state MMPP), or diurnal (sinusoidally modulated
// Poisson) — over a fixed horizon; Generate expands it into one merged,
// time-sorted arrival stream. Everything is seeded (stats.SubRand
// substreams), so the same plan yields the same schedule on every run and at
// any sweep parallelism, and scaling the offered load (Scaled) changes only
// the rates, never the seeding structure.
package serve

import (
	"fmt"
	"math"
	"sort"

	"s3asim/internal/des"
	"s3asim/internal/stats"
)

// Process selects a tenant's arrival process.
type Process int

const (
	// Poisson is a homogeneous Poisson process at Rate.
	Poisson Process = iota
	// Bursty is a two-state Markov-modulated Poisson process: the stream
	// alternates between a calm and a burst state (mean dwell BurstDwell
	// each), emitting at Rate scaled down in the calm state and up by
	// BurstFactor in the burst state so the long-run mean stays Rate.
	Bursty
	// Diurnal is a nonhomogeneous Poisson process with sinusoidally
	// modulated rate: Rate·(1 + Amplitude·sin(2πt/Period)), thinned from a
	// homogeneous process at the peak rate (Lewis–Shedler).
	Diurnal
)

// String names the process for tables and JSON records.
func (p Process) String() string {
	switch p {
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	default:
		return "poisson"
	}
}

// Tenant describes one traffic stream.
type Tenant struct {
	// Name labels the tenant in per-tenant telemetry tables.
	Name string
	// Rate is the long-run mean arrival rate in queries per second.
	Rate float64
	// Process selects the arrival process shape.
	Process Process

	// BurstFactor is the burst-state rate multiplier (Bursty only, > 1).
	BurstFactor float64
	// BurstFrac is the long-run fraction of time spent bursting (Bursty
	// only, in (0, 1)).
	BurstFrac float64
	// BurstDwell is the mean dwell time per state visit (Bursty only).
	BurstDwell des.Time

	// Period is the modulation period (Diurnal only).
	Period des.Time
	// Amplitude is the relative modulation depth in [0, 1] (Diurnal only).
	Amplitude float64
}

// Plan is a complete open-loop traffic description.
type Plan struct {
	// Seed roots every tenant's substreams (stats.DeriveSeed by tenant
	// index), so tenants are independent and the schedule is reproducible.
	Seed int64
	// Horizon bounds arrival times to [0, Horizon).
	Horizon des.Time
	// Tenants holds the per-tenant stream specs.
	Tenants []Tenant
}

// Arrival is one query arrival in the merged stream.
type Arrival struct {
	At     des.Time
	Tenant string
}

// Scaled returns a copy of the plan with every tenant's rate multiplied by
// mult — the offered-load axis of a serving sweep. Seeds and process shapes
// are untouched.
func (p Plan) Scaled(mult float64) Plan {
	q := p
	q.Tenants = append([]Tenant(nil), p.Tenants...)
	for i := range q.Tenants {
		q.Tenants[i].Rate *= mult
	}
	return q
}

// OfferedRate is the plan's aggregate long-run arrival rate (queries/sec).
func (p Plan) OfferedRate() float64 {
	var r float64
	for _, t := range p.Tenants {
		r += t.Rate
	}
	return r
}

// Validate checks the plan's parameters.
func (p Plan) Validate() error {
	if p.Horizon <= 0 {
		return fmt.Errorf("serve: horizon must be positive")
	}
	if len(p.Tenants) == 0 {
		return fmt.Errorf("serve: plan needs at least one tenant")
	}
	for i, t := range p.Tenants {
		if t.Rate <= 0 {
			return fmt.Errorf("serve: tenant %d (%s): rate must be positive", i, t.Name)
		}
		switch t.Process {
		case Bursty:
			if t.BurstFactor <= 1 {
				return fmt.Errorf("serve: tenant %d (%s): bursty needs BurstFactor > 1", i, t.Name)
			}
			if t.BurstFrac <= 0 || t.BurstFrac >= 1 {
				return fmt.Errorf("serve: tenant %d (%s): bursty needs BurstFrac in (0,1)", i, t.Name)
			}
			if t.BurstDwell <= 0 {
				return fmt.Errorf("serve: tenant %d (%s): bursty needs BurstDwell > 0", i, t.Name)
			}
		case Diurnal:
			if t.Period <= 0 {
				return fmt.Errorf("serve: tenant %d (%s): diurnal needs Period > 0", i, t.Name)
			}
			if t.Amplitude < 0 || t.Amplitude > 1 {
				return fmt.Errorf("serve: tenant %d (%s): diurnal needs Amplitude in [0,1]", i, t.Name)
			}
		}
	}
	return nil
}

// Generate expands the plan into the merged arrival stream, time-sorted with
// ties broken by tenant order (deterministic for a given plan).
func (p Plan) Generate() ([]Arrival, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var all []Arrival
	for i, t := range p.Tenants {
		seed := stats.DeriveSeed(p.Seed, int64(i))
		for _, at := range t.times(seed, p.Horizon) {
			all = append(all, Arrival{At: at, Tenant: t.Name})
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].At < all[b].At })
	return all, nil
}

// Times extracts just the arrival instants — the core.ServePlan payload.
func Times(arrivals []Arrival) []des.Time {
	out := make([]des.Time, len(arrivals))
	for i, a := range arrivals {
		out[i] = a.At
	}
	return out
}

// TenantNames extracts each arrival's tenant name, aligned with Times —
// the core.ServePlan.Tenants payload for per-tenant telemetry.
func TenantNames(arrivals []Arrival) []string {
	out := make([]string, len(arrivals))
	for i, a := range arrivals {
		out[i] = a.Tenant
	}
	return out
}

// times generates one tenant's arrival instants in [0, horizon).
func (t Tenant) times(seed int64, horizon des.Time) []des.Time {
	switch t.Process {
	case Bursty:
		return t.burstyTimes(seed, horizon)
	case Diurnal:
		return t.diurnalTimes(seed, horizon)
	default:
		return poissonTimes(stats.SubRand(seed, 0), t.Rate, 0, horizon)
	}
}

// poissonTimes draws a homogeneous Poisson stream at rate (queries/sec) over
// [from, to) via exponential gaps.
func poissonTimes(rng interface{ ExpFloat64() float64 }, rate float64, from, to des.Time) []des.Time {
	var out []des.Time
	for at := from; ; {
		at += des.FromSeconds(rng.ExpFloat64() / rate)
		if at >= to {
			return out
		}
		out = append(out, at)
	}
}

// burstyTimes draws a two-state MMPP. Burst visits dwell BurstDwell on
// average; calm visits dwell BurstDwell·(1−BurstFrac)/BurstFrac, so the
// long-run fraction of time bursting is BurstFrac. Rates are chosen so the
// long-run mean stays Rate: burst = Rate·BurstFactor, calm =
// Rate·(1−BurstFactor·BurstFrac)/(1−BurstFrac) when positive (else a
// near-silent trickle).
func (t Tenant) burstyTimes(seed int64, horizon des.Time) []des.Time {
	stateRng := stats.SubRand(seed, 1)
	arrRng := stats.SubRand(seed, 2)
	calm := t.Rate * (1 - t.BurstFactor*t.BurstFrac) / (1 - t.BurstFrac)
	if calm <= 0 {
		calm = t.Rate * 1e-3
	}
	burst := t.Rate * t.BurstFactor
	calmDwell := t.BurstDwell.Seconds() * (1 - t.BurstFrac) / t.BurstFrac
	var out []des.Time
	bursting := stateRng.Float64() < t.BurstFrac
	for at := des.Time(0); at < horizon; {
		// Dwell in the current state, emitting at its rate.
		rate, meanDwell := calm, calmDwell
		if bursting {
			rate, meanDwell = burst, t.BurstDwell.Seconds()
		}
		end := at + des.FromSeconds(stateRng.ExpFloat64()*meanDwell)
		if end > horizon {
			end = horizon
		}
		out = append(out, poissonTimes(arrRng, rate, at, end)...)
		at = end
		bursting = !bursting
	}
	return out
}

// diurnalTimes draws a sinusoidally modulated Poisson stream by thinning
// (Lewis–Shedler): candidates at the peak rate Rate·(1+Amplitude), each kept
// with probability λ(t)/peak.
func (t Tenant) diurnalTimes(seed int64, horizon des.Time) []des.Time {
	rng := stats.SubRand(seed, 3)
	peak := t.Rate * (1 + t.Amplitude)
	var out []des.Time
	for at := des.Time(0); ; {
		at += des.FromSeconds(rng.ExpFloat64() / peak)
		if at >= horizon {
			return out
		}
		phase := 2 * math.Pi * float64(at) / float64(t.Period)
		lam := t.Rate * (1 + t.Amplitude*math.Sin(phase))
		if rng.Float64()*peak < lam {
			out = append(out, at)
		}
	}
}
