package serve

import (
	"sort"

	"s3asim/internal/des"
)

// Band is one latency band of a serving run: the queries whose end-to-end
// latency falls between two adjacent tail percentiles. Tail attribution
// (experiments.RunServeSweep) walks the critical path of every query in a
// band and aggregates per-category time — "p999 latency under WW-Coll is
// mostly sync wait" is a statement about the last band.
type Band struct {
	// Label names the band's lower percentile bound: "p0" (below median),
	// "p50", "p90", "p99", "p999".
	Label string
	// Lo and Hi bound the band's latencies (Hi == 0 means unbounded).
	Lo, Hi des.Time
	// Queries indexes the queries whose latency lands in [Lo, Hi).
	Queries []int
}

// bandQuantiles are the percentile edges separating the bands.
var bandQuantiles = []struct {
	q     float64
	label string
}{
	{0, "p0"},
	{0.50, "p50"},
	{0.90, "p90"},
	{0.99, "p99"},
	{0.999, "p999"},
}

// Partition splits query indices into latency bands at the p50/p90/p99/p999
// edges of the given latency distribution. Every query lands in exactly one
// band; bands can be empty at small n (the p999 edge of 100 queries is the
// max). Edges are order statistics of the sorted latencies (nearest-rank),
// so band membership is exact, not interpolated.
func Partition(latencies []des.Time) []Band {
	n := len(latencies)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return latencies[order[a]] < latencies[order[b]]
	})
	bands := make([]Band, len(bandQuantiles))
	for bi, bq := range bandQuantiles {
		bands[bi].Label = bq.label
	}
	for bi := range bands {
		// Band bi covers sorted ranks [q_bi·n, q_{bi+1}·n).
		lo := rankEdge(bandQuantiles[bi].q, n)
		hi := n
		if bi+1 < len(bands) {
			hi = rankEdge(bandQuantiles[bi+1].q, n)
		}
		for r := lo; r < hi; r++ {
			bands[bi].Queries = append(bands[bi].Queries, order[r])
		}
		if len(bands[bi].Queries) > 0 {
			bands[bi].Lo = latencies[order[lo]]
			bands[bi].Hi = latencies[order[hi-1]]
		}
	}
	return bands
}

// rankEdge maps a quantile to its first sorted rank.
func rankEdge(q float64, n int) int {
	r := int(q * float64(n))
	if r > n {
		r = n
	}
	return r
}

// Violations counts latencies exceeding the SLO target.
func Violations(latencies []des.Time, target des.Time) int {
	v := 0
	for _, l := range latencies {
		if l > target {
			v++
		}
	}
	return v
}
