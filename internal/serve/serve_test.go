package serve

import (
	"math"
	"reflect"
	"testing"

	"s3asim/internal/des"
)

func poissonPlan(rate float64, horizon des.Time) Plan {
	return Plan{
		Seed:    42,
		Horizon: horizon,
		Tenants: []Tenant{{Name: "t0", Rate: rate, Process: Poisson}},
	}
}

// A seeded Poisson stream's empirical rate must sit near λ: over a horizon
// with expected count N = λT, the observed count is within 5σ = 5√N.
func TestPoissonEmpiricalRate(t *testing.T) {
	const rate = 200.0
	horizon := 100 * des.Second
	arr, err := poissonPlan(rate, horizon).Generate()
	if err != nil {
		t.Fatal(err)
	}
	expected := rate * horizon.Seconds()
	slack := 5 * math.Sqrt(expected)
	if got := float64(len(arr)); math.Abs(got-expected) > slack {
		t.Fatalf("poisson count %v, expected %v ± %v", got, expected, slack)
	}
	// Gaps are iid Exp(λ): the mean gap must be near 1/λ.
	var sum float64
	for i := 1; i < len(arr); i++ {
		sum += (arr[i].At - arr[i-1].At).Seconds()
	}
	mean := sum / float64(len(arr)-1)
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Fatalf("mean gap %v, want ≈ %v", mean, 1/rate)
	}
}

func TestGenerateDeterministicSortedAndScaled(t *testing.T) {
	p := Plan{
		Seed:    7,
		Horizon: 20 * des.Second,
		Tenants: []Tenant{
			{Name: "steady", Rate: 40, Process: Poisson},
			{Name: "spiky", Rate: 30, Process: Bursty, BurstFactor: 8, BurstFrac: 0.1, BurstDwell: des.Second},
			{Name: "wave", Rate: 30, Process: Diurnal, Period: 5 * des.Second, Amplitude: 0.8},
		},
	}
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan generated different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	tenants := map[string]int{}
	for i, ar := range a {
		if i > 0 && ar.At < a[i-1].At {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		if ar.At < 0 || ar.At >= p.Horizon {
			t.Fatalf("arrival %d outside horizon: %v", i, ar.At)
		}
		tenants[ar.Tenant]++
	}
	for _, tn := range p.Tenants {
		if tenants[tn.Name] == 0 {
			t.Fatalf("tenant %s produced no arrivals (got %v)", tn.Name, tenants)
		}
	}

	// Scaling the offered load up must increase volume without touching the
	// original plan, and OfferedRate must scale exactly.
	doubled, err := p.Scaled(2).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(doubled) <= len(a) {
		t.Fatalf("2x load produced %d arrivals vs %d", len(doubled), len(a))
	}
	if got, want := p.Scaled(2).OfferedRate(), 2*p.OfferedRate(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("scaled offered rate %v, want %v", got, want)
	}
	if p.Tenants[0].Rate != 40 {
		t.Fatal("Scaled mutated the receiver")
	}
}

// The bursty process long-run mean rate stays near the nominal Rate, and the
// stream is actually bursty: the busiest dwell-sized bin carries far more
// than the mean bin.
func TestBurstyMeanRateAndBurstiness(t *testing.T) {
	p := Plan{
		Seed:    3,
		Horizon: 200 * des.Second,
		Tenants: []Tenant{{
			Name: "b", Rate: 50, Process: Bursty,
			BurstFactor: 6, BurstFrac: 0.1, BurstDwell: des.Second,
		}},
	}
	arr, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	expected := 50 * p.Horizon.Seconds()
	if got := float64(len(arr)); math.Abs(got-expected) > 0.15*expected {
		t.Fatalf("bursty count %v, expected ≈ %v", got, expected)
	}
	bins := make([]int, int(p.Horizon/des.Second))
	for _, a := range arr {
		bins[int(a.At/des.Second)]++
	}
	maxBin := 0
	for _, b := range bins {
		if b > maxBin {
			maxBin = b
		}
	}
	mean := float64(len(arr)) / float64(len(bins))
	if float64(maxBin) < 2.5*mean {
		t.Fatalf("no burst visible: max bin %d vs mean %.1f", maxBin, mean)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{Seed: 1, Horizon: 0, Tenants: []Tenant{{Rate: 1}}},
		{Seed: 1, Horizon: des.Second},
		{Seed: 1, Horizon: des.Second, Tenants: []Tenant{{Rate: 0}}},
		{Seed: 1, Horizon: des.Second, Tenants: []Tenant{{Rate: 1, Process: Bursty, BurstFactor: 0.5, BurstFrac: 0.1, BurstDwell: des.Second}}},
		{Seed: 1, Horizon: des.Second, Tenants: []Tenant{{Rate: 1, Process: Bursty, BurstFactor: 2, BurstFrac: 1.5, BurstDwell: des.Second}}},
		{Seed: 1, Horizon: des.Second, Tenants: []Tenant{{Rate: 1, Process: Diurnal, Period: 0}}},
		{Seed: 1, Horizon: des.Second, Tenants: []Tenant{{Rate: 1, Process: Diurnal, Period: des.Second, Amplitude: 2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: bad plan accepted", i)
		}
		if _, err := p.Generate(); err == nil {
			t.Fatalf("case %d: Generate accepted bad plan", i)
		}
	}
}

func TestPartitionBandsTileAndOrder(t *testing.T) {
	lat := make([]des.Time, 2000)
	for i := range lat {
		lat[i] = des.Time(i+1) * des.Millisecond
	}
	bands := Partition(lat)
	if len(bands) != 5 {
		t.Fatalf("got %d bands", len(bands))
	}
	seen := map[int]bool{}
	total := 0
	for bi, b := range bands {
		total += len(b.Queries)
		for _, q := range b.Queries {
			if seen[q] {
				t.Fatalf("query %d in two bands", q)
			}
			seen[q] = true
		}
		if bi > 0 && len(b.Queries) > 0 && len(bands[bi-1].Queries) > 0 &&
			b.Lo < bands[bi-1].Hi {
			t.Fatalf("band %s overlaps previous: lo %v < prev hi %v", b.Label, b.Lo, bands[bi-1].Hi)
		}
	}
	if total != len(lat) {
		t.Fatalf("bands cover %d of %d queries", total, len(lat))
	}
	// With n=2000 uniform latencies the band populations are exact.
	wants := []int{1000, 800, 180, 18, 2}
	for i, w := range wants {
		if len(bands[i].Queries) != w {
			t.Fatalf("band %s has %d queries, want %d", bands[i].Label, len(bands[i].Queries), w)
		}
	}
}

func TestViolations(t *testing.T) {
	lat := []des.Time{des.Millisecond, 2 * des.Millisecond, 5 * des.Millisecond}
	if got := Violations(lat, 2*des.Millisecond); got != 1 {
		t.Fatalf("violations = %d, want 1", got)
	}
	if got := Violations(lat, 0); got != 3 {
		t.Fatalf("violations = %d, want 3", got)
	}
}
