package des

import (
	"strings"
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != Second+Second/2 {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if (2 * Second).Seconds() != 2 {
		t.Fatalf("Seconds = %v", (2 * Second).Seconds())
	}
	if (3 * Microsecond).Micros() != 3 {
		t.Fatalf("Micros = %v", (3 * Microsecond).Micros())
	}
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("String = %q", got)
	}
	if Minute != 60*Second || Hour != 60*Minute {
		t.Fatal("calendar constants off")
	}
}

func TestProcAccessors(t *testing.T) {
	s := New()
	var p *Proc
	p = s.Spawn("worker", func(self *Proc) {
		if self.Name() != "worker" || self.ID() != 0 || self.Sim() != s {
			t.Error("proc accessors wrong inside body")
		}
		if self.Done() {
			t.Error("Done true while running")
		}
		self.Sleep(1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("Done false after completion")
	}
}

func TestResourceAccessorsAndValidation(t *testing.T) {
	s := New()
	r := s.NewResource("disk", 2)
	if r.Name() != "disk" || r.Capacity() != 2 {
		t.Fatalf("accessors: %s %d", r.Name(), r.Capacity())
	}
	if r.FreeAt() != 0 {
		t.Fatalf("FreeAt on idle resource = %v", r.FreeAt())
	}
	r.Submit(10, nil)
	r.Submit(10, nil)
	if r.FreeAt() != 10 {
		t.Fatalf("FreeAt with both slots busy = %v", r.FreeAt())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity resource accepted")
		}
	}()
	s.NewResource("bad", 0)
}

func TestGatePending(t *testing.T) {
	s := New()
	g := s.NewGate(2)
	if g.Pending() != 2 {
		t.Fatalf("Pending = %d", g.Pending())
	}
	g.Done()
	if g.Pending() != 1 {
		t.Fatalf("Pending after Done = %d", g.Pending())
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	s.Spawn("stuck-proc", func(p *Proc) { sig.Wait(p) })
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "stuck-proc") ||
		!strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error = %v", err)
	}
}
