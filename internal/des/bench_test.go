package des

import "testing"

// BenchmarkEventHeap measures raw push/pop cost on the calendar heap at a
// paper-scale working set, guarding the allocation behavior: with the
// preallocated capacity of New, steady-state push/pop must not allocate.
func BenchmarkEventHeap(b *testing.B) {
	const depth = 2048 // pending events at peak in a paper-scale run
	h := make(eventHeap, 0, initialHeapCap)
	// Deterministic pseudo-random times exercise real sift paths.
	x := uint64(2007029)
	next := func() Time {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return Time(x % (1 << 30))
	}
	for i := 0; i < depth; i++ {
		h.push(event{t: next(), seq: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.push(event{t: next(), seq: uint64(depth + i)})
		h.pop()
	}
}

// TestEventHeapSteadyStateAllocs pins the property BenchmarkEventHeap
// reports: once the working set fits the preallocated capacity, push/pop
// cycles allocate nothing.
func TestEventHeapSteadyStateAllocs(t *testing.T) {
	h := make(eventHeap, 0, initialHeapCap)
	for i := 0; i < 1024; i++ {
		h.push(event{t: Time(i % 97), seq: uint64(i)})
	}
	seq := uint64(1024)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			h.push(event{t: Time(seq % 97), seq: seq})
			seq++
			h.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkEventThroughput measures raw calendar throughput: schedule-and-
// fire of chained events.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			s.After(1, chain)
		}
	}
	s.After(1, chain)
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcContextSwitch measures the goroutine handoff cost of a
// process sleeping repeatedly.
func BenchmarkProcContextSwitch(b *testing.B) {
	s := New()
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSwitch measures a full kernel↔process round trip with two
// processes alternating: each iteration is two tagged resume events and two
// parker handoffs, the tightest loop the simulator has.
func BenchmarkProcSwitch(b *testing.B) {
	s := New()
	iters := b.N/2 + 1
	for i := 0; i < 2; i++ {
		s.Spawn("p", func(p *Proc) {
			for j := 0; j < iters; j++ {
				p.Sleep(1)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSleepWake measures the Signal wait/wake cycle: one process parks
// on a condition, another signals it and sleeps. Each iteration exercises
// waiter enqueue (pooled), the tagged evWake event, and two process
// switches.
func BenchmarkSleepWake(b *testing.B) {
	s := New()
	cond := s.NewSignal()
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			cond.Wait(p)
		}
	})
	s.Spawn("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			cond.Signal()
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimedWaitRearm measures the resilient protocol's steady state: a
// timed wait that is always won by the signal and immediately re-armed at
// the same deadline (the WaitAnyUntil predicate loop). This is the path the
// timer tombstone/revival fix targets — the pre-rewrite kernel left every
// cancelled deadline queued, so the calendar grew by one entry per
// iteration and each push paid a growing sift.
func BenchmarkTimedWaitRearm(b *testing.B) {
	s := New()
	cond := s.NewSignal()
	deadline := Time(b.N+1) * Microsecond * 2
	s.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if !cond.WaitUntil(p, deadline) {
				b.Error("timed out")
				return
			}
		}
	})
	s.Spawn("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			cond.Signal()
			p.Sleep(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBroadcastFanout measures waking a full wait list: 32 processes
// park on one condition, a caster broadcasts, everyone loops. Each
// broadcast is one batched calendar event (the pre-rewrite kernel queued
// one closure event per waiter).
func BenchmarkBroadcastFanout(b *testing.B) {
	const procs = 32
	s := New()
	cond := s.NewSignal()
	rounds := b.N/procs + 1
	for i := 0; i < procs; i++ {
		s.Spawn("w", func(p *Proc) {
			for j := 0; j < rounds; j++ {
				cond.Wait(p)
			}
		})
	}
	s.Spawn("caster", func(p *Proc) {
		for j := 0; j < rounds; j++ {
			p.Sleep(Microsecond) // let every waiter re-park
			cond.Broadcast()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceSubmit measures the callback fast path under queueing.
func BenchmarkResourceSubmit(b *testing.B) {
	s := New()
	r := s.NewResource("r", 1)
	for i := 0; i < b.N; i++ {
		r.Submit(1, nil)
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGateFanIn measures many processes joining one gate.
func BenchmarkGateFanIn(b *testing.B) {
	s := New()
	const procs = 64
	g := s.NewGate(procs)
	iters := b.N/procs + 1
	for i := 0; i < procs; i++ {
		s.Spawn("w", func(p *Proc) {
			for j := 0; j < iters; j++ {
				p.Sleep(1)
			}
			g.Done()
		})
	}
	s.Spawn("j", func(p *Proc) { g.Wait(p) })
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
