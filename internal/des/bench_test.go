package des

import "testing"

// BenchmarkEventThroughput measures raw calendar throughput: schedule-and-
// fire of chained events.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			s.After(1, chain)
		}
	}
	s.After(1, chain)
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcContextSwitch measures the goroutine handoff cost of a
// process sleeping repeatedly.
func BenchmarkProcContextSwitch(b *testing.B) {
	s := New()
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceSubmit measures the callback fast path under queueing.
func BenchmarkResourceSubmit(b *testing.B) {
	s := New()
	r := s.NewResource("r", 1)
	for i := 0; i < b.N; i++ {
		r.Submit(1, nil)
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGateFanIn measures many processes joining one gate.
func BenchmarkGateFanIn(b *testing.B) {
	s := New()
	const procs = 64
	g := s.NewGate(procs)
	iters := b.N/procs + 1
	for i := 0; i < procs; i++ {
		s.Spawn("w", func(p *Proc) {
			for j := 0; j < iters; j++ {
				p.Sleep(1)
			}
			g.Done()
		})
	}
	s.Spawn("j", func(p *Proc) { g.Wait(p) })
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
