package des

import "unsafe"

// Resource is a FCFS service station with a fixed number of identical
// servers (capacity). It models contended hardware: a NIC, a disk, a file
// server's request processor. Service is non-preemptive: a request entering
// the station occupies the earliest-free server for its full service time.
//
// Two interfaces are provided:
//
//   - Submit: callback style, usable without a Proc. The completion callback
//     fires when service finishes. This is the fast path used by the network
//     and storage layers (no goroutine per request).
//   - Use: blocking style for code running inside a Proc.
//
// Because service times are known on submission and the discipline is FCFS,
// completion times can be computed immediately and the queue never needs to
// be materialized; per-slot free times are sufficient.
type Resource struct {
	sim       *Simulation
	name      string
	useReason string // "using <name>", precomputed so Use never allocates
	freeAt    []Time // per-slot earliest availability

	// Utilization accounting.
	busy     Time   // total service time delivered
	waited   Time   // total queueing delay imposed
	requests uint64 // total requests served (or in service)
	maxQueue Time   // largest single queueing delay observed
}

// NewResource creates a FCFS station with the given capacity (≥1).
func (s *Simulation) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("des: resource capacity must be >= 1")
	}
	return &Resource{
		sim:       s,
		name:      name,
		useReason: "using " + name,
		freeAt:    make([]Time, capacity),
	}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of parallel servers.
func (r *Resource) Capacity() int { return len(r.freeAt) }

// reserve books the earliest-free slot for a service of length d and
// returns the completion time.
func (r *Resource) reserve(d Time) Time {
	if d < 0 {
		d = 0
	}
	now := r.sim.now
	best := 0
	for i := 1; i < len(r.freeAt); i++ {
		if r.freeAt[i] < r.freeAt[best] {
			best = i
		}
	}
	start := r.freeAt[best]
	if start < now {
		start = now
	}
	wait := start - now
	done := start + d
	r.freeAt[best] = done
	r.busy += d
	r.waited += wait
	if wait > r.maxQueue {
		r.maxQueue = wait
	}
	r.requests++
	return done
}

// Submit enqueues a request with service time d; fn (if non-nil) runs when
// service completes. Returns the completion time.
func (r *Resource) Submit(d Time, fn func()) Time {
	done := r.reserve(d)
	if fn != nil {
		r.sim.At(done, fn)
	}
	return done
}

// Use blocks p through queueing plus service time d. The wakeup is a tagged
// resume event: no closure, no allocation.
func (r *Resource) Use(p *Proc, d Time) {
	s := r.sim
	done := r.reserve(d)
	s.push(done, evResume, unsafe.Pointer(p))
	p.park(r.useReason)
}

// FreeAt reports when the resource next has a free slot (≥ now means busy).
func (r *Resource) FreeAt() Time {
	best := r.freeAt[0]
	for _, t := range r.freeAt[1:] {
		if t < best {
			best = t
		}
	}
	return best
}

// Stats summarizes a resource's lifetime utilization.
type ResourceStats struct {
	Name         string
	Requests     uint64
	BusyTime     Time // total service delivered
	QueueWait    Time // total queueing delay
	MaxQueueWait Time
}

// Stats returns a snapshot of utilization counters.
func (r *Resource) Stats() ResourceStats {
	return ResourceStats{
		Name:         r.name,
		Requests:     r.requests,
		BusyTime:     r.busy,
		QueueWait:    r.waited,
		MaxQueueWait: r.maxQueue,
	}
}
