package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.At(10, func() { got = append(got, 11) }) // same time: insertion order
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("final time = %v, want 30", s.Now())
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New()
	var fired Time = -1
	s.At(100, func() {
		s.At(5, func() { fired = s.Now() }) // in the past
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatalf("past event fired at %v, want clamped to 100", fired)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	s := New()
	ran := false
	s.After(-50, func() { ran = true })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || s.Now() != 0 {
		t.Fatalf("ran=%v now=%v, want true at time 0", ran, s.Now())
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	s := New()
	var wake Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		wake = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 5*Second {
		t.Fatalf("woke at %v, want 5s", wake)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		for _, spec := range []struct {
			name string
			gaps []Time
		}{
			{"a", []Time{3, 3}},
			{"b", []Time{2, 5}},
			{"c", []Time{4, 1}},
		} {
			spec := spec
			s.Spawn(spec.name, func(p *Proc) {
				for _, g := range spec.gaps {
					p.Sleep(g)
					order = append(order, spec.name)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	want := []string{"b", "a", "c", "c", "a", "b"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 20; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic order: %v vs %v", first, again)
			}
		}
	}
}

func TestSignalBroadcastWakesAllFIFO(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			sig.Wait(p)
			order = append(order, name)
		})
	}
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(10)
		if sig.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", sig.Waiters())
		}
		sig.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestSignalWakesOne(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(1)
		sig.Signal()
		p.Sleep(1)
		sig.Broadcast() // release the rest so Run doesn't deadlock
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	s.Spawn("stuck", func(p *Proc) { sig.Wait(p) })
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want one entry", de.Blocked)
	}
}

func TestGateJoin(t *testing.T) {
	s := New()
	g := s.NewGate(3)
	var doneAt Time = -1
	s.Spawn("joiner", func(p *Proc) {
		g.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := Time(i) * Second
		s.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			g.Done()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*Second {
		t.Fatalf("gate opened at %v, want 3s", doneAt)
	}
}

func TestGateWaitWhenAlreadyZero(t *testing.T) {
	s := New()
	g := s.NewGate(0)
	passed := false
	s.Spawn("p", func(p *Proc) {
		g.Wait(p)
		passed = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !passed {
		t.Fatal("Wait on zero gate should not block")
	}
}

func TestGateNegativePanics(t *testing.T) {
	s := New()
	g := s.NewGate(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative gate")
		}
	}()
	g.Done()
}

func TestResourceFCFSSerialization(t *testing.T) {
	s := New()
	r := s.NewResource("disk", 1)
	var completions []Time
	// Three 10-unit requests submitted at t=0 must finish at 10, 20, 30.
	for i := 0; i < 3; i++ {
		r.Submit(10, func() { completions = append(completions, s.Now()) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions %v, want %v", completions, want)
		}
	}
	st := r.Stats()
	if st.Requests != 3 || st.BusyTime != 30 || st.QueueWait != 30 {
		t.Fatalf("stats = %+v, want 3 reqs, 30 busy, 30 waited", st)
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	s := New()
	r := s.NewResource("nic", 2)
	var completions []Time
	for i := 0; i < 4; i++ {
		r.Submit(10, func() { completions = append(completions, s.Now()) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions %v, want %v", completions, want)
		}
	}
}

func TestResourceUseBlocksProc(t *testing.T) {
	s := New()
	r := s.NewResource("disk", 1)
	var aDone, bDone Time
	s.Spawn("a", func(p *Proc) {
		r.Use(p, 7)
		aDone = p.Now()
	})
	s.Spawn("b", func(p *Proc) {
		r.Use(p, 5)
		bDone = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if aDone != 7 || bDone != 12 {
		t.Fatalf("aDone=%v bDone=%v, want 7 and 12", aDone, bDone)
	}
}

func TestResourceIdleGapResetsQueue(t *testing.T) {
	s := New()
	r := s.NewResource("disk", 1)
	var second Time
	r.Submit(5, nil)
	s.At(100, func() {
		r.Submit(5, func() { second = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 105 {
		t.Fatalf("second completion at %v, want 105 (no queueing after idle)", second)
	}
	if r.Stats().QueueWait != 0 {
		t.Fatalf("queue wait = %v, want 0", r.Stats().QueueWait)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	more := s.RunUntil(20)
	if !more {
		t.Fatal("expected events remaining past limit")
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 15 only", fired)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want all three after Run", fired)
	}
}

func TestBytesOver(t *testing.T) {
	if got := BytesOver(1000, 1000); got != Second {
		t.Fatalf("1000B at 1000B/s = %v, want 1s", got)
	}
	if got := BytesOver(0, 100); got != 0 {
		t.Fatalf("0 bytes = %v, want 0", got)
	}
	if got := BytesOver(100, 0); got != 0 {
		t.Fatalf("zero rate = %v, want 0 (infinite bw)", got)
	}
}

// Property: events always fire in nondecreasing time order, whatever the
// insertion order.
func TestPropertyEventTimeMonotonic(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-1 FCFS resource conserves service time — the last
// completion equals the sum of service times when all requests arrive at
// t=0, and per-request completions are the prefix sums.
func TestPropertyResourceConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		s := New()
		r := s.NewResource("r", 1)
		var completions []Time
		var prefix []Time
		var sum Time
		for _, d := range raw {
			sum += Time(d)
			prefix = append(prefix, sum)
			r.Submit(Time(d), func() { completions = append(completions, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(completions) != len(prefix) {
			return false
		}
		for i := range prefix {
			if completions[i] != prefix[i] {
				return false
			}
		}
		return r.Stats().BusyTime == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with capacity c, at no virtual instant are more than c requests
// in service. We check by simulating the same workload against an explicit
// interval-overlap counter.
func TestPropertyResourceCapacityRespected(t *testing.T) {
	type req struct {
		At  uint8
		Dur uint8
	}
	f := func(reqs []req, capRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		s := New()
		r := s.NewResource("r", capacity)
		type iv struct{ start, end Time }
		var ivs []iv
		for _, q := range reqs {
			q := q
			s.At(Time(q.At), func() {
				end := r.Submit(Time(q.Dur), nil)
				ivs = append(ivs, iv{end - Time(q.Dur), end})
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		// Max overlap of half-open intervals [start,end) with dur>0.
		type edge struct {
			t     Time
			delta int
		}
		var edges []edge
		for _, v := range ivs {
			if v.end == v.start {
				continue
			}
			edges = append(edges, edge{v.start, 1}, edge{v.end, -1})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].t != edges[j].t {
				return edges[i].t < edges[j].t
			}
			return edges[i].delta < edges[j].delta // close before open
		})
		cur, maxOv := 0, 0
		for _, e := range edges {
			cur += e.delta
			if cur > maxOv {
				maxOv = cur
			}
		}
		return maxOv <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-ish determinism check: random workloads produce identical event
// counts and final times across repeated runs.
func TestPropertyDeterministicReplay(t *testing.T) {
	build := func(seed int64) (Time, uint64) {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		r := s.NewResource("r", 2)
		sig := s.NewSignal()
		n := 5 + rng.Intn(10)
		for i := 0; i < n; i++ {
			gaps := make([]Time, 3)
			for j := range gaps {
				gaps[j] = Time(rng.Intn(1000))
			}
			last := i == n-1
			s.Spawn("p", func(p *Proc) {
				for _, g := range gaps {
					p.Sleep(g)
					r.Use(p, g/2)
				}
				if last {
					sig.Broadcast()
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now(), s.Events()
	}
	for seed := int64(0); seed < 10; seed++ {
		t1, e1 := build(seed)
		t2, e2 := build(seed)
		if t1 != t2 || e1 != e2 {
			t.Fatalf("seed %d: nondeterministic (%v,%d) vs (%v,%d)", seed, t1, e1, t2, e2)
		}
	}
}
