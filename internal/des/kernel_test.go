package des

import (
	"fmt"
	"testing"
)

// TestWaitUntilCalendarDoesNotLeak pins the stale-timer fix: under the
// predicate-loop pattern where every timed wait is won by the signal (the
// resilient protocol's steady state), re-arming at the same deadline must
// revive the one tombstoned timer entry instead of queueing another, so the
// calendar stays bounded no matter how many waits run.
func TestWaitUntilCalendarDoesNotLeak(t *testing.T) {
	const waits = 10000
	s := New()
	cond := s.NewSignal()
	deadline := Time(1) * Hour
	maxPending := 0
	s.Spawn("waiter", func(p *Proc) {
		for i := 0; i < waits; i++ {
			if !cond.WaitUntil(p, deadline) {
				t.Errorf("wait %d timed out; the signal should always win", i)
				return
			}
			if n := s.PendingEvents(); n > maxPending {
				maxPending = n
			}
		}
	})
	s.Spawn("waker", func(p *Proc) {
		for i := 0; i < waits; i++ {
			cond.Signal()
			p.Sleep(Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The live set is tiny: the reused timer, the waker's pending sleep, and
	// the in-flight wake. The old kernel accumulated one stale no-op timer
	// per win — ~10000 entries by the end of this loop.
	if maxPending > 8 {
		t.Fatalf("calendar grew to %d pending entries across %d signal-won timed waits, want <= 8",
			maxPending, waits)
	}
}

// TestWaitUntilMovingDeadlinesBounded covers the other re-arm shape: every
// wait uses a fresh deadline, so tombstones cannot be revived — they must
// instead be skipped and reclaimed when their deadline arrives, keeping the
// calendar bounded by the deadline window rather than the total wait count.
func TestWaitUntilMovingDeadlinesBounded(t *testing.T) {
	const waits = 5000
	const window = 16 // deadline horizon in waker periods
	s := New()
	cond := s.NewSignal()
	maxPending := 0
	s.Spawn("waiter", func(p *Proc) {
		for i := 0; i < waits; i++ {
			if !cond.WaitUntil(p, p.Now()+window*Microsecond) {
				t.Errorf("wait %d timed out; the signal should always win", i)
				return
			}
			if n := s.PendingEvents(); n > maxPending {
				maxPending = n
			}
		}
	})
	s.Spawn("waker", func(p *Proc) {
		for i := 0; i < waits; i++ {
			cond.Signal()
			p.Sleep(Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxPending > 2*window {
		t.Fatalf("calendar grew to %d pending entries, want <= %d (bounded by the deadline window)",
			maxPending, 2*window)
	}
}

// TestBroadcastBatchOrdering pins the determinism contract of the batched
// broadcast: waiters wake in FIFO order, and anything a woken process
// schedules "now" runs after ALL of the chain's wakes — exactly the order
// the old kernel produced with per-waiter events holding consecutive
// sequence numbers.
func TestBroadcastBatchOrdering(t *testing.T) {
	s := New()
	cond := s.NewSignal()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			cond.Wait(p)
			order = append(order, "wake-"+name)
			s.After(0, func() { order = append(order, "post-"+name) })
		})
	}
	s.Spawn("caster", func(p *Proc) {
		p.Sleep(Millisecond)
		order = append(order, "cast")
		cond.Broadcast()
		order = append(order, "cast-returned")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint([]string{
		"cast", "cast-returned",
		"wake-a", "wake-b", "wake-c",
		"post-a", "post-b", "post-c",
	})
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("broadcast interleaving changed:\n got %s\nwant %s", got, want)
	}
}

// TestBroadcastRewaitNotRewoken: a process that re-waits while the rest of
// the chain is still being resumed must not be woken by the same broadcast.
func TestBroadcastRewaitNotRewoken(t *testing.T) {
	s := New()
	cond := s.NewSignal()
	wakes := make(map[string]int)
	for _, name := range []string{"a", "b"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			cond.Wait(p)
			wakes[name]++
			cond.Wait(p) // re-enter the wait list mid-chain
			wakes[name] += 100
		})
	}
	s.Spawn("caster", func(p *Proc) {
		p.Sleep(1)
		cond.Broadcast()
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected a deadlock: re-waiters must not be re-woken by the same broadcast")
	}
	if wakes["a"] != 1 || wakes["b"] != 1 {
		t.Fatalf("wake counts = %v, want exactly one wake each", wakes)
	}
	if cond.Waiters() != 2 {
		t.Fatalf("Waiters() = %d, want 2 re-entered waiters", cond.Waiters())
	}
}

// kernelSteadyStateAllocs measures allocations of one RunUntil step after
// the simulation has warmed up (pools populated, goroutine stacks grown).
func kernelSteadyStateAllocs(t *testing.T, s *Simulation, step Time) float64 {
	t.Helper()
	limit := s.Now()
	// Warm-up: populate waiter pool, grow stacks and the calendar.
	for i := 0; i < 64; i++ {
		limit += step
		s.RunUntil(limit)
	}
	return testing.AllocsPerRun(100, func() {
		limit += step
		s.RunUntil(limit)
	})
}

// TestSleepWakeSteadyStateAllocs pins the tentpole's allocation budget: the
// Sleep/resume path must be zero-allocation in steady state.
func TestSleepWakeSteadyStateAllocs(t *testing.T) {
	s := New()
	for i := 0; i < 4; i++ {
		s.Spawn("p", func(p *Proc) {
			for {
				p.Sleep(Microsecond)
			}
		})
	}
	if allocs := kernelSteadyStateAllocs(t, s, 8*Microsecond); allocs != 0 {
		t.Fatalf("steady-state Sleep/wake allocated %.1f/run, want 0", allocs)
	}
}

// TestSignalSteadyStateAllocs pins the Signal wait/signal/broadcast cycle at
// zero allocations once the waiter pool is warm.
func TestSignalSteadyStateAllocs(t *testing.T) {
	s := New()
	cond := s.NewSignal()
	for i := 0; i < 3; i++ {
		s.Spawn("waiter", func(p *Proc) {
			for {
				cond.Wait(p)
			}
		})
	}
	s.Spawn("caster", func(p *Proc) {
		for {
			cond.Broadcast()
			cond.Signal() // no-op half the time; exercises both entry points
			p.Sleep(Microsecond)
		}
	})
	if allocs := kernelSteadyStateAllocs(t, s, 8*Microsecond); allocs != 0 {
		t.Fatalf("steady-state Signal traffic allocated %.1f/run, want 0", allocs)
	}
}

// TestTimedWaitSteadyStateAllocs pins the WaitUntil re-arm path (timer
// revival) at zero allocations.
func TestTimedWaitSteadyStateAllocs(t *testing.T) {
	s := New()
	cond := s.NewSignal()
	deadline := Time(1) * Hour
	s.Spawn("waiter", func(p *Proc) {
		for cond.WaitUntil(p, deadline) {
		}
	})
	s.Spawn("waker", func(p *Proc) {
		for {
			cond.Signal()
			p.Sleep(Microsecond)
		}
	})
	if allocs := kernelSteadyStateAllocs(t, s, 8*Microsecond); allocs != 0 {
		t.Fatalf("steady-state timed waits allocated %.1f/run, want 0", allocs)
	}
}

// TestResourceUseSteadyStateAllocs pins the blocking Resource path (tagged
// resume + precomputed block reason) at zero allocations.
func TestResourceUseSteadyStateAllocs(t *testing.T) {
	s := New()
	r := s.NewResource("disk", 2)
	for i := 0; i < 4; i++ {
		s.Spawn("client", func(p *Proc) {
			for {
				r.Use(p, Microsecond)
			}
		})
	}
	if allocs := kernelSteadyStateAllocs(t, s, 8*Microsecond); allocs != 0 {
		t.Fatalf("steady-state Resource.Use allocated %.1f/run, want 0", allocs)
	}
}

// TestResetReuse pins Reset's contract: a reused simulation must produce an
// identical run — same virtual end time, same event count, same results —
// while actually recycling process and waiter storage.
func TestResetReuse(t *testing.T) {
	run := func(s *Simulation) (Time, uint64, int) {
		cond := s.NewSignal()
		done := 0
		for i := 0; i < 8; i++ {
			i := i
			s.Spawn("w", func(p *Proc) {
				p.Sleep(Time(i) * Microsecond)
				cond.Wait(p)
				done++
			})
		}
		s.Spawn("caster", func(p *Proc) {
			p.Sleep(Millisecond)
			cond.Broadcast()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now(), s.Events(), done
	}
	fresh := New()
	t1, e1, d1 := run(fresh)

	reused := New()
	run(reused)
	reused.Reset()
	if reused.Now() != 0 || reused.Events() != 0 || reused.PendingEvents() != 0 {
		t.Fatalf("Reset left observable state: now=%v events=%d pending=%d",
			reused.Now(), reused.Events(), reused.PendingEvents())
	}
	if len(reused.procPool) == 0 {
		t.Fatal("Reset recycled no processes; reuse is not exercising the pool")
	}
	t2, e2, d2 := run(reused)
	if t1 != t2 || e1 != e2 || d1 != d2 {
		t.Fatalf("reused kernel diverged: fresh (t=%v events=%d done=%d), reused (t=%v events=%d done=%d)",
			t1, e1, d1, t2, e2, d2)
	}
}

// TestResetAfterDeadlock: a kernel whose previous run deadlocked must still
// be safely reusable — stuck processes are abandoned, not recycled.
func TestResetAfterDeadlock(t *testing.T) {
	s := New()
	cond := s.NewSignal()
	s.Spawn("stuck", func(p *Proc) { cond.Wait(p) })
	if err := s.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	s.Reset()
	ran := false
	s.Spawn("ok", func(p *Proc) { p.Sleep(Microsecond); ran = true })
	if err := s.Run(); err != nil {
		t.Fatalf("run after deadlocked Reset: %v", err)
	}
	if !ran {
		t.Fatal("process did not run after Reset")
	}
}
