package des

import (
	"fmt"
	"strings"
	"testing"
)

// sleeperFSM parks on a fixed-period Sleep forever: the idle-rank shape the
// scale benchmarks measure.
type sleeperFSM struct {
	period Time
	count  int
}

func (m *sleeperFSM) Step(p *Proc) {
	for {
		m.count++
		p.Sleep(m.period)
		if p.Yielded() {
			return
		}
	}
}

// countdownFSM sleeps n times, then finishes.
type countdownFSM struct {
	n      int
	period Time
	done   *int
}

func (m *countdownFSM) Step(p *Proc) {
	for m.n > 0 {
		m.n--
		p.Sleep(m.period)
		if p.Yielded() {
			return
		}
	}
	*m.done++
}

// signalWaiterFSM mirrors the goroutine waiter of TestBroadcastBatchOrdering:
// wait once, log the wake, schedule a post event.
type signalWaiterFSM struct {
	cond *Signal
	log  *[]string
	name string
	pc   int
}

func (m *signalWaiterFSM) Step(p *Proc) {
	switch m.pc {
	case 0:
		m.pc = 1
		m.cond.Wait(p)
		if p.Yielded() {
			return
		}
		fallthrough
	case 1:
		*m.log = append(*m.log, "wake-"+m.name)
		p.Sim().After(0, func() { *m.log = append(*m.log, "post-"+m.name) })
	}
}

// rewaitFSM waits, counts its wake, and immediately re-enters the wait list —
// the mid-chain re-wait shape of TestBroadcastRewaitNotRewoken.
type rewaitFSM struct {
	cond  *Signal
	wakes map[string]int
	name  string
	pc    int
}

func (m *rewaitFSM) Step(p *Proc) {
	switch m.pc {
	case 0:
		m.pc = 1
		m.cond.Wait(p)
	case 1:
		m.wakes[m.name]++
		m.pc = 2
		m.cond.Wait(p) // re-enter the wait list mid-chain
	case 2:
		m.wakes[m.name] += 100
	}
}

// resourceClientFSM issues n blocking Resource.Use calls, then retires one
// gate unit — the FSM twin of the goroutine client in the mixed-mode test.
type resourceClientFSM struct {
	res *Resource
	d   Time
	n   int
	g   *Gate
}

func (m *resourceClientFSM) Step(p *Proc) {
	for m.n > 0 {
		m.n--
		m.res.Use(p, m.d)
		if p.Yielded() {
			return
		}
	}
	m.g.Done()
}

// gateJoinFSM runs Gate.Wait's predicate loop in resumable form.
type gateJoinFSM struct {
	g      *Gate
	doneAt *Time
}

func (m *gateJoinFSM) Step(p *Proc) {
	for m.g.Pending() > 0 {
		m.g.Park(p)
		if p.Yielded() {
			return
		}
	}
	*m.doneAt = p.Now()
}

// TestFSMCompletes: an FSM process runs to completion across several parks,
// and the simulation accounts for it like any other process.
func TestFSMCompletes(t *testing.T) {
	s := New()
	done := 0
	p := s.SpawnFSM("c", &countdownFSM{n: 3, period: Microsecond, done: &done})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 1 || !p.Done() {
		t.Fatalf("done=%d p.Done()=%v, want the machine to finish exactly once", done, p.Done())
	}
	if s.Now() != 3*Microsecond {
		t.Fatalf("end time %v, want 3µs (three sleeps)", s.Now())
	}
}

// TestFSMDeadlockDiagnosed: a parked FSM process that can never be woken is
// reported in DeadlockError with its block reason, like a stuck goroutine.
func TestFSMDeadlockDiagnosed(t *testing.T) {
	s := New()
	cond := s.NewSignal()
	s.SpawnFSM("stuck", &signalWaiterFSM{cond: cond, log: new([]string), name: "stuck"})
	err := s.Run()
	if err == nil {
		t.Fatal("expected a deadlock")
	}
	if !strings.Contains(err.Error(), "stuck: waiting on signal") {
		t.Fatalf("deadlock diagnostics lost the FSM block reason: %v", err)
	}
}

// TestMixedKindsEventEquivalence pins the tentpole's core determinism claim:
// the same program produces the same schedule — end time, event count, join
// time — whether its processes are goroutines or state machines, including
// when the two kinds contend for one Resource and one Gate in the same run.
func TestMixedKindsEventEquivalence(t *testing.T) {
	run := func(mixed bool) (Time, uint64, Time) {
		s := New()
		res := s.NewResource("disk", 1)
		g := s.NewGate(3)
		var joinAt Time
		for i := 0; i < 3; i++ {
			d := Time(i+1) * Microsecond
			if mixed && i%2 == 0 {
				s.SpawnFSM("client", &resourceClientFSM{res: res, d: d, n: 5, g: g})
			} else {
				s.Spawn("client", func(p *Proc) {
					for k := 0; k < 5; k++ {
						res.Use(p, d)
					}
					g.Done()
				})
			}
		}
		if mixed {
			s.SpawnFSM("join", &gateJoinFSM{g: g, doneAt: &joinAt})
		} else {
			s.Spawn("join", func(p *Proc) { g.Wait(p); joinAt = p.Now() })
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now(), s.Events(), joinAt
	}
	tg, eg, jg := run(false)
	tf, ef, jf := run(true)
	if tg != tf || eg != ef || jg != jf {
		t.Fatalf("mixed-kind run diverged from all-goroutine run:\n goroutine (end=%v events=%d join=%v)\n mixed     (end=%v events=%d join=%v)",
			tg, eg, jg, tf, ef, jf)
	}
}

// TestBroadcastBatchOrderingMixedKinds extends the PR 5 broadcast-determinism
// pin across process kinds: goroutine and FSM waiters interleaved on one
// signal wake in FIFO order, and everything any of them schedules "now" runs
// after ALL of the chain's wakes.
func TestBroadcastBatchOrderingMixedKinds(t *testing.T) {
	s := New()
	cond := s.NewSignal()
	var order []string
	spawnGoroutine := func(name string) {
		s.Spawn(name, func(p *Proc) {
			cond.Wait(p)
			order = append(order, "wake-"+name)
			s.After(0, func() { order = append(order, "post-"+name) })
		})
	}
	spawnMachine := func(name string) {
		s.SpawnFSM(name, &signalWaiterFSM{cond: cond, log: &order, name: name})
	}
	spawnGoroutine("a")
	spawnMachine("b")
	spawnGoroutine("c")
	spawnMachine("d")
	s.Spawn("caster", func(p *Proc) {
		p.Sleep(Millisecond)
		order = append(order, "cast")
		cond.Broadcast()
		order = append(order, "cast-returned")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint([]string{
		"cast", "cast-returned",
		"wake-a", "wake-b", "wake-c", "wake-d",
		"post-a", "post-b", "post-c", "post-d",
	})
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("mixed-kind broadcast interleaving changed:\n got %s\nwant %s", got, want)
	}
}

// TestBroadcastRewaitNotRewokenMixedKinds: an FSM process that re-parks on
// the signal while the broadcast chain is still resuming must not be re-woken
// by the same broadcast, matching the goroutine rule.
func TestBroadcastRewaitNotRewokenMixedKinds(t *testing.T) {
	s := New()
	cond := s.NewSignal()
	wakes := make(map[string]int)
	s.Spawn("a", func(p *Proc) {
		cond.Wait(p)
		wakes["a"]++
		cond.Wait(p)
		wakes["a"] += 100
	})
	s.SpawnFSM("b", &rewaitFSM{cond: cond, wakes: wakes, name: "b"})
	s.Spawn("caster", func(p *Proc) {
		p.Sleep(1)
		cond.Broadcast()
	})
	if err := s.Run(); err == nil {
		t.Fatal("expected a deadlock: re-waiters must not be re-woken by the same broadcast")
	}
	if wakes["a"] != 1 || wakes["b"] != 1 {
		t.Fatalf("wake counts = %v, want exactly one wake each", wakes)
	}
	if cond.Waiters() != 2 {
		t.Fatalf("Waiters() = %d, want 2 re-entered waiters", cond.Waiters())
	}
}

// TestFSMParkResumeSteadyStateAllocs pins the scale tentpole's allocation
// budget: parking and resuming an idle FSM process costs nothing once the
// kernel pools are warm.
func TestFSMParkResumeSteadyStateAllocs(t *testing.T) {
	s := New()
	for i := 0; i < 4; i++ {
		s.SpawnFSM("p", &sleeperFSM{period: Microsecond})
	}
	if allocs := kernelSteadyStateAllocs(t, s, 8*Microsecond); allocs != 0 {
		t.Fatalf("steady-state FSM park/resume allocated %.1f/run, want 0", allocs)
	}
}

// doubleParkFSM blocks twice in one step without checking Yielded.
type doubleParkFSM struct{}

func (m *doubleParkFSM) Step(p *Proc) {
	p.Sleep(Microsecond)
	p.Sleep(Microsecond) // missing Yielded check: must panic
}

// mustPanic runs the simulation and requires a panic mentioning want.
func mustPanic(t *testing.T, s *Simulation, want string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic mentioning %q", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	_ = s.Run()
}

// TestFSMDoubleParkPanics: arming a second park in one step is a programming
// error the kernel catches immediately instead of losing a wakeup.
func TestFSMDoubleParkPanics(t *testing.T) {
	s := New()
	s.SpawnFSM("bad", &doubleParkFSM{})
	mustPanic(t, s, "blocked twice in one step")
}

type waitUntilFSM struct{ cond *Signal }

func (m *waitUntilFSM) Step(p *Proc) { m.cond.WaitUntil(p, Hour) }

// TestFSMWaitUntilPanics: timed waits are goroutine-only.
func TestFSMWaitUntilPanics(t *testing.T) {
	s := New()
	s.SpawnFSM("bad", &waitUntilFSM{cond: s.NewSignal()})
	mustPanic(t, s, "WaitUntil is not supported for FSM processes")
}

type gateWaitFSM struct{ g *Gate }

func (m *gateWaitFSM) Step(p *Proc) { m.g.Wait(p) }

// TestFSMGateWaitPanics: the hidden predicate loop in Gate.Wait is rejected
// for FSM processes, which must use the Park/Pending re-check pattern.
func TestFSMGateWaitPanics(t *testing.T) {
	s := New()
	s.SpawnFSM("bad", &gateWaitFSM{g: s.NewGate(1)})
	mustPanic(t, s, "Gate.Wait is not supported for FSM processes")
}

// TestFSMResetReuse: finished FSM processes are recycled by Reset and can be
// reused by either spawn form; a goroutine respawn lazily creates the parker
// channel an FSM process never needed.
func TestFSMResetReuse(t *testing.T) {
	s := New()
	done := 0
	s.SpawnFSM("c", &countdownFSM{n: 2, period: Microsecond, done: &done})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if len(s.procPool) == 0 {
		t.Fatal("Reset recycled no FSM processes")
	}
	ranGoroutine := false
	s.Spawn("g", func(p *Proc) { p.Sleep(Microsecond); ranGoroutine = true })
	s.SpawnFSM("f", &countdownFSM{n: 1, period: Microsecond, done: &done})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ranGoroutine || done != 2 {
		t.Fatalf("reuse run incomplete: goroutine ran=%v, machines finished=%d (want 2)",
			ranGoroutine, done)
	}
}
