package des

import "unsafe"

// Machine is a resumable process body: the state-machine alternative to the
// goroutine bodies started by Spawn. The kernel calls Step every time the
// process is scheduled — once for the initial evStart event and once per
// wakeup after that — and a blocked process is just its Machine value plus
// the same pooled wait records goroutine processes use. No goroutine, no
// stack, no channel handoff: parking is a flag and resumption is this method
// call, which is what lets a simulation hold 10⁵–10⁶ idle ranks in a few
// hundred megabytes.
//
// The contract mirrors cooperative blocking, restated for a stackless body:
//
//   - Step runs in kernel context. It must advance the process until it
//     either blocks or finishes, then return. Returning without having
//     blocked marks the process done, exactly like a goroutine body
//     returning.
//   - Blocking primitives (Sleep, Signal.Wait, Gate.Park, Resource.Use)
//     do not block an FSM process; they arm a park and return immediately.
//     After any call that may block, Step must check p.Yielded() and, if
//     true, return — saving enough state (a pc, loop indexes) to resume
//     from that point on the next Step. Calling a second blocking primitive
//     after a park is armed panics: the first wakeup would be lost.
//   - Predicate loops translate mechanically: where a goroutine writes
//     "for !ready() { cond.Wait(p) }", a machine re-checks ready() at the
//     top of its state and re-parks when it still fails. The kernel enqueues
//     the same waiter records in the same order either way, so a ported loop
//     is event-for-event identical to its goroutine form.
//   - Gate.Wait and Signal.WaitUntil hide predicate loops a stackless body
//     cannot express, so they panic for FSM processes; use Gate.Park (with
//     the re-check pattern above) and plain Wait instead.
//
// Machines run only while the kernel dispatches their process, so — like
// goroutine bodies — they need no locking.
type Machine interface {
	Step(p *Proc)
}

// SpawnFSM creates a state-machine process that starts executing at the
// current virtual time (after already-queued events at this time), exactly
// where Spawn would start a goroutine body. The two forms schedule
// identically — same evStart entry, same calendar position — so a simulation
// may mix them freely and replays deterministically either way.
func (s *Simulation) SpawnFSM(name string, m Machine) *Proc {
	if m == nil {
		panic("des: SpawnFSM with nil machine")
	}
	p := s.newProc(name)
	p.machine = m
	s.push(s.now, evStart, unsafe.Pointer(p))
	return p
}

// stepFSM schedules an FSM process: clear the park flag, run the machine
// until it parks or finishes, and retire it when it finishes. This is the
// FSM analogue of transferTo, minus the two channel operations — a direct
// call on the kernel's own stack.
func (s *Simulation) stepFSM(p *Proc) {
	prev := s.curr
	s.curr = p
	p.parked = false
	p.blockReason = ""
	p.machine.Step(p)
	if !p.parked {
		p.machine = nil
		p.done = true
	}
	s.curr = prev
}

// Yielded reports whether the last blocking primitive parked this process.
// Goroutine processes always observe false (they really blocked and have
// resumed by the time they can ask); FSM machines must check it after every
// call that may block and return from Step when it is true.
func (p *Proc) Yielded() bool { return p.parked }
