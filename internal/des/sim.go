package des

import (
	"fmt"
	"sort"
	"strings"
	"unsafe"
)

// evKind tags a calendar entry with its dispatch action. Tagged events are
// the kernel's fast path: Sleep, Signal wakeups, timed waits, and
// Resource.Use schedule plain struct entries with no closure allocation;
// only genuinely ad-hoc callbacks (At, After, Resource.Submit) pay for a
// func value.
type evKind uint8

const (
	// evFunc runs an ad-hoc callback.
	evFunc evKind = iota
	// evStart launches a spawned process's goroutine and runs it until its
	// first yield.
	evStart
	// evResume hands control to a parked process (Sleep, Resource.Use).
	evResume
	// evWake resumes a single signal waiter (Signal.Signal).
	evWake
	// evBroadcast resumes a FIFO chain of signal waiters in order, all
	// within one calendar entry (Signal.Broadcast).
	evBroadcast
	// evTimer is a WaitUntil deadline. If the waiter already left the wait
	// (the signal won), the entry is a tombstone: it is skipped — the pop
	// still counts as an executed event, exactly like the queued no-op it
	// replaces — and the waiter storage is reclaimed.
	evTimer
)

// event is a single entry in the calendar. Events with equal times fire in
// insertion order (seq), which keeps the simulation deterministic.
//
// The operand is a one-word tagged union discriminated by kind: a *Proc
// (evStart, evResume), a *waiter (evWake, evBroadcast chain head, evTimer),
// or a closure (evFunc). Keeping the event at one pointer word matters: the
// calendar moves events constantly (heap sift, append growth), and every
// pointer field pays a GC write barrier per move.
type event struct {
	t    Time
	seq  uint64
	arg  unsafe.Pointer
	kind evKind
}

// funcArg packs a closure into an event operand. A func value is a single
// pointer to its funcval, so the conversion is free and the GC still sees
// (and keeps alive) the closure through the unsafe.Pointer field.
func funcArg(fn func()) unsafe.Pointer {
	return *(*unsafe.Pointer)(unsafe.Pointer(&fn))
}

// argFunc unpacks a funcArg operand.
func argFunc(arg unsafe.Pointer) func() {
	return *(*func())(unsafe.Pointer(&arg))
}

// eventHeap is a binary min-heap ordered by (t, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// Simulation owns the virtual clock, the event calendar, and all processes.
// It is not safe for concurrent use: the kernel and at most one process run
// at any instant, handing control back and forth explicitly.
type Simulation struct {
	now     Time
	heap    eventHeap
	seq     uint64
	yielded chan struct{} // single-slot parker the kernel blocks on
	procs   []*Proc
	curr    *Proc
	events  uint64 // total events executed

	procPool   []*Proc   // finished processes available for respawn reuse
	waiterPool []*waiter // waiter free list (see getWaiter/putWaiter)
}

// initialHeapCap preallocates the calendar. Paper-scale runs execute
// ≈300–400 k events, but the heap only holds the pending ones — a few
// thousand at peak — so a fixed preallocation absorbs the append-growth
// reallocations of a whole run without noticeable idle cost.
const initialHeapCap = 4096

// New returns an empty simulation at time zero.
func New() *Simulation {
	return &Simulation{
		heap:    make(eventHeap, 0, initialHeapCap),
		yielded: make(chan struct{}, 1),
	}
}

// Reset returns the simulation to time zero with an empty calendar and no
// processes, retaining the calendar's storage and the process/waiter free
// lists so a sweep can reuse one Simulation across thousands of runs
// instead of reallocating per cell. A reset simulation is observably
// indistinguishable from a fresh New(): clock, sequence numbers, and event
// counts all restart at zero. Kernel objects created against the previous
// run (signals, gates, resources, processes) must not be used after Reset.
//
// Resetting after a deadlocked run is safe: processes that never finished
// are simply abandoned (their goroutines stay parked on channels nothing
// references anymore) rather than recycled.
func (s *Simulation) Reset() {
	for _, p := range s.procs {
		if p.done {
			s.procPool = append(s.procPool, p)
		}
	}
	for i := range s.heap {
		s.heap[i] = event{} // release closure/waiter references to the GC
	}
	s.heap = s.heap[:0]
	s.procs = s.procs[:0]
	s.curr = nil
	s.now, s.seq, s.events = 0, 0, 0
}

// Now reports the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Events reports how many calendar events have executed so far. Tombstoned
// timers count when their entry pops, just like the no-op events they
// replace.
func (s *Simulation) Events() uint64 { return s.events }

// PendingEvents reports how many calendar entries are currently queued,
// including tombstoned timers that have not reached their deadline yet.
func (s *Simulation) PendingEvents() int { return len(s.heap) }

// Procs reports how many processes are currently registered (done or not);
// zero after a Reset.
func (s *Simulation) Procs() int { return len(s.procs) }

// push schedules a tagged event at absolute time t (clamped to the
// present), assigning the next insertion sequence number.
func (s *Simulation) push(t Time, kind evKind, arg unsafe.Pointer) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.heap.push(event{t: t, seq: s.seq, kind: kind, arg: arg})
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the present.
func (s *Simulation) At(t Time, fn func()) {
	s.push(t, evFunc, funcArg(fn))
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (s *Simulation) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// getWaiter pops a waiter from the free list (or allocates the pool's first
// few) and initializes it for p. Steady-state signal traffic therefore
// allocates nothing.
func (s *Simulation) getWaiter(p *Proc) *waiter {
	if n := len(s.waiterPool); n > 0 {
		w := s.waiterPool[n-1]
		s.waiterPool = s.waiterPool[:n-1]
		*w = waiter{p: p}
		return w
	}
	return &waiter{p: p}
}

// putWaiter returns a waiter to the free list. Callers must ensure no
// calendar entry or wait list still references it (see the timer/queued
// flags on waiter).
func (s *Simulation) putWaiter(w *waiter) {
	*w = waiter{}
	s.waiterPool = append(s.waiterPool, w)
}

// DeadlockError reports that the calendar drained while processes were still
// blocked — every remaining process is waiting for a wakeup that can never
// arrive.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name: reason" for each stuck process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("des: deadlock at %v: %d blocked process(es): %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes events until the calendar is empty. It returns a
// *DeadlockError if any spawned process has neither finished nor been
// rescheduled when the calendar drains, and nil otherwise.
func (s *Simulation) Run() error {
	for len(s.heap) > 0 {
		e := s.heap.pop()
		s.now = e.t
		s.events++
		if e.kind == evFunc { // fast path: skip the dispatch switch
			argFunc(e.arg)()
			continue
		}
		s.dispatch(&e)
	}
	var blocked []string
	for _, p := range s.procs {
		if !p.done {
			blocked = append(blocked, p.name+": "+p.blockReason)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: s.now, Blocked: blocked}
	}
	return nil
}

// RunUntil executes events with time ≤ limit, leaving later events queued.
// It reports whether the calendar still holds events past the limit.
func (s *Simulation) RunUntil(limit Time) bool {
	for len(s.heap) > 0 && s.heap[0].t <= limit {
		e := s.heap.pop()
		s.now = e.t
		s.events++
		if e.kind == evFunc {
			argFunc(e.arg)()
			continue
		}
		s.dispatch(&e)
	}
	return len(s.heap) > 0
}

// dispatch performs a popped event's action. It runs in kernel context.
func (s *Simulation) dispatch(e *event) {
	switch e.kind {
	case evResume:
		s.transferTo((*Proc)(e.arg))
	case evFunc:
		argFunc(e.arg)()
	case evWake:
		w := (*waiter)(e.arg)
		p := w.p
		w.queued = false
		if !w.timer {
			s.putWaiter(w)
		}
		s.transferTo(p)
	case evBroadcast:
		// Resume the whole FIFO chain within this one calendar entry. The
		// wake order, and the ordering of any events the woken processes
		// schedule "now", are identical to the per-waiter events the old
		// kernel queued: chained waiters held consecutive sequence numbers,
		// so nothing could interleave between their wakes.
		for w := (*waiter)(e.arg); w != nil; {
			next := w.next // w may be recycled and reused during transferTo
			p := w.p
			w.queued = false
			if !w.timer {
				s.putWaiter(w)
			}
			s.transferTo(p)
			w = next
		}
	case evTimer:
		w := (*waiter)(e.arg)
		w.timer = false
		if w.p.timer == w {
			w.p.timer = nil
		}
		if w.out {
			// Tombstone: the signal won while this deadline was queued.
			// Reclaim the waiter unless a pending wake still references it.
			if !w.queued {
				s.putWaiter(w)
			}
			return
		}
		w.out = true
		w.timedOut = true
		w.sig.unlink(w)
		s.transferTo(w.p)
		// The waiter is reclaimed by WaitUntil once it reads timedOut.
	case evStart:
		p := (*Proc)(e.arg)
		if p.machine != nil {
			s.stepFSM(p)
			return
		}
		go func() {
			<-p.resume
			p.body(p)
			p.body = nil
			p.done = true
			s.yielded <- struct{}{}
		}()
		s.transferTo(p)
	}
}

// transferTo hands control from the kernel to p and waits for p to yield.
// Must only be called from kernel context (inside an event dispatch). For an
// FSM process this is a direct method call on the kernel's stack; for a
// goroutine process both directions use single-slot (capacity-1) channels:
// the handing-off side deposits its token without blocking and only the
// receiving side parks, so a context switch costs one blocking receive per
// side instead of the two full rendezvous an unbuffered pair would.
func (s *Simulation) transferTo(p *Proc) {
	if p.machine != nil {
		s.stepFSM(p)
		return
	}
	prev := s.curr
	s.curr = p
	p.resume <- struct{}{}
	<-s.yielded
	s.curr = prev
}
