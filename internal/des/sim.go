package des

import (
	"fmt"
	"sort"
	"strings"
)

// event is a single entry in the calendar. Events with equal times fire in
// insertion order (seq), which keeps the simulation deterministic.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap ordered by (t, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// Simulation owns the virtual clock, the event calendar, and all processes.
// It is not safe for concurrent use: the kernel and at most one process run
// at any instant, handing control back and forth explicitly.
type Simulation struct {
	now     Time
	heap    eventHeap
	seq     uint64
	yielded chan struct{}
	procs   []*Proc
	curr    *Proc
	events  uint64 // total events executed
}

// initialHeapCap preallocates the calendar. Paper-scale runs execute
// ≈300–400 k events, but the heap only holds the pending ones — a few
// thousand at peak — so a fixed preallocation absorbs the append-growth
// reallocations of a whole run without noticeable idle cost.
const initialHeapCap = 4096

// New returns an empty simulation at time zero.
func New() *Simulation {
	return &Simulation{
		heap:    make(eventHeap, 0, initialHeapCap),
		yielded: make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Events reports how many calendar events have executed so far.
func (s *Simulation) Events() uint64 { return s.events }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the present.
func (s *Simulation) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.heap.push(event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (s *Simulation) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// DeadlockError reports that the calendar drained while processes were still
// blocked — every remaining process is waiting for a wakeup that can never
// arrive.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name: reason" for each stuck process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("des: deadlock at %v: %d blocked process(es): %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run executes events until the calendar is empty. It returns a
// *DeadlockError if any spawned process has neither finished nor been
// rescheduled when the calendar drains, and nil otherwise.
func (s *Simulation) Run() error {
	for len(s.heap) > 0 {
		e := s.heap.pop()
		s.now = e.t
		s.events++
		e.fn()
	}
	var blocked []string
	for _, p := range s.procs {
		if !p.done {
			blocked = append(blocked, p.name+": "+p.blockReason)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: s.now, Blocked: blocked}
	}
	return nil
}

// RunUntil executes events with time ≤ limit, leaving later events queued.
// It reports whether the calendar still holds events past the limit.
func (s *Simulation) RunUntil(limit Time) bool {
	for len(s.heap) > 0 && s.heap[0].t <= limit {
		e := s.heap.pop()
		s.now = e.t
		s.events++
		e.fn()
	}
	return len(s.heap) > 0
}

// transferTo hands control from the kernel to p and waits for p to yield.
// Must only be called from kernel context (inside an event function).
func (s *Simulation) transferTo(p *Proc) {
	prev := s.curr
	s.curr = p
	p.resume <- struct{}{}
	<-s.yielded
	s.curr = prev
}
