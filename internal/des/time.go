// Package des implements a deterministic, process-oriented discrete-event
// simulation kernel. It is the substrate under the simulated MPI, PVFS2, and
// MPI-IO layers: virtual time, an event calendar, cooperatively scheduled
// processes (one goroutine each, exactly one runnable at a time), condition
// signals, and FCFS resources with both blocking and callback interfaces.
//
// Determinism: all wakeups flow through a single event heap ordered by
// (time, insertion sequence), so identical inputs yield identical schedules
// regardless of goroutine scheduling by the Go runtime.
package des

import "fmt"

// Time is a point in virtual time, in nanoseconds. The zero Time is the
// simulation epoch. Durations are also expressed as Time.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// FromSeconds converts a floating-point duration in seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats t as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// BytesOver returns the time needed to move n bytes at rate bytesPerSec.
// A non-positive rate yields zero time (infinite bandwidth).
func BytesOver(n int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) / bytesPerSec * float64(Second))
}
