package des

import "unsafe"

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// kernel. Exactly one Proc (or the kernel) runs at a time; a Proc gives up
// control only by blocking in Sleep, Signal.Wait, Gate.Wait, or
// Resource.Use, so code inside a Proc body needs no locking.
type Proc struct {
	sim     *Simulation
	name    string
	id      int
	resume  chan struct{} // single-slot parker this process blocks on (goroutine form only)
	body    func(p *Proc) // pending body between Spawn and the evStart event
	machine Machine       // state-machine body (SpawnFSM); nil for goroutine processes

	// timer caches this process's most recent timed waiter so a WaitUntil
	// re-armed at the same deadline on the same signal can revive the
	// already-queued evTimer entry instead of pushing another (see
	// Signal.WaitUntil). Non-nil only while that entry is still queued.
	timer *waiter

	done        bool
	parked      bool // an FSM park is armed; cleared by stepFSM on resume
	blockReason string
}

// newProc pops a pooled process (or allocates one) and registers it. The
// parker channel is created lazily by Spawn: FSM processes never block a
// goroutine, so the ~100k ranks of a scale run skip the channel entirely.
func (s *Simulation) newProc(name string) *Proc {
	var p *Proc
	if n := len(s.procPool); n > 0 {
		p = s.procPool[n-1]
		s.procPool = s.procPool[:n-1]
		p.timer = nil
		p.done = false
		p.parked = false
		p.machine = nil
		p.blockReason = ""
	} else {
		p = &Proc{sim: s}
	}
	p.name = name
	p.id = len(s.procs)
	s.procs = append(s.procs, p)
	return p
}

// Spawn creates a process that starts executing body at the current virtual
// time (after already-queued events at this time). The body runs to
// completion unless the simulation deadlocks or is abandoned. Finished
// processes recycled by Reset are reused here, parker channel and all.
func (s *Simulation) Spawn(name string, body func(p *Proc)) *Proc {
	p := s.newProc(name)
	if p.resume == nil {
		p.resume = make(chan struct{}, 1)
	}
	p.body = body
	s.push(s.now, evStart, unsafe.Pointer(p))
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn-order index, unique within the simulation.
func (p *Proc) ID() int { return p.id }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Simulation { return p.sim }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// park yields control to the kernel until some event resumes this process.
// reason is kept for deadlock diagnostics. For an FSM process nothing blocks:
// the park is armed as a flag and the caller is expected to unwind out of
// Machine.Step (checking Yielded after every potentially-blocking call).
func (p *Proc) park(reason string) {
	if p.machine != nil {
		if p.parked {
			panic("des: FSM process " + p.name +
				" blocked twice in one step (missing Yielded check after \"" +
				p.blockReason + "\")")
		}
		p.parked = true
		p.blockReason = reason
		return
	}
	p.blockReason = reason
	p.sim.yielded <- struct{}{}
	<-p.resume
	p.blockReason = ""
}

// Sleep advances this process's virtual time by d. Other events and
// processes run in the interim. Negative d is clamped to zero.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.push(s.now+d, evResume, unsafe.Pointer(p))
	p.park("sleeping")
}

// Signal is a broadcast/FIFO-wakeup condition variable for processes.
// The usual pattern is a predicate loop:
//
//	for !ready() {
//		cond.Wait(p)
//	}
//
// Wakeups are edge-triggered; a Broadcast with no waiters is a no-op.
// The wait list is an intrusive FIFO of pooled waiter entries, so the
// steady-state Wait/Signal/Broadcast cycle allocates nothing.
type Signal struct {
	sim  *Simulation
	head *waiter
	tail *waiter
	n    int
}

// waiter is one parked process's entry on a signal's wait list.
//
// Ownership protocol: a waiter may be referenced by up to two calendar
// entries at once — a wake (evWake or an evBroadcast chain link, tracked by
// queued) and a deadline (evTimer, tracked by timer). Whichever event
// clears its own flag last returns the waiter to the pool; until both flags
// are down the waiter must not be recycled, or a still-queued entry would
// dangle. The out flag records that the entry has left the wait list
// (woken or timed out), making a later deadline pop a tombstone.
type waiter struct {
	p        *Proc
	sig      *Signal
	next     *waiter
	deadline Time
	out      bool
	timedOut bool
	timer    bool // a queued evTimer entry references this waiter
	queued   bool // a queued evWake/evBroadcast entry references this waiter
}

// NewSignal returns a condition signal bound to this simulation.
func (s *Simulation) NewSignal() *Signal { return &Signal{sim: s} }

// enqueue appends w to the FIFO wait list.
func (sig *Signal) enqueue(w *waiter) {
	w.sig = sig
	w.next = nil
	if sig.tail == nil {
		sig.head = w
	} else {
		sig.tail.next = w
	}
	sig.tail = w
	sig.n++
}

// unlink removes w from the wait list (deadline expiry path).
func (sig *Signal) unlink(w *waiter) {
	var prev *waiter
	for x := sig.head; x != nil; x = x.next {
		if x == w {
			if prev == nil {
				sig.head = x.next
			} else {
				prev.next = x.next
			}
			if sig.tail == x {
				sig.tail = prev
			}
			x.next = nil
			sig.n--
			return
		}
		prev = x
	}
}

// Wait parks p until the next Signal or Broadcast. Spurious wakeups do not
// occur, but the guarded predicate may have changed again by the time p
// runs, so callers should re-check in a loop.
func (sig *Signal) Wait(p *Proc) {
	sig.enqueue(p.sim.getWaiter(p))
	p.park("waiting on signal")
}

// WaitUntil parks p until the next Signal/Broadcast or until the absolute
// virtual time deadline, whichever comes first. It reports true if p was
// woken by the signal, false on timeout. A deadline at or before the
// present returns false without parking.
//
// A signal wakeup leaves the deadline entry queued as a tombstone, but the
// calendar cannot grow under the re-arm pattern of predicate loops (wake by
// signal, re-check, wait again with the same deadline): re-arming while the
// tombstone is still queued revives it in place instead of pushing a new
// entry, and a tombstone that does reach its deadline is skipped and
// reclaimed.
func (sig *Signal) WaitUntil(p *Proc, deadline Time) bool {
	if p.machine != nil {
		// The revive-and-repark protocol is a predicate loop a stackless
		// machine cannot express; timed waits stay on goroutine processes.
		panic("des: WaitUntil is not supported for FSM processes")
	}
	s := sig.sim
	if deadline <= s.now {
		return false
	}
	w := p.timer
	if w != nil && w.timer && w.out && !w.queued && w.sig == sig && w.deadline == deadline {
		// Revive the tombstoned timer from this process's previous timed
		// wait: same signal, same deadline, entry still queued.
		w.out = false
		w.timedOut = false
	} else {
		w = s.getWaiter(p)
		w.deadline = deadline
		w.timer = true
		p.timer = w
		s.push(deadline, evTimer, unsafe.Pointer(w))
	}
	sig.enqueue(w)
	p.park("waiting on signal (timed)")
	if w.timedOut {
		// The deadline entry fired and is consumed; the kernel already
		// unlinked the waiter and cleared p.timer.
		s.putWaiter(w)
		return false
	}
	return true
}

// Broadcast wakes every current waiter at the present virtual time, in FIFO
// order. Processes that start waiting after the call are not woken. The
// whole chain is scheduled as one calendar event; because the per-waiter
// events the old kernel queued held consecutive sequence numbers, resuming
// the chain within a single event preserves execution order exactly.
func (sig *Signal) Broadcast() {
	head := sig.head
	if head == nil {
		return
	}
	for w := head; w != nil; w = w.next {
		w.out = true
		w.queued = true
	}
	sig.head, sig.tail, sig.n = nil, nil, 0
	sig.sim.push(sig.sim.now, evBroadcast, unsafe.Pointer(head))
}

// Signal wakes the longest-waiting process, if any.
func (sig *Signal) Signal() {
	w := sig.head
	if w == nil {
		return
	}
	sig.head = w.next
	if sig.head == nil {
		sig.tail = nil
	}
	sig.n--
	w.next = nil
	w.out = true
	w.queued = true
	sig.sim.push(sig.sim.now, evWake, unsafe.Pointer(w))
}

// Waiters reports how many processes are currently parked on the signal.
func (sig *Signal) Waiters() int { return sig.n }

// Gate is a join counter (a WaitGroup for simulated processes): Add
// registers pending work, Done retires it, and Wait blocks until the count
// reaches zero. Unlike sync.WaitGroup it may be reused freely and Add may
// interleave with Wait, because everything runs under the DES kernel.
type Gate struct {
	n    int
	cond *Signal
}

// NewGate returns a gate with an initial count of n.
func (s *Simulation) NewGate(n int) *Gate {
	return &Gate{n: n, cond: s.NewSignal()}
}

// Add increases the pending count by delta (which may be negative; a
// transition to zero wakes waiters).
func (g *Gate) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("des: negative Gate count")
	}
	if g.n == 0 {
		g.cond.Broadcast()
	}
}

// Done retires one unit of pending work.
func (g *Gate) Done() { g.Add(-1) }

// Pending reports the current count.
func (g *Gate) Pending() int { return g.n }

// Wait parks p until the count is zero. Returns immediately if it already is.
// FSM processes cannot run this hidden predicate loop; they use the
// equivalent re-check pattern over Park:
//
//	for g.Pending() > 0 {
//		g.Park(p)
//		if p.Yielded() {
//			return // resume this state on the next Step
//		}
//	}
func (g *Gate) Wait(p *Proc) {
	if p.machine != nil {
		panic("des: Gate.Wait is not supported for FSM processes; use Gate.Park")
	}
	for g.n > 0 {
		g.cond.Wait(p)
	}
}

// Park enqueues p on the gate's condition for one wakeup — the single
// iteration of Wait's predicate loop, split out so FSM machines can re-check
// Pending between parks. The waiter records and wake events are identical to
// Wait's, so the two forms replay the same schedule.
func (g *Gate) Park(p *Proc) {
	g.cond.Wait(p)
}
