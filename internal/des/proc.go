package des

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// kernel. Exactly one Proc (or the kernel) runs at a time; a Proc gives up
// control only by blocking in Sleep, Signal.Wait, Gate.Wait, or
// Resource.Use, so code inside a Proc body needs no locking.
type Proc struct {
	sim         *Simulation
	name        string
	id          int
	resume      chan struct{}
	done        bool
	blockReason string
}

// Spawn creates a process that starts executing body at the current virtual
// time (after already-queued events at this time). The body runs to
// completion unless the simulation deadlocks or is abandoned.
func (s *Simulation) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		name:   name,
		id:     len(s.procs),
		resume: make(chan struct{}),
	}
	s.procs = append(s.procs, p)
	s.At(s.now, func() {
		go func() {
			<-p.resume
			body(p)
			p.done = true
			s.yielded <- struct{}{}
		}()
		s.transferTo(p)
	})
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn-order index, unique within the simulation.
func (p *Proc) ID() int { return p.id }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Simulation { return p.sim }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// park yields control to the kernel until some event resumes this process.
// reason is kept for deadlock diagnostics.
func (p *Proc) park(reason string) {
	p.blockReason = reason
	p.sim.yielded <- struct{}{}
	<-p.resume
	p.blockReason = ""
}

// Sleep advances this process's virtual time by d. Other events and
// processes run in the interim. Negative d is clamped to zero.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.At(s.now+d, func() { s.transferTo(p) })
	p.park("sleeping")
}

// Signal is a broadcast/FIFO-wakeup condition variable for processes.
// The usual pattern is a predicate loop:
//
//	for !ready() {
//		cond.Wait(p)
//	}
//
// Wakeups are edge-triggered; a Broadcast with no waiters is a no-op.
type Signal struct {
	sim     *Simulation
	waiters []*waiter
}

// waiter is one parked process's entry on a signal's wait list. The out
// flag records that the entry has been removed (woken or timed out), so a
// stale WaitUntil timer firing later is a no-op.
type waiter struct {
	p        *Proc
	out      bool
	timedOut bool
}

// NewSignal returns a condition signal bound to this simulation.
func (s *Simulation) NewSignal() *Signal { return &Signal{sim: s} }

// Wait parks p until the next Signal or Broadcast. Spurious wakeups do not
// occur, but the guarded predicate may have changed again by the time p
// runs, so callers should re-check in a loop.
func (sig *Signal) Wait(p *Proc) {
	sig.waiters = append(sig.waiters, &waiter{p: p})
	p.park("waiting on signal")
}

// WaitUntil parks p until the next Signal/Broadcast or until the absolute
// virtual time deadline, whichever comes first. It reports true if p was
// woken by the signal, false on timeout. A deadline at or before the
// present returns false without parking. The internal timer event remains
// queued (as a no-op) after a signal wakeup; callers that schedule many
// timed waits should derive end-of-run times from process completions, not
// from the calendar draining.
func (sig *Signal) WaitUntil(p *Proc, deadline Time) bool {
	s := sig.sim
	if deadline <= s.now {
		return false
	}
	w := &waiter{p: p}
	sig.waiters = append(sig.waiters, w)
	s.At(deadline, func() {
		if w.out {
			return
		}
		w.out = true
		w.timedOut = true
		for i, x := range sig.waiters {
			if x == w {
				sig.waiters = append(sig.waiters[:i], sig.waiters[i+1:]...)
				break
			}
		}
		s.transferTo(w.p)
	})
	p.park("waiting on signal (timed)")
	return !w.timedOut
}

// Broadcast wakes every current waiter at the present virtual time, in FIFO
// order. Processes that start waiting after the call are not woken.
func (sig *Signal) Broadcast() {
	waiters := sig.waiters
	sig.waiters = nil
	s := sig.sim
	for _, w := range waiters {
		w := w
		w.out = true
		s.At(s.now, func() { s.transferTo(w.p) })
	}
}

// Signal wakes the longest-waiting process, if any.
func (sig *Signal) Signal() {
	if len(sig.waiters) == 0 {
		return
	}
	w := sig.waiters[0]
	sig.waiters = sig.waiters[1:]
	w.out = true
	s := sig.sim
	s.At(s.now, func() { s.transferTo(w.p) })
}

// Waiters reports how many processes are currently parked on the signal.
func (sig *Signal) Waiters() int { return len(sig.waiters) }

// Gate is a join counter (a WaitGroup for simulated processes): Add
// registers pending work, Done retires it, and Wait blocks until the count
// reaches zero. Unlike sync.WaitGroup it may be reused freely and Add may
// interleave with Wait, because everything runs under the DES kernel.
type Gate struct {
	n    int
	cond *Signal
}

// NewGate returns a gate with an initial count of n.
func (s *Simulation) NewGate(n int) *Gate {
	return &Gate{n: n, cond: s.NewSignal()}
}

// Add increases the pending count by delta (which may be negative; a
// transition to zero wakes waiters).
func (g *Gate) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("des: negative Gate count")
	}
	if g.n == 0 {
		g.cond.Broadcast()
	}
}

// Done retires one unit of pending work.
func (g *Gate) Done() { g.Add(-1) }

// Pending reports the current count.
func (g *Gate) Pending() int { return g.n }

// Wait parks p until the count is zero. Returns immediately if it already is.
func (g *Gate) Wait(p *Proc) {
	for g.n > 0 {
		g.cond.Wait(p)
	}
}
