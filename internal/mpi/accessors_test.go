package mpi

import (
	"testing"

	"s3asim/internal/des"
)

func TestWorldAccessors(t *testing.T) {
	sim := des.New()
	cfg := Myrinet2000()
	w := NewWorld(sim, 4, cfg)
	if w.Sim() != sim || w.Size() != 4 {
		t.Fatal("world accessors wrong")
	}
	if w.Config().Bandwidth != cfg.Bandwidth || w.Config().ProcsPerNode != 2 {
		t.Fatalf("config = %+v", w.Config())
	}
	if w.Rank(2).Rank() != 2 || w.Rank(2).World() != w {
		t.Fatal("rank accessors wrong")
	}
	send, recv := w.NodeNIC(0)
	send2, recv2 := w.NodeNIC(1) // same node (2 procs/node)
	if send != send2 || recv != recv2 {
		t.Fatal("ranks 0 and 1 should share a node's NICs")
	}
	send3, _ := w.NodeNIC(2)
	if send3 == send {
		t.Fatal("rank 2 should live on a different node")
	}
}

func TestMyrinet2000Shape(t *testing.T) {
	cfg := Myrinet2000()
	if cfg.Latency <= 0 || cfg.Bandwidth <= 0 || cfg.EagerLimit <= 0 {
		t.Fatalf("config = %+v", cfg)
	}
}

func TestUncontendNodeRemovesSerialization(t *testing.T) {
	// Two rendezvous-size messages into one rank: serialized on a normal
	// recv NIC, parallel after UncontendNode.
	run := func(uncontend bool) des.Time {
		sim := des.New()
		w := NewWorld(sim, 3, fastNet())
		if uncontend {
			w.UncontendNode(2, 8)
		}
		var last des.Time
		for src := 0; src < 2; src++ {
			src := src
			w.Spawn(src, "s", func(r *Rank) { r.Isend(2, 0, 2000, nil) })
		}
		w.Spawn(2, "d", func(r *Rank) {
			r.Recv(AnySource, 0)
			r.Recv(AnySource, 0)
			last = r.Now()
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	serial, parallel := run(false), run(true)
	if parallel >= serial {
		t.Fatalf("uncontended (%v) not faster than contended (%v)", parallel, serial)
	}
}

func TestProcAndMessageAccessors(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	w.Spawn(0, "s", func(r *Rank) {
		if r.Proc() == nil || r.Proc().Name() != "s" {
			t.Error("Proc accessor wrong")
		}
		req := r.Isend(1, 0, 10, "x")
		r.Wait(req)
		if req.Message() != nil {
			t.Error("send request should carry no message")
		}
	})
	w.Spawn(1, "d", func(r *Rank) {
		req := r.Irecv(0, 0)
		m := r.Wait(req)
		if !req.Done() || req.Message() != m || m.Payload != "x" {
			t.Error("recv request accessors wrong")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAnyEmptyPanics(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 1, fastNet())
	panicked := false
	w.Spawn(0, "p", func(r *Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.WaitAny(nil)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("WaitAny(nil) should panic")
	}
}

func TestTeamSizeAndForeignRank(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 4, fastNet())
	team := w.NewTeam([]int{0, 1})
	if team.Size() != 2 {
		t.Fatalf("Size = %d", team.Size())
	}
	panicked := false
	w.Spawn(3, "foreign", func(r *Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		team.Bcast(r, 0, 8, nil)
	})
	w.Spawn(0, "a", func(r *Rank) { r.Compute(1) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("foreign rank in team collective should panic")
	}
}

func TestEagerRendezvousBoundary(t *testing.T) {
	// A message exactly at the eager limit completes sender-side; one byte
	// over completes only on delivery.
	cfg := fastNet() // eager limit 1000, bw 1 MB/s, latency 1 ms
	for _, tc := range []struct {
		bytes int64
		eager bool
	}{
		{1000, true},
		{1001, false},
	} {
		sim := des.New()
		w := NewWorld(sim, 2, cfg)
		var sendDone des.Time
		w.Spawn(0, "s", func(r *Rank) {
			r.Send(1, 0, tc.bytes, nil)
			sendDone = r.Now()
		})
		w.Spawn(1, "d", func(r *Rank) { r.Recv(0, 0) })
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		senderOnly := des.BytesOver(tc.bytes, cfg.Bandwidth)
		if tc.eager && sendDone != senderOnly {
			t.Fatalf("%d bytes: send done at %v, want eager %v", tc.bytes, sendDone, senderOnly)
		}
		if !tc.eager && sendDone <= senderOnly {
			t.Fatalf("%d bytes: send done at %v, want rendezvous (later than %v)",
				tc.bytes, sendDone, senderOnly)
		}
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	panicked := false
	w.Spawn(0, "s", func(r *Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Isend(5, 0, 10, nil)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("send to out-of-range rank accepted")
	}
}
