package mpi

import (
	"testing"

	"s3asim/internal/des"
)

// TestExitWithPostedReceives pins the teardown contract the resilient
// protocol relies on: a rank may exit with posted-but-unmatched receives
// (and unread inbox traffic) without wedging the simulation or any peer.
func TestExitWithPostedReceives(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	var orphan *Request
	w.Spawn(0, "leaver", func(r *Rank) {
		orphan = r.Irecv(AnySource, 42) // never matched
		r.Compute(des.Millisecond)
		// exit with the receive still posted
	})
	var sendReq *Request
	w.Spawn(1, "peer", func(r *Rank) {
		r.Compute(10 * des.Millisecond)
		sendReq = r.Isend(0, 7, 100, "late") // wrong tag: lands in the inbox
		r.Wait(sendReq)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if orphan.Done() {
		t.Fatal("unmatched posted receive completed spuriously")
	}
	if sendReq.Dropped() {
		t.Fatal("send to an exited (but not killed) rank must still deliver")
	}
}

// TestWaitAnyMixedCompletedCancelled pins that WaitAny treats a cancelled
// request as completed — teardown code draining a mixed request set must
// not block on entries it already cancelled.
func TestWaitAnyMixedCompletedCancelled(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	w.Spawn(0, "receiver", func(r *Rank) {
		pending := r.Irecv(1, 1) // completes at ~2ms
		doomed := r.Irecv(1, 2)  // never sent
		if !r.Cancel(doomed) {
			t.Error("Cancel on a pending receive returned false")
		}
		qs := []*Request{pending, doomed}
		if i := r.WaitAny(qs); i != 1 {
			t.Errorf("WaitAny = %d, want 1 (the cancelled slot)", i)
		}
		if !doomed.Cancelled() || doomed.Message() != nil {
			t.Error("cancelled request must report Cancelled with nil message")
		}
		// With the cancelled slot nil'd out, WaitAnyUntil must skip it and
		// find the real completion.
		qs[1] = nil
		i, ok := r.WaitAnyUntil(qs, r.Now()+des.Second)
		if !ok || i != 0 {
			t.Errorf("WaitAnyUntil = (%d, %v), want (0, true)", i, ok)
		}
		if got := pending.Message(); got == nil || got.Payload != "ping" {
			t.Errorf("message = %+v", pending.Message())
		}
	})
	w.Spawn(1, "sender", func(r *Rank) {
		r.Send(0, 1, 100, "ping")
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitAnyUntilAllNilTimesOut pins the detector-timer idiom: an all-nil
// request set waits out the deadline and reports no completion.
func TestWaitAnyUntilAllNilTimesOut(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 1, fastNet())
	w.Spawn(0, "timer", func(r *Rank) {
		deadline := r.Now() + 5*des.Millisecond
		i, ok := r.WaitAnyUntil([]*Request{nil, nil}, deadline)
		if ok || i != -1 {
			t.Errorf("WaitAnyUntil = (%d, %v), want (-1, false)", i, ok)
		}
		if r.Now() != deadline {
			t.Errorf("woke at %v, want deadline %v", r.Now(), deadline)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelWithdrawsMatching pins that a cancelled receive can never match
// a later message: the message must flow to the next posted receive.
func TestCancelWithdrawsMatching(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	w.Spawn(0, "receiver", func(r *Rank) {
		first := r.Irecv(1, 3)
		r.Cancel(first)
		if r.Cancel(first) {
			t.Error("second Cancel must be a no-op returning false")
		}
		second := r.Irecv(1, 3)
		if m := r.Wait(second); m.Payload != "v" {
			t.Errorf("payload = %v", m.Payload)
		}
		if first.Message() != nil {
			t.Error("cancelled receive matched a message")
		}
	})
	w.Spawn(1, "sender", func(r *Rank) {
		r.Send(0, 3, 64, "v")
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if cnt := w.MessagesToDead(); cnt != 0 {
		t.Fatalf("MessagesToDead = %d, want 0", cnt)
	}
}

// TestKillTeardownAndRespawn drives the full crash lifecycle the fault
// layer uses: Kill cancels the dying rank's posted receives and discards
// its inbox, sends to the dead rank complete but report Dropped, and
// Respawn revives the rank with a clean slate and a bumped incarnation.
func TestKillTeardownAndRespawn(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	var posted, toDead *Request
	var revivedInc int
	w.Spawn(0, "victim", func(r *Rank) {
		posted = r.Irecv(1, 9)
		r.Compute(des.Millisecond)
		w.Kill(0) // the dying rank's own proc tears itself down
	})
	w.Spawn(1, "peer", func(r *Rank) {
		r.Compute(5 * des.Millisecond)
		toDead = r.Isend(0, 9, 100, "to the dead")
		r.Wait(toDead) // eager: completes at the sender NIC, before delivery
		r.Compute(5 * des.Millisecond)
		// The victim's proc is done by now: revive it.
		w.Respawn(0, "revived", func(r2 *Rank) {
			revivedInc = r2.Incarnation()
			if !r2.Alive() {
				t.Error("respawned rank not alive")
			}
			if r2.Probe(AnySource, AnyTag) {
				t.Error("respawned rank inherited inbox traffic")
			}
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !posted.Cancelled() {
		t.Fatal("Kill must cancel the dying rank's posted receives")
	}
	if !toDead.Dropped() {
		t.Fatal("send to a dead rank must report Dropped once delivery ran")
	}
	if revivedInc != 1 {
		t.Fatalf("incarnation after respawn = %d, want 1", revivedInc)
	}
	if w.MessagesToDead() != 1 {
		t.Fatalf("MessagesToDead = %d, want 1", w.MessagesToDead())
	}
}
