package mpi

import "fmt"

// ProtocolError is the typed value every mpi-layer invariant violation
// panics with. These panics are documented invariants, not recoverable I/O
// errors: sending to a rank outside the world, waiting on an empty request
// set, or misusing a collective team is a bug in the calling protocol, and
// the simulation is deterministic, so such a bug reproduces on every run.
// The typed value lets harnesses (and the engine's crash-unwind recovery
// wrapper) distinguish these contract violations from unrelated panics and
// pin them in tests.
type ProtocolError struct {
	Op     string // the operation that was misused, e.g. "Isend"
	Rank   int    // offending rank where meaningful, else -1
	Reason string
}

func (e *ProtocolError) Error() string {
	if e.Rank >= 0 {
		return fmt.Sprintf("mpi: %s: %s (rank %d)", e.Op, e.Reason, e.Rank)
	}
	return fmt.Sprintf("mpi: %s: %s", e.Op, e.Reason)
}

// protoPanic raises a typed invariant violation.
func protoPanic(op string, rank int, reason string) {
	panic(&ProtocolError{Op: op, Rank: rank, Reason: reason})
}
