package mpi

import (
	"testing"
	"testing/quick"

	"s3asim/internal/des"
)

// fastNet returns a config with easy arithmetic for assertions:
// 1 ms latency, 1 MB/s bandwidth, no per-message CPU, eager ≤ 1000 bytes.
func fastNet() NetConfig {
	return NetConfig{
		Latency:      des.Millisecond,
		Bandwidth:    1e6,
		EagerLimit:   1000,
		ProcsPerNode: 1,
	}
}

func TestSendRecvDeliversPayload(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	var got any
	var at des.Time
	w.Spawn(0, "sender", func(r *Rank) {
		r.Send(1, 7, 500, "hello")
	})
	w.Spawn(1, "receiver", func(r *Rank) {
		m := r.Recv(0, 7)
		got, at = m.Payload, r.Now()
		if m.Source != 0 || m.Dest != 1 || m.Tag != 7 || m.Bytes != 500 {
			t.Errorf("message header = %+v", m)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
	// 500 B at 1 MB/s = 0.5 ms sender NIC + 1 ms wire + 0.5 ms recv NIC.
	want := 2 * des.Millisecond
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestEagerSendCompletesBeforeDelivery(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	var sendDone, recvDone des.Time
	w.Spawn(0, "sender", func(r *Rank) {
		req := r.Isend(1, 0, 500, nil) // eager (≤1000)
		r.Wait(req)
		sendDone = r.Now()
	})
	w.Spawn(1, "receiver", func(r *Rank) {
		r.Recv(0, 0)
		recvDone = r.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != des.Millisecond/2 {
		t.Fatalf("eager send done at %v, want 0.5ms", sendDone)
	}
	if recvDone != 2*des.Millisecond {
		t.Fatalf("recv done at %v, want 2ms", recvDone)
	}
}

func TestLargeSendCompletesOnDelivery(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	var sendDone des.Time
	w.Spawn(0, "sender", func(r *Rank) {
		r.Send(1, 0, 2000, nil) // > eager limit
		sendDone = r.Now()
	})
	w.Spawn(1, "receiver", func(r *Rank) {
		r.Recv(0, 0)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 2 ms send NIC + 1 ms wire + 2 ms recv NIC = 5 ms.
	if sendDone != 5*des.Millisecond {
		t.Fatalf("rendezvous send done at %v, want 5ms", sendDone)
	}
}

func TestReceiverNICSerializesConcurrentSenders(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 3, fastNet())
	var last des.Time
	for src := 0; src < 2; src++ {
		src := src
		w.Spawn(src, "sender", func(r *Rank) {
			r.Isend(2, 0, 1000, nil)
		})
	}
	w.Spawn(2, "sink", func(r *Rank) {
		r.Recv(AnySource, 0)
		r.Recv(AnySource, 0)
		last = r.Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Both messages: sender NICs overlap (distinct nodes), arrive at the
	// sink's recv NIC at 2 ms; NIC serializes: 3 ms then 4 ms.
	if last != 4*des.Millisecond {
		t.Fatalf("second delivery at %v, want 4ms (receiver-side serialization)", last)
	}
}

func TestSharedNodeNICSerializesSenders(t *testing.T) {
	cfg := fastNet()
	cfg.ProcsPerNode = 2 // ranks 0,1 share a node
	sim := des.New()
	w := NewWorld(sim, 4, cfg)
	var r0Done, r1Done des.Time
	w.Spawn(0, "s0", func(r *Rank) {
		r.Send(2, 0, 1000, nil)
		r0Done = r.Now()
	})
	w.Spawn(1, "s1", func(r *Rank) {
		r.Send(3, 0, 1000, nil)
		r1Done = r.Now()
	})
	w.Spawn(2, "d2", func(r *Rank) { r.Recv(0, 0) })
	w.Spawn(3, "d3", func(r *Rank) { r.Recv(1, 0) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if r0Done != des.Millisecond || r1Done != 2*des.Millisecond {
		t.Fatalf("send completions %v, %v; want 1ms and 2ms (shared send NIC)", r0Done, r1Done)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 3, fastNet())
	var fromTag2, fromRank2 any
	w.Spawn(0, "s0", func(r *Rank) {
		r.Isend(2, 1, 10, "r0t1")
		r.Isend(2, 2, 10, "r0t2")
	})
	w.Spawn(1, "s1", func(r *Rank) {
		r.Isend(2, 1, 10, "r1t1")
	})
	w.Spawn(2, "recv", func(r *Rank) {
		fromTag2 = r.Recv(AnySource, 2).Payload
		fromRank2 = r.Recv(1, AnyTag).Payload
		r.Recv(AnySource, AnyTag) // drain the remaining message
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fromTag2 != "r0t2" {
		t.Fatalf("tag-2 recv got %v", fromTag2)
	}
	if fromRank2 != "r1t1" {
		t.Fatalf("rank-1 recv got %v", fromRank2)
	}
}

func TestPerSourceOrderingPreserved(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	const n = 20
	var order []int
	w.Spawn(0, "s", func(r *Rank) {
		for i := 0; i < n; i++ {
			r.Isend(1, 0, 100, i)
		}
	})
	w.Spawn(1, "d", func(r *Rank) {
		for i := 0; i < n; i++ {
			order = append(order, r.Recv(0, 0).Payload.(int))
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("messages reordered: %v", order)
		}
	}
}

func TestIrecvBeforeSendMatches(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	var ok bool
	w.Spawn(1, "d", func(r *Rank) {
		req := r.Irecv(0, 5)
		if r.Test(req) {
			t.Error("request complete before any send")
		}
		m := r.Wait(req)
		ok = m.Payload.(string) == "x"
	})
	w.Spawn(0, "s", func(r *Rank) {
		r.Compute(10 * des.Millisecond)
		r.Send(1, 5, 10, "x")
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("posted receive did not match later send")
	}
}

func TestProbe(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	var before, after bool
	w.Spawn(0, "s", func(r *Rank) {
		r.Send(1, 3, 10, nil)
	})
	w.Spawn(1, "d", func(r *Rank) {
		before = r.Probe(0, 3)
		r.Compute(10 * des.Millisecond)
		after = r.Probe(0, 3)
		r.Recv(0, 3)
		if r.Probe(0, 3) {
			t.Error("probe true after message consumed")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if before {
		t.Fatal("probe true before delivery")
	}
	if !after {
		t.Fatal("probe false after delivery")
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 4, fastNet())
	b := w.NewBarrier(4)
	var releases []des.Time
	for i := 0; i < 4; i++ {
		i := i
		w.Spawn(i, "p", func(r *Rank) {
			r.Compute(des.Time(i) * des.Second)
			b.Arrive(r)
			releases = append(releases, r.Now())
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Last arrival at 3 s; release delay = ceil(log2(4))·1 ms = 2 ms.
	want := 3*des.Second + 2*des.Millisecond
	for _, at := range releases {
		if at != want {
			t.Fatalf("releases %v, want all at %v", releases, want)
		}
	}
	if b.Epochs() != 1 {
		t.Fatalf("epochs = %d", b.Epochs())
	}
}

func TestBarrierReusable(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	b := w.NewBarrier(2)
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		w.Spawn(i, "p", func(r *Rank) {
			for round := 0; round < 5; round++ {
				r.Compute(des.Time(i+1) * des.Millisecond)
				b.Arrive(r)
				counts[i]++
				// Ranks must stay in lockstep.
				if counts[0] != counts[1] && counts[0]-counts[1] != 0 {
					diff := counts[i] - counts[1-i]
					if diff < -1 || diff > 1 {
						t.Errorf("ranks out of lockstep: %v", counts)
					}
				}
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("rounds = %v, want 5 each", counts)
	}
	if b.Epochs() != 5 {
		t.Fatalf("epochs = %d, want 5", b.Epochs())
	}
}

func TestWaitAllAndTestSome(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	w.Spawn(0, "s", func(r *Rank) {
		reqs := []*Request{
			r.Isend(1, 0, 10, 1),
			r.Isend(1, 0, 10, 2),
			r.Isend(1, 0, 10, 3),
		}
		r.WaitAll(reqs...)
		idx := r.TestSome(reqs, nil)
		if len(idx) != 3 {
			t.Errorf("TestSome after WaitAll = %v", idx)
		}
	})
	w.Spawn(1, "d", func(r *Rank) {
		for i := 0; i < 3; i++ {
			r.Recv(0, 0)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWorldAccounting(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 2, fastNet())
	w.Spawn(0, "s", func(r *Rank) {
		r.Send(1, 0, 100, nil)
		r.Send(1, 0, 200, nil)
	})
	w.Spawn(1, "d", func(r *Rank) {
		r.Recv(0, 0)
		r.Recv(0, 0)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if w.MessagesSent() != 2 || w.BytesSent() != 300 {
		t.Fatalf("accounting: %d msgs, %d bytes", w.MessagesSent(), w.BytesSent())
	}
}

// Property: no messages are lost or duplicated — for any pattern of sends
// from rank 0, rank 1 receives exactly the multiset sent, in order.
func TestPropertyNoLossNoDuplication(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		sim := des.New()
		w := NewWorld(sim, 2, fastNet())
		var got []int
		w.Spawn(0, "s", func(r *Rank) {
			for i, sz := range sizes {
				r.Isend(1, 0, int64(sz)+1, i)
			}
		})
		w.Spawn(1, "d", func(r *Rank) {
			for range sizes {
				got = append(got, r.Recv(0, 0).Payload.(int))
			}
		})
		if err := sim.Run(); err != nil {
			return false
		}
		if len(got) != len(sizes) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: barrier with n participants always releases everyone at
// max(arrival times) + release delay.
func TestPropertyBarrierReleaseTime(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		n := len(delaysRaw)
		if n < 1 {
			return true
		}
		if n > 32 {
			n = 32
		}
		delays := delaysRaw[:n]
		sim := des.New()
		cfg := fastNet()
		w := NewWorld(sim, n, cfg)
		b := w.NewBarrier(n)
		var maxArrive des.Time
		for _, d := range delays {
			if des.Time(d) > maxArrive {
				maxArrive = des.Time(d)
			}
		}
		steps := 0
		for v := n - 1; v > 0; v >>= 1 {
			steps++
		}
		want := maxArrive + des.Time(steps)*cfg.Latency
		okAll := true
		for i := 0; i < n; i++ {
			d := des.Time(delays[i])
			w.Spawn(i, "p", func(r *Rank) {
				r.Compute(d)
				b.Arrive(r)
				if r.Now() != want {
					okAll = false
				}
			})
		}
		if err := sim.Run(); err != nil {
			return false
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
