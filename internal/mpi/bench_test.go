package mpi

import (
	"testing"

	"s3asim/internal/des"
)

// BenchmarkPingPong measures a blocking round trip between two ranks.
func BenchmarkPingPong(b *testing.B) {
	sim := des.New()
	w := NewWorld(sim, 2, Myrinet2000())
	w.Spawn(0, "a", func(r *Rank) {
		for i := 0; i < b.N; i++ {
			r.Send(1, 0, 64, nil)
			r.Recv(1, 1)
		}
	})
	w.Spawn(1, "b", func(r *Rank) {
		for i := 0; i < b.N; i++ {
			r.Recv(0, 0)
			r.Send(0, 1, 64, nil)
		}
	})
	b.ResetTimer()
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFanIn measures many senders funneling into one receiver, the
// S3aSim master's traffic pattern.
func BenchmarkFanIn(b *testing.B) {
	const senders = 32
	sim := des.New()
	w := NewWorld(sim, senders+1, Myrinet2000())
	per := b.N/senders + 1
	for i := 1; i <= senders; i++ {
		w.Spawn(i, "s", func(r *Rank) {
			for j := 0; j < per; j++ {
				r.Isend(0, 0, 1024, nil)
			}
		})
	}
	w.Spawn(0, "sink", func(r *Rank) {
		for j := 0; j < per*senders; j++ {
			r.Recv(AnySource, 0)
		}
	})
	b.ResetTimer()
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures repeated full-world barriers.
func BenchmarkBarrier(b *testing.B) {
	const ranks = 16
	sim := des.New()
	w := NewWorld(sim, ranks, Myrinet2000())
	bar := w.NewBarrier(ranks)
	rounds := b.N/ranks + 1
	for i := 0; i < ranks; i++ {
		w.Spawn(i, "p", func(r *Rank) {
			for j := 0; j < rounds; j++ {
				bar.Arrive(r)
			}
		})
	}
	b.ResetTimer()
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}
