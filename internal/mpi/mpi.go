// Package mpi implements a simulated Message Passing Interface over the
// discrete-event kernel in internal/des: a world of ranks mapped onto nodes,
// standard and nonblocking point-to-point operations with tag/source
// matching (including wildcards), requests with Test/Wait semantics, and
// reusable barriers.
//
// The network model is deliberately simple but captures the contention
// effects the paper depends on: every node has one send-side and one
// receive-side NIC modeled as FCFS des.Resources, so a process that funnels
// traffic from many peers (the S3aSim master under the master-writing
// strategy) serializes those transfers on its receive NIC. A message costs
//
//	perMessageCPU + bytes/bandwidth   on the sender NIC,
//	wire latency                      in flight, and
//	perMessageCPU + bytes/bandwidth   on the receiver NIC.
//
// Messages at or below the eager limit complete their send request once the
// sender NIC is done (buffered send); larger messages complete on delivery
// (rendezvous-like back-pressure).
package mpi

import (
	"fmt"

	"s3asim/internal/causal"
	"s3asim/internal/des"
)

// Wildcards for Recv/Irecv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// NetConfig describes the simulated interconnect.
type NetConfig struct {
	Latency       des.Time // wire latency per message
	Bandwidth     float64  // bytes/second per NIC direction
	PerMessageCPU des.Time // software/NIC overhead per message per side
	EagerLimit    int64    // bytes; larger sends complete only on delivery
	ProcsPerNode  int      // ranks sharing a node's NICs (≥1)
}

// Myrinet2000 returns a Myrinet-2000-class network: ~2 Gb/s links, ~12 µs
// latency, dual-processor nodes as on the paper's Feynman cluster.
func Myrinet2000() NetConfig {
	return NetConfig{
		Latency:       12 * des.Microsecond,
		Bandwidth:     225e6,
		PerMessageCPU: 2 * des.Microsecond,
		EagerLimit:    64 * 1024,
		ProcsPerNode:  2,
	}
}

// Message is a delivered (or in-flight) point-to-point message. Payload
// carries real Go data between ranks; Bytes is the simulated wire size.
type Message struct {
	Source  int
	Dest    int
	Tag     int
	Bytes   int64
	Payload any

	// Causal stamps, populated only when a recorder is installed: who pushed
	// the message into the network, when, and a world-unique flow id. They
	// let a blocked receiver resolve its wait to the sending process.
	sentBy string
	sentAt des.Time
	id     uint64
}

// node is one physical machine: a pair of directional NIC resources shared
// by ProcsPerNode ranks.
type node struct {
	send *des.Resource
	recv *des.Resource
}

// FaultModel decides the fate of each message as it is sent: lost entirely
// (drop) and/or delivered with extra wire latency. Implementations must be
// deterministic given the DES-serialized call order (fault.Injector is).
type FaultModel interface {
	MessageFate(src, dst, tag int, bytes int64) (drop bool, extra des.Time)
}

// World is a communicator spanning n ranks.
type World struct {
	sim    *des.Simulation
	cfg    NetConfig
	nodes  []*node
	ranks  []*Rank
	fate   FaultModel
	causal *causal.Recorder

	bytesSent  uint64
	msgsSent   uint64
	msgsToDead uint64
}

// NewWorld creates a world of n ranks over ceil(n/ProcsPerNode) nodes.
func NewWorld(sim *des.Simulation, n int, cfg NetConfig) *World {
	if n < 1 {
		protoPanic("NewWorld", -1, "world needs at least one rank")
	}
	if cfg.ProcsPerNode < 1 {
		cfg.ProcsPerNode = 1
	}
	w := &World{sim: sim, cfg: cfg}
	numNodes := (n + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	for i := 0; i < numNodes; i++ {
		w.nodes = append(w.nodes, &node{
			send: sim.NewResource(fmt.Sprintf("node%d.sendNIC", i), 1),
			recv: sim.NewResource(fmt.Sprintf("node%d.recvNIC", i), 1),
		})
	}
	for i := 0; i < n; i++ {
		r := &Rank{
			w:        w,
			rank:     i,
			node:     w.nodes[i/cfg.ProcsPerNode],
			activity: sim.NewSignal(),
		}
		w.ranks = append(w.ranks, r)
	}
	return w
}

// Sim returns the underlying simulation.
func (w *World) Sim() *des.Simulation { return w.sim }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i's handle.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Config returns the network configuration.
func (w *World) Config() NetConfig { return w.cfg }

// BytesSent reports total payload bytes pushed into the network so far.
func (w *World) BytesSent() uint64 { return w.bytesSent }

// MessagesSent reports total messages pushed into the network so far.
func (w *World) MessagesSent() uint64 { return w.msgsSent }

// NodeNIC returns the send/recv NIC resources for the node hosting rank i,
// for utilization reporting and tests.
func (w *World) NodeNIC(i int) (send, recv *des.Resource) {
	nd := w.nodes[i/w.cfg.ProcsPerNode]
	return nd.send, nd.recv
}

// UncontendNode replaces the NICs of the node hosting rank i with
// high-capacity resources, removing interface serialization at that node.
// This is an ablation hook (e.g. isolating receive-side contention at the
// S3aSim master); call it before any traffic flows and before storage ports
// are derived from the node's NICs.
func (w *World) UncontendNode(i, capacity int) {
	nd := w.nodes[i/w.cfg.ProcsPerNode]
	nd.send = w.sim.NewResource(fmt.Sprintf("node%d.sendNIC+", i), capacity)
	nd.recv = w.sim.NewResource(fmt.Sprintf("node%d.recvNIC+", i), capacity)
}

// Spawn starts rank i's program in a new simulated process. Starting a rank
// twice is a contract violation (*ProtocolError); see Respawn for reviving
// a killed rank.
func (w *World) Spawn(i int, name string, body func(r *Rank)) *des.Proc {
	r := w.ranks[i]
	if r.proc != nil {
		protoPanic("Spawn", i, "rank already spawned")
	}
	r.proc = w.sim.Spawn(name, func(p *des.Proc) {
		body(r)
	})
	return r.proc
}

// SetFaultModel installs the message-fate hook consulted once per Isend.
// Install it before any traffic flows; a nil model (the default) delivers
// everything unchanged.
func (w *World) SetFaultModel(fm FaultModel) { w.fate = fm }

// SetCausal installs a happens-before recorder. The recorder is purely
// passive — it consumes no virtual time and posts no events — so a run with
// one installed is event-for-event identical to a run without. Install it
// before any traffic flows; nil (the default) disables recording.
func (w *World) SetCausal(c *causal.Recorder) { w.causal = c }

// Causal returns the installed recorder, or nil. Layers built on top of the
// world (ROMIO collectives) use it to bill their own work intervals.
func (w *World) Causal() *causal.Recorder { return w.causal }

// MessagesToDead reports how many messages were discarded at dead ranks.
func (w *World) MessagesToDead() uint64 { return w.msgsToDead }

// Kill marks rank i dead: its inbox is discarded, its posted-but-unmatched
// receives are cancelled, and subsequent deliveries to it are dropped
// (counted in MessagesToDead). It must be called by the dying rank's own
// process just before it unwinds — the engine's checkpoint protocol
// guarantees the rank is not parked inside a barrier or collective when it
// dies, so no other process is left waiting on state Kill tears down.
func (w *World) Kill(i int) {
	r := w.ranks[i]
	if r.dead {
		return
	}
	r.dead = true
	r.inbox = nil
	posted := r.posted
	r.posted = nil
	for _, pr := range posted {
		pr.req.cancelled = true
		pr.req.complete(nil)
	}
}

// WakeRank broadcasts rank i's activity signal from kernel context, forcing
// a rank blocked in WaitEvent/Wait loops to re-check its predicates — the
// fault injector uses it so an idle-parked worker observes its crash at the
// scheduled instant rather than at its next message.
func (w *World) WakeRank(i int) {
	w.ranks[i].activity.Broadcast()
}

// Respawn revives a killed rank with a fresh process running body — the
// fault plan's "worker restart after d". The previous incarnation must have
// been killed and finished unwinding; anything else is a contract violation
// (*ProtocolError). The revived rank starts with an empty inbox, no posted
// receives, and an incremented Incarnation.
func (w *World) Respawn(i int, name string, body func(r *Rank)) *des.Proc {
	r := w.ranks[i]
	if r.proc == nil {
		protoPanic("Respawn", i, "rank was never spawned")
	}
	if !r.dead {
		protoPanic("Respawn", i, "rank is still alive")
	}
	if !r.proc.Done() {
		protoPanic("Respawn", i, "previous incarnation still unwinding")
	}
	r.dead = false
	r.inbox = nil
	r.posted = nil
	r.incarnation++
	r.proc = w.sim.Spawn(name, func(p *des.Proc) {
		body(r)
	})
	return r.proc
}
