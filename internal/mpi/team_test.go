package mpi

import (
	"math"
	"math/rand"
	"testing"

	"s3asim/internal/des"
)

func teamFixture(t *testing.T, n int) (*des.Simulation, *World, *Team) {
	t.Helper()
	sim := des.New()
	w := NewWorld(sim, n, fastNet())
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return sim, w, w.NewTeam(ranks)
}

func TestBcastDeliversToAll(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		sim, w, team := teamFixture(t, n)
		got := make([]any, n)
		for i := 0; i < n; i++ {
			i := i
			w.Spawn(i, "p", func(r *Rank) {
				var payload any
				if i == 2%n {
					payload = "the-config"
				}
				got[i] = team.Bcast(r, 2%n, 100, payload)
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, v := range got {
			if v != "the-config" {
				t.Fatalf("n=%d rank %d got %v", n, i, v)
			}
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	const n = 7
	const root = 5
	sim, w, team := teamFixture(t, n)
	ok := true
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, "p", func(r *Rank) {
			var payload any
			if i == root {
				payload = 42
			}
			if team.Bcast(r, root, 8, payload) != 42 {
				ok = false
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("payload lost with non-zero root")
	}
}

func TestBcastLogarithmicDepth(t *testing.T) {
	// With a binomial tree, 16 ranks need 4 rounds, so completion should
	// be far faster than 15 sequential sends at high latency.
	cfg := fastNet()
	cfg.Latency = 10 * des.Millisecond
	const n = 16
	sim := des.New()
	w := NewWorld(sim, n, cfg)
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	team := w.NewTeam(ranks)
	var last des.Time
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, "p", func(r *Rank) {
			team.Bcast(r, 0, 8, i == 0)
			if r.Now() > last {
				last = r.Now()
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 tree levels x ~10ms each, far below 15 x 10ms.
	if last > 80*des.Millisecond {
		t.Fatalf("bcast finished at %v; tree depth looks linear", last)
	}
}

func TestGatherCollectsInPositionOrder(t *testing.T) {
	const n = 6
	sim, w, team := teamFixture(t, n)
	var collected []any
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, "p", func(r *Rank) {
			out := team.Gather(r, 0, 16, i*i)
			if i == 0 {
				collected = out
			} else if out != nil {
				t.Errorf("non-root rank %d got gather output", i)
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(collected) != n {
		t.Fatalf("collected %d values", len(collected))
	}
	for i, v := range collected {
		if v != i*i {
			t.Fatalf("position %d = %v, want %d", i, v, i*i)
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 9} {
		sim, w, team := teamFixture(t, n)
		rng := rand.New(rand.NewSource(int64(n)))
		values := make([]float64, n)
		want := 0.0
		for i := range values {
			values[i] = rng.Float64() * 100
			want += values[i]
		}
		var got float64
		for i := 0; i < n; i++ {
			i := i
			w.Spawn(i, "p", func(r *Rank) {
				res := team.Reduce(r, 0, 8, values[i], func(a, b float64) float64 { return a + b })
				if i == 0 {
					got = res
				}
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: sum = %v, want %v", n, got, want)
		}
	}
}

func TestReduceMaxNonZeroRoot(t *testing.T) {
	const n = 5
	const root = 3
	sim, w, team := teamFixture(t, n)
	var got float64
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, "p", func(r *Rank) {
			res := team.Reduce(r, root, 8, float64(i*10), math.Max)
			if i == root {
				got = res
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("max = %v, want 40", got)
	}
}

func TestBackToBackCollectivesDoNotCrossTalk(t *testing.T) {
	const n = 4
	sim, w, team := teamFixture(t, n)
	rounds := 5
	bad := false
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, "p", func(r *Rank) {
			for round := 0; round < rounds; round++ {
				var payload any
				if i == 0 {
					payload = round
				}
				if got := team.Bcast(r, 0, 8, payload); got != round {
					bad = true
				}
				sum := team.Reduce(r, 0, 8, float64(round), func(a, b float64) float64 { return a + b })
				if i == 0 && sum != float64(round*n) {
					bad = true
				}
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("collective rounds interfered")
	}
}

func TestTeamSubsetOfWorld(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 6, fastNet())
	team := w.NewTeam([]int{1, 3, 5}) // workers only
	var got []any
	for _, i := range []int{1, 3, 5} {
		i := i
		w.Spawn(i, "p", func(r *Rank) {
			v := team.Bcast(r, 3, 8, map[bool]any{true: "x", false: nil}[i == 3])
			got = append(got, v)
		})
	}
	w.Spawn(0, "outsider", func(r *Rank) { r.Compute(des.Second) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("members = %d", len(got))
	}
	for _, v := range got {
		if v != "x" {
			t.Fatalf("subset bcast value %v", v)
		}
	}
}

func TestTeamValidation(t *testing.T) {
	sim := des.New()
	w := NewWorld(sim, 3, fastNet())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ranks accepted")
		}
	}()
	w.NewTeam([]int{1, 1})
}
