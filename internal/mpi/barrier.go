package mpi

import (
	"s3asim/internal/des"
)

// Barrier is a reusable synchronization point for a fixed group size. The
// release cost models a tree barrier: ceil(log2(n)) network latencies after
// the last arrival. Generation counting makes it safe to reuse immediately.
type Barrier struct {
	w       *World
	n       int
	arrived int
	gen     uint64
	cond    *des.Signal

	// Accounting: total arrivals and the summed wait time across members,
	// useful when attributing synchronization cost.
	epochs uint64

	// Ring of recent epochs' last arrivers (causal recording only): waiters
	// of generation g resolve their wait to an edge at lastArriver[g%len]
	// when that slot still holds g. Old epochs fall off the ring, which is
	// fine — by then no waiter of that generation is still unparked.
	lastArriver [8]barrierEpoch
}

// barrierEpoch remembers who completed a barrier generation and when.
type barrierEpoch struct {
	gen  uint64
	proc string
	at   des.Time
	set  bool
}

// NewBarrier creates a barrier for groups of n participants.
func (w *World) NewBarrier(n int) *Barrier {
	if n < 1 {
		protoPanic("NewBarrier", -1, "barrier size must be >= 1")
	}
	return &Barrier{w: w, n: n, cond: w.sim.NewSignal()}
}

// Size returns the current participant count.
func (b *Barrier) Size() int { return b.n }

// Idle reports whether no participant is parked in the current epoch — the
// safe moment to change membership without smearing epochs.
func (b *Barrier) Idle() bool { return b.arrived == 0 }

// Deregister permanently removes one participant (a dead rank) from the
// barrier. If every remaining participant has already arrived, the epoch
// releases immediately — this is what un-wedges survivors parked behind a
// crashed peer. The removed rank must not be parked in the barrier (the
// engine's checkpoint protocol guarantees a rank never dies mid-arrival).
func (b *Barrier) Deregister() {
	if b.n < 1 {
		protoPanic("Barrier.Deregister", -1, "no participants left")
	}
	b.n--
	if b.n > 0 && b.arrived == b.n {
		b.release()
	}
}

// Register adds one participant (a restarted rank). Callers should only
// grow membership while the barrier is Idle; registering mid-epoch makes
// the current epoch wait for the newcomer too.
func (b *Barrier) Register() { b.n++ }

// release completes the current epoch: resets arrivals, advances the
// generation, and wakes the parked participants after the modeled
// fan-in/fan-out delay.
func (b *Barrier) release() {
	b.arrived = 0
	b.gen++
	b.epochs++
	delay := b.releaseDelay()
	b.w.sim.After(delay, func() { b.cond.Broadcast() })
}

// releaseDelay is the modeled fan-in/fan-out cost once everyone arrived.
func (b *Barrier) releaseDelay() des.Time {
	steps := 0
	for v := b.n - 1; v > 0; v >>= 1 {
		steps++
	}
	return des.Time(steps) * b.w.cfg.Latency
}

// Arrive blocks the calling rank until all n participants of the current
// generation have arrived, plus the modeled release delay. The operation
// itself lives in BarrierOp (so FSM processes can run it resumably); this
// wrapper drives it to completion for goroutine processes.
func (b *Barrier) Arrive(r *Rank) {
	var op BarrierOp
	op.Init(b, r)
	op.Step()
}

// Epochs reports how many times the barrier has fully released.
func (b *Barrier) Epochs() uint64 { return b.epochs }
