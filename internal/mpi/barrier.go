package mpi

import "s3asim/internal/des"

// Barrier is a reusable synchronization point for a fixed group size. The
// release cost models a tree barrier: ceil(log2(n)) network latencies after
// the last arrival. Generation counting makes it safe to reuse immediately.
type Barrier struct {
	w       *World
	n       int
	arrived int
	gen     uint64
	cond    *des.Signal

	// Accounting: total arrivals and the summed wait time across members,
	// useful when attributing synchronization cost.
	epochs uint64
}

// NewBarrier creates a barrier for groups of n participants.
func (w *World) NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("mpi: barrier size must be >= 1")
	}
	return &Barrier{w: w, n: n, cond: w.sim.NewSignal()}
}

// releaseDelay is the modeled fan-in/fan-out cost once everyone arrived.
func (b *Barrier) releaseDelay() des.Time {
	steps := 0
	for v := b.n - 1; v > 0; v >>= 1 {
		steps++
	}
	return des.Time(steps) * b.w.cfg.Latency
}

// Arrive blocks the calling rank until all n participants of the current
// generation have arrived, plus the modeled release delay.
func (b *Barrier) Arrive(r *Rank) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.epochs++
		delay := b.releaseDelay()
		w := b.w
		w.sim.After(delay, func() { b.cond.Broadcast() })
		// The completing rank also pays the release delay.
		r.proc.Sleep(delay)
		return
	}
	for gen == b.gen {
		b.cond.Wait(r.proc)
	}
}

// Epochs reports how many times the barrier has fully released.
func (b *Barrier) Epochs() uint64 { return b.epochs }
