package mpi

import (
	"s3asim/internal/causal"
	"s3asim/internal/des"
)

// This file is the mpi layer's resumable-operation support: every blocking
// composite (Wait, WaitAll, WaitAny, Barrier.Arrive, Team.Bcast) is
// implemented as an op struct whose Step method drives the operation and
// reports completion. Ops call the ordinary blocking primitives and check
// p.Yielded() after each, so:
//
//   - on a goroutine process the primitives really block and one Step call
//     runs the whole operation — the classic blocking APIs are thin wrappers
//     (Init + a single Step) over the same code;
//   - on an FSM process (des.SpawnFSM) each Step advances to the next park
//     and returns false, and the parent machine re-enters it on resume.
//
// One implementation serves both process kinds, which is what keeps the FSM
// engine event-for-event identical to the goroutine engine: the waiter
// enqueues, calendar pushes, and causal records happen in exactly the same
// order either way.

// SpawnFSM starts rank i's program as a resumable state machine on the
// simulation kernel — the scale path that backs a blocked rank with one
// pooled struct instead of a goroutine stack. The machine typically holds
// its *Rank and drives mpi ops from its Step method. Starting a rank twice
// is a contract violation, as with Spawn.
func (w *World) SpawnFSM(i int, name string, m des.Machine) *des.Proc {
	r := w.ranks[i]
	if r.proc != nil {
		protoPanic("SpawnFSM", i, "rank already spawned")
	}
	r.proc = w.sim.SpawnFSM(name, m)
	return r.proc
}

// WaitOp is Rank.Wait as a resumable operation: park on the rank's activity
// signal until the request completes, then record the wait causally.
type WaitOp struct {
	r     *Rank
	q     *Request
	start des.Time
}

// Init arms the op; the wait's causal start is the moment of arming, exactly
// where the blocking Wait captures it.
func (op *WaitOp) Init(r *Rank, q *Request) {
	op.r, op.q, op.start = r, q, r.Now()
}

// Step drives the wait; it returns true when the request has completed and
// false when the process parked (FSM processes only).
func (op *WaitOp) Step() bool {
	r, q := op.r, op.q
	for !q.done {
		r.activity.Wait(r.proc)
		if r.proc.Yielded() {
			return false
		}
	}
	if c := r.w.causal; c != nil {
		r.recordWait(c, op.start, q)
	}
	return true
}

// Message returns the completed receive's message (nil for sends). Valid
// only after Step has returned true.
func (op *WaitOp) Message() *Message { return op.q.msg }

// WaitAllOp is Rank.WaitAll as a resumable operation: each request is waited
// in order, with a fresh causal start per request, matching the blocking
// form's sequential Waits.
type WaitAllOp struct {
	r     *Rank
	qs    []*Request
	i     int
	cur   WaitOp
	armed bool
}

// Init arms the op over qs. The slice is not copied; callers own it until
// Step returns true.
func (op *WaitAllOp) Init(r *Rank, qs []*Request) {
	op.r, op.qs, op.i, op.armed = r, qs, 0, false
}

// Step reports true once every request has completed.
func (op *WaitAllOp) Step() bool {
	for op.i < len(op.qs) {
		if !op.armed {
			op.cur.Init(op.r, op.qs[op.i])
			op.armed = true
		}
		if !op.cur.Step() {
			return false
		}
		op.armed = false
		op.i++
	}
	return true
}

// WaitAnyOp is Rank.WaitAny as a resumable operation.
type WaitAnyOp struct {
	r     *Rank
	qs    []*Request
	start des.Time
	// Index is the position of the first completed request, valid once Step
	// has returned true.
	Index int
}

// Init arms the op over qs (not copied; callers may reuse a scratch slice
// across operations). An empty set can never complete and panics, like the
// blocking form.
func (op *WaitAnyOp) Init(r *Rank, qs []*Request) {
	if len(qs) == 0 {
		protoPanic("WaitAny", r.rank, "empty request set")
	}
	op.r, op.qs, op.start, op.Index = r, qs, r.Now(), -1
}

// Step reports true once at least one request has completed, recording the
// scan-order-first one in Index.
func (op *WaitAnyOp) Step() bool {
	r := op.r
	for {
		for i, q := range op.qs {
			if q.done {
				if c := r.w.causal; c != nil {
					r.recordWait(c, op.start, q)
				}
				op.Index = i
				return true
			}
		}
		r.activity.Wait(r.proc)
		if r.proc.Yielded() {
			return false
		}
	}
}

// BarrierOp is Barrier.Arrive as a resumable operation. Init performs the
// arrival bookkeeping (count, epoch release when this rank completes the
// barrier); Step pays the release delay or parks until the epoch releases.
type BarrierOp struct {
	b     *Barrier
	r     *Rank
	gen   uint64
	delay des.Time
	start des.Time
	pc    uint8
}

const (
	barrierCompleter uint8 = iota // pay the release delay
	barrierBusy                   // record the completer's delay as busy time
	barrierWaiter                 // parked until the generation advances
)

// Init registers r's arrival at b, releasing the epoch if r is the last
// participant in.
func (op *BarrierOp) Init(b *Barrier, r *Rank) {
	op.b, op.r = b, r
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		if c := b.w.causal; c != nil {
			b.lastArriver[gen%uint64(len(b.lastArriver))] =
				barrierEpoch{gen: gen, proc: r.proc.Name(), at: b.w.sim.Now(), set: true}
		}
		op.delay = b.releaseDelay()
		b.release()
		// The completing rank also pays the release delay.
		op.start = r.Now()
		op.pc = barrierCompleter
		return
	}
	op.gen = gen
	op.start = r.Now()
	op.pc = barrierWaiter
}

// Step drives the arrival; true means the barrier epoch has released for r.
func (op *BarrierOp) Step() bool {
	b, r := op.b, op.r
	p := r.proc
	if op.pc == barrierCompleter {
		op.pc = barrierBusy
		p.Sleep(op.delay)
		if p.Yielded() {
			return false
		}
	}
	if op.pc == barrierBusy {
		if c := b.w.causal; c != nil {
			c.Busy(p.Name(), causal.CatSyncWait, op.start, r.Now())
		}
		return true
	}
	// Waiter: park until the epoch we arrived in has released.
	for op.gen == b.gen {
		b.cond.Wait(p)
		if p.Yielded() {
			return false
		}
	}
	if c := b.w.causal; c != nil && r.Now() > op.start {
		// Fan-in: the wait was released by the last arriver; the walk jumps
		// to that process at its arrival instant. An epoch released by
		// Deregister (a dead peer's teardown) has no recorded arriver.
		if e := b.lastArriver[op.gen%uint64(len(b.lastArriver))]; e.set && e.gen == op.gen {
			c.WaitEdge(p.Name(), op.start, r.Now(), causal.CatSyncWait, e.proc, e.at)
		} else {
			c.WaitPlain(p.Name(), op.start, r.Now(), causal.CatSyncWait)
		}
	}
	return true
}

// BcastOp is Team.Bcast as a resumable operation: receive from the binomial
// parent, forward to children, wait out the sends.
type BcastOp struct {
	t       *Team
	r       *Rank
	payload any
	bytes   int64
	tag     int
	vr, n   int
	rootPos int
	mask    int
	recvReq *Request
	wait    WaitOp
	sends   []*Request
	waitAll WaitAllOp
	pc      uint8
}

const (
	bcastRecv uint8 = iota // waiting on the parent's message
	bcastSend              // children notified; waiting out the sends
)

// Init arms one broadcast round for r, reserving the member's collective tag
// (so it must be called exactly when the blocking Bcast would have been).
func (op *BcastOp) Init(t *Team, r *Rank, root int, bytes int64, payload any) {
	op.t, op.r, op.bytes, op.payload = t, r, bytes, payload
	op.n = len(t.ranks)
	op.tag = t.opTag(r)
	rootPos, ok := t.indexOf[root]
	if !ok {
		protoPanic("Bcast", root, "root not in team")
	}
	op.rootPos = rootPos
	op.vr = t.vrank(t.pos(r), rootPos)
	op.sends = op.sends[:0]
	op.recvReq = nil
	op.pc = bcastRecv

	// Receive from parent (all but the root). The mask where the scan stops
	// is also where the forwarding fan-out starts.
	mask := 1
	for mask < op.n {
		if op.vr&mask != 0 {
			parent := t.absRank(op.vr-mask, rootPos)
			op.recvReq = r.Irecv(parent, op.tag)
			op.wait.Init(r, op.recvReq)
			break
		}
		mask <<= 1
	}
	op.mask = mask
}

// Step drives the broadcast; true means the payload is distributed and all
// of this member's forwards are complete.
func (op *BcastOp) Step() bool {
	t, r := op.t, op.r
	if op.pc == bcastRecv {
		if op.recvReq != nil {
			if !op.wait.Step() {
				return false
			}
			op.payload = op.recvReq.msg.Payload
		}
		// Forward to children.
		for mask := op.mask >> 1; mask > 0; mask >>= 1 {
			if op.vr+mask < op.n {
				child := t.absRank(op.vr+mask, op.rootPos)
				op.sends = append(op.sends, r.Isend(child, op.tag, op.bytes, op.payload))
			}
		}
		op.waitAll.Init(r, op.sends)
		op.pc = bcastSend
	}
	return op.waitAll.Step()
}

// Result returns the broadcast payload; valid on every member once Step has
// returned true.
func (op *BcastOp) Result() any { return op.payload }
