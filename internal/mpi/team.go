package mpi

import "sort"

// teamTagBase keeps collective tags away from application and two-phase
// exchange tags.
const teamTagBase = 1 << 22

// Team is a fixed group of ranks executing collectives together: broadcast
// and reduce use binomial trees (log₂(n) rounds, as MPICH does), gather is
// linear at the root. Every member must call each collective in the same
// order; a generation counter isolates successive operations.
type Team struct {
	w       *World
	ranks   []int
	indexOf map[int]int
	// memberGen counts collectives each member has entered. Members call
	// collectives in the same order, so the k-th operation carries the
	// same tag on every member even when operations overlap in time.
	memberGen []int
}

// NewTeam creates a collective team over the given ranks.
func (w *World) NewTeam(ranks []int) *Team {
	if len(ranks) == 0 {
		protoPanic("NewTeam", -1, "empty team")
	}
	t := &Team{w: w, ranks: append([]int(nil), ranks...), indexOf: map[int]int{}}
	sort.Ints(t.ranks)
	for i, rk := range t.ranks {
		if _, dup := t.indexOf[rk]; dup {
			protoPanic("NewTeam", rk, "duplicate rank in team")
		}
		t.indexOf[rk] = i
	}
	t.memberGen = make([]int, len(t.ranks))
	return t
}

// Size returns the number of team members.
func (t *Team) Size() int { return len(t.ranks) }

// pos returns r's position within the team, panicking on foreign ranks.
func (t *Team) pos(r *Rank) int {
	p, ok := t.indexOf[r.Rank()]
	if !ok {
		protoPanic("Team", r.Rank(), "rank not in team")
	}
	return p
}

// vrank is the virtual rank relative to root (tree algorithms are written
// as if root were position 0).
func (t *Team) vrank(pos, rootPos int) int {
	return (pos - rootPos + len(t.ranks)) % len(t.ranks)
}

// absRank converts a virtual rank back to a world rank.
func (t *Team) absRank(vr, rootPos int) int {
	return t.ranks[(vr+rootPos)%len(t.ranks)]
}

// opTag reserves this member's tag for its next collective operation.
func (t *Team) opTag(r *Rank) int {
	p := t.pos(r)
	tag := teamTagBase + (t.memberGen[p] % (1 << 16))
	t.memberGen[p]++
	return tag
}

// Bcast distributes payload (of the given simulated size) from root to
// every team member along a binomial tree. Returns the payload on every
// member. root is a world rank that must belong to the team.
func (t *Team) Bcast(r *Rank, root int, bytes int64, payload any) any {
	// The binomial algorithm lives in BcastOp (so FSM processes can run it
	// resumably); this wrapper drives it to completion for goroutine
	// processes.
	var op BcastOp
	op.Init(t, r, root, bytes, payload)
	op.Step()
	return op.Result()
}

// Gather collects every member's payload at root (linear algorithm, as
// MPICH uses for small teams). At root it returns payloads indexed by team
// position; elsewhere it returns nil.
func (t *Team) Gather(r *Rank, root int, bytes int64, payload any) []any {
	tag := t.opTag(r)
	rootPos, ok := t.indexOf[root]
	if !ok {
		protoPanic("Gather", root, "root not in team")
	}
	me := t.pos(r)
	if me != rootPos {
		r.Send(root, tag, bytes, gatherItem{Pos: me, Value: payload})
		return nil
	}
	out := make([]any, len(t.ranks))
	out[rootPos] = payload
	for i := 0; i < len(t.ranks)-1; i++ {
		m := r.Recv(AnySource, tag)
		item := m.Payload.(gatherItem)
		out[item.Pos] = item.Value
	}
	return out
}

type gatherItem struct {
	Pos   int
	Value any
}

// Reduce combines every member's float64 value with op along a binomial
// tree, delivering the result at root (others receive 0). op must be
// associative and commutative.
func (t *Team) Reduce(r *Rank, root int, bytes int64, value float64, op func(a, b float64) float64) float64 {
	n := len(t.ranks)
	tag := t.opTag(r)
	rootPos, ok := t.indexOf[root]
	if !ok {
		protoPanic("Reduce", root, "root not in team")
	}
	vr := t.vrank(t.pos(r), rootPos)
	acc := value
	mask := 1
	for mask < n {
		if vr&mask == 0 {
			src := vr | mask
			if src < n {
				m := r.Recv(t.absRank(src, rootPos), tag)
				acc = op(acc, m.Payload.(float64))
			}
		} else {
			dst := t.absRank(vr&^mask, rootPos)
			r.Send(dst, tag, bytes, acc)
			return 0
		}
		mask <<= 1
	}
	return acc // only the root reaches here
}
