package mpi

import (
	"fmt"

	"s3asim/internal/causal"
	"s3asim/internal/des"
)

// Rank is one MPI process. All of its operations must be invoked from
// inside the des.Proc that Spawn started for it.
type Rank struct {
	w    *World
	rank int
	node *node
	proc *des.Proc

	inbox    []*Message    // arrived, not yet matched
	posted   []*postedRecv // posted receives, not yet matched
	activity *des.Signal   // broadcast whenever a request completes

	dead        bool // killed by fault injection; deliveries are discarded
	incarnation int  // respawn count (0 for the original process)

	msgsSent  uint64 // messages this rank pushed into the network
	bytesSent uint64 // payload bytes this rank pushed into the network

	// Last message to arrive at this rank (causal recording only): lets a
	// generic WaitEvent wake distinguish "a message arrived just now" (a
	// transit edge to its sender) from an out-of-band or timeout wake.
	lastMsg   *Message
	lastMsgAt des.Time
}

type postedRecv struct {
	source, tag int
	req         *Request
}

func (pr *postedRecv) matches(m *Message) bool {
	return (pr.source == AnySource || pr.source == m.Source) &&
		(pr.tag == AnyTag || pr.tag == m.Tag)
}

// Rank returns this rank's index.
func (r *Rank) Rank() int { return r.rank }

// World returns the communicator.
func (r *Rank) World() *World { return r.w }

// Proc returns the simulated process executing this rank.
func (r *Rank) Proc() *des.Proc { return r.proc }

// Now returns the current virtual time.
func (r *Rank) Now() des.Time { return r.w.sim.Now() }

// Compute advances this rank's virtual clock by d, modeling local work.
func (r *Rank) Compute(d des.Time) {
	if c := r.w.causal; c != nil {
		start := r.Now()
		r.proc.Sleep(d)
		c.Busy(r.proc.Name(), causal.CatCompute, start, r.Now())
		return
	}
	r.proc.Sleep(d)
}

// Alive reports whether the rank is running (not killed by fault
// injection). A fresh rank is alive; Kill clears it, Respawn restores it.
func (r *Rank) Alive() bool { return !r.dead }

// Incarnation reports how many times this rank has been respawned (0 for
// the original process). The engine's recovery protocol uses it to detect a
// restarted worker whose death was never observed.
func (r *Rank) Incarnation() int { return r.incarnation }

// MessagesSent reports how many messages this rank has sent.
func (r *Rank) MessagesSent() uint64 { return r.msgsSent }

// BytesSent reports how many payload bytes this rank has sent.
func (r *Rank) BytesSent() uint64 { return r.bytesSent }

// Request tracks the completion of a nonblocking operation. A receive
// request additionally carries the matched message once complete.
type Request struct {
	owner     *Rank
	done      bool
	msg       *Message // non-nil for completed receives
	cancelled bool     // receive cancelled before matching
	dropped   bool     // send whose message the network lost (fault injection)
}

// Done reports whether the operation has completed (MPI_Test without
// side effects; our Test is free of progress obligations because the DES
// kernel advances the network independently).
func (q *Request) Done() bool { return q.done }

// Message returns the received message, or nil if not a completed receive.
func (q *Request) Message() *Message { return q.msg }

// Cancelled reports whether the request was retired by Cancel (teardown)
// rather than by matching a message.
func (q *Request) Cancelled() bool { return q.cancelled }

// Dropped reports whether a send's message was lost by fault injection (or
// discarded at a dead destination). The request still completes — a lost
// message must not wedge the sender — but the loss is observable here
// instead of masquerading as success.
func (q *Request) Dropped() bool { return q.dropped }

func (q *Request) complete(m *Message) {
	q.done = true
	q.msg = m
	q.owner.activity.Broadcast()
}

// Isend starts a nonblocking send of a message with the given simulated
// size and real payload. The returned request completes when the sender-side
// NIC finishes (bytes ≤ eager limit) or when the message is delivered to the
// destination rank's matching engine (larger messages).
//
// Sending to a rank outside the world is a contract violation and panics
// with *ProtocolError. Sending to a dead (killed) rank is legal — failure
// detectors need exactly that — but the message is discarded on arrival and
// the request reports Dropped.
func (r *Rank) Isend(dest, tag int, bytes int64, payload any) *Request {
	if dest < 0 || dest >= len(r.w.ranks) {
		protoPanic("Isend", dest, "destination outside world")
	}
	w := r.w
	cfg := w.cfg
	m := &Message{Source: r.rank, Dest: dest, Tag: tag, Bytes: bytes, Payload: payload}
	req := &Request{owner: r}
	w.msgsSent++
	w.bytesSent += uint64(bytes)
	r.msgsSent++
	r.bytesSent += uint64(bytes)
	if w.causal != nil {
		m.sentBy = r.proc.Name()
		m.sentAt = w.sim.Now()
		m.id = w.msgsSent
	}

	var lost bool
	var extra des.Time
	if w.fate != nil {
		lost, extra = w.fate.MessageFate(r.rank, dest, tag, bytes)
	}

	eager := bytes <= cfg.EagerLimit
	sendCost := cfg.PerMessageCPU + des.BytesOver(bytes, cfg.Bandwidth)
	dstRank := w.ranks[dest]
	r.node.send.Submit(sendCost, func() {
		if eager {
			req.complete(nil) // send requests carry no message
		}
		w.sim.After(cfg.Latency+extra, func() {
			// A message lost on the wire never reaches the receiver NIC; a
			// rendezvous send still completes (the transport gave up), with
			// the loss surfaced via Dropped.
			if lost {
				req.dropped = true
				if !eager {
					req.complete(nil)
				}
				return
			}
			recvCost := cfg.PerMessageCPU + des.BytesOver(bytes, cfg.Bandwidth)
			dstRank.node.recv.Submit(recvCost, func() {
				if dstRank.dead {
					req.dropped = true
					r.w.msgsToDead++
				} else {
					if c := w.causal; c != nil && c.CapturesFlows() && dstRank.proc != nil {
						c.Flow(m.id, fmt.Sprintf("msg.%d", m.Tag), m.sentBy,
							dstRank.proc.Name(), m.sentAt, w.sim.Now())
					}
					dstRank.deliver(m)
				}
				if !eager {
					req.complete(nil)
				}
			})
		})
	})
	return req
}

// Send is a blocking standard-mode send: Isend followed by Wait.
func (r *Rank) Send(dest, tag int, bytes int64, payload any) {
	r.Wait(r.Isend(dest, tag, bytes, payload))
}

// deliver runs in kernel context when a message clears the receiver NIC:
// match the oldest satisfiable posted receive, else queue in arrival order.
func (r *Rank) deliver(m *Message) {
	if r.w.causal != nil {
		r.lastMsg, r.lastMsgAt = m, r.w.sim.Now()
	}
	for i, pr := range r.posted {
		if pr.matches(m) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			pr.req.complete(m)
			return
		}
	}
	r.inbox = append(r.inbox, m)
}

// Irecv posts a nonblocking receive for (source, tag); AnySource/AnyTag
// wildcards apply. If a queued message already matches, the request
// completes immediately (consuming the oldest match).
func (r *Rank) Irecv(source, tag int) *Request {
	req := &Request{owner: r}
	for i, m := range r.inbox {
		if (source == AnySource || source == m.Source) && (tag == AnyTag || tag == m.Tag) {
			r.inbox = append(r.inbox[:i], r.inbox[i+1:]...)
			req.complete(m)
			return req
		}
	}
	r.posted = append(r.posted, &postedRecv{source: source, tag: tag, req: req})
	return req
}

// Recv is a blocking receive: Irecv followed by Wait.
func (r *Rank) Recv(source, tag int) *Message {
	return r.Wait(r.Irecv(source, tag))
}

// Wait blocks this rank until the request completes, returning the matched
// message for receives (nil for sends). Corresponds to MPI_Wait.
func (r *Rank) Wait(q *Request) *Message {
	start := r.Now()
	for !q.done {
		r.activity.Wait(r.proc)
	}
	if c := r.w.causal; c != nil {
		r.recordWait(c, start, q)
	}
	return q.msg
}

// recordWait classifies a completed blocking wait: a received message makes
// a transit edge back to its sender; a cancelled request is recovery
// teardown; anything else (waiting out one's own send) is plain transit.
func (r *Rank) recordWait(c *causal.Recorder, start des.Time, q *Request) {
	end := r.Now()
	if end <= start {
		return
	}
	name := r.proc.Name()
	switch {
	case q.msg != nil && q.msg.sentBy != "":
		c.WaitEdge(name, start, end, causal.CatTransit, q.msg.sentBy, q.msg.sentAt)
	case q.cancelled:
		c.WaitPlain(name, start, end, causal.CatRecovery)
	default:
		c.WaitPlain(name, start, end, causal.CatTransit)
	}
}

// WaitAll blocks until every request has completed.
func (r *Rank) WaitAll(qs ...*Request) {
	for _, q := range qs {
		r.Wait(q)
	}
}

// WaitAny blocks until at least one of the requests has completed and
// returns the index of the first completed one. Waiting on an empty set can
// never complete; it is a contract violation and panics with
// *ProtocolError.
func (r *Rank) WaitAny(qs []*Request) int {
	if len(qs) == 0 {
		protoPanic("WaitAny", r.rank, "empty request set")
	}
	start := r.Now()
	for {
		for i, q := range qs {
			if q.done {
				if c := r.w.causal; c != nil {
					r.recordWait(c, start, q)
				}
				return i
			}
		}
		r.activity.Wait(r.proc)
	}
}

// WaitAnyUntil is WaitAny with an absolute virtual-time deadline: it
// returns (index, true) when a request completes first, or (-1, false) if
// the deadline passes with none complete. Nil entries are skipped, so
// callers can keep fixed slots. An all-nil or empty set simply waits out
// the deadline (the engine's resilient master uses that as its detector
// sweep timer).
func (r *Rank) WaitAnyUntil(qs []*Request, deadline des.Time) (int, bool) {
	c := r.w.causal
	start := r.Now()
	timeout := func() (int, bool) {
		if c != nil && r.Now() > start {
			// Timed-out waits are the resilient protocol's detection arm.
			c.WaitPlain(r.proc.Name(), start, r.Now(), causal.CatRecovery)
		}
		return -1, false
	}
	for {
		for i, q := range qs {
			if q != nil && q.done {
				if c != nil {
					r.recordWait(c, start, q)
				}
				return i, true
			}
		}
		if r.Now() >= deadline {
			return timeout()
		}
		if !r.activity.WaitUntil(r.proc, deadline) {
			return timeout()
		}
	}
}

// WaitEvent parks the rank until any of its requests completes (or the
// rank is woken out-of-band via World.WakeRank). Callers re-check their
// predicates in a loop, like Signal.Wait.
func (r *Rank) WaitEvent() {
	c := r.w.causal
	if c == nil {
		r.activity.Wait(r.proc)
		return
	}
	start := r.Now()
	r.activity.Wait(r.proc)
	r.recordEventWake(c, start)
}

// WaitEventUntil is WaitEvent with an absolute deadline; it reports false
// on timeout.
func (r *Rank) WaitEventUntil(deadline des.Time) bool {
	c := r.w.causal
	if c == nil {
		return r.activity.WaitUntil(r.proc, deadline)
	}
	start := r.Now()
	ok := r.activity.WaitUntil(r.proc, deadline)
	if ok {
		r.recordEventWake(c, start)
	} else if end := r.Now(); end > start {
		c.WaitPlain(r.proc.Name(), start, end, causal.CatRecovery)
	}
	return ok
}

// recordEventWake classifies a generic event-wait wake: if a message arrived
// at this very instant, credit a transit edge to its sender; otherwise the
// park belongs to the resilient protocol's idle/recovery machinery (the only
// user of WaitEvent).
func (r *Rank) recordEventWake(c *causal.Recorder, start des.Time) {
	end := r.Now()
	if end <= start {
		return
	}
	name := r.proc.Name()
	if r.lastMsg != nil && r.lastMsgAt == end && r.lastMsg.sentBy != "" {
		c.WaitEdge(name, start, end, causal.CatTransit, r.lastMsg.sentBy, r.lastMsg.sentAt)
		return
	}
	c.WaitPlain(name, start, end, causal.CatRecovery)
}

// Cancel retires a posted receive that has not matched yet: the request
// completes with Cancelled() true and a nil message, and its posted entry
// is withdrawn so it can never match. Cancelling a completed (or already
// cancelled) request is a no-op returning false. This is the teardown path
// a dying rank uses for its posted-but-unmatched receives.
func (r *Rank) Cancel(q *Request) bool {
	if q.done {
		return false
	}
	for i, pr := range r.posted {
		if pr.req == q {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			break
		}
	}
	q.cancelled = true
	q.complete(nil)
	return true
}

// Test reports whether the request has completed (MPI_Test).
func (r *Rank) Test(q *Request) bool { return q.done }

// TestSome appends completed requests' indices to idx and returns it.
func (r *Rank) TestSome(qs []*Request, idx []int) []int {
	for i, q := range qs {
		if q.done {
			idx = append(idx, i)
		}
	}
	return idx
}

// Probe reports whether a message matching (source, tag) has arrived but
// not been received (MPI_Iprobe).
func (r *Rank) Probe(source, tag int) bool {
	for _, m := range r.inbox {
		if (source == AnySource || source == m.Source) && (tag == AnyTag || tag == m.Tag) {
			return true
		}
	}
	return false
}
