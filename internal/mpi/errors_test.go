package mpi

import (
	"errors"
	"strings"
	"testing"

	"s3asim/internal/des"
)

// wantProto runs f and asserts it panics with a *ProtocolError for op — the
// pinning contract for every user-reachable invariant violation: a typed
// value harnesses can discriminate, never a bare string panic.
func wantProto(t *testing.T, op string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: no panic", op)
		}
		pe, ok := r.(*ProtocolError)
		if !ok {
			t.Fatalf("%s: panic value %T, want *ProtocolError", op, r)
		}
		if pe.Op != op {
			t.Fatalf("panic Op = %q, want %q", pe.Op, op)
		}
		if pe.Error() == "" || !strings.HasPrefix(pe.Error(), "mpi: ") {
			t.Fatalf("%s: malformed message %q", op, pe.Error())
		}
	}()
	f()
}

// inProc runs body inside a one-off spawned rank process and propagates any
// panic it raised to the caller's goroutine (sim.Run wraps proc panics).
func inProc(t *testing.T, w *World, rank int, body func(r *Rank)) {
	t.Helper()
	w.Spawn(rank, "t", body)
	if err := w.Sim().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolErrorNewWorldEmpty(t *testing.T) {
	wantProto(t, "NewWorld", func() { NewWorld(des.New(), 0, fastNet()) })
}

func TestProtocolErrorSpawnTwice(t *testing.T) {
	w := NewWorld(des.New(), 1, fastNet())
	w.Spawn(0, "first", func(r *Rank) {})
	wantProto(t, "Spawn", func() { w.Spawn(0, "second", func(r *Rank) {}) })
}

func TestProtocolErrorRespawnMisuse(t *testing.T) {
	w := NewWorld(des.New(), 2, fastNet())
	wantProto(t, "Respawn", func() { w.Respawn(0, "x", func(r *Rank) {}) })

	w.Spawn(0, "alive", func(r *Rank) {})
	if err := w.Sim().Run(); err != nil {
		t.Fatal(err)
	}
	// Rank 0 ran to completion but was never killed.
	wantProto(t, "Respawn", func() { w.Respawn(0, "x", func(r *Rank) {}) })
}

func TestProtocolErrorIsendOutsideWorld(t *testing.T) {
	for _, dest := range []int{-1, 3} {
		sim := des.New()
		w := NewWorld(sim, 3, fastNet())
		w.Spawn(0, "sender", func(r *Rank) {
			wantProto(t, "Isend", func() { r.Isend(dest, 0, 8, nil) })
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProtocolErrorWaitAnyEmpty(t *testing.T) {
	w := NewWorld(des.New(), 1, fastNet())
	inProc(t, w, 0, func(r *Rank) {
		wantProto(t, "WaitAny", func() { r.WaitAny(nil) })
	})
}

func TestProtocolErrorBarrier(t *testing.T) {
	w := NewWorld(des.New(), 2, fastNet())
	wantProto(t, "NewBarrier", func() { w.NewBarrier(0) })

	b := w.NewBarrier(1)
	b.Deregister()
	wantProto(t, "Barrier.Deregister", func() { b.Deregister() })
}

func TestProtocolErrorTeamMisuse(t *testing.T) {
	w := NewWorld(des.New(), 4, fastNet())
	wantProto(t, "NewTeam", func() { w.NewTeam(nil) })
	wantProto(t, "NewTeam", func() { w.NewTeam([]int{1, 1}) })

	team := w.NewTeam([]int{0, 1})
	inProc(t, w, 2, func(r *Rank) {
		wantProto(t, "Team", func() { team.Bcast(r, 0, 8, nil) })
	})
}

func TestProtocolErrorCollectiveRootOutsideTeam(t *testing.T) {
	w := NewWorld(des.New(), 4, fastNet())
	team := w.NewTeam([]int{0, 1})
	inProc(t, w, 0, func(r *Rank) {
		wantProto(t, "Bcast", func() { team.Bcast(r, 3, 8, nil) })
		wantProto(t, "Gather", func() { team.Gather(r, 3, 8, nil) })
		wantProto(t, "Reduce", func() {
			team.Reduce(r, 3, 8, 0, func(a, b float64) float64 { return a })
		})
	})
}

// TestProtocolErrorIsError pins that the typed panic value is a usable
// error: errors.As finds it through wrapping, and the rank is reported.
func TestProtocolErrorIsError(t *testing.T) {
	pe := &ProtocolError{Op: "Isend", Rank: 9, Reason: "destination outside world"}
	var got *ProtocolError
	if !errors.As(error(pe), &got) || got.Rank != 9 {
		t.Fatalf("errors.As failed on %v", pe)
	}
	if want := "mpi: Isend: destination outside world (rank 9)"; pe.Error() != want {
		t.Fatalf("Error() = %q, want %q", pe.Error(), want)
	}
}
