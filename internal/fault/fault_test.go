package fault

import (
	"reflect"
	"strings"
	"testing"

	"s3asim/internal/des"
)

func TestParseDocExamples(t *testing.T) {
	p, err := Parse("seed=42; crash@2s:rank=3,restart=5s; slow@1s:rank=2,factor=4,for=10s;" +
		"outage@3s:server=5,for=2s; degrade@0s:server=1,factor=8,for=5s;" +
		"drop:prob=0.01; delay:prob=0.05,extra=10ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d", p.Seed)
	}
	want := []Event{
		{Kind: Crash, At: 2 * des.Second, Rank: 3, Server: -1, Restart: 5 * des.Second},
		{Kind: Slow, At: des.Second, Rank: 2, Server: -1, Factor: 4, For: 10 * des.Second},
		{Kind: Outage, At: 3 * des.Second, Rank: -1, Server: 5, For: 2 * des.Second},
		{Kind: Degrade, Rank: -1, Server: 1, Factor: 8, For: 5 * des.Second},
		{Kind: Drop, Rank: -1, Server: -1, Prob: 0.01},
		{Kind: Delay, Rank: -1, Server: -1, Prob: 0.05, Extra: 10 * des.Millisecond},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("events = %+v\nwant %+v", p.Events, want)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"explode@1s:rank=2",           // unknown kind
		"crash@oops:rank=2",           // bad start time
		"crash@1s:rank",               // missing '='
		"crash@1s:rank=two",           // bad value
		"crash@1s:color=red",          // unknown key
		"seed=abc",                    // bad seed
		"crash@1s",                    // crash needs rank
		"slow@1s:rank=2",              // slow needs factor
		"slow@1s:rank=2,factor=-1",    // factor must be positive
		"outage@1s:server=0",          // outage needs for > 0
		"degrade@1s:server=0",         // degrade needs factor
		"drop:prob=1.5",               // prob out of range
		"delay:prob=0.5",              // delay needs extra
		"crash@1s:rank=2,restart=-2s", // negative duration
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		} else if !strings.HasPrefix(err.Error(), "fault: ") {
			t.Errorf("Parse(%q) error %q lacks the package prefix", spec, err)
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	p := &Plan{
		Seed: 7,
		Events: []Event{
			{Kind: Crash, At: 20 * des.Millisecond, Rank: 4, Server: -1, Restart: des.Second},
			{Kind: Slow, At: 0, Rank: 2, Server: -1, Factor: 3.5},
			{Kind: Outage, At: des.Second, Rank: -1, Server: 0, For: 250 * des.Millisecond},
			{Kind: Degrade, At: 0, Rank: -1, Server: 3, Factor: 2, For: des.Second},
			{Kind: Drop, Rank: -1, Server: -1, Prob: 0.125},
			{Kind: Delay, At: des.Millisecond, Rank: -1, Server: -1, Prob: 1, Extra: 42 * des.Microsecond},
			{Kind: Outage, At: 2 * des.Second, Rank: -1, Server: 1, For: des.Millisecond, Phase: PhaseRead},
			{Kind: Drop, Rank: -1, Server: -1, Prob: 0.5, Phase: PhaseWrite},
		},
	}
	got, err := Parse(p.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", p.String(), err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the plan:\n in %+v\nout %+v", p, got)
	}
}

func TestEmptyPlanBehavior(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.IsEmpty() || nilPlan.String() != "" {
		t.Fatal("nil plan must be empty")
	}
	if err := nilPlan.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := nilPlan.ValidateFor(4, 2, []int{0}, false); err != nil {
		t.Fatal(err)
	}
	p, err := Parse("  ;  ")
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsEmpty() {
		t.Fatal("blank spec must parse to an empty plan")
	}
}

func TestValidateForTopology(t *testing.T) {
	cases := []struct {
		spec string
		ok   bool
	}{
		{"crash@1s:rank=3", true},
		{"crash@1s:rank=8", false},        // rank out of range
		{"crash@1s:rank=0", false},        // master
		{"crash@1s:rank=4", false},        // second group's master
		{"slow@1s:rank=0,factor=2", true}, // slowing a master is legal
		{"outage@1s:server=1,for=1s", true},
		{"outage@1s:server=2,for=1s", false}, // server out of range
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		err = p.ValidateFor(8, 2, []int{0, 4}, false)
		if ok := err == nil; ok != c.ok {
			t.Errorf("ValidateFor(%q) error = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

// TestPhaseRules pins the phase= grammar: only window faults may be
// phase-scoped, the value set is closed, and phase=read events require a
// run with readback configured.
func TestPhaseRules(t *testing.T) {
	bad := []string{
		"outage@1s:server=0,for=1s,phase=compute", // unknown phase value
		"crash@1s:rank=3,phase=read",              // crash is not a window fault
		"slow@1s:rank=3,factor=2,phase=write",     // neither is slow
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid phase", spec)
		}
	}

	p, err := Parse("outage@1s:server=0,for=1s,phase=read; degrade@1s:server=1,factor=2,for=1s,phase=write")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateFor(8, 2, []int{0}, false); err == nil {
		t.Error("phase=read accepted without readback")
	}
	if err := p.ValidateFor(8, 2, []int{0}, true); err != nil {
		t.Errorf("phase=read rejected with readback: %v", err)
	}
	// phase=write alone never needs readback.
	wp, err := Parse("drop@0s:prob=0.1,phase=write")
	if err != nil {
		t.Fatal(err)
	}
	if err := wp.ValidateFor(8, 2, []int{0}, false); err != nil {
		t.Errorf("phase=write rejected without readback: %v", err)
	}
}

func TestRandomCrashesProperties(t *testing.T) {
	workers := []int{1, 2, 3, 5, 6, 7}
	lo, hi := 10*des.Millisecond, des.Second

	a := RandomCrashes(9, 4, workers, lo, hi, 0)
	b := RandomCrashes(9, 4, workers, lo, hi, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same arguments produced different schedules")
	}
	if len(a.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(a.Events))
	}
	seen := map[int]bool{}
	isWorker := map[int]bool{}
	for _, w := range workers {
		isWorker[w] = true
	}
	var prev des.Time
	for _, e := range a.Events {
		if e.Kind != Crash || e.Restart != 0 {
			t.Fatalf("unexpected event %+v", e)
		}
		if !isWorker[e.Rank] {
			t.Fatalf("crash targets non-worker rank %d", e.Rank)
		}
		if seen[e.Rank] {
			t.Fatalf("rank %d crashed twice without restart", e.Rank)
		}
		seen[e.Rank] = true
		if e.At < lo || e.At >= hi {
			t.Fatalf("crash time %v outside [%v, %v)", e.At, lo, hi)
		}
		if e.At < prev {
			t.Fatal("events not sorted by time")
		}
		prev = e.At
	}

	// Without restart the schedule is capped at one crash per worker.
	if got := RandomCrashes(9, 100, workers, lo, hi, 0); len(got.Events) != len(workers) {
		t.Fatalf("uncapped permanent crashes: %d events", len(got.Events))
	}
	// With restart, repeats are allowed and n is honored.
	if got := RandomCrashes(9, 100, workers, lo, hi, des.Second); len(got.Events) != 100 {
		t.Fatalf("restart schedule truncated: %d events", len(got.Events))
	}
	// Degenerate inputs yield an empty (but non-nil) plan.
	if got := RandomCrashes(9, 0, workers, lo, hi, 0); !got.IsEmpty() {
		t.Fatal("n=0 produced events")
	}
	if got := RandomCrashes(9, 3, nil, lo, hi, 0); !got.IsEmpty() {
		t.Fatal("no workers produced events")
	}
	if got := RandomCrashes(9, 3, workers, hi, lo, 0); !got.IsEmpty() {
		t.Fatal("inverted window produced events")
	}
}

func TestEventActiveWindow(t *testing.T) {
	e := Event{Kind: Slow, At: 10, For: 5}
	for _, c := range []struct {
		t    des.Time
		want bool
	}{{9, false}, {10, true}, {14, true}, {15, false}} {
		if got := e.active(c.t); got != c.want {
			t.Errorf("active(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	open := Event{Kind: Slow, At: 10} // For == 0: until the end of the run
	if !open.active(1 << 40) {
		t.Error("open-ended window closed")
	}
}
