package fault

import (
	"reflect"
	"testing"
)

// FuzzPlan fuzzes the chaos-spec parser: no input may panic, every accepted
// plan must satisfy its own Validate, and rendering an accepted plan back to
// spec syntax must reproduce it exactly (Parse ∘ String = identity on the
// image of Parse).
func FuzzPlan(f *testing.F) {
	f.Add("crash@2s:rank=3,restart=5s")
	f.Add("slow@1s:rank=2,factor=4,for=10s")
	f.Add("outage@3s:server=5,for=2s")
	f.Add("degrade@0s:server=1,factor=8,for=5s")
	f.Add("drop:prob=0.01;delay:prob=0.05,extra=10ms")
	f.Add("seed=42;crash@150ms:rank=1")
	f.Add("  ; ;crash@1h2m3s:rank=0 , ")
	f.Add("seed=-1;drop@9ms:prob=1,for=1ns")
	f.Add("crash@1s:rank=00003,restart=0s")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted a plan its own Validate rejects: %v", err)
		}
		if p.IsEmpty() {
			// An empty plan renders as "" regardless of seed; nothing to
			// round-trip.
			return
		}
		rendered := p.String()
		q, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", rendered, spec, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip changed the plan:\nspec %q\n in %+v\nout %+v", spec, p, q)
		}
	})
}
