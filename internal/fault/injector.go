package fault

import (
	"fmt"
	"math/rand"

	"s3asim/internal/des"
	"s3asim/internal/obs"
	"s3asim/internal/stats"
)

// faultProc is the timeline-process label fault events are emitted under.
const faultProc = "faults"

// Injector executes a Plan against one simulation. It is created once per
// run, armed before the first process spawns, and consulted by:
//
//   - the engine's workers at protocol checkpoints (ShouldDie/Effect) — a
//     crash takes effect only at a checkpoint, giving fail-stop semantics at
//     protocol boundaries (never inside a barrier or a collective round);
//   - the engine's masters in their failure-detector sweep (DeadAt), which
//     models an out-of-band detector with the sweep period as its latency;
//   - the mpi layer per message (MessageFate) and the pvfs layer per server
//     request (ServiceFactor) — both deterministic because the DES kernel
//     serializes every consultation.
//
// All methods must be called from kernel or process context of the owning
// simulation (single-threaded, like everything else under the DES kernel).
type Injector struct {
	sim     *des.Simulation
	plan    *Plan
	rng     *rand.Rand
	metrics *obs.Registry
	sink    obs.Sink

	droppable func(tag int) bool // which tags the Drop events may lose
	appTag    func(tag int) bool // which tags Delay events may touch

	killable   map[int]Event    // rank -> armed crash, not yet effected
	deadAt     map[int]des.Time // rank -> when its crash took effect
	down       map[int]bool     // rank is currently dead (cleared on revive)
	restarting map[int]bool     // rank has a respawn scheduled

	slow    []Event // Slow events, plan order
	degrade []Event // Degrade events, plan order
	drops   []Event // Drop events, plan order
	delays  []Event // Delay events, plan order
}

// subRand derives the injector's deterministic substream from the plan seed.
func subRand(seed int64) *rand.Rand { return stats.SubRand(seed, int64(Drop)) }

// NewInjector binds a plan to a simulation. metrics and sink may be nil.
// A nil plan behaves as an empty one.
func NewInjector(sim *des.Simulation, plan *Plan, metrics *obs.Registry, sink obs.Sink) *Injector {
	if plan == nil {
		plan = &Plan{}
	}
	in := &Injector{
		sim:        sim,
		plan:       plan,
		rng:        subRand(plan.Seed),
		metrics:    metrics,
		sink:       sink,
		killable:   make(map[int]Event),
		deadAt:     make(map[int]des.Time),
		down:       make(map[int]bool),
		restarting: make(map[int]bool),
	}
	for _, e := range plan.Events {
		switch e.Kind {
		case Slow:
			in.slow = append(in.slow, e)
		case Degrade:
			in.degrade = append(in.degrade, e)
		case Drop:
			in.drops = append(in.drops, e)
		case Delay:
			in.delays = append(in.delays, e)
		}
	}
	return in
}

// SetTagPolicy installs the engine's message-plane policy: droppable
// reports whether a tag belongs to the retry-protected request/response
// plane (the only messages Drop events may lose); delayable bounds Delay
// events (typically all application tags). Unset policies disable the
// corresponding events.
func (in *Injector) SetTagPolicy(droppable, delayable func(tag int) bool) {
	in.droppable = droppable
	in.appTag = delayable
}

// Arm schedules every crash event. wake is called (in kernel context) with
// the target rank at the crash instant so a blocked-idle rank re-checks its
// checkpoint immediately; the crash takes effect at the target's next
// checkpoint (ShouldDie/Effect). Crash events firing while their target is
// already down are discarded.
func (in *Injector) Arm(wake func(rank int)) {
	for _, e := range in.plan.Events {
		if e.Kind != Crash {
			continue
		}
		e := e
		in.sim.At(e.At, func() {
			if in.down[e.Rank] {
				in.count("fault.crashes_discarded", 1)
				return
			}
			in.killable[e.Rank] = e
			in.point(fmt.Sprintf("crash-armed rank=%d", e.Rank))
			if wake != nil {
				wake(e.Rank)
			}
		})
	}
}

// Outages returns the plan's server-outage events for the engine to
// schedule against the file system.
func (in *Injector) Outages() []Event {
	var out []Event
	for _, e := range in.plan.Events {
		if e.Kind == Outage {
			out = append(out, e)
		}
	}
	return out
}

// ShouldDie reports whether rank has an armed crash pending. Workers call
// this at every protocol checkpoint.
func (in *Injector) ShouldDie(rank int) bool {
	_, ok := in.killable[rank]
	return ok && !in.down[rank]
}

// Effect consumes rank's armed crash: the rank is now dead, as of the
// current virtual time. It returns the respawn delay (0 = no restart). The
// caller (the dying worker's checkpoint) must unwind the rank's process and,
// if restart > 0, schedule the respawn.
func (in *Injector) Effect(rank int) (restart des.Time) {
	e, ok := in.killable[rank]
	if !ok {
		return 0
	}
	delete(in.killable, rank)
	in.deadAt[rank] = in.sim.Now()
	in.down[rank] = true
	if e.Restart > 0 {
		in.restarting[rank] = true
	}
	in.count("fault.crashes", 1)
	in.point(fmt.Sprintf("crash rank=%d", rank))
	return e.Restart
}

// DeadAt reports when rank's crash took effect, if it is currently dead.
// This is the failure detector's oracle: the master's periodic sweep calls
// it, so detection latency is bounded by the sweep period.
func (in *Injector) DeadAt(rank int) (des.Time, bool) {
	t, ok := in.deadAt[rank]
	return t, ok
}

// Revive marks rank alive again (respawn completed). Stale armed crashes
// from the downtime are discarded.
func (in *Injector) Revive(rank int) {
	delete(in.deadAt, rank)
	delete(in.down, rank)
	delete(in.restarting, rank)
	if _, ok := in.killable[rank]; ok {
		delete(in.killable, rank)
		in.count("fault.crashes_discarded", 1)
	}
	in.count("fault.restarts", 1)
	in.point(fmt.Sprintf("restart rank=%d", rank))
}

// RestartPending reports whether any currently-dead rank has a respawn
// scheduled — the master uses this to distinguish "wait for the fleet to
// recover" from "no worker will ever come back".
func (in *Injector) RestartPending() bool { return len(in.restarting) > 0 }

// ComputeFactor returns the product of rank's active straggler factors at
// the current virtual time (1 when none).
func (in *Injector) ComputeFactor(rank int) float64 {
	f := 1.0
	now := in.sim.Now()
	for _, e := range in.slow {
		if e.Rank == rank && e.active(now) {
			f *= e.Factor
		}
	}
	return f
}

// ServiceFactor returns the product of the server's active degradation
// factors at the current virtual time (1 when none). It satisfies the pvfs
// layer's ServerFaults interface.
func (in *Injector) ServiceFactor(server int) float64 {
	f := 1.0
	now := in.sim.Now()
	for _, e := range in.degrade {
		if e.Server == server && e.active(now) {
			f *= e.Factor
		}
	}
	return f
}

// MessageFate decides what happens to one message: lost entirely (drop) or
// delivered with extra latency. It satisfies the mpi layer's FaultModel
// interface and is called once per send in deterministic DES order, so the
// RNG stream — and therefore every fate — replays identically.
func (in *Injector) MessageFate(src, dst, tag int, bytes int64) (drop bool, extra des.Time) {
	now := in.sim.Now()
	if in.droppable != nil {
		for _, e := range in.drops {
			if e.Prob > 0 && e.active(now) && in.droppable(tag) {
				if in.rng.Float64() < e.Prob {
					drop = true
				}
			}
		}
	}
	if in.appTag != nil {
		for _, e := range in.delays {
			if e.Prob > 0 && e.active(now) && in.appTag(tag) {
				if in.rng.Float64() < e.Prob {
					extra += e.Extra
				}
			}
		}
	}
	if drop {
		in.count("fault.msgs_dropped", 1)
	}
	if extra > 0 {
		in.count("fault.msgs_delayed", 1)
	}
	return drop, extra
}

// count adds to a fault counter if a registry is attached.
func (in *Injector) count(name string, delta int64) {
	if in.metrics != nil {
		in.metrics.Add(name, delta)
	}
}

// point emits an instantaneous timeline marker if a sink is attached.
func (in *Injector) point(name string) {
	if in.sink != nil {
		in.sink.Point(faultProc, name, in.sim.Now())
	}
}
