// Package fault is the deterministic fault-injection layer: a Plan of
// scheduled or stochastic events (worker crashes with optional restart,
// straggler slowdowns, PVFS server outages and degradation windows, message
// drops and extra delays) driven entirely by the simulation clock and a
// seeded RNG, so a given (plan, seed, workload) always produces the same
// failure schedule — and therefore the same simulated run, bit for bit.
//
// The package knows nothing about the engine's protocol. The engine arms an
// Injector against a des.Simulation; the mpi and pvfs layers consult it
// through small local interfaces (message fate, per-server service factor),
// and the core protocol consults it at its checkpoints (ShouldDie/Effect)
// and in the master's failure-detector sweep (DeadAt).
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"s3asim/internal/des"
)

// Kind discriminates fault events.
type Kind int

const (
	// Crash kills a worker rank at virtual time At (taking effect at the
	// rank's next protocol checkpoint); Restart > 0 respawns it that much
	// later.
	Crash Kind = iota
	// Slow multiplies a rank's compute/format time by Factor during
	// [At, At+For) (For == 0: until the end of the run) — a straggler.
	Slow
	// Outage takes one PVFS server offline for [At, At+For): the server's
	// queue is occupied for the window and in-flight plus arriving requests
	// wait it out.
	Outage
	// Degrade multiplies one PVFS server's request service time by Factor
	// during [At, At+For) (For == 0: until the end of the run).
	Degrade
	// Drop loses each eligible message with probability Prob during
	// [At, At+For) (For == 0: until the end of the run). Only the engine's
	// retry-protected request/response tags are eligible; see mpi.FaultModel.
	Drop
	// Delay adds Extra wire latency to each message with probability Prob
	// during its window.
	Delay
	numKinds
)

var kindNames = [numKinds]string{"crash", "slow", "outage", "degrade", "drop", "delay"}

// String returns the spec keyword for the kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Phase values an Event may declare as its target I/O phase.
const (
	// PhaseAny (the empty string) is the default: the event applies to
	// whatever its time window overlaps.
	PhaseAny = ""
	// PhaseWrite declares the event aims at the result-write path.
	PhaseWrite = "write"
	// PhaseRead declares the event aims at the verified read path
	// (readback); plans carrying such events are rejected by ValidateFor
	// unless the run actually has readback configured.
	PhaseRead = "read"
)

// Event is one fault in a Plan. Unused fields are zero (Rank and Server are
// -1 when not targeted).
type Event struct {
	Kind    Kind
	At      des.Time // start of the event (or window)
	For     des.Time // window length; 0 means "until the end of the run"
	Rank    int      // Crash/Slow target (MPI rank), else -1
	Server  int      // Outage/Degrade target (PVFS server index), else -1
	Restart des.Time // Crash: respawn delay; 0 = the rank stays down
	Factor  float64  // Slow/Degrade service-time multiplier (> 0)
	Prob    float64  // Drop/Delay per-message probability in [0, 1]
	Extra   des.Time // Delay: added latency per affected message

	// Phase declares which I/O phase the event targets: PhaseAny (""),
	// PhaseWrite, or PhaseRead — spec key "phase=". The injector applies
	// the event by its time window either way (servers and wires do not
	// know phases); the declaration is checked by ValidateFor, which
	// rejects read-phase events on runs with no readback — a plan cannot
	// claim to exercise a read path that does not exist. Only the window
	// kinds (Outage, Degrade, Drop, Delay) may be phase-scoped.
	Phase string
}

// active reports whether the event's window contains t.
func (e Event) active(t des.Time) bool {
	if t < e.At {
		return false
	}
	return e.For == 0 || t < e.At+e.For
}

// String renders the event in spec syntax (parseable by Parse).
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	if e.At > 0 || e.Kind == Crash || e.Kind == Slow || e.Kind == Outage || e.Kind == Degrade {
		fmt.Fprintf(&b, "@%s", durStr(e.At))
	}
	var kv []string
	add := func(k, v string) { kv = append(kv, k+"="+v) }
	if e.Rank >= 0 {
		add("rank", strconv.Itoa(e.Rank))
	}
	if e.Server >= 0 {
		add("server", strconv.Itoa(e.Server))
	}
	if e.Factor != 0 {
		add("factor", strconv.FormatFloat(e.Factor, 'g', -1, 64))
	}
	if e.Prob != 0 {
		add("prob", strconv.FormatFloat(e.Prob, 'g', -1, 64))
	}
	if e.For != 0 {
		add("for", durStr(e.For))
	}
	if e.Restart != 0 {
		add("restart", durStr(e.Restart))
	}
	if e.Extra != 0 {
		add("extra", durStr(e.Extra))
	}
	if e.Phase != PhaseAny {
		add("phase", e.Phase)
	}
	if len(kv) > 0 {
		b.WriteString(":")
		b.WriteString(strings.Join(kv, ","))
	}
	return b.String()
}

func durStr(t des.Time) string { return time.Duration(t).String() }

// Plan is a complete failure schedule: a list of events plus the seed for
// the stochastic ones (message fate). The zero Plan (and a nil *Plan) is
// empty: injecting it changes nothing.
type Plan struct {
	Seed   int64
	Events []Event
}

// IsEmpty reports whether the plan injects no faults at all.
func (p *Plan) IsEmpty() bool { return p == nil || len(p.Events) == 0 }

// NeedsResilience reports whether the plan contains events the original
// protocol cannot absorb: crashes and message drops require the recovery
// protocol's leases and re-dispatch, and slow (compute-straggler) factors
// are only consulted by the resilient workers. Pure performance faults —
// server degradation, server outages, message delays — merely stretch time
// and are survivable by any protocol.
func (p *Plan) NeedsResilience() bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		switch e.Kind {
		case Degrade, Outage, Delay:
		default:
			return true
		}
	}
	return false
}

// String renders the plan in spec syntax; Parse(p.String()) reproduces it.
func (p *Plan) String() string {
	if p.IsEmpty() {
		return ""
	}
	parts := make([]string, 0, len(p.Events)+1)
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	}
	for _, e := range p.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ";")
}

// Parse decodes a chaos spec string into a Plan. The grammar is a
// semicolon-separated list of events
//
//	kind[@start][:key=value,...]
//
// with kinds crash, slow, outage, degrade, drop, delay, plus the special
// item seed=N. Durations use Go syntax ("2s", "150ms"). Examples:
//
//	crash@2s:rank=3,restart=5s
//	slow@1s:rank=2,factor=4,for=10s
//	outage@3s:server=5,for=2s
//	degrade@0s:server=1,factor=8,for=5s
//	drop:prob=0.01;delay:prob=0.05,extra=10ms
//
// Parse validates structure (Plan.Validate); topology bounds (rank/server
// ranges) are checked by the engine, which knows them.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(item, "seed="); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", rest)
			}
			p.Seed = n
			continue
		}
		ev, err := parseEvent(item)
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, ev)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseEvent(item string) (Event, error) {
	ev := Event{Rank: -1, Server: -1}
	head, args, hasArgs := strings.Cut(item, ":")
	name, at, hasAt := strings.Cut(head, "@")
	name = strings.TrimSpace(name)
	kind := -1
	for k, kn := range kindNames {
		if name == kn {
			kind = k
			break
		}
	}
	if kind < 0 {
		return ev, fmt.Errorf("fault: unknown event kind %q", name)
	}
	ev.Kind = Kind(kind)
	if hasAt {
		t, err := parseDur(at)
		if err != nil {
			return ev, fmt.Errorf("fault: bad start time in %q: %v", item, err)
		}
		ev.At = t
	}
	if hasArgs {
		for _, kv := range strings.Split(args, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return ev, fmt.Errorf("fault: expected key=value, got %q", kv)
			}
			key = strings.TrimSpace(key)
			val = strings.TrimSpace(val)
			var err error
			switch key {
			case "rank":
				ev.Rank, err = strconv.Atoi(val)
			case "server":
				ev.Server, err = strconv.Atoi(val)
			case "factor":
				ev.Factor, err = strconv.ParseFloat(val, 64)
			case "prob":
				ev.Prob, err = strconv.ParseFloat(val, 64)
			case "for":
				ev.For, err = parseDur(val)
			case "restart":
				ev.Restart, err = parseDur(val)
			case "extra":
				ev.Extra, err = parseDur(val)
			case "phase":
				ev.Phase = val
			default:
				return ev, fmt.Errorf("fault: unknown key %q in %q", key, item)
			}
			if err != nil {
				return ev, fmt.Errorf("fault: bad value for %s in %q: %v", key, item, err)
			}
		}
	}
	return ev, nil
}

func parseDur(s string) (des.Time, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	return des.Time(d), nil
}

// Validate checks structural consistency: required targets present, factors
// positive, probabilities in range, times non-negative. Topology bounds are
// checked separately by ValidateFor.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		prefix := fmt.Sprintf("fault: event %d (%s)", i, e.Kind)
		if e.Kind < 0 || e.Kind >= numKinds {
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
		}
		if e.At < 0 || e.For < 0 || e.Restart < 0 || e.Extra < 0 {
			return fmt.Errorf("%s: negative duration", prefix)
		}
		switch e.Phase {
		case PhaseAny, PhaseWrite, PhaseRead:
		default:
			return fmt.Errorf("%s: unknown phase %q (want %q or %q)",
				prefix, e.Phase, PhaseWrite, PhaseRead)
		}
		if e.Phase != PhaseAny && (e.Kind == Crash || e.Kind == Slow) {
			return fmt.Errorf("%s: phase= applies only to window faults (outage, degrade, drop, delay)", prefix)
		}
		switch e.Kind {
		case Crash:
			if e.Rank < 0 {
				return fmt.Errorf("%s: needs rank=", prefix)
			}
		case Slow:
			if e.Rank < 0 {
				return fmt.Errorf("%s: needs rank=", prefix)
			}
			if e.Factor <= 0 {
				return fmt.Errorf("%s: needs factor > 0", prefix)
			}
		case Outage:
			if e.Server < 0 {
				return fmt.Errorf("%s: needs server=", prefix)
			}
			if e.For <= 0 {
				return fmt.Errorf("%s: needs for > 0", prefix)
			}
		case Degrade:
			if e.Server < 0 {
				return fmt.Errorf("%s: needs server=", prefix)
			}
			if e.Factor <= 0 {
				return fmt.Errorf("%s: needs factor > 0", prefix)
			}
		case Drop, Delay:
			if e.Prob < 0 || e.Prob > 1 {
				return fmt.Errorf("%s: prob must be in [0,1]", prefix)
			}
			if e.Kind == Delay && e.Extra <= 0 {
				return fmt.Errorf("%s: needs extra > 0", prefix)
			}
		}
	}
	return nil
}

// ValidateFor checks the plan against a concrete run: ranks in [0, procs),
// servers in [0, servers), no crash/slow targeting a master rank (the
// engine's recovery protocol assumes masters survive), and no event
// declaring phase=read unless the run has a readback (verified read path)
// configured — a plan cannot target an I/O phase that will never execute.
func (p *Plan) ValidateFor(procs, servers int, masters []int, readback bool) error {
	if p.IsEmpty() {
		return nil
	}
	isMaster := make(map[int]bool, len(masters))
	for _, m := range masters {
		isMaster[m] = true
	}
	for i, e := range p.Events {
		if e.Phase == PhaseRead && !readback {
			return fmt.Errorf("fault: event %d (%s): phase=read but the run has no readback configured", i, e.Kind)
		}
		switch e.Kind {
		case Crash, Slow:
			if e.Rank >= procs {
				return fmt.Errorf("fault: event %d: rank %d out of range (procs=%d)", i, e.Rank, procs)
			}
			if e.Kind == Crash && isMaster[e.Rank] {
				return fmt.Errorf("fault: event %d: cannot crash master rank %d", i, e.Rank)
			}
		case Outage, Degrade:
			if e.Server >= servers {
				return fmt.Errorf("fault: event %d: server %d out of range (servers=%d)", i, e.Server, servers)
			}
		}
	}
	return nil
}

// RandomCrashes builds a plan of n worker crashes at deterministic
// pseudo-random times uniform over [lo, hi), derived from seed. With
// restart == 0 the targets are distinct ranks (a rank can only die once
// without restarting), capping n at len(workers); with restart > 0 targets
// may repeat. Events are sorted by time for readability; the schedule is a
// pure function of the arguments.
func RandomCrashes(seed int64, n int, workers []int, lo, hi des.Time, restart des.Time) *Plan {
	if hi <= lo || n <= 0 || len(workers) == 0 {
		return &Plan{Seed: seed}
	}
	rng := subRand(seed)
	pool := append([]int(nil), workers...)
	if restart == 0 {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		if n > len(pool) {
			n = len(pool)
		}
	}
	p := &Plan{Seed: seed}
	for i := 0; i < n; i++ {
		rank := pool[i%len(pool)]
		if restart != 0 {
			rank = pool[rng.Intn(len(pool))]
		}
		at := lo + des.Time(rng.Int63n(int64(hi-lo)))
		p.Events = append(p.Events, Event{
			Kind: Crash, At: at, Rank: rank, Server: -1, Restart: restart,
		})
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}
