package pvfs

import (
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/obs"
)

func TestResetRequestTrace(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	fs.EnableRequestTrace()
	port := freePort(sim)
	sim.Spawn("c", func(p *des.Proc) {
		f := fs.Create(p, "x")
		f.Write(p, port, 0, 250, make([]byte, 250))
		p.Sleep(des.Second)
		fs.ResetRequestTrace() // new measurement window
		f.Write(p, port, 1000, 50, make([]byte, 50))
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	trace := fs.RequestTrace()
	if len(trace) != 1 {
		t.Fatalf("post-reset trace = %d records, want 1", len(trace))
	}
	if trace[0].Bytes != 50 {
		t.Fatalf("post-reset record = %+v, want the second write", trace[0])
	}
}

func TestMetricsRecordedPerRequest(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	reg := obs.NewRegistry()
	fs.SetMetrics(reg)
	port := freePort(sim)
	sim.Spawn("c", func(p *des.Proc) {
		f := fs.Create(p, "x")
		f.Write(p, port, 0, 250, make([]byte, 250)) // strips of 100 B: servers 0,1,2
		f.Read(p, port, 0, 100)
		f.Sync(p, port)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	servers := int64(testConfig().NumServers)
	if got, want := s.Counters["pvfs.requests"], int64(3+1)+servers; got != want {
		t.Fatalf("pvfs.requests = %d, want %d", got, want)
	}
	if s.Counters["pvfs.bytes_written"] != 250 {
		t.Fatalf("bytes_written = %d", s.Counters["pvfs.bytes_written"])
	}
	if s.Counters["pvfs.bytes_read"] != 100 {
		t.Fatalf("bytes_read = %d", s.Counters["pvfs.bytes_read"])
	}
	if s.Counters["pvfs.syncs"] != servers {
		t.Fatalf("syncs = %d, want one per server", s.Counters["pvfs.syncs"])
	}
	qw := s.Hists["pvfs.queue_wait"]
	if qw.Count != 4+servers || qw.Min < 0 {
		t.Fatalf("queue_wait hist = %+v", qw)
	}
	svc := s.Hists["pvfs.service"]
	if svc.Count != 4+servers || svc.Min <= 0 {
		t.Fatalf("service hist = %+v", svc)
	}
	// request_bytes excludes syncs (no payload).
	if rb := s.Hists["pvfs.request_bytes"]; rb.Count != 4 {
		t.Fatalf("request_bytes hist = %+v", rb)
	}
}

func TestMetricsOffByDefault(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	port := freePort(sim)
	sim.Spawn("c", func(p *des.Proc) {
		f := fs.Create(p, "x")
		f.Write(p, port, 0, 100, make([]byte, 100))
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err) // a nil registry must not panic the request path
	}
}
