package pvfs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"s3asim/internal/des"
)

func testConfig() Config {
	return Config{
		NumServers:       4,
		StripSize:        100,
		RequestOverhead:  des.Millisecond,
		SegmentOverhead:  100 * des.Microsecond,
		ServiceBandwidth: 1e6, // 1 byte/µs
		SyncBase:         des.Millisecond,
		SyncBandwidth:    1e6,
		MetaOverhead:     des.Millisecond,
		CaptureData:      true,
	}
}

// freePort returns a Port whose NICs never contend (for cost-math tests).
func freePort(sim *des.Simulation) *Port {
	return &Port{
		Send: sim.NewResource("client.send", 1),
		Recv: sim.NewResource("client.recv", 1),
		// Bandwidth 0 means infinite in des.BytesOver.
	}
}

func TestExtentMapWriteReadBack(t *testing.T) {
	m := extentMap{capture: true}
	m.write(10, 5, []byte("hello"))
	m.write(20, 3, []byte("abc"))
	got := m.read(8, 20)
	want := append([]byte{0, 0}, []byte("hello")...)
	want = append(want, 0, 0, 0, 0, 0)
	want = append(want, []byte("abc")...)
	want = append(want, make([]byte, 20-len(want))...)
	if !bytes.Equal(got, want) {
		t.Fatalf("read = %q, want %q", got, want)
	}
	if m.coverage() != 8 {
		t.Fatalf("coverage = %d, want 8", m.coverage())
	}
	if m.overlapped != 0 {
		t.Fatalf("overlapped = %d, want 0", m.overlapped)
	}
}

func TestExtentMapOverwriteSplits(t *testing.T) {
	m := extentMap{capture: true}
	m.write(0, 10, []byte("aaaaaaaaaa"))
	m.write(3, 4, []byte("bbbb"))
	got := m.read(0, 10)
	if string(got) != "aaabbbbaaa" {
		t.Fatalf("read = %q", got)
	}
	if m.overlapped != 4 {
		t.Fatalf("overlapped = %d, want 4", m.overlapped)
	}
	if m.coverage() != 10 {
		t.Fatalf("coverage = %d, want 10", m.coverage())
	}
}

func TestExtentMapCovers(t *testing.T) {
	m := extentMap{}
	m.write(0, 5, nil)
	m.write(7, 5, nil)
	if m.covers(12) {
		t.Fatal("covers should be false with a gap at [5,7)")
	}
	m.write(5, 2, nil)
	if !m.covers(12) {
		t.Fatal("covers should be true once the gap is filled")
	}
	if m.covers(13) {
		t.Fatal("covers(13) should be false")
	}
}

// Property: extentMap matches a flat reference model under random writes.
func TestPropertyExtentMapMatchesReference(t *testing.T) {
	type op struct {
		Off  uint8
		Len  uint8
		Fill byte
	}
	f := func(ops []op) bool {
		const size = 600
		ref := make([]byte, size)
		written := make([]bool, size)
		m := extentMap{capture: true}
		for _, o := range ops {
			off := int64(o.Off) * 2
			n := int64(o.Len%40) + 1
			if off+n > size {
				n = size - off
			}
			if n <= 0 {
				continue
			}
			data := bytes.Repeat([]byte{o.Fill}, int(n))
			m.write(off, n, data)
			copy(ref[off:off+n], data)
			for i := off; i < off+n; i++ {
				written[i] = true
			}
		}
		got := m.read(0, size)
		if !bytes.Equal(got, ref) {
			return false
		}
		var cov int64
		for _, w := range written {
			if w {
				cov++
			}
		}
		return m.coverage() == cov
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitByServerStriping(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	var f *File
	sim.Spawn("setup", func(p *des.Proc) { f = fs.Create(p, "out") })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Segment [150, 420): strips 1 (150-199), 2 (200-299), 3 (300-399), 0' (400-419).
	pieces := f.splitByServer([]Segment{{Offset: 150, Length: 270}})
	wantServers := []int{1, 2, 3, 0}
	wantLens := []int64{50, 100, 100, 20}
	if len(pieces) != 4 {
		t.Fatalf("pieces = %d, want 4", len(pieces))
	}
	for i, pc := range pieces {
		if pc.server != wantServers[i] || pc.seg.Length != wantLens[i] {
			t.Fatalf("piece %d = server %d len %d, want server %d len %d",
				i, pc.server, pc.seg.Length, wantServers[i], wantLens[i])
		}
	}
}

func TestSplitByServerCarriesData(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	var f *File
	sim.Spawn("setup", func(p *des.Proc) { f = fs.Create(p, "out") })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 250)
	for i := range data {
		data[i] = byte(i)
	}
	pieces := f.splitByServer([]Segment{{Offset: 50, Length: 250, Data: data}})
	var rejoined []byte
	for _, pc := range pieces {
		rejoined = append(rejoined, pc.seg.Data...)
	}
	if !bytes.Equal(rejoined, data) {
		t.Fatal("piece data does not rejoin to original")
	}
}

func TestGroupRequestsBatchesPerServer(t *testing.T) {
	pieces := []serverPiece{
		{server: 0, seg: Segment{Offset: 0, Length: 10}},
		{server: 1, seg: Segment{Offset: 100, Length: 10}},
		{server: 0, seg: Segment{Offset: 400, Length: 20}},
	}
	reqs := groupRequests(pieces, opWrite, false)
	if len(reqs) != 2 {
		t.Fatalf("requests = %d, want 2 (one per server)", len(reqs))
	}
	if reqs[0].server != 0 || reqs[0].nsegs != 2 || reqs[0].bytes != 30 {
		t.Fatalf("server-0 request = %+v", reqs[0])
	}
	if reqs[1].server != 1 || reqs[1].nsegs != 1 || reqs[1].bytes != 10 {
		t.Fatalf("server-1 request = %+v", reqs[1])
	}
	contig := groupRequests(pieces, opWrite, true)
	if contig[0].nsegs != 1 {
		t.Fatalf("contiguous request nsegs = %d, want 1", contig[0].nsegs)
	}
}

func TestWriteCostModel(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	port := freePort(sim)
	var doneAt des.Time
	sim.Spawn("client", func(p *des.Proc) {
		f := fs.Create(p, "out")
		start := p.Now() // create costs one metadata op
		f.Write(p, port, 0, 100, make([]byte, 100))
		doneAt = p.Now() - start
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 server request: 1 ms overhead + 0.1 ms segment + 100 µs bytes,
	// then a 2 µs ack.
	want := des.Millisecond + 100*des.Microsecond + 100*des.Microsecond + ackCost
	if doneAt != want {
		t.Fatalf("write took %v, want %v", doneAt, want)
	}
}

func TestWriteListParallelAcrossServers(t *testing.T) {
	segs := []Segment{
		{Offset: 0, Length: 100},   // server 0
		{Offset: 100, Length: 100}, // server 1
		{Offset: 200, Length: 100}, // server 2
		{Offset: 300, Length: 100}, // server 3
	}
	run := func(list bool) des.Time {
		sim := des.New()
		cfg := testConfig()
		cfg.CaptureData = false
		fs := New(sim, cfg)
		port := freePort(sim)
		var took des.Time
		sim.Spawn("client", func(p *des.Proc) {
			f := fs.Create(p, "out")
			start := p.Now()
			if list {
				f.WriteList(p, port, segs)
			} else {
				for _, s := range segs {
					f.Write(p, port, s.Offset, s.Length, nil)
				}
			}
			took = p.Now() - start
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	listT := run(true)
	posixT := run(false)
	// Service is parallel across the 4 servers; the 4 acks serialize on the
	// client recv NIC, so completion is one service time plus 4 ack costs.
	service := des.Millisecond + 100*des.Microsecond + 100*des.Microsecond
	if want := service + 4*ackCost; listT != want {
		t.Fatalf("list write took %v, want %v (parallel across 4 servers)", listT, want)
	}
	if want := 4 * (service + ackCost); posixT != want {
		t.Fatalf("sequential writes took %v, want %v", posixT, want)
	}
}

func TestWriteListBatchesSegmentsOnOneServer(t *testing.T) {
	sim := des.New()
	cfg := testConfig()
	fs := New(sim, cfg)
	port := freePort(sim)
	var took des.Time
	sim.Spawn("client", func(p *des.Proc) {
		f := fs.Create(p, "out")
		start := p.Now()
		// Two segments, both on server 0 (strips 0 and 4).
		f.WriteList(p, port, []Segment{
			{Offset: 0, Length: 50, Data: make([]byte, 50)},
			{Offset: 400, Length: 50, Data: make([]byte, 50)},
		})
		took = p.Now() - start
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// One request: 1 ms + 2 segments · 0.1 ms + 100 µs bytes + ack.
	want := des.Millisecond + 200*des.Microsecond + 100*des.Microsecond + ackCost
	if took != want {
		t.Fatalf("batched list write took %v, want %v", took, want)
	}
	if fs.Stats().TotalRequests != 1 || fs.Stats().TotalSegments != 2 {
		t.Fatalf("stats = %+v, want 1 request with 2 segments", fs.Stats())
	}
}

func TestSyncFlushesDirtyOnce(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	port := freePort(sim)
	var first, second des.Time
	sim.Spawn("client", func(p *des.Proc) {
		f := fs.Create(p, "out")
		f.Write(p, port, 0, 100, make([]byte, 100)) // server 0 dirty: 100 B
		start := p.Now()
		f.Sync(p, port)
		first = p.Now() - start
		start = p.Now()
		f.Sync(p, port)
		second = p.Now() - start
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// First sync: server 0 pays 1 ms + 100 µs, others 1 ms; parallel + ack.
	want1 := des.Millisecond + 100*des.Microsecond + ackCost
	if first != want1 {
		t.Fatalf("first sync took %v, want %v", first, want1)
	}
	// All four servers finish at 1 ms; their acks serialize on the recv NIC.
	want2 := des.Millisecond + 4*ackCost
	if second != want2 {
		t.Fatalf("second sync took %v, want %v (dirty already flushed)", second, want2)
	}
}

func TestConcurrentClientsSerializeAtServer(t *testing.T) {
	sim := des.New()
	cfg := testConfig()
	cfg.CaptureData = false
	fs := New(sim, cfg)
	var f *File
	sim.Spawn("setup", func(p *des.Proc) { f = fs.Create(p, "out") })
	var ends []des.Time
	for i := 0; i < 2; i++ {
		i := i
		port := freePort(sim)
		sim.Spawn("client", func(p *des.Proc) {
			p.Sleep(2 * des.Millisecond) // after setup
			start := p.Now()
			// Both write to server 0 strips (offsets 0 and 400).
			f.Write(p, port, int64(i)*400, 100, nil)
			ends = append(ends, p.Now()-start)
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	perReq := des.Millisecond + 200*des.Microsecond
	if ends[0] != perReq+ackCost {
		t.Fatalf("first client took %v, want %v", ends[0], perReq+ackCost)
	}
	if ends[1] != 2*perReq+ackCost {
		t.Fatalf("second client took %v, want %v (queued behind first)", ends[1], 2*perReq+ackCost)
	}
}

func TestFileImageAcrossClients(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	var f *File
	sim.Spawn("setup", func(p *des.Proc) { f = fs.Create(p, "out") })
	// Four clients each write a distinct quarter of a 1000-byte file.
	for i := 0; i < 4; i++ {
		i := i
		port := freePort(sim)
		sim.Spawn("client", func(p *des.Proc) {
			p.Sleep(2 * des.Millisecond)
			data := bytes.Repeat([]byte{byte('a' + i)}, 250)
			f.Write(p, port, int64(i)*250, 250, data)
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1000 || f.Coverage() != 1000 || f.OverlappedBytes() != 0 {
		t.Fatalf("size=%d coverage=%d overlap=%d", f.Size(), f.Coverage(), f.OverlappedBytes())
	}
	if !f.FullyCovers(1000) {
		t.Fatal("file should be fully covered")
	}
	img := f.ReadBack(0, 1000)
	for i := 0; i < 1000; i++ {
		if img[i] != byte('a'+i/250) {
			t.Fatalf("byte %d = %c", i, img[i])
		}
	}
}

func TestReadReturnsWrittenData(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	port := freePort(sim)
	var got []byte
	sim.Spawn("client", func(p *des.Proc) {
		f := fs.Create(p, "out")
		f.Write(p, port, 10, 5, []byte("hello"))
		got = f.Read(p, port, 8, 9)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 'h', 'e', 'l', 'l', 'o', 0, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("read = %q, want %q", got, want)
	}
}

func TestOpenAndLookup(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	sim.Spawn("client", func(p *des.Proc) {
		f := fs.Create(p, "a")
		if fs.Open(p, "a") != f {
			t.Error("Open returned a different file")
		}
		if fs.Open(p, "missing") != nil {
			t.Error("Open of missing file should be nil")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Lookup("a") == nil {
		t.Fatal("Lookup failed")
	}
}

// Property: for random non-overlapping segment sets, WriteList stores the
// same bytes as per-segment Writes, and never reports overlap.
func TestPropertyListAndContigEquivalent(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		// Build non-overlapping segments inside [0, 2000).
		var segs []Segment
		pos := int64(0)
		for i := 0; i < n && pos < 1900; i++ {
			gap := int64(rng.Intn(50))
			length := int64(rng.Intn(120)) + 1
			if pos+gap+length > 2000 {
				break
			}
			data := make([]byte, length)
			rng.Read(data)
			segs = append(segs, Segment{Offset: pos + gap, Length: length, Data: data})
			pos += gap + length
		}
		if len(segs) == 0 {
			return true
		}
		image := func(useList bool) []byte {
			sim := des.New()
			fs := New(sim, testConfig())
			port := freePort(sim)
			var img []byte
			sim.Spawn("c", func(p *des.Proc) {
				file := fs.Create(p, "out")
				if useList {
					file.WriteList(p, port, segs)
				} else {
					for _, s := range segs {
						file.Write(p, port, s.Offset, s.Length, s.Data)
					}
				}
				if file.OverlappedBytes() != 0 {
					t.Error("unexpected overlap")
				}
				img = file.ReadBack(0, 2000)
			})
			if err := sim.Run(); err != nil {
				t.Error(err)
			}
			return img
		}
		return bytes.Equal(image(true), image(false))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
