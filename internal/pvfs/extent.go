// Package pvfs implements a simulated PVFS2-style parallel file system:
// a configurable set of I/O servers plus a metadata server, round-robin
// striping, native support for noncontiguous list I/O, per-server FCFS
// request queues with an explicit cost model, and optional capture of real
// file bytes so tests can verify that different I/O strategies produce
// identical file images.
//
// As on real PVFS2 (paper §3.1), there is no locking and no atomicity for
// overlapping writes — writers are expected not to overlap, and the file
// tracks overlapping bytes so invariant tests can assert none occurred.
package pvfs

import "sort"

// Segment is one contiguous piece of file data: a file offset, a length,
// and optionally the real bytes (when data capture is enabled).
type Segment struct {
	Offset int64
	Length int64
	Data   []byte // nil unless capturing; if non-nil, len(Data) == Length
}

// extent is a stored, non-overlapping run of the file.
type extent struct {
	off  int64
	n    int64
	data []byte // nil when not capturing
}

func (e extent) end() int64 { return e.off + e.n }

// extentMap maintains sorted, non-overlapping extents with overwrite
// semantics and counts bytes that were ever written more than once.
type extentMap struct {
	exts        []extent
	overlapped  int64 // total bytes written over already-written bytes
	capture     bool
	writes      int64
	bytesStored int64 // current coverage
}

// write records [off, off+n) with optional data, replacing any overlap.
//
// The extents intersecting the write form one contiguous run exts[i:j], and
// because stored extents are sorted and non-overlapping, at most the first
// can leave a remnant on the left and at most the last a remnant on the
// right. The run is therefore replaced by at most three already-ordered
// entries, spliced in place — the slice is never reallocated (beyond
// amortized append growth), which keeps a W-write file at O(W) total
// allocation instead of the O(W²) bytes a copy-per-write rebuild costs.
func (m *extentMap) write(off, n int64, data []byte) {
	if n <= 0 {
		return
	}
	if m.capture && data != nil && int64(len(data)) != n {
		panic("pvfs: data length mismatch")
	}
	m.writes++
	end := off + n

	// Find the run of extents intersecting [off, end).
	i := sort.Search(len(m.exts), func(i int) bool { return m.exts[i].end() > off })
	j := i
	for j < len(m.exts) && m.exts[j].off < end {
		e := m.exts[j]
		ovLo, ovHi := max64(e.off, off), min64(e.end(), end)
		if ovHi > ovLo {
			m.overlapped += ovHi - ovLo
			m.bytesStored -= ovHi - ovLo
		}
		j++
	}
	m.bytesStored += n

	newExt := extent{off: off, n: n}
	if m.capture {
		newExt.data = make([]byte, n)
		if data != nil {
			copy(newExt.data, data)
		}
	}

	var left, right extent
	haveLeft, haveRight := false, false
	if j > i {
		if e := m.exts[i]; e.off < off {
			left = extent{off: e.off, n: off - e.off}
			if m.capture {
				left.data = e.data[:off-e.off]
			}
			haveLeft = true
		}
		if e := m.exts[j-1]; e.end() > end {
			right = extent{off: end, n: e.end() - end}
			if m.capture {
				right.data = e.data[end-e.off:]
			}
			haveRight = true
		}
	}

	repl := 1
	if haveLeft {
		repl++
	}
	if haveRight {
		repl++
	}

	// Splice: resize the replaced run exts[i:j] to repl slots.
	oldLen := len(m.exts)
	switch delta := repl - (j - i); {
	case delta > 0:
		var pad [2]extent
		m.exts = append(m.exts, pad[:delta]...)
		copy(m.exts[j+delta:], m.exts[j:oldLen])
	case delta < 0:
		copy(m.exts[j+delta:], m.exts[j:])
		for k := oldLen + delta; k < oldLen; k++ {
			m.exts[k] = extent{} // release captured data to the GC
		}
		m.exts = m.exts[:oldLen+delta]
	}
	if haveLeft {
		m.exts[i] = left
		i++
	}
	m.exts[i] = newExt
	if haveRight {
		m.exts[i+1] = right
	}
}

// coverage returns the number of distinct bytes ever written.
func (m *extentMap) coverage() int64 { return m.bytesStored }

// contiguousFrom reports whether [0, size) is fully covered.
func (m *extentMap) covers(size int64) bool {
	var pos int64
	for _, e := range m.exts {
		if e.off > pos {
			return false
		}
		if e.end() > pos {
			pos = e.end()
		}
		if pos >= size {
			return true
		}
	}
	return pos >= size
}

// read copies stored bytes for [off, off+n) into a fresh slice, zero-filling
// gaps. Only meaningful with capture enabled.
func (m *extentMap) read(off, n int64) []byte {
	out := make([]byte, n)
	end := off + n
	i := sort.Search(len(m.exts), func(i int) bool { return m.exts[i].end() > off })
	for ; i < len(m.exts) && m.exts[i].off < end; i++ {
		e := m.exts[i]
		lo, hi := max64(e.off, off), min64(e.end(), end)
		if hi <= lo {
			continue
		}
		if e.data != nil {
			copy(out[lo-off:hi-off], e.data[lo-e.off:hi-e.off])
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
