package pvfs

import (
	"fmt"
	"sort"

	"s3asim/internal/causal"
	"s3asim/internal/des"
)

// ackCost is the client-side cost of absorbing a server completion ack.
const ackCost = 2 * des.Microsecond

// opKind discriminates the service cost shape of a server request.
type opKind int

const (
	opWrite opKind = iota
	opRead
	opSync
)

// serverRequest is one request bound for one server's FCFS queue.
type serverRequest struct {
	server int
	kind   opKind
	segs   []Segment // pieces on this server (write/read)
	bytes  int64
	nsegs  int
}

// groupByServer coalesces pieces into one request per server, preserving
// per-server piece order.
func groupRequests(pieces []serverPiece, kind opKind, contiguous bool) []*serverRequest {
	byServer := map[int]*serverRequest{}
	var order []*serverRequest
	for _, pc := range pieces {
		r := byServer[pc.server]
		if r == nil {
			r = &serverRequest{server: pc.server, kind: kind}
			byServer[pc.server] = r
			order = append(order, r)
		}
		r.segs = append(r.segs, pc.seg)
		r.bytes += pc.seg.Length
		r.nsegs++
	}
	if contiguous {
		// A contiguous client range maps to a regular strided pattern the
		// server handles as a single access: charge one segment.
		for _, r := range order {
			r.nsegs = 1
		}
	}
	return order
}

// IssueOp runs a set of server requests concurrently on behalf of a client
// process, as a resumable operation: per request the client pays
// PerServerIssue on its CPU (serially), the data crosses the client send NIC
// and the wire, queues at the server, is serviced, and an ack returns via
// the client recv NIC.
//
// Arm it with one of the Init* constructors, then call Step until it returns
// true. On a goroutine process one Step call completes the whole operation
// (the blocking File methods are wrappers doing exactly that); an FSM
// process re-enters Step after each park. Both forms run this one code path,
// so their event schedules are identical.
type IssueOp struct {
	f    *File
	p    *des.Proc
	port *Port
	reqs []*serverRequest

	issueStart des.Time
	waitStart  des.Time
	gate       *des.Gate
	launched   bool
	noop       bool

	// For causal recording, the request whose ack landed last: the client's
	// gate wait is decomposed along that request's pipeline.
	last struct {
		ok                      bool
		at, submit, start, done des.Time
	}

	readOff, readN int64     // capture read-back range (InitRead only)
	readSegs       []Segment // capture read-back segments (InitReadList only)
}

// init arms the op over prebuilt server requests.
func (op *IssueOp) init(f *File, p *des.Proc, port *Port, reqs []*serverRequest) {
	op.f, op.p, op.port, op.reqs = f, p, port, reqs
	op.launched, op.noop = false, false
	op.last.ok = false
	op.readOff, op.readN = 0, 0
	op.readSegs = nil
	op.issueStart = f.fs.sim.Now()
	// The client marshals every request serially on its own CPU first.
	p.Sleep(f.fs.cfg.IssueOverhead + des.Time(len(reqs))*f.fs.cfg.PerServerIssue)
}

// Step drives the operation; it returns true once every server request has
// been serviced and acknowledged.
func (op *IssueOp) Step() bool {
	if op.noop {
		return true
	}
	f, p := op.f, op.p
	fs := f.fs
	sim := fs.sim
	if p.Yielded() {
		return false // still inside the marshaling sleep armed by init
	}
	if !op.launched {
		op.launched = true
		if c := fs.causal; c != nil {
			// Request marshaling is part of delivering I/O service.
			c.Busy(p.Name(), causal.CatIOService, op.issueStart, sim.Now())
		}
		op.launch()
		op.waitStart = sim.Now()
	}
	for op.gate.Pending() > 0 {
		op.gate.Park(p)
		if p.Yielded() {
			return false
		}
	}
	if c := fs.causal; c != nil && sim.Now() > op.waitStart {
		if op.last.ok {
			// The wait ended when the slowest request's ack cleared the
			// client NIC; bill its pipeline stages.
			c.WaitChain(p.Name(), op.waitStart, sim.Now(), []causal.Segment{
				{At: op.waitStart, Cat: causal.CatTransit},
				{At: op.last.submit, Cat: causal.CatIOQueue},
				{At: op.last.start, Cat: causal.CatIOService},
				{At: op.last.done, Cat: causal.CatTransit},
			})
		} else {
			c.WaitPlain(p.Name(), op.waitStart, sim.Now(), causal.CatTransit)
		}
	}
	return true
}

// launch pushes every server request into the network/storage pipeline and
// arms the completion gate. Runs once, after the marshaling sleep.
func (op *IssueOp) launch() {
	f, port := op.f, op.port
	fs := f.fs
	cfg := fs.cfg
	sim := fs.sim
	gate := sim.NewGate(len(op.reqs))
	op.gate = gate
	for _, r := range op.reqs {
		r := r
		srv := fs.servers[r.server]
		var cost des.Time
		switch r.kind {
		case opWrite, opRead:
			cost = cfg.RequestOverhead + des.Time(r.nsegs)*cfg.SegmentOverhead +
				des.BytesOver(r.bytes, cfg.ServiceBandwidth)
		case opSync:
			d := srv.dirty
			srv.dirty = 0
			cost = cfg.SyncBase + des.BytesOver(d, cfg.SyncBandwidth)
			srv.syncs++
		}
		wireBytes := r.bytes
		if r.kind != opWrite {
			wireBytes = 256 // request descriptor only; data flows back for reads
		}
		locks := f.lockUnits(r)
		port.Send.Submit(des.BytesOver(wireBytes, port.Bandwidth), func() {
			sim.After(cfg.NetLatency, func() {
				submitAt := sim.Now()
				// Degradation windows scale service time at submission.
				if fs.faults != nil {
					if f := fs.faults.ServiceFactor(r.server); f != 1 {
						cost = des.Time(float64(cost) * f)
					}
				}
				serveLocked(sim, locks, srv.res, cost, cfg.LockAcquireCost, func() {
					var doneAt des.Time
					doneAt = srv.res.Submit(cost, func() {
						if r.kind == opWrite {
							srv.dirty += r.bytes
							srv.written += r.bytes
							for _, seg := range r.segs {
								data := seg.Data
								if fs.dropWrite != nil && fs.dropWrite(seg.Offset, seg.Length) {
									data = nil // silent loss: extent recorded, payload zeroed
								}
								f.data.write(seg.Offset, seg.Length, data)
								if seg.Offset+seg.Length > f.size {
									f.size = seg.Offset + seg.Length
								}
							}
						}
						srv.requests++
						srv.segments += uint64(r.nsegs)
						sim.After(cfg.NetLatency, func() {
							back := ackCost
							if r.kind == opRead {
								back += des.BytesOver(r.bytes, port.Bandwidth)
							}
							port.Recv.Submit(back, func() {
								if fs.causal != nil {
									if now := sim.Now(); !op.last.ok || now >= op.last.at {
										op.last.ok, op.last.at = true, now
										op.last.submit, op.last.start, op.last.done = submitAt, doneAt-cost, doneAt
									}
								}
								gate.Done()
							})
						})
					})
					if fs.traceOn {
						fs.trace = append(fs.trace, RequestRecord{
							Kind:     r.kindName(),
							Server:   r.server,
							Bytes:    r.bytes,
							Segments: r.nsegs,
							Submit:   submitAt,
							Start:    doneAt - cost,
							Done:     doneAt,
						})
					}
					fs.recordRequest(r.kindName(), r.bytes, doneAt-cost-submitAt, cost)
				})
			})
		})
	}
}

// InitWrite arms op as a contiguous write of n bytes at off. data may be nil
// unless the file system captures real bytes. A non-positive n is a no-op.
func (op *IssueOp) InitWrite(p *des.Proc, f *File, port *Port, off, n int64, data []byte) {
	if n <= 0 {
		op.noop = true
		return
	}
	pieces := f.splitByServer([]Segment{{Offset: off, Length: n, Data: data}})
	op.init(f, p, port, groupRequests(pieces, opWrite, true))
}

// InitWriteList arms op as a native noncontiguous list-I/O write: all
// segments in one operation, one batched request per touched server, issued
// in parallel. This is the PVFS2 list I/O interface of [Ching et al. 2002]
// that the WW-List strategy exercises. An empty segment list is a no-op.
func (op *IssueOp) InitWriteList(p *des.Proc, f *File, port *Port, segs []Segment) {
	if len(segs) == 0 {
		op.noop = true
		return
	}
	pieces := f.splitByServer(segs)
	op.init(f, p, port, groupRequests(pieces, opWrite, false))
}

// InitRead arms op as a contiguous read. A non-positive n is a no-op.
func (op *IssueOp) InitRead(p *des.Proc, f *File, port *Port, off, n int64) {
	if n <= 0 {
		op.noop = true
		return
	}
	pieces := f.splitByServer([]Segment{{Offset: off, Length: n}})
	op.init(f, p, port, groupRequests(pieces, opRead, true))
	op.readOff, op.readN = off, n
}

// InitReadList arms op as a native noncontiguous list-I/O read: the mirror
// of InitWriteList, one batched request per touched server with the data
// bytes flowing back over the recv NIC. This is the read side of the PVFS2
// list I/O interface that "Noncontiguous I/O through PVFS" benchmarks. An
// empty segment list is a no-op.
func (op *IssueOp) InitReadList(p *des.Proc, f *File, port *Port, segs []Segment) {
	if len(segs) == 0 {
		op.noop = true
		return
	}
	pieces := f.splitByServer(segs)
	op.init(f, p, port, groupRequests(pieces, opRead, false))
	op.readSegs = segs
}

// InitSync arms op as a flush of every server's dirty data (MPI_File_sync's
// storage-side effect). Each server charges a base cost plus its dirty bytes
// over the flush bandwidth; concurrent syncs therefore mostly pay the base
// cost.
func (op *IssueOp) InitSync(p *des.Proc, f *File, port *Port) {
	reqs := make([]*serverRequest, 0, len(f.fs.servers))
	for i := range f.fs.servers {
		reqs = append(reqs, &serverRequest{server: i, kind: opSync})
	}
	op.init(f, p, port, reqs)
}

// ReadData returns the stored bytes of an InitRead-armed op (zero-filled
// gaps) when the file system captures data, nil otherwise. Valid only after
// Step has returned true.
func (op *IssueOp) ReadData() []byte {
	if op.readN <= 0 || !op.f.fs.cfg.CaptureData {
		return nil
	}
	return op.f.data.read(op.readOff, op.readN)
}

// ReadSegsData returns the stored bytes per segment of an
// InitReadList-armed op (zero-filled gaps) when the file system captures
// data, nil otherwise. Valid only after Step has returned true.
func (op *IssueOp) ReadSegsData() [][]byte {
	if len(op.readSegs) == 0 || !op.f.fs.cfg.CaptureData {
		return nil
	}
	out := make([][]byte, len(op.readSegs))
	for i, s := range op.readSegs {
		out[i] = op.f.data.read(s.Offset, s.Length)
	}
	return out
}

// Write performs a contiguous write of n bytes at off. data may be nil
// unless the file system captures real bytes.
func (f *File) Write(p *des.Proc, port *Port, off, n int64, data []byte) {
	var op IssueOp
	op.InitWrite(p, f, port, off, n, data)
	op.Step()
}

// WriteList performs a native noncontiguous list-I/O write; see
// IssueOp.InitWriteList.
func (f *File) WriteList(p *des.Proc, port *Port, segs []Segment) {
	var op IssueOp
	op.InitWriteList(p, f, port, segs)
	op.Step()
}

// Read performs a contiguous read; with capture enabled the stored bytes
// (zero-filled gaps) are returned, otherwise nil.
func (f *File) Read(p *des.Proc, port *Port, off, n int64) []byte {
	var op IssueOp
	op.InitRead(p, f, port, off, n)
	op.Step()
	return op.ReadData()
}

// ReadList performs a native noncontiguous list-I/O read; with capture
// enabled the stored bytes per segment are returned, otherwise nil.
func (f *File) ReadList(p *des.Proc, port *Port, segs []Segment) [][]byte {
	var op IssueOp
	op.InitReadList(p, f, port, segs)
	op.Step()
	return op.ReadSegsData()
}

// Sync flushes every server's dirty data; see IssueOp.InitSync.
func (f *File) Sync(p *des.Proc, port *Port) {
	var op IssueOp
	op.InitSync(p, f, port)
	op.Step()
}

// lockUnits returns the lock resources a write request must serialize
// through, in ascending unit order (empty when locking is disabled or the
// request is not a write).
func (f *File) lockUnits(r *serverRequest) []*des.Resource {
	gran := f.fs.cfg.LockGranularity
	if gran <= 0 || r.kind != opWrite {
		return nil
	}
	seen := map[int64]bool{}
	var units []int64
	for _, seg := range r.segs {
		for u := seg.Offset / gran; u <= (seg.Offset+seg.Length-1)/gran; u++ {
			if !seen[u] {
				seen[u] = true
				units = append(units, u)
			}
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })
	out := make([]*des.Resource, len(units))
	for i, u := range units {
		res, ok := f.locks[u]
		if !ok {
			res = f.fs.sim.NewResource(fmt.Sprintf("%s.lock%d", f.name, u), 1)
			f.locks[u] = res
		}
		out[i] = res
	}
	return out
}

// serveLocked reserves every lock unit a write touches (atomically, within
// one simulation event, so lock acquisition cannot deadlock) and starts the
// service once the last unit is granted. Each unit is held for the
// request's estimated time-to-completion (current server backlog plus
// service cost) — an approximation of lock-based file systems'
// hold-until-write-completes. Uncontended locks are granted after the
// per-unit acquisition cost (a lock-manager round trip).
func serveLocked(sim *des.Simulation, locks []*des.Resource, srv *des.Resource, cost, acquire des.Time, then func()) {
	if len(locks) == 0 {
		then()
		return
	}
	hold := cost
	if backlog := srv.FreeAt() - sim.Now(); backlog > 0 {
		hold += backlog
	}
	grant := sim.Now()
	for _, l := range locks {
		if start := l.Submit(hold, nil) - hold; start > grant {
			grant = start
		}
	}
	grant += acquire * des.Time(len(locks))
	sim.At(grant, then)
}

// ServerStats is a per-server utilization snapshot.
type ServerStats struct {
	Requests     uint64
	Segments     uint64
	BytesWritten int64
	Syncs        uint64
	Busy         des.Time
	QueueWait    des.Time
}

// Stats summarizes all servers.
type Stats struct {
	Servers       []ServerStats
	TotalRequests uint64
	TotalSegments uint64
	TotalBytes    int64
	TotalSyncs    uint64
	TotalBusy     des.Time
}

// Stats returns a snapshot of per-server and aggregate counters.
func (fs *FileSystem) Stats() Stats {
	var out Stats
	for _, s := range fs.servers {
		rs := s.res.Stats()
		st := ServerStats{
			Requests:     s.requests,
			Segments:     s.segments,
			BytesWritten: s.written,
			Syncs:        s.syncs,
			Busy:         rs.BusyTime,
			QueueWait:    rs.QueueWait,
		}
		out.Servers = append(out.Servers, st)
		out.TotalRequests += st.Requests
		out.TotalSegments += st.Segments
		out.TotalBytes += st.BytesWritten
		out.TotalSyncs += st.Syncs
		out.TotalBusy += st.Busy
	}
	return out
}
