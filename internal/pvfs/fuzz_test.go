package pvfs

import (
	"bytes"
	"testing"
)

// FuzzExtentMap drives the extent map with an arbitrary write program and
// checks it against a flat reference buffer.
func FuzzExtentMap(f *testing.F) {
	f.Add([]byte{10, 5, 1, 8, 9, 2})
	f.Add([]byte{0, 255, 3})
	f.Fuzz(func(t *testing.T, program []byte) {
		const size = 1 << 12
		ref := make([]byte, size)
		covered := make([]bool, size)
		m := extentMap{capture: true}
		for i := 0; i+2 < len(program); i += 3 {
			off := int64(program[i]) * 16
			n := int64(program[i+1]%64) + 1
			if off+n > size {
				n = size - off
			}
			if n <= 0 {
				continue
			}
			fill := program[i+2]
			data := bytes.Repeat([]byte{fill}, int(n))
			m.write(off, n, data)
			copy(ref[off:off+n], data)
			for j := off; j < off+n; j++ {
				covered[j] = true
			}
		}
		if got := m.read(0, size); !bytes.Equal(got, ref) {
			t.Fatal("extent map diverged from reference buffer")
		}
		// Sub-range reads derived from the same program bytes: arbitrary
		// windows (including ones straddling splice boundaries and holes)
		// must match the reference slice byte for byte.
		for i := 0; i+1 < len(program); i += 2 {
			off := int64(program[i]) * 16
			n := int64(program[i+1]) + 1
			if off+n > size {
				n = size - off
			}
			if n <= 0 {
				continue
			}
			if got := m.read(off, n); !bytes.Equal(got, ref[off:off+n]) {
				t.Fatalf("read(%d, %d) diverged from reference", off, n)
			}
		}
		var want int64
		for _, c := range covered {
			if c {
				want++
			}
		}
		if m.coverage() != want {
			t.Fatalf("coverage %d, want %d", m.coverage(), want)
		}
	})
}
