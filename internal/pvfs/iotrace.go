package pvfs

import (
	"fmt"
	"sort"
	"strings"

	"s3asim/internal/des"
	"s3asim/internal/stats"
)

// RequestRecord describes one server request's lifetime, for I/O analysis:
// what kind of request, which server, how much data in how many segments,
// and when it was submitted, started service, and completed.
type RequestRecord struct {
	Kind     string // "write", "read", "sync"
	Server   int
	Bytes    int64
	Segments int
	Submit   des.Time // when the request entered the server queue
	Start    des.Time // when service began
	Done     des.Time // when service completed
}

// QueueWait returns how long the request waited before service.
func (r RequestRecord) QueueWait() des.Time { return r.Start - r.Submit }

// Service returns the service duration.
func (r RequestRecord) Service() des.Time { return r.Done - r.Start }

// EnableRequestTrace turns on per-request recording. Call before issuing
// I/O; the trace grows by one record per server request and is retained for
// the file system's whole lifetime — nothing is evicted. Long-lived file
// systems (rolling workloads, repeated measurement windows) must call
// ResetRequestTrace between windows to bound memory.
func (fs *FileSystem) EnableRequestTrace() { fs.traceOn = true }

// RequestTrace returns the recorded requests in completion-event order. The
// returned slice aliases the live trace; copy it before ResetRequestTrace
// if the records must outlive the reset.
func (fs *FileSystem) RequestTrace() []RequestRecord { return fs.trace }

// ResetRequestTrace drops every recorded request, releasing the backing
// array, without changing whether tracing is enabled. It bounds the
// otherwise-unbounded retention of EnableRequestTrace across measurement
// windows.
func (fs *FileSystem) ResetRequestTrace() { fs.trace = nil }

func (r *serverRequest) kindName() string {
	switch r.kind {
	case opWrite:
		return "write"
	case opRead:
		return "read"
	default:
		return "sync"
	}
}

// IOStats is an aggregate view of a request trace.
type IOStats struct {
	Requests   int
	Bytes      int64
	Span       des.Time // first submit to last completion
	MeanWait   des.Time
	MaxWait    des.Time
	WaitP50    des.Time
	WaitP95    des.Time
	WaitP99    des.Time
	MeanSvc    des.Time
	PerKind    map[string]int
	PerServer  []int64 // bytes written+read per server
	SizeBucket map[string]int
}

// AnalyzeTrace computes aggregate statistics over a request trace.
func AnalyzeTrace(trace []RequestRecord, servers int) IOStats {
	st := IOStats{
		PerKind:    map[string]int{},
		PerServer:  make([]int64, servers),
		SizeBucket: map[string]int{},
	}
	if len(trace) == 0 {
		return st
	}
	first, last := trace[0].Submit, trace[0].Done
	var waitSum, svcSum des.Time
	for _, r := range trace {
		st.Requests++
		st.Bytes += r.Bytes
		st.PerKind[r.Kind]++
		if r.Server >= 0 && r.Server < servers {
			st.PerServer[r.Server] += r.Bytes
		}
		if w := r.QueueWait(); w > st.MaxWait {
			st.MaxWait = w
		}
		waitSum += r.QueueWait()
		svcSum += r.Service()
		if r.Submit < first {
			first = r.Submit
		}
		if r.Done > last {
			last = r.Done
		}
		st.SizeBucket[sizeBucket(r.Bytes)]++
	}
	st.Span = last - first
	st.MeanWait = waitSum / des.Time(st.Requests)
	st.MeanSvc = svcSum / des.Time(st.Requests)
	waits := make([]float64, len(trace))
	for i, r := range trace {
		waits[i] = float64(r.QueueWait())
	}
	qs := stats.Quantiles(waits, 0.5, 0.95, 0.99)
	st.WaitP50 = des.Time(qs[0])
	st.WaitP95 = des.Time(qs[1])
	st.WaitP99 = des.Time(qs[2])
	return st
}

// sizeBucket assigns a request to a power-of-four size class.
func sizeBucket(n int64) string {
	switch {
	case n == 0:
		return "0B"
	case n < 4<<10:
		return "<4KB"
	case n < 64<<10:
		return "4-64KB"
	case n < 1<<20:
		return "64KB-1MB"
	default:
		return ">=1MB"
	}
}

// Render formats the statistics as a report.
func (st IOStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests: %d (%.1f MB total) over %v\n",
		st.Requests, float64(st.Bytes)/1e6, st.Span)
	if st.Span > 0 && st.Requests > 0 {
		fmt.Fprintf(&b, "rates: %.0f ops/s, %.1f MB/s aggregate\n",
			float64(st.Requests)/st.Span.Seconds(),
			float64(st.Bytes)/1e6/st.Span.Seconds())
	}
	fmt.Fprintf(&b, "queueing: mean wait %v (p50 %v, p95 %v, p99 %v, max %v), mean service %v\n",
		st.MeanWait, st.WaitP50, st.WaitP95, st.WaitP99, st.MaxWait, st.MeanSvc)
	var kinds []string
	for k := range st.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-6s %d\n", k+":", st.PerKind[k])
	}
	b.WriteString("request sizes:\n")
	for _, bucket := range []string{"0B", "<4KB", "4-64KB", "64KB-1MB", ">=1MB"} {
		if n := st.SizeBucket[bucket]; n > 0 {
			fmt.Fprintf(&b, "  %-9s %d\n", bucket, n)
		}
	}
	if len(st.PerServer) > 0 {
		min, max := st.PerServer[0], st.PerServer[0]
		var sum int64
		for _, v := range st.PerServer {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		mean := float64(sum) / float64(len(st.PerServer))
		imbalance := 0.0
		if mean > 0 {
			imbalance = float64(max)/mean - 1
		}
		fmt.Fprintf(&b, "server balance: min %.1f MB, mean %.1f MB, max %.1f MB (imbalance %.0f%%)\n",
			float64(min)/1e6, mean/1e6, float64(max)/1e6, imbalance*100)
	}
	return b.String()
}
