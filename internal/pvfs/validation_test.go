package pvfs

import (
	"testing"

	"s3asim/internal/des"
)

func TestNewValidation(t *testing.T) {
	sim := des.New()
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		New(sim, cfg)
	}
	bad := testConfig()
	bad.NumServers = 0
	mustPanic("no servers", bad)
	bad = testConfig()
	bad.StripSize = 0
	mustPanic("zero strip", bad)
}

func TestFeynmanLikeShape(t *testing.T) {
	cfg := FeynmanLike()
	if cfg.NumServers != 16 {
		t.Fatalf("servers = %d, want 16 (paper §3.2)", cfg.NumServers)
	}
	if cfg.StripSize != 64*1024 {
		t.Fatalf("strip = %d, want 64 KB (paper §3.2)", cfg.StripSize)
	}
	if cfg.RequestOverhead <= 0 || cfg.SegmentOverhead <= 0 || cfg.ServiceBandwidth <= 0 {
		t.Fatalf("cost model incomplete: %+v", cfg)
	}
}

func TestFileNameAndConfigAccessors(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	if fs.Config().NumServers != 4 {
		t.Fatal("Config accessor")
	}
	sim.Spawn("c", func(p *des.Proc) {
		f := fs.Create(p, "results.out")
		if f.Name() != "results.out" {
			t.Errorf("Name = %q", f.Name())
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteZeroLengthIsNoop(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	port := freePort(sim)
	sim.Spawn("c", func(p *des.Proc) {
		f := fs.Create(p, "x")
		before := p.Now()
		f.Write(p, port, 10, 0, nil)
		f.WriteList(p, port, nil)
		if got := f.Read(p, port, 0, 0); got != nil {
			t.Error("zero-length read returned data")
		}
		if p.Now() != before {
			t.Error("zero-length ops consumed time")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().TotalRequests != 0 {
		t.Fatal("zero-length ops issued requests")
	}
}

func TestLockingSerializesFalseSharing(t *testing.T) {
	// Two clients write adjacent, NON-overlapping 100-byte ranges inside
	// one 400-byte lock unit. Lock-free PVFS2 semantics let the requests
	// proceed without cross-serialization; a lock-based file system
	// serializes them (§3.1's false sharing).
	run := func(lockGran int64) des.Time {
		sim := des.New()
		cfg := testConfig()
		cfg.CaptureData = false
		cfg.NumServers = 2
		cfg.StripSize = 100
		cfg.LockGranularity = lockGran
		fs := New(sim, cfg)
		var f *File
		sim.Spawn("setup", func(p *des.Proc) { f = fs.Create(p, "x") })
		var last des.Time
		for i := 0; i < 2; i++ {
			i := i
			port := freePort(sim)
			sim.Spawn("c", func(p *des.Proc) {
				p.Sleep(2 * des.Millisecond)
				// Offsets 0 and 100: different strips, different SERVERS,
				// same 400-byte lock unit.
				f.Write(p, port, int64(i)*100, 100, nil)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	free := run(0)
	locked := run(400)
	if locked <= free {
		t.Fatalf("lock-based FS (%v) not slower than lock-free (%v)", locked, free)
	}
}

func TestLockingDisjointUnitsStayParallel(t *testing.T) {
	// Writes in different lock units must not serialize against each other.
	run := func(lockGran int64) des.Time {
		sim := des.New()
		cfg := testConfig()
		cfg.CaptureData = false
		cfg.NumServers = 1
		cfg.StripSize = 1 << 20
		cfg.LockGranularity = lockGran
		fs := New(sim, cfg)
		var f *File
		sim.Spawn("setup", func(p *des.Proc) { f = fs.Create(p, "x") })
		var last des.Time
		for i := 0; i < 2; i++ {
			i := i
			port := freePort(sim)
			sim.Spawn("c", func(p *des.Proc) {
				p.Sleep(2 * des.Millisecond)
				f.Write(p, port, int64(i)*1000, 100, nil) // units 0 and 2 at gran 400
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	if free, locked := run(0), run(400); locked != free {
		t.Fatalf("disjoint lock units changed timing: %v vs %v", locked, free)
	}
}
