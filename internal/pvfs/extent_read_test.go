package pvfs

import (
	"bytes"
	"testing"
)

// TestExtentReadZeroFillsHoles pins read()'s hole semantics: bytes never
// written come back as zeros, exactly as a file system returns zeros for
// unwritten regions of a sparse file.
func TestExtentReadZeroFillsHoles(t *testing.T) {
	m := extentMap{capture: true}
	m.write(10, 4, []byte{1, 2, 3, 4})
	m.write(20, 2, []byte{9, 9})

	cases := []struct {
		off, n int64
		want   []byte
	}{
		{0, 5, []byte{0, 0, 0, 0, 0}},                  // entirely before any extent
		{8, 8, []byte{0, 0, 1, 2, 3, 4, 0, 0}},         // hole, extent, hole
		{12, 10, []byte{3, 4, 0, 0, 0, 0, 0, 0, 9, 9}}, // extent tail + gap + next extent
		{14, 6, []byte{0, 0, 0, 0, 0, 0}},              // pure gap between extents
		{10, 4, []byte{1, 2, 3, 4}},                    // exact extent
		{11, 2, []byte{2, 3}},                          // interior of one extent
		{30, 3, []byte{0, 0, 0}},                       // entirely past the last extent
		{0, 25, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, // full image
			0, 0, 0, 0, 0, 0, 9, 9, 0, 0, 0}},
	}
	for _, c := range cases {
		if got := m.read(c.off, c.n); !bytes.Equal(got, c.want) {
			t.Errorf("read(%d, %d) = %v, want %v", c.off, c.n, got, c.want)
		}
	}
}

// TestExtentReadAcrossSpliceBoundaries overwrites the middle of an extent —
// forcing the ≤3-entry splice to leave left and right remnants sharing the
// original backing array — then reads windows spanning every boundary.
func TestExtentReadAcrossSpliceBoundaries(t *testing.T) {
	m := extentMap{capture: true}
	m.write(0, 16, bytes.Repeat([]byte{0xAA}, 16))
	m.write(4, 8, bytes.Repeat([]byte{0xBB}, 8)) // splits into [0,4) [4,12) [12,16)
	if len(m.exts) != 3 {
		t.Fatalf("expected 3 extents after mid-overwrite, got %d", len(m.exts))
	}

	want := append(append(bytes.Repeat([]byte{0xAA}, 4), bytes.Repeat([]byte{0xBB}, 8)...),
		bytes.Repeat([]byte{0xAA}, 4)...)
	if got := m.read(0, 16); !bytes.Equal(got, want) {
		t.Fatalf("full read = %v, want %v", got, want)
	}
	// Windows straddling each splice boundary, and one covering both.
	for _, c := range []struct{ off, n int64 }{{2, 4}, {10, 4}, {3, 10}, {0, 13}} {
		if got := m.read(c.off, c.n); !bytes.Equal(got, want[c.off:c.off+c.n]) {
			t.Errorf("read(%d, %d) = %v, want %v", c.off, c.n, got, want[c.off:c.off+c.n])
		}
	}

	// Overwrite spanning the splice boundary itself: the read must see the
	// newest data even where remnant extents alias the old backing array.
	m.write(10, 4, bytes.Repeat([]byte{0xCC}, 4))
	copy(want[10:14], bytes.Repeat([]byte{0xCC}, 4))
	if got := m.read(8, 8); !bytes.Equal(got, want[8:16]) {
		t.Fatalf("post-overwrite read = %v, want %v", got, want[8:16])
	}
	if m.overlapped == 0 {
		t.Fatal("overlap accounting missed the overwrites")
	}
}
