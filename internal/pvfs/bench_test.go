package pvfs

import (
	"testing"

	"s3asim/internal/des"
)

// benchFS builds a Feynman-like file system without data capture.
func benchFS(sim *des.Simulation) *FileSystem {
	cfg := FeynmanLike()
	return New(sim, cfg)
}

// BenchmarkWriteContig measures large contiguous writes striped over all
// servers.
func BenchmarkWriteContig(b *testing.B) {
	sim := des.New()
	fs := benchFS(sim)
	port := &Port{Send: sim.NewResource("s", 1), Recv: sim.NewResource("r", 1)}
	sim.Spawn("c", func(p *des.Proc) {
		f := fs.Create(p, "bench")
		for i := 0; i < b.N; i++ {
			f.Write(p, port, int64(i)*1<<20, 1<<20, nil)
		}
	})
	b.ResetTimer()
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
}

// BenchmarkWriteList measures scattered list-I/O writes (the WW-List hot
// path): 64 scattered 4 KB segments per operation.
func BenchmarkWriteList(b *testing.B) {
	sim := des.New()
	fs := benchFS(sim)
	port := &Port{Send: sim.NewResource("s", 1), Recv: sim.NewResource("r", 1)}
	sim.Spawn("c", func(p *des.Proc) {
		f := fs.Create(p, "bench")
		for i := 0; i < b.N; i++ {
			segs := make([]Segment, 64)
			base := int64(i) * 64 * 128 * 1024
			for j := range segs {
				segs[j] = Segment{Offset: base + int64(j)*128*1024, Length: 4096}
			}
			f.WriteList(p, port, segs)
		}
	})
	b.ResetTimer()
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExtentMapWrite measures the pure extent-tracking data structure.
func BenchmarkExtentMapWrite(b *testing.B) {
	m := extentMap{}
	for i := 0; i < b.N; i++ {
		// Alternating pattern exercising search + insert.
		off := int64((i * 7919) % 1000000)
		m.write(off*16, 8, nil)
	}
}
