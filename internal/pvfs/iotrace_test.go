package pvfs

import (
	"strings"
	"testing"

	"s3asim/internal/des"
)

func TestRequestTraceRecordsRequests(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	fs.EnableRequestTrace()
	port := freePort(sim)
	sim.Spawn("c", func(p *des.Proc) {
		f := fs.Create(p, "x")
		f.Write(p, port, 0, 250, make([]byte, 250)) // spans servers 0,1,2
		f.Sync(p, port)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	trace := fs.RequestTrace()
	writes, syncs := 0, 0
	var bytes int64
	for _, r := range trace {
		switch r.Kind {
		case "write":
			writes++
			bytes += r.Bytes
		case "sync":
			syncs++
		}
		if r.Done < r.Start || r.Start < r.Submit {
			t.Fatalf("inconsistent timestamps: %+v", r)
		}
		if r.QueueWait() < 0 || r.Service() <= 0 {
			t.Fatalf("negative wait/service: %+v", r)
		}
	}
	if writes != 3 || bytes != 250 {
		t.Fatalf("writes=%d bytes=%d, want 3 writes of 250 bytes", writes, bytes)
	}
	if syncs != testConfig().NumServers {
		t.Fatalf("syncs=%d, want one per server", syncs)
	}
}

func TestRequestTraceOffByDefault(t *testing.T) {
	sim := des.New()
	fs := New(sim, testConfig())
	port := freePort(sim)
	sim.Spawn("c", func(p *des.Proc) {
		f := fs.Create(p, "x")
		f.Write(p, port, 0, 100, make([]byte, 100))
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fs.RequestTrace()) != 0 {
		t.Fatal("trace recorded without EnableRequestTrace")
	}
}

func TestAnalyzeTrace(t *testing.T) {
	trace := []RequestRecord{
		{Kind: "write", Server: 0, Bytes: 1000, Segments: 1, Submit: 0, Start: 10, Done: 30},
		{Kind: "write", Server: 1, Bytes: 100 << 10, Segments: 4, Submit: 5, Start: 5, Done: 45},
		{Kind: "sync", Server: 0, Bytes: 0, Segments: 0, Submit: 40, Start: 50, Done: 60},
	}
	st := AnalyzeTrace(trace, 2)
	if st.Requests != 3 || st.Bytes != 1000+100<<10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Span != 60 {
		t.Fatalf("span = %v", st.Span)
	}
	if st.PerKind["write"] != 2 || st.PerKind["sync"] != 1 {
		t.Fatalf("per kind = %v", st.PerKind)
	}
	if st.PerServer[0] != 1000 || st.PerServer[1] != 100<<10 {
		t.Fatalf("per server = %v", st.PerServer)
	}
	if st.MaxWait != 10 {
		t.Fatalf("max wait = %v", st.MaxWait)
	}
	if st.SizeBucket["<4KB"] != 1 || st.SizeBucket[">=1MB"] != 0 ||
		st.SizeBucket["0B"] != 1 {
		t.Fatalf("buckets = %v", st.SizeBucket)
	}
	out := st.Render()
	for _, want := range []string{"requests: 3", "write:", "sync:", "server balance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeTraceEmpty(t *testing.T) {
	st := AnalyzeTrace(nil, 4)
	if st.Requests != 0 || st.Span != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	if out := st.Render(); !strings.Contains(out, "requests: 0") {
		t.Fatalf("render: %s", out)
	}
}

func TestSizeBuckets(t *testing.T) {
	cases := map[int64]string{
		0:           "0B",
		100:         "<4KB",
		8 << 10:     "4-64KB",
		128<<10 + 1: "64KB-1MB",
		2 << 20:     ">=1MB",
	}
	for n, want := range cases {
		if got := sizeBucket(n); got != want {
			t.Fatalf("sizeBucket(%d) = %q, want %q", n, got, want)
		}
	}
}
