package pvfs

import (
	"fmt"

	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/obs"
)

// Config is the file-system cost model. The defaults in FeynmanLike are
// tuned so that end-to-end S3aSim runs land in the paper's regime (I/O
// dominated past ~32 processes); every knob is overridable.
type Config struct {
	NumServers int   // I/O servers (paper: 16)
	StripSize  int64 // bytes per strip, round-robin (paper: 64 KB)

	// Per-server request service model (one FCFS queue per server):
	// cost = RequestOverhead + segments·SegmentOverhead + bytes/ServiceBandwidth.
	RequestOverhead  des.Time
	SegmentOverhead  des.Time
	ServiceBandwidth float64 // bytes/sec storage path per server

	// Sync (flush) model: a client sync costs, at each server,
	// SyncBase + dirtyBytes/SyncBandwidth, where dirtyBytes is the data
	// written to that server since its previous flush completed.
	SyncBase      des.Time
	SyncBandwidth float64

	MetaOverhead des.Time // per metadata operation (create/open)

	// Client-side issuance model: per pvfs operation the client pays
	// IssueOverhead once, plus PerServerIssue for each server request the
	// operation fans out to (request construction, serialized on the CPU).
	IssueOverhead  des.Time
	PerServerIssue des.Time

	NetLatency des.Time // client <-> server one-way wire latency

	// LockGranularity, when positive, emulates a lock-based file system
	// (GPFS-like byte-range/block locking) instead of PVFS2's lock-free
	// semantics: every write request serializes against other writes
	// touching the same lock unit, even when byte ranges do not overlap
	// (false sharing). The paper's §3.1 points out that such serialization
	// "may unnecessarily serialize writes in the I/O phase" for S3aSim's
	// interleaved, non-overlapping pattern; 0 (the default, PVFS2) disables
	// locking entirely.
	LockGranularity int64
	// LockAcquireCost is the distributed-lock-manager cost per lock unit
	// acquired (token/revocation round trip); only used when
	// LockGranularity > 0.
	LockAcquireCost des.Time

	CaptureData bool // store real bytes for verification
}

// FeynmanLike returns a cost model shaped after the paper's test
// environment: 16 PVFS2 servers, 64 KB strips, 2006-era server request
// costs. See DESIGN.md §7 for the calibration rationale.
func FeynmanLike() Config {
	return Config{
		NumServers:       16,
		StripSize:        64 * 1024,
		RequestOverhead:  7 * des.Millisecond,
		SegmentOverhead:  7 * des.Millisecond,
		ServiceBandwidth: 50e6,
		SyncBase:         5 * des.Millisecond,
		SyncBandwidth:    80e6,
		MetaOverhead:     1000 * des.Microsecond,
		IssueOverhead:    150 * des.Microsecond,
		PerServerIssue:   60 * des.Microsecond,
		NetLatency:       12 * des.Microsecond,
	}
}

// Port is the client's attachment to the storage network: the NIC resources
// of the node issuing the operation plus the NIC bandwidth. The mpi layer's
// node NICs are passed here so compute traffic and storage traffic contend
// for the same interfaces, as they did on Feynman.
type Port struct {
	Send      *des.Resource
	Recv      *des.Resource
	Bandwidth float64
}

// server is one I/O daemon: a FCFS service queue plus flush accounting.
type server struct {
	res      *des.Resource
	dirty    int64
	written  int64
	requests uint64
	segments uint64
	syncs    uint64
}

// FileSystem is a simulated PVFS2 deployment.
type FileSystem struct {
	sim     *des.Simulation
	cfg     Config
	servers []*server
	meta    *des.Resource
	files   map[string]*File

	traceOn   bool
	trace     []RequestRecord
	metrics   *obs.Registry
	faults    ServerFaults
	causal    *causal.Recorder
	dropWrite func(off, n int64) bool
}

// ServerFaults scales per-server request service time — the fault layer's
// degraded-bandwidth window. ServiceFactor is consulted when a request is
// submitted to a server queue (deterministic DES order); 1 means healthy.
type ServerFaults interface {
	ServiceFactor(server int) float64
}

// New creates a file system with the given configuration.
func New(sim *des.Simulation, cfg Config) *FileSystem {
	if cfg.NumServers < 1 {
		panic("pvfs: need at least one server")
	}
	if cfg.StripSize < 1 {
		panic("pvfs: strip size must be positive")
	}
	fs := &FileSystem{sim: sim, cfg: cfg, files: make(map[string]*File)}
	for i := 0; i < cfg.NumServers; i++ {
		fs.servers = append(fs.servers, &server{
			res: sim.NewResource(fmt.Sprintf("pvfs.server%d", i), 1),
		})
	}
	fs.meta = sim.NewResource("pvfs.meta", 1)
	return fs
}

// Config returns the cost model in use.
func (fs *FileSystem) Config() Config { return fs.cfg }

// SetFaults attaches a per-server fault model (degradation windows). Nil
// (the default) means every server serves at full speed.
func (fs *FileSystem) SetFaults(f ServerFaults) { fs.faults = f }

// ScheduleOutage takes server offline for [at, at+dur): an opaque job
// occupies its FCFS queue for the window, so requests in flight when the
// outage begins finish first and everything arriving during the window
// waits it out — a crashed-and-rebooting I/O daemon whose clients block
// rather than error (PVFS2 retries transparently). Outages are counted in
// the metrics registry under "pvfs.outages".
func (fs *FileSystem) ScheduleOutage(server int, at, dur des.Time) {
	if server < 0 || server >= len(fs.servers) {
		panic(fmt.Sprintf("pvfs: outage for unknown server %d", server))
	}
	if dur <= 0 {
		return
	}
	srv := fs.servers[server]
	fs.sim.At(at, func() {
		srv.res.Submit(dur, nil)
		if fs.metrics != nil {
			fs.metrics.Add("pvfs.outages", 1)
		}
	})
}

// SetWriteDropper installs a test-only corruption hook: any write segment
// for which fn returns true is acknowledged and fully accounted (dirty
// bytes, coverage, file size) but its payload is silently discarded — the
// stored extent holds zeroes. This models a silent data-loss fault that no
// offset bookkeeping can see; only content verification (readback
// checksumming) catches it. Nil (the default) disables dropping.
func (fs *FileSystem) SetWriteDropper(fn func(off, n int64) bool) { fs.dropWrite = fn }

// SetMetrics attaches a registry; every subsequent server-request completion
// records pvfs.* counters (requests, bytes, syncs) and virtual-time
// histograms (queue wait, service time, request size). Requests complete in
// deterministic DES order, so the resulting snapshot is deterministic too.
func (fs *FileSystem) SetMetrics(r *obs.Registry) { fs.metrics = r }

// SetCausal attaches a happens-before recorder: every client wait inside
// issue() is decomposed into transit → io-queue → io-service → transit along
// the request that finished last. Purely passive; nil disables recording.
func (fs *FileSystem) SetCausal(c *causal.Recorder) { fs.causal = c }

// recordRequest streams one completed server request into the registry.
func (fs *FileSystem) recordRequest(kind string, bytes int64, wait, service des.Time) {
	m := fs.metrics
	if m == nil {
		return
	}
	m.Add("pvfs.requests", 1)
	switch kind {
	case "write":
		m.Add("pvfs.bytes_written", bytes)
	case "read":
		m.Add("pvfs.bytes_read", bytes)
	case "sync":
		m.Add("pvfs.syncs", 1)
	}
	m.ObserveTime("pvfs.queue_wait", wait)
	m.ObserveTime("pvfs.service", service)
	if kind != "sync" {
		m.Observe("pvfs.request_bytes", float64(bytes))
	}
}

// File is a striped file. Writes may come from any client concurrently;
// PVFS2 provides no overlap atomicity, and the extent map records any
// overlapping bytes so tests can assert there were none.
type File struct {
	fs    *FileSystem
	name  string
	size  int64
	data  extentMap
	locks map[int64]*des.Resource // lock-unit serializers (LockGranularity > 0)
}

// Create creates (or truncates) a file via the metadata server. Must be
// called from within a des.Proc.
func (fs *FileSystem) Create(p *des.Proc, name string) *File {
	fs.meta.Use(p, fs.cfg.MetaOverhead)
	f := &File{fs: fs, name: name, locks: make(map[int64]*des.Resource)}
	f.data.capture = fs.cfg.CaptureData
	fs.files[name] = f
	return f
}

// Open returns an existing file (metadata round trip), or nil if absent.
func (fs *FileSystem) Open(p *des.Proc, name string) *File {
	fs.meta.Use(p, fs.cfg.MetaOverhead)
	return fs.files[name]
}

// Lookup returns a file without cost, for inspection in tests and reports.
func (fs *FileSystem) Lookup(name string) *File { return fs.files[name] }

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the current file size (highest written offset).
func (f *File) Size() int64 { return f.size }

// Coverage returns the number of distinct bytes written so far.
func (f *File) Coverage() int64 { return f.data.coverage() }

// OverlappedBytes returns how many bytes were ever written more than once.
func (f *File) OverlappedBytes() int64 { return f.data.overlapped }

// FullyCovers reports whether every byte of [0, size) has been written.
func (f *File) FullyCovers(size int64) bool { return f.data.covers(size) }

// ReadBack returns captured bytes for [off, off+n), zero-filled in gaps.
func (f *File) ReadBack(off, n int64) []byte { return f.data.read(off, n) }

// Captures reports whether the file system stores real bytes
// (Config.CaptureData), i.e. whether ReadBack returns meaningful content.
func (f *File) Captures() bool { return f.fs.cfg.CaptureData }

// serverFor returns the server index holding the strip at file offset x.
func (f *File) serverFor(x int64) int {
	return int((x / f.fs.cfg.StripSize) % int64(f.fs.cfg.NumServers))
}

// serverPiece is a run of bytes destined for one server, possibly one of
// many pieces of a client segment that crossed strip boundaries.
type serverPiece struct {
	server int
	seg    Segment
}

// splitByServer cuts segments at strip boundaries and tags each piece with
// its server.
func (f *File) splitByServer(segs []Segment) []serverPiece {
	strip := f.fs.cfg.StripSize
	var pieces []serverPiece
	for _, s := range segs {
		off, n := s.Offset, s.Length
		var dataPos int64
		for n > 0 {
			inStrip := strip - off%strip
			take := min64(n, inStrip)
			p := serverPiece{server: f.serverFor(off), seg: Segment{Offset: off, Length: take}}
			if s.Data != nil {
				p.seg.Data = s.Data[dataPos : dataPos+take]
			}
			pieces = append(pieces, p)
			off += take
			dataPos += take
			n -= take
		}
	}
	return pieces
}
