package adapt

// Predictor estimates a query's total result bytes from its ex-ante
// features (the query length — the only thing the master knows at dispatch
// time) by tracking an EWMA of the observed bytes/length ratio per
// log2(length) bucket. Until a bucket's neighborhood has data it falls back
// to the caller-supplied prior. Like the controller, it is deterministic
// and allocation-free on the predict path.
type Predictor struct {
	gamma float64
	prior func(length int64) int64
	cells [nBuckets]struct {
		ratio float64
		n     int64
	}
}

// NewPredictor builds a predictor with EWMA decay gamma (<=0 defaults to
// 0.3) and the given prior. A nil prior predicts 0 for unseen lengths.
func NewPredictor(gamma float64, prior func(length int64) int64) *Predictor {
	if gamma <= 0 || gamma > 1 {
		gamma = 0.3
	}
	return &Predictor{gamma: gamma, prior: prior}
}

// Observe feeds one completed query: its length and its actual total result
// bytes.
func (p *Predictor) Observe(length, bytes int64) {
	if length <= 0 {
		return
	}
	c := &p.cells[bucketOf(length)]
	r := float64(bytes) / float64(length)
	if c.n == 0 {
		c.ratio = r
	} else {
		c.ratio = (1-p.gamma)*c.ratio + p.gamma*r
	}
	c.n++
}

// Predict estimates the result bytes for a query of the given length,
// borrowing the nearest populated length bucket's ratio.
func (p *Predictor) Predict(length int64) int64 {
	if length <= 0 {
		length = 1
	}
	b := bucketOf(length)
	for d := 0; d < nBuckets; d++ {
		if b-d >= 0 && p.cells[b-d].n > 0 {
			return int64(p.cells[b-d].ratio * float64(length))
		}
		if d > 0 && b+d < nBuckets && p.cells[b+d].n > 0 {
			return int64(p.cells[b+d].ratio * float64(length))
		}
	}
	if p.prior == nil {
		return 0
	}
	return p.prior(length)
}
