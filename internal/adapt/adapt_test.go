package adapt

import (
	"reflect"
	"testing"

	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/romio"
)

func testParams() Params {
	return Params{
		Arms:      []string{"mw", "ww-list", "ww-coll"},
		BaseHints: romio.DefaultHints(),
	}
}

// feed runs one decide+observe round with a synthetic cost.
func feed(c *Controller, bytes int64, cost des.Time) Decision {
	d := c.Decide(bytes)
	c.Observe(d.Arm, bytes, cost, d.Epoch, nil)
	return d
}

func TestBootstrapAssignsEveryArm(t *testing.T) {
	c := New(testParams())
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		d := c.Decide(1000)
		if !d.Explore {
			t.Fatalf("decision %d not exploratory", i)
		}
		seen[d.Arm] = true
		c.Observe(d.Arm, 1000, des.Millisecond, d.Epoch, nil)
	}
	if len(seen) != 3 {
		t.Fatalf("bootstrap covered %d arms, want 3", len(seen))
	}
}

func TestModelPicksCheapestArmPerBucket(t *testing.T) {
	c := New(testParams())
	for i := 0; i < 3; i++ { // bootstrap
		d := c.Decide(1000)
		c.Observe(d.Arm, 1000, des.Millisecond, d.Epoch, nil)
	}
	// Arm 0 is cheap for small batches, arm 2 cheap for huge ones.
	for i := 0; i < 6; i++ {
		c.Observe(0, 1<<10, 1*des.Millisecond, c.EpochID(), nil)
		c.Observe(1, 1<<10, 5*des.Millisecond, c.EpochID(), nil)
		c.Observe(2, 1<<10, 9*des.Millisecond, c.EpochID(), nil)
		c.Observe(0, 1<<24, 900*des.Millisecond, c.EpochID(), nil)
		c.Observe(1, 1<<24, 300*des.Millisecond, c.EpochID(), nil)
		c.Observe(2, 1<<24, 90*des.Millisecond, c.EpochID(), nil)
	}
	if d := c.Decide(1 << 10); d.Arm != 0 {
		t.Fatalf("small batch went to arm %d, want 0", d.Arm)
	}
	if d := c.Decide(1 << 24); d.Arm != 2 {
		t.Fatalf("huge batch went to arm %d, want 2", d.Arm)
	}
	if c.Assigned(0) == 0 || c.Observations(2) == 0 {
		t.Fatal("accounting not updated")
	}
}

func TestHysteresisHoldsIncumbent(t *testing.T) {
	p := testParams()
	p.Arms = []string{"a", "b"}
	c := New(p)
	for i := 0; i < 2; i++ {
		d := c.Decide(1 << 12)
		c.Observe(d.Arm, 1<<12, des.Millisecond, d.Epoch, nil)
	}
	// Arm 0 starts cheapest and is seated as the bucket incumbent.
	for i := 0; i < 8; i++ {
		c.Observe(0, 1<<12, 9500*des.Microsecond, c.EpochID(), nil)
		c.Observe(1, 1<<12, 10*des.Millisecond, c.EpochID(), nil)
	}
	if d := c.Decide(1 << 12); d.Arm != 0 {
		t.Fatalf("incumbent seated on arm %d, want 0", d.Arm)
	}
	before := c.Switches()
	// Arm 1 edges ahead but stays within the 10% hysteresis band.
	for i := 0; i < 30; i++ {
		c.Observe(1, 1<<12, 9*des.Millisecond, c.EpochID(), nil)
	}
	for i := 0; i < 5; i++ {
		if d := c.Decide(1 << 12); d.Switched || d.Arm != 0 {
			t.Fatalf("switched inside hysteresis band: %+v", d)
		}
	}
	if c.Switches() != before {
		t.Fatal("switch counter moved inside hysteresis band")
	}
	// Now arm 1 clearly undercuts: the controller must switch, once.
	for i := 0; i < 12; i++ {
		c.Observe(1, 1<<12, 2*des.Millisecond, c.EpochID(), nil)
	}
	d := c.Decide(1 << 12)
	if d.Arm != 1 || !d.Switched {
		t.Fatalf("no switch to the clearly better arm: %+v", d)
	}
	if c.Switches() != before+1 {
		t.Fatalf("switches = %d, want %d", c.Switches(), before+1)
	}
}

func TestHintSearchWalksDownhillAndFreezes(t *testing.T) {
	p := Params{
		Arms:      []string{"only"},
		BaseHints: romio.DefaultHints(),
		EpochLen:  2,
		TuneSieve: true,
		MaxProbes: 64,
	}
	c := New(p)
	// Synthetic world where cost is proportional to the sieve buffer: every
	// halving probe wins, every doubling probe loses.
	cost := func(h romio.Hints) des.Time { return des.Time(h.SieveBufferSize) }
	for i := 0; i < 200 && !c.Converged(); i++ {
		d := c.Decide(1 << 12)
		c.Observe(d.Arm, 1<<12, cost(d.Hints), d.Epoch, nil)
	}
	if !c.Converged() {
		t.Fatal("search never froze")
	}
	if got := c.BestHints().SieveBufferSize; got != 4096 {
		t.Fatalf("converged sieve buffer = %d, want the 4 KiB clamp", got)
	}
	if err := c.BestHints().Validate(); err != nil {
		t.Fatalf("converged hints invalid: %v", err)
	}
	if c.ProbeEpochs() > p.MaxProbes {
		t.Fatalf("probe epochs %d exceeded bound %d", c.ProbeEpochs(), p.MaxProbes)
	}
}

func TestHintSearchRespectsMaxProbes(t *testing.T) {
	p := Params{
		Arms:      []string{"only"},
		BaseHints: romio.DefaultHints(),
		EpochLen:  1,
		TuneCB:    true,
		TuneSieve: true,
		MaxProbes: 3,
	}
	c := New(p)
	for i := 0; i < 100 && !c.Converged(); i++ {
		feed(c, 1<<12, des.Time(i+1)*des.Millisecond)
	}
	if !c.Converged() {
		t.Fatal("search did not freeze at MaxProbes")
	}
	if c.ProbeEpochs() > 3 {
		t.Fatalf("probe epochs = %d, want <= 3", c.ProbeEpochs())
	}
}

func TestStaleEpochObservationsDontScoreEpochs(t *testing.T) {
	p := Params{
		Arms:      []string{"only"},
		BaseHints: romio.DefaultHints(),
		EpochLen:  2,
		TuneSieve: true,
	}
	c := New(p)
	d := c.Decide(100)
	c.Observe(d.Arm, 100, des.Millisecond, d.Epoch, nil)
	// A flood of stale-tagged observations must not close the epoch.
	before := c.EpochID()
	for i := 0; i < 10; i++ {
		c.Observe(0, 100, des.Millisecond, before+7, nil)
	}
	if c.EpochID() != before {
		t.Fatal("stale observations advanced the epoch")
	}
	if c.Observations(0) != 11 {
		t.Fatalf("cost model skipped stale observations: %d", c.Observations(0))
	}
	// One more current-epoch observation closes it.
	c.Observe(0, 100, des.Millisecond, before, nil)
	if c.EpochID() != before+1 {
		t.Fatal("epoch did not close")
	}
}

func TestAttributionAccumulates(t *testing.T) {
	c := New(testParams())
	att := &causal.Attribution{Total: 3 * des.Millisecond}
	att.ByCat[causal.CatSyncWait] = 2 * des.Millisecond
	att.ByCat[causal.CatIOQueue] = des.Millisecond
	c.Observe(1, 500, 3*des.Millisecond, 0, att)
	c.Observe(1, 500, 3*des.Millisecond, 0, att)
	got := c.Attr(1)
	if got[causal.CatSyncWait] != 4*des.Millisecond || got[causal.CatIOQueue] != 2*des.Millisecond {
		t.Fatalf("attribution totals = %v", got)
	}
	if c.Attr(0) != (causal.Breakdown{}) {
		t.Fatal("attribution leaked across arms")
	}
}

func TestControllerDeterministic(t *testing.T) {
	run := func() ([]Decision, romio.Hints, int64) {
		p := testParams()
		p.EpochLen = 3
		p.TuneCB, p.TuneSieve = true, true
		p.MaxCBNodes = 16
		c := New(p)
		var ds []Decision
		for i := 0; i < 120; i++ {
			bytes := int64(1) << uint(10+(i*7)%16)
			d := c.Decide(bytes)
			ds = append(ds, d)
			// Cost model favoring arm (bytes >> 20): deterministic but
			// non-trivial feedback.
			cost := des.Time(bytes/1024+int64(d.Arm*100)) * des.Microsecond
			c.Observe(d.Arm, bytes, cost, d.Epoch, nil)
		}
		return ds, c.BestHints(), c.Switches()
	}
	d1, h1, s1 := run()
	d2, h2, s2 := run()
	if !reflect.DeepEqual(d1, d2) || h1 != h2 || s1 != s2 {
		t.Fatal("two identical runs diverged")
	}
}

func TestPredictorLearnsRatio(t *testing.T) {
	pr := NewPredictor(0.3, func(length int64) int64 { return length * 100 })
	if got := pr.Predict(1000); got != 100000 {
		t.Fatalf("prior prediction = %d", got)
	}
	for i := 0; i < 20; i++ {
		pr.Observe(1000, 3000) // true ratio 3
	}
	got := pr.Predict(1000)
	if got < 2500 || got > 3500 {
		t.Fatalf("learned prediction = %d, want ~3000", got)
	}
	// Nearest-bucket borrowing: a 4x length reuses the learned ratio.
	got = pr.Predict(4000)
	if got < 10000 || got > 14000 {
		t.Fatalf("borrowed prediction = %d, want ~12000", got)
	}
}

// TestAdaptiveDecideSteadyStateAllocs pins the decision hot path at zero
// allocations per op: the controller sits on the master's dispatch path,
// which the FSM engine keeps allocation-free (DESIGN.md §11).
func TestAdaptiveDecideSteadyStateAllocs(t *testing.T) {
	p := testParams()
	p.TuneCB, p.TuneSieve = true, true
	c := New(p)
	for i := 0; i < 64; i++ {
		bytes := int64(1) << uint(8+i%20)
		d := c.Decide(bytes)
		c.Observe(d.Arm, bytes, des.Time(bytes)*des.Nanosecond, d.Epoch, nil)
	}
	sizes := [...]int64{1 << 10, 1 << 16, 1 << 24}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		_ = c.Decide(sizes[i%len(sizes)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Decide allocates %.1f/op in steady state, want 0", allocs)
	}
	j := 0
	allocs = testing.AllocsPerRun(200, func() {
		_ = NewPredictor(0.3, nil).Predict(1 << uint(8+j%20)) // predictor path
		j++
	})
	_ = allocs // NewPredictor allocates; only Predict must not — checked below
	pr := NewPredictor(0.3, nil)
	for k := 0; k < 32; k++ {
		pr.Observe(int64(1)<<uint(8+k%16), int64(k+1)*1000)
	}
	k := 0
	allocs = testing.AllocsPerRun(200, func() {
		_ = pr.Predict(int64(1) << uint(8+k%20))
		k++
	})
	if allocs != 0 {
		t.Fatalf("Predict allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkAdaptiveDecide(b *testing.B) {
	p := testParams()
	p.TuneCB, p.TuneSieve = true, true
	c := New(p)
	for i := 0; i < 64; i++ {
		bytes := int64(1) << uint(8+i%20)
		d := c.Decide(bytes)
		c.Observe(d.Arm, bytes, des.Time(bytes)*des.Nanosecond, d.Epoch, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Decide(int64(1) << uint(8+i%20))
	}
}

func BenchmarkAdaptiveObserve(b *testing.B) {
	c := New(testParams())
	for i := 0; i < 3; i++ {
		d := c.Decide(1000)
		c.Observe(d.Arm, 1000, des.Millisecond, d.Epoch, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(i%3, int64(1)<<uint(8+i%20), des.Millisecond, c.EpochID(), nil)
	}
}
