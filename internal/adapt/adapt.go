// Package adapt implements the closed-loop adaptive I/O controller: an
// online, deterministic policy that (a) picks the write strategy for each
// query from its predicted result size and an online per-strategy cost model,
// and (b) tunes ROMIO hints (cb_nodes, the sieve buffer size) by a bounded
// hill-climb over observation epochs.
//
// The controller is strategy-agnostic: it selects among abstract integer
// "arms" so the package depends only on romio (for the hint vector), des
// (virtual time), and causal (attribution breakdowns) — core maps arms to
// its Strategy enum. All state is per-instance and every decision is a pure
// function of the observation sequence, so sweeps that run one controller
// per cell stay bit-identical regardless of host parallelism.
//
// Cost model (DESIGN.md §16): per (arm, ⌊log2 bytes⌋ bucket) EWMA of the
// observed flush-window cost and batch size. Estimating a bucket with no
// data borrows the nearest populated bucket for that arm, scaled by an
// affine blend of the byte ratio — a crude interpolation that only needs to
// rank arms, not price them. An arm never assigned is explored first
// (lowest index wins ties), unless Params.Prior supplies an ex-ante price
// for unobserved arms — then the prior replaces the forced bootstrap and a
// clearly-dominated arm is never tried at all. After that the per-bucket
// incumbent holds until a challenger undercuts it by the hysteresis margin,
// which is what stops boundary thrashing.
//
// Hint search: decisions are tagged with an epoch id; once EpochLen
// observations from the current epoch have arrived, the epoch closes and
// its mean cost feeds the hill-climb — baseline first, then round-robin
// probes (double/halve each tuned dimension) accepted only when they beat
// the baseline by AcceptMargin. A full cycle of rejections, or MaxProbes
// probe epochs, freezes the search. Observations tagged with an older
// epoch still update the cost model but never count toward the epoch
// accumulator, so pipelined flushes cannot smear a probe's evaluation.
package adapt

import (
	"fmt"
	"math"

	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/romio"
)

// nBuckets covers ⌊log2 v⌋ for any positive int64 (plus bucket 0 for v <= 1).
const nBuckets = 64

// bucketOf returns the log2 size bucket of v.
func bucketOf(v int64) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// Hint-search dimensions.
const (
	dimCB = iota
	dimSieve
)

// move is one hill-climb probe direction: double (+1) or halve (-1) a
// dimension.
type move struct {
	dim int
	dir int
}

// Params configures a Controller. Zero values select the documented
// defaults.
type Params struct {
	// Arms names the selectable strategies; the index is the arm id used in
	// Decide/Observe. Required, at least one.
	Arms []string
	// EpochLen is the number of current-epoch observations that close a
	// hint-search epoch. Default 8.
	EpochLen int
	// Hysteresis is the relative margin a challenger arm must beat the
	// bucket incumbent by to take over. Default 0.10.
	Hysteresis float64
	// AcceptMargin is the relative improvement a hint probe epoch must show
	// over the baseline to be accepted. Default 0.05.
	AcceptMargin float64
	// Gamma is the EWMA decay for the cost model. Default 0.3.
	Gamma float64
	// BaseHints is the hint vector the search starts from.
	BaseHints romio.Hints
	// MaxCBNodes clamps cb_nodes probes (normally the worker count).
	// Default 64.
	MaxCBNodes int
	// MaxProbes bounds the number of probe epochs. Default 16.
	MaxProbes int
	// TuneCB/TuneSieve enable the two search dimensions.
	TuneCB    bool
	TuneSieve bool
	// Prior, if non-nil, prices an arm for a predicted batch size ex ante
	// (same float64 des.Time units as the observed costs). A controller
	// with a prior skips the forced bootstrap phase: unobserved arms are
	// ranked by the prior instead of being assigned one batch each, so an
	// arm the prior prices clearly worst is never tried at all. The online
	// model replaces the prior per arm as soon as that arm's first
	// observation lands, so a wrong prior costs at most one batch per
	// mis-ranked arm — the same as bootstrap, but only when actually wrong.
	// Must be deterministic and allocation-free (it sits on the Decide hot
	// path).
	Prior func(arm int, predBytes int64) float64
}

// Decision is one per-query strategy/hint assignment.
type Decision struct {
	// Arm is the selected strategy index.
	Arm int
	// Hints is the ROMIO hint vector the batch should be written with.
	Hints romio.Hints
	// Epoch tags the decision for Observe: pass it back with the flush
	// observation so the hint search scores only its own epoch.
	Epoch uint32
	// Switched is set when this decision changed a bucket incumbent.
	Switched bool
	// Explore is set while the decision came from the bootstrap phase
	// (assigning every arm once) rather than the cost model.
	Explore bool
}

// cell is one (arm, bucket) entry of the cost model.
type cell struct {
	cost  float64 // EWMA of observed window cost, in des.Time units
	bytes float64 // EWMA of observed batch bytes
	n     int64
}

// Controller is the adaptive policy. Not safe for concurrent use: one
// controller belongs to one simulated master.
type Controller struct {
	p    Params
	arms int

	model     [][nBuckets]cell // [arm][bucket]
	incumbent [nBuckets]int16  // -1 = none yet
	obsCount  []int64
	assigned  []int64
	attr      []causal.Breakdown
	switches  int64

	// Hint search state.
	hints     romio.Hints // incumbent hint vector
	probe     romio.Hints // candidate under evaluation
	probing   bool
	converged bool
	moves     []move
	moveIdx   int
	rejects   int
	probes    int
	epoch     uint32
	epochN    int
	epochSum  des.Time
	baseMean  float64
	haveBase  bool
}

// New builds a controller. Panics on an empty arm set (a config error, not
// a runtime condition).
func New(p Params) *Controller {
	if len(p.Arms) == 0 {
		panic("adapt: no arms")
	}
	if p.EpochLen <= 0 {
		p.EpochLen = 8
	}
	if p.Hysteresis <= 0 {
		p.Hysteresis = 0.10
	}
	if p.AcceptMargin <= 0 {
		p.AcceptMargin = 0.05
	}
	if p.Gamma <= 0 || p.Gamma > 1 {
		p.Gamma = 0.3
	}
	if p.MaxCBNodes <= 0 {
		p.MaxCBNodes = 64
	}
	if p.MaxProbes <= 0 {
		p.MaxProbes = 16
	}
	c := &Controller{
		p:        p,
		arms:     len(p.Arms),
		model:    make([][nBuckets]cell, len(p.Arms)),
		obsCount: make([]int64, len(p.Arms)),
		assigned: make([]int64, len(p.Arms)),
		attr:     make([]causal.Breakdown, len(p.Arms)),
		hints:    p.BaseHints,
	}
	for i := range c.incumbent {
		c.incumbent[i] = -1
	}
	if p.TuneCB {
		c.moves = append(c.moves, move{dimCB, -1}, move{dimCB, +1})
	}
	if p.TuneSieve {
		c.moves = append(c.moves, move{dimSieve, -1}, move{dimSieve, +1})
	}
	if len(c.moves) == 0 {
		c.converged = true
	}
	return c
}

// Decide assigns a strategy arm and hint vector to a query with the given
// predicted result bytes. The steady-state path performs no allocation
// (pinned by TestAdaptiveDecideSteadyStateAllocs).
func (c *Controller) Decide(predBytes int64) Decision {
	d := Decision{Epoch: c.epoch, Hints: c.hints}
	if c.probing {
		d.Hints = c.probe
	}

	// Bootstrap: hand every arm at least one query before trusting the
	// model (lowest index first — deterministic). A prior replaces this:
	// unobserved arms are priced by it inside estimate instead.
	if c.p.Prior == nil {
		for a := 0; a < c.arms; a++ {
			if c.assigned[a] == 0 {
				d.Arm, d.Explore = a, true
				c.assigned[a]++
				return d
			}
		}
	}

	// The pending cap below only bites while some arm has real data to
	// fall back on; in the information-free burst before the first flush
	// lands, decisions follow the raw prior instead.
	anyObs := false
	for a := 0; a < c.arms; a++ {
		if c.obsCount[a] > 0 {
			anyObs = true
			break
		}
	}
	b := bucketOf(predBytes)
	best, bestEst := -1, math.Inf(1)
	for a := 0; a < c.arms; a++ {
		if est := c.estimate(a, b, predBytes, anyObs); est < bestEst {
			best, bestEst = a, est
		}
	}
	if best < 0 {
		// No observations anywhere yet and no prior (decisions outrunning
		// flushes): keep spreading load round-robin over the least-assigned
		// arm.
		var minA int
		for a := 1; a < c.arms; a++ {
			if c.assigned[a] < c.assigned[minA] {
				minA = a
			}
		}
		d.Arm, d.Explore = minA, true
		c.assigned[minA]++
		return d
	}

	inc := int(c.incumbent[b])
	switch {
	case inc < 0:
		c.incumbent[b] = int16(best)
	case best != inc:
		if incEst := c.estimate(inc, b, predBytes, anyObs); bestEst < incEst*(1-c.p.Hysteresis) {
			c.incumbent[b] = int16(best)
			c.switches++
			d.Switched = true
		}
	}
	d.Arm = int(c.incumbent[b])
	d.Explore = c.obsCount[d.Arm] == 0
	c.assigned[d.Arm]++
	return d
}

// estimate prices arm a for a predBytes-sized batch in bucket b.
//
// An arm with observations is priced from the nearest populated bucket,
// extrapolated by the prior's shape when one exists (the learned cost is a
// multiplicative correction on the prior — so a format-bound arm scales
// linearly in bytes while an overhead-bound arm barely scales), or by a
// clamped affine byte-ratio blend otherwise.
//
// An arm with no observations is priced by the prior — but only one
// unvalidated assignment may be in flight at a time (capPending): pipelined
// decisions otherwise stack bets on a mis-priced arm before its first flush
// window can correct it. +Inf means the arm is unavailable (no data and no
// prior, or pending validation).
func (c *Controller) estimate(a, b int, predBytes int64, capPending bool) float64 {
	if c.obsCount[a] == 0 {
		if c.p.Prior == nil {
			return math.Inf(1)
		}
		if capPending && c.assigned[a] > 0 {
			return math.Inf(1)
		}
		return c.p.Prior(a, predBytes)
	}
	m := &c.model[a]
	src := -1
	for d := 0; d < nBuckets; d++ {
		if b-d >= 0 && m[b-d].n > 0 {
			src = b - d
			break
		}
		if d > 0 && b+d < nBuckets && m[b+d].n > 0 {
			src = b + d
			break
		}
	}
	if src < 0 {
		return math.Inf(1)
	}
	cl := &m[src]
	if c.p.Prior != nil {
		pSrc := c.p.Prior(a, int64(cl.bytes))
		pNew := c.p.Prior(a, predBytes)
		if pSrc > 0 && pNew > 0 && !math.IsInf(pSrc, 1) && !math.IsInf(pNew, 1) {
			return cl.cost * (pNew / pSrc)
		}
	}
	ratio := 1.0
	if cl.bytes > 0 && predBytes > 0 {
		ratio = float64(predBytes) / cl.bytes
		if ratio > 8 {
			ratio = 8
		} else if ratio < 0.125 {
			ratio = 0.125
		}
	}
	return cl.cost * (0.5 + 0.5*ratio)
}

// Observe feeds one completed flush window back: the arm it ran on, the
// batch's result bytes, the window's critical cost (flush end − flush
// start), the Decision.Epoch it was assigned under, and optionally the
// causal attribution of the window. Off the decision hot path; may
// allocate.
func (c *Controller) Observe(arm int, bytes int64, cost des.Time, epoch uint32, attr *causal.Attribution) {
	if arm < 0 || arm >= c.arms {
		return
	}
	cl := &c.model[arm][bucketOf(bytes)]
	if cl.n == 0 {
		cl.cost, cl.bytes = float64(cost), float64(bytes)
	} else {
		g := c.p.Gamma
		cl.cost = (1-g)*cl.cost + g*float64(cost)
		cl.bytes = (1-g)*cl.bytes + g*float64(bytes)
	}
	cl.n++
	c.obsCount[arm]++
	if attr != nil {
		c.attr[arm].Add(attr.ByCat)
	}
	if c.converged || epoch != c.epoch {
		return
	}
	c.epochSum += cost
	c.epochN++
	if c.epochN >= c.p.EpochLen {
		c.closeEpoch()
	}
}

// closeEpoch scores the finished epoch and advances the hint hill-climb.
func (c *Controller) closeEpoch() {
	mean := float64(c.epochSum) / float64(c.epochN)
	c.epochSum, c.epochN = 0, 0
	c.epoch++
	if !c.haveBase {
		c.baseMean, c.haveBase = mean, true
		c.armNextProbe()
		return
	}
	c.probes++
	if mean < c.baseMean*(1-c.p.AcceptMargin) {
		c.hints = c.probe
		c.baseMean = mean
		c.rejects = 0
	} else {
		c.rejects++
	}
	c.moveIdx = (c.moveIdx + 1) % len(c.moves)
	c.armNextProbe()
}

// armNextProbe selects the next probe direction that actually changes the
// hint vector, or freezes the search when the cycle is exhausted.
func (c *Controller) armNextProbe() {
	for i := 0; i < len(c.moves); i++ {
		if c.probes >= c.p.MaxProbes || c.rejects >= len(c.moves) {
			break
		}
		if cand := c.apply(c.hints, c.moves[c.moveIdx]); cand != c.hints {
			c.probe, c.probing = cand, true
			return
		}
		// A move clamped into a no-op counts as rejected.
		c.rejects++
		c.moveIdx = (c.moveIdx + 1) % len(c.moves)
	}
	c.converged, c.probing = true, false
}

// apply executes one probe move with its clamps (cb_nodes in
// [1, MaxCBNodes]; sieve buffer a power of two in [4 KiB, 8 MiB]).
func (c *Controller) apply(h romio.Hints, m move) romio.Hints {
	switch m.dim {
	case dimCB:
		n := h.CBNodes
		if n <= 0 {
			n = c.p.MaxCBNodes // 0 means "all ranks aggregate"
		}
		if m.dir > 0 {
			n *= 2
		} else {
			n /= 2
		}
		if n < 1 {
			n = 1
		}
		if n > c.p.MaxCBNodes {
			n = c.p.MaxCBNodes
		}
		h.CBNodes = n
	case dimSieve:
		s := h.SieveBufferSize
		if s <= 0 {
			s = 512 * 1024
		}
		if m.dir > 0 {
			s *= 2
		} else {
			s /= 2
		}
		if s < 4096 {
			s = 4096
		}
		if s > 8*1024*1024 {
			s = 8 * 1024 * 1024
		}
		h.SieveBufferSize = s
	}
	return h
}

// Switches returns how many times a bucket incumbent changed.
func (c *Controller) Switches() int64 { return c.switches }

// Assigned returns how many queries were assigned to arm a.
func (c *Controller) Assigned(a int) int64 { return c.assigned[a] }

// Observations returns how many flush windows arm a has reported.
func (c *Controller) Observations(a int) int64 { return c.obsCount[a] }

// Attr returns the accumulated critical-path breakdown of arm a's observed
// flush windows.
func (c *Controller) Attr(a int) causal.Breakdown { return c.attr[a] }

// Arms returns the number of arms.
func (c *Controller) Arms() int { return c.arms }

// ArmName returns arm a's display name.
func (c *Controller) ArmName(a int) string {
	if a < 0 || a >= c.arms {
		return fmt.Sprintf("arm(%d)", a)
	}
	return c.p.Arms[a]
}

// EpochID returns the current hint-search epoch.
func (c *Controller) EpochID() uint32 { return c.epoch }

// BestHints returns the incumbent hint vector (the converged result once
// Converged reports true).
func (c *Controller) BestHints() romio.Hints { return c.hints }

// CurrentHints returns what Decide would stamp right now (the probe vector
// while one is under evaluation).
func (c *Controller) CurrentHints() romio.Hints {
	if c.probing {
		return c.probe
	}
	return c.hints
}

// Converged reports whether the hint search has frozen.
func (c *Controller) Converged() bool { return c.converged }

// ProbeEpochs returns how many probe epochs were evaluated.
func (c *Controller) ProbeEpochs() int { return c.probes }
