package align

import (
	"fmt"
	"strings"
)

// Alignment is a local alignment with its traceback: the aligned substrings
// (gap characters inserted), a match line, and a CIGAR string.
type Alignment struct {
	Score        int
	QStart, QEnd int // query range [QStart, QEnd)
	SStart, SEnd int // subject range [SStart, SEnd)
	QAligned     string
	MatchLine    string // '|' match, '.' mismatch, ' ' gap
	SAligned     string
	CIGAR        string // M/I/D run-length ops (I: gap in subject, D: gap in query)
	Identity     float64
}

// swState identifies the DP matrix a cell's best score came from.
type swState uint8

const (
	stM swState = iota // match/mismatch
	stX                // gap in subject (consume query)
	stY                // gap in query (consume subject)
)

// LocalAlign computes the optimal local alignment between q and s under sc
// with affine gaps, including full traceback. It uses O(len(q)·len(s))
// memory; intended for the (short) sequences real hits align.
func LocalAlign(q, s []byte, sc Scoring) Alignment {
	n, m := len(q), len(s)
	if n == 0 || m == 0 {
		return Alignment{}
	}
	negInf := -1 << 30
	idx := func(i, j int) int { return i*(m+1) + j }

	M := make([]int, (n+1)*(m+1))
	X := make([]int, (n+1)*(m+1))
	Y := make([]int, (n+1)*(m+1))
	fromM := make([]swState, (n+1)*(m+1)) // predecessor state of M cell
	fromX := make([]swState, (n+1)*(m+1))
	fromY := make([]swState, (n+1)*(m+1))
	for j := 0; j <= m; j++ {
		X[idx(0, j)], Y[idx(0, j)] = negInf, negInf
	}
	for i := 0; i <= n; i++ {
		X[idx(i, 0)], Y[idx(i, 0)] = negInf, negInf
	}

	best, bi, bj, bstate := 0, 0, 0, stM
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := sc.Mismatch
			if q[i-1] == s[j-1] {
				sub = sc.Match
			}
			// M: diagonal from the best previous state (or a fresh start).
			d := idx(i-1, j-1)
			prev, prevState := M[d], stM
			if X[d] > prev {
				prev, prevState = X[d], stX
			}
			if Y[d] > prev {
				prev, prevState = Y[d], stY
			}
			if prev < 0 {
				prev, prevState = 0, stM // local restart
			}
			c := idx(i, j)
			M[c] = prev + sub
			fromM[c] = prevState
			// X: gap in subject (move down the query).
			u := idx(i-1, j)
			if M[u]+sc.GapOpen >= X[u]+sc.GapExtend {
				X[c], fromX[c] = M[u]+sc.GapOpen, stM
			} else {
				X[c], fromX[c] = X[u]+sc.GapExtend, stX
			}
			// Y: gap in query (move along the subject).
			l := idx(i, j-1)
			if M[l]+sc.GapOpen >= Y[l]+sc.GapExtend {
				Y[c], fromY[c] = M[l]+sc.GapOpen, stM
			} else {
				Y[c], fromY[c] = Y[l]+sc.GapExtend, stY
			}
			if M[c] > best {
				best, bi, bj, bstate = M[c], i, j, stM
			}
			if X[c] > best {
				best, bi, bj, bstate = X[c], i, j, stX
			}
			if Y[c] > best {
				best, bi, bj, bstate = Y[c], i, j, stY
			}
		}
	}
	if best <= 0 {
		return Alignment{}
	}

	// Traceback from (bi, bj, bstate) until the local-alignment start.
	var qa, ma, sa []byte
	i, j, state := bi, bj, bstate
	matches := 0
	for i > 0 && j > 0 {
		c := idx(i, j)
		switch state {
		case stM:
			qa = append(qa, q[i-1])
			sa = append(sa, s[j-1])
			if q[i-1] == s[j-1] {
				ma = append(ma, '|')
				matches++
			} else {
				ma = append(ma, '.')
			}
			// A cell whose value equals its own substitution score started
			// the local alignment fresh (the clamped predecessor was 0).
			sub := sc.Mismatch
			if q[i-1] == s[j-1] {
				sub = sc.Match
			}
			if M[c]-sub == 0 {
				i, j = i-1, j-1
				goto done
			}
			i, j, state = i-1, j-1, fromM[c]
		case stX:
			qa = append(qa, q[i-1])
			sa = append(sa, '-')
			ma = append(ma, ' ')
			state = fromX[c]
			i--
		case stY:
			qa = append(qa, '-')
			sa = append(sa, s[j-1])
			ma = append(ma, ' ')
			state = fromY[c]
			j--
		}
	}
done:
	reverse(qa)
	reverse(ma)
	reverse(sa)

	al := Alignment{
		Score:     best,
		QStart:    i,
		QEnd:      bi,
		SStart:    j,
		SEnd:      bj,
		QAligned:  string(qa),
		MatchLine: string(ma),
		SAligned:  string(sa),
		CIGAR:     cigarOf(qa, sa),
	}
	if len(qa) > 0 {
		al.Identity = float64(matches) / float64(len(qa))
	}
	return al
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// cigarOf derives a CIGAR string from the aligned (gapped) sequences:
// M for aligned pairs, I for gaps in the subject, D for gaps in the query.
func cigarOf(qa, sa []byte) string {
	var b strings.Builder
	runOp := byte(0)
	runLen := 0
	flush := func() {
		if runLen > 0 {
			fmt.Fprintf(&b, "%d%c", runLen, runOp)
		}
	}
	for k := range qa {
		var op byte
		switch {
		case qa[k] == '-':
			op = 'D'
		case sa[k] == '-':
			op = 'I'
		default:
			op = 'M'
		}
		if op != runOp {
			flush()
			runOp, runLen = op, 0
		}
		runLen++
	}
	flush()
	return b.String()
}

// Pretty renders the alignment as the familiar three-line block, wrapped at
// width columns.
func (a Alignment) Pretty(width int) string {
	if width < 10 {
		width = 60
	}
	var b strings.Builder
	fmt.Fprintf(&b, "score=%d identity=%.1f%% cigar=%s\n", a.Score, a.Identity*100, a.CIGAR)
	for off := 0; off < len(a.QAligned); off += width {
		end := off + width
		if end > len(a.QAligned) {
			end = len(a.QAligned)
		}
		fmt.Fprintf(&b, "Q %s\n  %s\nS %s\n", a.QAligned[off:end], a.MatchLine[off:end], a.SAligned[off:end])
	}
	return b.String()
}
