package align

import (
	"math/rand"
	"testing"

	"s3asim/internal/bio"
	"s3asim/internal/stats"
)

func benchDB(n int, seed int64) []bio.Sequence {
	return bio.Generate(bio.GenSpec{
		NumSeqs:  n,
		SizeHist: stats.Uniform(500, 2000),
		Seed:     seed,
	}).Seqs
}

// BenchmarkIndexBuild measures k-mer index construction.
func BenchmarkIndexBuild(b *testing.B) {
	seqs := benchDB(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndex(seqs, 8)
	}
}

// BenchmarkSearch measures a full seed-extend-rescore search.
func BenchmarkSearch(b *testing.B) {
	seqs := benchDB(100, 1)
	ix := NewIndex(seqs, 8)
	query := append([]byte(nil), seqs[13].Data[100:260]...)
	opts := DefaultSearchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(query, opts)
	}
}

// BenchmarkSmithWaterman measures the reference DP on 200x200 inputs.
func BenchmarkSmithWaterman(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = "ACGT"[rng.Intn(4)]
		}
		return out
	}
	q, s := mk(200), mk(200)
	sc := DefaultDNA()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SmithWaterman(q, s, sc)
	}
}
