package align

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"s3asim/internal/bio"
)

func seqs(data ...string) []bio.Sequence {
	var out []bio.Sequence
	for i, d := range data {
		out = append(out, bio.Sequence{ID: string(rune('a' + i)), Data: []byte(d)})
	}
	return out
}

func TestExactMatchFindsPerfectHit(t *testing.T) {
	db := seqs("TTTTTTGGGGACGTACGTACGTCCCCCC")
	ix := NewIndex(db, 8)
	query := []byte("ACGTACGTACGT")
	hits := ix.Search(query, DefaultSearchOptions())
	if len(hits) == 0 {
		t.Fatal("no hits for exact substring")
	}
	h := hits[0]
	if h.Score < len(query)*2 {
		t.Fatalf("score %d below perfect %d", h.Score, len(query)*2)
	}
	if h.SubjectID != "a" || h.Identity != 1.0 {
		t.Fatalf("hit = %+v", h)
	}
	if string(db[0].Data[h.SStart:h.SEnd]) != string(query[h.QStart:h.QEnd]) {
		t.Fatal("coordinates do not describe the exact match")
	}
}

func TestNoHitsForForeignQuery(t *testing.T) {
	ix := NewIndex(seqs(strings.Repeat("A", 200)), 8)
	hits := ix.Search([]byte(strings.Repeat("C", 50)), DefaultSearchOptions())
	if len(hits) != 0 {
		t.Fatalf("unexpected hits: %+v", hits)
	}
}

func TestShortQueryReturnsNil(t *testing.T) {
	ix := NewIndex(seqs("ACGTACGTACGT"), 8)
	if hits := ix.Search([]byte("ACGT"), DefaultSearchOptions()); hits != nil {
		t.Fatal("query shorter than k should yield nil")
	}
}

func TestMismatchToleratedByExtension(t *testing.T) {
	subject := "GGGGGGGG" + "ACGTACGTTCGTACGTACGT" + "GGGGGGGG" // one T↔A flip
	query := "ACGTACGTACGTACGTACGT"
	ix := NewIndex(seqs(subject), 8)
	hits := ix.Search([]byte(query), DefaultSearchOptions())
	if len(hits) == 0 {
		t.Fatal("no hit across a single mismatch")
	}
	h := hits[0]
	if h.Identity >= 1.0 || h.Identity < 0.9 {
		t.Fatalf("identity = %v, want one mismatch in ~20", h.Identity)
	}
	if h.QEnd-h.QStart < 18 {
		t.Fatalf("extension too short: %+v", h)
	}
}

func TestHitsSortedByScoreDeterministically(t *testing.T) {
	db := seqs(
		"TTTTACGTACGTACGTACGTTTTT",   // long (strong) match
		"CCCCACGTACGTCCCCCCCCCCCC",   // short (weak) match
		"GGGGACGTACGTACGTACGTGGGGGG", // strong match again
	)
	ix := NewIndex(db, 8)
	hits := ix.Search([]byte("ACGTACGTACGTACGT"), DefaultSearchOptions())
	if len(hits) < 2 {
		t.Fatalf("hits = %+v", hits)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by descending score")
		}
	}
	again := ix.Search([]byte("ACGTACGTACGTACGT"), DefaultSearchOptions())
	if len(again) != len(hits) {
		t.Fatal("nondeterministic hit count")
	}
	for i := range hits {
		if hits[i] != again[i] {
			t.Fatal("nondeterministic hit order")
		}
	}
}

func TestMaxHitsLimit(t *testing.T) {
	var many []string
	for i := 0; i < 10; i++ {
		many = append(many, "TT"+strings.Repeat("ACGT", 6)+"GG")
	}
	ix := NewIndex(seqs(many...), 8)
	opts := DefaultSearchOptions()
	opts.MaxHits = 3
	hits := ix.Search([]byte(strings.Repeat("ACGT", 6)), opts)
	if len(hits) != 3 {
		t.Fatalf("hits = %d, want 3", len(hits))
	}
}

func TestSmithWatermanKnownValues(t *testing.T) {
	sc := DefaultDNA()
	cases := []struct {
		q, s string
		want int
	}{
		{"ACGT", "ACGT", 8},     // 4 matches
		{"ACGT", "TTTT", 2},     // best single match (T)
		{"AAAA", "CCCC", 0},     // nothing
		{"ACGTACGT", "ACGT", 8}, // local: the ACGT block
		{"ACGAT", "ACGT", 6},    // ACG(3 match) vs gap choices
		{"", "ACGT", 0},         // empty query
	}
	for _, c := range cases {
		if got := SmithWaterman([]byte(c.q), []byte(c.s), sc); got != c.want {
			t.Errorf("SW(%q,%q) = %d, want %d", c.q, c.s, got, c.want)
		}
	}
}

func TestSmithWatermanSymmetric(t *testing.T) {
	f := func(qRaw, sRaw []byte) bool {
		q := dnaify(qRaw, 40)
		s := dnaify(sRaw, 40)
		sc := DefaultDNA()
		return SmithWaterman(q, s, sc) == SmithWaterman(s, q, sc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSmithWatermanBounds(t *testing.T) {
	// Property: 0 ≤ score ≤ match · min(len(q), len(s)).
	f := func(qRaw, sRaw []byte) bool {
		q := dnaify(qRaw, 30)
		s := dnaify(sRaw, 30)
		sc := DefaultDNA()
		got := SmithWaterman(q, s, sc)
		limit := sc.Match * minInt(len(q), len(s))
		return got >= 0 && got <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedScoreMatchesFullSWOnDiagonalPairs(t *testing.T) {
	// For similar same-length sequences (diagonal alignments), a generous
	// band must reach the full SW score.
	rng := rand.New(rand.NewSource(5))
	alpha := "ACGT"
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.Intn(30)
		q := make([]byte, n)
		for i := range q {
			q[i] = alpha[rng.Intn(4)]
		}
		s := append([]byte(nil), q...)
		for i := 0; i < n/10; i++ { // a few point mutations
			s[rng.Intn(n)] = alpha[rng.Intn(4)]
		}
		sc := DefaultDNA()
		full := SmithWaterman(q, s, sc)
		banded, _ := bandedScore(q, s, sc, n)
		if banded != full {
			t.Fatalf("trial %d: banded(full width) %d != SW %d\nq=%s\ns=%s",
				trial, banded, full, q, s)
		}
	}
}

func TestIndexAccessors(t *testing.T) {
	ix := NewIndex(seqs("ACGTACGT", "TTTTTTTT"), 4)
	if ix.K() != 4 || ix.NumSeqs() != 2 {
		t.Fatalf("K=%d NumSeqs=%d", ix.K(), ix.NumSeqs())
	}
}

func TestPropertyHitCoordinatesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := "ACGT"
		mk := func(n int) string {
			b := make([]byte, n)
			for i := range b {
				b[i] = alpha[rng.Intn(4)]
			}
			return string(b)
		}
		db := seqs(mk(100), mk(80), mk(120))
		ix := NewIndex(db, 6)
		query := []byte(mk(40))
		for _, h := range ix.Search(query, DefaultSearchOptions()) {
			sub := db[h.SubjectIndex].Data
			if h.QStart < 0 || h.QEnd > len(query) || h.QStart >= h.QEnd {
				return false
			}
			if h.SStart < 0 || h.SEnd > len(sub) || h.SStart >= h.SEnd {
				return false
			}
			if h.QEnd-h.QStart != h.SEnd-h.SStart {
				return false // ungapped extent must be diagonal
			}
			if h.Identity < 0 || h.Identity > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// dnaify maps arbitrary bytes to the DNA alphabet, capped at n.
func dnaify(raw []byte, n int) []byte {
	if len(raw) > n {
		raw = raw[:n]
	}
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = "ACGT"[int(b)%4]
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
