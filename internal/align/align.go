// Package align implements a small but real sequence-similarity search
// engine in the BLAST family: exact k-mer seeding against an indexed
// database fragment, ungapped X-drop extension, and banded Smith-Waterman
// rescoring. It is the "actual search algorithm" substrate standing in for
// NCBI BLAST in the real-execution example (examples/realsearch and
// internal/parsearch); the S3aSim simulator models this cost instead of
// running it, exactly as the paper's simulator did.
package align

import (
	"sort"

	"s3asim/internal/bio"
)

// Scoring holds the match/mismatch and affine gap parameters.
type Scoring struct {
	Match     int // > 0
	Mismatch  int // < 0
	GapOpen   int // < 0, charged on the first residue of a gap
	GapExtend int // < 0, charged on each subsequent residue
}

// DefaultDNA returns blastn-like scoring.
func DefaultDNA() Scoring {
	return Scoring{Match: 2, Mismatch: -3, GapOpen: -5, GapExtend: -2}
}

// Hit is one local alignment between a query and a database sequence.
type Hit struct {
	SubjectIndex int    // index into the indexed sequence set
	SubjectID    string // FASTA ID
	Score        int
	QStart, QEnd int // query range [QStart, QEnd)
	SStart, SEnd int // subject range [SStart, SEnd)
	Identity     float64
}

// posting locates one k-mer occurrence.
type posting struct {
	seq int32
	pos int32
}

// Index is a k-mer lookup table over a set of sequences (one database
// fragment, in database-segmentation terms).
type Index struct {
	k        int
	seqs     [][]byte
	ids      []string
	postings map[string][]posting
}

// NewIndex builds a k-mer index (k ≥ 4 recommended for DNA).
func NewIndex(seqs []bio.Sequence, k int) *Index {
	if k < 1 {
		panic("align: k must be >= 1")
	}
	ix := &Index{k: k, postings: make(map[string][]posting)}
	for si := range seqs {
		data := seqs[si].Data
		ix.seqs = append(ix.seqs, data)
		ix.ids = append(ix.ids, seqs[si].ID)
		for p := 0; p+k <= len(data); p++ {
			key := string(data[p : p+k])
			ix.postings[key] = append(ix.postings[key], posting{seq: int32(si), pos: int32(p)})
		}
	}
	return ix
}

// K returns the seed length.
func (ix *Index) K() int { return ix.k }

// NumSeqs returns the number of indexed sequences.
func (ix *Index) NumSeqs() int { return len(ix.seqs) }

// SearchOptions tunes a search.
type SearchOptions struct {
	Scoring  Scoring
	MinScore int // discard hits below this score
	XDrop    int // ungapped extension drop-off (> 0)
	Band     int // banded SW half-width (0 = ungapped score only)
	MaxHits  int // keep at most this many hits (0 = unlimited)
}

// DefaultSearchOptions returns sensible DNA defaults.
func DefaultSearchOptions() SearchOptions {
	return SearchOptions{Scoring: DefaultDNA(), MinScore: 16, XDrop: 12, Band: 8}
}

// seedHit is the best seed found on one (sequence, diagonal).
type seedHit struct {
	seq  int32
	diag int32 // pos - qpos
	qpos int32
	pos  int32
}

// Search finds local alignments of query against the index, sorted by
// descending score (ties broken by subject index then position, so results
// are deterministic).
func (ix *Index) Search(query []byte, opts SearchOptions) []Hit {
	if len(query) < ix.k {
		return nil
	}
	if opts.XDrop <= 0 {
		opts.XDrop = 12
	}
	// Stage 1: seeds, deduplicated per (sequence, diagonal).
	type diagKey struct {
		seq  int32
		diag int32
	}
	seeds := make(map[diagKey]seedHit)
	for qp := 0; qp+ix.k <= len(query); qp++ {
		key := string(query[qp : qp+ix.k])
		for _, p := range ix.postings[key] {
			dk := diagKey{seq: p.seq, diag: p.pos - int32(qp)}
			if _, ok := seeds[dk]; !ok {
				seeds[dk] = seedHit{seq: p.seq, diag: dk.diag, qpos: int32(qp), pos: p.pos}
			}
		}
	}
	ordered := make([]seedHit, 0, len(seeds))
	for _, s := range seeds {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		if a.diag != b.diag {
			return a.diag < b.diag
		}
		return a.qpos < b.qpos
	})

	// Stage 2: ungapped X-drop extension; stage 3: optional banded SW.
	var hits []Hit
	for _, s := range ordered {
		subject := ix.seqs[s.seq]
		h := ix.extend(query, subject, int(s.qpos), int(s.pos), opts)
		if h.Score < opts.MinScore {
			continue
		}
		if opts.Band > 0 {
			qs, qe, ss, se := h.QStart, h.QEnd, h.SStart, h.SEnd
			score, ident := bandedScore(query[qs:qe], subject[ss:se], opts.Scoring, opts.Band)
			if score > h.Score {
				h.Score = score
				h.Identity = ident
			}
		}
		h.SubjectIndex = int(s.seq)
		h.SubjectID = ix.ids[s.seq]
		hits = append(hits, h)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].SubjectIndex != hits[j].SubjectIndex {
			return hits[i].SubjectIndex < hits[j].SubjectIndex
		}
		return hits[i].SStart < hits[j].SStart
	})
	// Per (subject, overlapping region) dedup: keep the best hit per
	// subject+query-start to avoid near-duplicate diagonals.
	hits = dedup(hits)
	if opts.MaxHits > 0 && len(hits) > opts.MaxHits {
		hits = hits[:opts.MaxHits]
	}
	return hits
}

// dedup removes lower-scoring hits that substantially overlap a better hit
// on the same subject.
func dedup(hits []Hit) []Hit {
	var out []Hit
	for _, h := range hits {
		redundant := false
		for _, k := range out {
			if k.SubjectIndex != h.SubjectIndex {
				continue
			}
			qo := overlap(h.QStart, h.QEnd, k.QStart, k.QEnd)
			so := overlap(h.SStart, h.SEnd, k.SStart, k.SEnd)
			if qo*2 > h.QEnd-h.QStart && so*2 > h.SEnd-h.SStart {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, h)
		}
	}
	return out
}

func overlap(a1, a2, b1, b2 int) int {
	lo, hi := a1, a2
	if b1 > lo {
		lo = b1
	}
	if b2 < hi {
		hi = b2
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// extend grows an exact seed in both directions without gaps, stopping when
// the running score drops XDrop below the best seen (BLAST's X-drop rule).
func (ix *Index) extend(query, subject []byte, qp, sp int, opts SearchOptions) Hit {
	sc := opts.Scoring
	k := ix.k

	// Score the seed itself.
	score := k * sc.Match
	best := score
	bqs, bqe := qp, qp+k
	bss, bse := sp, sp+k

	// Right extension.
	q, s := qp+k, sp+k
	run := score
	for q < len(query) && s < len(subject) {
		if query[q] == subject[s] {
			run += sc.Match
		} else {
			run += sc.Mismatch
		}
		q++
		s++
		if run > best {
			best = run
			bqe, bse = q, s
		}
		if run < best-opts.XDrop {
			break
		}
	}

	// Left extension continues from the best right-extended score.
	run = best
	q, s = qp-1, sp-1
	for q >= 0 && s >= 0 {
		if query[q] == subject[s] {
			run += sc.Match
		} else {
			run += sc.Mismatch
		}
		if run > best {
			best = run
			bqs, bss = q, s
		}
		if run < best-opts.XDrop {
			break
		}
		q--
		s--
	}

	matches := 0
	for i := 0; i < bqe-bqs; i++ {
		if query[bqs+i] == subject[bss+i] {
			matches++
		}
	}
	ident := 0.0
	if bqe > bqs {
		ident = float64(matches) / float64(bqe-bqs)
	}
	return Hit{Score: best, QStart: bqs, QEnd: bqe, SStart: bss, SEnd: bse, Identity: ident}
}
