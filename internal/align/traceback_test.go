package align

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLocalAlignExactMatch(t *testing.T) {
	a := LocalAlign([]byte("ACGTACGT"), []byte("TTACGTACGTTT"), DefaultDNA())
	if a.Score != 16 {
		t.Fatalf("score = %d, want 16", a.Score)
	}
	if a.Identity != 1.0 || a.QAligned != "ACGTACGT" || a.SAligned != "ACGTACGT" {
		t.Fatalf("alignment = %+v", a)
	}
	if a.CIGAR != "8M" {
		t.Fatalf("cigar = %q", a.CIGAR)
	}
	if a.MatchLine != strings.Repeat("|", 8) {
		t.Fatalf("match line = %q", a.MatchLine)
	}
	if a.SStart != 2 || a.SEnd != 10 || a.QStart != 0 || a.QEnd != 8 {
		t.Fatalf("coords = %+v", a)
	}
}

func TestLocalAlignMismatchAndGap(t *testing.T) {
	// Query has one extra base relative to the subject block.
	q := []byte("AAAACGTTCCCCGGGG")
	s := []byte("AAAACGTCCCCGGGG")
	a := LocalAlign(q, s, DefaultDNA())
	if a.Score <= 0 {
		t.Fatal("no alignment found")
	}
	if !strings.Contains(a.CIGAR, "I") {
		t.Fatalf("expected an insertion in CIGAR, got %q", a.CIGAR)
	}
	// Aligned strings must be equal length and reconstruct the substrings.
	if len(a.QAligned) != len(a.SAligned) || len(a.QAligned) != len(a.MatchLine) {
		t.Fatalf("ragged alignment: %+v", a)
	}
	if strings.ReplaceAll(a.QAligned, "-", "") != string(q[a.QStart:a.QEnd]) {
		t.Fatalf("query reconstruction failed: %+v", a)
	}
	if strings.ReplaceAll(a.SAligned, "-", "") != string(s[a.SStart:a.SEnd]) {
		t.Fatalf("subject reconstruction failed: %+v", a)
	}
}

func TestLocalAlignEmpty(t *testing.T) {
	if a := LocalAlign(nil, []byte("ACGT"), DefaultDNA()); a.Score != 0 {
		t.Fatalf("empty query scored %d", a.Score)
	}
	if a := LocalAlign([]byte("AAAA"), []byte("CCCC"), DefaultDNA()); a.Score != 0 {
		t.Fatalf("disjoint alphabets scored %d", a.Score)
	}
}

// Property: the traceback's score always equals the score-only
// Smith-Waterman, and the gapped strings are consistent.
func TestPropertyTracebackMatchesScorer(t *testing.T) {
	f := func(qRaw, sRaw []byte) bool {
		q := dnaify(qRaw, 30)
		s := dnaify(sRaw, 30)
		sc := DefaultDNA()
		want := SmithWaterman(q, s, sc)
		a := LocalAlign(q, s, sc)
		if a.Score != want {
			return false
		}
		if want == 0 {
			return true
		}
		// Re-score the traceback to confirm internal consistency.
		score := 0
		inGap := false
		for k := range a.QAligned {
			qc, sc2 := a.QAligned[k], a.SAligned[k]
			switch {
			case qc == '-' || sc2 == '-':
				if inGap {
					score += sc.GapExtend
				} else {
					score += sc.GapOpen
					inGap = true
				}
			case qc == sc2:
				score += sc.Match
				inGap = false
			default:
				score += sc.Mismatch
				inGap = false
			}
		}
		return score == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCigarConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		q := dnaify(randomBytes(rng, 40), 40)
		s := dnaify(randomBytes(rng, 40), 40)
		a := LocalAlign(q, s, DefaultDNA())
		if a.Score == 0 {
			continue
		}
		// CIGAR M+I ops consume query; M+D consume subject.
		var qLen, sLen int
		num := 0
		for i := 0; i < len(a.CIGAR); i++ {
			c := a.CIGAR[i]
			if c >= '0' && c <= '9' {
				num = num*10 + int(c-'0')
				continue
			}
			switch c {
			case 'M':
				qLen += num
				sLen += num
			case 'I':
				qLen += num
			case 'D':
				sLen += num
			default:
				t.Fatalf("bad op %c in %q", c, a.CIGAR)
			}
			num = 0
		}
		if qLen != a.QEnd-a.QStart || sLen != a.SEnd-a.SStart {
			t.Fatalf("CIGAR %q consumes (%d,%d), coords say (%d,%d)",
				a.CIGAR, qLen, sLen, a.QEnd-a.QStart, a.SEnd-a.SStart)
		}
	}
}

func TestPrettyRendering(t *testing.T) {
	a := LocalAlign([]byte("ACGTACGTACGT"), []byte("ACGTACCTACGT"), DefaultDNA())
	out := a.Pretty(8)
	if !strings.Contains(out, "score=") || !strings.Contains(out, "cigar=") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "Q ACGTACGT") { // wrapped at 8
		t.Fatalf("wrapping wrong:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Fatalf("mismatch marker missing:\n%s", out)
	}
}

func randomBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}
