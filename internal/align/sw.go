package align

// SmithWaterman computes the optimal local-alignment score between q and s
// with affine-ish gap costs (open charged on every gap residue's first step,
// extend thereafter), in O(len(q)·len(s)) time and O(len(s)) space. It is
// the reference implementation the banded variant is tested against.
func SmithWaterman(q, s []byte, sc Scoring) int {
	if len(q) == 0 || len(s) == 0 {
		return 0
	}
	// Three-state DP: M (match/mismatch), X (gap in s), Y (gap in q).
	negInf := -1 << 30
	m := make([]int, len(s)+1)
	x := make([]int, len(s)+1)
	y := make([]int, len(s)+1)
	for j := range m {
		x[j], y[j] = negInf, negInf
	}
	best := 0
	prevM := make([]int, len(s)+1)
	prevX := make([]int, len(s)+1)
	prevY := make([]int, len(s)+1)
	for i := 1; i <= len(q); i++ {
		copy(prevM, m)
		copy(prevX, x)
		copy(prevY, y)
		m[0], x[0], y[0] = 0, negInf, negInf
		for j := 1; j <= len(s); j++ {
			sub := sc.Mismatch
			if q[i-1] == s[j-1] {
				sub = sc.Match
			}
			diag := max3(prevM[j-1], prevX[j-1], prevY[j-1])
			if diag < 0 {
				diag = 0 // local alignment restart
			}
			m[j] = diag + sub
			x[j] = maxInt(prevM[j]+sc.GapOpen, prevX[j]+sc.GapExtend)
			y[j] = maxInt(m[j-1]+sc.GapOpen, y[j-1]+sc.GapExtend)
			if v := max3(m[j], x[j], y[j]); v > best {
				best = v
			}
		}
	}
	return best
}

// bandedScore runs Smith-Waterman restricted to a band of half-width band
// around the main diagonal of the q×s matrix, returning the best score and
// an identity estimate along the scored extent. Sequences are expected to
// be roughly diagonal (the ungapped extension already aligned them).
func bandedScore(q, s []byte, sc Scoring, band int) (int, float64) {
	if len(q) == 0 || len(s) == 0 {
		return 0, 0
	}
	if band < 1 {
		band = 1
	}
	negInf := -1 << 30
	width := 2*band + 1
	// cur[b] is the score at column j = i + (b - band), if in range.
	cur := make([]int, width)
	prev := make([]int, width)
	for b := range prev {
		prev[b] = negInf
	}
	best := 0
	matches, length := 0, 0
	for i := 1; i <= len(q); i++ {
		for b := 0; b < width; b++ {
			cur[b] = negInf
			j := i + b - band
			if j < 1 || j > len(s) {
				continue
			}
			sub := sc.Mismatch
			if q[i-1] == s[j-1] {
				sub = sc.Match
			}
			// Diagonal predecessor is the same band offset in the previous
			// row; horizontal/vertical neighbours shift by one.
			diag := 0
			if i > 1 {
				if prev[b] > 0 {
					diag = prev[b]
				}
			}
			v := diag + sub
			if b > 0 && cur[b-1] != negInf { // gap in q (move in s)
				if g := cur[b-1] + sc.GapOpen; g > v {
					v = g
				}
			}
			if b < width-1 && prev[b+1] != negInf { // gap in s (move in q)
				if g := prev[b+1] + sc.GapOpen; g > v {
					v = g
				}
			}
			if v < 0 {
				v = 0
			}
			cur[b] = v
			if v > best {
				best = v
			}
			if b == band { // main diagonal: identity bookkeeping
				length++
				if sub == sc.Match {
					matches++
				}
			}
		}
		cur, prev = prev, cur
	}
	ident := 0.0
	if length > 0 {
		ident = float64(matches) / float64(length)
	}
	return best, ident
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max3(a, b, c int) int { return maxInt(maxInt(a, b), c) }
