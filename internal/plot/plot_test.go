package plot

import (
	"strings"
	"testing"
)

func sampleChart() *LineChart {
	return &LineChart{
		Title:  "Figure 2 — overall execution time",
		XLabel: "processes",
		YLabel: "time (s)",
		LogX:   true,
		Series: []Series{
			{Name: "MW", Xs: []float64{2, 8, 32, 96}, Ys: []float64{447, 166, 150, 145}},
			{Name: "WW-List", Xs: []float64{2, 8, 32, 96}, Ys: []float64{535, 82, 36, 32}},
		},
	}
}

func TestLineChartASCII(t *testing.T) {
	out := sampleChart().ASCII(60, 12)
	if !strings.Contains(out, "Figure 2") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*=MW") || !strings.Contains(out, "o=WW-List") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("no data marks drawn")
	}
	if !strings.Contains(out, "processes") {
		t.Fatal("x label missing")
	}
}

func TestLineChartASCIIEmpty(t *testing.T) {
	c := &LineChart{}
	if !strings.Contains(c.ASCII(40, 10), "empty") {
		t.Fatal("empty chart not flagged")
	}
}

func TestLineChartSVGWellFormed(t *testing.T) {
	svg := sampleChart().SVG(640, 360)
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"Figure 2", "MW", "WW-List", "processes", "time (s)",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 || strings.Count(svg, "</svg>") != 1 {
		t.Fatal("malformed document")
	}
	// Two series -> two polylines.
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("polylines = %d", strings.Count(svg, "<polyline"))
	}
}

func TestSVGEscaping(t *testing.T) {
	c := sampleChart()
	c.Title = `a <b> & "c"`
	svg := c.SVG(400, 300)
	if strings.Contains(svg, "<b>") {
		t.Fatal("unescaped markup in title")
	}
	if !strings.Contains(svg, "&lt;b&gt;") || !strings.Contains(svg, "&amp;") {
		t.Fatal("escapes missing")
	}
}

func sampleBars() *StackedBars {
	return &StackedBars{
		Title:    "MW — worker phase times",
		XLabel:   "processes",
		YLabel:   "time (s)",
		Labels:   []string{"2", "8", "32"},
		Segments: []string{"Compute", "I/O", "Sync"},
		Values: [][]float64{
			{373, 0, 4},
			{53, 0, 7},
			{12, 0, 7},
		},
	}
}

func TestStackedBarsASCII(t *testing.T) {
	out := sampleBars().ASCII(70)
	if !strings.Contains(out, "C=Compute") || !strings.Contains(out, "S=Sync") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Bar rows: label + bar + total.
	if !strings.Contains(lines[1], "2") || !strings.Contains(lines[1], "377.00") {
		t.Fatalf("first bar row: %q", lines[1])
	}
	// Tallest bar (row 1) must have the most fill characters.
	fill := func(s string) int { return strings.Count(s, "C") }
	if fill(lines[1]) <= fill(lines[3]) {
		t.Fatal("bar heights not proportional")
	}
}

func TestStackedBarsSVG(t *testing.T) {
	svg := sampleBars().SVG(640, 360)
	for _, want := range []string{"<svg", "rect", "Compute", "Sync", "processes"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// 3 bars x up-to-3 segments (zero segments skipped: I/O is 0) + legend
	// swatches (3) + background: at least 3*2+3+1 rects.
	if strings.Count(svg, "<rect") < 9 {
		t.Fatalf("rects = %d", strings.Count(svg, "<rect"))
	}
}

func TestStackedBarsEmpty(t *testing.T) {
	sb := &StackedBars{}
	if !strings.Contains(sb.SVG(300, 200), "empty") {
		t.Fatal("empty bars SVG not flagged")
	}
	if !strings.Contains(sb.ASCII(40), "empty") {
		t.Fatal("empty bars ASCII not flagged")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 3 || ticks[0] != 0 || ticks[len(ticks)-1] != 100 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
}

func TestLogTicks(t *testing.T) {
	ticks := logTicks(0.1, 100)
	want := []float64{0.1, 1, 10, 100}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] < want[i]*0.999 || ticks[i] > want[i]*1.001 {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestScaleLogMapping(t *testing.T) {
	s := newScale(1, 100, 0, 100, true)
	if got := s.at(10); got < 49 || got > 51 {
		t.Fatalf("log midpoint = %v, want ~50", got)
	}
	lin := newScale(0, 10, 0, 100, false)
	if lin.at(5) != 50 {
		t.Fatalf("linear midpoint = %v", lin.at(5))
	}
}
