package plot

import (
	"fmt"
	"strings"
)

// This file assembles self-contained HTML report pages: inline SVG charts
// and preformatted tables under headed sections, with a few lines of inline
// CSS and no external resources — one file that opens anywhere, in the same
// spirit as the SVG figures.

// VLine is a labeled vertical marker on a line chart — the alert-timeline
// annotation (rule firings and resolutions over a windowed rate series).
type VLine struct {
	X     float64
	Label string
	Color string // defaults to #aa3377
}

// vlines renders the chart's vertical markers: a dashed line at each X with
// the label rotated alongside it.
func (c *LineChart) vlines(cv *svgCanvas, sx scale, py0, py1 float64) {
	for _, v := range c.VLines {
		color := v.Color
		if color == "" {
			color = "#aa3377"
		}
		x := sx.at(v.X)
		fmt.Fprintf(&cv.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.2" stroke-dasharray="4,3"/>`+"\n",
			x, py0, x, py1, color)
		if v.Label != "" {
			fmt.Fprintf(&cv.b, `<text x="%.1f" y="%.1f" font-size="9" font-family="sans-serif" fill="%s" transform="rotate(-90 %.1f %.1f)">%s</text>`+"\n",
				x-3, py1+4, color, x-3, py1+4, escape(v.Label))
		}
	}
}

// HTMLPage accumulates sections of a self-contained report page.
type HTMLPage struct {
	title    string
	sections []string
}

// NewHTMLPage starts a page with the given title.
func NewHTMLPage(title string) *HTMLPage {
	return &HTMLPage{title: title}
}

// AddSVG appends a section holding an inline SVG chart.
func (p *HTMLPage) AddSVG(heading, svg string) {
	p.sections = append(p.sections,
		fmt.Sprintf("<section>\n<h2>%s</h2>\n%s</section>\n", escape(heading), svg))
}

// AddPre appends a section holding preformatted text (an ASCII table).
func (p *HTMLPage) AddPre(heading, text string) {
	p.sections = append(p.sections,
		fmt.Sprintf("<section>\n<h2>%s</h2>\n<pre>%s</pre>\n</section>\n",
			escape(heading), escape(text)))
}

// String renders the complete HTML document.
func (p *HTMLPage) String() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", escape(p.title))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 24px auto; max-width: 960px; color: #222; }
h1 { font-size: 20px; } h2 { font-size: 15px; margin: 28px 0 8px; }
pre { background: #f6f6f6; padding: 10px; overflow-x: auto; font-size: 12px; }
section { margin-bottom: 12px; }
</style>
`)
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", escape(p.title))
	for _, s := range p.sections {
		b.WriteString(s)
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}
