// Package plot renders the experiment results in the paper's two figure
// shapes — multi-series line charts (Figures 2 and 5) and stacked bar
// charts of phase decompositions (Figures 3, 4, 6, 7) — as self-contained
// SVG documents and as ASCII charts for terminals. No external
// dependencies; coordinates are computed directly.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line in a line chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// LineChart describes a Figure-2/5-style chart.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
	// VLines are labeled vertical markers (SVG only) — alert firings on a
	// telemetry timeline.
	VLines []VLine
}

// StackedBars describes a Figure-3/4/6/7-style chart: for each category
// (x value) a bar split into named segments.
type StackedBars struct {
	Title    string
	XLabel   string
	YLabel   string
	Labels   []string    // one per bar
	Segments []string    // segment names, bottom to top
	Values   [][]float64 // Values[bar][segment]
}

// palette holds the SVG series/segment colors.
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44",
	"#66ccee", "#aa3377", "#bbbbbb", "#222222",
}

// asciiMarks distinguish line-chart series in terminals.
var asciiMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

func colorOf(i int) string { return palette[i%len(palette)] }

// scale maps data values to pixel coordinates, optionally through log10.
type scale struct {
	lo, hi   float64
	plo, phi float64
	log      bool
}

func newScale(lo, hi, plo, phi float64, log bool) scale {
	if log {
		if lo <= 0 {
			lo = 1e-9
		}
		lo, hi = math.Log10(lo), math.Log10(hi)
	}
	if hi == lo {
		hi = lo + 1
	}
	return scale{lo: lo, hi: hi, plo: plo, phi: phi, log: log}
}

func (s scale) at(v float64) float64 {
	if s.log {
		if v <= 0 {
			v = 1e-9
		}
		v = math.Log10(v)
	}
	return s.plo + (v-s.lo)/(s.hi-s.lo)*(s.phi-s.plo)
}

// bounds computes the data range of all series.
func (c *LineChart) bounds() (xmin, xmax, ymin, ymax float64) {
	first := true
	for _, s := range c.Series {
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if !c.LogY {
		ymin = math.Min(ymin, 0)
	}
	return
}

// niceTicks returns ~n round tick values spanning [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return []float64{lo, hi}
	}
	span := hi - lo
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	for _, m := range []float64{1, 2, 5, 10} {
		step = m * mag
		if span/step <= float64(n) {
			break
		}
	}
	var ticks []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// logTicks returns decade ticks covering [lo, hi].
func logTicks(lo, hi float64) []float64 {
	if lo <= 0 {
		lo = 1e-9
	}
	var ticks []float64
	for e := math.Floor(math.Log10(lo)); e <= math.Ceil(math.Log10(hi)); e++ {
		ticks = append(ticks, math.Pow(10, e))
	}
	return ticks
}

func trimNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

// sortedCopy returns series sorted by name for deterministic rendering.
func sortedCopy(in []Series) []Series {
	out := append([]Series(nil), in...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ASCII renders the line chart as a width×height character grid with axis
// labels and a legend.
func (c *LineChart) ASCII(width, height int) string {
	if width < 30 {
		width = 30
	}
	if height < 8 {
		height = 8
	}
	if len(c.Series) == 0 {
		return "(empty chart)\n"
	}
	xmin, xmax, ymin, ymax := c.bounds()
	sx := newScale(xmin, xmax, 0, float64(width-1), c.LogX)
	sy := newScale(ymin, ymax, float64(height-1), 0, c.LogY)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := asciiMarks[si%len(asciiMarks)]
		// Connect consecutive points with interpolated marks.
		for i := 0; i+1 < len(s.Xs); i++ {
			x0, y0 := sx.at(s.Xs[i]), sy.at(s.Ys[i])
			x1, y1 := sx.at(s.Xs[i+1]), sy.at(s.Ys[i+1])
			steps := int(math.Max(math.Abs(x1-x0), math.Abs(y1-y0))) + 1
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				col := int(math.Round(x0 + (x1-x0)*f))
				row := int(math.Round(y0 + (y1-y0)*f))
				if row >= 0 && row < height && col >= 0 && col < width {
					grid[row][col] = mark
				}
			}
		}
		if len(s.Xs) == 1 {
			col := int(math.Round(sx.at(s.Xs[0])))
			row := int(math.Round(sy.at(s.Ys[0])))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	topLabel := trimNum(ymax)
	botLabel := trimNum(ymin)
	lw := len(topLabel)
	if len(botLabel) > lw {
		lw = len(botLabel)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", lw)
		if r == 0 {
			label = fmt.Sprintf("%*s", lw, topLabel)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", lw, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", lw), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", lw), width-len(trimNum(xmax)),
		trimNum(xmin)+" "+c.XLabel, trimNum(xmax))
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", asciiMarks[si%len(asciiMarks)], s.Name))
	}
	b.WriteString("legend: " + strings.Join(legend, "  ") + "\n")
	return b.String()
}
