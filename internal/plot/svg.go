package plot

import (
	"fmt"
	"strings"
)

// svgCanvas accumulates SVG elements.
type svgCanvas struct {
	w, h int
	b    strings.Builder
}

func newCanvas(w, h int) *svgCanvas {
	c := &svgCanvas{w: w, h: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, color string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, color, width)
}

func (c *svgCanvas) polyline(pts []float64, color string, width float64) {
	var sb strings.Builder
	for i := 0; i+1 < len(pts); i += 2 {
		fmt.Fprintf(&sb, "%.1f,%.1f ", pts[i], pts[i+1])
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		strings.TrimSpace(sb.String()), color, width)
}

func (c *svgCanvas) circle(x, y, r float64, color string) {
	fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
}

func (c *svgCanvas) rect(x, y, w, h float64, color string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="white" stroke-width="0.5"/>`+"\n",
		x, y, w, h, color)
}

func (c *svgCanvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

func (c *svgCanvas) String() string { return c.b.String() + "</svg>\n" }

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// chart layout constants.
const (
	marginLeft   = 64.0
	marginRight  = 150.0
	marginTop    = 36.0
	marginBottom = 48.0
)

// SVG renders the line chart as a self-contained SVG document.
func (c *LineChart) SVG(width, height int) string {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	cv := newCanvas(width, height)
	if len(c.Series) == 0 {
		cv.text(float64(width)/2, float64(height)/2, 14, "middle", "(empty chart)")
		return cv.String()
	}
	xmin, xmax, ymin, ymax := c.bounds()
	px0, px1 := marginLeft, float64(width)-marginRight
	py0, py1 := float64(height)-marginBottom, marginTop
	sx := newScale(xmin, xmax, px0, px1, c.LogX)
	sy := newScale(ymin, ymax, py0, py1, c.LogY)

	// Axes.
	cv.line(px0, py0, px1, py0, "#333", 1.2)
	cv.line(px0, py0, px0, py1, "#333", 1.2)
	cv.text(float64(width)/2, 18, 13, "middle", c.Title)
	cv.text((px0+px1)/2, float64(height)-12, 11, "middle", c.XLabel)
	cv.text(14, (py0+py1)/2, 11, "middle", c.YLabel)

	xticks := niceTicks(xmin, xmax, 6)
	if c.LogX {
		xticks = logTicks(xmin, xmax)
	}
	for _, tv := range xticks {
		x := sx.at(tv)
		cv.line(x, py0, x, py0+4, "#333", 1)
		cv.text(x, py0+16, 10, "middle", trimNum(tv))
	}
	yticks := niceTicks(ymin, ymax, 6)
	if c.LogY {
		yticks = logTicks(ymin, ymax)
	}
	for _, tv := range yticks {
		y := sy.at(tv)
		cv.line(px0-4, y, px0, y, "#333", 1)
		cv.line(px0, y, px1, y, "#eee", 0.7)
		cv.text(px0-7, y+3, 10, "end", trimNum(tv))
	}

	for si, s := range c.Series {
		color := colorOf(si)
		var pts []float64
		for i := range s.Xs {
			x, y := sx.at(s.Xs[i]), sy.at(s.Ys[i])
			pts = append(pts, x, y)
			cv.circle(x, y, 2.5, color)
		}
		cv.polyline(pts, color, 1.8)
		ly := marginTop + float64(si)*16
		cv.line(px1+10, ly, px1+30, ly, color, 2)
		cv.text(px1+34, ly+4, 11, "start", s.Name)
	}
	c.vlines(cv, sx, py0, py1)
	return cv.String()
}

// SVG renders the stacked bar chart as a self-contained SVG document.
func (sb *StackedBars) SVG(width, height int) string {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	cv := newCanvas(width, height)
	if len(sb.Labels) == 0 || len(sb.Segments) == 0 {
		cv.text(float64(width)/2, float64(height)/2, 14, "middle", "(empty chart)")
		return cv.String()
	}
	var ymax float64
	for _, vals := range sb.Values {
		var total float64
		for _, v := range vals {
			total += v
		}
		if total > ymax {
			ymax = total
		}
	}
	px0, px1 := marginLeft, float64(width)-marginRight
	py0, py1 := float64(height)-marginBottom, marginTop
	sy := newScale(0, ymax, py0, py1, false)

	cv.line(px0, py0, px1, py0, "#333", 1.2)
	cv.line(px0, py0, px0, py1, "#333", 1.2)
	cv.text(float64(width)/2, 18, 13, "middle", sb.Title)
	cv.text((px0+px1)/2, float64(height)-12, 11, "middle", sb.XLabel)
	cv.text(14, (py0+py1)/2, 11, "middle", sb.YLabel)
	for _, tv := range niceTicks(0, ymax, 6) {
		y := sy.at(tv)
		cv.line(px0-4, y, px0, y, "#333", 1)
		cv.line(px0, y, px1, y, "#eee", 0.7)
		cv.text(px0-7, y+3, 10, "end", trimNum(tv))
	}

	span := px1 - px0
	slot := span / float64(len(sb.Labels))
	barW := slot * 0.62
	for bi, vals := range sb.Values {
		x := px0 + slot*float64(bi) + (slot-barW)/2
		base := 0.0
		for si, v := range vals {
			if v <= 0 {
				continue
			}
			yTop := sy.at(base + v)
			yBot := sy.at(base)
			cv.rect(x, yTop, barW, yBot-yTop, colorOf(si))
			base += v
		}
		cv.text(x+barW/2, py0+16, 10, "middle", sb.Labels[bi])
	}
	for si, name := range sb.Segments {
		ly := marginTop + float64(si)*16
		cv.rect(px1+10, ly-8, 12, 12, colorOf(si))
		cv.text(px1+28, ly+2, 11, "start", name)
	}
	return cv.String()
}

// ASCII renders the stacked bars as rows of proportional segment counts.
func (sb *StackedBars) ASCII(width int) string {
	if width < 40 {
		width = 40
	}
	var ymax float64
	for _, vals := range sb.Values {
		var total float64
		for _, v := range vals {
			total += v
		}
		if total > ymax {
			ymax = total
		}
	}
	if ymax == 0 {
		return "(empty chart)\n"
	}
	labelW := 0
	for _, l := range sb.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if sb.Title != "" {
		b.WriteString(sb.Title + "\n")
	}
	barSpan := float64(width - labelW - 12)
	for bi, vals := range sb.Values {
		fmt.Fprintf(&b, "%-*s |", labelW, sb.Labels[bi])
		var total float64
		for si, v := range vals {
			cells := int(v / ymax * barSpan)
			b.WriteString(strings.Repeat(string(segRune(si, sb.Segments)), cells))
			total += v
		}
		fmt.Fprintf(&b, "| %.2f\n", total)
	}
	var legend []string
	for si, name := range sb.Segments {
		legend = append(legend, fmt.Sprintf("%c=%s", segRune(si, sb.Segments), name))
	}
	b.WriteString("legend: " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

// segRune picks a distinguishing character for a segment, preferring the
// segment name's initial when unique.
func segRune(i int, names []string) rune {
	if i < len(names) && len(names[i]) > 0 {
		r := rune(names[i][0])
		unique := true
		for j, n := range names {
			if j != i && len(n) > 0 && rune(n[0]) == r {
				unique = false
				break
			}
		}
		if unique {
			return r
		}
	}
	return rune(asciiMarks[i%len(asciiMarks)])
}
