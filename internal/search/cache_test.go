package search

import (
	"sync"
	"testing"

	"s3asim/internal/stats"
)

func testSpec() Spec {
	s := DefaultSpec()
	s.NumQueries = 3
	s.NumFragments = 8
	s.MinResults = 10
	s.MaxResults = 20
	return s
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache()
	spec := testSpec()
	wl1 := c.Get(spec)
	wl2 := c.Get(spec)
	if wl1 != wl2 {
		t.Fatal("same spec returned distinct workloads")
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss 1 hit", s)
	}
	other := spec
	other.Seed++
	if c.Get(other) == wl1 {
		t.Fatal("different seed shared a workload")
	}
	if s := c.Stats(); s.Misses != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 misses 1 hit", s)
	}
}

func TestCacheMatchesGenerate(t *testing.T) {
	spec := testSpec()
	cached := NewCache().Get(spec)
	fresh := Generate(spec)
	if cached.TotalBytes != fresh.TotalBytes || len(cached.Queries) != len(fresh.Queries) {
		t.Fatal("cached workload differs from direct generation")
	}
	for q := range fresh.Queries {
		if len(cached.Queries[q].Results) != len(fresh.Queries[q].Results) {
			t.Fatalf("query %d result count differs", q)
		}
		for i, r := range fresh.Queries[q].Results {
			if cached.Queries[q].Results[i] != r {
				t.Fatalf("query %d result %d differs", q, i)
			}
		}
	}
}

// TestCacheConcurrentGet drives the cache from many goroutines (run under
// -race): each distinct spec must be generated exactly once and every
// caller must observe the same *Workload.
func TestCacheConcurrentGet(t *testing.T) {
	c := NewCache()
	specs := make([]Spec, 4)
	for i := range specs {
		specs[i] = testSpec()
		specs[i].Seed += int64(i)
	}
	const workers = 16
	got := make([][]*Workload, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]*Workload, len(specs))
			for i, s := range specs {
				got[w][i] = c.Get(s)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range specs {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d spec %d got a different workload", w, i)
			}
		}
	}
	s := c.Stats()
	if s.Misses != uint64(len(specs)) {
		t.Fatalf("misses = %d, want %d (one generation per spec)", s.Misses, len(specs))
	}
	if s.Hits != uint64(workers*len(specs))-uint64(len(specs)) {
		t.Fatalf("hits = %d, want %d", s.Hits, workers*len(specs)-len(specs))
	}
}

// TestSpecKeyContent checks the key covers every generation-relevant field,
// including histogram contents (not pointer identity).
func TestSpecKeyContent(t *testing.T) {
	base := testSpec()
	if base.Key() != base.Key() {
		t.Fatal("key not stable")
	}
	// Equal-content histograms under different pointers must collide.
	alias := base
	alias.QueryHist = stats.Uniform(6, 400)
	same := base
	same.QueryHist = stats.Uniform(6, 400)
	if alias.Key() != same.Key() {
		t.Fatal("equal-content histograms produced different keys")
	}
	mutate := []func(*Spec){
		func(s *Spec) { s.NumQueries++ },
		func(s *Spec) { s.NumFragments++ },
		func(s *Spec) { s.MinResults++ },
		func(s *Spec) { s.MaxResults++ },
		func(s *Spec) { s.MinResultSize++ },
		func(s *Spec) { s.Seed++ },
		func(s *Spec) { s.QueryHist = stats.Uniform(1, 2) },
		func(s *Spec) { s.DBSeqHist = stats.Uniform(1, 2) },
	}
	for i, m := range mutate {
		s := base
		m(&s)
		if s.Key() == base.Key() {
			t.Fatalf("mutation %d did not change the key", i)
		}
	}
}
