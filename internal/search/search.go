// Package search implements S3aSim's workload model: pseudo-random
// generation of per-query result sets (count, score, size, owning database
// fragment), the layout of results in the output file (descending score
// order within a per-query region, exactly as the merged master order), and
// the compute-time model (constant startup plus time linear in result bytes,
// divided by the configurable compute speed — paper §3).
//
// Generation is driven entirely by substream seeds derived from
// (seed, query, result), so the workload — and therefore the output file —
// is identical for every process count and every I/O strategy, the property
// the paper states in §3.3.
package search

import (
	"sort"

	"s3asim/internal/des"
	"s3asim/internal/stats"
)

// Spec describes a workload in the paper's own input-parameter vocabulary.
type Spec struct {
	NumQueries   int
	NumFragments int
	// QueryHist and DBSeqHist are the box histograms of query and database
	// sequence sizes (§3: "a box histogram of input query sizes, a box
	// histogram of database sequence sizes").
	QueryHist *stats.BoxHistogram
	DBSeqHist *stats.BoxHistogram
	// MinResults/MaxResults bound the result count per query over the
	// entire database.
	MinResults int
	MaxResults int
	// MinResultSize is the minimum result size per query result.
	MinResultSize int64
	Seed          int64
}

// DefaultSpec reproduces the paper's §3.3 configuration: 20 queries, 128
// fragments, NT-like size histograms, 1000–2000 results per query, about
// 208 MB of output in total.
func DefaultSpec() Spec {
	return Spec{
		NumQueries:    20,
		NumFragments:  128,
		QueryHist:     stats.NTLike(),
		DBSeqHist:     stats.NTLike(),
		MinResults:    1000,
		MaxResults:    2000,
		MinResultSize: 1024,
		// Seed is chosen so the generated output totals ≈208 MB (paper
		// §3.3) with a realistic heavy tail: the largest (query, fragment)
		// task produces ≈5 MB of results, giving the large compute-time
		// variance the paper's §4 discussion depends on.
		Seed: 2007029,
	}
}

// Result is one alignment hit: its query, per-query generation index,
// owning database fragment, score, output size, and final file offset.
type Result struct {
	Query    int
	Index    int
	Fragment int
	Score    float64
	Size     int64
	Offset   int64 // absolute offset in the output file
}

// Query is a generated query with its result set laid out in file order.
type Query struct {
	Length int64
	Region int64 // file offset where this query's results begin
	Bytes  int64 // total result bytes for this query
	// Results is sorted by descending score — the order the master's merge
	// produces and the order results appear in the file.
	Results []Result
	// byFragment[f] lists indices into Results for fragment f's hits,
	// preserving score order.
	byFragment [][]int
}

// Workload is a fully generated input: every query, every result, and the
// complete output-file layout.
type Workload struct {
	Spec       Spec
	Queries    []Query
	TotalBytes int64
}

// Generate builds the workload for spec. The same spec always yields the
// same workload.
func Generate(spec Spec) *Workload {
	if spec.NumQueries < 1 || spec.NumFragments < 1 {
		panic("search: spec needs at least one query and one fragment")
	}
	if spec.MaxResults < spec.MinResults {
		panic("search: MaxResults < MinResults")
	}
	if spec.MinResultSize < 1 {
		spec.MinResultSize = 1
	}
	w := &Workload{Spec: spec}
	var region int64
	for q := 0; q < spec.NumQueries; q++ {
		qrng := stats.SubRand(spec.Seed, int64(q))
		qry := Query{
			Length: spec.QueryHist.Sample(qrng),
			Region: region,
		}
		count := spec.MinResults
		if spec.MaxResults > spec.MinResults {
			count += qrng.Intn(spec.MaxResults - spec.MinResults + 1)
		}
		qry.Results = make([]Result, count)
		for j := 0; j < count; j++ {
			rrng := stats.SubRand(spec.Seed, int64(q), int64(j))
			dbLen := spec.DBSeqHist.Sample(rrng)
			// Result size: up to three times the maximum of the input query
			// and the matching database sequence (§3), floored at the
			// minimum result size.
			maxSize := 3 * max64(qry.Length, dbLen)
			if maxSize < spec.MinResultSize {
				maxSize = spec.MinResultSize
			}
			size := spec.MinResultSize
			if maxSize > spec.MinResultSize {
				size += rrng.Int63n(maxSize - spec.MinResultSize + 1)
			}
			qry.Results[j] = Result{
				Query:    q,
				Index:    j,
				Fragment: rrng.Intn(spec.NumFragments),
				Score:    rrng.Float64(),
				Size:     size,
			}
		}
		// File order: descending score, index as deterministic tiebreak.
		sort.Slice(qry.Results, func(a, b int) bool {
			ra, rb := qry.Results[a], qry.Results[b]
			if ra.Score != rb.Score {
				return ra.Score > rb.Score
			}
			return ra.Index < rb.Index
		})
		off := region
		qry.byFragment = make([][]int, spec.NumFragments)
		for i := range qry.Results {
			qry.Results[i].Offset = off
			off += qry.Results[i].Size
			f := qry.Results[i].Fragment
			qry.byFragment[f] = append(qry.byFragment[f], i)
		}
		qry.Bytes = off - region
		region = off
		w.Queries = append(w.Queries, qry)
	}
	w.TotalBytes = region
	return w
}

// TaskResults returns the results produced by searching query q against
// fragment f, in score (file) order. The returned slice aliases the
// workload; callers must not mutate it.
func (w *Workload) TaskResults(q, f int) []Result {
	qry := &w.Queries[q]
	idx := qry.byFragment[f]
	out := make([]Result, len(idx))
	for i, k := range idx {
		out[i] = qry.Results[k]
	}
	return out
}

// TaskCount returns the number of results for task (q, f).
func (w *Workload) TaskCount(q, f int) int {
	return len(w.Queries[q].byFragment[f])
}

// TaskBytes returns the total result bytes for task (q, f).
func (w *Workload) TaskBytes(q, f int) int64 {
	var n int64
	for _, k := range w.Queries[q].byFragment[f] {
		n += w.Queries[q].Results[k].Size
	}
	return n
}

// ResultData deterministically materializes the bytes of one result, for
// data-capture verification runs. The content depends only on
// (seed, query, index).
func (w *Workload) ResultData(q, index int, size int64) []byte {
	rng := stats.SubRand(w.Spec.Seed^0x5EED, int64(q), int64(index))
	b := make([]byte, size)
	rng.Read(b)
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ComputeModel is the paper's search-time model: a constant startup cost
// per (query, fragment) task plus time linear in the bytes of results the
// task produces; the linear part is divided by the compute-speed factor
// (§4's "compute speed" sweep models faster hardware or better algorithms).
type ComputeModel struct {
	Startup des.Time // fixed cost per task, independent of compute speed
	PerByte des.Time // time per result byte at compute speed 1
}

// DefaultComputeModel is calibrated so a 64-process run at compute speed 1
// spends about 6 s of compute per worker, ~54 s at speed 0.1 and ~0.85 s at
// speed 25.6 — the figures the paper reports in §4.
func DefaultComputeModel() ComputeModel {
	return ComputeModel{
		Startup: 15750 * des.Microsecond,
		PerByte: 1610 * des.Nanosecond, // 1.61 µs per result byte
	}
}

// TaskTime returns the modeled search time for a task producing the given
// result bytes at the given compute speed (speed ≤ 0 treated as 1).
func (m ComputeModel) TaskTime(resultBytes int64, speed float64) des.Time {
	if speed <= 0 {
		speed = 1
	}
	lin := float64(m.PerByte) * float64(resultBytes) / speed
	return m.Startup + des.Time(lin)
}
