package search

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"s3asim/internal/stats"
)

// Key returns a deterministic content key for the spec: every scalar field,
// the seed, and the full bin sets of both histograms. Two specs with equal
// keys generate identical workloads, so the key is a safe memoization index
// even across specs holding different (but equal-content) histogram
// pointers.
func (s Spec) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "q=%d f=%d r=%d..%d min=%d seed=%d",
		s.NumQueries, s.NumFragments, s.MinResults, s.MaxResults,
		s.MinResultSize, s.Seed)
	writeHist := func(name string, h *stats.BoxHistogram) {
		fmt.Fprintf(&b, " %s=", name)
		if h == nil {
			b.WriteString("nil")
			return
		}
		for _, bin := range h.Bins() {
			// Weight is hashed bit-exactly; %g could collide distinct values.
			fmt.Fprintf(&b, "[%d,%d,%x]", bin.Min, bin.Max,
				math.Float64bits(bin.Weight))
		}
	}
	writeHist("qh", s.QueryHist)
	writeHist("dh", s.DBSeqHist)
	return b.String()
}

// CacheStats counts cache outcomes. Misses is the number of distinct specs
// generated; Hits the number of Get calls served from memory.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// cacheEntry is a single memoized workload. The once gate makes each
// distinct spec generate exactly once even under concurrent Get.
type cacheEntry struct {
	once sync.Once
	wl   *Workload
}

// Cache memoizes generated workloads by Spec.Key. It is safe for concurrent
// use: a sweep running cells on many goroutines generates each distinct
// workload once and shares the result.
//
// Sharing is sound because a generated Workload is immutable: Generate
// materializes every query, result, offset and per-fragment index up front,
// TaskResults returns a fresh copy, and ResultData derives bytes from a
// per-call RNG — no lazy buffers, no hidden mutation.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	stats   CacheStats
}

// NewCache returns an empty workload cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Get returns the workload for spec, generating it on first use. Concurrent
// Gets for the same spec block until the single generation completes and
// then share one *Workload.
func (c *Cache) Get(spec Spec) *Workload {
	k := spec.Key()
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		e = &cacheEntry{}
		c.entries[k] = e
		c.stats.Misses++
	} else {
		c.stats.Hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.wl = Generate(spec) })
	return e.wl
}

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
