package search

import "testing"

func TestGeneratePanicsOnBadSpec(t *testing.T) {
	mustPanic := func(name string, mutate func(*Spec)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		spec := smallSpec()
		mutate(&spec)
		Generate(spec)
	}
	mustPanic("no queries", func(s *Spec) { s.NumQueries = 0 })
	mustPanic("no fragments", func(s *Spec) { s.NumFragments = 0 })
	mustPanic("inverted result bounds", func(s *Spec) { s.MaxResults = s.MinResults - 1 })
}

func TestMinResultSizeFloored(t *testing.T) {
	spec := smallSpec()
	spec.MinResultSize = 0 // floored to 1
	w := Generate(spec)
	for _, qry := range w.Queries {
		for _, r := range qry.Results {
			if r.Size < 1 {
				t.Fatalf("result size %d", r.Size)
			}
		}
	}
}

func TestFixedResultCount(t *testing.T) {
	spec := smallSpec()
	spec.MinResults = 25
	spec.MaxResults = 25
	w := Generate(spec)
	for q, qry := range w.Queries {
		if len(qry.Results) != 25 {
			t.Fatalf("query %d results = %d, want exactly 25", q, len(qry.Results))
		}
	}
}

func TestResultDataDistinctAcrossIndexes(t *testing.T) {
	w := Generate(smallSpec())
	a := w.ResultData(0, 0, 64)
	b := w.ResultData(0, 1, 64)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 16 { // random bytes agree ~1/256 of the time
		t.Fatalf("result data for different indexes looks identical (%d/64 equal)", same)
	}
}
