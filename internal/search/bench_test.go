package search

import "testing"

// BenchmarkGenerateDefault measures full paper-workload generation
// (20 queries × ~1500 results with layout).
func BenchmarkGenerateDefault(b *testing.B) {
	spec := DefaultSpec()
	for i := 0; i < b.N; i++ {
		Generate(spec)
	}
}

// BenchmarkTaskLookup measures the per-task accessors the engine calls on
// the hot path.
func BenchmarkTaskLookup(b *testing.B) {
	w := Generate(DefaultSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % w.Spec.NumQueries
		f := i % w.Spec.NumFragments
		_ = w.TaskBytes(q, f)
		_ = w.TaskCount(q, f)
	}
}
