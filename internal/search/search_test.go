package search

import (
	"bytes"
	"testing"
	"testing/quick"

	"s3asim/internal/des"
	"s3asim/internal/stats"
)

// smallSpec is a fast, fully checkable workload.
func smallSpec() Spec {
	return Spec{
		NumQueries:    4,
		NumFragments:  8,
		QueryHist:     stats.Uniform(50, 500),
		DBSeqHist:     stats.Uniform(50, 2000),
		MinResults:    20,
		MaxResults:    40,
		MinResultSize: 16,
		Seed:          11,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallSpec())
	b := Generate(smallSpec())
	if a.TotalBytes != b.TotalBytes || len(a.Queries) != len(b.Queries) {
		t.Fatal("generation is not deterministic")
	}
	for q := range a.Queries {
		if len(a.Queries[q].Results) != len(b.Queries[q].Results) {
			t.Fatalf("query %d result counts differ", q)
		}
		for i := range a.Queries[q].Results {
			if a.Queries[q].Results[i] != b.Queries[q].Results[i] {
				t.Fatalf("query %d result %d differs", q, i)
			}
		}
	}
}

func TestResultCountsInRange(t *testing.T) {
	w := Generate(smallSpec())
	for q, qry := range w.Queries {
		n := len(qry.Results)
		if n < 20 || n > 40 {
			t.Fatalf("query %d has %d results, want [20,40]", q, n)
		}
	}
}

func TestResultSizesRespectModel(t *testing.T) {
	spec := smallSpec()
	w := Generate(spec)
	for q, qry := range w.Queries {
		for i, r := range qry.Results {
			if r.Size < spec.MinResultSize {
				t.Fatalf("query %d result %d size %d below minimum", q, i, r.Size)
			}
			// Upper bound: 3 × max(queryLen, dbMax).
			limit := 3 * max64(qry.Length, spec.DBSeqHist.Max())
			if limit < spec.MinResultSize {
				limit = spec.MinResultSize
			}
			if r.Size > limit {
				t.Fatalf("query %d result %d size %d above 3×max bound %d", q, i, r.Size, limit)
			}
		}
	}
}

func TestFileLayoutContiguousAndScoreOrdered(t *testing.T) {
	w := Generate(smallSpec())
	var expect int64
	for q, qry := range w.Queries {
		if qry.Region != expect {
			t.Fatalf("query %d region %d, want %d", q, qry.Region, expect)
		}
		off := qry.Region
		prevScore := 2.0
		for i, r := range qry.Results {
			if r.Offset != off {
				t.Fatalf("query %d result %d offset %d, want %d (dense layout)", q, i, r.Offset, off)
			}
			if r.Score > prevScore {
				t.Fatalf("query %d results not in descending score order", q)
			}
			prevScore = r.Score
			off += r.Size
		}
		if off-qry.Region != qry.Bytes {
			t.Fatalf("query %d Bytes %d, want %d", q, qry.Bytes, off-qry.Region)
		}
		expect = off
	}
	if w.TotalBytes != expect {
		t.Fatalf("TotalBytes %d, want %d", w.TotalBytes, expect)
	}
}

func TestTaskResultsPartitionQuery(t *testing.T) {
	w := Generate(smallSpec())
	for q, qry := range w.Queries {
		seen := map[int64]bool{}
		total := 0
		var bytes int64
		for f := 0; f < w.Spec.NumFragments; f++ {
			rs := w.TaskResults(q, f)
			prev := 2.0
			for _, r := range rs {
				if r.Fragment != f || r.Query != q {
					t.Fatalf("task (%d,%d) returned foreign result %+v", q, f, r)
				}
				if seen[r.Offset] {
					t.Fatalf("result offset %d appears in two fragments", r.Offset)
				}
				seen[r.Offset] = true
				if r.Score > prev {
					t.Fatalf("task results not score-ordered")
				}
				prev = r.Score
				total++
			}
			if got := w.TaskBytes(q, f); got != sumSizes(rs) {
				t.Fatalf("TaskBytes(%d,%d) = %d, want %d", q, f, got, sumSizes(rs))
			}
			bytes += w.TaskBytes(q, f)
		}
		if total != len(qry.Results) {
			t.Fatalf("query %d fragments hold %d results, want %d", q, total, len(qry.Results))
		}
		if bytes != qry.Bytes {
			t.Fatalf("query %d fragment bytes %d, want %d", q, bytes, qry.Bytes)
		}
	}
}

func sumSizes(rs []Result) int64 {
	var n int64
	for _, r := range rs {
		n += r.Size
	}
	return n
}

func TestWorkloadIndependentOfNothingButSpec(t *testing.T) {
	// Changing the seed must change the workload; everything else equal.
	a := Generate(smallSpec())
	spec := smallSpec()
	spec.Seed++
	b := Generate(spec)
	if a.TotalBytes == b.TotalBytes {
		t.Fatal("different seeds produced identical total bytes (suspicious)")
	}
}

func TestDefaultSpecMatchesPaper(t *testing.T) {
	spec := DefaultSpec()
	if spec.NumQueries != 20 || spec.NumFragments != 128 {
		t.Fatalf("spec = %+v, want 20 queries over 128 fragments (paper §3.3)", spec)
	}
	if spec.MinResults != 1000 || spec.MaxResults != 2000 {
		t.Fatal("result count should be 1000–2000 per query (paper §3.3)")
	}
	w := Generate(spec)
	mb := float64(w.TotalBytes) / 1e6
	if mb < 190 || mb < 0 || mb > 225 {
		t.Fatalf("default workload = %.1f MB, want ≈208 MB (paper §3.3)", mb)
	}
	// ~20 queries at NT-like sizes ⇒ tens of KB of query data.
	var qbytes int64
	for _, q := range w.Queries {
		qbytes += q.Length
	}
	if qbytes < 10_000 || qbytes > 2_000_000 {
		t.Fatalf("total query bytes = %d, want roughly 86 KB scale", qbytes)
	}
}

func TestResultDataDeterministicAndSized(t *testing.T) {
	w := Generate(smallSpec())
	r := w.Queries[0].Results[0]
	d1 := w.ResultData(0, r.Index, r.Size)
	d2 := w.ResultData(0, r.Index, r.Size)
	if int64(len(d1)) != r.Size {
		t.Fatalf("data length %d, want %d", len(d1), r.Size)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("ResultData not deterministic")
	}
	other := w.ResultData(1, r.Index, r.Size)
	if bytes.Equal(d1, other) {
		t.Fatal("different queries produced identical data")
	}
}

func TestComputeModelScaling(t *testing.T) {
	m := DefaultComputeModel()
	base := m.TaskTime(100_000, 1)
	fast := m.TaskTime(100_000, 10)
	slow := m.TaskTime(100_000, 0.1)
	if fast >= base || slow <= base {
		t.Fatalf("speed scaling wrong: slow=%v base=%v fast=%v", slow, base, fast)
	}
	// Startup must not scale with speed.
	if m.TaskTime(0, 100) != m.Startup {
		t.Fatalf("zero-byte task = %v, want startup %v", m.TaskTime(0, 100), m.Startup)
	}
	// Linear part scales inversely.
	linBase := base - m.Startup
	linFast := fast - m.Startup
	if linFast < linBase/11 || linFast > linBase/9 {
		t.Fatalf("linear part at speed 10 = %v, want ≈ %v", linFast, linBase/10)
	}
	if m.TaskTime(100, 0) != m.TaskTime(100, 1) {
		t.Fatal("speed 0 should behave as speed 1")
	}
}

func TestComputeModelPaperCalibration(t *testing.T) {
	// Paper §4: with 64 processes the per-worker compute totals are ≈54 s at
	// speed 0.1 and slightly more than 0.8 s at speed 25.6.
	w := Generate(DefaultSpec())
	m := DefaultComputeModel()
	workers := 63.0
	perWorker := func(speed float64) float64 {
		var total des.Time
		for q := 0; q < w.Spec.NumQueries; q++ {
			for f := 0; f < w.Spec.NumFragments; f++ {
				total += m.TaskTime(w.TaskBytes(q, f), speed)
			}
		}
		return total.Seconds() / workers
	}
	slow := perWorker(0.1)
	fast := perWorker(25.6)
	if slow < 40 || slow > 70 {
		t.Fatalf("compute/worker at speed 0.1 = %.1f s, want ≈54 s", slow)
	}
	if fast < 0.5 || fast > 1.5 {
		t.Fatalf("compute/worker at speed 25.6 = %.2f s, want ≈0.85 s", fast)
	}
}

// Property: for any valid small spec, the per-fragment partition of each
// query is complete and non-overlapping, and offsets are dense.
func TestPropertyPartitionComplete(t *testing.T) {
	f := func(seed int64, nfRaw, nqRaw uint8) bool {
		spec := smallSpec()
		spec.Seed = seed
		spec.NumFragments = int(nfRaw%16) + 1
		spec.NumQueries = int(nqRaw%4) + 1
		w := Generate(spec)
		for q := range w.Queries {
			count := 0
			var b int64
			for fr := 0; fr < spec.NumFragments; fr++ {
				rs := w.TaskResults(q, fr)
				count += len(rs)
				b += sumSizes(rs)
			}
			if count != len(w.Queries[q].Results) || b != w.Queries[q].Bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkloadGolden(t *testing.T) {
	// Pin the default workload's aggregate shape so unintentional changes
	// to generation (which would silently invalidate every calibrated
	// experiment) fail loudly. Update deliberately if the spec changes.
	w := Generate(DefaultSpec())
	if w.TotalBytes != 206848530 {
		t.Fatalf("TotalBytes = %d (calibration golden: 206848530)", w.TotalBytes)
	}
	var results int
	var maxTask int64
	for q := range w.Queries {
		results += len(w.Queries[q].Results)
		for f := 0; f < w.Spec.NumFragments; f++ {
			if b := w.TaskBytes(q, f); b > maxTask {
				maxTask = b
			}
		}
	}
	if results != 28793 {
		t.Fatalf("results = %d (golden: 28793)", results)
	}
	if maxTask != 3221566 {
		t.Fatalf("max task = %d (golden: 3221566)", maxTask)
	}
}
