package stats

import (
	"fmt"
	"strings"
)

// Table builds aligned plain-text and CSV renderings of small result
// tables; the benchmark harness uses it to print the rows each paper figure
// reports.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with fmt.Sprint, except
// float64 which is rendered with two decimals.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.2f", x)
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
