// Package stats provides the statistical substrate for S3aSim: box
// histograms (the paper's mechanism for describing query and database
// sequence size distributions), deterministic seeded random streams,
// online summary statistics, and plain-text/CSV table rendering.
package stats

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Bin is one box of a box histogram: values are drawn uniformly from
// [Min, Max] with relative probability Weight.
type Bin struct {
	Min, Max int64
	Weight   float64
}

// BoxHistogram is a piecewise-uniform distribution over int64 values, the
// "box histogram" input S3aSim exposes for query sizes and database
// sequence sizes.
type BoxHistogram struct {
	bins []Bin
	cum  []float64 // cumulative weights, cum[len-1] == total
}

// NewBoxHistogram validates bins and builds a sampler. Bins need not be
// sorted or contiguous; weights are relative and need not sum to 1.
func NewBoxHistogram(bins []Bin) (*BoxHistogram, error) {
	if len(bins) == 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	h := &BoxHistogram{bins: append([]Bin(nil), bins...), cum: make([]float64, len(bins))}
	total := 0.0
	for i, b := range h.bins {
		if b.Min > b.Max {
			return nil, fmt.Errorf("stats: bin %d has min %d > max %d", i, b.Min, b.Max)
		}
		if b.Weight <= 0 {
			return nil, fmt.Errorf("stats: bin %d has non-positive weight %g", i, b.Weight)
		}
		total += b.Weight
		h.cum[i] = total
	}
	return h, nil
}

// MustBoxHistogram is NewBoxHistogram that panics on invalid input; for
// package-level histogram constants.
func MustBoxHistogram(bins []Bin) *BoxHistogram {
	h, err := NewBoxHistogram(bins)
	if err != nil {
		panic(err)
	}
	return h
}

// Sample draws one value: a bin chosen by weight, then uniform within it.
func (h *BoxHistogram) Sample(rng *rand.Rand) int64 {
	total := h.cum[len(h.cum)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(h.cum, x)
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	b := h.bins[i]
	if b.Min == b.Max {
		return b.Min
	}
	return b.Min + rng.Int63n(b.Max-b.Min+1)
}

// Mean returns the analytic expected value.
func (h *BoxHistogram) Mean() float64 {
	total := h.cum[len(h.cum)-1]
	m := 0.0
	for _, b := range h.bins {
		m += b.Weight / total * (float64(b.Min) + float64(b.Max)) / 2
	}
	return m
}

// Min returns the smallest producible value.
func (h *BoxHistogram) Min() int64 {
	m := h.bins[0].Min
	for _, b := range h.bins[1:] {
		if b.Min < m {
			m = b.Min
		}
	}
	return m
}

// Max returns the largest producible value.
func (h *BoxHistogram) Max() int64 {
	m := h.bins[0].Max
	for _, b := range h.bins[1:] {
		if b.Max > m {
			m = b.Max
		}
	}
	return m
}

// Bins returns a copy of the bin set.
func (h *BoxHistogram) Bins() []Bin { return append([]Bin(nil), h.bins...) }

// NTLike returns a histogram approximating the NCBI NT database statistics
// the paper reports in §3.3: minimum sequence length 6 bytes, maximum
// slightly over 43 MB, mean ≈ 4401 bytes. The mass sits in short sequences
// with a very thin multi-megabyte tail.
func NTLike() *BoxHistogram {
	return MustBoxHistogram([]Bin{
		{Min: 6, Max: 400, Weight: 0.26},
		{Min: 401, Max: 1000, Weight: 0.35},
		{Min: 1001, Max: 4000, Weight: 0.25},
		{Min: 4001, Max: 16000, Weight: 0.1195},
		{Min: 16001, Max: 120000, Weight: 0.02},
		{Min: 120001, Max: 2_000_000, Weight: 0.0005},
		{Min: 2_000_001, Max: 45_090_000, Weight: 0.00002},
	})
}

// Uniform returns a single-bin histogram over [min, max].
func Uniform(min, max int64) *BoxHistogram {
	return MustBoxHistogram([]Bin{{Min: min, Max: max, Weight: 1}})
}

// Constant returns a histogram that always produces v.
func Constant(v int64) *BoxHistogram { return Uniform(v, v) }
