package stats

import "sort"

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified. Returns 0 for
// an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles computes several quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
