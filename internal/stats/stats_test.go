package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBoxHistogramValidation(t *testing.T) {
	if _, err := NewBoxHistogram(nil); err == nil {
		t.Fatal("empty histogram should fail")
	}
	if _, err := NewBoxHistogram([]Bin{{Min: 10, Max: 5, Weight: 1}}); err == nil {
		t.Fatal("min>max should fail")
	}
	if _, err := NewBoxHistogram([]Bin{{Min: 1, Max: 5, Weight: 0}}); err == nil {
		t.Fatal("zero weight should fail")
	}
	if _, err := NewBoxHistogram([]Bin{{Min: 1, Max: 5, Weight: -2}}); err == nil {
		t.Fatal("negative weight should fail")
	}
}

func TestBoxHistogramSampleBounds(t *testing.T) {
	h := MustBoxHistogram([]Bin{
		{Min: 10, Max: 20, Weight: 1},
		{Min: 100, Max: 200, Weight: 3},
	})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := h.Sample(rng)
		if (v < 10 || v > 20) && (v < 100 || v > 200) {
			t.Fatalf("sample %d outside all bins", v)
		}
	}
}

func TestBoxHistogramWeighting(t *testing.T) {
	h := MustBoxHistogram([]Bin{
		{Min: 0, Max: 0, Weight: 1},
		{Min: 1, Max: 1, Weight: 3},
	})
	rng := rand.New(rand.NewSource(7))
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if h.Sample(rng) == 1 {
			ones++
		}
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("bin-1 fraction = %.3f, want ≈0.75", frac)
	}
}

func TestBoxHistogramMeanAnalytic(t *testing.T) {
	h := MustBoxHistogram([]Bin{
		{Min: 0, Max: 10, Weight: 1},
		{Min: 20, Max: 40, Weight: 1},
	})
	want := (5.0 + 30.0) / 2
	if got := h.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestNTLikeMatchesPaperStats(t *testing.T) {
	h := NTLike()
	if h.Min() != 6 {
		t.Fatalf("min = %d, want 6 (paper §3.3)", h.Min())
	}
	if h.Max() < 43_000_000 || h.Max() > 46_000_000 {
		t.Fatalf("max = %d, want slightly over 43 MB", h.Max())
	}
	mean := h.Mean()
	if mean < 3500 || mean > 5300 {
		t.Fatalf("analytic mean = %.0f, want near 4401 (paper §3.3)", mean)
	}
	// Empirical mean should agree with the analytic mean.
	rng := rand.New(rand.NewSource(42))
	var o Online
	for i := 0; i < 300000; i++ {
		o.Add(float64(h.Sample(rng)))
	}
	if rel := math.Abs(o.Mean()-mean) / mean; rel > 0.15 {
		t.Fatalf("empirical mean %.0f deviates %.0f%% from analytic %.0f",
			o.Mean(), rel*100, mean)
	}
}

func TestUniformAndConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := Uniform(5, 9)
	for i := 0; i < 1000; i++ {
		if v := u.Sample(rng); v < 5 || v > 9 {
			t.Fatalf("uniform sample %d out of [5,9]", v)
		}
	}
	c := Constant(123)
	for i := 0; i < 10; i++ {
		if v := c.Sample(rng); v != 123 {
			t.Fatalf("constant sample = %d, want 123", v)
		}
	}
}

func TestPropertyHistogramSampleInBounds(t *testing.T) {
	f := func(seed int64, minRaw, spanRaw uint16) bool {
		min := int64(minRaw)
		max := min + int64(spanRaw)
		h := Uniform(min, max)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			v := h.Sample(rng)
			if v < min || v > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	// Stable.
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed not deterministic")
	}
	// Order-sensitive.
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Fatal("DeriveSeed ignores dimension order")
	}
	// Dimension-count-sensitive.
	if DeriveSeed(1, 2) == DeriveSeed(1, 2, 0) {
		t.Fatal("DeriveSeed ignores dimension count")
	}
	// No collisions across a modest grid (sanity, not crypto).
	seen := map[int64][2]int64{}
	for q := int64(0); q < 200; q++ {
		for r := int64(0); r < 50; r++ {
			s := DeriveSeed(99, q, r)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d)", prev[0], prev[1], q, r)
			}
			seen[s] = [2]int64{q, r}
		}
	}
}

func TestSubRandIndependence(t *testing.T) {
	a := SubRand(7, 1)
	b := SubRand(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams look correlated: %d/100 equal draws", same)
	}
}

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Min() != 0 || o.Max() != 0 || o.Std() != 0 {
		t.Fatal("empty accumulator should be all zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", o.Mean())
	}
	if math.Abs(o.Std()-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", o.Std())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", o.Min(), o.Max())
	}
	if math.Abs(o.Sum()-40) > 1e-9 {
		t.Fatalf("Sum = %v, want 40", o.Sum())
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	f := func(xs, ys []float64) bool {
		ok := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 }
		var seq, a, b Online
		for _, x := range xs {
			if !ok(x) {
				return true
			}
			seq.Add(x)
			a.Add(x)
		}
		for _, y := range ys {
			if !ok(y) {
				return true
			}
			seq.Add(y)
			b.Add(y)
		}
		a.Merge(&b)
		if a.N() != seq.N() {
			return false
		}
		if seq.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(seq.Mean()))
		return math.Abs(a.Mean()-seq.Mean()) < tol &&
			math.Abs(a.Var()-seq.Var()) < 1e-6*(1+seq.Var()) &&
			a.Min() == seq.Min() && a.Max() == seq.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "procs", "time")
	tb.AddRowf(2, 450.25)
	tb.AddRowf(96, 40.2)
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "procs") ||
		!strings.Contains(s, "450.25") || !strings.Contains(s, "40.20") {
		t.Fatalf("unexpected rendering:\n%s", s)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), s)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	csv := tb.CSV()
	want := "a,b\n\"has,comma\",\"has\"\"quote\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if !strings.Contains(tb.CSV(), "x,,") {
		t.Fatalf("short row not padded: %q", tb.CSV())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("max = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v, want 2", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.75); got != 7.5 {
		t.Fatalf("interp = %v, want 7.5", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilesBatch(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := Quantiles(xs, 0.5, 0.9, 1)
	if got[0] != 5.5 || got[2] != 10 {
		t.Fatalf("quantiles = %v", got)
	}
	if got[1] < 9 || got[1] > 10 {
		t.Fatalf("p90 = %v", got[1])
	}
	empty := Quantiles(nil, 0.5, 0.9)
	if empty[0] != 0 || empty[1] != 0 {
		t.Fatalf("empty quantiles = %v", empty)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		min, max := float64(raw[0]), float64(raw[0])
		for i, r := range raw {
			xs[i] = float64(r)
			if xs[i] < min {
				min = xs[i]
			}
			if xs[i] > max {
				max = xs[i]
			}
		}
		prev := min - 1
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := Quantile(xs, q)
			if v < prev || v < min || v > max {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
