package stats

import "math"

// Online accumulates count, mean, variance (Welford), minimum, and maximum
// of a stream of float64 observations without storing them.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the observation count.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 if empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the population variance (0 if fewer than 2 observations).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// Std returns the population standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 if empty).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest observation (0 if empty).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// Sum returns n times the mean.
func (o *Online) Sum() float64 { return o.mean * float64(o.n) }

// Merge folds another accumulator into this one (parallel Welford merge).
func (o *Online) Merge(b *Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	n := o.n + b.n
	delta := b.mean - o.mean
	mean := o.mean + delta*float64(b.n)/float64(n)
	m2 := o.m2 + b.m2 + delta*delta*float64(o.n)*float64(b.n)/float64(n)
	if b.min < o.min {
		o.min = b.min
	}
	if b.max > o.max {
		o.max = b.max
	}
	o.n, o.mean, o.m2 = n, mean, m2
}
