package stats

import "math/rand"

// splitmix64 advances and mixes a 64-bit state; it is the standard seeding
// finalizer from Vigna's splitmix64, used here to derive well-separated
// deterministic substreams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed mixes a root seed with a sequence of dimension indices (for
// example query number, result number) into an independent substream seed.
// The result depends on every dimension and on their order, and is stable
// across process counts and strategies — the property the paper relies on
// ("the results are always identical since they are pseudo-randomly
// generated").
func DeriveSeed(root int64, dims ...int64) int64 {
	x := splitmix64(uint64(root))
	for _, d := range dims {
		x = splitmix64(x ^ splitmix64(uint64(d)+0xD1B54A32D192ED03))
	}
	return int64(x)
}

// SubRand returns a rand.Rand for the substream identified by (root, dims).
func SubRand(root int64, dims ...int64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(root, dims...)))
}
