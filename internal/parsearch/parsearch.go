// Package parsearch is a real-execution miniature of a database-segmented
// parallel sequence-search tool — the class of application (mpiBLAST,
// pioBLAST) whose I/O behaviour S3aSim simulates. It partitions a database
// into fragments, searches every query against every fragment with the real
// aligner in internal/align using a pool of worker goroutines, merges
// results by score, and writes a deterministic output file using either the
// master-writing or the worker-writing strategy:
//
//   - MasterWrites: workers send formatted results to the coordinator,
//     which writes each query's block contiguously (MW).
//   - WorkerWrites: workers keep their results; the coordinator merges
//     scores only and sends back offset lists; workers position-write
//     their own lines (WW, the paper's proposed strategy family).
//
// Both strategies produce byte-identical output files, mirroring the
// simulator's cross-strategy file-image invariant.
package parsearch

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"s3asim/internal/align"
	"s3asim/internal/bio"
)

// Strategy selects who writes the output file.
type Strategy int

const (
	// MasterWrites gathers full results at the coordinator (MW).
	MasterWrites Strategy = iota
	// WorkerWrites sends workers offset lists and lets them write (WW).
	WorkerWrites
)

// String names the strategy.
func (s Strategy) String() string {
	if s == MasterWrites {
		return "master-writes"
	}
	return "worker-writes"
}

// Config tunes an engine run.
type Config struct {
	Workers   int // searcher goroutines (≥1)
	Fragments int // database segments (≥1)
	K         int // seed length
	Search    align.SearchOptions
	Strategy  Strategy
}

// DefaultConfig returns a small, deterministic configuration.
func DefaultConfig() Config {
	return Config{
		Workers:   4,
		Fragments: 8,
		K:         8,
		Search:    align.DefaultSearchOptions(),
	}
}

// Summary reports a run's outcome.
type Summary struct {
	Queries     int
	Tasks       int
	Hits        int
	OutputBytes int64
	Index       time.Duration // fragment indexing wall time
	Wall        time.Duration // end-to-end wall time
}

// task is one (query, fragment) search unit.
type task struct {
	q, f int
}

// taskResult carries a completed task's formatted hits.
type taskResult struct {
	task     task
	workerID int
	lines    []string // formatted hits, already score-ordered within the task
	keys     []hitKey // merge keys parallel to lines
}

// hitKey orders hits within a query deterministically across fragments.
type hitKey struct {
	score   int
	subject int // global sequence index
	sstart  int
}

func (a hitKey) less(b hitKey) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.subject != b.subject {
		return a.subject < b.subject
	}
	return a.sstart < b.sstart
}

// writeOrder instructs a worker to write its retained lines for a query at
// the given absolute offsets (WorkerWrites strategy).
type writeOrder struct {
	q       int
	offsets []int64 // parallel to the worker's retained lines for q
}

// Run searches queries against db and writes results to outPath.
func Run(cfg Config, db *bio.Database, queries []bio.Sequence, outPath string) (*Summary, error) {
	if cfg.Workers < 1 || cfg.Fragments < 1 {
		return nil, fmt.Errorf("parsearch: need at least one worker and one fragment")
	}
	if cfg.K < 4 {
		cfg.K = 8
	}
	start := time.Now()
	frags := db.Partition(cfg.Fragments)

	// Index fragments in parallel (database segmentation setup).
	idxStart := time.Now()
	indexes := make([]*align.Index, len(frags))
	var iwg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, fr := range frags {
		i, fr := i, fr
		iwg.Add(1)
		sem <- struct{}{}
		go func() {
			defer iwg.Done()
			indexes[i] = align.NewIndex(db.FragmentSeqs(fr), cfg.K)
			<-sem
		}()
	}
	iwg.Wait()
	indexDur := time.Since(idxStart)

	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	defer out.Close()

	tasks := make(chan task, cfg.Workers)
	results := make(chan taskResult, cfg.Workers)
	orders := make([]chan writeOrder, cfg.Workers)
	for w := range orders {
		orders[w] = make(chan writeOrder, len(queries))
	}
	retained := make([]map[int][]string, cfg.Workers) // worker -> query -> lines
	for w := range retained {
		retained[w] = map[int][]string{}
	}

	var wwg sync.WaitGroup
	var writeErr error
	var writeErrOnce sync.Once
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			taskCh, orderCh := tasks, orders[w]
			for taskCh != nil || orderCh != nil {
				select {
				case t, ok := <-taskCh:
					if !ok {
						taskCh = nil
						continue
					}
					res := searchTask(cfg, indexes[t.f], frags[t.f], queries[t.q], t)
					res.workerID = w
					if cfg.Strategy == WorkerWrites {
						retained[w][t.q] = append(retained[w][t.q], res.lines...)
					}
					results <- res
				case o, ok := <-orderCh:
					if !ok {
						orderCh = nil
						continue
					}
					lines := retained[w][o.q]
					for i, off := range o.offsets {
						if _, err := out.WriteAt([]byte(lines[i]), off); err != nil {
							writeErrOnce.Do(func() { writeErr = err })
						}
					}
					delete(retained[w], o.q)
				}
			}
		}()
	}

	// Coordinator: distribute tasks, merge per query, flush in query order.
	sum := &Summary{Queries: len(queries), Tasks: len(queries) * len(frags)}
	coordErr := make(chan error, 1)
	go func() {
		coordErr <- coordinate(cfg, queries, frags, tasks, results, orders, out, sum)
	}()

	if err := <-coordErr; err != nil {
		return nil, err
	}
	wwg.Wait()
	if writeErr != nil {
		return nil, writeErr
	}
	if err := out.Sync(); err != nil {
		return nil, err
	}
	sum.Index = indexDur
	sum.Wall = time.Since(start)
	return sum, nil
}

// searchTask runs one (query, fragment) search and formats its hits.
func searchTask(cfg Config, ix *align.Index, fr bio.Fragment, query bio.Sequence, t task) taskResult {
	hits := ix.Search(query.Data, cfg.Search)
	res := taskResult{task: t}
	for _, h := range hits {
		global := fr.Start + h.SubjectIndex
		res.lines = append(res.lines, fmt.Sprintf(
			"%s\t%s\t%d\t%.3f\t%d\t%d\t%d\t%d\n",
			query.ID, h.SubjectID, h.Score, h.Identity,
			h.QStart, h.QEnd, h.SStart, h.SEnd))
		res.keys = append(res.keys, hitKey{score: h.Score, subject: global, sstart: h.SStart})
	}
	return res
}

// mergedHit pairs a merge key with its producing worker and line.
type mergedHit struct {
	key    hitKey
	line   string
	worker int
	seq    int // arrival order within (worker, query): index into retained lines
}

// coordinate is the master loop: hand out tasks, merge completed ones, and
// flush fully-processed queries in order using the configured strategy.
func coordinate(cfg Config, queries []bio.Sequence, frags []bio.Fragment,
	tasks chan<- task, results <-chan taskResult, orders []chan writeOrder,
	out *os.File, sum *Summary) error {

	defer func() {
		for _, ch := range orders {
			close(ch)
		}
	}()

	// Feed tasks in deterministic order from a separate goroutine so the
	// coordinator can keep draining results.
	go func() {
		for q := range queries {
			for f := range frags {
				tasks <- task{q: q, f: f}
			}
		}
		close(tasks)
	}()

	remaining := make([]int, len(queries))
	merged := make([][]mergedHit, len(queries))
	for q := range remaining {
		remaining[q] = len(frags)
	}
	flushed := 0
	var offset int64

	flushReady := func() error {
		for flushed < len(queries) && remaining[flushed] == 0 {
			q := flushed
			hits := merged[q]
			sort.Slice(hits, func(i, j int) bool {
				if hits[i].key != hits[j].key {
					return hits[i].key.less(hits[j].key)
				}
				return hits[i].line < hits[j].line
			})
			if cfg.Strategy == MasterWrites {
				var block strings.Builder
				for _, h := range hits {
					block.WriteString(h.line)
				}
				if _, err := out.WriteAt([]byte(block.String()), offset); err != nil {
					return err
				}
				offset += int64(block.Len())
			} else {
				// Assign per-hit offsets in merged order; group by worker,
				// preserving each worker's retained-line order.
				perWorker := make([][]int64, len(orders))
				type slot struct {
					seq int
					off int64
				}
				slots := make([][]slot, len(orders))
				for _, h := range hits {
					slots[h.worker] = append(slots[h.worker], slot{seq: h.seq, off: offset})
					offset += int64(len(h.line))
				}
				for w := range slots {
					if len(slots[w]) == 0 {
						continue
					}
					bySeq := append([]slot(nil), slots[w]...)
					sort.Slice(bySeq, func(i, j int) bool { return bySeq[i].seq < bySeq[j].seq })
					offs := make([]int64, len(bySeq))
					for i, s := range bySeq {
						offs[i] = s.off
					}
					perWorker[w] = offs
				}
				for w, offs := range perWorker {
					if offs != nil { // workers with no hits retain nothing
						orders[w] <- writeOrder{q: q, offsets: offs}
					}
				}
			}
			sum.Hits += len(hits)
			flushed++
		}
		return nil
	}

	total := len(queries) * len(frags)
	workerSeq := make([]map[int]int, len(orders)) // worker -> query -> next seq
	for w := range workerSeq {
		workerSeq[w] = map[int]int{}
	}
	for done := 0; done < total; done++ {
		res := <-results
		q := res.task.q
		w := res.workerID
		for i := range res.lines {
			mh := mergedHit{key: res.keys[i], line: res.lines[i], worker: w}
			mh.seq = workerSeq[w][q]
			workerSeq[w][q]++
			merged[q] = append(merged[q], mh)
		}
		remaining[q]--
		if err := flushReady(); err != nil {
			return err
		}
	}
	sum.OutputBytes = offset
	return nil
}
