package parsearch

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"s3asim/internal/bio"
	"s3asim/internal/stats"
)

// testData builds a deterministic database and query set where every query
// is a (possibly mutated) slice of some database sequence, guaranteeing
// hits.
func testData(t *testing.T) (*bio.Database, []bio.Sequence) {
	t.Helper()
	db := bio.Generate(bio.GenSpec{
		NumSeqs:  60,
		SizeHist: stats.Uniform(200, 800),
		Seed:     42,
	})
	var queries []bio.Sequence
	for i := 0; i < 6; i++ {
		src := db.Seqs[i*7]
		n := 60
		q := append([]byte(nil), src.Data[10:10+n]...)
		if i%2 == 1 {
			q[n/2] = 'A' // point mutation on odd queries
		}
		queries = append(queries, bio.Sequence{
			ID:   "query" + strconv.Itoa(i),
			Data: q,
		})
	}
	return db, queries
}

func runStrategy(t *testing.T, s Strategy, workers int) (string, *Summary) {
	t.Helper()
	db, queries := testData(t)
	cfg := DefaultConfig()
	cfg.Strategy = s
	cfg.Workers = workers
	path := filepath.Join(t.TempDir(), "out.tsv")
	sum, err := Run(cfg, db, queries, path)
	if err != nil {
		t.Fatalf("%v: %v", s, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != sum.OutputBytes {
		t.Fatalf("%v: file %d bytes, summary says %d", s, len(data), sum.OutputBytes)
	}
	return string(data), sum
}

func TestStrategiesProduceIdenticalFiles(t *testing.T) {
	mw, mwSum := runStrategy(t, MasterWrites, 4)
	ww, wwSum := runStrategy(t, WorkerWrites, 4)
	if mw != ww {
		t.Fatalf("output differs between strategies:\nMW:\n%s\nWW:\n%s", mw, ww)
	}
	if mwSum.Hits != wwSum.Hits || mwSum.Hits == 0 {
		t.Fatalf("hits: MW %d, WW %d", mwSum.Hits, wwSum.Hits)
	}
}

func TestOutputStableAcrossWorkerCounts(t *testing.T) {
	base, _ := runStrategy(t, WorkerWrites, 1)
	for _, workers := range []int{2, 3, 8} {
		got, _ := runStrategy(t, WorkerWrites, workers)
		if got != base {
			t.Fatalf("output differs at %d workers", workers)
		}
	}
}

func TestOutputFormatAndOrdering(t *testing.T) {
	out, sum := runStrategy(t, MasterWrites, 4)
	sc := bufio.NewScanner(strings.NewReader(out))
	lines := 0
	lastQuery := ""
	lastScore := 1 << 30
	seenQueries := map[string]bool{}
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 8 {
			t.Fatalf("line %d has %d fields: %q", lines, len(fields), sc.Text())
		}
		score, err := strconv.Atoi(fields[2])
		if err != nil {
			t.Fatalf("bad score %q", fields[2])
		}
		if fields[0] != lastQuery {
			// New query block: queries appear in input order, once.
			if seenQueries[fields[0]] {
				t.Fatalf("query %s appears in two blocks", fields[0])
			}
			seenQueries[fields[0]] = true
			lastQuery = fields[0]
			lastScore = 1 << 30
		}
		if score > lastScore {
			t.Fatalf("scores not descending within query %s", fields[0])
		}
		lastScore = score
		lines++
	}
	if lines != sum.Hits {
		t.Fatalf("lines %d != hits %d", lines, sum.Hits)
	}
	if len(seenQueries) == 0 {
		t.Fatal("no hits at all")
	}
}

func TestEveryQueryFindsItsSource(t *testing.T) {
	out, _ := runStrategy(t, MasterWrites, 4)
	db, queries := testData(t)
	for i, q := range queries {
		want := db.Seqs[i*7].ID
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, q.ID+"\t"+want+"\t") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %s did not hit its source sequence %s", q.ID, want)
		}
	}
}

func TestEmptyQuerySet(t *testing.T) {
	db, _ := testData(t)
	path := filepath.Join(t.TempDir(), "out.tsv")
	sum, err := Run(DefaultConfig(), db, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Hits != 0 || sum.OutputBytes != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestQueryWithNoHits(t *testing.T) {
	db, _ := testData(t)
	queries := []bio.Sequence{{ID: "alien", Data: bytes.Repeat([]byte("ACGT"), 20)}}
	// Replace the alphabet so no 8-mer matches: all-N query.
	queries[0].Data = bytes.Repeat([]byte{'N'}, 80)
	path := filepath.Join(t.TempDir(), "out.tsv")
	cfg := DefaultConfig()
	cfg.Strategy = WorkerWrites
	sum, err := Run(cfg, db, queries, path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Hits != 0 {
		t.Fatalf("hits = %d for unmatched query", sum.Hits)
	}
}

func TestConfigValidation(t *testing.T) {
	db, queries := testData(t)
	cfg := DefaultConfig()
	cfg.Workers = 0
	if _, err := Run(cfg, db, queries, filepath.Join(t.TempDir(), "o")); err == nil {
		t.Fatal("zero workers accepted")
	}
	cfg = DefaultConfig()
	cfg.Fragments = 0
	if _, err := Run(cfg, db, queries, filepath.Join(t.TempDir(), "o")); err == nil {
		t.Fatal("zero fragments accepted")
	}
}

func TestMoreFragmentsThanSequences(t *testing.T) {
	db := bio.Generate(bio.GenSpec{NumSeqs: 3, SizeHist: stats.Uniform(300, 400), Seed: 1})
	queries := []bio.Sequence{{ID: "q", Data: db.Seqs[0].Data[:50]}}
	cfg := DefaultConfig()
	cfg.Fragments = 10
	path := filepath.Join(t.TempDir(), "out.tsv")
	sum, err := Run(cfg, db, queries, path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Hits == 0 {
		t.Fatal("no hits with oversubscribed fragments")
	}
}
