package experiments

import (
	"fmt"

	"s3asim/internal/core"
	"s3asim/internal/stats"
)

// xLabel names a sweep's x axis.
func (sr *SweepResult) xLabel() string {
	if sr.Kind == "speed" {
		return "compute-speed"
	}
	return "processes"
}

// OverallTable renders the overall-execution-time series for one sync mode:
// one row per x, one column per strategy — the data of Figure 2 (process
// sweep) or Figure 5 (speed sweep).
func (sr *SweepResult) OverallTable(sync bool) *stats.Table {
	label := "no-sync"
	if sync {
		label = "sync"
	}
	fig := "Figure 2"
	if sr.Kind == "speed" {
		fig = "Figure 5"
	}
	headers := []string{sr.xLabel()}
	for _, s := range sr.Strat {
		headers = append(headers, s.String()+" (s)")
	}
	t := stats.NewTable(fmt.Sprintf("%s — overall execution time, %s", fig, label), headers...)
	for _, x := range sr.Xs {
		row := []any{trimFloat(x)}
		for _, s := range sr.Strat {
			row = append(row, sr.Cell(s, sync, x).Overall.Seconds())
		}
		t.AddRowf(row...)
	}
	return t
}

// PhaseTable renders the per-phase worker decomposition for one strategy and
// sync mode across the sweep — one panel of Figures 3/4 (process sweep) or
// Figures 6/7 (speed sweep).
func (sr *SweepResult) PhaseTable(s core.Strategy, sync bool) *stats.Table {
	label := "no-sync"
	if sync {
		label = "sync"
	}
	fig := map[string]map[core.Strategy]string{
		"procs": {
			core.MW: "Figure 3", core.WWPosix: "Figure 3",
			core.WWList: "Figure 4", core.WWColl: "Figure 4",
		},
		"speed": {
			core.MW: "Figure 6", core.WWPosix: "Figure 6",
			core.WWList: "Figure 7", core.WWColl: "Figure 7",
		},
	}[sr.Kind][s]
	headers := []string{sr.xLabel()}
	for p := 0; p < int(core.NumPhases); p++ {
		headers = append(headers, core.Phase(p).String())
	}
	headers = append(headers, "total")
	t := stats.NewTable(
		fmt.Sprintf("%s — %s, %s, worker process phase times (s)", fig, s, label),
		headers...)
	for _, x := range sr.Xs {
		cell := sr.Cell(s, sync, x)
		row := []any{trimFloat(x)}
		var total float64
		for p := 0; p < int(core.NumPhases); p++ {
			sec := cell.WorkerPhases[p].Seconds()
			total += sec
			row = append(row, sec)
		}
		row = append(row, total)
		t.AddRowf(row...)
	}
	return t
}

// Ratio reports how much slower strategy s is than the reference strategy at
// x, as the paper quotes it: 0.33 means "WW-List outperforms s by 33%".
func (sr *SweepResult) Ratio(ref, s core.Strategy, sync bool, x float64) float64 {
	base := sr.Cell(ref, sync, x)
	other := sr.Cell(s, sync, x)
	if base == nil || other == nil || base.Overall == 0 {
		return 0
	}
	return float64(other.Overall)/float64(base.Overall) - 1
}

// HeadlineTable renders the §4 headline comparisons at the given x: the
// percentage by which WW-List outperforms every other strategy, in both sync
// modes. (Paper, 96 procs: 364%/33%/75% no-sync, 182%/37%/13% sync; compute
// speed 25.6: 592%/32%/98% no-sync, 444%/65%/58% sync.)
func (sr *SweepResult) HeadlineTable(x float64) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("§4 headline — WW-List advantage at %s=%s", sr.xLabel(), trimFloat(x)),
		"strategy", "no-sync (%)", "sync (%)")
	for _, s := range sr.Strat {
		if s == core.WWList {
			continue
		}
		t.AddRowf(s.String(),
			100*sr.Ratio(core.WWList, s, false, x),
			100*sr.Ratio(core.WWList, s, true, x))
	}
	return t
}

// Tables returns every table the sweep reproduces, in figure order.
func (sr *SweepResult) Tables() []*stats.Table {
	var out []*stats.Table
	for _, sync := range []bool{false, true} {
		out = append(out, sr.OverallTable(sync))
	}
	for _, s := range sr.Strat {
		for _, sync := range []bool{false, true} {
			out = append(out, sr.PhaseTable(s, sync))
		}
	}
	if len(sr.Xs) > 0 {
		out = append(out, sr.HeadlineTable(sr.Xs[len(sr.Xs)-1]))
	}
	return out
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
