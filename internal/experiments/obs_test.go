package experiments

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"s3asim/internal/core"
	"s3asim/internal/obs"
	"s3asim/internal/trace"
)

// cellSpool collects one tracer per (cell, rep) run. Safe for concurrent use
// by the sweep workers.
type cellSpool struct {
	mu      sync.Mutex
	tracers map[CellKey]map[int]*trace.Tracer
}

func newCellSpool() *cellSpool {
	return &cellSpool{tracers: map[CellKey]map[int]*trace.Tracer{}}
}

func (s *cellSpool) factory() func(key CellKey, rep int) obs.Sink {
	return func(key CellKey, rep int) obs.Sink {
		tr := trace.New()
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.tracers[key] == nil {
			s.tracers[key] = map[int]*trace.Tracer{}
		}
		s.tracers[key][rep] = tr
		return tr
	}
}

// events flattens the spool into a comparable map of per-run event slices.
func (s *cellSpool) events() map[CellKey]map[int][]trace.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[CellKey]map[int][]trace.Event{}
	for key, reps := range s.tracers {
		out[key] = map[int][]trace.Event{}
		for rep, tr := range reps {
			out[key][rep] = tr.Events()
		}
	}
	return out
}

// TestCellSinkParallelMatchesSequential is the per-cell determinism
// regression for the tentpole: a sweep with per-run tracers must produce the
// same SweepResult AND the same per-cell timelines at any parallelism —
// unlike Options.Base.Tracer, the factories do not force sequential runs.
func TestCellSinkParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) (*SweepResult, map[CellKey]map[int][]trace.Event) {
		opts := QuickOptions()
		opts.Procs = []int{2, 4}
		opts.Repetitions = 2
		opts.Strategies = []core.Strategy{core.WWList, core.MW}
		opts.Parallelism = parallelism
		spool := newCellSpool()
		opts.CellSink = spool.factory()
		sr, err := RunProcessSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		return stripPerf(sr), spool.events()
	}
	seqSR, seqTr := run(1)
	parSR, parTr := run(4)
	if !reflect.DeepEqual(seqSR, parSR) {
		t.Fatal("per-cell sinks broke sweep determinism")
	}
	if !reflect.DeepEqual(seqTr, parTr) {
		t.Fatal("per-cell timelines differ between sequential and parallel runs")
	}
	// Every (cell, rep) run produced a non-empty timeline.
	wantCells := len(seqSR.Cells)
	if len(seqTr) != wantCells {
		t.Fatalf("traced %d cells, sweep has %d", len(seqTr), wantCells)
	}
	for key, reps := range seqTr {
		if len(reps) != 2 {
			t.Fatalf("cell %+v traced %d reps, want 2", key, len(reps))
		}
		for rep, ev := range reps {
			if len(ev) == 0 {
				t.Fatalf("cell %+v rep %d has no events", key, rep)
			}
		}
	}
}

func TestCellMetricsAndSweepSnapshot(t *testing.T) {
	run := func(parallelism int) (*SweepResult, map[CellKey]obs.Snapshot) {
		opts := QuickOptions()
		opts.Procs = []int{2, 4}
		opts.Strategies = []core.Strategy{core.WWList}
		opts.Parallelism = parallelism
		var mu sync.Mutex
		regs := map[CellKey]*obs.Registry{}
		opts.CellMetrics = func(key CellKey, rep int) *obs.Registry {
			r := obs.NewRegistry()
			mu.Lock()
			regs[key] = r
			mu.Unlock()
			return r
		}
		sr, err := RunProcessSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		snaps := map[CellKey]obs.Snapshot{}
		mu.Lock()
		for key, r := range regs {
			snaps[key] = r.Snapshot()
		}
		mu.Unlock()
		return sr, snaps
	}
	sr, snaps := run(1)
	if sr.Metrics.Empty() {
		t.Fatal("SweepResult.Metrics empty")
	}
	// The sweep snapshot is the merge of every run: counters sum across cells.
	var total int64
	for key, s := range snaps {
		if s.Empty() {
			t.Fatalf("cell %+v registry never populated", key)
		}
		total += s.Counters["des.events"]
	}
	if got := sr.Metrics.Counters["des.events"]; got != total {
		t.Fatalf("sweep des.events = %d, cells sum to %d", got, total)
	}
	// Phase histogram observations: one per process per run.
	var procs int64
	for _, c := range sr.Cells {
		procs += int64(c.Key.X)
	}
	if h := sr.Metrics.Hists["phase.Compute"]; h.Count != procs {
		t.Fatalf("phase.Compute count = %d, want %d", h.Count, procs)
	}

	// And the merged sweep metrics are themselves deterministic.
	srPar, _ := run(4)
	if !reflect.DeepEqual(sr.Metrics, srPar.Metrics) {
		t.Fatal("sweep metrics differ between sequential and parallel runs")
	}
}

// TestCellFactoriesDoNotForceSequential pins the contract documented on
// Options: unlike Base.Tracer, per-cell factories leave Parallelism alone.
func TestCellFactoriesDoNotForceSequential(t *testing.T) {
	opts := QuickOptions()
	opts.Parallelism = 4
	opts.CellSink = func(CellKey, int) obs.Sink { return trace.New() }
	opts.CellMetrics = func(CellKey, int) *obs.Registry { return obs.NewRegistry() }
	if got := opts.parallelism(); got != 4 {
		t.Fatalf("parallelism = %d, want 4", got)
	}
	opts.Base.Tracer = trace.New()
	if got := opts.parallelism(); got != 1 {
		t.Fatalf("a shared tracer must still force sequential, got %d", got)
	}
}

func TestSweepPerfSelfProfile(t *testing.T) {
	opts := QuickOptions()
	opts.Procs = []int{2, 4}
	opts.Repetitions = 2
	opts.Strategies = []core.Strategy{core.WWList, core.MW}
	opts.Parallelism = 4
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := sr.Perf
	runs := len(sr.Cells) * 2
	if len(p.CellWall) != runs {
		t.Fatalf("CellWall has %d entries, want %d runs", len(p.CellWall), runs)
	}
	var sum time.Duration
	for i, w := range p.CellWall {
		if w <= 0 {
			t.Fatalf("CellWall[%d] = %v", i, w)
		}
		sum += w
	}
	if sum != p.CellTime {
		t.Fatalf("sum(CellWall) = %v, CellTime = %v", sum, p.CellTime)
	}
	if p.MaxConcurrent < 1 || p.MaxConcurrent > p.Parallelism {
		t.Fatalf("MaxConcurrent = %d with parallelism %d", p.MaxConcurrent, p.Parallelism)
	}
	if occ := p.Occupancy(); occ <= 0 || occ > 1+1e-9 {
		t.Fatalf("Occupancy = %g", occ)
	}
}
