package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/fault"
	"s3asim/internal/obs"
)

func mustRules(t *testing.T, specs ...string) []*obs.Rule {
	t.Helper()
	rules, err := obs.ParseRules(specs)
	if err != nil {
		t.Fatalf("ParseRules(%v): %v", specs, err)
	}
	return rules
}

// telemetryServeOpts is the shared smoke scenario: one strategy at a
// saturating load, with a mid-run PVFS degrade fault that spikes latency, a
// burn-rate rule over the SLO-violation counter, and the flight recorder.
func telemetryServeOpts(t *testing.T) ServeOptions {
	opts := QuickServeOptions()
	opts.Strategies = []core.Strategy{core.MW}
	opts.Loads = []float64{1}
	opts.Base.FaultPlan = &fault.Plan{Events: []fault.Event{{
		Kind: fault.Degrade, At: 3 * des.Second, For: 4 * des.Second,
		Rank: -1, Server: 0, Factor: 50,
	}}}
	opts.Telemetry = &obs.Telemetry{
		Window: 500 * des.Millisecond,
		Rules: mustRules(t,
			"slo-burn:burn(serve.slo_violations/serve.queries)>1:slo=0.5,fast=1s,slow=2s"),
	}
	return opts
}

// TestServeTelemetrySmoke is the end-to-end pipeline check: the degrade
// fault drives latency over the SLO, the burn-rate rule fires, the firing
// (and the fault injection itself) trigger flight dumps, and the artifacts
// land on disk under deterministic names.
func TestServeTelemetrySmoke(t *testing.T) {
	opts := telemetryServeOpts(t)
	opts.FlightDir = t.TempDir()
	sr, err := RunServeSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := sr.Cells[0]
	if c.Windows == nil || len(c.Windows.Windows) == 0 {
		t.Fatal("telemetry on but no windowed series")
	}
	// Conservation is enforced inside the sweep; re-check here so the test
	// fails loudly if the sweep ever stops checking.
	if err := c.Windows.Conserve(c.Metrics); err != nil {
		t.Fatalf("window conservation: %v", err)
	}
	fired := 0
	for _, a := range c.Alerts {
		if a.Fired {
			fired++
		}
	}
	if fired == 0 {
		t.Fatalf("burn-rate rule never fired; alerts: %+v", c.Alerts)
	}
	if len(c.Dumps) == 0 {
		t.Fatal("no flight dumps despite fault injection and alert firing")
	}
	if len(c.DumpFiles) != len(c.Dumps) {
		t.Fatalf("wrote %d dump files for %d dumps", len(c.DumpFiles), len(c.Dumps))
	}
	for _, f := range c.DumpFiles {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("dump artifact: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("dump artifact %s is empty", f)
		}
	}
	// The tables must render without panicking and include the telemetry
	// sections (percentiles + throughput + tenant + tail + alerts + series).
	tables := sr.Tables()
	if len(tables) < 6 {
		t.Fatalf("expected telemetry tables in the report, got %d tables", len(tables))
	}
	for _, tb := range tables {
		if tb == nil || tb.String() == "" {
			t.Fatal("nil or empty table in serve report")
		}
	}
	if at := sr.AlertTable(); at.String() == "" {
		t.Fatal("alert table did not render")
	}
}

// TestServeTelemetryParallelismInvariant pins the determinism contract:
// alert timelines, windowed series, and flight-dump artifact bytes are
// bit-identical at Parallelism 1 and 4.
func TestServeTelemetryParallelismInvariant(t *testing.T) {
	run := func(par int) (*ServeResult, string) {
		opts := telemetryServeOpts(t)
		opts.Parallelism = par
		opts.FlightDir = t.TempDir()
		sr, err := RunServeSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		return sr, opts.FlightDir
	}
	sr1, dir1 := run(1)
	sr4, dir4 := run(4)
	if len(sr1.Cells) != len(sr4.Cells) {
		t.Fatalf("cell count differs: %d vs %d", len(sr1.Cells), len(sr4.Cells))
	}
	for i := range sr1.Cells {
		a, b := sr1.Cells[i], sr4.Cells[i]
		if !reflect.DeepEqual(a.Alerts, b.Alerts) {
			t.Fatalf("cell %d alerts differ:\n%+v\nvs\n%+v", i, a.Alerts, b.Alerts)
		}
		if !reflect.DeepEqual(a.Windows, b.Windows) {
			t.Fatalf("cell %d windowed series differ", i)
		}
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Fatalf("cell %d snapshots differ", i)
		}
	}
	names1, names4 := dumpNames(t, dir1), dumpNames(t, dir4)
	if !reflect.DeepEqual(names1, names4) {
		t.Fatalf("dump artifact names differ: %v vs %v", names1, names4)
	}
	for _, name := range names1 {
		b1, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		b4, err := os.ReadFile(filepath.Join(dir4, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b4) {
			t.Fatalf("dump %s differs between parallelism 1 and 4", name)
		}
	}
}

func dumpNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestChaosTelemetryConservation runs the chaos suite with telemetry on:
// window sums must conserve in every repetition (checked inside the sweep,
// which errors otherwise), the crash-rate rule must fire exactly in the
// faulted cell, and the fault auto-trigger must produce dumps.
func TestChaosTelemetryConservation(t *testing.T) {
	opts := QuickChaosOptions()
	opts.Strategies = []core.Strategy{core.MW}
	opts.Crashes = []int{0, 2}
	opts.Telemetry = &obs.Telemetry{
		Window: 20 * des.Millisecond,
		Rules:  mustRules(t, "crash:rate(fault.crashes)>0"),
	}
	opts.FlightDir = t.TempDir()
	cr, err := RunChaosSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	base := cr.Cell(core.MW, 0)
	faulted := cr.Cell(core.MW, 2)
	if base == nil || faulted == nil {
		t.Fatal("missing cells")
	}
	if base.Windows == nil || faulted.Windows == nil {
		t.Fatal("telemetry on but no windowed series")
	}
	for _, a := range base.Alerts {
		if a.Fired {
			t.Fatalf("crash rule fired in the fault-free cell: %+v", a)
		}
	}
	fired := 0
	for _, a := range faulted.Alerts {
		if a.Fired {
			fired++
		}
	}
	if fired == 0 {
		t.Fatalf("crash rule never fired in the faulted cell; alerts: %+v", faulted.Alerts)
	}
	if faulted.Dumps == 0 || len(faulted.DumpFiles) == 0 {
		t.Fatal("no flight dumps from crash injections")
	}
	if tb := cr.AlertTable(); tb == nil || tb.String() == "" {
		t.Fatal("chaos alert table did not render")
	}
}
