package experiments

import (
	"reflect"
	"testing"

	"s3asim/internal/core"
	"s3asim/internal/fault"
)

// quickChaos shrinks the quick chaos suite further for the test matrix.
func quickChaos() ChaosOptions {
	opts := QuickChaosOptions()
	opts.Base.Workload.NumQueries = 3
	opts.Base.Workload.NumFragments = 8
	return opts
}

// TestChaosSweepCompletes runs the quick chaos suite end to end: every
// (strategy, crash count) cell must finish, crashes must actually land in
// the faulted columns, and re-execution must show up where workers write.
func TestChaosSweepCompletes(t *testing.T) {
	opts := quickChaos()
	cr, err := RunChaosSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Cells) != len(cr.Strat)*len(cr.Xs) {
		t.Fatalf("got %d cells, want %d", len(cr.Cells), len(cr.Strat)*len(cr.Xs))
	}
	for _, s := range cr.Strat {
		base := cr.Cell(s, 0)
		if base == nil || base.Overall <= 0 {
			t.Fatalf("%v: missing fault-free baseline", s)
		}
		if base.CrashesSeen != 0 {
			t.Fatalf("%v: baseline saw %v crashes", s, base.CrashesSeen)
		}
		if base.Inflation != 1 {
			t.Fatalf("%v: baseline inflation %v, want 1", s, base.Inflation)
		}
		for _, x := range cr.Xs[1:] {
			c := cr.Cell(s, x)
			if c.CrashesSeen < 1 {
				t.Fatalf("%v crashes=%d: no crash landed", s, x)
			}
			if c.Inflation <= 0 {
				t.Fatalf("%v crashes=%d: inflation not computed", s, x)
			}
		}
	}
	if cr.Metrics.Counters["fault.crashes"] < 1 {
		t.Fatal("sweep metrics recorded no crashes")
	}
	if cr.Table().NumRows() != len(cr.Cells) {
		t.Fatalf("table rows %d != cells %d", cr.Table().NumRows(), len(cr.Cells))
	}
}

// TestChaosSweepDeterministicAcrossParallelism pins the acceptance
// criterion: the same seed and plan produce identical results across runs
// and across executor parallelism.
func TestChaosSweepDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) *ChaosResult {
		opts := quickChaos()
		opts.Strategies = []core.Strategy{core.MW, core.WWColl}
		opts.Repetitions = 2
		opts.Parallelism = parallelism
		cr, err := RunChaosSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		cr.Perf = SweepPerf{}
		return cr
	}
	seq := run(1)
	if !reflect.DeepEqual(seq, run(1)) {
		t.Fatal("two sequential chaos sweeps differ")
	}
	if !reflect.DeepEqual(seq, run(4)) {
		t.Fatal("parallel chaos sweep differs from sequential")
	}
}

// TestEmptyPlanSweepBitIdentical is the suite-level no-fault regression: a
// base config carrying an empty fault plan must leave the whole process
// sweep bit-identical to one with no fault configuration, at parallelism 1
// and 4.
func TestEmptyPlanSweepBitIdentical(t *testing.T) {
	run := func(plan *fault.Plan, parallelism int) *SweepResult {
		opts := QuickOptions()
		opts.Procs = []int{4, 8}
		opts.Strategies = []core.Strategy{core.MW, core.WWList}
		opts.Base.FaultPlan = plan
		opts.Parallelism = parallelism
		sr, err := RunProcessSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		return stripPerf(sr)
	}
	for _, par := range []int{1, 4} {
		want := run(nil, par)
		got := run(&fault.Plan{Seed: 7}, par)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d: empty fault plan changed the sweep", par)
		}
	}
}
