package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"s3asim/internal/core"
	"s3asim/internal/obs"
	"s3asim/internal/plot"
	"s3asim/internal/stats"
)

// This file is the experiments-layer surface of the telemetry pipeline
// (DESIGN.md §15): deterministic flight-dump artifacts and the shared
// alert-timeline table both sweeps render.

// strategySlug lowercases a strategy name for artifact file names
// ("WW-Coll" → "ww-coll").
func strategySlug(s core.Strategy) string {
	return strings.ToLower(s.String())
}

// reasonSlug compresses a flight-dump trigger reason into a file-name-safe
// slug: lowercase, runs of non-alphanumerics collapsed to single dashes.
func reasonSlug(reason string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(reason) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			if dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = false
			b.WriteRune(r)
		default:
			dash = true
		}
	}
	if b.Len() == 0 {
		return "trigger"
	}
	return b.String()
}

// writeFlightDumps writes every flight dump in rep as a JSONL artifact named
// <prefix>_<seq>_<reason-slug>.jsonl under dir (created if missing) and
// returns the paths in dump order. Callers invoke this from the serialized
// onCell hook in ascending cell order, so the artifact set is deterministic
// at any sweep parallelism.
func writeFlightDumps(dir, prefix string, rep *core.Report) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	for i := range rep.FlightDumps {
		d := &rep.FlightDumps[i]
		path := filepath.Join(dir, fmt.Sprintf("%s_%d_%s.jsonl",
			prefix, d.Seq, reasonSlug(d.Reason)))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		werr := d.WriteJSONL(f, rep.Windows, rep.Alerts)
		cerr := f.Close()
		if werr != nil {
			return nil, fmt.Errorf("flight dump %s: %w", path, werr)
		}
		if cerr != nil {
			return nil, cerr
		}
		files = append(files, path)
	}
	return files, nil
}

// telemetryChart builds one run's windowed timeline: per-window rates of the
// named counters, the named histogram's per-window p99, and a dashed marker
// at every alert firing (solid-color) and resolution (grey).
func telemetryChart(title string, s *obs.Series, alerts []obs.Alert,
	counters []string, hist string) *plot.LineChart {

	ch := &plot.LineChart{Title: title, XLabel: "virtual time (s)", YLabel: "rate (/s), p99 (s)"}
	width := s.Width.Seconds()
	xs := make([]float64, len(s.Windows))
	for i, w := range s.Windows {
		xs[i] = w.End.Seconds()
	}
	for _, name := range counters {
		ys := make([]float64, len(s.Windows))
		for i, w := range s.Windows {
			ys[i] = float64(w.Counters[name]) / width
		}
		ch.Series = append(ch.Series, plot.Series{Name: name + " (/s)", Xs: xs, Ys: ys})
	}
	if hist != "" {
		ys := make([]float64, len(s.Windows))
		for i, w := range s.Windows {
			ys[i] = w.Hists[hist].Quantile(0.99)
		}
		ch.Series = append(ch.Series, plot.Series{Name: hist + " p99 (s)", Xs: xs, Ys: ys})
	}
	for _, a := range alerts {
		v := plot.VLine{X: a.At.Seconds()}
		if a.Fired {
			v.Label = "fire " + a.Rule
		} else {
			v.Label = "resolve " + a.Rule
			v.Color = "#999999"
		}
		ch.VLines = append(ch.VLines, v)
	}
	return ch
}

// TimelineHTML renders the sweep's telemetry as a self-contained HTML page:
// one windowed-rate chart per cell with alert markers, plus the alert
// timeline table. Empty string when telemetry was off.
func (sr *ServeResult) TimelineHTML() string {
	page := plot.NewHTMLPage("Serving telemetry timeline")
	any := false
	for _, c := range sr.Cells {
		if c.Windows == nil {
			continue
		}
		any = true
		title := fmt.Sprintf("%v load %s — window %.3fs",
			c.Strategy, trimFloat(c.Load), c.Windows.Width.Seconds())
		ch := telemetryChart(title, c.Windows, c.Alerts,
			[]string{"serve.queries", "serve.slo_violations"}, "serve.latency")
		page.AddSVG(title, ch.SVG(880, 360))
	}
	if !any {
		return ""
	}
	page.AddPre("Alert timeline", sr.AlertTable().String())
	return page.String()
}

// TimelineHTML renders the chaos sweep's telemetry page: per-cell windowed
// fault rates with alert markers, plus the alert timeline table. Empty
// string when telemetry was off.
func (cr *ChaosResult) TimelineHTML() string {
	page := plot.NewHTMLPage("Chaos telemetry timeline")
	any := false
	for _, s := range cr.Strat {
		for _, x := range cr.Xs {
			c := cr.Cell(s, x)
			if c == nil || c.Windows == nil {
				continue
			}
			any = true
			title := fmt.Sprintf("%v crashes=%d — window %.3fs",
				s, x, c.Windows.Width.Seconds())
			ch := telemetryChart(title, c.Windows, c.Alerts,
				[]string{"fault.crashes", "fault.restarts", "fault.tasks_reexecuted"},
				"fault.detection_latency")
			page.AddSVG(title, ch.SVG(880, 360))
		}
	}
	if !any {
		return ""
	}
	page.AddPre("Alert timeline", cr.AlertTable().String())
	return page.String()
}

// alertTable renders an alert timeline — one row per firing or resolution,
// in (cell, virtual-time) order — for any sweep whose cells carry alerts.
// rows supplies per-cell label columns (e.g. strategy and load).
func alertTable(title string, labels []string, cells int,
	cellRows func(cell int) ([]string, []obs.Alert)) *stats.Table {

	headers := append(append([]string{}, labels...),
		"t (s)", "event", "rule", "value", "slow", "threshold")
	t := stats.NewTable(title, headers...)
	for cell := 0; cell < cells; cell++ {
		label, alerts := cellRows(cell)
		for _, a := range alerts {
			event := "resolve"
			if a.Fired {
				event = "fire"
			}
			row := make([]any, 0, len(headers))
			for _, l := range label {
				row = append(row, l)
			}
			row = append(row, a.At.Seconds(), event, a.Rule,
				a.Value, a.Slow, a.Threshold)
			t.AddRowf(row...)
		}
	}
	return t
}
