package experiments

import (
	"strings"
	"testing"

	"s3asim/internal/core"
	"s3asim/internal/romio"
)

func quickBase() core.Config {
	return QuickOptions().Base
}

func TestCollectiveComparisonTable(t *testing.T) {
	base := quickBase()
	tbl, err := CollectiveComparison(base, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if !strings.Contains(tbl.String(), "two-phase") {
		t.Fatalf("table: %s", tbl)
	}
}

func TestHybridComparisonTable(t *testing.T) {
	base := quickBase()
	base.Procs = 8
	base.Strategy = core.MW
	tbl, err := HybridComparison(base, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestResumeTradeoff(t *testing.T) {
	base := quickBase()
	base.Procs = 6
	base.Strategy = core.WWList
	outcomes, err := ResumeTradeoff(base, []int{1, 4}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	for _, oc := range outcomes {
		if oc.TotalWithFail < oc.NoFailure {
			t.Fatalf("failure made the run faster: %+v", oc)
		}
		if oc.TotalWithFail != oc.FailAt+oc.ResumeRun {
			t.Fatalf("inconsistent totals: %+v", oc)
		}
	}
	// Frequent writes (n=1) must lose less work than write-at-end (n=4):
	// at the 50% failure point the per-query writer has durable queries,
	// the batch writer typically none.
	if outcomes[0].ResumeFrom < outcomes[1].ResumeFrom {
		t.Fatalf("frequent writes preserved less: %+v", outcomes)
	}
	tbl := ResumeTable(outcomes)
	if tbl.NumRows() != 2 || !strings.Contains(tbl.String(), "durable") {
		t.Fatalf("resume table: %s", tbl)
	}
}

func TestServerSweepMoreServersNotSlower(t *testing.T) {
	base := quickBase()
	base.Procs = 8
	tbl, err := ServerSweep(base, []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestOutputScaleSweep(t *testing.T) {
	base := quickBase()
	base.Procs = 6
	tbl, err := OutputScaleSweep(base, []float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestCollectiveComparisonUsesListSync(t *testing.T) {
	// Sanity: the ListSync collective path is actually exercised (it must
	// produce a valid verified run through the experiments helper too).
	base := quickBase()
	base.Procs = 6
	base.Strategy = core.WWColl
	base.CollMethod = romio.ListSync
	rep, err := core.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FileCoverage != rep.OutputBytes {
		t.Fatal("list-sync collective did not cover the file")
	}
}

func TestSegmentationComparison(t *testing.T) {
	base := quickBase()
	base.Procs = 6
	base.WorkerMemoryBytes = 64 << 20
	tbl, err := SegmentationComparison(base, []int64{16 << 20, 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestOverallChartShape(t *testing.T) {
	opts := QuickOptions()
	opts.Procs = []int{2, 4}
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := sr.OverallChart(false)
	if len(c.Series) != len(core.Strategies) {
		t.Fatalf("series = %d", len(c.Series))
	}
	for _, s := range c.Series {
		if len(s.Xs) != 2 || len(s.Ys) != 2 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Xs))
		}
		for _, y := range s.Ys {
			if y <= 0 {
				t.Fatalf("series %s has non-positive time", s.Name)
			}
		}
	}
	if !strings.Contains(c.Title, "Figure 2") || !c.LogX {
		t.Fatalf("chart meta: %+v", c.Title)
	}
	// Both renderers accept the real chart.
	if c.SVG(640, 400) == "" || c.ASCII(60, 12) == "" {
		t.Fatal("render failed")
	}
}

func TestPhaseChartShape(t *testing.T) {
	opts := QuickOptions()
	opts.Procs = []int{2, 4}
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	sb := sr.PhaseChart(core.WWList, true)
	if len(sb.Labels) != 2 || len(sb.Segments) != int(core.NumPhases) {
		t.Fatalf("bars: labels=%d segments=%d", len(sb.Labels), len(sb.Segments))
	}
	// Each bar's segments must sum to the cell's worker total.
	for bi, x := range sr.Xs {
		var sum float64
		for _, v := range sb.Values[bi] {
			sum += v
		}
		cell := sr.Cell(core.WWList, true, x)
		var want float64
		for p := 0; p < int(core.NumPhases); p++ {
			want += cell.WorkerPhases[p].Seconds()
		}
		if diff := sum - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bar %d sums to %v, cell says %v", bi, sum, want)
		}
	}
	if sb.SVG(640, 400) == "" || sb.ASCII(70) == "" {
		t.Fatal("render failed")
	}
}
