package experiments

import (
	"strings"
	"testing"

	"s3asim/internal/core"
)

func TestQuickProcessSweepCompletes(t *testing.T) {
	opts := QuickOptions()
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Kind != "procs" || len(sr.Xs) != len(opts.Procs) {
		t.Fatalf("sweep shape: %s %v", sr.Kind, sr.Xs)
	}
	for _, s := range core.Strategies {
		for _, sync := range []bool{false, true} {
			for _, x := range sr.Xs {
				c := sr.Cell(s, sync, x)
				if c == nil || c.Overall <= 0 || c.Runs != 1 {
					t.Fatalf("missing/empty cell %v sync=%v x=%g", s, sync, x)
				}
			}
		}
	}
}

func TestQuickSweepSyncNeverFaster(t *testing.T) {
	sr, err := RunProcessSweep(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range core.Strategies {
		for _, x := range sr.Xs {
			ns := sr.Cell(s, false, x).Overall
			ws := sr.Cell(s, true, x).Overall
			if float64(ws) < 0.999*float64(ns) {
				t.Fatalf("%v x=%g: sync %v faster than no-sync %v", s, x, ws, ns)
			}
		}
	}
}

func TestQuickSpeedSweepMonotoneCompute(t *testing.T) {
	opts := QuickOptions()
	sr, err := RunSpeedSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Compute phase must shrink as speed grows.
	for _, s := range core.Strategies {
		var prev float64 = 1e18
		for _, x := range sr.Xs {
			comp := sr.Cell(s, false, x).WorkerPhases[core.PhaseCompute].Seconds()
			if comp > prev*1.0001 {
				t.Fatalf("%v: compute phase grew with speed (%g -> %g)", s, prev, comp)
			}
			prev = comp
		}
	}
}

func TestRepetitionsAverage(t *testing.T) {
	opts := QuickOptions()
	opts.Procs = []int{4}
	opts.Repetitions = 3
	opts.Strategies = []core.Strategy{core.WWList}
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if c := sr.Cell(core.WWList, false, 4); c.Runs != 3 {
		t.Fatalf("runs = %d, want 3", c.Runs)
	}
}

func TestProgressCallback(t *testing.T) {
	opts := QuickOptions()
	opts.Procs = []int{2}
	opts.Strategies = []core.Strategy{core.MW}
	var lines []string
	opts.Progress = func(s string) { lines = append(lines, s) }
	if _, err := RunProcessSweep(opts); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 { // no-sync + sync
		t.Fatalf("progress lines = %d, want 2", len(lines))
	}
}

func TestTablesRender(t *testing.T) {
	opts := QuickOptions()
	opts.Procs = []int{2, 4}
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	tables := sr.Tables()
	// 2 overall + 4 strategies × 2 sync modes + 1 headline.
	if len(tables) != 2+8+1 {
		t.Fatalf("tables = %d", len(tables))
	}
	all := ""
	for _, tb := range tables {
		if tb.NumRows() == 0 {
			t.Fatalf("empty table %q", tb.Title)
		}
		all += tb.String()
	}
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4", "§4 headline", "MW", "WW-List"} {
		if !strings.Contains(all, want) {
			t.Fatalf("rendered tables missing %q", want)
		}
	}
	// Speed sweep labels the other figures.
	srs, err := RunSpeedSweep(func() Options { o := QuickOptions(); o.Speeds = []float64{1}; return o }())
	if err != nil {
		t.Fatal(err)
	}
	speedAll := ""
	for _, tb := range srs.Tables() {
		speedAll += tb.Title
	}
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7"} {
		if !strings.Contains(speedAll, want) {
			t.Fatalf("speed tables missing %q", want)
		}
	}
}

func TestRatioDefinition(t *testing.T) {
	opts := QuickOptions()
	opts.Procs = []int{4}
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	list := sr.Cell(core.WWList, false, 4).Overall
	mw := sr.Cell(core.MW, false, 4).Overall
	want := float64(mw)/float64(list) - 1
	if got := sr.Ratio(core.WWList, core.MW, false, 4); got != want {
		t.Fatalf("Ratio = %g, want %g", got, want)
	}
}

// TestPaperShapeAt48Procs checks the paper's headline ordering at a single
// full-scale point: WW-List < WW-POSIX < WW-Coll < MW in the no-sync case,
// and MW essentially unaffected by query sync.
func TestPaperShapeAt48Procs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape check")
	}
	opts := PaperOptions()
	opts.Procs = []int{48}
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	list := sr.Cell(core.WWList, false, 48).Overall
	posix := sr.Cell(core.WWPosix, false, 48).Overall
	coll := sr.Cell(core.WWColl, false, 48).Overall
	mw := sr.Cell(core.MW, false, 48).Overall
	if !(list < posix && posix < coll && coll < mw) {
		t.Fatalf("ordering violated: list=%v posix=%v coll=%v mw=%v", list, posix, coll, mw)
	}
	mwSync := sr.Cell(core.MW, true, 48).Overall
	if delta := float64(mwSync)/float64(mw) - 1; delta > 0.10 {
		t.Fatalf("MW sync delta %.1f%% exceeds 10%% (paper: ≤5%%)", delta*100)
	}
	collSync := sr.Cell(core.WWColl, true, 48).Overall
	if delta := float64(collSync)/float64(coll) - 1; delta > 0.15 {
		t.Fatalf("WW-Coll sync delta %.1f%% exceeds 15%% (paper: ≤6%%)", delta*100)
	}
}

func TestRepetitionStdDev(t *testing.T) {
	opts := QuickOptions()
	opts.Procs = []int{4}
	opts.Repetitions = 3
	opts.Strategies = []core.Strategy{core.WWList}
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	cell := sr.Cell(core.WWList, false, 4)
	if cell.OverallStd <= 0 {
		t.Fatalf("std dev = %v; seed-varied repetitions should differ", cell.OverallStd)
	}
	if cell.OverallStd > cell.Overall {
		t.Fatalf("std dev %v larger than mean %v", cell.OverallStd, cell.Overall)
	}
	single := QuickOptions()
	single.Procs = []int{4}
	single.Strategies = []core.Strategy{core.WWList}
	sr1, err := RunProcessSweep(single)
	if err != nil {
		t.Fatal(err)
	}
	if sr1.Cell(core.WWList, false, 4).OverallStd != 0 {
		t.Fatal("single repetition must have zero std dev")
	}
}
