package experiments

import (
	"fmt"

	"s3asim/internal/core"
	"s3asim/internal/plot"
)

// OverallChart builds the Figure-2/5-style line chart (one series per
// strategy, log axes as the paper uses) for one sync mode.
func (sr *SweepResult) OverallChart(sync bool) *plot.LineChart {
	label := "no-sync"
	if sync {
		label = "sync"
	}
	fig := "Figure 2"
	if sr.Kind == "speed" {
		fig = "Figure 5"
	}
	c := &plot.LineChart{
		Title:  fmt.Sprintf("%s — overall execution time (%s)", fig, label),
		XLabel: sr.xLabel(),
		YLabel: "time (s)",
		LogX:   true,
	}
	for _, s := range sr.Strat {
		series := plot.Series{Name: s.String()}
		for _, x := range sr.Xs {
			series.Xs = append(series.Xs, x)
			series.Ys = append(series.Ys, sr.Cell(s, sync, x).Overall.Seconds())
		}
		c.Series = append(c.Series, series)
	}
	return c
}

// PhaseChart builds the Figure-3/4/6/7-style stacked bar chart of the
// worker phase decomposition for one strategy and sync mode.
func (sr *SweepResult) PhaseChart(s core.Strategy, sync bool) *plot.StackedBars {
	label := "no-sync"
	if sync {
		label = "sync"
	}
	sb := &plot.StackedBars{
		Title:  fmt.Sprintf("%s, %s — worker phase times vs %s", s, label, sr.xLabel()),
		XLabel: sr.xLabel(),
		YLabel: "time (s)",
	}
	for p := 0; p < int(core.NumPhases); p++ {
		sb.Segments = append(sb.Segments, core.Phase(p).String())
	}
	for _, x := range sr.Xs {
		cell := sr.Cell(s, sync, x)
		sb.Labels = append(sb.Labels, trimFloat(x))
		vals := make([]float64, core.NumPhases)
		for p := 0; p < int(core.NumPhases); p++ {
			vals[p] = cell.WorkerPhases[p].Seconds()
		}
		sb.Values = append(sb.Values, vals)
	}
	return sb
}
