package experiments

import (
	"reflect"
	"strings"
	"testing"

	"s3asim/internal/causal"
	"s3asim/internal/core"
	"s3asim/internal/des"
)

func TestServeSweepTelemetryComplete(t *testing.T) {
	opts := QuickServeOptions()
	opts.Loads = []float64{1}
	sr, err := RunServeSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != len(core.Strategies) {
		t.Fatalf("got %d cells", len(sr.Cells))
	}
	for _, c := range sr.Cells {
		if len(c.Queries) == 0 || c.Throughput <= 0 || c.Overall <= 0 {
			t.Fatalf("%v: empty cell", c.Strategy)
		}
		ps := []des.Time{c.P50, c.P90, c.P99, c.P999, c.Max}
		for i := 1; i < len(ps); i++ {
			if ps[i] < ps[i-1] {
				t.Fatalf("%v: percentiles not monotone: %v", c.Strategy, ps)
			}
		}
		if c.P50 <= 0 {
			t.Fatalf("%v: nonpositive p50", c.Strategy)
		}
		// Bands tile the query population, and each band's attribution
		// conserves its queries' summed latency exactly (every per-query
		// walk tiles [Arrival, Done)).
		banded := 0
		for _, b := range c.Bands {
			banded += b.Queries
			if b.Path.Total() < 0 {
				t.Fatalf("%v band %s: negative attribution", c.Strategy, b.Label)
			}
		}
		if banded != len(c.Queries) {
			t.Fatalf("%v: bands cover %d of %d queries", c.Strategy, banded, len(c.Queries))
		}
		var bandTotal, latTotal des.Time
		for _, b := range c.Bands {
			bandTotal += b.Path.Total()
		}
		for _, q := range c.Queries {
			latTotal += q.Latency()
		}
		if bandTotal != latTotal {
			t.Fatalf("%v: band attribution %v != summed latency %v",
				c.Strategy, bandTotal, latTotal)
		}
		// Tenant counts tile the population too.
		tq, tv := 0, 0
		for _, tn := range c.Tenants {
			tq += tn.Queries
			tv += tn.Violations
		}
		if tq != len(c.Queries) {
			t.Fatalf("%v: tenants cover %d of %d queries", c.Strategy, tq, len(c.Queries))
		}
		if tv != c.Violations {
			t.Fatalf("%v: tenant violations %d != cell violations %d", c.Strategy, tv, c.Violations)
		}
		// The fixed-memory latency histogram backs the percentiles.
		h, ok := c.Metrics.Hists["serve.latency"]
		if !ok || h.Count != int64(len(c.Queries)) || len(h.Buckets) == 0 {
			t.Fatalf("%v: bad latency histogram: %+v", c.Strategy, h)
		}
	}
}

func TestServeSweepDeterministicAcrossParallelism(t *testing.T) {
	opts := QuickServeOptions()
	opts.Loads = []float64{0.5, 1}
	opts.Parallelism = 1
	seq, err := RunServeSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	par, err := RunServeSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("serve sweep differs between parallelism 1 and 4")
	}
}

func TestServeSweepTablesRender(t *testing.T) {
	opts := QuickServeOptions()
	opts.Loads = []float64{1}
	opts.Strategies = []core.Strategy{core.MW, core.WWColl}
	sr, err := RunServeSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	tables := sr.Tables()
	if len(tables) < 4 {
		t.Fatalf("got %d tables", len(tables))
	}
	all := ""
	for _, tb := range tables {
		s := tb.String()
		if s == "" {
			t.Fatal("empty table")
		}
		all += s
	}
	for _, want := range []string{"p999", "throughput vs offered load", "tenant", "steady", "spiky", "p50"} {
		if !strings.Contains(all, want) {
			t.Fatalf("tables missing %q:\n%s", want, all)
		}
	}
	for _, n := range causal.CategoryNames() {
		if !strings.Contains(all, n) {
			t.Fatalf("tail table missing category %q", n)
		}
	}
}
