package experiments

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/stats"
)

// poolTestConfig is a small deterministic run for kernel-recycling checks.
func poolTestConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = 6
	cfg.Workload.NumQueries = 4
	cfg.Workload.NumFragments = 8
	cfg.Workload.QueryHist = stats.Uniform(200, 2000)
	cfg.Workload.Seed = 11
	return cfg
}

// poolFingerprint condenses a report's virtual-time observables.
func poolFingerprint(rep *core.Report) string {
	s := fmt.Sprintf("overall=%d events=%d msgs=%d bytes=%d cover=%d flush=%v",
		rep.Overall, rep.Events, rep.Messages, rep.NetBytes, rep.FileCoverage,
		rep.BatchFlushTimes)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(s)))
}

// TestSimPoolRecyclesAfterError pins the executor's kernel-recycling policy
// for failed cells: a kernel whose run ended in an error (here a deadlock
// diagnosis, which leaves parked processes and a drained calendar behind)
// is returned to circulation through putAfterReset, and a run on the
// recycled kernel reproduces the fresh-kernel fingerprint exactly.
func TestSimPoolRecyclesAfterError(t *testing.T) {
	// Drive a kernel into an error: one process parks on a signal nobody
	// ever fires, so Run diagnoses a deadlock.
	dead := des.New()
	dead.Spawn("stuck", func(p *des.Proc) { dead.NewSignal().Wait(p) })
	if err := dead.Run(); err == nil {
		t.Fatal("expected a deadlock diagnosis")
	}

	var pool simPool
	pool.putAfterReset(dead)
	recycled := pool.get()
	if recycled != dead {
		t.Fatal("errored kernel was not recycled")
	}
	if recycled.Now() != 0 || recycled.PendingEvents() != 0 || recycled.Procs() != 0 {
		t.Fatalf("recycled kernel not clean: now=%d pending=%d procs=%d",
			recycled.Now(), recycled.PendingEvents(), recycled.Procs())
	}

	fresh := poolTestConfig()
	repFresh, err := core.Run(fresh)
	if err != nil {
		t.Fatal(err)
	}
	reused := poolTestConfig()
	reused.Sim = recycled
	repReused, err := core.Run(reused)
	if err != nil {
		t.Fatal(err)
	}
	if ff, fr := poolFingerprint(repFresh), poolFingerprint(repReused); ff != fr {
		t.Errorf("recycled kernel diverged from fresh:\n fresh    %s\n recycled %s", ff, fr)
	}
}

// TestSimPoolDropsNil pins the guard: error paths where the run never
// attached a kernel must not poison the pool.
func TestSimPoolDropsNil(t *testing.T) {
	var pool simPool
	pool.putAfterReset(nil)
	s := pool.get()
	if s == nil {
		t.Fatal("pool.get returned nil")
	}
}
