package experiments

import (
	"fmt"
	"time"

	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/fault"
	"s3asim/internal/obs"
	"s3asim/internal/romio"
	"s3asim/internal/search"
	"s3asim/internal/stats"
)

// This file is the readback suite (s3abench -suite readback): the verified
// read path under mixed GET/PUT workloads and under chaos. The mixed sweep
// asks how much each write strategy pays when every durable batch is
// immediately read back at a given GET share (s3bench-style verification
// traffic). The chaos suite re-runs the fault plans of the chaos sweep with
// content verification on: a recovery protocol that silently lost, tore, or
// duplicated bytes would surface here as a checksum mismatch, which
// core.Run turns into a hard error — a clean suite IS the assertion.

// ReadbackOptions scales the mixed GET/PUT readback sweep.
type ReadbackOptions struct {
	// Base is the template configuration; Strategy and Readback are
	// overridden per cell. CaptureData is forced on (content verification
	// needs stored bytes).
	Base core.Config
	// Mixes is the x-axis: the GET percentage of the verification workload.
	// 100 is the pure-read pass (post-run verification only); a mix m < 100
	// re-reads each durable batch m/(100-m) times in-run (90 → 9 GETs per
	// PUT, 50 → 1). Every cell also runs the post-run sweep so the whole
	// image is verified regardless of mix.
	Mixes []int
	// Method is the ADIO read method verification reads go through.
	Method romio.Method
	// Collective routes WW-Coll in-run reads through collective read rounds.
	Collective bool
	// Repetitions, Strategies, Parallelism, Progress: as in Options.
	Repetitions int
	Strategies  []core.Strategy
	Parallelism int
	Progress    func(string)
}

// PaperReadbackOptions returns the readback sweep at the paper's evaluation
// scale (64 processes, default workload).
func PaperReadbackOptions() ReadbackOptions {
	return ReadbackOptions{
		Base:        core.DefaultConfig(),
		Mixes:       []int{100, 90, 50},
		Method:      romio.ListIO,
		Repetitions: 1,
	}
}

// QuickReadbackOptions returns a scaled-down readback sweep for tests: the
// QuickOptions workload at 8 processes.
func QuickReadbackOptions() ReadbackOptions {
	q := QuickOptions()
	base := q.Base
	base.Procs = 8
	return ReadbackOptions{
		Base:        base,
		Mixes:       []int{100, 90, 50},
		Method:      romio.ListIO,
		Repetitions: 1,
	}
}

// readbackConfFor maps a GET percentage to the read-path configuration.
func readbackConfFor(get int, method romio.Method, collective bool) (*core.ReadbackConfig, error) {
	if get <= 0 || get > 100 {
		return nil, fmt.Errorf("experiments: GET mix %d%% outside (0, 100]", get)
	}
	rc := &core.ReadbackConfig{Method: method, Collective: collective, PostRun: true}
	if get < 100 {
		rc.InRunReads = get / (100 - get)
		if rc.InRunReads < 1 {
			return nil, fmt.Errorf("experiments: GET mix %d%% is below 50/50 (write-heavier mixes are the write sweeps' job)", get)
		}
	}
	return rc, nil
}

// ReadbackCell is one (strategy, mix) cell. The embedded Cell carries the
// timing aggregates; the readback fields are per-run means over the
// verification counters.
type ReadbackCell struct {
	Cell
	// GetPct is the cell's x: the GET share of the mixed workload.
	GetPct int
	// Reads / Extents are the mean number of verification read operations
	// and extents compared per run; BytesRead is the mean bytes pulled back
	// through the read strategy.
	Reads     float64
	Extents   float64
	BytesRead float64
	// Mismatches is the mean content-hash mismatches per run — always 0 in
	// a completed sweep, because a mismatch fails the run (and the sweep).
	Mismatches float64
	// ReadShare is BytesRead over the run's output bytes: the realized
	// GET amplification (1.0 = the whole image read back once).
	ReadShare float64
	// Slowdown is this cell's mean overall time over the same strategy's
	// pure-read (100%) column — how much the in-run GET traffic stretches
	// the run relative to post-run verification alone.
	Slowdown float64
}

// ReadbackResult is a completed mixed GET/PUT sweep. Cells are keyed by
// CellKey with X = GET percentage and QuerySync = Base.QuerySync.
type ReadbackResult struct {
	Mixes []int
	Sync  bool
	Strat []core.Strategy
	Cells map[CellKey]*ReadbackCell
	// Metrics and Perf: as in SweepResult.
	Metrics obs.Snapshot
	Perf    SweepPerf
}

// Cell returns the cell for (strategy, GET percentage), or nil.
func (rr *ReadbackResult) Cell(s core.Strategy, get int) *ReadbackCell {
	return rr.Cells[CellKey{Strategy: s, QuerySync: rr.Sync, X: float64(get)}]
}

// RunReadbackSweep executes the mixed GET/PUT readback sweep. Deterministic:
// the same options produce bit-identical Cells at any Parallelism.
func RunReadbackSweep(opts ReadbackOptions) (*ReadbackResult, error) {
	if len(opts.Mixes) == 0 {
		opts.Mixes = []int{100, 90, 50}
	}
	o := Options{
		Strategies:  opts.Strategies,
		Repetitions: opts.Repetitions,
		Parallelism: opts.Parallelism,
		Progress:    opts.Progress,
		Base:        opts.Base,
	}
	rr := &ReadbackResult{
		Mixes: opts.Mixes,
		Sync:  opts.Base.QuerySync,
		Strat: o.strategies(),
		Cells: make(map[CellKey]*ReadbackCell),
	}
	var (
		keys []CellKey
		cfgs []core.Config
	)
	for _, s := range rr.Strat {
		for _, get := range opts.Mixes {
			coll := opts.Collective && s == core.WWColl
			rc, err := readbackConfFor(get, opts.Method, coll)
			if err != nil {
				return nil, err
			}
			cfg := opts.Base
			cfg.Strategy = s
			cfg.CaptureData = true
			cfg.Readback = rc
			keys = append(keys, CellKey{Strategy: s, QuerySync: rr.Sync, X: float64(get)})
			cfgs = append(cfgs, cfg)
		}
	}
	cache := search.NewCache()
	start := time.Now()
	_, prof, err := runAllCells(o.parallelism(), o.reps(), cache, cfgs, nil,
		func(cell, rep int, err error) error {
			k := keys[cell]
			return fmt.Errorf("readback: %v get=%g%% rep=%d: %w", k.Strategy, k.X, rep, err)
		},
		func(cell int, reps []*core.Report) {
			k := keys[cell]
			c := reduceReadbackCell(k, reps)
			rr.Cells[k] = c
			for _, r := range reps {
				rr.Metrics = rr.Metrics.Merge(r.Metrics)
			}
			o.progress("readback %s get=%g%%: %.2fs (%.1fx image read back, 0 mismatches)",
				k.Strategy, k.X, c.Overall.Seconds(), c.ReadShare)
		})
	if err != nil {
		return nil, err
	}
	// Slowdown folds in after all cells exist: each cell over its strategy's
	// pure-read (post-run only) column.
	for _, s := range rr.Strat {
		base := rr.Cell(s, 100)
		if base == nil || base.Overall <= 0 {
			continue
		}
		for _, get := range rr.Mixes {
			if c := rr.Cell(s, get); c != nil {
				c.Slowdown = float64(c.Overall) / float64(base.Overall)
			}
		}
	}
	rr.Perf = SweepPerf{
		Parallelism:   o.parallelism(),
		Elapsed:       time.Since(start),
		CellTime:      prof.cellTime,
		CellWall:      prof.cellWall,
		MaxConcurrent: prof.maxConcurrent,
		Workload:      cache.Stats(),
	}
	return rr, nil
}

// reduceReadbackCell folds one cell's per-repetition reports into means, in
// repetition order (same determinism contract as reduceCell).
func reduceReadbackCell(key CellKey, reports []*core.Report) *ReadbackCell {
	c := &ReadbackCell{Cell: *reduceCell(key, reports), GetPct: int(key.X)}
	n := float64(len(reports))
	var share float64
	for _, r := range reports {
		c.Reads += float64(r.ReadbackReads) / n
		c.Extents += float64(r.ReadbackExtents) / n
		c.BytesRead += float64(r.ReadbackBytes) / n
		c.Mismatches += float64(r.ReadbackMismatches) / n
		if r.OutputBytes > 0 {
			share += float64(r.ReadbackBytes) / float64(r.OutputBytes) / n
		}
	}
	c.ReadShare = share
	return c
}

// Table renders the mixed sweep as one row per (strategy, mix).
func (rr *ReadbackResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Readback suite: mixed GET/PUT verification traffic (%s)",
			syncLabel(rr.Sync)),
		"strategy", "GET %", "overall (s)", "slowdown",
		"reads", "extents", "image read (x)", "mismatches")
	for _, s := range rr.Strat {
		for _, get := range rr.Mixes {
			c := rr.Cell(s, get)
			if c == nil {
				continue
			}
			tb.AddRowf(s.String(), get, c.Overall.Seconds(), c.Slowdown,
				c.Reads, c.Extents, c.ReadShare, c.Mismatches)
		}
	}
	return tb
}

// NamedPlan is one committed fault plan of the readback chaos suite: a
// human-readable name plus the fault-spec grammar string it parses from.
type NamedPlan struct {
	Name string
	Spec string
}

// ReadbackChaosOptions scales the readback-under-chaos suite.
type ReadbackChaosOptions struct {
	// Base is the template configuration; Strategy, Readback, and the fault
	// plan are overridden per cell. The resilient protocol is forced on
	// (these plans crash workers and outage servers).
	Base core.Config
	// Plans are the committed fault plans each strategy re-runs with
	// verification on. Empty selects the default battery (worker
	// crash/restart, PVFS outage during reads, server degradation, message
	// drop).
	Plans []NamedPlan
	// Method and InRunReads configure the verification traffic every cell
	// carries (post-run verification is always on).
	Method     romio.Method
	InRunReads int
	// Repetitions, Strategies, Parallelism, Progress: as in Options.
	Repetitions int
	Strategies  []core.Strategy
	Parallelism int
	Progress    func(string)
}

// defaultChaosPlans builds the committed battery for a given worker rank and
// run scale. Times are fractions of window w; the outage is tagged
// phase=read — legal only because every cell runs with readback on.
func defaultChaosPlans(worker int, w des.Time) []NamedPlan {
	ms := func(t des.Time) string { return fmt.Sprintf("%gms", t.Seconds()*1e3) }
	return []NamedPlan{
		{Name: "none", Spec: ""},
		{Name: "worker-crash", Spec: fmt.Sprintf("crash@%s:rank=%d,restart=%s", ms(w/8), worker, ms(w/4))},
		{Name: "pvfs-outage-read", Spec: fmt.Sprintf("outage@%s:server=0,for=%s,phase=read", ms(w/4), ms(w/8))},
		{Name: "pvfs-degrade", Spec: fmt.Sprintf("degrade@%s:server=1,factor=4,for=%s", ms(w/8), ms(w/2))},
		{Name: "msg-drop", Spec: "drop@0s:prob=0.02,for=" + ms(w)},
	}
}

// QuickReadbackChaosOptions returns a scaled-down chaos battery for tests.
func QuickReadbackChaosOptions() ReadbackChaosOptions {
	q := QuickOptions()
	base := q.Base
	base.Procs = 8
	base.Resilient = true
	base.DetectInterval = 2 * des.Millisecond
	return ReadbackChaosOptions{
		Base:        base,
		Method:      romio.ListIO,
		InRunReads:  1,
		Repetitions: 1,
	}
}

// PaperReadbackChaosOptions returns the chaos battery at the paper's scale.
func PaperReadbackChaosOptions() ReadbackChaosOptions {
	base := core.DefaultConfig()
	base.Resilient = true
	return ReadbackChaosOptions{
		Base:        base,
		Method:      romio.ListIO,
		InRunReads:  1,
		Repetitions: 1,
	}
}

// ReadbackChaosCell is one (strategy, plan) cell: verification counters plus
// the recovery work the plan caused.
type ReadbackChaosCell struct {
	Cell
	Plan       string
	Reads      float64
	Extents    float64
	BytesRead  float64
	Mismatches float64
	// CrashesSeen / Reexecuted: mean fault events that landed and tasks
	// dispatched more than once (as in the chaos sweep).
	CrashesSeen float64
	Reexecuted  float64
}

// ReadbackChaosResult is a completed readback-under-chaos battery. Cells are
// keyed by CellKey with X = plan index into Plans.
type ReadbackChaosResult struct {
	Plans   []NamedPlan
	Sync    bool
	Strat   []core.Strategy
	Cells   map[CellKey]*ReadbackChaosCell
	Metrics obs.Snapshot
	Perf    SweepPerf
}

// Cell returns the cell for (strategy, plan index), or nil.
func (rc *ReadbackChaosResult) Cell(s core.Strategy, plan int) *ReadbackChaosCell {
	return rc.Cells[CellKey{Strategy: s, QuerySync: rc.Sync, X: float64(plan)}]
}

// RunReadbackChaos executes the readback-under-chaos battery: every strategy
// re-runs every committed fault plan with end-to-end verification on. Any
// checksum mismatch fails the corresponding run — and therefore the suite —
// so a returned result certifies zero mismatches across the battery.
func RunReadbackChaos(opts ReadbackChaosOptions) (*ReadbackChaosResult, error) {
	if opts.InRunReads < 1 {
		opts.InRunReads = 1
	}
	workers := opts.Base.WorkerRanks()
	if len(workers) == 0 {
		return nil, fmt.Errorf("experiments: no worker ranks at %d procs", opts.Base.Procs)
	}
	if len(opts.Plans) == 0 {
		opts.Plans = defaultChaosPlans(workers[len(workers)-1], 40*des.Millisecond)
	}
	o := Options{
		Strategies:  opts.Strategies,
		Repetitions: opts.Repetitions,
		Parallelism: opts.Parallelism,
		Progress:    opts.Progress,
		Base:        opts.Base,
	}
	rc := &ReadbackChaosResult{
		Plans: opts.Plans,
		Sync:  opts.Base.QuerySync,
		Strat: o.strategies(),
		Cells: make(map[CellKey]*ReadbackChaosCell),
	}
	var (
		keys []CellKey
		cfgs []core.Config
	)
	for _, s := range rc.Strat {
		for pi, p := range opts.Plans {
			plan, err := fault.Parse(p.Spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: plan %q: %w", p.Name, err)
			}
			cfg := opts.Base
			cfg.Strategy = s
			cfg.Resilient = true
			cfg.CaptureData = true
			cfg.FaultPlan = plan
			cfg.Readback = &core.ReadbackConfig{
				Method:     opts.Method,
				InRunReads: opts.InRunReads,
				PostRun:    true,
			}
			keys = append(keys, CellKey{Strategy: s, QuerySync: rc.Sync, X: float64(pi)})
			cfgs = append(cfgs, cfg)
		}
	}
	cache := search.NewCache()
	start := time.Now()
	_, prof, err := runAllCells(o.parallelism(), o.reps(), cache, cfgs, nil,
		func(cell, rep int, err error) error {
			k := keys[cell]
			return fmt.Errorf("readback-chaos: %v plan=%s rep=%d: %w",
				k.Strategy, opts.Plans[int(k.X)].Name, rep, err)
		},
		func(cell int, reps []*core.Report) {
			k := keys[cell]
			c := reduceReadbackChaosCell(k, opts.Plans[int(k.X)].Name, reps)
			rc.Cells[k] = c
			for _, r := range reps {
				rc.Metrics = rc.Metrics.Merge(r.Metrics)
			}
			o.progress("readback-chaos %s %s: %.2fs (%.0f extents verified, 0 mismatches)",
				k.Strategy, c.Plan, c.Overall.Seconds(), c.Extents)
		})
	if err != nil {
		return nil, err
	}
	rc.Perf = SweepPerf{
		Parallelism:   o.parallelism(),
		Elapsed:       time.Since(start),
		CellTime:      prof.cellTime,
		CellWall:      prof.cellWall,
		MaxConcurrent: prof.maxConcurrent,
		Workload:      cache.Stats(),
	}
	return rc, nil
}

func reduceReadbackChaosCell(key CellKey, plan string, reports []*core.Report) *ReadbackChaosCell {
	c := &ReadbackChaosCell{Cell: *reduceCell(key, reports), Plan: plan}
	n := float64(len(reports))
	for _, r := range reports {
		c.Reads += float64(r.ReadbackReads) / n
		c.Extents += float64(r.ReadbackExtents) / n
		c.BytesRead += float64(r.ReadbackBytes) / n
		c.Mismatches += float64(r.ReadbackMismatches) / n
		mc := r.Metrics.Counters
		c.CrashesSeen += float64(mc["fault.crashes"]) / n
		c.Reexecuted += float64(mc["fault.tasks_reexecuted"]) / n
	}
	return c
}

// Table renders the chaos battery as one row per (strategy, plan).
func (rc *ReadbackChaosResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Readback-under-chaos: verified reads across fault plans (%s)",
			syncLabel(rc.Sync)),
		"strategy", "plan", "overall (s)", "extents", "mismatches",
		"crashes seen", "tasks re-run")
	for _, s := range rc.Strat {
		for pi := range rc.Plans {
			c := rc.Cell(s, pi)
			if c == nil {
				continue
			}
			tb.AddRowf(s.String(), c.Plan, c.Overall.Seconds(), c.Extents,
				c.Mismatches, c.CrashesSeen, c.Reexecuted)
		}
	}
	return tb
}
