package experiments

import (
	"errors"
	"reflect"
	"testing"

	"s3asim/internal/core"
	"s3asim/internal/trace"
)

// stripPerf zeroes the execution metadata, the only part of a SweepResult
// allowed to differ between runs of identical Options.
func stripPerf(sr *SweepResult) *SweepResult {
	sr.Perf = SweepPerf{}
	return sr
}

// TestParallelSweepMatchesSequential is the determinism regression: the
// process and speed sweeps must produce exactly equal SweepResults — every
// cell, overall time, and phase vector — whether cells run sequentially or
// across 4 workers.
func TestParallelSweepMatchesSequential(t *testing.T) {
	for _, kind := range []string{"procs", "speed"} {
		run := func(parallelism int) *SweepResult {
			opts := QuickOptions()
			opts.Parallelism = parallelism
			var (
				sr  *SweepResult
				err error
			)
			if kind == "procs" {
				sr, err = RunProcessSweep(opts)
			} else {
				sr, err = RunSpeedSweep(opts)
			}
			if err != nil {
				t.Fatalf("%s parallelism=%d: %v", kind, parallelism, err)
			}
			return stripPerf(sr)
		}
		seq := run(1)
		par := run(4)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s sweep: parallel result differs from sequential", kind)
		}
	}
}

// TestParallelRepetitionsMatchSequential extends the regression to
// multi-repetition cells: repetitions are folded in seed order regardless
// of completion order.
func TestParallelRepetitionsMatchSequential(t *testing.T) {
	run := func(parallelism int) *SweepResult {
		opts := QuickOptions()
		opts.Procs = []int{4}
		opts.Repetitions = 3
		opts.Strategies = []core.Strategy{core.WWList, core.MW}
		opts.Parallelism = parallelism
		sr, err := RunProcessSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		return stripPerf(sr)
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Fatal("repetition averaging differs between sequential and parallel runs")
	}
}

// TestParallelProgressOrdered checks the Options.Progress contract: calls
// are serialized and arrive in the deterministic (strategy, sync, x) order
// even when cells complete out of order.
func TestParallelProgressOrdered(t *testing.T) {
	lines := func(parallelism int) []string {
		opts := QuickOptions()
		opts.Parallelism = parallelism
		var got []string
		opts.Progress = func(s string) { got = append(got, s) }
		if _, err := RunProcessSweep(opts); err != nil {
			t.Fatal(err)
		}
		return got
	}
	seq := lines(1)
	par := lines(8)
	if len(seq) == 0 {
		t.Fatal("no progress lines")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("progress order differs:\nseq: %v\npar: %v", seq, par)
	}
}

// TestSweepWorkloadGeneratedOncePerSpec checks the workload-sharing layer:
// a sweep's cells differ only in engine configuration, so the whole suite
// needs exactly Repetitions distinct workloads (one per varied seed).
func TestSweepWorkloadGeneratedOncePerSpec(t *testing.T) {
	opts := QuickOptions()
	opts.Parallelism = 4
	opts.Repetitions = 2
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	stats := sr.Perf.Workload
	runs := len(sr.Cells) * opts.Repetitions
	if want := uint64(opts.Repetitions); stats.Misses != want {
		t.Fatalf("workload generations = %d, want %d (one per distinct seed)", stats.Misses, want)
	}
	if want := uint64(runs - opts.Repetitions); stats.Hits != want {
		t.Fatalf("cache hits = %d, want %d", stats.Hits, want)
	}
	if sr.Perf.Parallelism != 4 {
		t.Fatalf("recorded parallelism = %d, want 4", sr.Perf.Parallelism)
	}
	if sr.Perf.Elapsed <= 0 || sr.Perf.CellTime <= 0 {
		t.Fatalf("missing wall-clock accounting: %+v", sr.Perf)
	}
}

// TestTracerForcesSequential pins the guard for the one piece of cross-cell
// mutable state: a shared Tracer disables outer parallelism.
func TestTracerForcesSequential(t *testing.T) {
	opts := QuickOptions()
	opts.Parallelism = 8
	opts.Base.Tracer = trace.New()
	if got := opts.parallelism(); got != 1 {
		t.Fatalf("parallelism with tracer = %d, want 1", got)
	}
	opts.Base.Tracer = nil
	if got := opts.parallelism(); got != 8 {
		t.Fatalf("parallelism = %d, want 8", got)
	}
}

// TestForEachFirstError checks the executor reports the lowest-index error
// and stops launching new work after a failure.
func TestForEachFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	err := forEach(4, 16, func(i int) error {
		if i == 3 || i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	// Sequential path stops at the first error.
	ran := 0
	err = forEach(1, 16, func(i int) error {
		ran++
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || ran != 4 {
		t.Fatalf("sequential: err=%v ran=%d, want sentinel after 4 jobs", err, ran)
	}
}

// TestParallelExtensionsMatchSequential checks the §5 studies render
// identical tables at any parallelism.
func TestParallelExtensionsMatchSequential(t *testing.T) {
	base := QuickOptions().Base
	base.Procs = 4
	seq, err := ServerSweep(base, []int{4, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ServerSweep(base, []int{4, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("ServerSweep differs:\nseq:\n%s\npar:\n%s", seq, par)
	}
	cseq, err := CollectiveComparison(base, []int{4, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpar, err := CollectiveComparison(base, []int{4, 6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cseq.String() != cpar.String() {
		t.Fatalf("CollectiveComparison differs:\nseq:\n%s\npar:\n%s", cseq, cpar)
	}
}
