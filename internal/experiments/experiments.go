// Package experiments reproduces the paper's evaluation (§4): the
// process-scalability suite behind Figures 2–4 and the compute-speed suite
// behind Figures 5–7, plus the headline speedup ratios quoted in the text.
// Each suite runs the full strategy × {no-sync, sync} matrix and exposes the
// same rows/series the paper plots.
//
// Every cell of a suite is an independent deterministic simulation, so the
// harness fans cells out across a bounded pool of goroutines (see
// Options.Parallelism) and shares each pseudo-randomly generated workload
// across all cells that use it (search.Cache) — the results are
// bit-identical to a sequential sweep.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"s3asim/internal/causal"
	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/obs"
	"s3asim/internal/search"
	"s3asim/internal/stats"
)

// Options scales a suite. PaperOptions matches §3.3/§4; QuickOptions is a
// reduced configuration for tests.
type Options struct {
	// Base is the template configuration; Strategy, QuerySync, Procs and
	// ComputeSpeed are overridden per cell.
	Base core.Config
	// Procs is the process-scalability sweep (Figures 2–4).
	Procs []int
	// Speeds is the compute-speed sweep (Figures 5–7).
	Speeds []float64
	// SpeedProcs is the process count used in the speed sweep (paper: 64).
	SpeedProcs int
	// Repetitions averages this many runs per cell. The simulator is
	// deterministic, so repetitions vary the workload seed (seed+i) — the
	// closest analogue of the paper's 3-run averaging.
	Repetitions int
	// Strategies defaults to all four.
	Strategies []core.Strategy
	// Parallelism bounds how many simulation cells run concurrently; each
	// cell owns a private DES kernel, so outer parallelism never perturbs
	// results. 0 means GOMAXPROCS; 1 runs sequentially. A sweep produces
	// bit-identical SweepResults at every parallelism (cells are keyed and
	// collected independent of completion order). Setting Base.Tracer forces
	// sequential execution: the tracer is shared mutable state.
	Parallelism int
	// Progress, if non-nil, receives a line per completed cell. The sweep
	// may run cells concurrently, but Progress calls are serialized through
	// a mutex and always arrive in the deterministic sequential order
	// (strategy, sync, x) — a cell is announced only after every earlier
	// cell has been. Progress must still not block indefinitely.
	Progress func(string)
	// CellSink, if non-nil, supplies a timeline sink for each (cell,
	// repetition) run (return nil to skip a run). Every run receives
	// private observer state, so — unlike the shared Base.Tracer — per-cell
	// sinks do NOT force sequential execution: the sweep stays bit-identical
	// at any Parallelism. The factory may be called from several goroutines
	// at once; returning a distinct sink per call is all it takes to be safe.
	CellSink func(key CellKey, rep int) obs.Sink
	// CellMetrics, if non-nil, likewise supplies a per-run metrics registry.
	// Each run's snapshot lands in its Report and is merged into
	// SweepResult.Metrics either way; use CellMetrics to additionally keep
	// every run's registry (per-cell reports, custom aggregation).
	CellMetrics func(key CellKey, rep int) *obs.Registry
	// CellCausal, if non-nil, supplies a per-run happens-before recorder
	// (return nil to skip a run). Runs with a recorder land their
	// critical-path attribution in the cell (Cell.Path/PathRuns) and in the
	// sweep's AttributionTable. Like CellSink, each run gets private state,
	// so the sweep stays bit-identical at any Parallelism.
	CellCausal func(key CellKey, rep int) *causal.Recorder
}

// PaperOptions returns the paper's full experiment scale.
func PaperOptions() Options {
	return Options{
		Base:        core.DefaultConfig(),
		Procs:       []int{2, 4, 8, 16, 32, 48, 64, 96},
		Speeds:      []float64{0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6},
		SpeedProcs:  64,
		Repetitions: 1,
	}
}

// QuickOptions returns a scaled-down suite suitable for tests: a small
// workload, few sweep points, one repetition.
func QuickOptions() Options {
	base := core.DefaultConfig()
	base.Workload.NumQueries = 4
	base.Workload.NumFragments = 16
	base.Workload.MinResults = 40
	base.Workload.MaxResults = 60
	base.Workload.QueryHist = stats.Uniform(200, 2000)
	base.Workload.DBSeqHist = stats.Uniform(200, 20000)
	base.Workload.MinResultSize = 512
	return Options{
		Base:        base,
		Procs:       []int{2, 4, 8},
		Speeds:      []float64{0.5, 1, 4},
		SpeedProcs:  8,
		Repetitions: 1,
	}
}

func (o *Options) strategies() []core.Strategy {
	if len(o.Strategies) > 0 {
		return o.Strategies
	}
	return core.Strategies
}

func (o *Options) reps() int {
	if o.Repetitions < 1 {
		return 1
	}
	return o.Repetitions
}

func (o *Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// CellKey identifies one (strategy, sync, x) cell of a sweep.
type CellKey struct {
	Strategy  core.Strategy
	QuerySync bool
	X         float64 // process count or compute speed
}

// Cell holds the averaged outcome of a sweep cell.
type Cell struct {
	Key     CellKey
	Runs    int
	Overall des.Time // mean overall execution time
	// OverallStd is the standard deviation of the overall time across
	// repetitions (0 with a single repetition). Repetitions vary the
	// workload seed, so this is workload variance, not measurement noise.
	OverallStd des.Time
	// WorkerPhases is the mean over repetitions of the worker-average
	// per-phase decomposition (what Figures 3/4/6/7 plot).
	WorkerPhases [core.NumPhases]des.Time
	MasterPhases [core.NumPhases]des.Time
	// Path is the mean critical-path attribution over the PathRuns
	// repetitions that ran with a causal recorder (Options.CellCausal);
	// zero when none did.
	Path     causal.Breakdown
	PathRuns int
}

// SweepResult is a completed suite.
type SweepResult struct {
	Kind  string // "procs" or "speed"
	Xs    []float64
	Syncs []bool
	Strat []core.Strategy
	Cells map[CellKey]*Cell
	// Metrics aggregates every run's instrumentation snapshot across the
	// whole sweep (counters summed, histograms merged), folded in
	// deterministic cell-then-repetition order.
	Metrics obs.Snapshot
	// Perf describes the execution itself (wall-clock, parallelism,
	// workload-cache outcomes). It is the only part of a SweepResult that
	// varies between runs of identical Options.
	Perf SweepPerf
}

// Cell returns the cell for (strategy, sync, x), or nil.
func (sr *SweepResult) Cell(s core.Strategy, sync bool, x float64) *Cell {
	return sr.Cells[CellKey{Strategy: s, QuerySync: sync, X: x}]
}

// reduceCell folds one cell's per-repetition reports, in repetition order,
// into the averaged Cell. Folding in a fixed order keeps floating-point
// accumulation — and therefore the SweepResult — independent of which
// goroutine finished first.
func reduceCell(key CellKey, reports []*core.Report) *Cell {
	cell := &Cell{Key: key}
	var overall stats.Online
	for _, r := range reports {
		cell.Runs++
		overall.Add(r.Overall.Seconds())
		for p := 0; p < int(core.NumPhases); p++ {
			cell.WorkerPhases[p] += r.WorkerAvg.Phases[p]
			cell.MasterPhases[p] += r.Master.Phases[p]
		}
		if r.Attribution != nil {
			cell.Path.Add(r.Attribution.ByCat)
			cell.PathRuns++
		}
	}
	if cell.PathRuns > 0 {
		for i := range cell.Path {
			cell.Path[i] /= des.Time(cell.PathRuns)
		}
	}
	n := des.Time(cell.Runs)
	cell.Overall = des.FromSeconds(overall.Mean())
	cell.OverallStd = des.FromSeconds(overall.Std())
	for p := range cell.WorkerPhases {
		cell.WorkerPhases[p] /= n
		cell.MasterPhases[p] /= n
	}
	return cell
}

// runMatrix sweeps xs applying setX to the base config per point. Every
// (strategy, sync, x, rep) cell is an independent simulation, so the matrix
// fans out across Options.Parallelism workers; each distinct workload spec
// is generated once and shared (the paper's workloads are pseudo-random and
// identical across strategies and process counts, §3.3).
func runMatrix(opts Options, kind string, xs []float64, setX func(*core.Config, float64)) (*SweepResult, error) {
	sr := &SweepResult{
		Kind:  kind,
		Xs:    xs,
		Syncs: []bool{false, true},
		Strat: opts.strategies(),
		Cells: make(map[CellKey]*Cell),
	}
	var (
		keys []CellKey
		cfgs []core.Config
	)
	for _, s := range sr.Strat {
		for _, sync := range sr.Syncs {
			for _, x := range xs {
				cfg := opts.Base
				cfg.Strategy = s
				cfg.QuerySync = sync
				setX(&cfg, x)
				keys = append(keys, CellKey{Strategy: s, QuerySync: sync, X: x})
				cfgs = append(cfgs, cfg)
			}
		}
	}
	cache := search.NewCache()
	prep := func(cell, rep int, cfg *core.Config) {
		if opts.CellSink != nil {
			cfg.Sink = opts.CellSink(keys[cell], rep)
		}
		if opts.CellMetrics != nil {
			cfg.Metrics = opts.CellMetrics(keys[cell], rep)
		}
		if opts.CellCausal != nil {
			cfg.Causal = opts.CellCausal(keys[cell], rep)
		}
	}
	start := time.Now()
	_, prof, err := runAllCells(opts.parallelism(), opts.reps(), cache, cfgs, prep,
		func(cell, rep int, err error) error {
			k := keys[cell]
			return fmt.Errorf("experiments: %v sync=%v x=%g rep=%d: %w",
				k.Strategy, k.QuerySync, k.X, rep, err)
		},
		func(cell int, reps []*core.Report) {
			k := keys[cell]
			c := reduceCell(k, reps)
			sr.Cells[k] = c
			for _, r := range reps {
				sr.Metrics = sr.Metrics.Merge(r.Metrics)
			}
			opts.progress("%s %s sync=%v x=%g: %.2fs",
				kind, k.Strategy, k.QuerySync, k.X, c.Overall.Seconds())
		})
	if err != nil {
		return nil, err
	}
	sr.Perf = SweepPerf{
		Parallelism:   opts.parallelism(),
		Elapsed:       time.Since(start),
		CellTime:      prof.cellTime,
		CellWall:      prof.cellWall,
		MaxConcurrent: prof.maxConcurrent,
		Workload:      cache.Stats(),
	}
	return sr, nil
}

// RunProcessSweep executes the process-scalability suite (Figures 2–4).
func RunProcessSweep(opts Options) (*SweepResult, error) {
	xs := make([]float64, len(opts.Procs))
	for i, p := range opts.Procs {
		xs[i] = float64(p)
	}
	return runMatrix(opts, "procs", xs, func(c *core.Config, x float64) {
		c.Procs = int(x)
	})
}

// RunSpeedSweep executes the compute-speed suite at SpeedProcs processes
// (Figures 5–7).
func RunSpeedSweep(opts Options) (*SweepResult, error) {
	xs := append([]float64(nil), opts.Speeds...)
	sort.Float64s(xs)
	return runMatrix(opts, "speed", xs, func(c *core.Config, x float64) {
		c.Procs = opts.SpeedProcs
		c.ComputeSpeed = x
	})
}
