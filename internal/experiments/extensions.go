package experiments

import (
	"fmt"

	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/romio"
	"s3asim/internal/stats"
)

// This file implements the paper's §5 future-work studies as first-class
// experiments: the improved collective built from list I/O plus forced
// synchronization, hybrid query/database segmentation, the
// write-frequency/failure-recovery trade-off, and sensitivity sweeps over
// the file-system configuration ("a larger file system configuration with
// more I/O bandwidth may have provided more scalable I/O performance", §4).

// CollectiveComparison runs WW-Coll with both collective implementations
// (ROMIO two-phase vs list I/O + forced sync) and WW-List with query sync,
// at the given process counts.
func CollectiveComparison(base core.Config, procs []int) (*stats.Table, error) {
	t := stats.NewTable(
		"§5 — collective I/O implementations (overall seconds)",
		"processes", "two-phase", "list-sync collective", "WW-List + query sync")
	for _, p := range procs {
		cfg := base
		cfg.Procs = p
		cfg.Strategy = core.WWColl
		cfg.CollMethod = romio.TwoPhase
		twoPhase, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		cfg.CollMethod = romio.ListSync
		listColl, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		cfg.Strategy = core.WWList
		cfg.CollMethod = romio.TwoPhase
		cfg.QuerySync = true
		listSync, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRowf(p, twoPhase.Overall.Seconds(), listColl.Overall.Seconds(),
			listSync.Overall.Seconds())
	}
	return t, nil
}

// HybridComparison runs the hybrid query/database segmentation extension:
// the same workload and process count split into 1, 2, 4, ... groups.
func HybridComparison(base core.Config, groups []int) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("§5 — hybrid segmentation, %s at %d procs (overall seconds)",
			base.Strategy, base.Procs),
		"query-groups", "overall (s)", "master-busy max (s)")
	for _, g := range groups {
		cfg := base
		cfg.QueryGroups = g
		rep, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		var maxMaster des.Time
		for _, m := range rep.Masters {
			busy := m.Total - m.Phases[core.PhaseDataDist] - m.Phases[core.PhaseSync]
			if busy > maxMaster {
				maxMaster = busy
			}
		}
		t.AddRowf(g, rep.Overall.Seconds(), maxMaster.Seconds())
	}
	return t, nil
}

// ResumeOutcome is one row of the write-frequency/failure trade-off.
type ResumeOutcome struct {
	QueriesPerWrite int
	NoFailure       des.Time // clean run
	FailAt          des.Time // injected failure time
	ResumeFrom      int      // first query not durable at the failure
	ResumeRun       des.Time // duration of the restarted run
	TotalWithFail   des.Time // FailAt + ResumeRun
}

// ResumeTradeoff quantifies what frequent writes buy (§2: resumability):
// for each write granularity, a failure is injected at failFrac of the
// clean run's duration; work not yet durably flushed is lost and a resume
// run re-processes it. Returns one outcome per granularity.
func ResumeTradeoff(base core.Config, granularities []int, failFrac float64) ([]ResumeOutcome, error) {
	var out []ResumeOutcome
	for _, n := range granularities {
		cfg := base
		cfg.QueriesPerWrite = n
		clean, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		failAt := des.Time(failFrac * float64(clean.Overall))
		// A resume can only start after the longest prefix of batches whose
		// writes were durably complete at the failure instant.
		resumeFrom := 0
		for i, ft := range clean.BatchFlushTimes {
			if ft <= 0 || ft > failAt {
				break
			}
			// Batch i covers queries [i*n, min((i+1)*n, Q)).
			hi := (i + 1) * n
			if hi > cfg.Workload.NumQueries {
				hi = cfg.Workload.NumQueries
			}
			resumeFrom = hi
		}
		oc := ResumeOutcome{
			QueriesPerWrite: n,
			NoFailure:       clean.Overall,
			FailAt:          failAt,
			ResumeFrom:      resumeFrom,
		}
		if resumeFrom >= cfg.Workload.NumQueries {
			oc.ResumeRun = 0 // everything was already durable
		} else {
			rcfg := cfg
			rcfg.ResumeFromQuery = resumeFrom
			resumed, err := core.Run(rcfg)
			if err != nil {
				return nil, err
			}
			oc.ResumeRun = resumed.Overall
		}
		oc.TotalWithFail = oc.FailAt + oc.ResumeRun
		out = append(out, oc)
	}
	return out, nil
}

// ResumeTable renders resume outcomes.
func ResumeTable(outcomes []ResumeOutcome) *stats.Table {
	t := stats.NewTable(
		"§2 — write frequency vs failure recovery (failure mid-run)",
		"queries/write", "clean run (s)", "durable queries", "resume run (s)", "total with failure (s)")
	for _, oc := range outcomes {
		t.AddRowf(oc.QueriesPerWrite, oc.NoFailure.Seconds(), oc.ResumeFrom,
			oc.ResumeRun.Seconds(), oc.TotalWithFail.Seconds())
	}
	return t
}

// ServerSweep varies the number of PVFS2 I/O servers at fixed process
// count (§4: "a larger file system configuration with more I/O bandwidth
// may have provided more scalable I/O performance").
func ServerSweep(base core.Config, servers []int) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("§4 — I/O server scaling, %s at %d procs", base.Strategy, base.Procs),
		"servers", "overall (s)", "worker I/O phase (s)")
	for _, n := range servers {
		cfg := base
		cfg.FS.NumServers = n
		rep, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRowf(n, rep.Overall.Seconds(),
			rep.WorkerAvg.Phases[core.PhaseIO].Seconds())
	}
	return t, nil
}

// SegmentationComparison quantifies §1's motivation for database
// segmentation: it runs the same workload under database segmentation and
// under the query-segmentation baseline while growing the database, with
// worker memory fixed. Once the replicated database no longer fits in
// memory, query segmentation pays its per-query re-read.
func SegmentationComparison(base core.Config, dbSizes []int64) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("§1 — database vs query segmentation at %d procs (worker memory %d MB)",
			base.Procs, base.WorkerMemoryBytes>>20),
		"database (MB)", "database-seg (s)", "query-seg (s)")
	for _, db := range dbSizes {
		cfg := base
		cfg.DatabaseBytes = db
		cfg.Segmentation = core.DatabaseSeg
		dbRep, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		cfg.Segmentation = core.QuerySeg
		qRep, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRowf(db>>20, dbRep.Overall.Seconds(), qRep.Overall.Seconds())
	}
	return t, nil
}

// OutputScaleSweep varies the result volume by scaling the per-query result
// count (§5: "different I/O characteristics ... amount of results").
func OutputScaleSweep(base core.Config, multipliers []float64) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("§5 — output volume scaling, %s at %d procs", base.Strategy, base.Procs),
		"result-count x", "output (MB)", "overall (s)", "worker I/O phase (s)")
	for _, m := range multipliers {
		cfg := base
		cfg.Workload.MinResults = int(float64(base.Workload.MinResults) * m)
		cfg.Workload.MaxResults = int(float64(base.Workload.MaxResults) * m)
		if cfg.Workload.MinResults < 1 {
			cfg.Workload.MinResults = 1
		}
		if cfg.Workload.MaxResults < cfg.Workload.MinResults {
			cfg.Workload.MaxResults = cfg.Workload.MinResults
		}
		rep, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRowf(m, float64(rep.OutputBytes)/1e6, rep.Overall.Seconds(),
			rep.WorkerAvg.Phases[core.PhaseIO].Seconds())
	}
	return t, nil
}
