package experiments

import (
	"fmt"
	"runtime"

	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/romio"
	"s3asim/internal/search"
	"s3asim/internal/stats"
)

// This file implements the paper's §5 future-work studies as first-class
// experiments: the improved collective built from list I/O plus forced
// synchronization, hybrid query/database segmentation, the
// write-frequency/failure-recovery trade-off, and sensitivity sweeps over
// the file-system configuration ("a larger file system configuration with
// more I/O bandwidth may have provided more scalable I/O performance", §4).
//
// Like the figure suites, every study shares one workload cache across its
// runs and fans independent sweep points out across a bounded pool; rows
// are collected in deterministic sweep order regardless of completion
// order. Each function takes an optional trailing parallelism (default
// GOMAXPROCS; 1 runs sequentially).

// extExec bundles the shared workload cache and pool width of one study.
type extExec struct {
	cache *search.Cache
	par   int
}

func newExtExec(base *core.Config, parallelism []int) extExec {
	par := 0
	if len(parallelism) > 0 {
		par = parallelism[0]
	}
	if base.Tracer != nil {
		par = 1 // the tracer is shared mutable state
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return extExec{cache: search.NewCache(), par: par}
}

// run executes one simulation against the study's shared workload cache.
func (e extExec) run(cfg core.Config) (*core.Report, error) {
	return core.RunWithWorkload(cfg, e.cache.Get(cfg.EffectiveWorkload()))
}

// CollectiveComparison runs WW-Coll with both collective implementations
// (ROMIO two-phase vs list I/O + forced sync) and WW-List with query sync,
// at the given process counts.
func CollectiveComparison(base core.Config, procs []int, parallelism ...int) (*stats.Table, error) {
	e := newExtExec(&base, parallelism)
	rows := make([][3]float64, len(procs))
	err := forEach(e.par, len(procs), func(i int) error {
		cfg := base
		cfg.Procs = procs[i]
		cfg.Strategy = core.WWColl
		cfg.CollMethod = romio.TwoPhase
		twoPhase, err := e.run(cfg)
		if err != nil {
			return err
		}
		cfg.CollMethod = romio.ListSync
		listColl, err := e.run(cfg)
		if err != nil {
			return err
		}
		cfg.Strategy = core.WWList
		cfg.CollMethod = romio.TwoPhase
		cfg.QuerySync = true
		listSync, err := e.run(cfg)
		if err != nil {
			return err
		}
		rows[i] = [3]float64{twoPhase.Overall.Seconds(),
			listColl.Overall.Seconds(), listSync.Overall.Seconds()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"§5 — collective I/O implementations (overall seconds)",
		"processes", "two-phase", "list-sync collective", "WW-List + query sync")
	for i, p := range procs {
		t.AddRowf(p, rows[i][0], rows[i][1], rows[i][2])
	}
	return t, nil
}

// HybridComparison runs the hybrid query/database segmentation extension:
// the same workload and process count split into 1, 2, 4, ... groups.
func HybridComparison(base core.Config, groups []int, parallelism ...int) (*stats.Table, error) {
	e := newExtExec(&base, parallelism)
	rows := make([][2]float64, len(groups))
	err := forEach(e.par, len(groups), func(i int) error {
		cfg := base
		cfg.QueryGroups = groups[i]
		rep, err := e.run(cfg)
		if err != nil {
			return err
		}
		var maxMaster des.Time
		for _, m := range rep.Masters {
			busy := m.Total - m.Phases[core.PhaseDataDist] - m.Phases[core.PhaseSync]
			if busy > maxMaster {
				maxMaster = busy
			}
		}
		rows[i] = [2]float64{rep.Overall.Seconds(), maxMaster.Seconds()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("§5 — hybrid segmentation, %s at %d procs (overall seconds)",
			base.Strategy, base.Procs),
		"query-groups", "overall (s)", "master-busy max (s)")
	for i, g := range groups {
		t.AddRowf(g, rows[i][0], rows[i][1])
	}
	return t, nil
}

// ResumeOutcome is one row of the write-frequency/failure trade-off.
type ResumeOutcome struct {
	QueriesPerWrite int
	NoFailure       des.Time // clean run
	FailAt          des.Time // injected failure time
	ResumeFrom      int      // first query not durable at the failure
	ResumeRun       des.Time // duration of the restarted run
	TotalWithFail   des.Time // FailAt + ResumeRun
}

// ResumeTradeoff quantifies what frequent writes buy (§2: resumability):
// for each write granularity, a failure is injected at failFrac of the
// clean run's duration; work not yet durably flushed is lost and a resume
// run re-processes it. Returns one outcome per granularity. Granularities
// run concurrently (each one's resume run still depends on its clean run).
func ResumeTradeoff(base core.Config, granularities []int, failFrac float64, parallelism ...int) ([]ResumeOutcome, error) {
	e := newExtExec(&base, parallelism)
	out := make([]ResumeOutcome, len(granularities))
	err := forEach(e.par, len(granularities), func(i int) error {
		cfg := base
		cfg.QueriesPerWrite = granularities[i]
		clean, err := e.run(cfg)
		if err != nil {
			return err
		}
		failAt := des.Time(failFrac * float64(clean.Overall))
		// A resume can only start after the longest prefix of batches whose
		// writes were durably complete at the failure instant.
		resumeFrom := 0
		for bi, ft := range clean.BatchFlushTimes {
			if ft <= 0 || ft > failAt {
				break
			}
			// Batch bi covers queries [bi*n, min((bi+1)*n, Q)).
			hi := (bi + 1) * granularities[i]
			if hi > cfg.Workload.NumQueries {
				hi = cfg.Workload.NumQueries
			}
			resumeFrom = hi
		}
		oc := ResumeOutcome{
			QueriesPerWrite: granularities[i],
			NoFailure:       clean.Overall,
			FailAt:          failAt,
			ResumeFrom:      resumeFrom,
		}
		if resumeFrom >= cfg.Workload.NumQueries {
			oc.ResumeRun = 0 // everything was already durable
		} else {
			rcfg := cfg
			rcfg.ResumeFromQuery = resumeFrom
			resumed, err := e.run(rcfg)
			if err != nil {
				return err
			}
			oc.ResumeRun = resumed.Overall
		}
		oc.TotalWithFail = oc.FailAt + oc.ResumeRun
		out[i] = oc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ResumeTable renders resume outcomes.
func ResumeTable(outcomes []ResumeOutcome) *stats.Table {
	t := stats.NewTable(
		"§2 — write frequency vs failure recovery (failure mid-run)",
		"queries/write", "clean run (s)", "durable queries", "resume run (s)", "total with failure (s)")
	for _, oc := range outcomes {
		t.AddRowf(oc.QueriesPerWrite, oc.NoFailure.Seconds(), oc.ResumeFrom,
			oc.ResumeRun.Seconds(), oc.TotalWithFail.Seconds())
	}
	return t
}

// ServerSweep varies the number of PVFS2 I/O servers at fixed process
// count (§4: "a larger file system configuration with more I/O bandwidth
// may have provided more scalable I/O performance").
func ServerSweep(base core.Config, servers []int, parallelism ...int) (*stats.Table, error) {
	e := newExtExec(&base, parallelism)
	rows := make([][2]float64, len(servers))
	err := forEach(e.par, len(servers), func(i int) error {
		cfg := base
		cfg.FS.NumServers = servers[i]
		rep, err := e.run(cfg)
		if err != nil {
			return err
		}
		rows[i] = [2]float64{rep.Overall.Seconds(),
			rep.WorkerAvg.Phases[core.PhaseIO].Seconds()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("§4 — I/O server scaling, %s at %d procs", base.Strategy, base.Procs),
		"servers", "overall (s)", "worker I/O phase (s)")
	for i, n := range servers {
		t.AddRowf(n, rows[i][0], rows[i][1])
	}
	return t, nil
}

// SegmentationComparison quantifies §1's motivation for database
// segmentation: it runs the same workload under database segmentation and
// under the query-segmentation baseline while growing the database, with
// worker memory fixed. Once the replicated database no longer fits in
// memory, query segmentation pays its per-query re-read.
func SegmentationComparison(base core.Config, dbSizes []int64, parallelism ...int) (*stats.Table, error) {
	e := newExtExec(&base, parallelism)
	rows := make([][2]float64, len(dbSizes))
	err := forEach(e.par, len(dbSizes), func(i int) error {
		cfg := base
		cfg.DatabaseBytes = dbSizes[i]
		cfg.Segmentation = core.DatabaseSeg
		dbRep, err := e.run(cfg)
		if err != nil {
			return err
		}
		cfg.Segmentation = core.QuerySeg
		qRep, err := e.run(cfg)
		if err != nil {
			return err
		}
		rows[i] = [2]float64{dbRep.Overall.Seconds(), qRep.Overall.Seconds()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("§1 — database vs query segmentation at %d procs (worker memory %d MB)",
			base.Procs, base.WorkerMemoryBytes>>20),
		"database (MB)", "database-seg (s)", "query-seg (s)")
	for i, db := range dbSizes {
		t.AddRowf(db>>20, rows[i][0], rows[i][1])
	}
	return t, nil
}

// OutputScaleSweep varies the result volume by scaling the per-query result
// count (§5: "different I/O characteristics ... amount of results").
func OutputScaleSweep(base core.Config, multipliers []float64, parallelism ...int) (*stats.Table, error) {
	e := newExtExec(&base, parallelism)
	rows := make([][3]float64, len(multipliers))
	err := forEach(e.par, len(multipliers), func(i int) error {
		cfg := base
		cfg.Workload.MinResults = int(float64(base.Workload.MinResults) * multipliers[i])
		cfg.Workload.MaxResults = int(float64(base.Workload.MaxResults) * multipliers[i])
		if cfg.Workload.MinResults < 1 {
			cfg.Workload.MinResults = 1
		}
		if cfg.Workload.MaxResults < cfg.Workload.MinResults {
			cfg.Workload.MaxResults = cfg.Workload.MinResults
		}
		rep, err := e.run(cfg)
		if err != nil {
			return err
		}
		rows[i] = [3]float64{float64(rep.OutputBytes) / 1e6,
			rep.Overall.Seconds(), rep.WorkerAvg.Phases[core.PhaseIO].Seconds()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("§5 — output volume scaling, %s at %d procs", base.Strategy, base.Procs),
		"result-count x", "output (MB)", "overall (s)", "worker I/O phase (s)")
	for i, m := range multipliers {
		t.AddRowf(m, rows[i][0], rows[i][1], rows[i][2])
	}
	return t, nil
}
