package experiments

import (
	"reflect"
	"strings"
	"testing"

	"s3asim/internal/core"
)

// TestAdaptiveSweepDeterministic pins the suite's reproducibility contract:
// the same options produce a DeepEqual result on every run, at any host
// parallelism. Each cell owns a private controller and causal recorder, so
// nothing about scheduling may leak into the scores.
func TestAdaptiveSweepDeterministic(t *testing.T) {
	run := func(parallelism int) *AdaptiveResult {
		opts := QuickAdaptiveOptions()
		opts.Queries = 24
		opts.Strategies = []core.Strategy{core.MW, core.WWList}
		opts.Parallelism = parallelism
		ar, err := RunAdaptiveSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		return ar
	}
	seq := run(1)
	if !reflect.DeepEqual(seq, run(1)) {
		t.Fatal("two sequential adaptive sweeps differ")
	}
	if !reflect.DeepEqual(seq, run(4)) {
		t.Fatal("parallel adaptive sweep differs from sequential")
	}
}

// TestAdaptiveSweepHeadline asserts the suite's claim at the quick scale: the
// controller loses to the best static strategy nowhere (within the documented
// 3% quick tolerance — 48 queries leave a visible cold-start transient on the
// near-crossover medium regime; the paper scale holds 2%, pinned by the
// committed BENCH baseline) and strictly beats every static on at least one
// mixed regime.
func TestAdaptiveSweepHeadline(t *testing.T) {
	ar, err := RunAdaptiveSweep(QuickAdaptiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	lost, wins := ar.Headline(0.03)
	if len(lost) > 0 {
		t.Errorf("controller lost beyond tolerance on %v", lost)
	}
	if len(wins) == 0 {
		t.Error("controller strictly won no mixed regime")
	}
	var mixedSwitched, mixedDiverse bool
	for _, rr := range ar.Regimes {
		ad := rr.Controller().Adaptive
		if ad == nil {
			t.Fatalf("%s: controller cell has no adaptive report", rr.Name)
		}
		if !rr.Mixed {
			continue
		}
		if rr.Controller().Switches > 0 {
			mixedSwitched = true
		}
		used := 0
		for _, n := range ad.Assigned {
			if n > 0 {
				used++
			}
		}
		if used > 1 {
			mixedDiverse = true
		}
	}
	if !mixedSwitched {
		t.Error("no mixed regime recorded an incumbent switch")
	}
	if !mixedDiverse {
		t.Error("no mixed regime used more than one arm")
	}
}

// TestAdaptiveTablesRender smoke-checks every report table: the score and arm
// tables plus one causal diff per regime, all non-empty.
func TestAdaptiveTablesRender(t *testing.T) {
	opts := QuickAdaptiveOptions()
	opts.Queries = 24
	opts.Strategies = []core.Strategy{core.MW, core.WWList}
	ar, err := RunAdaptiveSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	tables := ar.Tables()
	if want := 2 + len(ar.Regimes); len(tables) != want {
		t.Fatalf("Tables returned %d tables, want %d", len(tables), want)
	}
	for i, tb := range tables {
		s := tb.String()
		if !strings.Contains(s, "tiny-results") && !strings.Contains(s, "adaptive") {
			t.Fatalf("table %d names neither a regime nor the controller:\n%s", i, s)
		}
	}
	if ar.DiffTable("no-such-regime") != nil {
		t.Fatal("DiffTable invented a regime")
	}
}
