package experiments

import (
	"fmt"

	"s3asim/internal/causal"
	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/search"
	"s3asim/internal/stats"
)

// This file is the "-explain" mode behind s3abench: run the full strategy ×
// {no-sync, sync} matrix at one process count with a causal recorder attached
// to every run, extract each run's critical path, and render the attribution
// as tables — where every virtual nanosecond of the overall time went, which
// strategy pays it in which category, and how two strategies' paths differ
// (the mechanical version of the paper's Figures 4–9 narrative).

// ExplainOptions configures RunExplain.
type ExplainOptions struct {
	// Base is the template configuration; Strategy and QuerySync are
	// overridden per run, Procs by the Procs field below.
	Base core.Config
	// Procs is the process count to explain at (0 keeps Base.Procs).
	Procs int
	// Strategies defaults to all four.
	Strategies []core.Strategy
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS, 1 = sequential).
	// Recorders are per-run, so results are identical at any parallelism.
	Parallelism int
	// CaptureFlows additionally records message flow arrows on every run's
	// recorder (for Perfetto export of an explained run).
	CaptureFlows bool
}

// ExplainRun is one (strategy, sync) run with its causal analysis.
type ExplainRun struct {
	Strategy  core.Strategy
	QuerySync bool
	Report    *core.Report
	// Attribution is the run's critical path (conservation-checked: the
	// categories sum exactly to Report.Overall).
	Attribution *causal.Attribution
	// Totals is the all-process category aggregate — total instrumented
	// virtual time, on and off the critical path.
	Totals causal.Breakdown
	// Recorder is the run's raw happens-before record (flow events, custom
	// windows via Attribution.Between).
	Recorder *causal.Recorder
}

// ExplainResult is a completed explain matrix.
type ExplainResult struct {
	Procs int
	Strat []core.Strategy
	Syncs []bool
	Runs  map[CellKey]*ExplainRun
}

// RunExplain runs every (strategy, sync) combination once at opts.Procs with
// a fresh causal recorder per run and returns the analyzed matrix. Every
// attribution is conservation-checked before returning.
func RunExplain(opts ExplainOptions) (*ExplainResult, error) {
	procs := opts.Procs
	if procs <= 0 {
		procs = opts.Base.Procs
	}
	strat := opts.Strategies
	if len(strat) == 0 {
		strat = core.Strategies
	}
	er := &ExplainResult{
		Procs: procs,
		Strat: strat,
		Syncs: []bool{false, true},
		Runs:  make(map[CellKey]*ExplainRun),
	}
	var (
		keys []CellKey
		cfgs []core.Config
		recs []*causal.Recorder
	)
	for _, s := range strat {
		for _, sync := range er.Syncs {
			cfg := opts.Base
			cfg.Strategy = s
			cfg.QuerySync = sync
			cfg.Procs = procs
			rec := causal.NewRecorder()
			rec.SetCaptureFlows(opts.CaptureFlows)
			keys = append(keys, CellKey{Strategy: s, QuerySync: sync, X: float64(procs)})
			cfgs = append(cfgs, cfg)
			recs = append(recs, rec)
		}
	}
	par := (&Options{Base: opts.Base, Parallelism: opts.Parallelism}).parallelism()
	_, _, err := runAllCells(par, 1, search.NewCache(), cfgs,
		func(cell, rep int, cfg *core.Config) { cfg.Causal = recs[cell] },
		func(cell, rep int, err error) error {
			k := keys[cell]
			return fmt.Errorf("explain: %v sync=%v: %w", k.Strategy, k.QuerySync, err)
		},
		func(cell int, reports []*core.Report) {
			k := keys[cell]
			r := reports[0]
			er.Runs[k] = &ExplainRun{
				Strategy:    k.Strategy,
				QuerySync:   k.QuerySync,
				Report:      r,
				Attribution: r.Attribution,
				Totals:      r.CausalTotals,
				Recorder:    recs[cell],
			}
		})
	if err != nil {
		return nil, err
	}
	for _, run := range er.Runs {
		if run.Attribution == nil {
			return nil, fmt.Errorf("explain: %v sync=%v produced no attribution",
				run.Strategy, run.QuerySync)
		}
		if err := run.Attribution.Check(); err != nil {
			return nil, fmt.Errorf("explain: %v sync=%v: %w", run.Strategy, run.QuerySync, err)
		}
	}
	return er, nil
}

// Run returns the analyzed run for (strategy, sync), or nil.
func (er *ExplainResult) Run(s core.Strategy, sync bool) *ExplainRun {
	return er.Runs[CellKey{Strategy: s, QuerySync: sync, X: float64(er.Procs)}]
}

// PathTable renders the critical-path attribution for one sync mode: one row
// per strategy, one column per category, plus the attributed total — which
// equals the overall virtual time exactly (the conservation invariant).
func (er *ExplainResult) PathTable(sync bool) *stats.Table {
	label := "no-sync"
	if sync {
		label = "sync"
	}
	headers := []string{"strategy"}
	for _, n := range causal.CategoryNames() {
		headers = append(headers, n+" (s)")
	}
	headers = append(headers, "total (s)", "overall (s)")
	t := stats.NewTable(
		fmt.Sprintf("Critical-path attribution — %d procs, %s", er.Procs, label),
		headers...)
	for _, s := range er.Strat {
		run := er.Run(s, sync)
		if run == nil {
			continue
		}
		row := []any{s.String()}
		for c := causal.Category(0); c < causal.NumCategories; c++ {
			row = append(row, run.Attribution.ByCat[c].Seconds())
		}
		row = append(row, run.Attribution.Total.Seconds(), run.Report.Overall.Seconds())
		t.AddRowf(row...)
	}
	return t
}

// ShareTable renders the same attribution as percentages of the overall time.
func (er *ExplainResult) ShareTable(sync bool) *stats.Table {
	label := "no-sync"
	if sync {
		label = "sync"
	}
	headers := []string{"strategy"}
	for _, n := range causal.CategoryNames() {
		headers = append(headers, n+" (%)")
	}
	t := stats.NewTable(
		fmt.Sprintf("Critical-path shares — %d procs, %s", er.Procs, label),
		headers...)
	for _, s := range er.Strat {
		run := er.Run(s, sync)
		if run == nil {
			continue
		}
		shares := run.Attribution.Shares()
		row := []any{s.String()}
		for c := causal.Category(0); c < causal.NumCategories; c++ {
			row = append(row, 100*shares[c])
		}
		t.AddRowf(row...)
	}
	return t
}

// TotalsTable renders the all-process category aggregate (the denominator of
// "how much of the fleet's time was X", not just the critical path).
func (er *ExplainResult) TotalsTable(sync bool) *stats.Table {
	label := "no-sync"
	if sync {
		label = "sync"
	}
	headers := []string{"strategy"}
	for _, n := range causal.CategoryNames() {
		headers = append(headers, n+" (s)")
	}
	t := stats.NewTable(
		fmt.Sprintf("All-process category totals — %d procs, %s", er.Procs, label),
		headers...)
	for _, s := range er.Strat {
		run := er.Run(s, sync)
		if run == nil {
			continue
		}
		row := []any{s.String()}
		for c := causal.Category(0); c < causal.NumCategories; c++ {
			row = append(row, run.Totals[c].Seconds())
		}
		t.AddRowf(row...)
	}
	return t
}

// DiffTable renders a per-category critical-path comparison of two runs —
// e.g. WW-Coll vs WW-List under query-sync, the paper's Figures 4/7 story:
// where the slower strategy's extra virtual time actually goes.
func (er *ExplainResult) DiffTable(a, b core.Strategy, sync bool) *stats.Table {
	label := "no-sync"
	if sync {
		label = "sync"
	}
	ra, rb := er.Run(a, sync), er.Run(b, sync)
	t := stats.NewTable(
		fmt.Sprintf("Critical-path diff — %s vs %s, %d procs, %s", a, b, er.Procs, label),
		"category", a.String()+" (s)", b.String()+" (s)", "delta (s)")
	if ra == nil || rb == nil {
		return t
	}
	for c := causal.Category(0); c < causal.NumCategories; c++ {
		da, db := ra.Attribution.ByCat[c], rb.Attribution.ByCat[c]
		t.AddRowf(c.String(), da.Seconds(), db.Seconds(), (da - db).Seconds())
	}
	ta, tb := ra.Attribution.Total, rb.Attribution.Total
	t.AddRowf("total", ta.Seconds(), tb.Seconds(), (ta - tb).Seconds())
	return t
}

// SyncWaitDelta reports how much more critical-path time the synchronized run
// of strategy s spends in collective/sync wait than the unsynchronized run —
// the mechanical form of the paper's query-sync penalty.
func (er *ExplainResult) SyncWaitDelta(s core.Strategy) des.Time {
	withSync, noSync := er.Run(s, true), er.Run(s, false)
	if withSync == nil || noSync == nil {
		return 0
	}
	return withSync.Attribution.ByCat[causal.CatSyncWait] -
		noSync.Attribution.ByCat[causal.CatSyncWait]
}

// Tables returns the full explain report in print order: path attribution and
// shares per sync mode, the WW-Coll vs WW-List diff under sync, and the
// all-process totals.
func (er *ExplainResult) Tables() []*stats.Table {
	var out []*stats.Table
	for _, sync := range er.Syncs {
		out = append(out, er.PathTable(sync), er.ShareTable(sync))
	}
	if er.Run(core.WWColl, true) != nil && er.Run(core.WWList, true) != nil {
		out = append(out, er.DiffTable(core.WWColl, core.WWList, true))
	}
	for _, sync := range er.Syncs {
		out = append(out, er.TotalsTable(sync))
	}
	return out
}

// AttributionTable renders the mean per-cell critical-path attribution of a
// sweep that ran with Options.CellCausal — one row per (strategy, sync, x)
// cell that recorded a path.
func (sr *SweepResult) AttributionTable() *stats.Table {
	headers := []string{"strategy", "sync", sr.xLabel()}
	for _, n := range causal.CategoryNames() {
		headers = append(headers, n+" (s)")
	}
	headers = append(headers, "total (s)")
	t := stats.NewTable("Critical-path attribution (mean over repetitions)", headers...)
	for _, s := range sr.Strat {
		for _, sync := range sr.Syncs {
			for _, x := range sr.Xs {
				cell := sr.Cell(s, sync, x)
				if cell == nil || cell.PathRuns == 0 {
					continue
				}
				row := []any{s.String(), fmt.Sprint(sync), trimFloat(x)}
				for c := causal.Category(0); c < causal.NumCategories; c++ {
					row = append(row, cell.Path[c].Seconds())
				}
				row = append(row, cell.Path.Total().Seconds())
				t.AddRowf(row...)
			}
		}
	}
	return t
}
