package experiments

import (
	"strings"
	"testing"

	"s3asim/internal/causal"
	"s3asim/internal/core"
)

func quickExplainOptions() ExplainOptions {
	return ExplainOptions{
		Base:  QuickOptions().Base,
		Procs: 8,
	}
}

// TestRunExplainSmoke runs the full explain matrix at quick scale and checks
// the headline properties: every run has a conservation-checked attribution,
// the tables render, and WW-Coll under query-sync pays more collective/sync
// wait than without (the paper's Figures 4/7 claim, mechanically).
func TestRunExplainSmoke(t *testing.T) {
	er, err := RunExplain(quickExplainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(er.Runs) != len(core.Strategies)*2 {
		t.Fatalf("got %d runs, want %d", len(er.Runs), len(core.Strategies)*2)
	}
	for _, s := range core.Strategies {
		for _, sync := range []bool{false, true} {
			run := er.Run(s, sync)
			if run == nil {
				t.Fatalf("missing run %v sync=%v", s, sync)
			}
			if run.Attribution.Total != run.Report.Overall {
				t.Fatalf("%v sync=%v: attributed %v != overall %v",
					s, sync, run.Attribution.Total, run.Report.Overall)
			}
			if run.Totals.Total() == 0 {
				t.Fatalf("%v sync=%v: empty totals", s, sync)
			}
		}
	}
	if d := er.SyncWaitDelta(core.WWColl); d <= 0 {
		t.Fatalf("WW-Coll query-sync did not add critical-path sync wait (delta %v)", d)
	}
	tables := er.Tables()
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	var sawDiff bool
	for _, tb := range tables {
		if tb.String() == "" {
			t.Fatalf("empty rendering for %q", tb.Title)
		}
		if strings.Contains(tb.Title, "diff") {
			sawDiff = true
			if tb.NumRows() != int(causal.NumCategories)+1 {
				t.Fatalf("diff table has %d rows", tb.NumRows())
			}
		}
	}
	if !sawDiff {
		t.Fatal("Tables() did not include the WW-Coll vs WW-List diff")
	}
}

// TestExplainDeterministicAcrossParallelism pins the acceptance criterion:
// recorder-attached runs produce identical attributions whether the matrix
// runs sequentially or fanned out.
func TestExplainDeterministicAcrossParallelism(t *testing.T) {
	opts := quickExplainOptions()
	opts.Parallelism = 1
	seq, err := RunExplain(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	par, err := RunExplain(opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, a := range seq.Runs {
		b := par.Runs[k]
		if b == nil {
			t.Fatalf("parallel run missing %v", k)
		}
		if a.Attribution.ByCat != b.Attribution.ByCat ||
			a.Attribution.Total != b.Attribution.Total ||
			a.Attribution.EndProc != b.Attribution.EndProc ||
			a.Totals != b.Totals {
			t.Fatalf("%v: attribution differs across parallelism:\n%v\nvs\n%v",
				k, a.Attribution, b.Attribution)
		}
		if len(a.Attribution.Steps) != len(b.Attribution.Steps) {
			t.Fatalf("%v: step counts differ", k)
		}
		for i := range a.Attribution.Steps {
			if a.Attribution.Steps[i] != b.Attribution.Steps[i] {
				t.Fatalf("%v: step %d differs", k, i)
			}
		}
	}
}

// TestSweepCellCausal pins the Options.CellCausal path: a quick sweep with
// per-run recorders lands mean path attributions in every cell and the
// AttributionTable renders one row per cell, with conserved totals.
func TestSweepCellCausal(t *testing.T) {
	opts := QuickOptions()
	opts.Procs = []int{2, 4}
	opts.Parallelism = 4
	opts.CellCausal = func(key CellKey, rep int) *causal.Recorder {
		return causal.NewRecorder()
	}
	sr, err := RunProcessSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, c := range sr.Cells {
		if c.PathRuns != 1 {
			t.Fatalf("cell %v: PathRuns %d", c.Key, c.PathRuns)
		}
		// Cell.Overall round-trips through float seconds, so compare with a
		// nanosecond of slack; the path itself is exact (see core tests).
		if d := c.Path.Total() - c.Overall; d < -2 || d > 2 {
			t.Fatalf("cell %v: path total %v != overall %v", c.Key, c.Path.Total(), c.Overall)
		}
		rows++
	}
	tb := sr.AttributionTable()
	if tb.NumRows() != rows {
		t.Fatalf("attribution table has %d rows, want %d", tb.NumRows(), rows)
	}
}
