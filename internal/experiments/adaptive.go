package experiments

import (
	"fmt"

	"s3asim/internal/causal"
	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/romio"
	"s3asim/internal/search"
	"s3asim/internal/serve"
	"s3asim/internal/stats"
)

// This file is the "-suite adaptive" harness: pit the closed-loop controller
// (core.Config.Adaptive — per-batch strategy selection plus ROMIO hint
// hill-climbing, DESIGN.md §16) against every static strategy across a set of
// workload regimes. Each regime is engineered so a different static strategy
// wins, so a controller that merely locks onto one arm loses somewhere; the
// headline claim is "adaptive matches the best static everywhere and beats
// every static on the mixed regimes". Every cell runs under a causal recorder
// and its attribution is conservation-checked, so the comparison tables can
// say *where* the saved time came from (sync wait, I/O queueing, transit).

// AdaptiveOptions configures RunAdaptiveSweep.
type AdaptiveOptions struct {
	// Base is the template configuration; Strategy, Adaptive, the workload
	// shape, Serve, and Readback are overridden per regime and cell.
	Base core.Config
	// Controller is the adaptive cell's controller template (zero value =
	// core defaults: all of {MW, WW-List, WW-Coll}, hysteresis 0.10).
	Controller core.AdaptiveConfig
	// Strategies are the static comparators (default all four).
	Strategies []core.Strategy
	// Queries is the query count of each batch regime (default 48): enough
	// batches that the controller's bootstrap phase amortizes.
	Queries int
	// Parallelism bounds concurrent cells (0 = GOMAXPROCS, 1 = sequential);
	// results are bit-identical at any width.
	Parallelism int
}

// QuickAdaptiveOptions is the test/smoke scale: the same 16-process,
// 16-fragment topology as the paper scale (the strategy crossovers the
// controller must learn are topology-dependent, so quick is a shorter run of
// the same experiment, not a smaller cluster) with 48 queries per regime.
func QuickAdaptiveOptions() AdaptiveOptions {
	base := core.DefaultConfig()
	base.Procs = 16
	base.Workload.NumFragments = 16
	base.Workload.MinResults = 20
	base.Workload.MaxResults = 40
	base.Workload.QueryHist = stats.Uniform(200, 2000)
	base.Workload.DBSeqHist = stats.Uniform(200, 10000)
	base.Workload.MinResultSize = 256
	return AdaptiveOptions{
		Base:    base,
		Queries: 48,
		// A slow EWMA and a wide hysteresis band: the paper-shaped medium
		// regime sits near the MW / WW-List crossover with DB-dominated
		// (ex-ante unpredictable) result sizes, so per-batch headway noise
		// must not flip the incumbent.
		Controller: core.AdaptiveConfig{Gamma: 0.05},
	}
}

// PaperAdaptiveOptions is the full scale: the same topology, 96 queries per
// batch regime.
func PaperAdaptiveOptions() AdaptiveOptions {
	opts := QuickAdaptiveOptions()
	opts.Queries = 96
	return opts
}

// adaptiveRegime shapes one workload regime of the sweep.
type adaptiveRegime struct {
	name   string
	metric string                 // "wall (s)" or "p99 (s)"
	mutate func(cfg *core.Config) // workload shaping, applied to every cell
	plan   *serve.Plan            // non-nil: open-loop serving regime
	slo    des.Time               // serving SLO target
	mixed  bool                   // a regime where no single arm should win
}

// regimes builds the sweep's regime set from the options:
//
//   - tiny-results: every result is small, so the master-write bottleneck
//     never bites — MW's single contiguous write should win.
//   - paper-medium: the paper-shaped medium workload where WW-List wins.
//   - bimodal-batch: a per-query mix of tiny and huge results; no static
//     strategy is right for both modes, so the controller should beat all.
//   - serve-mixed: the same bimodal mix arriving as open-loop traffic,
//     scored on p99 latency instead of wall-clock.
//   - getput-mix: bimodal with the verified read path re-reading each batch
//     once after its write (≈50/50 GET/PUT) plus a 100% GET post-run pass.
func (o *AdaptiveOptions) regimes() []adaptiveRegime {
	queries := o.Queries
	if queries <= 0 {
		queries = 48
	}
	// The bimodal mix: half the queries are tiny probes, half are huge
	// scans. Result size tracks query length (the DB sequences stay
	// moderate), so the controller's ex-ante length signal is honest — the
	// paper's premise that query size drives result volume.
	bimodal := func(cfg *core.Config) {
		cfg.Workload.NumQueries = queries
		cfg.Workload.QueryHist = stats.MustBoxHistogram([]stats.Bin{
			{Min: 60, Max: 150, Weight: 1},
			{Min: 20000, Max: 60000, Weight: 1},
		})
		cfg.Workload.DBSeqHist = stats.Uniform(200, 2000)
		cfg.Workload.MinResultSize = 64
	}
	return []adaptiveRegime{
		{
			name:   "tiny-results",
			metric: "wall (s)",
			mutate: func(cfg *core.Config) {
				cfg.Workload.NumQueries = queries
				cfg.Workload.QueryHist = stats.Uniform(60, 150)
				cfg.Workload.DBSeqHist = stats.Uniform(100, 300)
				cfg.Workload.MinResultSize = 64
			},
		},
		{
			name:   "paper-medium",
			metric: "wall (s)",
			mutate: func(cfg *core.Config) {
				cfg.Workload.NumQueries = queries
			},
		},
		{
			name:   "bimodal-batch",
			metric: "wall (s)",
			mutate: bimodal,
			mixed:  true,
		},
		{
			name:   "serve-mixed",
			metric: "p99 (s)",
			mutate: bimodal,
			plan: &serve.Plan{
				Seed:    11,
				Horizon: 10 * des.Second,
				Tenants: []serve.Tenant{
					{Name: "steady", Rate: 3, Process: serve.Poisson},
					{Name: "spiky", Rate: 2, Process: serve.Bursty,
						BurstFactor: 5, BurstFrac: 0.15,
						BurstDwell: 500 * des.Millisecond},
				},
			},
			slo:   2 * des.Second,
			mixed: true,
		},
		{
			name:   "getput-mix",
			metric: "wall (s)",
			mutate: func(cfg *core.Config) {
				bimodal(cfg)
				cfg.CaptureData = true
				cfg.Readback = &core.ReadbackConfig{
					Method:     romio.ListIO,
					InRunReads: 1,
					PostRun:    true,
				}
			},
			mixed: true,
		},
	}
}

// AdaptiveCellResult is one (regime, policy) outcome.
type AdaptiveCellResult struct {
	// Label is the static strategy name, or "adaptive".
	Label string
	// IsAdaptive marks the controller cell.
	IsAdaptive bool
	// Overall is the run's virtual wall-clock.
	Overall des.Time
	// Score is the regime's comparison metric: Overall for batch regimes,
	// p99 end-to-end latency for serving regimes.
	Score des.Time
	// Path is the run's conservation-checked critical-path decomposition.
	Path causal.Breakdown
	// Violations counts SLO violations (serving regimes only).
	Violations int
	// Switches and Adaptive describe the controller cell (zero/nil for
	// static cells).
	Switches int64
	Adaptive *core.AdaptiveReport
}

// AdaptiveRegimeResult is one regime's full comparison.
type AdaptiveRegimeResult struct {
	Name   string
	Metric string
	// Mixed marks regimes engineered so no single static arm should win.
	Mixed bool
	// Cells holds the static strategies in option order, then the adaptive
	// cell last.
	Cells []*AdaptiveCellResult
}

// Controller returns the regime's adaptive cell.
func (rr *AdaptiveRegimeResult) Controller() *AdaptiveCellResult {
	return rr.Cells[len(rr.Cells)-1]
}

// BestStatic returns the static cell with the lowest score.
func (rr *AdaptiveRegimeResult) BestStatic() *AdaptiveCellResult {
	var best *AdaptiveCellResult
	for _, c := range rr.Cells {
		if c.IsAdaptive {
			continue
		}
		if best == nil || c.Score < best.Score {
			best = c
		}
	}
	return best
}

// AdaptiveResult is a completed adaptive-I/O sweep.
type AdaptiveResult struct {
	Strat   []core.Strategy
	Regimes []*AdaptiveRegimeResult
}

// Headline evaluates the sweep's claim: the controller is no worse than the
// best static strategy (within tol, e.g. 0.01 = 1%) on every regime, and
// strictly better than every static on at least one mixed regime. It returns
// the regimes where the controller lost by more than tol, and the mixed
// regimes where it strictly won.
func (ar *AdaptiveResult) Headline(tol float64) (lost, strictWins []string) {
	for _, rr := range ar.Regimes {
		ad, best := rr.Controller(), rr.BestStatic()
		if float64(ad.Score) > float64(best.Score)*(1+tol) {
			lost = append(lost, rr.Name)
		}
		if rr.Mixed && ad.Score < best.Score {
			strictWins = append(strictWins, rr.Name)
		}
	}
	return lost, strictWins
}

// RunAdaptiveSweep runs every regime × (static strategies + controller) cell
// under a private causal recorder, conservation-checks every attribution,
// and assembles the comparison. Results are bit-identical at any
// Parallelism.
func RunAdaptiveSweep(opts AdaptiveOptions) (*AdaptiveResult, error) {
	strat := opts.Strategies
	if len(strat) == 0 {
		strat = core.Strategies
	}
	regimes := opts.regimes()
	ar := &AdaptiveResult{Strat: strat}

	var (
		cfgs  []core.Config
		recs  []*causal.Recorder
		cells []*AdaptiveCellResult
	)
	for _, rg := range regimes {
		rr := &AdaptiveRegimeResult{Name: rg.name, Metric: rg.metric, Mixed: rg.mixed}
		var arrivals []serve.Arrival
		if rg.plan != nil {
			arr, err := rg.plan.Generate()
			if err != nil {
				return nil, fmt.Errorf("adaptive sweep: %s: %w", rg.name, err)
			}
			if len(arr) == 0 {
				return nil, fmt.Errorf("adaptive sweep: %s generated no arrivals", rg.name)
			}
			arrivals = arr
		}
		for pol := 0; pol <= len(strat); pol++ {
			cfg := opts.Base
			rg.mutate(&cfg)
			cell := &AdaptiveCellResult{}
			if pol < len(strat) {
				cfg.Strategy = strat[pol]
				cell.Label = strat[pol].String()
			} else {
				ctrl := opts.Controller
				cfg.Adaptive = &ctrl
				cell.Label = "adaptive"
				cell.IsAdaptive = true
			}
			if rg.plan != nil {
				cfg.Workload.NumQueries = len(arrivals)
				cfg.Serve = &core.ServePlan{
					Arrivals: serve.Times(arrivals),
					Tenants:  serve.TenantNames(arrivals),
					SLO:      rg.slo,
				}
			}
			rr.Cells = append(rr.Cells, cell)
			cells = append(cells, cell)
			cfgs = append(cfgs, cfg)
			recs = append(recs, causal.NewRecorder())
		}
		ar.Regimes = append(ar.Regimes, rr)
	}

	par := (&Options{Base: opts.Base, Parallelism: opts.Parallelism}).parallelism()
	regimeOf := func(cell int) adaptiveRegime { return regimes[cell/(len(strat)+1)] }
	var cellErr error
	_, _, err := runAllCells(par, 1, search.NewCache(), cfgs,
		func(cell, rep int, cfg *core.Config) {
			cfg.Causal = recs[cell]
		},
		func(cell, rep int, err error) error {
			return fmt.Errorf("adaptive sweep: %s %s: %w",
				regimeOf(cell).name, cells[cell].Label, err)
		},
		func(cell int, reports []*core.Report) {
			if cellErr != nil {
				return
			}
			if err := finishAdaptiveCell(cells[cell], reports[0], regimeOf(cell)); err != nil {
				cellErr = fmt.Errorf("adaptive sweep: %s %s: %w",
					regimeOf(cell).name, cells[cell].Label, err)
			}
		})
	if err != nil {
		return nil, err
	}
	if cellErr != nil {
		return nil, cellErr
	}
	return ar, nil
}

// finishAdaptiveCell folds one run's report into its cell: the score, the
// conservation-checked whole-run attribution, and — for the controller cell
// — the adaptive report.
func finishAdaptiveCell(c *AdaptiveCellResult, rep *core.Report, rg adaptiveRegime) error {
	if err := rep.Attribution.Check(); err != nil {
		return err
	}
	c.Overall = rep.Overall
	c.Score = rep.Overall
	c.Path = rep.Attribution.ByCat
	if rg.plan != nil {
		h, ok := rep.Metrics.Hists["serve.latency"]
		if !ok {
			return fmt.Errorf("no serve.latency histogram")
		}
		c.Score = des.FromSeconds(h.Quantile(0.99))
		latencies := make([]des.Time, len(rep.Queries))
		for i, q := range rep.Queries {
			latencies[i] = q.Latency()
		}
		c.Violations = serve.Violations(latencies, rg.slo)
	}
	if ad := rep.Adaptive; ad != nil {
		c.Adaptive = ad
		c.Switches = ad.Switches
	}
	return nil
}

// ScoreTable renders the headline comparison: one row per regime, one column
// per policy, plus the best static and the controller's margin against it
// (positive = controller faster).
func (ar *AdaptiveResult) ScoreTable() *stats.Table {
	headers := []string{"regime", "metric"}
	for _, s := range ar.Strat {
		headers = append(headers, s.String())
	}
	headers = append(headers, "adaptive", "best static", "margin (%)")
	t := stats.NewTable("Adaptive controller vs static strategies", headers...)
	for _, rr := range ar.Regimes {
		row := []any{rr.Name, rr.Metric}
		for _, c := range rr.Cells {
			row = append(row, c.Score.Seconds())
		}
		best := rr.BestStatic()
		margin := 100 * (1 - float64(rr.Controller().Score)/float64(best.Score))
		row = append(row, best.Label, margin)
		t.AddRowf(row...)
	}
	return t
}

// ArmTable renders the controller's behaviour per regime: how batches were
// assigned across arms, switch/epoch counts, and the tuned hints.
func (ar *AdaptiveResult) ArmTable() *stats.Table {
	var armNames []string
	for _, rr := range ar.Regimes {
		if ad := rr.Controller().Adaptive; ad != nil {
			armNames = ad.Arms
			break
		}
	}
	headers := []string{"regime"}
	for _, n := range armNames {
		headers = append(headers, n)
	}
	headers = append(headers, "switches", "epochs", "probes", "converged",
		"cb_nodes", "sieve (KiB)")
	t := stats.NewTable("Adaptive arm assignment and hint search", headers...)
	for _, rr := range ar.Regimes {
		ad := rr.Controller().Adaptive
		if ad == nil {
			continue
		}
		row := []any{rr.Name}
		for _, n := range ad.Assigned {
			row = append(row, n)
		}
		row = append(row, ad.Switches, ad.Epochs, ad.ProbeEpochs, ad.Converged,
			ad.FinalHints.CBNodes, ad.FinalHints.SieveBufferSize/1024)
		t.AddRowf(row...)
	}
	return t
}

// DiffTable renders one regime's causal comparison: the controller's
// critical-path decomposition against the best static strategy's, category
// by category, with the delta (negative = controller spent less there). The
// per-cell attributions are conservation-checked, so each row's categories
// sum exactly to that run's critical-path total.
func (ar *AdaptiveResult) DiffTable(regime string) *stats.Table {
	var rr *AdaptiveRegimeResult
	for _, r := range ar.Regimes {
		if r.Name == regime {
			rr = r
			break
		}
	}
	if rr == nil {
		return nil
	}
	headers := []string{"cell"}
	for _, n := range causal.CategoryNames() {
		headers = append(headers, n+" (s)")
	}
	headers = append(headers, "total (s)")
	t := stats.NewTable(
		fmt.Sprintf("Causal diff — %s (adaptive vs best static %s)",
			rr.Name, rr.BestStatic().Label),
		headers...)
	addRow := func(label string, b causal.Breakdown) {
		row := []any{label}
		for cat := causal.Category(0); cat < causal.NumCategories; cat++ {
			row = append(row, b[cat].Seconds())
		}
		t.AddRowf(append(row, b.Total().Seconds())...)
	}
	ad, best := rr.Controller(), rr.BestStatic()
	addRow("adaptive", ad.Path)
	addRow(best.Label, best.Path)
	var delta causal.Breakdown
	for cat := causal.Category(0); cat < causal.NumCategories; cat++ {
		delta[cat] = ad.Path[cat] - best.Path[cat]
	}
	addRow("delta", delta)
	return t
}

// Tables returns the adaptive report in print order: the score comparison,
// the arm/hint table, and one causal diff per regime.
func (ar *AdaptiveResult) Tables() []*stats.Table {
	out := []*stats.Table{ar.ScoreTable(), ar.ArmTable()}
	for _, rr := range ar.Regimes {
		if t := ar.DiffTable(rr.Name); t != nil {
			out = append(out, t)
		}
	}
	return out
}
