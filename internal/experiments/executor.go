package experiments

import (
	"runtime"
	"sync"
	"time"

	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/search"
)

// This file is the sweep executor: every cell of a suite is an independent
// deterministic simulation (a private des.Simulation per run), so the suite
// fans cells out across a bounded pool of OS-level workers while each DES
// kernel stays single-threaded. Results are keyed and collected independent
// of completion order, so a parallel sweep is bit-identical to a sequential
// one.

// forEach runs job(0..n-1) across at most parallelism goroutines and
// returns the lowest-index error. With parallelism <= 1 it degenerates to a
// plain loop that stops at the first error, like the pre-parallel harness.
// After any failure no new jobs start.
func forEach(parallelism, n int, job func(i int) error) error {
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		firstErr error
		errIdx   int
		failed   bool
		wg       sync.WaitGroup
	)
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := job(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					failed = true
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		mu.Lock()
		stop := failed
		mu.Unlock()
		if stop {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// parallelism resolves the pool width for a suite: Options.Parallelism if
// positive, else GOMAXPROCS. A shared Tracer in the base config is the one
// piece of cross-cell mutable state, so tracing forces sequential runs.
// Per-cell factories (CellSink/CellMetrics) hand every run private state
// and therefore do not restrict parallelism.
func (o *Options) parallelism() int {
	if o.Base.Tracer != nil {
		return 1
	}
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// SweepPerf records how a sweep executed in wall-clock (not virtual) time.
type SweepPerf struct {
	// Parallelism is the worker-pool width the sweep ran with.
	Parallelism int
	// Elapsed is the suite's wall-clock duration.
	Elapsed time.Duration
	// CellTime sums the per-run wall-clock durations — an estimate of the
	// sequential cost of the same suite, so CellTime/Elapsed estimates the
	// realized speedup. Individual cell durations include any time a cell
	// spent descheduled, so when cells oversubscribe the available cores
	// (Parallelism > core count) the estimate is optimistic; for an exact
	// figure compare Elapsed between two sweeps at Parallelism 1 and N.
	CellTime time.Duration
	// CellWall holds every (cell, repetition) run's wall-clock duration in
	// the deterministic job order (cell-major, repetition-minor); it sums to
	// CellTime. Use it to find the sweep's slowest cells.
	CellWall []time.Duration
	// MaxConcurrent is the highest number of simulations observed in flight
	// at once — at most Parallelism, lower when the pool was starved (fewer
	// jobs than workers, or a failure stopped dispatch early).
	MaxConcurrent int
	// Workload counts workload-cache outcomes: Misses is the number of
	// distinct workloads generated for the whole sweep.
	Workload search.CacheStats
}

// Speedup estimates the wall-clock speedup over a sequential execution of
// the same cells (summed cell time over elapsed time).
func (p SweepPerf) Speedup() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.CellTime) / float64(p.Elapsed)
}

// Occupancy estimates pool utilization: realized speedup over pool width
// (1.0 means every worker was busy for the whole sweep). Subject to the
// same descheduling caveat as CellTime.
func (p SweepPerf) Occupancy() float64 {
	if p.Parallelism <= 0 {
		return 0
	}
	return p.Speedup() / float64(p.Parallelism)
}

// cellRun is one (cell, repetition) simulation: the flattened unit of
// parallelism of a sweep.
type cellRun struct {
	cell int // index into the deterministic cell order
	rep  int
}

// simPool hands out reset-and-reused des kernels so a thousand-cell sweep
// pays for calendar storage and process/waiter pools once per executor slot
// instead of once per run. Reset makes a reused kernel observably identical
// to a fresh one, so sweeps stay bit-identical at any parallelism. Kernels
// from successful runs return directly (the next run Resets them itself);
// kernels from failed runs (a deadlock diagnosis, a faulted cell) return
// through putAfterReset, which re-verifies the reset before recirculating —
// so a chaos sweep full of error cells does not allocate a fresh kernel per
// failure.
type simPool struct {
	mu   sync.Mutex
	sims []*des.Simulation
}

func (p *simPool) get() *des.Simulation {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.sims); n > 0 {
		s := p.sims[n-1]
		p.sims = p.sims[:n-1]
		return s
	}
	return des.New()
}

func (p *simPool) put(s *des.Simulation) {
	p.mu.Lock()
	p.sims = append(p.sims, s)
	p.mu.Unlock()
}

// putAfterReset recycles a kernel whose run ended in an error. The kernel is
// Reset here and the post-conditions checked (clean calendar, zeroed clock,
// no registered processes); a kernel that somehow fails verification is
// dropped rather than recirculated.
func (p *simPool) putAfterReset(s *des.Simulation) {
	if s == nil {
		return
	}
	s.Reset()
	if s.Now() != 0 || s.PendingEvents() != 0 || s.Procs() != 0 {
		return
	}
	p.put(s)
}

// execProfile is the executor's self-measurement: the wall-clock cost of
// every (cell, rep) run and the pool occupancy it achieved.
type execProfile struct {
	cellTime      time.Duration   // sum over cellWall
	cellWall      []time.Duration // per job, cell-major rep-minor order
	maxConcurrent int             // peak simulations in flight
}

// runAllCells executes every (cell, rep) of cfgs across the pool, sharing
// workloads through cache, and returns per-cell per-rep reports in
// deterministic order. prep, if non-nil, customizes each run's private
// config copy (per-cell sinks and registries) before the simulation starts.
// onCell fires exactly once per completed cell, in ascending cell order,
// serialized under a mutex — this is what makes Options.Progress ordered
// and race-free regardless of completion order.
func runAllCells(par, reps int, cache *search.Cache, cfgs []core.Config,
	prep func(cell, rep int, cfg *core.Config),
	runErr func(cell, rep int, err error) error,
	onCell func(cell int, reports []*core.Report)) ([][]*core.Report, execProfile, error) {

	reports := make([][]*core.Report, len(cfgs))
	for i := range reports {
		reports[i] = make([]*core.Report, reps)
	}
	var (
		mu        sync.Mutex
		prof      = execProfile{cellWall: make([]time.Duration, len(cfgs)*reps)}
		inFlight  int
		remaining = make([]int, len(cfgs))
		done      = make([]bool, len(cfgs))
		cursor    int
	)
	for i := range remaining {
		remaining[i] = reps
	}
	jobs := make([]cellRun, 0, len(cfgs)*reps)
	for c := range cfgs {
		for r := 0; r < reps; r++ {
			jobs = append(jobs, cellRun{cell: c, rep: r})
		}
	}
	var sims simPool
	err := forEach(par, len(jobs), func(i int) error {
		j := jobs[i]
		cfg := cfgs[j.cell]
		// Repetitions vary the workload seed (seed+rep), the closest
		// analogue of the paper's 3-run averaging.
		cfg.Workload.Seed += int64(j.rep)
		if prep != nil {
			prep(j.cell, j.rep, &cfg)
		}
		cfg.Sim = sims.get()
		wl := cache.Get(cfg.EffectiveWorkload())
		mu.Lock()
		inFlight++
		if inFlight > prof.maxConcurrent {
			prof.maxConcurrent = inFlight
		}
		mu.Unlock()
		start := time.Now()
		rep, err := core.RunWithWorkload(cfg, wl)
		elapsed := time.Since(start)
		if err == nil {
			sims.put(cfg.Sim)
		} else {
			sims.putAfterReset(cfg.Sim)
		}
		mu.Lock()
		defer mu.Unlock()
		inFlight--
		prof.cellTime += elapsed
		prof.cellWall[i] = elapsed
		if err != nil {
			return runErr(j.cell, j.rep, err)
		}
		reports[j.cell][j.rep] = rep
		remaining[j.cell]--
		if remaining[j.cell] == 0 {
			done[j.cell] = true
			// Flush completed cells in deterministic ascending order: a cell
			// is announced only once every earlier cell has been.
			for cursor < len(done) && done[cursor] {
				if onCell != nil {
					onCell(cursor, reports[cursor])
				}
				cursor++
			}
		}
		return nil
	})
	return reports, prof, err
}
