package experiments

import (
	"fmt"
	"time"

	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/fault"
	"s3asim/internal/obs"
	"s3asim/internal/search"
	"s3asim/internal/stats"
)

// This file is the chaos suite (s3abench -suite chaos): a crash-count sweep
// over the resilient protocol. Every strategy runs the same randomized crash
// schedules (fault.RandomCrashes seeded per repetition), so the suite answers
// the robustness question the paper's §5 leaves open: how much does each I/O
// strategy pay, in time and in redundant work, to survive worker failures?
//
// The x = 0 column is the fault-free baseline — still under the resilient
// protocol (Config.Resilient), so inflation compares recovery cost against
// the same wire protocol, not against the cheaper original one.

// ChaosOptions scales the chaos suite.
type ChaosOptions struct {
	// Base is the template configuration; Strategy and the fault plan are
	// overridden per cell. Procs stays fixed across the sweep.
	Base core.Config
	// Crashes is the x-axis: worker crashes injected per run. Include 0 to
	// get the fault-free baseline the Inflation column divides by.
	Crashes []int
	// Window is the virtual-time interval crashes are scheduled in:
	// uniformly over [Window/8, Window). It should cover the active part of
	// the run; a crash scheduled after completion simply never fires (the
	// CrashesSeen column reports what actually landed).
	Window des.Time
	// Restart is the respawn delay after each crash; 0 means crashed
	// workers stay dead (permanent crashes are capped at the worker count,
	// and killing every worker makes the run unrecoverable by design).
	Restart des.Time
	// PlanSeed seeds the crash schedules. Repetition r of every cell with
	// x crashes uses fault.RandomCrashes(PlanSeed+r, x, ...): identical
	// schedules across strategies, fresh schedules across repetitions.
	PlanSeed int64
	// Repetitions, Strategies, Parallelism, Progress: as in Options.
	Repetitions int
	Strategies  []core.Strategy
	Parallelism int
	Progress    func(string)
	// Telemetry, when non-nil, enables the virtual-time telemetry pipeline
	// in every run: windowed time-series (conservation-checked against each
	// run's snapshot), alert rules over the fault counters, and the flight
	// recorder (which auto-triggers on every fault.* injection).
	Telemetry *obs.Telemetry
	// FlightDir, when set (and Telemetry is on), writes every run's flight
	// dumps as JSONL artifacts, in deterministic cell order.
	FlightDir string
}

// PaperChaosOptions returns the chaos suite at the paper's evaluation scale
// (64 processes, default workload).
func PaperChaosOptions() ChaosOptions {
	base := core.DefaultConfig()
	base.Resilient = true
	return ChaosOptions{
		Base:        base,
		Crashes:     []int{0, 1, 2, 4, 8},
		Window:      4 * des.Second,
		Restart:     500 * des.Millisecond,
		PlanSeed:    1,
		Repetitions: 1,
	}
}

// QuickChaosOptions returns a scaled-down chaos suite for tests: the
// QuickOptions workload at 8 processes, with a tight detector so recovery
// fits in a short run.
func QuickChaosOptions() ChaosOptions {
	q := QuickOptions()
	base := q.Base
	base.Procs = 8
	base.Resilient = true
	base.DetectInterval = 2 * des.Millisecond
	return ChaosOptions{
		Base:        base,
		Crashes:     []int{0, 1, 2},
		Window:      100 * des.Millisecond,
		Restart:     25 * des.Millisecond,
		PlanSeed:    1,
		Repetitions: 1,
	}
}

// ChaosCell is one (strategy, crash count) cell of the chaos sweep. The
// embedded Cell carries the usual timing aggregates; the chaos fields are
// per-run means over the fault metrics.
type ChaosCell struct {
	Cell
	// PlannedCrashes is the cell's x: crashes scheduled per run.
	PlannedCrashes int
	// CrashesSeen / Restarts are the mean number of crash and restart
	// events that actually fired (a crash scheduled past the end of a
	// short run never lands).
	CrashesSeen float64
	Restarts    float64
	// Detected counts workers the master declared dead (restarts that
	// rejoin before the detector notices are recovered without ever being
	// declared).
	Detected float64
	// Reexecuted is the mean number of tasks dispatched more than once —
	// the suite's redundant-work measure. BytesRewritten counts output
	// bytes carried by recovery waves.
	Reexecuted     float64
	BytesRewritten float64
	// DetectAvg / DetectMax aggregate the master's failure-detection
	// latency over all detections in the cell.
	DetectAvg des.Time
	DetectMax des.Time
	// CollFallbacks is the mean number of batches WW-Coll demoted to
	// individual list I/O after losing a collective participant.
	CollFallbacks float64
	// Inflation is this cell's mean overall time over the same strategy's
	// fault-free (x = 0) mean — 0 when the sweep has no x = 0 column.
	Inflation float64
	// Windows is repetition 0's windowed time-series (nil unless Telemetry
	// was on). Every repetition's series is conservation-checked against its
	// own snapshot before the sweep returns.
	Windows *obs.Series
	// Alerts concatenates every repetition's alert timeline, in repetition
	// order.
	Alerts []obs.Alert
	// Dumps counts flight-recorder dumps across the cell's repetitions;
	// DumpFiles lists the JSONL artifacts written when FlightDir was set.
	Dumps     int
	DumpFiles []string
}

// ChaosResult is a completed chaos sweep. Cells are keyed by CellKey with
// X = crash count and QuerySync = Base.QuerySync.
type ChaosResult struct {
	Xs    []int
	Sync  bool
	Strat []core.Strategy
	Cells map[CellKey]*ChaosCell
	// Metrics and Perf: as in SweepResult.
	Metrics obs.Snapshot
	Perf    SweepPerf
}

// Cell returns the cell for (strategy, crashes), or nil.
func (cr *ChaosResult) Cell(s core.Strategy, crashes int) *ChaosCell {
	return cr.Cells[CellKey{Strategy: s, QuerySync: cr.Sync, X: float64(crashes)}]
}

// RunChaosSweep executes the chaos suite. Like every sweep it is
// deterministic: the same options produce bit-identical Cells at any
// Parallelism (Perf alone varies between runs).
func RunChaosSweep(opts ChaosOptions) (*ChaosResult, error) {
	if len(opts.Crashes) == 0 {
		opts.Crashes = []int{0, 1, 2, 4}
	}
	if opts.Window <= 0 {
		opts.Window = 4 * des.Second
	}
	o := Options{
		Strategies:  opts.Strategies,
		Repetitions: opts.Repetitions,
		Parallelism: opts.Parallelism,
		Progress:    opts.Progress,
		Base:        opts.Base,
	}
	cr := &ChaosResult{
		Xs:    opts.Crashes,
		Sync:  opts.Base.QuerySync,
		Strat: o.strategies(),
		Cells: make(map[CellKey]*ChaosCell),
	}
	workers := opts.Base.WorkerRanks()
	lo, hi := opts.Window/8, opts.Window
	var (
		keys []CellKey
		cfgs []core.Config
	)
	for _, s := range cr.Strat {
		for _, x := range opts.Crashes {
			cfg := opts.Base
			cfg.Strategy = s
			cfg.Resilient = true
			cfg.Telemetry = opts.Telemetry
			keys = append(keys, CellKey{Strategy: s, QuerySync: cr.Sync, X: float64(x)})
			cfgs = append(cfgs, cfg)
		}
	}
	cache := search.NewCache()
	prep := func(cell, rep int, cfg *core.Config) {
		if n := int(keys[cell].X); n > 0 {
			cfg.FaultPlan = fault.RandomCrashes(opts.PlanSeed+int64(rep), n,
				workers, lo, hi, opts.Restart)
		}
	}
	start := time.Now()
	var cellErr error
	_, prof, err := runAllCells(o.parallelism(), o.reps(), cache, cfgs, prep,
		func(cell, rep int, err error) error {
			k := keys[cell]
			return fmt.Errorf("chaos: %v crashes=%g rep=%d: %w", k.Strategy, k.X, rep, err)
		},
		func(cell int, reps []*core.Report) {
			// onCell fires serialized in ascending cell order, so telemetry
			// checks and flight artifacts are deterministic at any
			// Parallelism.
			if cellErr != nil {
				return
			}
			k := keys[cell]
			c := reduceChaosCell(k, reps)
			cr.Cells[k] = c
			for rep, r := range reps {
				cr.Metrics = cr.Metrics.Merge(r.Metrics)
				if r.Windows == nil {
					continue
				}
				if err := r.Windows.Conserve(r.Metrics); err != nil {
					cellErr = fmt.Errorf("chaos: %v crashes=%g rep=%d: %w",
						k.Strategy, k.X, rep, err)
					return
				}
				if rep == 0 {
					c.Windows = r.Windows
				}
				c.Alerts = append(c.Alerts, r.Alerts...)
				c.Dumps += len(r.FlightDumps)
				if opts.FlightDir != "" && len(r.FlightDumps) > 0 {
					prefix := fmt.Sprintf("flight_chaos_%s_x%g_rep%d",
						strategySlug(k.Strategy), k.X, rep)
					files, err := writeFlightDumps(opts.FlightDir, prefix, r)
					if err != nil {
						cellErr = fmt.Errorf("chaos: %v crashes=%g rep=%d: %w",
							k.Strategy, k.X, rep, err)
						return
					}
					c.DumpFiles = append(c.DumpFiles, files...)
				}
			}
			o.progress("chaos %s crashes=%g: %.2fs (%.0f seen, %.0f tasks re-run)",
				k.Strategy, k.X, c.Overall.Seconds(), c.CrashesSeen, c.Reexecuted)
		})
	if err != nil {
		return nil, err
	}
	if cellErr != nil {
		return nil, cellErr
	}
	// Inflation folds in after all cells exist: each cell over its
	// strategy's fault-free column.
	for _, s := range cr.Strat {
		base := cr.Cell(s, 0)
		if base == nil || base.Overall <= 0 {
			continue
		}
		for _, x := range cr.Xs {
			if c := cr.Cell(s, x); c != nil {
				c.Inflation = float64(c.Overall) / float64(base.Overall)
			}
		}
	}
	cr.Perf = SweepPerf{
		Parallelism:   o.parallelism(),
		Elapsed:       time.Since(start),
		CellTime:      prof.cellTime,
		CellWall:      prof.cellWall,
		MaxConcurrent: prof.maxConcurrent,
		Workload:      cache.Stats(),
	}
	return cr, nil
}

// reduceChaosCell folds one cell's per-repetition reports into means, in
// repetition order (same determinism contract as reduceCell).
func reduceChaosCell(key CellKey, reports []*core.Report) *ChaosCell {
	c := &ChaosCell{Cell: *reduceCell(key, reports), PlannedCrashes: int(key.X)}
	n := float64(len(reports))
	var detect stats.Online
	for _, r := range reports {
		mc := r.Metrics.Counters
		c.CrashesSeen += float64(mc["fault.crashes"]) / n
		c.Restarts += float64(mc["fault.restarts"]) / n
		c.Detected += float64(mc["fault.workers_detected"]) / n
		c.Reexecuted += float64(mc["fault.tasks_reexecuted"]) / n
		c.BytesRewritten += float64(mc["fault.bytes_rewritten"]) / n
		c.CollFallbacks += float64(mc["fault.coll_fallbacks"]) / n
		// Engine histograms record durations in seconds (obs.ObserveTime).
		if h, ok := r.Metrics.Hists["fault.detection_latency"]; ok && h.Count > 0 {
			detect.Add(h.Mean)
			if m := des.FromSeconds(h.Max); m > c.DetectMax {
				c.DetectMax = m
			}
		}
	}
	if detect.N() > 0 {
		c.DetectAvg = des.FromSeconds(detect.Mean())
	}
	return c
}

// Table renders the chaos sweep as one row per (strategy, crash count).
func (cr *ChaosResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Chaos suite: overall time and recovery cost vs injected worker crashes (%s)",
			syncLabel(cr.Sync)),
		"strategy", "crashes", "seen", "overall (s)", "inflation",
		"tasks re-run", "detected", "detect avg (ms)", "coll fallbacks")
	for _, s := range cr.Strat {
		for _, x := range cr.Xs {
			c := cr.Cell(s, x)
			if c == nil {
				continue
			}
			tb.AddRowf(s.String(), x, c.CrashesSeen, c.Overall.Seconds(),
				c.Inflation, c.Reexecuted, c.Detected,
				c.DetectAvg.Seconds()*1e3, c.CollFallbacks)
		}
	}
	return tb
}

// AlertTable renders the chaos sweep's alert timeline — every rule firing
// and resolution across every (strategy, crash count) cell.
func (cr *ChaosResult) AlertTable() *stats.Table {
	type row struct {
		k CellKey
		c *ChaosCell
	}
	var rows []row
	for _, s := range cr.Strat {
		for _, x := range cr.Xs {
			if c := cr.Cell(s, x); c != nil {
				rows = append(rows, row{CellKey{Strategy: s, X: float64(x)}, c})
			}
		}
	}
	return alertTable("Chaos alert timeline", []string{"strategy", "crashes"},
		len(rows), func(cell int) ([]string, []obs.Alert) {
			r := rows[cell]
			return []string{r.k.Strategy.String(), trimFloat(r.k.X)}, r.c.Alerts
		})
}

func syncLabel(sync bool) string {
	if sync {
		return "sync"
	}
	return "no-sync"
}
