package experiments

import (
	"runtime"
	"sync/atomic"
	"time"

	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/search"
	"s3asim/internal/stats"
)

// ScalePoint is one cell of the rank-scaling study: the virtual-time
// observables (deterministic) plus this host's wall clock and peak
// sampled memory (heap + goroutine stacks) for the cell.
type ScalePoint struct {
	Ranks   int
	Events  uint64
	Overall des.Time
	Wall    time.Duration
	PeakMem uint64
}

// MemPerRank is the peak memory footprint divided by rank count.
func (p ScalePoint) MemPerRank() float64 { return float64(p.PeakMem) / float64(p.Ranks) }

// EventsPerSecond is calendar throughput in wall-clock terms.
func (p ScalePoint) EventsPerSecond() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.Events) / p.Wall.Seconds()
}

// ScaleSweep runs the rank-scaling study: core.ScaleConfig at each given
// rank count. This is the tentpole measurement behind the FSM worker
// engine (DESIGN.md §12): the workload's task count is bounded, so the
// sweep isolates how the engine's per-rank cost scales.
//
// Unlike every other suite the cells run strictly sequentially — a
// 100k-rank cell holds a gigabyte-class heap, and running two at once
// would turn a memory measurement into an OOM test. For the same reason
// the memory figure is sampled process-wide and is only meaningful
// because nothing else runs concurrently.
func ScaleSweep(ranks []int) ([]ScalePoint, error) {
	cache := search.NewCache()
	points := make([]ScalePoint, 0, len(ranks))
	for _, n := range ranks {
		cfg := core.ScaleConfig(n)
		wl := cache.Get(cfg.EffectiveWorkload())

		var peak atomic.Uint64
		stop := make(chan struct{})
		done := make(chan struct{})
		go samplePeakMem(&peak, stop, done)

		start := time.Now()
		rep, err := core.RunWithWorkload(cfg, wl)
		wall := time.Since(start)
		close(stop)
		<-done
		if err != nil {
			return nil, err
		}
		points = append(points, ScalePoint{
			Ranks:   n,
			Events:  rep.Events,
			Overall: rep.Overall,
			Wall:    wall,
			PeakMem: peak.Load(),
		})
	}
	return points, nil
}

// ScaleTable renders the sweep's virtual-time observables — the
// deterministic columns, reproduced bit-identically on any host. Host
// performance (wall clock, memory) stays off the table so harness stdout
// remains machine-independent; read it from the ScalePoints directly.
func ScaleTable(points []ScalePoint) *stats.Table {
	t := stats.NewTable(
		"rank scaling — bounded task count, FSM worker engine",
		"ranks", "events", "overall (s)")
	for _, p := range points {
		t.AddRowf(p.Ranks, p.Events, p.Overall.Seconds())
	}
	return t
}

// samplePeakMem polls HeapAlloc+StackSys until stop closes, tracking the
// maximum in peak. Stack memory is counted because under ProcGoroutine it
// is the dominant per-rank cost and never appears in HeapAlloc.
func samplePeakMem(peak *atomic.Uint64, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	var ms runtime.MemStats
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			runtime.ReadMemStats(&ms)
			mem := ms.HeapAlloc + ms.StackSys
			for {
				old := peak.Load()
				if mem <= old || peak.CompareAndSwap(old, mem) {
					break
				}
			}
		}
	}
}
