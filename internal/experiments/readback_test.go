package experiments

import (
	"reflect"
	"strings"
	"testing"

	"s3asim/internal/core"
)

func quickReadback(t *testing.T, par int) *ReadbackResult {
	t.Helper()
	opts := QuickReadbackOptions()
	opts.Parallelism = par
	rr, err := RunReadbackSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rr
}

func TestReadbackSweepVerifiesEveryCell(t *testing.T) {
	rr := quickReadback(t, 0)
	for _, s := range rr.Strat {
		for _, get := range rr.Mixes {
			c := rr.Cell(s, get)
			if c == nil {
				t.Fatalf("%v get=%d%%: missing cell", s, get)
			}
			if c.Mismatches != 0 {
				t.Fatalf("%v get=%d%%: %.0f mismatches", s, get, c.Mismatches)
			}
			if c.Extents == 0 || c.BytesRead == 0 {
				t.Fatalf("%v get=%d%%: no verification traffic", s, get)
			}
			// Post-run alone reads the whole image once; mixed cells add
			// in-run traffic on top.
			if c.ReadShare < 1 {
				t.Fatalf("%v get=%d%%: read share %.2f < 1", s, get, c.ReadShare)
			}
			if get < 100 {
				pure := rr.Cell(s, 100)
				if c.BytesRead <= pure.BytesRead {
					t.Fatalf("%v get=%d%%: no in-run reads over the pure-read column", s, get)
				}
			}
		}
	}
	if rr.Metrics.Counters["readback.mismatches"] != 0 {
		t.Fatal("mismatch counter nonzero across sweep")
	}
}

// TestReadbackSweepDeterministicAcrossParallelism pins the executor
// contract for the new sweep: cells are bit-identical at parallelism 1 and 4.
func TestReadbackSweepDeterministicAcrossParallelism(t *testing.T) {
	seq := quickReadback(t, 1)
	par := quickReadback(t, 4)
	seq.Perf, par.Perf = SweepPerf{}, SweepPerf{}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("readback sweep differs between parallelism 1 and 4")
	}
}

func TestReadbackChaosBatteryCleanAcrossPlans(t *testing.T) {
	opts := QuickReadbackChaosOptions()
	rc, err := RunReadbackChaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Plans) < 4 {
		t.Fatalf("default battery has %d plans", len(rc.Plans))
	}
	sawCrash := false
	for _, s := range rc.Strat {
		for pi, p := range rc.Plans {
			c := rc.Cell(s, pi)
			if c == nil {
				t.Fatalf("%v plan=%s: missing cell", s, p.Name)
			}
			if c.Mismatches != 0 {
				t.Fatalf("%v plan=%s: %.0f mismatches", s, p.Name, c.Mismatches)
			}
			if c.Extents == 0 {
				t.Fatalf("%v plan=%s: nothing verified", s, p.Name)
			}
			if c.CrashesSeen > 0 {
				sawCrash = true
			}
		}
	}
	if !sawCrash {
		t.Fatal("no plan landed a crash — the battery is not exercising recovery")
	}
	if !strings.Contains(rc.Table().String(), "worker-crash") {
		t.Fatal("table misses plan names")
	}
}

// TestReadbackSweepDetectsInjectedDrop runs one cell of the sweep
// configuration with the test-only silent write-dropper installed: the sweep
// must fail, not report a clean pass.
func TestReadbackSweepDetectsInjectedDrop(t *testing.T) {
	opts := QuickReadbackOptions()
	cfg := opts.Base
	cfg.Strategy = core.WWList
	cfg.CaptureData = true
	rc, err := readbackConfFor(90, opts.Method, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Readback = rc
	dropped := false
	cfg.TestWriteDropper = func(off, n int64) bool {
		if dropped || n == 0 {
			return false
		}
		dropped = true
		return true
	}
	rep, err := core.Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "readback verification failed") {
		t.Fatalf("silent drop survived the sweep cell: %v", err)
	}
	if rep == nil || rep.ReadbackMismatches == 0 {
		t.Fatal("mismatch count not reported")
	}
}

func TestReadbackConfForMapping(t *testing.T) {
	cases := []struct {
		get   int
		inRun int
		ok    bool
	}{
		{100, 0, true},
		{90, 9, true},
		{75, 3, true},
		{50, 1, true},
		{40, 0, false},  // write-heavier than 50/50
		{0, 0, false},   // no reads at all
		{101, 0, false}, // out of range
	}
	for _, c := range cases {
		rc, err := readbackConfFor(c.get, 0, false)
		if (err == nil) != c.ok {
			t.Errorf("get=%d: err=%v, want ok=%v", c.get, err, c.ok)
			continue
		}
		if c.ok && (rc.InRunReads != c.inRun || !rc.PostRun) {
			t.Errorf("get=%d: conf=%+v, want InRunReads=%d PostRun", c.get, rc, c.inRun)
		}
	}
}
