package experiments

import (
	"fmt"

	"s3asim/internal/causal"
	"s3asim/internal/core"
	"s3asim/internal/des"
	"s3asim/internal/obs"
	"s3asim/internal/search"
	"s3asim/internal/serve"
	"s3asim/internal/stats"
)

// This file is the "-suite serve" harness: sweep an open-loop serving
// scenario (internal/serve traffic plans feeding core's serving mode) over
// offered load × strategy, and report what a serving operator actually asks
// about — latency percentiles from the fixed-memory histograms, SLO
// violation counts (aggregate and per tenant), throughput against offered
// load, and per-percentile-band critical-path attribution ("p999 under
// WW-Coll is mostly sync wait").

// ServeOptions configures RunServeSweep.
type ServeOptions struct {
	// Base is the template configuration; Strategy, Serve, and the workload
	// query count are overridden per cell.
	Base core.Config
	// Plan is the nominal traffic (offered load 1.0). Each load multiplier
	// scales every tenant's rate; the arrival schedule is generated once per
	// load and shared by every strategy at that load, so strategies are
	// compared on identical streams.
	Plan serve.Plan
	// Loads are the offered-load multipliers (default {1}).
	Loads []float64
	// Strategies defaults to all four.
	Strategies []core.Strategy
	// Admission selects the admission-queue discipline.
	Admission core.ServeAdmission
	// SLO is the end-to-end latency target; queries above it count as
	// violations (default 1s).
	SLO des.Time
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS, 1 = sequential).
	// Per-cell recorders and registries make results identical at any
	// parallelism.
	Parallelism int
	// Telemetry, when non-nil, enables the virtual-time telemetry pipeline
	// (core.Config.Telemetry) in every cell: windowed time-series
	// (conservation-checked against each cell's snapshot), SLO alert rules,
	// and the flight recorder. The SLO option above feeds the
	// serve.slo_violations counter burn-rate rules divide by.
	Telemetry *obs.Telemetry
	// FlightDir, when set (and Telemetry is on), writes every cell's flight
	// dumps as JSONL artifacts into the directory, in deterministic cell
	// order with deterministic names.
	FlightDir string
}

// QuickServeOptions is a fast serving scenario for tests and smoke runs:
// two tenants (steady Poisson plus a bursty stream) over a two-second
// horizon at three offered loads.
func QuickServeOptions() ServeOptions {
	base := core.DefaultConfig()
	base.Procs = 6
	base.Workload.NumFragments = 8
	base.Workload.MinResults = 20
	base.Workload.MaxResults = 40
	base.Workload.QueryHist = stats.Uniform(200, 2000)
	base.Workload.DBSeqHist = stats.Uniform(200, 10000)
	base.Workload.MinResultSize = 256
	return ServeOptions{
		Base: base,
		// The nominal (load 1.0) offered rate sits near this workload's
		// service capacity (~5 q/s under MW), so the load axis crosses the
		// knee: 0.5 is underloaded, 2 is saturated.
		Plan: serve.Plan{
			Seed:    11,
			Horizon: 10 * des.Second,
			Tenants: []serve.Tenant{
				{Name: "steady", Rate: 3, Process: serve.Poisson},
				{Name: "spiky", Rate: 2, Process: serve.Bursty,
					BurstFactor: 5, BurstFrac: 0.15, BurstDwell: 500 * des.Millisecond},
			},
		},
		Loads: []float64{0.5, 1, 2},
		SLO:   2 * des.Second,
	}
}

// PaperServeOptions is the full serving scenario: sixteen ranks, three
// tenants (steady Poisson, a bursty stream, and a diurnal cycle) over a
// five-second horizon, swept across four offered loads.
func PaperServeOptions() ServeOptions {
	opts := QuickServeOptions()
	opts.Base.Procs = 16
	opts.Base.Workload.NumFragments = 16
	// Sixteen ranks roughly triple the quick capacity; the nominal rate is
	// again pinned near the knee so the four loads span under- to
	// over-subscription.
	opts.Plan = serve.Plan{
		Seed:    11,
		Horizon: 20 * des.Second,
		Tenants: []serve.Tenant{
			{Name: "steady", Rate: 8, Process: serve.Poisson},
			{Name: "spiky", Rate: 5, Process: serve.Bursty,
				BurstFactor: 5, BurstFrac: 0.15, BurstDwell: 500 * des.Millisecond},
			{Name: "cyclic", Rate: 3, Process: serve.Diurnal,
				Period: 10 * des.Second, Amplitude: 0.8},
		},
	}
	opts.Loads = []float64{0.5, 1, 2, 4}
	return opts
}

// ServeBand is one latency band's aggregated tail attribution: the summed
// per-query critical paths (arrival → durable write) of every query whose
// latency landed in the band.
type ServeBand struct {
	// Label is the band's lower percentile edge ("p0", "p50", ..., "p999").
	Label string
	// Queries is the band's population.
	Queries int
	// Lo and Hi bound the band's observed latencies.
	Lo, Hi des.Time
	// Path sums the per-query critical-path attributions; Path.Total() is
	// the band's summed latency (each query's walk conserves its window).
	Path causal.Breakdown
}

// ServeTenant is one tenant's slice of a cell's telemetry.
type ServeTenant struct {
	Name       string
	Queries    int
	Violations int
	// P99 is the tenant's 99th-percentile latency (bucketed estimate).
	P99 des.Time
}

// ServeCell is one (strategy, load) outcome.
type ServeCell struct {
	Strategy core.Strategy
	Load     float64
	// OfferedRate is the scaled plan's aggregate arrival rate (queries/s).
	OfferedRate float64
	// Queries holds every query's lifecycle stamps (arrival order).
	Queries []core.QueryStat
	// Overall is the run's virtual wall-clock.
	Overall des.Time
	// Throughput is completed queries per second of serving span (first
	// arrival to last durable write).
	Throughput float64
	// P50..P999 are end-to-end latency percentiles read from the
	// fixed-memory log-bucketed histogram (<2% relative error).
	P50, P90, P99, P999, Max des.Time
	// Violations counts queries whose latency exceeded the SLO target.
	Violations int
	// Tenants breaks the telemetry down per traffic stream, in plan order.
	Tenants []ServeTenant
	// Bands is the per-percentile-band tail attribution, p0 → p999.
	Bands []ServeBand
	// Metrics is the post-run registry snapshot including the serve latency
	// histograms (serve.latency and serve.latency.<tenant>).
	Metrics obs.Snapshot
	// Windows is the windowed time-series (nil unless Telemetry was on). Its
	// window sums are conservation-checked against Metrics before the sweep
	// returns.
	Windows *obs.Series
	// Alerts is the cell's alert timeline: every SLO rule firing and
	// resolution, in virtual-time order.
	Alerts []obs.Alert
	// Dumps holds the cell's flight-recorder dumps (alert firings, fault
	// injections, readback mismatches).
	Dumps []obs.FlightDump
	// DumpFiles lists the JSONL artifact paths written for Dumps when
	// ServeOptions.FlightDir was set, in dump order.
	DumpFiles []string
}

// ServeResult is a completed serving sweep.
type ServeResult struct {
	Plan      serve.Plan
	Loads     []float64
	Strat     []core.Strategy
	Admission core.ServeAdmission
	SLO       des.Time
	// Cells is strategy-major, load-minor — the deterministic sweep order.
	Cells []*ServeCell
}

// Cell returns the outcome for (strategy, load), or nil.
func (sr *ServeResult) Cell(s core.Strategy, load float64) *ServeCell {
	for _, c := range sr.Cells {
		if c.Strategy == s && c.Load == load {
			return c
		}
	}
	return nil
}

// RunServeSweep runs the serving scenario over every (strategy, load) cell
// and assembles the telemetry. Every per-query attribution is
// conservation-checked; results are bit-identical at any Parallelism.
func RunServeSweep(opts ServeOptions) (*ServeResult, error) {
	loads := opts.Loads
	if len(loads) == 0 {
		loads = []float64{1}
	}
	strat := opts.Strategies
	if len(strat) == 0 {
		strat = core.Strategies
	}
	slo := opts.SLO
	if slo <= 0 {
		slo = des.Second
	}
	sr := &ServeResult{
		Plan:      opts.Plan,
		Loads:     loads,
		Strat:     strat,
		Admission: opts.Admission,
		SLO:       slo,
	}

	// One arrival schedule per load, shared across strategies.
	type loadPlan struct {
		plan     serve.Plan
		arrivals []serve.Arrival
	}
	lps := make([]loadPlan, len(loads))
	for i, load := range loads {
		p := opts.Plan.Scaled(load)
		arr, err := p.Generate()
		if err != nil {
			return nil, fmt.Errorf("serve sweep: load %g: %w", load, err)
		}
		if len(arr) == 0 {
			return nil, fmt.Errorf("serve sweep: load %g generated no arrivals", load)
		}
		lps[i] = loadPlan{plan: p, arrivals: arr}
	}

	var (
		cells []*ServeCell
		cfgs  []core.Config
		recs  []*causal.Recorder
	)
	for _, s := range strat {
		for li, load := range loads {
			cfg := opts.Base
			cfg.Strategy = s
			cfg.Workload.NumQueries = len(lps[li].arrivals)
			cfg.Serve = &core.ServePlan{
				Arrivals:  serve.Times(lps[li].arrivals),
				Tenants:   serve.TenantNames(lps[li].arrivals),
				Admission: opts.Admission,
				SLO:       slo,
			}
			cfg.Telemetry = opts.Telemetry
			cells = append(cells, &ServeCell{
				Strategy:    s,
				Load:        load,
				OfferedRate: lps[li].plan.OfferedRate(),
			})
			cfgs = append(cfgs, cfg)
			recs = append(recs, causal.NewRecorder())
		}
	}

	par := (&Options{Base: opts.Base, Parallelism: opts.Parallelism}).parallelism()
	var cellErr error
	_, _, err := runAllCells(par, 1, search.NewCache(), cfgs,
		func(cell, rep int, cfg *core.Config) {
			cfg.Causal = recs[cell]
		},
		func(cell, rep int, err error) error {
			c := cells[cell]
			return fmt.Errorf("serve sweep: %v load %g: %w", c.Strategy, c.Load, err)
		},
		func(cell int, reports []*core.Report) {
			// onCell fires serialized, in ascending cell order, so flight
			// dumps land on disk deterministically regardless of Parallelism.
			if cellErr != nil {
				return
			}
			c := cells[cell]
			li := cell % len(loads)
			if err := finishServeCell(c, reports[0], recs[cell],
				lps[li].arrivals, slo); err != nil {
				cellErr = err
				return
			}
			if opts.FlightDir != "" && len(c.Dumps) > 0 {
				prefix := fmt.Sprintf("flight_serve_%s_load%s",
					strategySlug(c.Strategy), trimFloat(c.Load))
				files, err := writeFlightDumps(opts.FlightDir, prefix, reports[0])
				if err != nil {
					cellErr = fmt.Errorf("serve sweep: %v load %g: %w", c.Strategy, c.Load, err)
					return
				}
				c.DumpFiles = files
			}
		})
	if err != nil {
		return nil, err
	}
	if cellErr != nil {
		return nil, cellErr
	}
	sr.Cells = cells
	return sr, nil
}

// finishServeCell turns one run's report into the cell's telemetry: latency
// histograms, percentiles, SLO counts, throughput, and banded tail
// attribution (one conservation-checked critical-path walk per query). The
// latency histograms themselves come from the run's own registry — core
// records serve.latency and serve.latency.<tenant> in arrival order — so the
// snapshot, windowed series, and alert timeline all describe one registry.
func finishServeCell(c *ServeCell, rep *core.Report, rec *causal.Recorder,
	arrivals []serve.Arrival, slo des.Time) error {

	c.Queries = rep.Queries
	c.Overall = rep.Overall
	latencies := make([]des.Time, len(rep.Queries))
	var lastDone des.Time
	for i, q := range rep.Queries {
		latencies[i] = q.Latency()
		if q.Done > lastDone {
			lastDone = q.Done
		}
	}
	c.Metrics = rep.Metrics
	c.Windows = rep.Windows
	c.Alerts = rep.Alerts
	c.Dumps = rep.FlightDumps
	if c.Windows != nil {
		// The tentpole invariant: every window sum reconciles exactly with
		// the end-of-run snapshot (same discipline as causal.Check).
		if err := c.Windows.Conserve(c.Metrics); err != nil {
			return fmt.Errorf("serve sweep: %v load %g: %w", c.Strategy, c.Load, err)
		}
	}

	h, ok := c.Metrics.Hists["serve.latency"]
	if !ok {
		return fmt.Errorf("serve sweep: %v load %g: no latency histogram", c.Strategy, c.Load)
	}
	c.P50 = des.FromSeconds(h.Quantile(0.50))
	c.P90 = des.FromSeconds(h.Quantile(0.90))
	c.P99 = des.FromSeconds(h.Quantile(0.99))
	c.P999 = des.FromSeconds(h.Quantile(0.999))
	c.Max = des.FromSeconds(h.Max)
	c.Violations = serve.Violations(latencies, slo)
	if span := lastDone - rep.Queries[0].Arrival; span > 0 {
		c.Throughput = float64(len(rep.Queries)) / span.Seconds()
	}

	// Per-tenant telemetry, in first-appearance (stream) order.
	var order []string
	byTenant := map[string]*ServeTenant{}
	for i, a := range arrivals {
		t := byTenant[a.Tenant]
		if t == nil {
			t = &ServeTenant{Name: a.Tenant}
			byTenant[a.Tenant] = t
			order = append(order, a.Tenant)
		}
		t.Queries++
		if latencies[i] > slo {
			t.Violations++
		}
	}
	for _, name := range order {
		t := byTenant[name]
		if ht, ok := c.Metrics.Hists["serve.latency."+name]; ok {
			t.P99 = des.FromSeconds(ht.Quantile(0.99))
		}
		c.Tenants = append(c.Tenants, *t)
	}

	// Banded tail attribution: one backward critical-path walk per query,
	// anchored at the process that completed its durable write.
	for _, band := range serve.Partition(latencies) {
		sb := ServeBand{Label: band.Label, Queries: len(band.Queries), Lo: band.Lo, Hi: band.Hi}
		for _, qi := range band.Queries {
			q := rep.Queries[qi]
			att := rec.CriticalPathBetween(q.Proc, q.Arrival, q.Done)
			if err := att.Check(); err != nil {
				return fmt.Errorf("serve sweep: %v load %g query %d: %w",
					c.Strategy, c.Load, q.Q, err)
			}
			for cat := causal.Category(0); cat < causal.NumCategories; cat++ {
				sb.Path[cat] += att.ByCat[cat]
			}
		}
		c.Bands = append(c.Bands, sb)
	}
	return nil
}

// PercentileTable renders the latency percentiles, throughput, and SLO
// violations — one row per (strategy, load).
func (sr *ServeResult) PercentileTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Serving latency percentiles — %s admission, SLO %.3fs",
			sr.Admission, sr.SLO.Seconds()),
		"strategy", "load", "offered (q/s)", "tput (q/s)",
		"p50 (s)", "p90 (s)", "p99 (s)", "p999 (s)", "max (s)", "SLO viol")
	for _, c := range sr.Cells {
		t.AddRowf(c.Strategy.String(), trimFloat(c.Load), c.OfferedRate, c.Throughput,
			c.P50.Seconds(), c.P90.Seconds(), c.P99.Seconds(), c.P999.Seconds(),
			c.Max.Seconds(), c.Violations)
	}
	return t
}

// ThroughputTable renders the throughput-vs-offered-load curve: one row per
// load, one column per strategy.
func (sr *ServeResult) ThroughputTable() *stats.Table {
	headers := []string{"load", "offered (q/s)"}
	for _, s := range sr.Strat {
		headers = append(headers, s.String()+" (q/s)")
	}
	t := stats.NewTable("Serving throughput vs offered load", headers...)
	for _, load := range sr.Loads {
		row := []any{trimFloat(load), sr.Plan.Scaled(load).OfferedRate()}
		for _, s := range sr.Strat {
			if c := sr.Cell(s, load); c != nil {
				row = append(row, c.Throughput)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRowf(row...)
	}
	return t
}

// TenantTable renders the per-tenant SLO accounting for one load.
func (sr *ServeResult) TenantTable(load float64) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Per-tenant SLO accounting — load %s", trimFloat(load)),
		"strategy", "tenant", "queries", "p99 (s)", "SLO viol")
	for _, s := range sr.Strat {
		c := sr.Cell(s, load)
		if c == nil {
			continue
		}
		for _, tn := range c.Tenants {
			t.AddRowf(s.String(), tn.Name, tn.Queries, tn.P99.Seconds(), tn.Violations)
		}
	}
	return t
}

// TailTable renders the per-band critical-path attribution shares for one
// load: which category dominates each latency band under each strategy —
// the "p999 under WW-Coll is mostly sync wait" table.
func (sr *ServeResult) TailTable(load float64) *stats.Table {
	headers := []string{"strategy", "band", "queries"}
	for _, n := range causal.CategoryNames() {
		headers = append(headers, n+" (%)")
	}
	t := stats.NewTable(
		fmt.Sprintf("Tail critical-path attribution — load %s", trimFloat(load)),
		headers...)
	for _, s := range sr.Strat {
		c := sr.Cell(s, load)
		if c == nil {
			continue
		}
		for _, b := range c.Bands {
			if b.Queries == 0 {
				continue
			}
			total := b.Path.Total()
			row := []any{s.String(), b.Label, b.Queries}
			for cat := causal.Category(0); cat < causal.NumCategories; cat++ {
				share := 0.0
				if total > 0 {
					share = 100 * float64(b.Path[cat]) / float64(total)
				}
				row = append(row, share)
			}
			t.AddRowf(row...)
		}
	}
	return t
}

// AlertTable renders the sweep's alert timeline: every rule firing and
// resolution across every cell, in (cell, virtual-time) order. Empty (but
// present) when telemetry ran and no rule fired.
func (sr *ServeResult) AlertTable() *stats.Table {
	return alertTable("SLO alert timeline", []string{"strategy", "load"},
		len(sr.Cells), func(cell int) ([]string, []obs.Alert) {
			c := sr.Cells[cell]
			return []string{c.Strategy.String(), trimFloat(c.Load)}, c.Alerts
		})
}

// SeriesTable renders one cell's windowed time-series: per-window rates of
// the serving counters and the latency histogram summary.
func (c *ServeCell) SeriesTable() *stats.Table {
	if c.Windows == nil {
		return nil
	}
	return c.Windows.Table(
		fmt.Sprintf("Windowed telemetry — %v load %s (width %.3fs)",
			c.Strategy, trimFloat(c.Load), c.Windows.Width.Seconds()),
		"serve.queries", "serve.slo_violations", "serve.latency")
}

// Tables returns the serving report in print order: percentiles, the
// throughput curve, per-load tenant and tail-attribution tables, and — when
// telemetry ran — the alert timeline plus one time-series table per cell.
func (sr *ServeResult) Tables() []*stats.Table {
	out := []*stats.Table{sr.PercentileTable(), sr.ThroughputTable()}
	for _, load := range sr.Loads {
		out = append(out, sr.TenantTable(load), sr.TailTable(load))
	}
	telemetry := false
	for _, c := range sr.Cells {
		if c.Windows != nil {
			telemetry = true
			break
		}
	}
	if telemetry {
		out = append(out, sr.AlertTable())
		for _, c := range sr.Cells {
			if t := c.SeriesTable(); t != nil {
				out = append(out, t)
			}
		}
	}
	return out
}
