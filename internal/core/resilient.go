package core

import (
	"fmt"
	"sort"

	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/romio"
	"s3asim/internal/search"
)

// This file implements the resilient master side of the self-healing
// protocol (DESIGN.md §9). It runs instead of master()/worker() whenever
// the configuration carries a fault plan (or Resilient is forced), so the
// original protocol stays byte-for-byte untouched — the empty-plan
// bit-identity guarantee.
//
// Recovery model in one paragraph: workers fail-stop at protocol
// checkpoints only (never inside a barrier, a collective round, or between
// a write and its ack). The master holds a lease per dispatched task and
// per sent batch wave; an out-of-band detector sweep (period DetectInterval)
// observes effected crashes. A dead worker's leased task, and its scored
// results belonging to not-yet-durable batches, are re-dispatched (bounded
// by MaxTaskRetries); recovered placements are re-sent to their new owners
// as higher "waves" of the batch. Request/reply/score messages may be lost
// (fault Drop events) and are covered by the worker's resend loop and the
// task lease; offset/ack/control traffic is modeled reliable. Dynamic
// membership (deaths, restarts) is reflected into the query-sync barrier
// and the WW-Coll collective group; once any collective participant dies,
// the group is tainted and all subsequent batches fall back to individual
// list I/O (WW-List behavior) rather than deadlock.

// rlease is the master's outstanding-task record for one worker.
type rlease struct {
	t        task
	seq      int
	deadline des.Time
	extends  int // lease extensions granted while the worker stayed live
}

// rdebt is one owed write acknowledgement: the offset message sent and when
// to act if the ack has not arrived.
type rdebt struct {
	msg      offsetMsg
	bytes    int64
	deadline des.Time
	dead     bool // owner died; deadline is now the ack grace period
}

// debtKey identifies one owed ack: a rank can owe several waves of the same
// batch at once (an un-acked wave 0 plus a recovery wave it now owns).
type debtKey struct {
	rank, wave int
}

// rbatch tracks one batch's durability in the resilient protocol.
type rbatch struct {
	sent     bool
	durable  bool
	wave     int               // highest wave sent so far
	owed     map[debtKey]rdebt // outstanding acks
	recovery map[task]bool     // re-dispatched tasks this sent batch still needs
}

// rmasterState is the resilient master's bookkeeping.
type rmasterState struct {
	g  *group
	pt *PhaseTimer

	totalTasks int
	processed  int
	nextQ      int
	nextF      int

	remaining map[int]int
	assigned  map[int][]int
	mergeAcc  map[int]int64
	complete  map[int]bool
	taskDone  map[task]bool

	retryQ  []task
	retries map[task]int

	live        map[int]bool
	incarn      map[int]int
	idle        map[int]bool
	syncMember  map[int]bool
	pendingJoin []int

	leases    map[int]*rlease
	lastSeq   map[int]int
	lastReply map[int]workReplyMsg

	batches     []*rbatch
	flushedInit int

	collTainted bool

	workReq  *mpi.Request
	scoreReq *mpi.Request
	ackReq   *mpi.Request
	finReq   *mpi.Request

	sends     []*mpi.Request
	nextSweep des.Time
}

// rmaster is the resilient Algorithm 1: the original task distribution and
// gather/merge/flush flow, wrapped in leases, a failure-detector sweep,
// re-dispatch, ack-tracked durability, and an explicit shutdown handshake
// replacing the global final barrier.
func (rt *runtime) rmaster(r *mpi.Rank, g *group) {
	cfg := rt.cfg
	pt := NewPhaseTimer(rt.sim)
	pt.Trace(cfg.sink(), r.Proc().Name())
	rt.timers[r.Rank()] = pt

	pt.Switch(PhaseSetup)
	rt.openFile(r, g)
	if cfg.Strategy == WWColl {
		g.collGroup = rt.file.NewGroup(g.workers)
	}
	g.team.Bcast(r, g.masterRank, configMsgBytes, "input-variables")

	m := &rmasterState{
		g:          g,
		pt:         pt,
		totalTasks: (g.hiQ - g.loQ) * cfg.Workload.NumFragments,
		nextQ:      g.loQ,
		remaining:  make(map[int]int),
		assigned:   make(map[int][]int),
		mergeAcc:   make(map[int]int64),
		complete:   make(map[int]bool),
		taskDone:   make(map[task]bool),
		retries:    make(map[task]int),
		live:       make(map[int]bool),
		incarn:     make(map[int]int),
		idle:       make(map[int]bool),
		syncMember: make(map[int]bool),
		leases:     make(map[int]*rlease),
		lastSeq:    make(map[int]int),
		lastReply:  make(map[int]workReplyMsg),
	}
	for q := g.loQ; q < g.hiQ; q++ {
		m.remaining[q] = cfg.Workload.NumFragments
		m.assigned[q] = make([]int, cfg.Workload.NumFragments)
	}
	for _, w := range g.workers {
		m.live[w] = true
		m.syncMember[w] = cfg.QuerySync
	}
	m.batches = make([]*rbatch, len(g.batches))
	for i := range m.batches {
		m.batches[i] = &rbatch{owed: make(map[debtKey]rdebt), recovery: make(map[task]bool)}
	}
	m.workReq = r.Irecv(mpi.AnySource, tagWorkRequest)
	m.scoreReq = r.Irecv(mpi.AnySource, tagScores)
	m.ackReq = r.Irecv(mpi.AnySource, tagWriteAck)
	m.nextSweep = r.Now() + cfg.effDetect()

	for !rt.rmDone(m) {
		pt.Switch(PhaseDataDist)
		deadline := rt.rmNextDeadline(m)
		r.WaitAnyUntil([]*mpi.Request{m.workReq, m.scoreReq, m.ackReq}, deadline)
		for rt.rmDrainOne(r, m) {
		}
		if r.Now() >= m.nextSweep {
			rt.rmSweep(r, m)
			m.nextSweep = r.Now() + cfg.effDetect()
		}
		rt.rmExpireLeases(r, m)
		rt.rmExpireAcks(r, m)
		rt.rmFlush(r, m)
		rt.rmRetireSends(m)
		rt.rmCheckStuck(r, m)
	}
	rt.rmShutdown(r, m)
	if rt.runErr == nil {
		// Every live worker has finned and every batch is durable — the
		// readback-under-chaos verification point: prove the recovered image
		// content-matches the workload despite crashes, outages, and drops.
		rt.rbPostRun(r, pt, m.g)
	}
	pt.Finish()
	rt.noteEnd()
}

// rmDone reports whether everything is scheduled, processed, and durable —
// or the run has been declared unrecoverable.
func (rt *runtime) rmDone(m *rmasterState) bool {
	if rt.runErr != nil {
		return true
	}
	if m.processed != m.totalTasks {
		return false
	}
	if m.flushedInit != len(m.g.batches) {
		return false
	}
	for _, b := range m.batches {
		if !b.durable {
			return false
		}
	}
	return true
}

// rmNextDeadline picks the earliest of the detector sweep, lease expiries,
// and ack-debt expiries — the master's next forced wake-up.
func (rt *runtime) rmNextDeadline(m *rmasterState) des.Time {
	d := m.nextSweep
	for _, w := range sortedKeysLease(m.leases) {
		if l := m.leases[w]; l.deadline < d {
			d = l.deadline
		}
	}
	for _, b := range m.batches {
		if !b.sent || b.durable {
			continue
		}
		for _, k := range sortedDebtKeys(b.owed) {
			if dd := b.owed[k].deadline; dd < d {
				d = dd
			}
		}
	}
	return d
}

// rmDrainOne consumes at most one completed persistent receive, in fixed
// priority order, reposting it. Returns false when nothing was ready.
// Scores drain before work requests: a worker's score precedes its next
// request on the wire, and handling the request first would misread the
// still-queued score as lost and requeue an already-finished task.
func (rt *runtime) rmDrainOne(r *mpi.Rank, m *rmasterState) bool {
	switch {
	case m.scoreReq.Done():
		msg := m.scoreReq.Message()
		m.scoreReq = r.Irecv(mpi.AnySource, tagScores)
		rt.rmHandleScore(r, m, msg)
	case m.ackReq.Done():
		msg := m.ackReq.Message()
		m.ackReq = r.Irecv(mpi.AnySource, tagWriteAck)
		rt.rmHandleAck(m, msg)
	case m.workReq.Done():
		msg := m.workReq.Message()
		m.workReq = r.Irecv(mpi.AnySource, tagWorkRequest)
		rt.rmHandleWorkReq(r, m, msg)
	default:
		return false
	}
	return true
}

// rmHandleWorkReq serves one work request: revival detection, duplicate
// (resent) request replay, lost-score recovery, and task assignment.
func (rt *runtime) rmHandleWorkReq(r *mpi.Rank, m *rmasterState, msg *mpi.Message) {
	w := msg.Source
	rq := msg.Payload.(workReqMsg)
	if rq.Inc < m.incarn[w] {
		// In-flight leftover from an incarnation already superseded; ignore.
		return
	}
	if rq.Inc > m.incarn[w] {
		// A restarted worker whose death we may never have observed:
		// retire the old incarnation's state first, then welcome it back.
		if m.live[w] {
			rt.rmDeclareDead(r, m, w, r.Now())
		}
		m.incarn[w] = rq.Inc
		m.live[w] = true
		delete(m.idle, w)
		m.lastSeq[w] = 0
		delete(m.lastReply, w)
		if rt.cfg.QuerySync && !m.syncMember[w] {
			m.pendingJoin = append(m.pendingJoin, w)
		}
		rt.count("fault.workers_rejoined", 1)
	}
	if !m.live[w] {
		// A message from a dead incarnation still in flight; ignore.
		return
	}
	if rq.Seq == m.lastSeq[w] {
		// Resent request (our reply was lost): replay the same reply and
		// refresh the lease.
		if l := m.leases[w]; l != nil {
			l.deadline = r.Now() + rt.cfg.effLease()
		}
		rt.rmSendReply(r, m, w, m.lastReply[w])
		return
	}
	if l := m.leases[w]; l != nil {
		// New request while a task lease is outstanding: the score was
		// lost in flight. Re-dispatch the leased task.
		delete(m.leases, w)
		if !m.taskDone[l.t] {
			rt.rmRequeue(r, m, l.t)
		}
	}
	delete(m.idle, w)
	rep := workReplyMsg{Seq: rq.Seq, Flushed: m.flushedInit}
	if t, ok := rt.rmAssignNext(m); ok {
		rep.Has = true
		rep.T = t
		m.leases[w] = &rlease{t: t, seq: rq.Seq, deadline: r.Now() + rt.cfg.effLease()}
	} else {
		m.idle[w] = true
	}
	m.lastSeq[w] = rq.Seq
	m.lastReply[w] = rep
	rt.rmSendReply(r, m, w, rep)
}

// rmSendReply ships one work reply (droppable; the worker resends its
// request on timeout).
func (rt *runtime) rmSendReply(r *mpi.Rank, m *rmasterState, w int, rep workReplyMsg) {
	m.sends = append(m.sends, r.Isend(w, tagWorkReply, replyMsgBytes, rep))
}

// rmAssignNext pops the next task: re-dispatches first, then fresh ones.
func (rt *runtime) rmAssignNext(m *rmasterState) (task, bool) {
	for len(m.retryQ) > 0 {
		t := m.retryQ[0]
		m.retryQ = m.retryQ[1:]
		if !m.taskDone[t] {
			return t, true
		}
	}
	if m.nextQ < m.g.hiQ {
		t := task{Q: m.nextQ, F: m.nextF}
		m.nextF++
		if m.nextF == rt.cfg.Workload.NumFragments {
			m.nextF = 0
			m.nextQ++
		}
		return t, true
	}
	return task{}, false
}

// rmHandleScore merges one arriving score report (step 10), with duplicate
// suppression for re-executed tasks.
func (rt *runtime) rmHandleScore(r *mpi.Rank, m *rmasterState, msg *mpi.Message) {
	cfg := rt.cfg
	sm := msg.Payload.(scoreMsg)
	w := msg.Source
	t := sm.Task
	if l := m.leases[w]; l != nil && l.t == t {
		delete(m.leases, w)
	}
	if m.taskDone[t] {
		rt.count("fault.tasks_duplicate", 1)
		return
	}
	m.pt.Switch(PhaseGather)
	q := t.Q
	newBytes := int64(sm.Count) * cfg.ScoreEntryBytes
	if cfg.Strategy == MW {
		newBytes += sm.ResultBytes
	}
	rt.mergeSleep(r, cfg.mergeTime(m.mergeAcc[q], newBytes))
	m.mergeAcc[q] += newBytes
	m.assigned[q][t.F] = w
	m.remaining[q]--
	m.processed++
	m.taskDone[t] = true
	if m.remaining[q] == 0 {
		m.complete[q] = true
	}
	// If t was a recovery task of a sent batch, rmFlush notices the whole
	// recovery set is re-completed and ships the next wave.
}

// rmBatchOf maps a query to its group-local batch index.
func (rt *runtime) rmBatchOf(m *rmasterState, q int) int {
	return (q - m.g.loQ) / rt.cfg.QueriesPerWrite
}

// rmHandleAck clears one owed write acknowledgement.
func (rt *runtime) rmHandleAck(m *rmasterState, msg *mpi.Message) {
	am := msg.Payload.(ackMsg)
	w := msg.Source
	if am.Batch < 0 || am.Batch >= len(m.batches) {
		return
	}
	delete(m.batches[am.Batch].owed, debtKey{rank: w, wave: am.Wave})
}

// rmSweep is the failure-detector pass: observe effected crashes.
func (rt *runtime) rmSweep(r *mpi.Rank, m *rmasterState) {
	if rt.faults == nil {
		return
	}
	for _, w := range sortedLive(m.live) {
		if diedAt, dead := rt.faults.DeadAt(w); dead {
			rt.rmDeclareDead(r, m, w, diedAt)
		}
	}
}

// rmDeclareDead retires a worker: lease requeue, barrier and collective
// deregistration, WW-Coll taint, and ack-grace arming for its debts.
func (rt *runtime) rmDeclareDead(r *mpi.Rank, m *rmasterState, w int, diedAt des.Time) {
	cfg := rt.cfg
	if !m.live[w] {
		return
	}
	m.live[w] = false
	delete(m.idle, w)
	rt.count("fault.workers_detected", 1)
	rt.observeTime("fault.detection_latency", r.Now()-diedAt)
	rt.pointf("detected-dead rank=%d", w)
	if m.syncMember[w] {
		m.g.querySyn.Deregister()
		delete(m.syncMember, w)
	}
	if cfg.Strategy == WWColl {
		if !m.collTainted {
			m.collTainted = true
			rt.count("fault.coll_fallbacks", 1)
		}
		if cfg.CollMethod == romio.TwoPhase {
			m.g.collEntry.Deregister()
		}
		m.g.collGroup.Deregister(w)
	}
	if l := m.leases[w]; l != nil {
		delete(m.leases, w)
		if !m.taskDone[l.t] {
			rt.rmRequeue(r, m, l.t)
		}
	}
	// Its outstanding write acks get a grace period: a write completed just
	// before death still delivers its (reliable) ack; only silence after
	// the grace implies the wave was never written.
	grace := r.Now() + cfg.effLease()
	for _, b := range m.batches {
		if !b.sent || b.durable {
			continue
		}
		for _, k := range sortedDebtKeys(b.owed) {
			if k.rank != w {
				continue
			}
			d := b.owed[k]
			d.dead = true
			d.deadline = grace
			b.owed[k] = d
		}
	}
	// Scored results for batches whose offset lists were never sent died
	// with the worker's memory (WW strategies only — under MW the master
	// holds the merged data): re-dispatch those tasks now.
	if cfg.Strategy.WorkerWriting() {
		for bi, rb := range m.batches {
			if rb.sent {
				continue
			}
			b := m.g.batches[bi]
			for q := b.LoQ; q < b.HiQ; q++ {
				for f := 0; f < cfg.Workload.NumFragments; f++ {
					t := task{Q: q, F: f}
					if m.taskDone[t] && m.assigned[q][f] == w {
						rt.rmRequeueScored(r, m, t)
					}
				}
			}
		}
	}
}

// rmRequeue re-dispatches a lost task, bounding retries, and nudges idle
// workers so someone picks it up.
func (rt *runtime) rmRequeue(r *mpi.Rank, m *rmasterState, t task) {
	m.retries[t]++
	if m.retries[t] > rt.cfg.effRetries() {
		rt.fail(fmt.Errorf("core: task q%d/f%d lost %d times (MaxTaskRetries=%d)",
			t.Q, t.F, m.retries[t], rt.cfg.effRetries()))
		return
	}
	m.retryQ = append(m.retryQ, t)
	rt.count("fault.tasks_reexecuted", 1)
	rt.rmNudgeIdle(r, m)
}

// rmRequeueScored un-completes a task whose results were lost before
// becoming durable. If its batch's initial wave is already out, the task
// joins the batch's recovery set (its re-computed placements ship as the
// next wave); an unsent batch simply re-includes it in wave 0 later.
func (rt *runtime) rmRequeueScored(r *mpi.Rank, m *rmasterState, t task) {
	if !m.taskDone[t] {
		return
	}
	m.taskDone[t] = false
	m.processed--
	m.remaining[t.Q]++
	m.complete[t.Q] = false
	bi := rt.rmBatchOf(m, t.Q)
	if m.batches[bi].sent {
		m.batches[bi].recovery[t] = true
	}
	rt.rmRequeue(r, m, t)
}

// rmNudgeIdle pokes every idle worker when new work appears.
func (rt *runtime) rmNudgeIdle(r *mpi.Rank, m *rmasterState) {
	if len(m.retryQ) == 0 && m.nextQ >= m.g.hiQ {
		return
	}
	for _, w := range sortedKeysBool(m.idle) {
		m.sends = append(m.sends, r.Isend(w, tagControl, ctlMsgBytes, ctlMsg{}))
		delete(m.idle, w)
	}
}

// rmExpireLeases acts on tasks whose lease ran out. A live worker is most
// likely still computing a long task — crashes are caught by the detector
// sweep and lost scores by the next work request — so its lease is extended
// (each time doubling the grant) up to effRetries times before the task is
// speculatively re-dispatched; only that final expiry treats the worker as
// an undeclarable straggler. A late duplicate score is suppressed by
// taskDone either way.
func (rt *runtime) rmExpireLeases(r *mpi.Rank, m *rmasterState) {
	cfg := rt.cfg
	now := r.Now()
	for _, w := range sortedKeysLease(m.leases) {
		l := m.leases[w]
		if l.deadline > now {
			continue
		}
		if m.live[w] && l.extends < cfg.effRetries() {
			l.extends++
			l.deadline = now + cfg.effLease()<<l.extends
			rt.count("fault.lease_extensions", 1)
			continue
		}
		delete(m.leases, w)
		if !m.taskDone[l.t] {
			rt.count("fault.lease_expirations", 1)
			rt.rmRequeue(r, m, l.t)
		}
	}
}

// rmExpireAcks acts on overdue write acks: resend the wave to a live owner
// (it deduplicates and re-acks), or — after the death grace — declare the
// wave lost and re-dispatch the tasks behind its placements.
func (rt *runtime) rmExpireAcks(r *mpi.Rank, m *rmasterState) {
	cfg := rt.cfg
	now := r.Now()
	for _, b := range m.batches {
		if !b.sent || b.durable {
			continue
		}
		for _, k := range sortedDebtKeys(b.owed) {
			d := b.owed[k]
			if d.deadline > now {
				continue
			}
			if d.dead || !m.live[k.rank] || d.msg.Inc != m.incarn[k.rank] {
				delete(b.owed, k)
				for _, t := range placementTasks(d.msg.Placements) {
					rt.rmRequeueScored(r, m, t)
				}
				continue
			}
			d.deadline = now + cfg.effLease()
			b.owed[k] = d
			m.sends = append(m.sends, r.Isend(k.rank, tagOffsets,
				int64(offsetHdrBytes)+int64(len(d.msg.Placements))*offsetPerResult, d.msg))
			rt.count("fault.offset_resends", 1)
		}
	}
}

// placementTasks lists the distinct (query, fragment) tasks behind a
// placement list, in deterministic order.
func placementTasks(placements []search.Result) []task {
	seen := make(map[task]bool)
	var out []task
	for _, res := range placements {
		t := task{Q: res.Query, F: res.Fragment}
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Q != out[j].Q {
			return out[i].Q < out[j].Q
		}
		return out[i].F < out[j].F
	})
	return out
}

// rmFlush sends ready initial waves in order, then recovery waves for
// batches whose re-dispatched tasks have all re-completed.
func (rt *runtime) rmFlush(r *mpi.Rank, m *rmasterState) {
	for m.flushedInit < len(m.g.batches) {
		b := m.g.batches[m.flushedInit]
		ready := true
		for q := b.LoQ; q < b.HiQ; q++ {
			if !m.complete[q] {
				ready = false
				break
			}
		}
		if !ready {
			break
		}
		rt.rmFlushInitial(r, m, m.flushedInit)
		m.flushedInit++
	}
	for bi, rb := range m.batches {
		if !rb.sent || rb.durable || len(rb.recovery) == 0 {
			continue
		}
		allBack := true
		for _, t := range sortedTasks(rb.recovery) {
			if !m.taskDone[t] {
				allBack = false
				break
			}
		}
		if allBack {
			rt.rmSendRecoveryWave(r, m, bi)
		}
	}
	for _, rb := range m.batches {
		if rb.sent && !rb.durable && len(rb.owed) == 0 && len(rb.recovery) == 0 {
			rb.durable = true
		}
	}
}

// rmFlushInitial performs one batch's initial flush: the master write plus
// sync tokens under MW, or wave-0 offset lists (with ack debts) under WW.
func (rt *runtime) rmFlushInitial(r *mpi.Rank, m *rmasterState, bi int) {
	cfg := rt.cfg
	g := m.g
	b := g.batches[bi]
	rb := m.batches[bi]
	pt := m.pt
	// Safe moment to grow the sync barrier: admit revived workers only
	// between epochs.
	if cfg.QuerySync && len(m.pendingJoin) > 0 && g.querySyn.Idle() {
		for _, w := range m.pendingJoin {
			if m.live[w] && !m.syncMember[w] {
				g.querySyn.Register()
				m.syncMember[w] = true
			}
		}
		m.pendingJoin = nil
	}
	if cfg.Strategy == MW {
		pt.Switch(PhaseIO)
		rt.mergeSleep(r, des.BytesOver(b.Bytes, cfg.FormatBandwidth))
		var data []byte
		if cfg.CaptureData {
			data = rt.batchData(b)
		}
		rt.file.WriteAt(r, b.Region, b.Bytes, data)
		if cfg.SyncEveryWrite {
			rt.file.Sync(r)
		}
		rt.flushTimes[g.batchBase+bi] = rt.sim.Now()
		pt.Switch(PhaseGather)
		if cfg.QuerySync {
			for _, w := range sortedLive(m.live) {
				tk := tokMsg{Batch: bi, Inc: m.incarn[w], Sync: m.syncMember[w]}
				m.sends = append(m.sends, r.Isend(w, tagSyncToken, tokenMsgBytes, tk))
			}
		}
		rb.sent = true
		rb.durable = true
		return
	}
	perWorker := make(map[int][]search.Result, len(g.workers))
	for q := b.LoQ; q < b.HiQ; q++ {
		qry := &rt.wl.Queries[q]
		for _, res := range qry.Results {
			w := m.assigned[q][res.Fragment]
			perWorker[w] = append(perWorker[w], res)
		}
	}
	pt.Switch(PhaseGather)
	deadline := r.Now() + cfg.effLease()
	for _, w := range sortedLive(m.live) {
		msg := offsetMsg{
			Batch:      bi,
			Placements: perWorker[w],
			Wave:       0,
			Inc:        m.incarn[w],
			Fallback:   m.collTainted,
			Sync:       cfg.QuerySync && m.syncMember[w],
		}
		var bytes int64
		for _, res := range perWorker[w] {
			bytes += res.Size
		}
		wire := int64(offsetHdrBytes) + int64(len(perWorker[w]))*offsetPerResult
		m.sends = append(m.sends, r.Isend(w, tagOffsets, wire, msg))
		rb.owed[debtKey{rank: w, wave: 0}] = rdebt{msg: msg, bytes: bytes, deadline: deadline}
	}
	rb.sent = true
}

// rmSendRecoveryWave re-sends a batch's recovered placements to their new
// owners as the next wave.
func (rt *runtime) rmSendRecoveryWave(r *mpi.Rank, m *rmasterState, bi int) {
	cfg := rt.cfg
	g := m.g
	rb := m.batches[bi]
	b := g.batches[bi]
	rb.wave++
	perWorker := make(map[int][]search.Result)
	for q := b.LoQ; q < b.HiQ; q++ {
		qry := &rt.wl.Queries[q]
		for _, res := range qry.Results {
			if !rb.recovery[task{Q: q, F: res.Fragment}] {
				continue
			}
			w := m.assigned[q][res.Fragment]
			perWorker[w] = append(perWorker[w], res)
		}
	}
	deadline := r.Now() + cfg.effLease()
	for _, w := range sortedKeysResults(perWorker) {
		msg := offsetMsg{
			Batch:      bi,
			Placements: perWorker[w],
			Wave:       rb.wave,
			Inc:        m.incarn[w],
			Fallback:   cfg.Strategy == WWColl,
			Sync:       false,
		}
		var bytes int64
		for _, res := range perWorker[w] {
			bytes += res.Size
		}
		wire := int64(offsetHdrBytes) + int64(len(perWorker[w]))*offsetPerResult
		m.sends = append(m.sends, r.Isend(w, tagOffsets, wire, msg))
		rb.owed[debtKey{rank: w, wave: rb.wave}] = rdebt{msg: msg, bytes: bytes, deadline: deadline}
		rt.count("fault.bytes_rewritten", bytes)
	}
	rb.recovery = make(map[task]bool)
}

// rmRetireSends drops completed fire-and-forget sends.
func (rt *runtime) rmRetireSends(m *rmasterState) {
	kept := m.sends[:0]
	for _, q := range m.sends {
		if !q.Done() {
			kept = append(kept, q)
		}
	}
	m.sends = kept
}

// rmCheckStuck declares the run unrecoverable when work remains but no
// worker is alive and none will restart.
func (rt *runtime) rmCheckStuck(r *mpi.Rank, m *rmasterState) {
	if rt.runErr != nil || rt.rmDone(m) {
		return
	}
	if len(sortedLive(m.live)) > 0 {
		return
	}
	if rt.faults != nil && rt.faults.RestartPending() {
		return
	}
	rt.fail(fmt.Errorf("core: group %d has unfinished work but no live workers and no pending restart",
		m.g.index))
}

// rmShutdown replaces the global final barrier: order every live worker to
// exit, then collect their fins (sweeping for deaths in between).
func (rt *runtime) rmShutdown(r *mpi.Rank, m *rmasterState) {
	cfg := rt.cfg
	m.pt.Switch(PhaseSync)
	rt.groupShutdown[m.g.index] = true
	m.finReq = r.Irecv(mpi.AnySource, tagFin)
	finWait := make(map[int]bool)
	for _, w := range sortedLive(m.live) {
		m.sends = append(m.sends, r.Isend(w, tagControl, ctlMsgBytes, ctlMsg{Shutdown: true}))
		finWait[w] = true
	}
	if rt.runErr != nil {
		// Aborting: order survivors down best-effort but do not wait for
		// fins — a worker wedged behind a dead peer would never send one.
		finWait = nil
	}
	for len(finWait) > 0 {
		r.WaitAnyUntil([]*mpi.Request{m.finReq, m.workReq}, r.Now()+cfg.effDetect())
		for m.finReq.Done() {
			src := m.finReq.Message().Source
			m.finReq = r.Irecv(mpi.AnySource, tagFin)
			delete(finWait, src)
		}
		for m.workReq.Done() {
			// A late revival: order it down too; it fins before exiting.
			msg := m.workReq.Message()
			m.workReq = r.Irecv(mpi.AnySource, tagWorkRequest)
			rq := msg.Payload.(workReqMsg)
			if rq.Inc > m.incarn[msg.Source] {
				m.incarn[msg.Source] = rq.Inc
				finWait[msg.Source] = true
				m.sends = append(m.sends,
					r.Isend(msg.Source, tagControl, ctlMsgBytes, ctlMsg{Shutdown: true}))
			}
		}
		if rt.faults != nil {
			for _, w := range sortedKeysBool(finWait) {
				if _, dead := rt.faults.DeadAt(w); dead {
					delete(finWait, w)
				}
			}
		}
	}
	r.WaitAll(m.sends...)
	m.sends = nil
	r.Cancel(m.workReq)
	r.Cancel(m.scoreReq)
	r.Cancel(m.ackReq)
	r.Cancel(m.finReq)
}

// Deterministic map-key iteration helpers.

func sortedLive(live map[int]bool) []int {
	out := make([]int, 0, len(live))
	for w, ok := range live {
		if ok {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

func sortedKeysBool(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedKeysLease(m map[int]*rlease) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedDebtKeys(m map[debtKey]rdebt) []debtKey {
	out := make([]debtKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].rank != out[j].rank {
			return out[i].rank < out[j].rank
		}
		return out[i].wave < out[j].wave
	})
	return out
}

func sortedKeysResults(m map[int][]search.Result) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedTasks(m map[task]bool) []task {
	out := make([]task, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Q != out[j].Q {
			return out[i].Q < out[j].Q
		}
		return out[i].F < out[j].F
	})
	return out
}
