package core

import (
	"errors"
	"fmt"

	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/fault"
	"s3asim/internal/mpi"
	"s3asim/internal/obs"
	"s3asim/internal/pvfs"
	"s3asim/internal/romio"
	"s3asim/internal/search"
	"s3asim/internal/trace"
)

// Segmentation selects the parallelization scheme (paper §1).
type Segmentation int

const (
	// DatabaseSeg is the paper's subject: the database is partitioned into
	// fragments, every worker searches whole queries against fragments.
	DatabaseSeg Segmentation = iota
	// QuerySeg is the §1 baseline: the database is replicated to every
	// worker and the query set is partitioned. Each worker searches whole
	// queries against the whole database; when the database exceeds worker
	// memory, the overflow is re-read from the file system for every query
	// — the "repeated I/O" §1 identifies.
	QuerySeg
)

// String names the segmentation scheme.
func (s Segmentation) String() string {
	if s == QuerySeg {
		return "query-seg"
	}
	return "database-seg"
}

// Config is a complete S3aSim run description: the workload, the machine
// models, the I/O strategy, and the paper's run options.
type Config struct {
	// Procs is the total MPI process count (1 master + Procs-1 workers).
	Procs int
	// Strategy selects the result I/O algorithm.
	Strategy Strategy
	// QuerySync forces all workers to synchronize after each batch's I/O
	// (the paper's "query sync" option used to expose collective I/O's
	// inherent synchronization).
	QuerySync bool
	// ComputeSpeed scales the linear part of the search-time model;
	// 1 is the base speed, larger is faster hardware/algorithms (§4).
	ComputeSpeed float64
	// QueryGroups enables the paper's §5 "hybrid query segmentation /
	// database segmentation" extension: the process set is split into this
	// many master/worker groups, each handling a contiguous share of the
	// query set with database segmentation, all sharing the file system and
	// the output file. 0 or 1 is the paper's pure database segmentation.
	QueryGroups int
	// QueriesPerWrite flushes results after every n completed queries
	// (paper §2: "after every n queries"); 1 writes per query (the paper's
	// test setup), NumQueries writes everything at the end (mpiBLAST 1.2 /
	// pioBLAST behaviour).
	QueriesPerWrite int
	// SyncEveryWrite issues MPI_File_sync after every write, as the paper's
	// tests always did.
	SyncEveryWrite bool
	// ResumeFromQuery restarts a failed run at the given input query — the
	// recovery mechanism frequent writes buy ("more frequently writing out
	// the results also allows users to resume a failed application run at
	// the appropriate input query", §2). Queries before it are assumed
	// already durable in the output file from the failed run.
	ResumeFromQuery int

	// Workload and Compute define the simulated search.
	Workload search.Spec
	Compute  search.ComputeModel

	// Segmentation selects database segmentation (the paper's subject,
	// default) or the query-segmentation baseline of §1. Under QuerySeg
	// the fragment count is forced to 1 (a task is a whole query).
	Segmentation Segmentation
	// DatabaseBytes, when positive, models input I/O: the sequence
	// database lives on the parallel file system and must be loaded before
	// searching. Under DatabaseSeg each worker loads its share once; under
	// QuerySeg each worker loads the full database and re-reads the part
	// exceeding WorkerMemoryBytes for every query (§1's repeated I/O).
	DatabaseBytes int64
	// WorkerMemoryBytes caps how much database a worker can cache
	// (default 512 MB — half of a Feynman node's 1 GB shared by 2 procs).
	WorkerMemoryBytes int64

	// Net and FS are the interconnect and file-system models.
	Net mpi.NetConfig
	FS  pvfs.Config

	// MergeBandwidth models merge throughput (bytes/second): the master
	// merging arriving result lists into its sorted list (full result bytes
	// under MW, score entries otherwise), and workers merging their local
	// per-query results when they write themselves.
	MergeBandwidth float64
	// FormatBandwidth models result serialization before writing (BLAST
	// output formatting — the documented master-side bottleneck in
	// mpiBLAST/pioBLAST). The writing process pays bytes/FormatBandwidth
	// before each write: the master under MW, each worker under WW.
	FormatBandwidth float64
	// ScoreEntryBytes is the wire/merge size of one score entry.
	ScoreEntryBytes int64

	// OverrideIndMethod forces the individual-write ADIO method instead of
	// the strategy default (WW-POSIX→posix, WW-List→list); used by the
	// data-sieving ablation.
	OverrideIndMethod bool
	IndMethod         romio.Method
	// CBNodes caps two-phase aggregators (0 = all workers).
	CBNodes int
	// CollMethod selects the collective-write implementation for WW-Coll:
	// romio.TwoPhase (ROMIO default, as in the paper's experiments) or
	// romio.ListSync (the improved collective the paper's conclusion
	// proposes).
	CollMethod romio.CollMethod

	// CaptureData stores real bytes in the simulated file system so the
	// output image can be verified; use only with small workloads.
	CaptureData bool

	// Readback, if non-nil, enables the verified read path (DESIGN.md §14):
	// in-run and/or post-run verifiers read committed extents back through a
	// real read strategy and compare content hashes against independently
	// regenerated bytes. Requires CaptureData. Nil issues no reads and is
	// bit-identical to builds without the readback code.
	Readback *ReadbackConfig

	// TestWriteDropper, when non-nil, is installed in the simulated file
	// system as a silent write-corruption hook (pvfs.SetWriteDropper): any
	// write segment it selects is acknowledged and fully accounted but its
	// payload is discarded. Tests use it to prove the readback verifier
	// detects real data loss; leave nil otherwise.
	TestWriteDropper func(off, n int64) bool

	// DisableMasterNICSerialization gives the master's node infinitely
	// parallel NICs — an ablation isolating how much of MW's cost is
	// receive-side serialization at the master.
	DisableMasterNICSerialization bool

	// Tracer, if non-nil, records every process's phase timeline (the
	// MPE/Jumpshot-style instrumentation of paper §3); render it with
	// trace.Gantt or cmd/s3atrace.
	Tracer *trace.Tracer
	// Sink, if non-nil, additionally receives every phase-timeline event as
	// it happens — a streaming alternative to (or companion of) Tracer. Use
	// obs.NewStreamSink for JSONL spooling or obs.NewPerfettoSink for Chrome
	// trace-event export. When both Tracer and Sink are set, events go to
	// both.
	Sink obs.Sink
	// Metrics, if non-nil, is the registry the run populates with counters,
	// gauges, and virtual-time histograms (engine phases, pvfs requests, MPI
	// traffic). When nil the run uses a private registry; either way the
	// final snapshot lands in Report.Metrics. Supply a registry to
	// accumulate across several runs or to observe values mid-run.
	Metrics *obs.Registry
	// Causal, if non-nil, records happens-before structure (MPI waits and
	// message edges, barrier fan-in, PVFS request pipelines, compute and
	// merge intervals) for critical-path attribution; the result lands in
	// Report.Attribution. The recorder is purely passive: a run with one
	// attached is event-for-event identical to the same run without.
	Causal *causal.Recorder
	// TraceIO records every file-system server request; the trace appears
	// in Report.IOTrace for analysis (cmd/s3aiostat, pvfs.AnalyzeTrace).
	TraceIO bool

	// Sim, if non-nil, is the simulation kernel to run on: it is Reset()
	// before use, so its calendar storage and process/waiter pools carry
	// over from earlier runs. Sweeps reuse one kernel per executor slot this
	// way instead of reallocating per cell; a reset kernel is observably
	// identical to a fresh one, so results do not depend on whether (or
	// which) kernel is supplied. When nil the run builds its own. The caller
	// must not share one kernel across concurrent runs.
	Sim *des.Simulation

	// FaultPlan, when non-empty, injects the scheduled faults (see
	// internal/fault) and switches the engine to the resilient master/worker
	// protocol of DESIGN.md §9. A nil or empty plan with Resilient unset
	// runs the original protocol and is bit-identical to a run without any
	// fault layer at all.
	FaultPlan *fault.Plan
	// Resilient forces the recovery protocol even with an empty plan — the
	// chaos suite uses this for its fault-free baselines so inflation is
	// measured against the same protocol.
	Resilient bool
	// LeaseTimeout bounds how long the master waits (virtual time) for a
	// task's score, or for a sent batch's write acknowledgement, before
	// assuming it lost and re-dispatching. 0 picks max(2s, 8×DetectInterval).
	LeaseTimeout des.Time
	// DetectInterval is the master failure-detector sweep period; detection
	// latency for a crashed worker is bounded by it. 0 picks 250ms.
	DetectInterval des.Time
	// MaxTaskRetries bounds how many times one (query, fragment) task may be
	// re-dispatched after losses before the run aborts as unrecoverable.
	// 0 picks 3.
	MaxTaskRetries int

	// Serve, if non-nil, switches the run into the open-loop serving
	// scenario (DESIGN.md §13): queries arrive over virtual time per the
	// plan's schedule, the master admits and queues them (FIFO or SJF), and
	// per-query lifecycle stamps land in Report.Queries. Requires a single
	// query group, QueriesPerWrite == 1, no resume, and the non-resilient
	// protocol. Nil runs the paper's closed batch, byte-identically to
	// builds without serving code.
	Serve *ServePlan

	// Telemetry, if non-nil, enables the virtual-time telemetry pipeline
	// (DESIGN.md §15): the metrics registry additionally folds every
	// mutation into tumbling windows of Telemetry.Window, SLO alert rules
	// are evaluated at window boundaries into Report.Alerts, and a flight
	// recorder rides on the run's sink — dumps triggered by alert firings,
	// fault injections, and readback mismatches land in Report.FlightDumps.
	// Everything derives from virtual time, so a telemetry run stays
	// deterministic; nil leaves the run byte-identical to builds without
	// telemetry code.
	Telemetry *obs.Telemetry

	// ProcModel selects how worker processes are backed by the kernel (see
	// DESIGN.md §12). The default ProcAuto runs the steady-state worker loop
	// as a pooled resumable state machine (des.SpawnFSM) on non-resilient
	// runs — the scale path that makes 100k-rank configurations affordable —
	// and keeps goroutine processes everywhere else. Both models execute the
	// identical event sequence, so reports and fingerprints do not depend on
	// the choice.
	ProcModel ProcModel

	// Adaptive, if non-nil, switches the run into closed-loop adaptive I/O
	// (DESIGN.md §16): the master picks each flush batch's write strategy and
	// ROMIO hints at dispatch time from an online cost model fed by observed
	// flush windows (and their causal attribution on Causal runs), instead of
	// committing to Strategy for the whole run. Requires a single query group
	// and the non-resilient protocol; works in both the closed batch and
	// serving modes and under either worker engine. Nil runs the original
	// fixed-strategy protocol byte-for-byte.
	Adaptive *AdaptiveConfig
}

// ProcModel selects the kernel backing for worker processes.
type ProcModel int

const (
	// ProcAuto picks FSM workers for non-resilient runs, goroutines
	// otherwise.
	ProcAuto ProcModel = iota
	// ProcGoroutine forces goroutine-coroutine workers everywhere.
	ProcGoroutine
	// ProcFSM forces FSM workers; invalid for resilient runs (the recovery
	// protocol's control flow needs goroutine stacks).
	ProcFSM
)

// String names the process model.
func (m ProcModel) String() string {
	switch m {
	case ProcAuto:
		return "auto"
	case ProcGoroutine:
		return "goroutine"
	case ProcFSM:
		return "fsm"
	default:
		return fmt.Sprintf("ProcModel(%d)", int(m))
	}
}

// fsmWorkers reports whether this run's workers are state machines.
func (c *Config) fsmWorkers() bool {
	return !c.resilient() && c.ProcModel != ProcGoroutine
}

// DefaultConfig reproduces the paper's §3.3 test setup at 64 processes with
// the WW-List strategy.
func DefaultConfig() Config {
	return Config{
		Procs:           64,
		Strategy:        WWList,
		ComputeSpeed:    1,
		QueriesPerWrite: 1,
		SyncEveryWrite:  true,
		Workload:        search.DefaultSpec(),
		Compute:         search.DefaultComputeModel(),
		Net:             mpi.Myrinet2000(),
		FS:              pvfs.FeynmanLike(),
		MergeBandwidth:  150e6,
		FormatBandwidth: 3e6,
		ScoreEntryBytes: 16,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Procs < 2 {
		return errors.New("core: need at least 2 processes (1 master + 1 worker)")
	}
	if c.Workload.NumQueries < 1 || c.Workload.NumFragments < 1 {
		return errors.New("core: workload needs queries and fragments")
	}
	if c.QueriesPerWrite < 1 {
		return errors.New("core: QueriesPerWrite must be >= 1")
	}
	if c.ResumeFromQuery < 0 || c.ResumeFromQuery >= c.Workload.NumQueries {
		return errors.New("core: ResumeFromQuery out of range")
	}
	if g := c.QueryGroups; g > 1 {
		if c.Procs < 2*g {
			return errors.New("core: each query group needs a master and at least one worker")
		}
		if c.Workload.NumQueries-c.ResumeFromQuery < g {
			return errors.New("core: fewer remaining queries than query groups")
		}
	}
	if c.MergeBandwidth <= 0 {
		return errors.New("core: MergeBandwidth must be positive")
	}
	if c.FormatBandwidth <= 0 {
		return errors.New("core: FormatBandwidth must be positive")
	}
	if c.ScoreEntryBytes < 1 {
		return errors.New("core: ScoreEntryBytes must be >= 1")
	}
	if c.FS.NumServers < 1 {
		return errors.New("core: FS.NumServers must be >= 1")
	}
	if c.FS.StripSize < 1 {
		return errors.New("core: FS.StripSize must be >= 1")
	}
	if c.LeaseTimeout < 0 || c.DetectInterval < 0 {
		return errors.New("core: fault timeouts must be non-negative")
	}
	if c.MaxTaskRetries < 0 {
		return errors.New("core: MaxTaskRetries must be non-negative")
	}
	if c.ProcModel == ProcFSM && c.resilient() {
		return errors.New("core: ProcFSM is incompatible with the resilient protocol (use ProcAuto or ProcGoroutine)")
	}
	hints := romio.Hints{
		CBNodes:         c.CBNodes,
		CollWriteMethod: c.CollMethod,
		IndWriteMethod:  c.indMethod(),
	}
	if err := hints.Validate(); err != nil {
		return err
	}
	if err := c.validateAdaptive(); err != nil {
		return err
	}
	if err := c.validateServe(); err != nil {
		return err
	}
	if c.Telemetry != nil {
		if err := c.Telemetry.Validate(); err != nil {
			return err
		}
	}
	if err := c.validateReadback(); err != nil {
		return err
	}
	if !c.FaultPlan.IsEmpty() {
		if err := c.FaultPlan.Validate(); err != nil {
			return err
		}
		if err := c.FaultPlan.ValidateFor(c.Procs, c.FS.NumServers, c.masterRanks(), c.Readback != nil); err != nil {
			return err
		}
	}
	return nil
}

// masterRanks lists the master rank of every group under the same block
// layout buildGroups uses (first rank of each contiguous block).
func (c *Config) masterRanks() []int {
	G := c.QueryGroups
	if G < 1 {
		G = 1
	}
	out := make([]int, 0, G)
	rank := 0
	for gi := 0; gi < G; gi++ {
		size := c.Procs / G
		if gi < c.Procs%G {
			size++
		}
		out = append(out, rank)
		rank += size
	}
	return out
}

// WorkerRanks lists every worker (non-master) rank of the configuration,
// in ascending order — the valid Rank targets for fault.Event crashes and
// slowdowns (masters must not be crashed, see Plan.ValidateFor).
func (c *Config) WorkerRanks() []int {
	masters := c.masterRanks()
	isMaster := make(map[int]bool, len(masters))
	for _, m := range masters {
		isMaster[m] = true
	}
	out := make([]int, 0, c.Procs-len(masters))
	for r := 0; r < c.Procs; r++ {
		if !isMaster[r] {
			out = append(out, r)
		}
	}
	return out
}

// resilient reports whether the run uses the recovery protocol: explicitly
// requested, or implied by a fault plan the original protocol cannot absorb.
// Serving runs carry pure performance-fault plans (degrade/outage/delay —
// validateServe rejects anything stronger) on the original protocol, so
// latency faults can hit the open-loop scenario the telemetry pipeline
// watches.
func (c *Config) resilient() bool {
	if c.Resilient {
		return true
	}
	if c.FaultPlan.IsEmpty() {
		return false
	}
	return c.Serve == nil || c.FaultPlan.NeedsResilience()
}

// effDetect resolves the failure-detector sweep period.
func (c *Config) effDetect() des.Time {
	if c.DetectInterval > 0 {
		return c.DetectInterval
	}
	return 250 * des.Millisecond
}

// effLease resolves the task/write-ack lease timeout.
func (c *Config) effLease() des.Time {
	if c.LeaseTimeout > 0 {
		return c.LeaseTimeout
	}
	if d := 8 * c.effDetect(); d > 2*des.Second {
		return d
	}
	return 2 * des.Second
}

// effRetries resolves the per-task re-dispatch bound.
func (c *Config) effRetries() int {
	if c.MaxTaskRetries > 0 {
		return c.MaxTaskRetries
	}
	return 3
}

// EffectiveWorkload returns the workload spec a run of c actually
// generates: under QuerySeg the fragment count is forced to 1 (a task is a
// whole query against the whole replicated database). Workloads shared via
// RunWithWorkload must be generated from this spec, not c.Workload.
func (c *Config) EffectiveWorkload() search.Spec {
	s := c.Workload
	if c.Segmentation == QuerySeg {
		s.NumFragments = 1
	}
	return s
}

// sink resolves the run's timeline destination: the legacy Tracer, the
// streaming Sink, both, or nil. The explicit nil check on Tracer matters —
// wrapping a nil *trace.Tracer in the obs.Sink interface would yield a
// non-nil interface that panics on use.
func (c *Config) sink() obs.Sink {
	var tr obs.Sink
	if c.Tracer != nil {
		tr = c.Tracer
	}
	return obs.Multi(tr, c.Sink)
}

// indMethod resolves the ADIO method for individual worker writes.
func (c *Config) indMethod() romio.Method {
	if c.OverrideIndMethod {
		return c.IndMethod
	}
	if c.Strategy == WWPosix {
		return romio.Posix
	}
	return romio.ListIO
}

// mergeTime returns the modeled cost of merging newBytes into an
// accumulated sorted list of accBytes.
func (c *Config) mergeTime(accBytes, newBytes int64) des.Time {
	return des.BytesOver(accBytes+newBytes, c.MergeBandwidth)
}
