package core

import "testing"

// BenchmarkEngineSmallRun measures one complete small simulation per
// strategy — the end-to-end cost of the engine itself (scheduling,
// messaging, storage, reporting) rather than the simulated time.
func BenchmarkEngineSmallRun(b *testing.B) {
	for _, s := range Strategies {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			cfg := tinyConfig()
			cfg.CaptureData = false
			cfg.Strategy = s
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineEventsPerSecond reports simulator throughput on the paper
// workload at 32 processes.
func BenchmarkEngineEventsPerSecond(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Procs = 32
	var events uint64
	for i := 0; i < b.N; i++ {
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events = rep.Events
	}
	b.ReportMetric(float64(events), "events/run")
}
