package core

import (
	"testing"

	"s3asim/internal/trace"
)

func TestTracerRecordsAllProcesses(t *testing.T) {
	tr := trace.New()
	cfg := tinyConfig()
	cfg.Strategy = WWColl
	cfg.Tracer = tr
	rep := mustRun(t, cfg)

	procs := map[string]bool{}
	var lastEnd int64
	for _, e := range tr.Events() {
		procs[e.Proc] = true
		if e.End < e.Start {
			t.Fatalf("event ends before it starts: %+v", e)
		}
		if int64(e.End) > lastEnd {
			lastEnd = int64(e.End)
		}
	}
	if len(procs) != cfg.Procs {
		t.Fatalf("traced %d processes, want %d", len(procs), cfg.Procs)
	}
	if lastEnd != int64(rep.Overall) {
		t.Fatalf("trace ends at %d, run at %d", lastEnd, int64(rep.Overall))
	}
	// Every phase that has nonzero time must appear as a trace state for
	// some worker.
	stateSeen := map[string]bool{}
	for _, e := range tr.Events() {
		stateSeen[e.Name] = true
	}
	for p := 0; p < int(NumPhases); p++ {
		if rep.WorkerAvg.Phases[p] > 0 && !stateSeen[Phase(p).String()] {
			t.Fatalf("phase %v has time but no trace state", Phase(p))
		}
	}
	// And the Gantt renderer must handle the real trace.
	if out := trace.Gantt(tr.Events(), 60); len(out) == 0 {
		t.Fatal("empty gantt")
	}
}
