package core

import (
	"reflect"
	"testing"
	"time"

	"s3asim/internal/des"
	"s3asim/internal/fault"
)

// TestResilientFaultFreeAllStrategies runs the recovery protocol with an
// empty plan: every strategy must still produce a complete, verified,
// exactly-once file image.
func TestResilientFaultFreeAllStrategies(t *testing.T) {
	for _, s := range Strategies {
		for _, qs := range []bool{false, true} {
			cfg := tinyConfig()
			cfg.Strategy = s
			cfg.QuerySync = qs
			cfg.Resilient = true
			rep := mustRun(t, cfg)
			if !rep.Verified {
				t.Fatalf("%v sync=%v: image not verified", s, qs)
			}
			if rep.OverlappedBytes != 0 {
				t.Fatalf("%v sync=%v: overlapping writes", s, qs)
			}
			if rep.FileCoverage != rep.OutputBytes {
				t.Fatalf("%v sync=%v: coverage %d of %d bytes",
					s, qs, rep.FileCoverage, rep.OutputBytes)
			}
		}
	}
}

// TestEmptyFaultPlanIsBitIdentical pins the tentpole's non-negotiable: a
// Config carrying an empty (or nil-event) fault plan must produce the very
// same Report as one with no fault configuration at all — the original
// protocol runs and no fault hook is installed.
func TestEmptyFaultPlanIsBitIdentical(t *testing.T) {
	for _, s := range Strategies {
		base := tinyConfig()
		base.Strategy = s
		want := mustRun(t, base)

		withPlan := tinyConfig()
		withPlan.Strategy = s
		withPlan.FaultPlan = &fault.Plan{Seed: 42} // empty: no events
		got := mustRun(t, withPlan)

		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%v: empty fault plan changed the report", s)
		}
	}
}

// TestChaosStaleReplyNoLivelock pins a livelock found at paper scale: with
// enough workers that the master falls behind, a worker resends its work
// request, the master replays the reply, and the duplicate lands after the
// worker went idle. The idle park wakes on "any receive completed", so a
// work reply nobody collects spun the loop forever at constant virtual
// time. The wall-clock watchdog (generous: the run takes well under a
// second) is the deadlock detector — on regression the run never returns.
func TestChaosStaleReplyNoLivelock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Procs = 14
	cfg.Workload.NumQueries = 2
	cfg.Strategy = MW
	cfg.FaultPlan = &fault.Plan{
		Seed: 1,
		Events: []fault.Event{
			{Kind: fault.Crash, At: des.Second, Rank: 3, Server: -1,
				Restart: 500 * des.Millisecond},
		},
	}
	done := make(chan *Report, 1)
	go func() {
		done <- mustRun(t, cfg)
	}()
	select {
	case rep := <-done:
		if rep.FileCoverage != rep.OutputBytes {
			t.Fatalf("coverage %d of %d bytes", rep.FileCoverage, rep.OutputBytes)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run livelocked: stale work reply not drained by an idle worker")
	}
}

// chaosPlan schedules one worker crash-with-restart early in the run.
func chaosPlan(rank int) *fault.Plan {
	return &fault.Plan{
		Seed: 1,
		Events: []fault.Event{
			{Kind: fault.Crash, At: 10 * des.Millisecond, Rank: rank, Server: -1,
				Restart: 50 * des.Millisecond},
		},
	}
}

// TestChaosCrashRestartAllStrategies is the acceptance scenario: at least
// one worker crash per strategy, the run completes without deadlock, results
// are durably written exactly once, and the recovery metrics are recorded.
func TestChaosCrashRestartAllStrategies(t *testing.T) {
	for _, s := range Strategies {
		for _, qs := range []bool{false, true} {
			cfg := tinyConfig()
			cfg.Strategy = s
			cfg.QuerySync = qs
			cfg.FaultPlan = chaosPlan(2)
			rep := mustRun(t, cfg)
			if !rep.Verified {
				t.Fatalf("%v sync=%v: image not verified after crash", s, qs)
			}
			if rep.OverlappedBytes != 0 {
				t.Fatalf("%v sync=%v: %d bytes written more than once",
					s, qs, rep.OverlappedBytes)
			}
			if rep.FileCoverage != rep.OutputBytes {
				t.Fatalf("%v sync=%v: coverage %d of %d", s, qs,
					rep.FileCoverage, rep.OutputBytes)
			}
			mc := rep.Metrics.Counters
			if mc["fault.crashes"] < 1 {
				t.Fatalf("%v sync=%v: no crash recorded", s, qs)
			}
			if mc["fault.restarts"] < 1 {
				t.Fatalf("%v sync=%v: no restart recorded", s, qs)
			}
		}
	}
}

// TestChaosPermanentCrashReexecutesTasks kills a worker for good mid-run:
// its leased and non-durable work must be re-executed by the survivors, with
// the re-execution and detection-latency metrics populated.
func TestChaosPermanentCrashReexecutesTasks(t *testing.T) {
	for _, s := range Strategies {
		cfg := tinyConfig()
		cfg.Strategy = s
		cfg.DetectInterval = des.Millisecond // sweep often: the tiny run is short
		cfg.FaultPlan = &fault.Plan{
			Seed: 3,
			Events: []fault.Event{
				{Kind: fault.Crash, At: 20 * des.Millisecond, Rank: 3, Server: -1},
			},
		}
		rep := mustRun(t, cfg)
		if !rep.Verified || rep.FileCoverage != rep.OutputBytes {
			t.Fatalf("%v: incomplete after permanent crash", s)
		}
		mc := rep.Metrics.Counters
		if mc["fault.crashes"] != 1 {
			t.Fatalf("%v: crashes = %d, want 1", s, mc["fault.crashes"])
		}
		if mc["fault.workers_detected"] != 1 {
			t.Fatalf("%v: workers_detected = %d, want 1", s, mc["fault.workers_detected"])
		}
		if s.WorkerWriting() && mc["fault.tasks_reexecuted"] < 1 {
			t.Fatalf("%v: no task re-execution recorded", s)
		}
		h, ok := rep.Metrics.Hists["fault.detection_latency"]
		if !ok || h.Count < 1 {
			t.Fatalf("%v: detection latency not observed", s)
		}
		// Detection latency is bounded by the detector sweep period (plus
		// the handling already in progress when the sweep fires). The
		// histogram records seconds (obs.ObserveTime).
		if got := des.FromSeconds(h.Max); got > 2*cfg.effDetect() {
			t.Fatalf("%v: detection latency %v exceeds 2x sweep period %v",
				s, got, cfg.effDetect())
		}
	}
}

// TestChaosCollFallback pins the WW-Coll degradation path: once a collective
// participant dies, subsequent batches fall back to individual list I/O and
// the fallback is recorded.
func TestChaosCollFallback(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = WWColl
	cfg.FaultPlan = &fault.Plan{
		Seed: 5,
		Events: []fault.Event{
			{Kind: fault.Crash, At: 15 * des.Millisecond, Rank: 4, Server: -1},
		},
	}
	rep := mustRun(t, cfg)
	if !rep.Verified || rep.FileCoverage != rep.OutputBytes {
		t.Fatal("WW-Coll chaos run incomplete")
	}
	if rep.Metrics.Counters["fault.coll_fallbacks"] < 1 {
		t.Fatal("collective fallback not recorded")
	}
}

// TestChaosDeterminism pins the determinism contract: the same seed and plan
// produce an identical report (timing, coverage, metrics) on every run.
func TestChaosDeterminism(t *testing.T) {
	run := func() *Report {
		cfg := tinyConfig()
		cfg.Strategy = WWList
		cfg.FaultPlan = &fault.Plan{
			Seed: 9,
			Events: []fault.Event{
				{Kind: fault.Crash, At: 10 * des.Millisecond, Rank: 2, Server: -1,
					Restart: 40 * des.Millisecond},
				{Kind: fault.Slow, At: 5 * des.Millisecond, Rank: 3, Server: -1,
					Factor: 3, For: 100 * des.Millisecond},
				{Kind: fault.Drop, Rank: -1, Server: -1, Prob: 0.05},
			},
		}
		return mustRun(t, cfg)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan+seed produced different reports:\noverall %v vs %v\nmetrics %+v\nvs %+v",
			a.Overall, b.Overall, a.Metrics.Counters, b.Metrics.Counters)
	}
}

// TestChaosMessageLoss drives the retry plane hard: a lossy request/response
// channel for the whole run must still complete exactly-once.
func TestChaosMessageLoss(t *testing.T) {
	for _, s := range []Strategy{MW, WWList} {
		cfg := tinyConfig()
		cfg.Strategy = s
		cfg.FaultPlan = &fault.Plan{
			Seed: 11,
			Events: []fault.Event{
				{Kind: fault.Drop, Rank: -1, Server: -1, Prob: 0.15},
				{Kind: fault.Delay, Rank: -1, Server: -1, Prob: 0.2, Extra: des.Millisecond},
			},
		}
		rep := mustRun(t, cfg)
		if !rep.Verified || rep.FileCoverage != rep.OutputBytes {
			t.Fatalf("%v: incomplete under message loss", s)
		}
		if rep.OverlappedBytes != 0 {
			t.Fatalf("%v: duplicate writes under message loss", s)
		}
	}
}

// TestChaosServerFaults exercises the storage-fault path: an outage plus a
// degradation window on the PVFS servers slow the run but cannot corrupt it.
func TestChaosServerFaults(t *testing.T) {
	base := tinyConfig()
	base.Strategy = WWList
	base.Resilient = true
	clean := mustRun(t, base)

	cfg := tinyConfig()
	cfg.Strategy = WWList
	cfg.FaultPlan = &fault.Plan{
		Seed: 13,
		Events: []fault.Event{
			{Kind: fault.Outage, At: 5 * des.Millisecond, Rank: -1, Server: 0,
				For: 200 * des.Millisecond},
			{Kind: fault.Degrade, At: 0, Rank: -1, Server: 1, Factor: 4,
				For: 500 * des.Millisecond},
		},
	}
	rep := mustRun(t, cfg)
	if !rep.Verified || rep.FileCoverage != rep.OutputBytes {
		t.Fatal("incomplete under server faults")
	}
	if rep.Overall <= clean.Overall {
		t.Fatalf("server faults did not slow the run: %v <= %v", rep.Overall, clean.Overall)
	}
}

// TestChaosUnrecoverable pins the bounded-retry abort: when every worker is
// dead and none will restart, the run must fail cleanly instead of hanging.
func TestChaosUnrecoverable(t *testing.T) {
	cfg := tinyConfig()
	cfg.Procs = 3
	var evs []fault.Event
	for _, rank := range []int{1, 2} {
		evs = append(evs, fault.Event{
			Kind: fault.Crash, At: 5 * des.Millisecond, Rank: rank, Server: -1,
		})
	}
	cfg.FaultPlan = &fault.Plan{Seed: 17, Events: evs}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an unrecoverable-run error, got success")
	}
}
