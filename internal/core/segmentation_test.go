package core

import (
	"testing"

	"s3asim/internal/des"
)

func TestQuerySegVerifiesImage(t *testing.T) {
	for _, s := range []Strategy{MW, WWList} {
		cfg := tinyConfig()
		cfg.Strategy = s
		cfg.Segmentation = QuerySeg
		rep := mustRun(t, cfg)
		if !rep.Verified {
			t.Fatalf("%v query-seg: unverified", s)
		}
	}
}

func TestQuerySegForcesSingleFragment(t *testing.T) {
	cfg := tinyConfig()
	cfg.Segmentation = QuerySeg
	cfg.Workload.NumFragments = 64 // must be collapsed internally
	rep := mustRun(t, cfg)
	if !rep.Verified {
		t.Fatal("query-seg with fragment override: unverified")
	}
}

func TestDatabaseLoadCostsTime(t *testing.T) {
	base := tinyConfig()
	base.Strategy = WWList
	noDB := mustRun(t, base)
	base.DatabaseBytes = 256 << 20
	withDB := mustRun(t, base)
	if withDB.Overall <= noDB.Overall {
		t.Fatalf("database load free: %v vs %v", withDB.Overall, noDB.Overall)
	}
}

func TestQuerySegRepeatedIOWhenDatabaseExceedsMemory(t *testing.T) {
	// §1: "query segmentation suffers repeated I/O introduced by loading
	// sequence data back and forth" once the database exceeds memory.
	base := tinyConfig()
	base.Strategy = WWList
	base.Segmentation = QuerySeg
	base.WorkerMemoryBytes = 64 << 20

	base.DatabaseBytes = 32 << 20 // fits: loaded once
	fits := mustRun(t, base)
	base.DatabaseBytes = 256 << 20 // 4x memory: re-read per query
	overflow := mustRun(t, base)
	if overflow.Overall < 2*fits.Overall {
		t.Fatalf("no repeated-I/O collapse: fits=%v overflow=%v",
			fits.Overall, overflow.Overall)
	}
	// The repeated reads must land in the I/O phase.
	if overflow.WorkerAvg.Phases[PhaseIO] <= fits.WorkerAvg.Phases[PhaseIO] {
		t.Fatal("overflow reads not billed to I/O")
	}
}

func TestDatabaseSegLoadsShareOnceRegardlessOfQueries(t *testing.T) {
	// Database segmentation reads each worker's share once; doubling the
	// query count must not double input I/O.
	base := tinyConfig()
	base.Strategy = WWList
	base.DatabaseBytes = 512 << 20
	base.Workload.MinResults = 5
	base.Workload.MaxResults = 8

	threeQ := mustRun(t, base)
	base.Workload.NumQueries = 6
	sixQ := mustRun(t, base)
	// Input reads dominate these tiny runs; if reads repeated per query,
	// sixQ would be ~2x threeQ.
	if float64(sixQ.Overall) > 1.5*float64(threeQ.Overall) {
		t.Fatalf("database-seg input I/O appears to repeat per query: %v vs %v",
			sixQ.Overall, threeQ.Overall)
	}
}

func TestSegmentationNames(t *testing.T) {
	if DatabaseSeg.String() != "database-seg" || QuerySeg.String() != "query-seg" {
		t.Fatal("segmentation names")
	}
}

func TestQuerySegWithGroups(t *testing.T) {
	cfg := tinyConfig()
	cfg.Procs = 8
	cfg.Segmentation = QuerySeg
	cfg.QueryGroups = 2
	cfg.DatabaseBytes = 64 << 20
	rep := mustRun(t, cfg)
	if !rep.Verified {
		t.Fatal("query-seg with groups: unverified")
	}
	var io des.Time
	for _, w := range rep.Workers {
		io += w.Phases[PhaseIO]
	}
	if io == 0 {
		t.Fatal("no input/output I/O recorded")
	}
}
