package core

import (
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/search"
)

// expectedMessages computes the exact protocol message count for a
// single-group run with no query sync:
//
//	setup broadcast     : binomial tree over procs-1 edges... plus
//	work requests/replies, score sends, offset lists, final barrier
//
// Barriers and collectives exchange no point-to-point messages in this
// engine (they are modeled synchronization objects), so the count is
// exact and strategy-dependent only through offset lists.
func expectedMessages(cfg Config, tasksAssigned int) uint64 {
	workers := uint64(cfg.Procs - 1)
	bcast := uint64(cfg.Procs - 1) // tree edges = n-1
	// Every worker requests until told "no more": one request per task
	// plus one final request per worker; each request gets a reply.
	requests := uint64(tasksAssigned) + workers
	replies := requests
	scores := uint64(tasksAssigned)
	batches := uint64((cfg.Workload.NumQueries + cfg.QueriesPerWrite - 1) / cfg.QueriesPerWrite)
	var notifications uint64
	if cfg.Strategy.WorkerWriting() {
		notifications = batches * workers // offset lists to every worker
	} else if cfg.QuerySync {
		notifications = batches * workers // sync tokens
	}
	return bcast + requests + replies + scores + notifications
}

func TestMessageConservation(t *testing.T) {
	for _, s := range []Strategy{MW, WWPosix, WWList} {
		cfg := tinyConfig()
		cfg.Strategy = s
		rep := mustRun(t, cfg)
		tasks := cfg.Workload.NumQueries * cfg.Workload.NumFragments
		want := expectedMessages(cfg, tasks)
		if rep.Messages != want {
			t.Fatalf("%v: %d messages, want exactly %d", s, rep.Messages, want)
		}
	}
}

func TestMessageConservationWithSyncTokens(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = MW
	cfg.QuerySync = true
	rep := mustRun(t, cfg)
	tasks := cfg.Workload.NumQueries * cfg.Workload.NumFragments
	if want := expectedMessages(cfg, tasks); rep.Messages != want {
		t.Fatalf("MW+sync: %d messages, want exactly %d", rep.Messages, want)
	}
}

func TestNetworkBytesScaleWithStrategy(t *testing.T) {
	// MW ships full result payloads to the master; worker-writing ships
	// scores only, so MW must move far more data.
	mwCfg := tinyConfig()
	mwCfg.Strategy = MW
	mw := mustRun(t, mwCfg)
	listCfg := tinyConfig()
	listCfg.Strategy = WWList
	list := mustRun(t, listCfg)
	if mw.NetBytes < 2*list.NetBytes {
		t.Fatalf("MW moved %d net bytes, WW-List %d; expected MW >> WW",
			mw.NetBytes, list.NetBytes)
	}
	if mw.NetBytes < uint64(mw.OutputBytes) {
		t.Fatalf("MW network bytes %d below result volume %d", mw.NetBytes, mw.OutputBytes)
	}
}

func TestWorkerTotalsEqualOverall(t *testing.T) {
	// Every process's phase-sum equals the overall wall clock: nobody
	// starts late or exits early (final barrier).
	for _, s := range Strategies {
		cfg := tinyConfig()
		cfg.Strategy = s
		rep := mustRun(t, cfg)
		check := func(pb ProcBreakdown) {
			if pb.Total != rep.Overall {
				t.Fatalf("%v rank %d: total %v != overall %v",
					s, pb.Rank, pb.Total, rep.Overall)
			}
		}
		check(rep.Master)
		for _, w := range rep.Workers {
			check(w)
		}
	}
}

func TestComputePhaseMatchesModelExactly(t *testing.T) {
	// The summed worker compute phase must equal the analytic model total:
	// compute is never overlapped or double-billed.
	cfg := tinyConfig()
	cfg.Strategy = WWList
	cfg.ComputeSpeed = 2
	rep := mustRun(t, cfg)

	wl := cfg.Workload
	var want des.Time
	for q := 0; q < wl.NumQueries; q++ {
		for f := 0; f < wl.NumFragments; f++ {
			want += cfg.Compute.TaskTime(workloadTaskBytes(t, cfg, q, f), cfg.ComputeSpeed)
		}
	}
	var got des.Time
	for _, w := range rep.Workers {
		got += w.Phases[PhaseCompute]
	}
	if got != want {
		t.Fatalf("summed compute %v != model total %v", got, want)
	}
}

// workloadTaskBytes regenerates the workload to read task sizes (the test
// side of the determinism contract).
func workloadTaskBytes(t *testing.T, cfg Config, q, f int) int64 {
	t.Helper()
	return search.Generate(cfg.Workload).TaskBytes(q, f)
}
