package core

import (
	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
	"s3asim/internal/romio"
	"s3asim/internal/search"
)

// workerState is one worker's bookkeeping for Algorithm 2.
type workerState struct {
	g              *group
	noMore         bool
	pending        []*mpi.Request // in-flight score sends
	offReq         *mpi.Request   // posted receive for offset lists (WW)
	tokReq         *mpi.Request   // posted receive for sync tokens (MW+sync)
	batchesHandled int
	mergeAcc       map[int]int64 // worker-local merged bytes per query
}

// worker runs Algorithm 2: request work from its group master, model the
// search, merge local results, ship scores (and results under MW), and
// perform its share of the result I/O as offset lists arrive.
func (rt *runtime) worker(r *mpi.Rank, g *group) {
	cfg := rt.cfg
	pt := NewPhaseTimer(rt.sim)
	pt.Trace(cfg.sink(), r.Proc().Name())
	rt.timers[r.Rank()] = pt
	boss := g.masterRank

	// Step 1: receive input variables (broadcast from the group master).
	pt.Switch(PhaseSetup)
	g.team.Bcast(r, boss, configMsgBytes, nil)

	// Input-I/O extension: load the sequence database (its share under
	// database segmentation, the whole replica under query segmentation).
	rt.workerLoadDatabase(r, pt)

	st := &workerState{g: g, mergeAcc: make(map[int]int64)}
	// Adaptive workers always track offset lists: every batch sends one,
	// whichever strategy its controller picked (MW batches send empty lists).
	if rt.ad != nil || cfg.Strategy.WorkerWriting() {
		st.offReq = r.Irecv(boss, tagOffsets)
	} else if cfg.QuerySync {
		st.tokReq = r.Irecv(boss, tagSyncToken)
	}
	tracksBatches := st.offReq != nil || st.tokReq != nil

	done := func() bool {
		if !st.noMore || len(st.pending) > 0 {
			return false
		}
		return !tracksBatches || st.batchesHandled == len(g.batches)
	}

	for !done() {
		progress := false
		if !st.noMore {
			// Steps 3–4: request and receive work. The reply receive is
			// blocking (Algorithm 2 step 4), except that MW sync tokens are
			// honored while waiting so a request-blocked worker joins the
			// post-write barrier without first taking another task.
			pt.Switch(PhaseDataDist)
			r.Send(boss, tagWorkRequest, requestMsgBytes, nil)
			replyReq := r.Irecv(boss, tagWorkReply)
			for !replyReq.Done() {
				// Serving masters hold work requests across arrival gaps, so
				// a request-blocked worker must also service offset lists or
				// it would sit on pending writes until the next arrival.
				// Adaptive runs drain here too: an MW batch's post-write
				// notification must be honored before the next task, exactly
				// as MW+sync tokens are.
				if (st.tokReq != nil || rt.serve != nil || rt.ad != nil) && rt.workerDrainIO(r, pt, st) {
					pt.Switch(PhaseDataDist)
					continue
				}
				r.WaitAny(workerWaitSet(replyReq, st, rt.serve != nil || rt.ad != nil))
			}
			reply := replyReq.Message()
			if reply.Payload == nil {
				st.noMore = true
			} else {
				rt.workerTask(r, pt, st, reply.Payload.(task))
			}
			progress = true
		}
		// Step 15: retire completed score sends.
		pt.Switch(PhaseGather)
		kept := st.pending[:0]
		for _, req := range st.pending {
			if !req.Done() {
				kept = append(kept, req)
			}
		}
		st.pending = kept
		// Steps 16–19: handle any offset lists (or sync tokens) that have
		// arrived, without blocking — this is what lets individual WW
		// strategies keep computing while I/O instructions are pending.
		if rt.workerDrainIO(r, pt, st) {
			progress = true
		}
		if !progress && !done() {
			rt.workerIdleWait(r, pt, st)
		}
	}
	pt.Switch(PhaseGather)
	r.WaitAll(st.pending...)
	// End-of-application synchronization.
	pt.Switch(PhaseSync)
	rt.final.Arrive(r)
	pt.Finish()
}

// workerTask models one (query, fragment) search: compute, local merge
// (worker-writing only), and the score/result send to the master.
func (rt *runtime) workerTask(r *mpi.Rank, pt *PhaseTimer, st *workerState, t task) {
	cfg := rt.cfg
	bytes := rt.wl.TaskBytes(t.Q, t.F)
	count := rt.wl.TaskCount(t.Q, t.F)
	strat := rt.taskStrat(t)

	// Under WW-Coll a worker cannot begin an upcoming query until the
	// collective I/O for all earlier batches has completed (§2.3: "the
	// WW-Coll strategy cannot allow worker processes to begin upcoming
	// queries until after the I/O operation"). The wait for the master's
	// offset list bills to data distribution.
	if strat == WWColl {
		// Serving runs flush out of order, so the query index no longer
		// implies how many rounds precede this task; the master tells us
		// directly (task.Gate).
		need := (t.Q - st.g.loQ) / cfg.QueriesPerWrite
		if rt.serve != nil {
			need = t.Gate
		}
		for st.batchesHandled < need {
			pt.Switch(PhaseDataDist)
			waitDone(r, st.offReq)
			rt.workerDrainIO(r, pt, st)
		}
	}

	// Query segmentation with a database larger than worker memory must
	// re-read the overflow for every query — §1's "repeated I/O introduced
	// by loading sequence data back and forth between the file system and
	// the main memory".
	if cfg.Segmentation == QuerySeg && cfg.DatabaseBytes > cfg.WorkerMemoryBytes {
		pt.Switch(PhaseIO)
		rt.dbFile.ReadAt(r, cfg.WorkerMemoryBytes, cfg.DatabaseBytes-cfg.WorkerMemoryBytes)
	}

	// Step 6: the search itself.
	pt.Switch(PhaseCompute)
	r.Compute(cfg.Compute.TaskTime(bytes, cfg.ComputeSpeed))

	// Step 8: merge with previous results for this query (parallel I/O).
	if strat.WorkerWriting() {
		pt.Switch(PhaseMerge)
		rt.mergeSleep(r, cfg.mergeTime(st.mergeAcc[t.Q], bytes))
		st.mergeAcc[t.Q] += bytes
	}

	// Step 10: send ordered scores (and the result data itself under MW).
	pt.Switch(PhaseGather)
	wire := int64(count) * cfg.ScoreEntryBytes
	if strat == MW {
		wire += bytes
	}
	st.pending = append(st.pending,
		r.Isend(st.g.masterRank, tagScores, wire,
			scoreMsg{Task: t, Count: count, ResultBytes: bytes}))
}

// workerLoadDatabase models the initial database load from the parallel
// file system (only when Config.DatabaseBytes is set). Under database
// segmentation each worker reads its 1/W share once; under query
// segmentation each worker reads up to its memory capacity of the full
// replica (the remainder is re-read per query in workerTask).
func (rt *runtime) workerLoadDatabase(r *mpi.Rank, pt *PhaseTimer) {
	cfg := rt.cfg
	if cfg.DatabaseBytes <= 0 {
		return
	}
	pt.Switch(PhaseIO)
	if cfg.Segmentation == QuerySeg {
		n := cfg.DatabaseBytes
		if n > cfg.WorkerMemoryBytes {
			n = cfg.WorkerMemoryBytes
		}
		rt.dbFile.ReadAt(r, 0, n)
		return
	}
	share := cfg.DatabaseBytes / int64(rt.totalWorkers())
	if share <= 0 {
		return
	}
	off := (share * int64(r.Rank())) % cfg.DatabaseBytes
	rt.dbFile.ReadAt(r, off, share)
}

// workerDrainIO handles every already-arrived offset list or sync token,
// reposting the receive each time. Reports whether anything was handled.
func (rt *runtime) workerDrainIO(r *mpi.Rank, pt *PhaseTimer, st *workerState) bool {
	boss := st.g.masterRank
	handled := false
	for st.offReq != nil && st.offReq.Done() {
		om := st.offReq.Message().Payload.(offsetMsg)
		st.offReq = r.Irecv(boss, tagOffsets)
		rt.workerWrite(r, pt, st.g, om)
		st.batchesHandled++
		if rt.cfg.QuerySync {
			pt.Switch(PhaseSync)
			st.g.querySyn.Arrive(r)
		}
		handled = true
	}
	for st.tokReq != nil && st.tokReq.Done() {
		st.tokReq = r.Irecv(boss, tagSyncToken)
		pt.Switch(PhaseSync)
		st.g.querySyn.Arrive(r)
		st.batchesHandled++
		handled = true
	}
	return handled
}

// workerIdleWait blocks a worker that has nothing left to compute until the
// next master notification (offset list or token) arrives. The paper bills
// waiting-on-the-master to the data distribution phase.
func (rt *runtime) workerIdleWait(r *mpi.Rank, pt *PhaseTimer, st *workerState) {
	switch {
	case st.offReq != nil:
		pt.Switch(PhaseDataDist)
		waitDone(r, st.offReq)
	case st.tokReq != nil:
		pt.Switch(PhaseDataDist)
		waitDone(r, st.tokReq)
	default:
		pt.Switch(PhaseGather)
		r.WaitAll(st.pending...)
		st.pending = nil
	}
}

// waitDone blocks until the request completes without consuming it, so the
// normal drain path processes the message.
func waitDone(r *mpi.Rank, req *mpi.Request) {
	r.WaitAny([]*mpi.Request{req})
}

// workerWaitSet lists the requests a worker may block on while awaiting a
// work reply: the reply itself, plus the sync-token receive under MW+sync —
// and, in serving and adaptive runs (offsets=true), the offset-list receive:
// a serving reply may be an arrival gap away, and an adaptive MW batch's
// notification must wake a request-blocked worker.
func workerWaitSet(reply *mpi.Request, st *workerState, offsets bool) []*mpi.Request {
	set := []*mpi.Request{reply}
	if st.tokReq != nil {
		set = append(set, st.tokReq)
	}
	if offsets && st.offReq != nil {
		set = append(set, st.offReq)
	}
	return set
}

// workerWrite performs this worker's share of a flushed batch using the
// configured strategy.
func (rt *runtime) workerWrite(r *mpi.Rank, pt *PhaseTimer, g *group, om offsetMsg) {
	cfg := rt.cfg
	strat := rt.batchStrat(om)
	if rt.ad != nil && strat == MW {
		// The master already wrote this batch; the (empty) offset list only
		// tracks batch progress (the drain loop handles the sync barrier).
		return
	}
	segs := rt.placementsToSegments(om.Placements)
	// Format this worker's share of the results before writing (under WW
	// strategies each worker serializes its own output).
	var segBytes int64
	for _, s := range segs {
		segBytes += s.Length
	}
	if segBytes > 0 {
		pt.Switch(PhaseIO)
		rt.mergeSleep(r, des.BytesOver(segBytes, cfg.FormatBandwidth))
	}
	if strat == WWColl {
		// Collective write: every group worker participates, with or
		// without data — the inherent synchronization the paper measures.
		// For two-phase, waiting for the last worker to become ready is
		// billed to data distribution (paper §4: "while workers are
		// waiting to do collective I/O ... which shows up in the data
		// distribution time"); the collective operation itself is I/O.
		// The list-sync collective has no entry synchronization: ranks
		// write on arrival and synchronize only at the end.
		if cfg.CollMethod == romio.TwoPhase {
			pt.Switch(PhaseDataDist)
			g.collEntry.Arrive(r)
		}
		pt.Switch(PhaseIO)
		if rt.ad != nil {
			g.collGroup.WriteAllHinted(r, segs, om.Hints)
		} else {
			g.collGroup.WriteAll(r, segs)
		}
		if cfg.SyncEveryWrite {
			rt.file.Sync(r)
		}
		rt.stampFlush(r.Proc().Name(), g, om.Batch)
		rt.rbInRunWorker(r, pt, g, segs, true)
		return
	}
	if len(segs) == 0 {
		return
	}
	// Individual noncontiguous write (POSIX or list I/O per hints; adaptive
	// batches carry their decided hint vector in the offset message).
	pt.Switch(PhaseIO)
	if rt.ad != nil {
		rt.file.WriteSegsHinted(r, segs, om.Hints)
	} else {
		rt.file.WriteSegs(r, segs)
	}
	if cfg.SyncEveryWrite {
		rt.file.Sync(r)
	}
	rt.stampFlush(r.Proc().Name(), g, om.Batch)
	rt.rbInRunWorker(r, pt, g, segs, false)
}

// stampFlush records when a batch's data last became durable: the latest
// write completion among the workers holding its results (the master
// stamps MW batches itself). Report.BatchFlushTimes feeds the §2
// failure-recovery analysis; serving runs also record which process
// completed the write (the tail-attribution anchor).
func (rt *runtime) stampFlush(proc string, g *group, localBatch int) {
	idx := g.batchBase + localBatch
	if now := rt.sim.Now(); now > rt.flushTimes[idx] {
		rt.flushTimes[idx] = now
		rt.serveStampDone(idx, proc)
	}
	if rt.ad != nil {
		rt.adaptStamped(idx, proc)
	}
}

// placementsToSegments converts result placements (already in file order)
// to write segments, coalescing adjacent results — a real implementation
// merges contiguous extents when building its I/O list.
func (rt *runtime) placementsToSegments(placements []search.Result) []pvfs.Segment {
	var segs []pvfs.Segment
	for _, res := range placements {
		var data []byte
		if rt.cfg.CaptureData {
			data = rt.wl.ResultData(res.Query, res.Index, res.Size)
		}
		if n := len(segs); n > 0 && segs[n-1].Offset+segs[n-1].Length == res.Offset {
			segs[n-1].Length += res.Size
			if data != nil {
				segs[n-1].Data = append(segs[n-1].Data, data...)
			}
			continue
		}
		seg := pvfs.Segment{Offset: res.Offset, Length: res.Size}
		if data != nil {
			seg.Data = append([]byte(nil), data...)
		}
		segs = append(segs, seg)
	}
	return segs
}
