package core

import (
	"bytes"
	"reflect"
	"testing"

	"s3asim/internal/obs"
	"s3asim/internal/trace"
)

func TestReportMetricsPopulated(t *testing.T) {
	cfg := tinyConfig()
	rep := mustRun(t, cfg)
	m := rep.Metrics
	if m.Empty() {
		t.Fatal("Report.Metrics empty without an explicit registry")
	}
	if got := m.Counters["des.events"]; got != int64(rep.Events) {
		t.Fatalf("des.events = %d, want %d", got, rep.Events)
	}
	if got := m.Counters["mpi.messages"]; got != int64(rep.Messages) {
		t.Fatalf("mpi.messages = %d, want %d", got, rep.Messages)
	}
	if got := m.Counters["pvfs.requests"]; got != int64(rep.FS.TotalRequests) {
		t.Fatalf("pvfs.requests = %d, want %d", got, rep.FS.TotalRequests)
	}
	if got := m.Counters["pvfs.syncs"]; got != int64(rep.FS.TotalSyncs) {
		t.Fatalf("pvfs.syncs = %d, want %d", got, rep.FS.TotalSyncs)
	}
	if g := m.Gauges["run.overall_s"]; g != rep.Overall.Seconds() {
		t.Fatalf("run.overall_s = %g, want %g", g, rep.Overall.Seconds())
	}
	// One observation per process in every phase histogram.
	for p := Phase(0); p < NumPhases; p++ {
		h := m.Hists["phase."+p.String()]
		if h.Count != int64(cfg.Procs) {
			t.Fatalf("phase %v hist count = %d, want %d", p, h.Count, cfg.Procs)
		}
	}
	if h := m.Hists["mpi.rank_messages"]; h.Count != int64(cfg.Procs) ||
		h.Sum != float64(rep.Messages) {
		t.Fatalf("mpi.rank_messages = %+v, want %d ranks summing to %d",
			h, cfg.Procs, rep.Messages)
	}
	if h := m.Hists["pvfs.server_bytes"]; h.Count != int64(len(rep.FS.Servers)) {
		t.Fatalf("pvfs.server_bytes count = %d, want %d", h.Count, len(rep.FS.Servers))
	}
	if h := m.Hists["pvfs.queue_wait"]; h.Count != int64(rep.FS.TotalRequests) {
		t.Fatalf("pvfs.queue_wait count = %d, want %d", h.Count, rep.FS.TotalRequests)
	}
}

func TestReportMetricsDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a := mustRun(t, cfg).Metrics
	b := mustRun(t, cfg).Metrics
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical runs produced different metrics snapshots")
	}
}

func TestCallerSuppliedRegistryAccumulates(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := tinyConfig()
	cfg.Metrics = reg
	r1 := mustRun(t, cfg)
	r2 := mustRun(t, cfg)
	// The shared registry accumulates both runs; each report snapshots the
	// state at its own end.
	if got := reg.Snapshot().Counters["des.events"]; got != int64(r1.Events+r2.Events) {
		t.Fatalf("accumulated des.events = %d, want %d", got, r1.Events+r2.Events)
	}
	if r1.Metrics.Counters["des.events"] != int64(r1.Events) {
		t.Fatal("first report should snapshot only its own run")
	}
}

func TestConfigSinkReceivesTimeline(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewStreamSink(&buf)
	cfg := tinyConfig()
	cfg.Sink = sink
	rep := mustRun(t, cfg)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	var lastEnd int64
	for _, e := range events {
		procs[e.Proc] = true
		if int64(e.End) > lastEnd {
			lastEnd = int64(e.End)
		}
	}
	if len(procs) != cfg.Procs {
		t.Fatalf("streamed %d processes, want %d", len(procs), cfg.Procs)
	}
	if lastEnd != int64(rep.Overall) {
		t.Fatalf("stream ends at %d, run at %d", lastEnd, int64(rep.Overall))
	}
}

// TestSinkAndTracerBothRecord checks the Multi path in Config.sink(): when
// both the legacy Tracer and a Sink are attached, each sees the full
// timeline.
func TestSinkAndTracerBothRecord(t *testing.T) {
	tr := trace.New()
	var buf bytes.Buffer
	sink := obs.NewStreamSink(&buf)
	cfg := tinyConfig()
	cfg.Tracer = tr
	cfg.Sink = sink
	mustRun(t, cfg)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	streamed, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events()) == 0 || len(streamed) == 0 {
		t.Fatalf("tracer=%d streamed=%d events, want both non-empty",
			len(tr.Events()), len(streamed))
	}
	if len(tr.Events()) != len(streamed) {
		t.Fatalf("tracer saw %d events, stream saw %d", len(tr.Events()), len(streamed))
	}
}
