package core

import (
	"testing"

	"s3asim/internal/search"
	"s3asim/internal/stats"
)

func sharedWorkloadConfig() Config {
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Workload.NumQueries = 3
	cfg.Workload.NumFragments = 8
	cfg.Workload.MinResults = 20
	cfg.Workload.MaxResults = 30
	cfg.Workload.QueryHist = stats.Uniform(200, 2000)
	cfg.Workload.DBSeqHist = stats.Uniform(200, 20000)
	cfg.Workload.MinResultSize = 512
	return cfg
}

// TestRunWithWorkloadMatchesRun checks the factored entry point: a run
// against a pre-generated workload replays the self-generating path
// exactly.
func TestRunWithWorkloadMatchesRun(t *testing.T) {
	cfg := sharedWorkloadConfig()
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl := search.Generate(cfg.EffectiveWorkload())
	shared, err := RunWithWorkload(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Overall != shared.Overall || direct.Events != shared.Events ||
		direct.Messages != shared.Messages || direct.FileCoverage != shared.FileCoverage {
		t.Fatalf("shared-workload run diverged: %+v vs %+v", direct, shared)
	}
}

// TestRunWithWorkloadReuse runs two different strategies against one shared
// workload and checks each matches its self-generating run — the sharing
// pattern the sweep executor relies on.
func TestRunWithWorkloadReuse(t *testing.T) {
	cfg := sharedWorkloadConfig()
	wl := search.Generate(cfg.EffectiveWorkload())
	for _, s := range Strategies {
		c := cfg
		c.Strategy = s
		direct, err := Run(c)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		shared, err := RunWithWorkload(c, wl)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if direct.Overall != shared.Overall || direct.Events != shared.Events {
			t.Fatalf("%v: shared workload diverged (%v/%d vs %v/%d)",
				s, direct.Overall, direct.Events, shared.Overall, shared.Events)
		}
	}
}

// TestRunWithWorkloadSpecMismatch checks the guard against passing a
// workload generated from a different spec.
func TestRunWithWorkloadSpecMismatch(t *testing.T) {
	cfg := sharedWorkloadConfig()
	other := cfg.Workload
	other.Seed++
	if _, err := RunWithWorkload(cfg, search.Generate(other)); err == nil {
		t.Fatal("mismatched workload spec accepted")
	}
}

// TestEffectiveWorkloadQuerySeg pins that query segmentation's forced
// single-fragment spec flows through EffectiveWorkload, so cached
// workloads match what the run generates.
func TestEffectiveWorkloadQuerySeg(t *testing.T) {
	cfg := sharedWorkloadConfig()
	cfg.Segmentation = QuerySeg
	eff := cfg.EffectiveWorkload()
	if eff.NumFragments != 1 {
		t.Fatalf("QuerySeg effective fragments = %d, want 1", eff.NumFragments)
	}
	if cfg.Workload.NumFragments == 1 {
		t.Fatal("test premise broken: base spec already single-fragment")
	}
	// And the run accepts a workload generated from the effective spec.
	if _, err := RunWithWorkload(cfg, search.Generate(eff)); err != nil {
		t.Fatal(err)
	}
}
