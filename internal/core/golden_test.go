package core

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/fault"
	"s3asim/internal/stats"
)

// This file pins the kernel fast path's strongest invariant: the virtual-time
// behavior of the engine — every phase duration, message count, flush time,
// and file-system counter — must be byte-identical before and after the
// internal/des tagged-event/parker rewrite. The hashes below were captured
// from the pre-rewrite (closure-event, two-rendezvous) kernel and must never
// change; any drift means the kernel reordered or retimed real work.
//
// Simulation.Events() is pinned separately because the rewrite changes the
// calendar-entry count deterministically without changing behavior:
// Signal.Broadcast now wakes its whole FIFO in ONE tagged calendar event
// (the old kernel queued one closure event per waiter), and a WaitUntil
// re-armed at an identical deadline revives its tombstoned timer instead of
// queueing another. Both transformations preserve the wake order and the
// virtual times exactly — hence same hashes — while executing fewer calendar
// entries.

// goldenConfig is the mid-scale configuration the golden hashes were
// captured with: big enough to exercise batching, contention, barriers, and
// collective I/O, small enough to run all eight cells in a few seconds.
func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.Procs = 12
	cfg.Workload.NumQueries = 10
	cfg.Workload.NumFragments = 24
	cfg.Workload.QueryHist = stats.Uniform(200, 2000)
	cfg.Workload.DBSeqHist = stats.Uniform(200, 20000)
	cfg.Workload.MinResults = 100
	cfg.Workload.MaxResults = 200
	cfg.Workload.MinResultSize = 256
	cfg.Workload.Seed = 42
	return cfg
}

// goldenFaultPlan injects a crash-with-restart, a straggler window, and
// probabilistic message drops — the resilient protocol's full surface,
// including the WaitUntil/lease-timeout machinery the timer tombstoning
// changed.
func goldenFaultPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 7,
		Events: []fault.Event{
			{Kind: fault.Crash, At: 20 * des.Millisecond, Rank: 5, Server: -1,
				Restart: 60 * des.Millisecond},
			{Kind: fault.Slow, At: 0, For: 200 * des.Millisecond, Rank: 3,
				Server: -1, Factor: 1.5},
			{Kind: fault.Drop, At: 0, For: 100 * des.Millisecond, Rank: -1,
				Server: -1, Prob: 0.2},
		},
	}
}

// fingerprint renders every virtual-time observable of a report into a
// stable string and hashes it. Simulation.Events() is deliberately excluded
// (see the file comment); everything else a run can observe is in.
func fingerprint(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "overall=%d\n", rep.Overall)
	pb := func(tag string, p ProcBreakdown) {
		fmt.Fprintf(&b, "%s rank=%d total=%d phases=%v\n", tag, p.Rank, p.Total, p.Phases)
	}
	for _, m := range rep.Masters {
		pb("master", m)
	}
	for _, w := range rep.Workers {
		pb("worker", w)
	}
	fmt.Fprintf(&b, "msgs=%d bytes=%d\n", rep.Messages, rep.NetBytes)
	fmt.Fprintf(&b, "coverage=%d overlap=%d out=%d\n",
		rep.FileCoverage, rep.OverlappedBytes, rep.OutputBytes)
	fmt.Fprintf(&b, "flush=%v\n", rep.BatchFlushTimes)
	fmt.Fprintf(&b, "fs req=%d segs=%d bytes=%d syncs=%d busy=%d\n",
		rep.FS.TotalRequests, rep.FS.TotalSegments, rep.FS.TotalBytes,
		rep.FS.TotalSyncs, rep.FS.TotalBusy)
	for i, s := range rep.FS.Servers {
		fmt.Fprintf(&b, "srv%d req=%d segs=%d bytes=%d busy=%d qw=%d\n",
			i, s.Requests, s.Segments, s.BytesWritten, s.Busy, s.QueueWait)
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}

// goldenCase is one pinned run: the virtual-time fingerprint is from the
// pre-rewrite kernel; events is the calendar-entry count of the CURRENT
// kernel (pinned so count changes are always deliberate), with the
// pre-rewrite count kept alongside to document the delta.
type goldenCase struct {
	strategy  Strategy
	sync      bool
	faulted   bool
	hash      string
	events    uint64 // current kernel (batched broadcast, revived timers)
	oldEvents uint64 // pre-rewrite kernel (one event per broadcast waiter)
}

var goldenCases = []goldenCase{
	{strategy: MW, sync: false,
		hash:   "2bfb32678e085d125c04285047832c2c9b0f445fe7e6aeb9a0897d880f26f04a",
		events: 5629, oldEvents: 5639},
	{strategy: MW, sync: true,
		hash:   "e25ec2d7228e0e445e6a1cbce579eb3299129ee435f619c8759bc271be154737",
		events: 6200, oldEvents: 6300},
	{strategy: WWPosix, sync: false,
		hash:   "957a5b7b42d5b69b6bfbe08f438614d99eb4f030d6cd8c46ca11caca27dc89f3",
		events: 26406, oldEvents: 26416},
	{strategy: WWPosix, sync: true,
		hash:   "410f9de04efe10270aba7c9f86c8b559cf9c1ebb775ce72d5a1d6d270984b7c1",
		events: 26401, oldEvents: 26501},
	{strategy: WWList, sync: false,
		hash:   "6a96f1755ebb098595097948df8b5730d75caac632c75956ad43256056993ddf",
		events: 20086, oldEvents: 20096},
	{strategy: WWList, sync: true,
		hash:   "0fc6eedc777656b68774f857cdfcbdc03fe1e462df54ae6411206efef1e08e32",
		events: 19897, oldEvents: 19997},
	{strategy: WWColl, sync: false,
		hash:   "1c072fd527ced4dc6f8b5573f3e0d8cb1483e469f26e8c6bb3455acd5d909279",
		events: 21307, oldEvents: 21587},
	{strategy: WWColl, sync: true,
		hash:   "65bffb1170410c59c6a99b314e5ffb2d87d99dbaa5ab8b4271778d5963e100f4",
		events: 21305, oldEvents: 21675},
	{strategy: WWList, sync: false, faulted: true,
		hash:   "9813d53a3456195aca4f103bcd4204e48fe4006a3e642b7a3333948adb4c394f",
		events: 20672, oldEvents: 22014},
}

// TestKernelGoldenBehavior runs the mid-scale matrix (all four strategies ×
// both sync modes, plus one faulted resilient run) and checks every
// virtual-time observable against the pre-rewrite kernel, plus the pinned
// calendar-entry counts.
func TestKernelGoldenBehavior(t *testing.T) {
	for _, gc := range goldenCases {
		name := fmt.Sprintf("%s_sync=%v_faulted=%v", gc.strategy, gc.sync, gc.faulted)
		t.Run(name, func(t *testing.T) {
			cfg := goldenConfig()
			cfg.Strategy = gc.strategy
			cfg.QuerySync = gc.sync
			if gc.faulted {
				cfg.FaultPlan = goldenFaultPlan()
			}
			rep := mustRun(t, cfg)
			got := fingerprint(rep)
			if got != gc.hash {
				t.Errorf("virtual-time fingerprint drifted:\n got %s\nwant %s", got, gc.hash)
			}
			if gc.events == 0 {
				t.Fatalf("calendar event count not yet pinned; capture events: %d", rep.Events)
			}
			if rep.Events != gc.events {
				t.Errorf("calendar events = %d, pinned %d (pre-rewrite kernel: %d)",
					rep.Events, gc.events, gc.oldEvents)
			}
		})
	}
}
