package core

import (
	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/romio"
	"s3asim/internal/search"
)

// masterState is a group master's bookkeeping for Algorithm 1.
type masterState struct {
	nextQ, nextF int
	totalTasks   int
	processed    int
	notified     int // workers told that all queries are scheduled

	remaining map[int]int   // fragments outstanding per query
	assigned  map[int][]int // query -> fragment -> worker rank
	mergeAcc  map[int]int64 // accumulated merge bytes per query
	complete  map[int]bool  // query fully processed

	scoreReqs   []*mpi.Request // outstanding result receives
	offsetSends []*mpi.Request // offset-list / token sends in flight
	flushed     int            // group-local batches flushed so far
}

// master runs Algorithm 1 for one group: distribute (query, fragment)
// tasks on demand, gather scores (and results under MW), merge, and drive
// the per-batch result flush for the configured I/O strategy.
func (rt *runtime) master(r *mpi.Rank, g *group) {
	cfg := rt.cfg
	pt := NewPhaseTimer(rt.sim)
	pt.Trace(cfg.sink(), r.Proc().Name())
	rt.timers[r.Rank()] = pt

	// Step 1: set up the output file and distribute input variables.
	pt.Switch(PhaseSetup)
	rt.openFile(r, g)
	if cfg.Strategy == WWColl || (rt.ad != nil && rt.ad.hasColl) {
		g.collGroup = rt.file.NewGroup(g.workers)
	}
	g.team.Bcast(r, g.masterRank, configMsgBytes, "input-variables")

	st := &masterState{
		totalTasks: (g.hiQ - g.loQ) * cfg.Workload.NumFragments,
		remaining:  make(map[int]int),
		assigned:   make(map[int][]int),
		mergeAcc:   make(map[int]int64),
		complete:   make(map[int]bool),
	}
	st.nextQ = g.loQ
	for q := g.loQ; q < g.hiQ; q++ {
		st.remaining[q] = cfg.Workload.NumFragments
		st.assigned[q] = make([]int, cfg.Workload.NumFragments)
	}

	for {
		switch {
		case st.notified < len(g.workers):
			// Steps 3–9: serve the next work request (blocking receive, as
			// the paper's master does to prioritize distribution). A serving
			// master draws tasks from its admission queue instead of the
			// next-in-batch counter (serving.go).
			pt.Switch(PhaseDataDist)
			m := r.Recv(mpi.AnySource, tagWorkRequest)
			var t task
			var have bool
			if rt.serve != nil {
				t, have = rt.serveNext(r, pt, g, st)
				pt.Switch(PhaseDataDist)
			} else if st.nextQ < g.hiQ {
				t = task{Q: st.nextQ, F: st.nextF}
				if rt.ad != nil {
					t.Strat = rt.adaptTaskStrat(g, st.nextQ)
				}
				have = true
				st.nextF++
				if st.nextF == cfg.Workload.NumFragments {
					st.nextF = 0
					st.nextQ++
				}
			}
			if have {
				r.Send(m.Source, tagWorkReply, replyMsgBytes, t)
				pt.Switch(PhaseGather)
				st.scoreReqs = append(st.scoreReqs, r.Irecv(m.Source, tagScores))
			} else {
				r.Send(m.Source, tagWorkReply, replyMsgBytes, nil)
				st.notified++
			}
		case st.processed < st.totalTasks:
			// All workers notified; only stragglers' results remain.
			pt.Switch(PhaseGather)
			r.WaitAny(st.scoreReqs)
		default:
			// Steps 20–22: everything scheduled, processed, and flushed.
			pt.Switch(PhaseGather)
			r.WaitAll(st.offsetSends...)
			pt.Switch(PhaseSync)
			rt.final.Arrive(r)
			// The barrier released, so every worker write is durable — the
			// safe moment for the post-run verified read of this group's
			// committed extents.
			rt.rbPostRun(r, pt, g)
			pt.Finish()
			return
		}
		rt.masterDrain(r, pt, g, st)
	}
}

// masterDrain processes every completed score receive: merge accounting,
// query completion, and batch flushing (step 10 and steps 14–18).
func (rt *runtime) masterDrain(r *mpi.Rank, pt *PhaseTimer, g *group, st *masterState) {
	cfg := rt.cfg
	pt.Switch(PhaseGather)
	kept := st.scoreReqs[:0]
	var ready []*mpi.Message
	for _, req := range st.scoreReqs {
		if req.Done() {
			ready = append(ready, req.Message())
		} else {
			kept = append(kept, req)
		}
	}
	st.scoreReqs = kept
	for _, m := range ready {
		sm := m.Payload.(scoreMsg)
		q := sm.Task.Q
		// Merge the arriving ordered list into the master's ordered list:
		// full results under MW, scores only under worker-writing (§2).
		newBytes := int64(sm.Count) * cfg.ScoreEntryBytes
		if rt.taskStrat(sm.Task) == MW {
			newBytes += sm.ResultBytes
		}
		rt.mergeSleep(r, cfg.mergeTime(st.mergeAcc[q], newBytes))
		st.mergeAcc[q] += newBytes
		st.assigned[q][sm.Task.F] = m.Source
		st.remaining[q]--
		st.processed++
		if st.remaining[q] == 0 {
			st.complete[q] = true
			rt.serveStampGathered(q)
			rt.adaptQueryDone(q)
		}
	}
	rt.masterFlush(r, pt, g, st)
}

// masterFlush flushes every ready batch, in order: the master writes (MW)
// or distributes offset lists (WW strategies). Serving runs relax the
// in-order restriction (serveFlush).
func (rt *runtime) masterFlush(r *mpi.Rank, pt *PhaseTimer, g *group, st *masterState) {
	if rt.serve != nil {
		rt.serveFlush(r, pt, g, st)
		return
	}
	for st.flushed < len(g.batches) {
		b := g.batches[st.flushed]
		allDone := true
		for q := b.LoQ; q < b.HiQ; q++ {
			if !st.complete[q] {
				allDone = false
				break
			}
		}
		if !allDone {
			return
		}
		rt.flushBatch(r, pt, g, st, st.flushed)
		st.flushed++
	}
}

// flushBatch performs one batch flush — the MW write+sync (step 18) or the
// WW offset-list distribution (steps 15–16) — for group-local batch bi, then
// retires completed offset-list sends.
func (rt *runtime) flushBatch(r *mpi.Rank, pt *PhaseTimer, g *group, st *masterState, bi int) {
	cfg := rt.cfg
	b := g.batches[bi]
	gb := g.batchBase + bi
	// Resolve the batch's write strategy and hints: the controller's stamped
	// decision under adaptive I/O (normally made at dispatch; deciding here
	// covers a batch flushed without dispatches), the config otherwise.
	strat := cfg.Strategy
	var hints romio.Hints
	if rt.ad != nil {
		strat = rt.adaptTaskStrat(g, b.LoQ)
		hints = rt.ad.decisions[gb].hints
	}
	if strat == MW {
		// Step 18: format the merged results (the mpiBLAST master's
		// serialization bottleneck), then one large contiguous write
		// followed by sync. Workers drain their in-flight tasks during
		// this stall — which is why the paper finds forced
		// synchronization nearly free under MW.
		pt.Switch(PhaseIO)
		if rt.ad != nil {
			rt.adaptFlushStart(gb, 1)
		}
		rt.mergeSleep(r, des.BytesOver(b.Bytes, cfg.FormatBandwidth))
		var data []byte
		if cfg.CaptureData {
			data = rt.batchData(b)
		}
		rt.file.WriteAt(r, b.Region, b.Bytes, data)
		if cfg.SyncEveryWrite {
			rt.file.Sync(r)
		}
		rt.flushTimes[gb] = rt.sim.Now()
		rt.serveStampDone(gb, r.Proc().Name())
		if rt.ad != nil {
			rt.adaptStamped(gb, r.Proc().Name())
		}
		rt.rbInRunMaster(r, pt, b, data)
		pt.Switch(PhaseGather)
		if rt.ad != nil {
			// Adaptive MW batches still send (empty) offset lists: the
			// workers' batch tracker, and the QuerySync barrier trigger.
			for _, w := range g.workers {
				st.offsetSends = append(st.offsetSends,
					r.Isend(w, tagOffsets, offsetHdrBytes,
						offsetMsg{Batch: bi, Strat: MW, Hints: hints}))
			}
		} else if cfg.QuerySync {
			for _, w := range g.workers {
				st.offsetSends = append(st.offsetSends,
					r.Isend(w, tagSyncToken, tokenMsgBytes, bi))
			}
		}
	} else {
		// Steps 15–16: build and send per-worker offset lists. Every
		// worker gets a message (possibly empty) so it can track batch
		// progress and, under WW-Coll, join the collective round.
		perWorker := make(map[int][]search.Result, len(g.workers))
		for q := b.LoQ; q < b.HiQ; q++ {
			qry := &rt.wl.Queries[q]
			for _, res := range qry.Results {
				w := st.assigned[q][res.Fragment]
				perWorker[w] = append(perWorker[w], res)
			}
		}
		if rt.ad != nil {
			// A collective round is stamped by every group worker; an
			// individual WW batch only by the workers holding placements.
			writers := len(g.workers)
			if strat != WWColl {
				writers = 0
				for _, w := range g.workers {
					if len(perWorker[w]) > 0 {
						writers++
					}
				}
			}
			rt.adaptFlushStart(gb, writers)
		}
		for _, w := range g.workers {
			msg := offsetMsg{Batch: bi, Placements: perWorker[w]}
			if rt.ad != nil {
				msg.Strat, msg.Hints = strat, hints
			}
			bytes := int64(offsetHdrBytes) + int64(len(perWorker[w]))*offsetPerResult
			st.offsetSends = append(st.offsetSends,
				r.Isend(w, tagOffsets, bytes, msg))
		}
		// Worker-writing durability is stamped by the workers as their
		// writes (and syncs) complete; see workerWrite.
	}
	// Step 16: retire completed offset-list sends.
	kept := st.offsetSends[:0]
	for _, req := range st.offsetSends {
		if !req.Done() {
			kept = append(kept, req)
		}
	}
	st.offsetSends = kept
}

// batchData materializes a batch's result bytes in file order (capture
// verification runs only).
func (rt *runtime) batchData(b batch) []byte {
	out := make([]byte, 0, b.Bytes)
	for q := b.LoQ; q < b.HiQ; q++ {
		for _, res := range rt.wl.Queries[q].Results {
			out = append(out, rt.wl.ResultData(q, res.Index, res.Size)...)
		}
	}
	return out
}
