package core

import (
	"fmt"

	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/romio"
)

// This file implements the resilient worker side of the self-healing
// protocol (DESIGN.md §9) plus the runtime glue both resilient roles share.
// See resilient.go for the master and the protocol overview.

// Runtime glue shared by rmaster and rworker.

// noteEnd records one protocol actor's clean exit (the resilient protocol's
// replacement for the global final barrier: the run ends when the event
// calendar drains, and this counter is the audit trail).
func (rt *runtime) noteEnd() { rt.ended++ }

// fail records the first unrecoverable failure; RunWithWorkload surfaces it
// after the simulation drains.
func (rt *runtime) fail(err error) {
	if rt.runErr == nil {
		rt.runErr = err
	}
}

// count bumps a run counter.
func (rt *runtime) count(name string, delta int64) { rt.metrics.Add(name, delta) }

// observeTime records one virtual-time sample.
func (rt *runtime) observeTime(name string, t des.Time) { rt.metrics.ObserveTime(name, t) }

// pointf emits an instantaneous marker on the fault timeline.
func (rt *runtime) pointf(format string, args ...any) {
	if s := rt.cfg.sink(); s != nil {
		s.Point("faults", fmt.Sprintf(format, args...), rt.sim.Now())
	}
}

// workerDied is the panic sentinel a crashing worker unwinds with; the
// rworker wrapper recovers it (and only it).
type workerDied struct{}

// rworkerState is one resilient worker's bookkeeping.
type rworkerState struct {
	g    *group
	boss int

	shutdown bool
	idle     bool // master said "no work right now"; wait for a nudge
	nudges   int  // control nudges received and not yet consumed

	seq        int  // work-request sequence number (resends repeat it)
	awaitReply bool // inside rwRequest: the next work reply is live, not stale
	haveBase   bool // flushBase captured from the first reply
	flushBase  int  // initial waves flushed before this incarnation joined
	initSeen   int  // wave-0 offset lists handled by this incarnation

	pending  []*mpi.Request  // in-flight score/ack/request sends
	offReq   *mpi.Request    // persistent receive: offset lists (WW)
	tokReq   *mpi.Request    // persistent receive: sync tokens (MW + sync)
	ctlReq   *mpi.Request    // persistent receive: control plane
	repReq   *mpi.Request    // persistent receive: work replies
	seenWave map[[2]int]bool // (batch, wave) already written — dedupe + re-ack
	mergeAcc map[int]int64
}

// rworker runs the resilient Algorithm 2: the original request/compute/score
// flow hardened with sequence-numbered resends, wave-deduplicated writes with
// durability acks, an explicit shutdown handshake, and crash checkpoints.
// rejoined marks a respawned incarnation (skip the setup broadcast the dead
// predecessor already consumed).
func (rt *runtime) rworker(r *mpi.Rank, g *group, rejoined bool) {
	defer func() {
		if e := recover(); e != nil {
			if _, ok := e.(workerDied); !ok {
				panic(e)
			}
		}
	}()
	cfg := rt.cfg
	pt := NewPhaseTimer(rt.sim)
	pt.Trace(cfg.sink(), r.Proc().Name())
	rt.timers[r.Rank()] = pt
	boss := g.masterRank

	pt.Switch(PhaseSetup)
	if !rejoined {
		g.team.Bcast(r, boss, configMsgBytes, nil)
	}
	rt.workerLoadDatabase(r, pt)

	st := &rworkerState{
		g:        g,
		boss:     boss,
		seenWave: make(map[[2]int]bool),
		mergeAcc: make(map[int]int64),
	}
	if cfg.Strategy.WorkerWriting() {
		st.offReq = r.Irecv(boss, tagOffsets)
	} else if cfg.QuerySync {
		st.tokReq = r.Irecv(boss, tagSyncToken)
	}
	st.ctlReq = r.Irecv(boss, tagControl)
	st.repReq = r.Irecv(boss, tagWorkReply)

	for !st.shutdown {
		rt.rwCheckpoint(r, st, pt)
		rt.rwDrain(r, pt, st)
		if st.shutdown {
			break
		}
		if st.idle {
			if st.nudges > 0 {
				st.nudges = 0
				st.idle = false
				continue
			}
			pt.Switch(PhaseDataDist)
			rt.rwPark(r, st, pt)
			continue
		}
		t, ok := rt.rwRequest(r, pt, st)
		if st.shutdown {
			break
		}
		if !ok {
			st.idle = true
			continue
		}
		rt.rwTask(r, pt, st, t)
		rt.rwRetire(st)
	}

	// Orderly exit: settle outstanding sends, acknowledge the shutdown with
	// a fin, and withdraw the persistent receives.
	pt.Switch(PhaseGather)
	r.WaitAll(st.pending...)
	st.pending = nil
	pt.Switch(PhaseSync)
	r.Send(boss, tagFin, finMsgBytes, nil)
	for _, q := range []*mpi.Request{st.offReq, st.tokReq, st.ctlReq, st.repReq} {
		if q != nil {
			r.Cancel(q)
		}
	}
	pt.Finish()
	rt.noteEnd()
}

// rwCheckpoint is a protocol checkpoint: if a crash is armed for this rank,
// it takes effect here. Never called between a write and its ack, or while
// parked in a barrier or collective round — the fail-stop-at-checkpoints
// contract the recovery protocol and the mpi/romio deregistration paths
// depend on.
func (rt *runtime) rwCheckpoint(r *mpi.Rank, st *rworkerState, pt *PhaseTimer) {
	if rt.faults == nil || !rt.faults.ShouldDie(r.Rank()) {
		return
	}
	rank := r.Rank()
	restart := rt.faults.Effect(rank)
	rt.world.Kill(rank)
	pt.Finish()
	if restart > 0 {
		g := st.g
		name := fmt.Sprintf("worker%d.%d", rank, r.Incarnation()+1)
		rt.sim.After(restart, func() {
			rt.faults.Revive(rank)
			rt.world.Respawn(rank, name, func(r2 *mpi.Rank) { rt.rworker(r2, g, true) })
		})
	}
	panic(workerDied{})
}

// rwPark blocks an idle worker until any request completes or it is woken
// out-of-band (crash arming, nudge). The master owes every idle worker a
// control message (nudge or shutdown), so parking without a deadline is safe.
func (rt *runtime) rwPark(r *mpi.Rank, st *rworkerState, pt *PhaseTimer) {
	for {
		rt.rwCheckpoint(r, st, pt)
		if rt.rwAnyReady(st) {
			return
		}
		r.WaitEvent()
	}
}

// rwWaitUntil blocks until a protocol receive completes or the deadline
// passes (false), re-checking the crash checkpoint on every wake.
func (rt *runtime) rwWaitUntil(r *mpi.Rank, st *rworkerState, pt *PhaseTimer, deadline des.Time) bool {
	for {
		rt.rwCheckpoint(r, st, pt)
		if rt.rwAnyReady(st) {
			return true
		}
		if r.Now() >= deadline {
			return false
		}
		if !r.WaitEventUntil(deadline) {
			return false
		}
	}
}

// rwAnyReady reports whether any protocol receive has completed.
func (rt *runtime) rwAnyReady(st *rworkerState) bool {
	for _, q := range []*mpi.Request{st.repReq, st.offReq, st.tokReq, st.ctlReq} {
		if q != nil && q.Done() {
			return true
		}
	}
	return false
}

// rwRetire drops completed fire-and-forget sends.
func (rt *runtime) rwRetire(st *rworkerState) {
	kept := st.pending[:0]
	for _, q := range st.pending {
		if !q.Done() {
			kept = append(kept, q)
		}
	}
	st.pending = kept
}

// rwDrain handles every already-arrived control message, offset list, and
// sync token, reposting each persistent receive.
func (rt *runtime) rwDrain(r *mpi.Rank, pt *PhaseTimer, st *rworkerState) {
	for {
		switch {
		case st.ctlReq.Done():
			cm := st.ctlReq.Message().Payload.(ctlMsg)
			st.ctlReq = r.Irecv(st.boss, tagControl)
			if cm.Shutdown {
				st.shutdown = true
			} else {
				st.nudges++
			}
		case st.offReq != nil && st.offReq.Done():
			om := st.offReq.Message().Payload.(offsetMsg)
			st.offReq = r.Irecv(st.boss, tagOffsets)
			rt.rwOffsets(r, pt, st, om)
		case !st.awaitReply && st.repReq.Done():
			// A replayed or late work reply with no request outstanding
			// (the master answered both the original and a resent request).
			// It must be consumed here: an idle worker parks on "any
			// receive completed", and a done repReq nobody collects would
			// spin that park forever at constant virtual time.
			st.repReq.Message()
			st.repReq = r.Irecv(st.boss, tagWorkReply)
			rt.count("fault.stale_replies", 1)
		case st.tokReq != nil && st.tokReq.Done():
			tk := st.tokReq.Message().Payload.(tokMsg)
			st.tokReq = r.Irecv(st.boss, tagSyncToken)
			if tk.Inc == r.Incarnation() && tk.Sync {
				pt.Switch(PhaseSync)
				st.g.querySyn.Arrive(r)
			}
		default:
			return
		}
	}
}

// rwRequest asks the master for work and awaits the matching reply,
// resending the same sequence number every half-lease until one arrives
// (request or reply may be lost to Drop events). Returns (task, true) for an
// assignment, (zero, false) for "no work right now" or shutdown.
func (rt *runtime) rwRequest(r *mpi.Rank, pt *PhaseTimer, st *rworkerState) (task, bool) {
	cfg := rt.cfg
	st.seq++
	st.awaitReply = true
	defer func() { st.awaitReply = false }()
	req := workReqMsg{Seq: st.seq, Inc: r.Incarnation()}
	first := true
	for {
		pt.Switch(PhaseDataDist)
		if !first {
			rt.count("fault.request_resends", 1)
		}
		first = false
		st.pending = append(st.pending,
			r.Isend(st.boss, tagWorkRequest, requestMsgBytes, req))
		deadline := r.Now() + cfg.effLease()/2
		for {
			rt.rwDrain(r, pt, st)
			if st.shutdown {
				return task{}, false
			}
			if st.repReq.Done() {
				rep := st.repReq.Message().Payload.(workReplyMsg)
				st.repReq = r.Irecv(st.boss, tagWorkReply)
				if rep.Seq != st.seq {
					continue // stale replay of an earlier sequence
				}
				if !st.haveBase {
					st.haveBase = true
					st.flushBase = rep.Flushed
				}
				if rep.Has {
					return rep.T, true
				}
				return task{}, false
			}
			pt.Switch(PhaseDataDist)
			if !rt.rwWaitUntil(r, st, pt, deadline) {
				break // timeout: resend the same request
			}
		}
	}
}

// rwTask models one (query, fragment) search under the resilient protocol:
// the WW-Coll run-ahead gate, compute (scaled by any straggler factor),
// local merge, and the score send.
func (rt *runtime) rwTask(r *mpi.Rank, pt *PhaseTimer, st *rworkerState, t task) {
	cfg := rt.cfg
	bytes := rt.wl.TaskBytes(t.Q, t.F)
	count := rt.wl.TaskCount(t.Q, t.F)

	// WW-Coll run-ahead gate (§2.3), with a liveness valve: during recovery
	// an earlier batch may be unable to flush until THIS worker finishes its
	// current task and frees itself for re-dispatched work, so the gate gives
	// up after one lease period rather than deadlock the run.
	if cfg.Strategy == WWColl {
		need := (t.Q - st.g.loQ) / cfg.QueriesPerWrite
		gateDeadline := r.Now() + cfg.effLease()
		for st.flushBase+st.initSeen < need && !st.shutdown {
			pt.Switch(PhaseDataDist)
			if !rt.rwWaitUntil(r, st, pt, gateDeadline) {
				break
			}
			rt.rwDrain(r, pt, st)
		}
		if st.shutdown {
			return
		}
	}

	if cfg.Segmentation == QuerySeg && cfg.DatabaseBytes > cfg.WorkerMemoryBytes {
		pt.Switch(PhaseIO)
		rt.dbFile.ReadAt(r, cfg.WorkerMemoryBytes, cfg.DatabaseBytes-cfg.WorkerMemoryBytes)
	}

	pt.Switch(PhaseCompute)
	d := cfg.Compute.TaskTime(bytes, cfg.ComputeSpeed)
	if f := rt.faults.ComputeFactor(r.Rank()); f != 1 {
		d = des.Time(float64(d) * f)
	}
	r.Compute(d)

	if cfg.Strategy.WorkerWriting() {
		pt.Switch(PhaseMerge)
		rt.mergeSleep(r, cfg.mergeTime(st.mergeAcc[t.Q], bytes))
		st.mergeAcc[t.Q] += bytes
	}

	pt.Switch(PhaseGather)
	wire := int64(count) * cfg.ScoreEntryBytes
	if cfg.Strategy == MW {
		wire += bytes
	}
	st.pending = append(st.pending,
		r.Isend(st.boss, tagScores, wire,
			scoreMsg{Task: t, Count: count, ResultBytes: bytes}))
}

// rwOffsets handles one offset list: incarnation filtering, (batch, wave)
// deduplication, the write itself, the durability ack, and the optional
// query-sync arrival. A duplicate wave (the master resent it because our ack
// looked overdue) is re-acked without rewriting — writes stay exactly-once.
func (rt *runtime) rwOffsets(r *mpi.Rank, pt *PhaseTimer, st *rworkerState, om offsetMsg) {
	if om.Inc != r.Incarnation() {
		return // addressed to a dead predecessor of this rank
	}
	key := [2]int{om.Batch, om.Wave}
	dup := st.seenWave[key]
	if !dup {
		st.seenWave[key] = true
		if om.Wave == 0 {
			st.initSeen++
		}
		rt.rwWrite(r, pt, st, om)
	}
	var bytes int64
	for _, res := range om.Placements {
		bytes += res.Size
	}
	st.pending = append(st.pending,
		r.Isend(st.boss, tagWriteAck, ackMsgBytes,
			ackMsg{Batch: om.Batch, Wave: om.Wave, Bytes: bytes}))
	if !dup && om.Sync {
		pt.Switch(PhaseSync)
		st.g.querySyn.Arrive(r)
	}
}

// rwWrite performs this worker's share of one batch wave. A Fallback wave
// (collective group tainted by a death, or any recovery wave under WW-Coll)
// uses individual list I/O instead of the collective round.
func (rt *runtime) rwWrite(r *mpi.Rank, pt *PhaseTimer, st *rworkerState, om offsetMsg) {
	cfg := rt.cfg
	g := st.g
	segs := rt.placementsToSegments(om.Placements)
	var segBytes int64
	for _, s := range segs {
		segBytes += s.Length
	}
	if segBytes > 0 {
		pt.Switch(PhaseIO)
		rt.mergeSleep(r, des.BytesOver(segBytes, cfg.FormatBandwidth))
	}
	if cfg.Strategy == WWColl && !om.Fallback {
		if cfg.CollMethod == romio.TwoPhase {
			pt.Switch(PhaseDataDist)
			g.collEntry.Arrive(r)
		}
		pt.Switch(PhaseIO)
		g.collGroup.WriteAll(r, segs)
		if cfg.SyncEveryWrite {
			rt.file.Sync(r)
		}
		rt.stampFlush(r.Proc().Name(), g, om.Batch)
		// Resilient in-run readback is always individual: a collective read
		// round would wedge on taint or membership change mid-recovery.
		rt.rbInRunWorker(r, pt, g, segs, false)
		return
	}
	if len(segs) == 0 {
		return
	}
	pt.Switch(PhaseIO)
	rt.file.WriteSegs(r, segs)
	if cfg.SyncEveryWrite {
		rt.file.Sync(r)
	}
	rt.stampFlush(r.Proc().Name(), g, om.Batch)
	rt.rbInRunWorker(r, pt, g, segs, false)
}
