package core

import (
	"errors"
	"fmt"

	"s3asim/internal/adapt"
	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/obs"
	"s3asim/internal/romio"
)

// Closed-loop adaptive I/O (DESIGN.md §16). The paper's result is that no
// single write strategy wins everywhere: MW wins tiny results, WW-List wins
// the paper's medium regime, collective writes amortize huge ones. With
// Config.Adaptive set, the master stops committing to one strategy up front
// and instead stamps every flush batch with a strategy arm and a ROMIO hint
// vector chosen by an adapt.Controller at dispatch time, from the predicted
// result volume (an online bytes/length model over completed queries) and the
// observed cost of earlier flush windows — optionally decomposed by
// causal.CriticalPathBetween so the controller's per-arm attribution tells
// *why* an arm was slow, not just that it was.
//
// Protocol under Adaptive: every worker always posts the offset-list receive,
// and the master sends one offsetMsg per worker for EVERY batch — including
// MW batches, whose (empty) message is sent after the master's own write+sync
// and doubles as the batch tracker and, with QuerySync, the barrier trigger.
// Tasks carry their query's strategy (task.Strat); offset lists carry the
// batch's strategy and hints (offsetMsg.Strat/Hints), which the workers route
// through the per-call hinted romio entry points. All of it is gated on
// Config.Adaptive != nil: a nil config runs the original protocol
// byte-for-byte.

// AdaptiveConfig switches a run into closed-loop adaptive I/O.
type AdaptiveConfig struct {
	// Strategies lists the candidate arms in decision order. Empty selects
	// {MW, WWList, WWColl} — one representative of each regime the paper
	// identifies.
	Strategies []Strategy
	// EpochLen is the number of flush-window observations that close one
	// hint-search epoch (default 8).
	EpochLen int
	// Hysteresis is the relative margin a challenger arm must beat the
	// incumbent by before the controller switches (default 0.10).
	Hysteresis float64
	// AcceptMargin is the relative improvement a hint probe epoch must show
	// over the baseline to be accepted (default 0.05).
	AcceptMargin float64
	// Gamma is the cost model's EWMA decay (default 0.3).
	Gamma float64
	// TuneCB and TuneSieve enable the two ROMIO hint hill-climb dimensions:
	// cb_nodes (two-phase aggregator count) and the data-sieving buffer size.
	// Both off freezes the hint search at the configured base hints.
	TuneCB    bool
	TuneSieve bool
	// MaxProbes bounds the number of hint probe epochs (default 16).
	MaxProbes int
}

// arms resolves the configured arm set.
func (a *AdaptiveConfig) arms() []Strategy {
	if len(a.Strategies) == 0 {
		return []Strategy{MW, WWList, WWColl}
	}
	return a.Strategies
}

// validateAdaptive checks the adaptive config against the rest of the run.
func (c *Config) validateAdaptive() error {
	a := c.Adaptive
	if a == nil {
		return nil
	}
	if c.resilient() {
		return errors.New("core: adaptive I/O is incompatible with the resilient protocol")
	}
	if c.QueryGroups > 1 {
		return errors.New("core: adaptive I/O requires a single query group")
	}
	seen := map[Strategy]bool{}
	for _, s := range a.arms() {
		if s < MW || s > WWColl {
			return fmt.Errorf("core: adaptive arm %d is not a strategy", int(s))
		}
		if seen[s] {
			return fmt.Errorf("core: duplicate adaptive arm %s", s)
		}
		seen[s] = true
	}
	if a.EpochLen < 0 || a.MaxProbes < 0 {
		return errors.New("core: adaptive EpochLen/MaxProbes must be non-negative")
	}
	if a.Hysteresis < 0 || a.AcceptMargin < 0 {
		return errors.New("core: adaptive margins must be non-negative")
	}
	if a.Gamma < 0 || a.Gamma > 1 {
		return errors.New("core: adaptive Gamma must be in [0, 1]")
	}
	return nil
}

// indMethodFor resolves the ADIO method for individual writes under strategy
// s — the per-batch variant of indMethod, used to stamp adaptive hint
// vectors.
func (c *Config) indMethodFor(s Strategy) romio.Method {
	if c.OverrideIndMethod {
		return c.IndMethod
	}
	if s == WWPosix {
		return romio.Posix
	}
	return romio.ListIO
}

// slug is the lowercase metric-name form of the strategy.
func (s Strategy) slug() string {
	switch s {
	case MW:
		return "mw"
	case WWPosix:
		return "ww-posix"
	case WWList:
		return "ww-list"
	case WWColl:
		return "ww-coll"
	default:
		return fmt.Sprintf("strategy-%d", int(s))
	}
}

// adaptDecision is one batch's recorded controller decision.
type adaptDecision struct {
	made  bool
	arm   int
	epoch uint32
	strat Strategy
	hints romio.Hints
}

// adaptState is the runtime side of Config.Adaptive (nil otherwise).
type adaptState struct {
	ctrl *adapt.Controller
	pred *adapt.Predictor

	strategies []Strategy // arm index -> strategy
	counters   []string   // arm index -> "adapt.assigned.<slug>" (precomputed: Decide path is allocation-free)
	hasColl    bool

	decisions []adaptDecision // per global batch
	starts    []des.Time      // per global batch: flush initiation time
	writers   []int           // per global batch: expected flush stamps
	stamped   []int           // per global batch: stamps so far
	observed  []bool          // per global batch: fed back to the controller
	lastProc  []string        // per global batch: latest stamping process
	lastEnd   des.Time        // latest observed flush completion (headway base)

	proc string // master process name (obs Point anchor)
	sink obs.Sink
}

// newAdaptState builds the controller and per-batch bookkeeping. Requires a
// single group (enforced by validateAdaptive).
func (rt *runtime) newAdaptState() *adaptState {
	cfg := rt.cfg
	a := cfg.Adaptive
	arms := a.arms()
	// Cold-start size prior from the workload spec's own generative law
	// (search.Generate): an expected count of results per query, each sized
	// MinResultSize + U(0, 3·max(qlen, dbLen) − MinResultSize). Without it
	// the first few batches predict zero bytes and the controller starts on
	// whatever arm is cheapest for an empty flush — a real transient at
	// short query counts.
	wl := &cfg.Workload
	count := float64(wl.MinResults+wl.MaxResults) / 2
	dbl := wl.DBSeqHist.Mean()
	minSz := float64(wl.MinResultSize)
	if minSz < 1 {
		minSz = 1
	}
	sizePrior := func(length int64) int64 {
		m := 3 * float64(length)
		if 3*dbl > m {
			m = 3 * dbl
		}
		sz := minSz
		if m > minSz {
			sz += (m - minSz) / 2
		}
		return int64(count * sz)
	}
	ad := &adaptState{
		strategies: arms,
		pred:       adapt.NewPredictor(a.Gamma, sizePrior),
		proc:       fmt.Sprintf("master%d", rt.groups[0].index),
		sink:       cfg.sink(),
	}
	names := make([]string, len(arms))
	for i, s := range arms {
		names[i] = s.String()
		ad.counters = append(ad.counters, "adapt.assigned."+s.slug())
		if s == WWColl {
			ad.hasColl = true
		}
	}
	ad.ctrl = adapt.New(adapt.Params{
		Arms:         names,
		EpochLen:     a.EpochLen,
		Hysteresis:   a.Hysteresis,
		AcceptMargin: a.AcceptMargin,
		Gamma:        a.Gamma,
		BaseHints: romio.Hints{
			CBNodes:         cfg.CBNodes,
			CollWriteMethod: cfg.CollMethod,
			IndWriteMethod:  cfg.indMethod(),
		},
		MaxCBNodes: len(rt.groups[0].workers),
		MaxProbes:  a.MaxProbes,
		TuneCB:     a.TuneCB,
		TuneSieve:  a.TuneSieve,
		Prior:      rt.adaptPrior(arms),
	})
	n := len(rt.flushTimes)
	ad.decisions = make([]adaptDecision, n)
	ad.starts = make([]des.Time, n)
	ad.writers = make([]int, n)
	ad.stamped = make([]int, n)
	ad.observed = make([]bool, n)
	ad.lastProc = make([]string, n)
	return ad
}

// adaptPrior builds the controller's ex-ante arm prices from the run's
// configured device models (pvfs request/sync costs, the interconnect, and
// the master's serialization bandwidth). The prior only has to *rank* arms
// for batch sizes no arm has been observed at yet — it replaces the forced
// bootstrap, so an arm it prices clearly worst is never tried, and a wrong
// ranking costs one batch before the first real observation overrides it.
// The returned function is deterministic and allocation-free (it sits on the
// Decide hot path).
func (rt *runtime) adaptPrior(arms []Strategy) func(arm int, predBytes int64) float64 {
	cfg := rt.cfg
	fs, net := cfg.FS, cfg.Net
	w := float64(len(rt.groups[0].workers))
	srv := float64(fs.NumServers)
	if srv < 1 {
		srv = 1
	}
	// Expected result segments per batch, from the workload spec.
	segs := float64(cfg.QueriesPerWrite) * float64(cfg.Workload.MinResults+cfg.Workload.MaxResults) / 2
	if segs < 1 {
		segs = 1
	}
	req := float64(fs.RequestOverhead)
	seg := float64(fs.SegmentOverhead)
	syncB := float64(fs.SyncBase)
	lat := float64(net.Latency)
	strip := float64(fs.StripSize)
	if strip <= 0 {
		strip = 1
	}
	cb := w
	if cfg.CBNodes > 0 && float64(cfg.CBNodes) < cb {
		cb = float64(cfg.CBNodes)
	}
	if cb > srv {
		cb = srv
	}
	planSeg := float64(romio.DefaultHints().TwoPhasePlanPerSeg)
	frags := int64(cfg.Workload.NumFragments)
	if frags < 1 {
		frags = 1
	}
	// div is bytes over bandwidth in des.Time units, treating a non-positive
	// bandwidth as infinite — matching des.BytesOver.
	div := func(b, bw float64) float64 {
		if bw <= 0 {
			return 0
		}
		return b / bw * float64(des.Second)
	}
	return func(arm int, predBytes int64) float64 {
		b := float64(predBytes)
		// spread: how many server queues the batch's strips fan across —
		// a tiny batch lands on one server, a huge one on all of them.
		spread := b/strip + 1
		if spread > srv {
			spread = srv
		}
		service := div(b, fs.ServiceBandwidth*spread) + div(b, fs.SyncBandwidth*spread)
		switch arms[arm] {
		case MW:
			// Master serializes at FormatBandwidth, then one contiguous
			// write and sync. Doubled to match the observation feed, which
			// charges an MW flush its master occupancy on top of its headway
			// (see adaptStamped).
			return 2 * (div(b, cfg.FormatBandwidth) + req + seg + syncB + service)
		case WWPosix:
			// Every result segment is its own request, from w concurrent
			// writers; overheads pile onto the spread's server queues.
			return 2*lat + (segs*(req+seg)+w*syncB)/spread + service
		case WWList:
			// One list request per writer carrying all its segments.
			return 2*lat + (w*req+segs*seg+w*syncB)/spread + service
		case WWColl:
			// Two-phase: a collective round first BARRIERS the whole group —
			// the expected straggler drain is about one task's compute time,
			// a cost the per-request terms completely miss — then pays the
			// per-segment plan cost, redistributes over the interconnect,
			// and cb aggregators issue contiguous writes.
			barrier := float64(cfg.Compute.TaskTime(predBytes/frags, cfg.ComputeSpeed))
			return barrier + segs*planSeg + 4*lat + div(b, net.Bandwidth) +
				(cb*(req+seg+syncB))/spread + service
		default:
			return 1e18
		}
	}
}

// taskStrat resolves the effective strategy of a task: the stamped per-query
// arm under Adaptive, the configured strategy otherwise.
func (rt *runtime) taskStrat(t task) Strategy {
	if rt.ad != nil {
		return t.Strat
	}
	return rt.cfg.Strategy
}

// batchStrat resolves the effective strategy of a flushed batch from its
// offset message.
func (rt *runtime) batchStrat(om offsetMsg) Strategy {
	if rt.ad != nil {
		return om.Strat
	}
	return rt.cfg.Strategy
}

// adaptTaskStrat returns query q's strategy, deciding its batch's arm on
// first use (the master calls this when dispatching a query's first
// fragment; later fragments and batch-mates reuse the decision). Runs on the
// master only, so the decision sequence is identical across worker engines.
func (rt *runtime) adaptTaskStrat(g *group, q int) Strategy {
	ad := rt.ad
	gb := g.batchBase + (q-g.loQ)/rt.cfg.QueriesPerWrite
	d := &ad.decisions[gb]
	if d.made {
		return d.strat
	}
	b := g.batches[gb-g.batchBase]
	var pred int64
	for qq := b.LoQ; qq < b.HiQ; qq++ {
		pred += ad.pred.Predict(rt.wl.Queries[qq].Length)
	}
	dec := ad.ctrl.Decide(pred)
	d.made = true
	d.arm = dec.Arm
	d.epoch = dec.Epoch
	d.strat = ad.strategies[dec.Arm]
	d.hints = dec.Hints
	d.hints.CollWriteMethod = rt.cfg.CollMethod
	d.hints.IndWriteMethod = rt.cfg.indMethodFor(d.strat)
	rt.metrics.Add(ad.counters[dec.Arm], 1)
	if dec.Switched {
		rt.metrics.Add("adapt.switches", 1)
		if ad.sink != nil {
			ad.sink.Point(ad.proc, "adapt.switch", rt.sim.Now())
		}
	}
	return d.strat
}

// adaptFlushStart records a batch flush's start time and how many flush
// stamps (adaptStamped calls) complete it: 1 for the master's MW write, all
// group workers for a collective round, the placement-holding workers for
// individual WW.
func (rt *runtime) adaptFlushStart(gb, writers int) {
	rt.ad.starts[gb] = rt.sim.Now()
	rt.ad.writers[gb] = writers
}

// adaptStamped counts one durable-write stamp for batch gb; the final stamp
// closes the flush window and feeds the observation (cost, bytes, and — on
// causal runs — the window's critical-path attribution) back to the
// controller. Stamps arrive in virtual-time order, so the last stamper is
// the window's critical finisher and anchors the attribution walk.
//
// The observed cost is the flush's HEADWAY, not its latency: the wall-clock
// beyond the later of this flush's start and the previous flush's end. A
// latency window mis-prices arms whose damage is externalized — a collective
// round's window is short (contiguous aggregator writes) while it stalls
// every worker's compute, which surfaces as delayed gathers and
// back-to-back flush completions. Headways tile the steady-state wall
// clock, so minimizing them minimizes what the run actually optimizes.
func (rt *runtime) adaptStamped(gb int, proc string) {
	ad := rt.ad
	ad.stamped[gb]++
	ad.lastProc[gb] = proc
	if ad.stamped[gb] < ad.writers[gb] || ad.observed[gb] {
		return
	}
	ad.observed[gb] = true
	d := &ad.decisions[gb]
	// The observed cost is the flush's HEADWAY beyond the previous flush's
	// end, not its latency: headways tile the steady-state wall clock, so
	// minimizing them minimizes what the run actually optimizes, and a run of
	// same-arm batches charges the arm its true pipeline rate. One known
	// externality still escapes the window — the master-write's occupancy
	// starves task distribution and lands on the FOLLOWING batches — and is
	// charged back explicitly below.
	base := ad.starts[gb]
	if ad.lastEnd > base {
		base = ad.lastEnd
	}
	cost := rt.flushTimes[gb] - base
	if cost < 0 {
		cost = 0
	}
	if d.strat == MW {
		// A master-write flush monopolizes the master for its whole window
		// (format at FormatBandwidth, then the write and sync), deferring
		// both task distribution AND result merging — the paper's central
		// bottleneck, and two stalled pipelines, not one. That starvation
		// surfaces as inflated headways on the FOLLOWING batches (usually
		// billed to whatever arm they ran on), so in mixed sequences MW's own
		// headway under-states its marginal cost and the controller flaps at
		// the MW/WW crossover. Charge the occupancy back to the arm that
		// caused it, once per stalled pipeline.
		cost += 2 * (rt.flushTimes[gb] - ad.starts[gb])
	}
	if rt.flushTimes[gb] > ad.lastEnd {
		ad.lastEnd = rt.flushTimes[gb]
	}
	var att *causal.Attribution
	if c := rt.cfg.Causal; c != nil {
		att = c.CriticalPathBetween(ad.lastProc[gb], ad.starts[gb], rt.flushTimes[gb])
	}
	before := ad.ctrl.EpochID()
	ad.ctrl.Observe(d.arm, rt.groups[0].batches[gb-rt.groups[0].batchBase].Bytes, cost, d.epoch, att)
	if ad.ctrl.EpochID() != before && ad.sink != nil {
		ad.sink.Point(ad.proc, "adapt.epoch", rt.sim.Now())
	}
}

// adaptQueryDone feeds the size predictor with a completed query's actual
// result volume (the master has just merged its last fragment).
func (rt *runtime) adaptQueryDone(q int) {
	if ad := rt.ad; ad != nil {
		ad.pred.Observe(rt.wl.Queries[q].Length, rt.wl.Queries[q].Bytes)
	}
}

// adaptWorkerWrites reports whether any adaptive arm writes from workers
// (the data-sieving overlap carve-out in report()).
func (rt *runtime) adaptWorkerWrites() bool {
	if rt.ad == nil {
		return false
	}
	for _, s := range rt.ad.strategies {
		if s.WorkerWriting() {
			return true
		}
	}
	return false
}

// AdaptiveReport summarizes the controller's run (Report.Adaptive, present
// only with Config.Adaptive).
type AdaptiveReport struct {
	// Arms names the strategy arms; parallel to Assigned/Observed/ArmAttr.
	Arms []string
	// Assigned counts controller decisions per arm (batches, not queries).
	Assigned []int64
	// Observed counts flush windows fed back per arm.
	Observed []int64
	// ArmAttr accumulates each arm's flush-window critical-path breakdown
	// (zero without Config.Causal) — the causal side of every decision.
	ArmAttr []causal.Breakdown
	// Switches counts bucket-incumbent changes; Epochs and ProbeEpochs
	// summarize the hint search, FinalHints its outcome, Converged whether
	// it froze before the run ended.
	Switches    int64
	Epochs      int
	ProbeEpochs int
	Converged   bool
	FinalHints  romio.Hints
	// BatchArms records, per global batch, the decided arm index (-1 for a
	// batch that was never dispatched).
	BatchArms []int
}

// adaptReport snapshots the controller state for the run report.
func (rt *runtime) adaptReport() *AdaptiveReport {
	ad := rt.ad
	rep := &AdaptiveReport{
		Switches:    ad.ctrl.Switches(),
		Epochs:      int(ad.ctrl.EpochID()),
		ProbeEpochs: ad.ctrl.ProbeEpochs(),
		Converged:   ad.ctrl.Converged(),
		FinalHints:  ad.ctrl.BestHints(),
	}
	for a, s := range ad.strategies {
		rep.Arms = append(rep.Arms, s.String())
		rep.Assigned = append(rep.Assigned, ad.ctrl.Assigned(a))
		rep.Observed = append(rep.Observed, ad.ctrl.Observations(a))
		rep.ArmAttr = append(rep.ArmAttr, ad.ctrl.Attr(a))
	}
	for _, d := range ad.decisions {
		if d.made {
			rep.BatchArms = append(rep.BatchArms, d.arm)
		} else {
			rep.BatchArms = append(rep.BatchArms, -1)
		}
	}
	return rep
}
