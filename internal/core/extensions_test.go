package core

import (
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/romio"
)

func TestHybridGroupsVerifyImage(t *testing.T) {
	for _, s := range Strategies {
		for _, groups := range []int{1, 2, 3} {
			cfg := tinyConfig()
			cfg.Procs = 9 // room for 3 groups of (1 master + 2 workers)
			cfg.Strategy = s
			cfg.QueryGroups = groups
			rep := mustRun(t, cfg)
			if !rep.Verified {
				t.Fatalf("%v groups=%d: unverified", s, groups)
			}
			if rep.QueryGroups != groups || len(rep.Masters) != groups {
				t.Fatalf("%v groups=%d: masters=%d", s, groups, len(rep.Masters))
			}
			if len(rep.Workers) != cfg.Procs-groups {
				t.Fatalf("%v groups=%d: workers=%d", s, groups, len(rep.Workers))
			}
		}
	}
}

func TestHybridGroupsWithQuerySync(t *testing.T) {
	cfg := tinyConfig()
	cfg.Procs = 8
	cfg.Strategy = WWList
	cfg.QueryGroups = 2
	cfg.QuerySync = true
	rep := mustRun(t, cfg)
	if !rep.Verified {
		t.Fatal("hybrid + query sync: unverified")
	}
}

func TestHybridReducesMWMasterBottleneck(t *testing.T) {
	// With MW, splitting the query set across two masters should cut the
	// per-master merge/format pipeline roughly in half.
	cfg := tinyConfig()
	cfg.Procs = 10
	cfg.Strategy = MW
	cfg.Workload.NumQueries = 6
	cfg.Workload.MinResults = 200
	cfg.Workload.MaxResults = 300
	one := mustRun(t, cfg)
	cfg.QueryGroups = 2
	two := mustRun(t, cfg)
	if two.Overall >= one.Overall {
		t.Fatalf("hybrid MW (%v) not faster than single-master MW (%v)",
			two.Overall, one.Overall)
	}
}

func TestListSyncCollectiveVerifies(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = WWColl
	cfg.Workload.MinResults = 60
	cfg.Workload.MaxResults = 80
	for _, m := range []romio.CollMethod{romio.TwoPhase, romio.ListSync} {
		cfg.CollMethod = m
		rep := mustRun(t, cfg)
		if !rep.Verified {
			t.Fatalf("%v collective: unverified", m)
		}
	}
}

func TestListSyncCollectiveCompetitiveAtScale(t *testing.T) {
	// The paper's conclusion proposes a collective built from list I/O plus
	// a forced synchronization at the end as potentially more efficient
	// than ROMIO's default two-phase. Under our calibrated cost model the
	// two come out within a few percent (aggregation savings offset the
	// pattern-processing cost two-phase pays) — see EXPERIMENTS.md for the
	// discussion. This test pins the competitive relationship.
	if testing.Short() {
		t.Skip("full-scale comparison")
	}
	cfg := DefaultConfig()
	cfg.Procs = 48
	cfg.Strategy = WWColl
	cfg.CollMethod = romio.TwoPhase
	twoPhase := mustRun(t, cfg)
	cfg.CollMethod = romio.ListSync
	listSync := mustRun(t, cfg)
	if float64(listSync.Overall) > 1.05*float64(twoPhase.Overall) {
		t.Fatalf("list-sync collective (%v) more than 5%% slower than two-phase (%v)",
			listSync.Overall, twoPhase.Overall)
	}
	// The strategy-level version of the paper's evidence must hold
	// strictly: WW-List with query sync beats WW-Coll.
	cfg.Strategy = WWList
	cfg.CollMethod = romio.TwoPhase
	cfg.QuerySync = true
	listQS := mustRun(t, cfg)
	if listQS.Overall >= twoPhase.Overall {
		t.Fatalf("WW-List+sync (%v) not faster than WW-Coll (%v)",
			listQS.Overall, twoPhase.Overall)
	}
}

func TestResumeFromQuery(t *testing.T) {
	for _, s := range Strategies {
		cfg := tinyConfig()
		cfg.Strategy = s
		cfg.ResumeFromQuery = 1 // skip the first of 3 queries
		rep := mustRun(t, cfg)
		if !rep.Verified {
			t.Fatalf("%v: resumed run unverified", s)
		}
		full := mustRun(t, func() Config { c := tinyConfig(); c.Strategy = s; return c }())
		if rep.Overall >= full.Overall {
			t.Fatalf("%v: resumed run (%v) not faster than full run (%v)",
				s, rep.Overall, full.Overall)
		}
		if rep.FileCoverage >= full.FileCoverage {
			t.Fatalf("%v: resumed run wrote %d bytes, full run %d",
				s, rep.FileCoverage, full.FileCoverage)
		}
	}
}

func TestResumeValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.ResumeFromQuery = cfg.Workload.NumQueries // out of range
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range resume accepted")
	}
	cfg.ResumeFromQuery = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative resume accepted")
	}
}

func TestBatchFlushTimesMonotonePerGroup(t *testing.T) {
	cfg := tinyConfig()
	cfg.Strategy = MW
	rep := mustRun(t, cfg)
	if len(rep.BatchFlushTimes) != cfg.Workload.NumQueries {
		t.Fatalf("flush times = %d, want one per query", len(rep.BatchFlushTimes))
	}
	var prev des.Time
	for i, ft := range rep.BatchFlushTimes {
		if ft <= 0 {
			t.Fatalf("batch %d never flushed", i)
		}
		if ft < prev {
			t.Fatalf("flush times not monotone: %v", rep.BatchFlushTimes)
		}
		prev = ft
	}
}

func TestHybridValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.QueryGroups = 3
	cfg.Procs = 4 // needs ≥ 6
	if _, err := Run(cfg); err == nil {
		t.Fatal("too few procs per group accepted")
	}
	cfg = tinyConfig()
	cfg.QueryGroups = 5 // only 3 queries
	cfg.Procs = 12
	if _, err := Run(cfg); err == nil {
		t.Fatal("more groups than queries accepted")
	}
}

func TestLockingFileSystemSlowsWorkerWriting(t *testing.T) {
	// §3.1: lock-based file systems serialize S3aSim's interleaved,
	// non-overlapping worker writes via false sharing.
	cfg := tinyConfig()
	cfg.Strategy = WWList
	cfg.Workload.MinResults = 60
	cfg.Workload.MaxResults = 80
	free := mustRun(t, cfg)
	// Coarse (1 MB) lock units put every writer's extents in the same few
	// units — the worst-case false sharing for this pattern.
	cfg.FS.LockGranularity = 1 << 20
	cfg.FS.LockAcquireCost = 2 * des.Millisecond
	locked := mustRun(t, cfg)
	if !locked.Verified {
		t.Fatal("locked run unverified")
	}
	if locked.Overall <= free.Overall {
		t.Fatalf("lock-based FS (%v) not slower than PVFS2 (%v)",
			locked.Overall, free.Overall)
	}
}
