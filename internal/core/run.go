package core

import (
	"bytes"
	"fmt"

	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/fault"
	"s3asim/internal/mpi"
	"s3asim/internal/obs"
	"s3asim/internal/pvfs"
	"s3asim/internal/romio"
	"s3asim/internal/search"
	"s3asim/internal/stats"
)

// outputFile is the simulated results file name.
const outputFile = "s3asim.results"

// batch is a flush unit: QueriesPerWrite consecutive queries of one group.
type batch struct {
	LoQ, HiQ int // query index range [LoQ, HiQ)
	Region   int64
	Bytes    int64
}

// group is one master/worker tree. With QueryGroups == 1 (the paper's
// configuration) there is a single group holding every process and every
// query; with more groups the engine runs the paper's §5 "hybrid query
// segmentation/database segmentation" extension: the query set is split
// across groups, each group database-segments its share, and all groups
// share the file system and the output file.
type group struct {
	index      int
	masterRank int
	workers    []int // worker ranks, ascending
	loQ, hiQ   int   // query range [loQ, hiQ)
	batches    []batch

	batchBase int // global index of this group's first batch

	team      *mpi.Team    // master + workers: setup broadcast
	querySyn  *mpi.Barrier // this group's workers, per flushed batch
	collEntry *mpi.Barrier // gathering before each collective round
	collGroup *romio.Group // WW-Coll collective over this group's workers
}

// runtime carries everything the masters and workers share.
type runtime struct {
	cfg     *Config
	wl      *search.Workload
	sim     *des.Simulation
	world   *mpi.World
	fs      *pvfs.FileSystem
	file    *romio.File
	dbFile  *romio.File  // input database (when DatabaseBytes > 0)
	fileUp  *des.Signal  // broadcast once rt.file is open
	final   *mpi.Barrier // all processes, end of run
	groups  []*group
	timers  []*PhaseTimer
	metrics *obs.Registry

	flushTimes []des.Time // per global batch: when its flush completed

	// Telemetry-pipeline state (nil when Config.Telemetry is unset).
	flight *obs.FlightRecorder

	// Serving-mode state (nil for the paper's closed batch).
	serve *serveState

	// Adaptive-I/O state (nil when Config.Adaptive is unset).
	ad *adaptState

	// Verified-read-path state (nil when Config.Readback is unset).
	rb *readbackState

	// Resilient-protocol state (nil/zero for the original protocol).
	faults        *fault.Injector // fault oracle; non-nil iff cfg.resilient()
	runErr        error           // first unrecoverable failure (fail())
	groupShutdown []bool          // per group: master entered shutdown
	ended         int             // protocol actors that exited cleanly
}

// ProcBreakdown is one process's per-phase time decomposition.
type ProcBreakdown struct {
	Rank   int
	Phases [NumPhases]des.Time
	Total  des.Time
}

// Report is the outcome of one simulated S3aSim run.
type Report struct {
	Strategy     Strategy
	QuerySync    bool
	Procs        int
	ComputeSpeed float64
	QueryGroups  int

	Overall   des.Time // wall-clock of the whole application
	Master    ProcBreakdown
	Masters   []ProcBreakdown // all group masters (len == QueryGroups)
	Workers   []ProcBreakdown
	WorkerAvg ProcBreakdown // phase-wise mean over workers

	OutputBytes     int64 // workload result bytes
	FileCoverage    int64 // distinct bytes written
	OverlappedBytes int64
	Verified        bool // content verified (capture runs only)

	// Readback* summarize the verified read path (Config.Readback runs
	// only): reads issued through the read strategy, extents and bytes
	// compared against regenerated content, and extents whose content hash
	// diverged. A run with ReadbackMismatches > 0 also returns an error.
	ReadbackReads      int64
	ReadbackExtents    int64
	ReadbackBytes      int64
	ReadbackMismatches int64

	// BatchFlushTimes records, per flush batch (in global query order),
	// the virtual time its results were durably written — the resume
	// points the paper's frequent-write design buys.
	BatchFlushTimes []des.Time

	FS       pvfs.Stats
	Messages uint64
	NetBytes uint64
	Events   uint64

	// IOTrace holds per-request file-system records when Config.TraceIO
	// was set (see pvfs.AnalyzeTrace).
	IOTrace []pvfs.RequestRecord

	// Queries holds per-query lifecycle stamps for serving runs
	// (Config.Serve), indexed by query in arrival order. Nil otherwise.
	Queries []QueryStat

	// Metrics is the run's instrumentation snapshot: counters (des.events,
	// mpi.messages, pvfs.requests, ...), gauges, and virtual-time histograms
	// (per-rank phase durations, pvfs queue waits, per-server load). Always
	// populated; deterministic for a given config and workload.
	Metrics obs.Snapshot

	// Windows, Alerts, and FlightDumps are the telemetry pipeline's outputs
	// (Config.Telemetry runs only): the windowed time-series — which
	// conserves exactly against Metrics (obs.Series.Conserve) — the SLO
	// alert edge timeline, and any captured flight-recorder dumps (not yet
	// written anywhere; serialize with obs.FlightDump.WriteJSONL).
	Windows     *obs.Series
	Alerts      []obs.Alert
	FlightDumps []obs.FlightDump

	// Adaptive summarizes the closed-loop controller's decisions, per-arm
	// observations and attribution, switch count, and hint-search outcome —
	// present only with Config.Adaptive.
	Adaptive *AdaptiveReport

	// Attribution is the run's critical-path decomposition, present only
	// when Config.Causal was set: every nanosecond of Overall assigned to a
	// category (Attribution.Check() verifies the conservation invariant).
	Attribution *causal.Attribution
	// CausalTotals aggregates all recorded intervals across every process
	// by category (parallel work counted multiply) — the companion
	// "where did all processes spend time" view. Zero without Config.Causal.
	CausalTotals causal.Breakdown
}

// Run executes one S3aSim simulation and returns its report.
func Run(cfg Config) (*Report, error) {
	return RunWithWorkload(cfg, nil)
}

// RunWithWorkload is Run with a caller-supplied pre-generated workload,
// letting a sweep generate each distinct workload once (search.Cache) and
// share it across cells. wl must have been generated from
// cfg.EffectiveWorkload(); nil generates it here. Sharing one *Workload
// across concurrent runs is safe: the engine and the report path only read
// it (see search.Cache).
func RunWithWorkload(cfg Config, wl *search.Workload) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CaptureData {
		cfg.FS.CaptureData = true
	}
	if cfg.QueryGroups < 1 {
		cfg.QueryGroups = 1
	}
	cfg.Workload = cfg.EffectiveWorkload()
	if cfg.WorkerMemoryBytes <= 0 {
		cfg.WorkerMemoryBytes = 512 << 20
	}
	if wl == nil {
		wl = search.Generate(cfg.Workload)
	} else if wl.Spec.Key() != cfg.Workload.Key() {
		return nil, fmt.Errorf("core: supplied workload was generated from a different spec (%s vs %s)",
			wl.Spec.Key(), cfg.Workload.Key())
	}
	sim := cfg.Sim
	if sim == nil {
		sim = des.New()
	}
	sim.Reset()
	world := mpi.NewWorld(sim, cfg.Procs, cfg.Net)
	fs := pvfs.New(sim, cfg.FS)
	if cfg.TraceIO {
		fs.EnableRequestTrace()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	fs.SetMetrics(reg)
	var flight *obs.FlightRecorder
	if tel := cfg.Telemetry; tel != nil {
		reg.EnableWindows(tel.Window, sim.Now)
		flight = tel.NewFlightRecorder()
		// Crash/restart points on the injector's timeline trigger dumps.
		flight.AutoTrigger("faults")
		cfg.Sink = obs.Multi(cfg.Sink, flight)
	}
	if cfg.Causal != nil {
		world.SetCausal(cfg.Causal)
		fs.SetCausal(cfg.Causal)
	}

	rt := &runtime{
		cfg:     &cfg,
		wl:      wl,
		sim:     sim,
		world:   world,
		fs:      fs,
		fileUp:  sim.NewSignal(),
		final:   world.NewBarrier(cfg.Procs),
		timers:  make([]*PhaseTimer, cfg.Procs),
		metrics: reg,
		flight:  flight,
	}
	rt.buildGroups()
	if cfg.Adaptive != nil {
		rt.ad = rt.newAdaptState()
	}
	if cfg.Readback != nil {
		rt.rb = &readbackState{conf: *cfg.Readback}
	}
	if cfg.TestWriteDropper != nil {
		fs.SetWriteDropper(cfg.TestWriteDropper)
	}
	if cfg.Serve != nil {
		rt.serve = newServeState(cfg.Serve)
		rt.serve.flushedB = make([]bool, len(rt.groups[0].batches))
	}
	if cfg.DisableMasterNICSerialization {
		for _, g := range rt.groups {
			world.UncontendNode(g.masterRank, 1024)
		}
	}

	// The fault layer and the resilient protocol are wired only when
	// requested: an empty plan without Resilient leaves every hook nil, so
	// such runs are bit-identical to builds without any fault code at all.
	// A serving run may carry a pure performance-fault plan (degrade,
	// outage, delay — validateServe rejects anything stronger) on the
	// original protocol: the injector is wired into the network and the
	// file system, but there is nothing to Arm and no recovery state.
	resilient := cfg.resilient()
	if resilient || !cfg.FaultPlan.IsEmpty() {
		inj := fault.NewInjector(sim, cfg.FaultPlan, reg, cfg.sink())
		inj.SetTagPolicy(droppableTag, delayableTag)
		world.SetFaultModel(inj)
		fs.SetFaults(inj)
		for _, e := range inj.Outages() {
			fs.ScheduleOutage(e.Server, e.At, e.For)
		}
		if resilient {
			inj.Arm(world.WakeRank)
			rt.faults = inj
			rt.groupShutdown = make([]bool, len(rt.groups))
		}
	}

	for _, g := range rt.groups {
		g := g
		if resilient {
			world.Spawn(g.masterRank, fmt.Sprintf("master%d", g.index),
				func(r *mpi.Rank) { rt.rmaster(r, g) })
			for _, w := range g.workers {
				w := w
				world.Spawn(w, fmt.Sprintf("worker%d", w),
					func(r *mpi.Rank) { rt.rworker(r, g, false) })
			}
			continue
		}
		world.Spawn(g.masterRank, fmt.Sprintf("master%d", g.index),
			func(r *mpi.Rank) { rt.master(r, g) })
		for _, w := range g.workers {
			w := w
			if cfg.fsmWorkers() {
				// The steady-state worker loop runs as a pooled state
				// machine: a blocked worker is one struct, not a goroutine
				// stack, so rank counts in the hundreds of thousands fit in
				// ordinary heaps. Masters keep goroutine form — there is one
				// per group and their protocol code stays readable that way.
				world.SpawnFSM(w, fmt.Sprintf("worker%d", w),
					&workerFSM{rt: rt, g: g, r: world.Rank(w)})
				continue
			}
			world.Spawn(w, fmt.Sprintf("worker%d", w),
				func(r *mpi.Rank) { rt.worker(r, g) })
		}
	}
	if err := sim.Run(); err != nil {
		return nil, fmt.Errorf("core: %s sync=%v procs=%d groups=%d: %w",
			cfg.Strategy, cfg.QuerySync, cfg.Procs, cfg.QueryGroups, err)
	}
	if rt.runErr != nil {
		return nil, rt.runErr
	}
	return rt.report()
}

// buildGroups splits processes and queries across QueryGroups groups:
// contiguous rank blocks (first rank of each block is its master) and
// contiguous query ranges, both balanced to within one unit.
func (rt *runtime) buildGroups() {
	cfg := rt.cfg
	G := cfg.QueryGroups
	rank := 0
	qlo := cfg.ResumeFromQuery
	numQueries := cfg.Workload.NumQueries - cfg.ResumeFromQuery
	var globalBatch int
	for gi := 0; gi < G; gi++ {
		size := cfg.Procs / G
		if gi < cfg.Procs%G {
			size++
		}
		nq := numQueries / G
		if gi < numQueries%G {
			nq++
		}
		g := &group{
			index:      gi,
			masterRank: rank,
			loQ:        qlo,
			hiQ:        qlo + nq,
			batchBase:  globalBatch,
			querySyn:   rt.world.NewBarrier(size - 1),
			collEntry:  rt.world.NewBarrier(size - 1),
		}
		for w := rank + 1; w < rank+size; w++ {
			g.workers = append(g.workers, w)
		}
		members := append([]int{g.masterRank}, g.workers...)
		g.team = rt.world.NewTeam(members)
		for lo := g.loQ; lo < g.hiQ; lo += cfg.QueriesPerWrite {
			hi := lo + cfg.QueriesPerWrite
			if hi > g.hiQ {
				hi = g.hiQ
			}
			b := batch{LoQ: lo, HiQ: hi, Region: rt.wl.Queries[lo].Region}
			for q := lo; q < hi; q++ {
				b.Bytes += rt.wl.Queries[q].Bytes
			}
			g.batches = append(g.batches, b)
			globalBatch++
		}
		rt.groups = append(rt.groups, g)
		rank += size
		qlo += nq
	}
	rt.flushTimes = make([]des.Time, globalBatch)
}

// openFile is called by every group master; the first creates the shared
// output file, the rest wait for it.
func (rt *runtime) openFile(r *mpi.Rank, g *group) {
	if g.index == 0 {
		hints := romio.Hints{
			CBNodes:         rt.cfg.CBNodes,
			CollWriteMethod: rt.cfg.CollMethod,
			IndWriteMethod:  rt.cfg.indMethod(),
		}
		rt.file = romio.Open(r.Proc(), rt.world, rt.fs, outputFile, hints)
		if rt.cfg.DatabaseBytes > 0 {
			rt.dbFile = romio.Open(r.Proc(), rt.world, rt.fs, "s3asim.database", hints)
		}
		rt.fileUp.Broadcast()
		return
	}
	for rt.file == nil {
		rt.fileUp.Wait(r.Proc())
	}
}

// mergeSleep advances r's clock by d and bills the span as
// merge/serialization work for causal attribution (result merging on master
// or worker, batch formatting before a write).
func (rt *runtime) mergeSleep(r *mpi.Rank, d des.Time) {
	if c := rt.cfg.Causal; c != nil {
		start := rt.sim.Now()
		r.Proc().Sleep(d)
		c.Busy(r.Proc().Name(), causal.CatMerge, start, rt.sim.Now())
		return
	}
	r.Proc().Sleep(d)
}

// totalWorkers counts worker processes across all groups.
func (rt *runtime) totalWorkers() int {
	n := 0
	for _, g := range rt.groups {
		n += len(g.workers)
	}
	return n
}

// report assembles the run outcome and verifies the output file.
func (rt *runtime) report() (*Report, error) {
	cfg := rt.cfg
	rep := &Report{
		Strategy:        cfg.Strategy,
		QuerySync:       cfg.QuerySync,
		Procs:           cfg.Procs,
		ComputeSpeed:    cfg.ComputeSpeed,
		QueryGroups:     cfg.QueryGroups,
		Overall:         rt.sim.Now(),
		OutputBytes:     rt.wl.TotalBytes,
		BatchFlushTimes: rt.flushTimes,
		FS:              rt.fs.Stats(),
		Messages:        rt.world.MessagesSent(),
		NetBytes:        rt.world.BytesSent(),
		Events:          rt.sim.Events(),
		IOTrace:         rt.fs.RequestTrace(),
	}
	if c := cfg.Causal; c != nil {
		rep.Attribution = c.CriticalPath(rep.Overall)
		rep.CausalTotals = c.Totals()
	}
	if rt.serve != nil {
		rep.Queries = rt.serveQueryStats()
		rt.serveEmitSpans(cfg.sink())
	}
	if rt.ad != nil {
		rep.Adaptive = rt.adaptReport()
	}
	masters := map[int]bool{}
	for _, g := range rt.groups {
		masters[g.masterRank] = true
	}
	for rank, t := range rt.timers {
		if t == nil {
			return nil, fmt.Errorf("core: rank %d never reported timings", rank)
		}
		pb := ProcBreakdown{Rank: rank, Phases: t.Buckets(), Total: t.Total()}
		if masters[rank] {
			rep.Masters = append(rep.Masters, pb)
			if rank == 0 {
				rep.Master = pb
			}
		} else {
			rep.Workers = append(rep.Workers, pb)
		}
	}
	rt.recordMetrics(rep)
	n := des.Time(len(rep.Workers))
	for _, w := range rep.Workers {
		for p := 0; p < int(NumPhases); p++ {
			rep.WorkerAvg.Phases[p] += w.Phases[p]
		}
		rep.WorkerAvg.Total += w.Total
	}
	if n > 0 {
		for p := 0; p < int(NumPhases); p++ {
			rep.WorkerAvg.Phases[p] /= n
		}
		rep.WorkerAvg.Total /= n
	}

	f := rt.fs.Lookup(outputFile)
	if f == nil {
		return nil, fmt.Errorf("core: output file was never created")
	}
	if rb := rt.rb; rb != nil {
		rep.ReadbackReads = rb.reads
		rep.ReadbackExtents = rb.extents
		rep.ReadbackBytes = rb.bytes
		rep.ReadbackMismatches = rb.mismatches
		if rb.mismatches > 0 {
			return rep, fmt.Errorf("core: readback verification failed: %d of %d extents mismatched (%w)",
				rb.mismatches, rb.extents, rb.firstErr)
		}
	}
	rep.FileCoverage = f.Coverage()
	rep.OverlappedBytes = f.OverlappedBytes()
	// A resumed run only rewrites queries from ResumeFromQuery on.
	expected := rt.wl.TotalBytes - rt.wl.Queries[cfg.ResumeFromQuery].Region
	if rep.FileCoverage < expected {
		return rep, fmt.Errorf("core: file coverage %d != expected bytes %d",
			rep.FileCoverage, expected)
	}
	// Data-sieving writes read-modify-write whole windows, so they overlap
	// by construction — and without locking (PVFS2 has none, §3.1) they are
	// unsafe under concurrent writers. The report carries the overlap count
	// instead of failing; this is exactly why ROMIO disables sieved writes
	// on PVFS2.
	sieving := cfg.indMethod() == romio.DataSieve &&
		(cfg.Strategy.WorkerWriting() && rt.ad == nil || rt.adaptWorkerWrites())
	if !sieving {
		if rep.OverlappedBytes != 0 {
			return rep, fmt.Errorf("core: %d bytes written more than once", rep.OverlappedBytes)
		}
		if cfg.CaptureData {
			if err := rt.verifyImage(f); err != nil {
				return rep, err
			}
			rep.Verified = true
		}
	}
	return rep, nil
}

// recordMetrics folds the run's end-of-run aggregates into the registry —
// kernel/network totals, per-rank phase durations and message counts, and
// per-server load — then snapshots the whole registry (including the pvfs
// per-request streams recorded during the run) into the report. Iteration
// is in fixed rank/server/phase order, so the snapshot is deterministic.
func (rt *runtime) recordMetrics(rep *Report) {
	m := rt.metrics
	m.Add("des.events", int64(rep.Events))
	m.Add("mpi.messages", int64(rep.Messages))
	m.Add("mpi.bytes", int64(rep.NetBytes))
	m.Set("run.overall_s", rep.Overall.Seconds())
	for rank, t := range rt.timers {
		b := t.Buckets()
		for p := Phase(0); p < NumPhases; p++ {
			m.ObserveTime("phase."+p.String(), b[p])
		}
		r := rt.world.Rank(rank)
		m.Observe("mpi.rank_messages", float64(r.MessagesSent()))
		m.Observe("mpi.rank_bytes", float64(r.BytesSent()))
	}
	for _, s := range rep.FS.Servers {
		m.Observe("pvfs.server_bytes", float64(s.BytesWritten))
		m.ObserveTime("pvfs.server_queue_wait", s.QueueWait)
	}
	if rt.serve != nil {
		rt.serveRecordMetrics()
	}
	if ad := rt.ad; ad != nil {
		m.Set("adapt.epochs", float64(ad.ctrl.EpochID()))
		if ad.ctrl.Converged() {
			m.Set("adapt.converged", 1)
		} else {
			m.Set("adapt.converged", 0)
		}
	}
	if rb := rt.rb; rb != nil {
		m.Add("readback.reads", rb.reads)
		m.Add("readback.extents", rb.extents)
		m.Add("readback.bytes", rb.bytes)
		m.Add("readback.mismatches", rb.mismatches)
	}
	if tel := rt.cfg.Telemetry; tel != nil {
		// Seal the series at the run's end, evaluate the alert rules over
		// the window boundaries (fire edges also trigger the flight
		// recorder), and snapshot the dumps. All inputs are virtual-time
		// facts, so the outputs are as deterministic as the report itself.
		m.FreezeWindows(rep.Overall)
		rep.Windows = m.Windows()
		if eng, err := tel.NewEngine(); err == nil && eng != nil {
			rep.Alerts = eng.Evaluate(rep.Windows, rt.cfg.sink(), rt.flight)
		}
		rep.FlightDumps = rt.flight.Dumps()
	}
	rep.Metrics = m.Snapshot()
}

// verifyImage checks every result's bytes against the workload's
// deterministic content — the cross-strategy file-image invariant.
func (rt *runtime) verifyImage(f *pvfs.File) error {
	for q := rt.cfg.ResumeFromQuery; q < len(rt.wl.Queries); q++ {
		for _, r := range rt.wl.Queries[q].Results {
			want := rt.wl.ResultData(q, r.Index, r.Size)
			got := f.ReadBack(r.Offset, r.Size)
			if !bytes.Equal(got, want) {
				return fmt.Errorf("core: query %d result %d content mismatch at offset %d",
					q, r.Index, r.Offset)
			}
		}
	}
	return nil
}

// PhaseTable renders the worker-average phase decomposition (the quantity
// the paper's per-phase figures plot) plus the master's, as a table.
func (rep *Report) PhaseTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("%s %s, %d procs, speed %g — phase breakdown (seconds)",
			rep.Strategy, syncLabel(rep.QuerySync), rep.Procs, rep.ComputeSpeed),
		"process", "setup", "datadist", "compute", "merge", "gather", "io", "sync", "other", "total")
	row := func(name string, pb ProcBreakdown) {
		t.AddRowf(name,
			pb.Phases[PhaseSetup].Seconds(), pb.Phases[PhaseDataDist].Seconds(),
			pb.Phases[PhaseCompute].Seconds(), pb.Phases[PhaseMerge].Seconds(),
			pb.Phases[PhaseGather].Seconds(), pb.Phases[PhaseIO].Seconds(),
			pb.Phases[PhaseSync].Seconds(), pb.Phases[PhaseOther].Seconds(),
			pb.Total.Seconds())
	}
	row("master", rep.Master)
	row("worker-avg", rep.WorkerAvg)
	return t
}

func syncLabel(sync bool) string {
	if sync {
		return "sync"
	}
	return "no-sync"
}
