package core

// ScaleConfig is the rank-scaling study configuration: procs total
// processes over a workload whose task count stays bounded (16 queries ×
// 256 fragments = 4096 tasks), so beyond a few thousand ranks the run's
// cost is dominated by per-rank protocol traffic — the setup broadcast,
// task request/denial handshakes, per-batch offset distribution, the final
// gather — rather than by search work. That is exactly the regime the FSM
// worker engine targets: a parked worker is one pooled struct instead of a
// goroutine stack, so the 100k-rank cell fits in a laptop-sized heap (see
// BenchmarkScaleWorkers and the README's scale-limits section).
//
// The result volume is scaled down from the paper workload so the offset
// lists stay small; everything else (strategy, machine models, per-query
// flush+sync) matches DefaultConfig.
func ScaleConfig(procs int) Config {
	cfg := DefaultConfig()
	cfg.Procs = procs
	cfg.Workload.NumQueries = 16
	cfg.Workload.NumFragments = 256
	cfg.Workload.MinResults = 200
	cfg.Workload.MaxResults = 400
	return cfg
}
