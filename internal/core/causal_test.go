package core

import (
	"fmt"
	"testing"

	"s3asim/internal/causal"
	"s3asim/internal/fault"
)

// causalConfig is tinyConfig scaled up slightly so every phase (including
// collective rounds and multiple flush batches) actually occurs.
func causalConfig(s Strategy, sync bool) Config {
	cfg := tinyConfig()
	cfg.Procs = 8
	cfg.Workload.NumQueries = 6
	cfg.Workload.NumFragments = 24
	cfg.Strategy = s
	cfg.QuerySync = sync
	return cfg
}

// TestAttributionConservation is the property test for the conservation
// invariant: for every strategy, with and without query-sync, with and
// without a non-empty fault plan, the critical-path categories sum exactly
// to the elapsed virtual time and the path steps tile [0, Overall).
func TestAttributionConservation(t *testing.T) {
	plans := map[string]string{
		"":      "",
		"fault": "crash@40ms:rank=3,restart=200ms; slow@10ms:rank=5,factor=2,for=300ms; degrade@5ms:server=1,factor=3,for=100ms",
	}
	for planName, spec := range plans {
		for _, s := range Strategies {
			for _, sync := range []bool{false, true} {
				name := fmt.Sprintf("%s/sync=%v/%s", s, sync, planName)
				t.Run(name, func(t *testing.T) {
					cfg := causalConfig(s, sync)
					if spec != "" {
						plan, err := fault.Parse(spec)
						if err != nil {
							t.Fatal(err)
						}
						cfg.FaultPlan = plan
					}
					rec := causal.NewRecorder()
					cfg.Causal = rec
					rep := mustRun(t, cfg)
					att := rep.Attribution
					if att == nil {
						t.Fatal("no attribution despite Config.Causal")
					}
					if err := att.Check(); err != nil {
						t.Fatal(err)
					}
					if att.Total != rep.Overall {
						t.Fatalf("attributed %v, overall %v", att.Total, rep.Overall)
					}
					if att.Truncated {
						t.Fatal("walk hit the step safety bound")
					}
					if att.ByCat[causal.CatCompute] == 0 {
						t.Fatalf("no compute on the critical path: %v", att)
					}
					// The per-window view must partition the whole path.
					mid := rep.Overall / 3
					var sum causal.Breakdown
					sum.Add(att.Between(0, mid))
					sum.Add(att.Between(mid, rep.Overall))
					if sum != att.ByCat {
						t.Fatalf("Between windows do not partition the path:\n%v\nvs\n%v", sum, att.ByCat)
					}
				})
			}
		}
	}
}

// TestCausalRecorderDoesNotPerturbRun pins the tentpole's safety property:
// attaching a recorder changes nothing observable about the simulation —
// same event count, same overall time, same traffic.
func TestCausalRecorderDoesNotPerturbRun(t *testing.T) {
	for _, s := range Strategies {
		cfg := causalConfig(s, true)
		base := mustRun(t, cfg)

		cfg = causalConfig(s, true)
		rec := causal.NewRecorder()
		rec.SetCaptureFlows(true)
		cfg.Causal = rec
		traced := mustRun(t, cfg)

		if base.Overall != traced.Overall || base.Events != traced.Events ||
			base.Messages != traced.Messages || base.NetBytes != traced.NetBytes {
			t.Fatalf("%s: recorder perturbed the run: overall %v vs %v, events %d vs %d, msgs %d vs %d",
				s, base.Overall, traced.Overall, base.Events, traced.Events, base.Messages, traced.Messages)
		}
		if len(rec.Flows()) == 0 {
			t.Fatalf("%s: no flows captured", s)
		}
	}
}

// TestWWCollSyncWaitDominates mechanically confirms the paper's explanation
// of the query-sync penalty: under WW-Coll, enabling query synchronization
// must attribute strictly more critical-path time to collective/sync wait
// than the unsynchronized run.
func TestWWCollSyncWaitDominates(t *testing.T) {
	run := func(sync bool) *causal.Attribution {
		cfg := causalConfig(WWColl, sync)
		cfg.Causal = causal.NewRecorder()
		return mustRun(t, cfg).Attribution
	}
	noSync := run(false)
	withSync := run(true)
	if withSync.ByCat[causal.CatSyncWait] <= noSync.ByCat[causal.CatSyncWait] {
		t.Fatalf("query-sync did not increase critical-path sync wait: sync=%v nosync=%v",
			withSync.ByCat[causal.CatSyncWait], noSync.ByCat[causal.CatSyncWait])
	}
}

// TestAttributionDeterministic pins that two identical runs produce
// identical attributions (category sums, path steps, end proc).
func TestAttributionDeterministic(t *testing.T) {
	run := func() *causal.Attribution {
		cfg := causalConfig(WWList, true)
		cfg.Causal = causal.NewRecorder()
		return mustRun(t, cfg).Attribution
	}
	a, b := run(), run()
	if a.Total != b.Total || a.ByCat != b.ByCat || a.EndProc != b.EndProc || len(a.Steps) != len(b.Steps) {
		t.Fatalf("attribution not deterministic:\n%v\nvs\n%v", a, b)
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
}
