package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s3asim/internal/des"
	"s3asim/internal/obs"
	"s3asim/internal/trace"
)

var updateServeGolden = flag.Bool("update-serve-golden", false,
	"rewrite the serve Perfetto golden file")

// serveTraceRun executes a tiny deterministic serve run with a tracer
// attached and returns the recorded timeline (engine phases plus the
// post-run per-query lifecycle tracks).
func serveTraceRun(t *testing.T) []trace.Event {
	t.Helper()
	cfg := serveConfig(des.Millisecond)
	cfg.Strategy = WWColl
	cfg.QuerySync = true
	tr := trace.New()
	cfg.Tracer = tr
	mustRun(t, cfg)
	return tr.Events()
}

// A serving run's Perfetto export must carry one thread per query in
// addition to the rank threads, with the five lifecycle slices and the
// completion marker — byte-stable against the committed golden file.
func TestServePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, serveTraceRun(t)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "serve_perfetto_golden.json")
	if *updateServeGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/core -run ServePerfettoGolden -update-serve-golden` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("serve perfetto export drifted from golden file (%d vs %d bytes)",
			buf.Len(), len(want))
	}
}

// Schema contract for the per-query tracks: every query gets a thread_name
// metadata record, its lifecycle slices are well-formed "X" events with
// non-negative durations, and the completion marker is a thread-scoped
// instant.
func TestServePerfettoQueryTracksSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, serveTraceRun(t)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	queryThreads := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			args := ev["args"].(map[string]any)
			if name, _ := args["name"].(string); strings.HasPrefix(name, "query") {
				queryThreads[ev["tid"].(float64)] = true
			}
		}
	}
	if len(queryThreads) != 6 {
		t.Fatalf("got %d query threads, want 6", len(queryThreads))
	}
	slices := map[string]int{}
	instants := 0
	for _, ev := range doc.TraceEvents {
		tid, _ := ev["tid"].(float64)
		if !queryThreads[tid] {
			continue
		}
		switch ev["ph"] {
		case "X":
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("query slice with bad dur: %v", ev)
			}
			slices[ev["name"].(string)]++
		case "i":
			if ev["s"] != "t" {
				t.Fatalf("completion marker not thread-scoped: %v", ev)
			}
			instants++
		case "M":
		default:
			t.Fatalf("unexpected event on query thread: %v", ev)
		}
	}
	if instants != 6 {
		t.Fatalf("got %d completion markers, want 6", instants)
	}
	// Every query executes and flushes; Admission/Queued/Write Wait spans
	// may be zero-length (skipped) for some queries but must appear for at
	// least one under a 1ms arrival gap.
	for _, name := range []string{"Execute", "Flush"} {
		if slices[name] != 6 {
			t.Fatalf("span %q on %d of 6 queries", name, slices[name])
		}
	}
	if slices["Queued"] == 0 && slices["Admission"] == 0 && slices["Write Wait"] == 0 {
		t.Fatal("no queue/admission spans recorded at all")
	}
}

// The serve lifecycle states must each get a distinct legend rune alongside
// the engine's phase states (the historical first-letter collapse).
func TestServeStateRunesUnique(t *testing.T) {
	events := serveTraceRun(t)
	runes := trace.StateRunes(events)
	names := map[string]bool{}
	for _, e := range events {
		if !e.Point {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"Admission", "Queued", "Execute", "Write Wait", "Flush"} {
		if !names[want] {
			// Zero-length spans are legitimately skipped; require the core
			// execution states at minimum.
			if want == "Execute" || want == "Flush" || want == "Queued" {
				t.Fatalf("state %q missing from serve timeline", want)
			}
			continue
		}
		if _, ok := runes[want]; !ok {
			t.Fatalf("state %q has no legend rune", want)
		}
	}
	seen := map[byte]string{}
	for name, r := range runes {
		if r == '?' {
			continue
		}
		if prev, dup := seen[r]; dup {
			t.Fatalf("states %q and %q share rune %q", prev, name, r)
		}
		seen[r] = name
	}
}
