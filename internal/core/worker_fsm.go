package core

import (
	"s3asim/internal/causal"
	"s3asim/internal/des"
	"s3asim/internal/mpi"
	"s3asim/internal/pvfs"
	"s3asim/internal/romio"
)

// workerFSM is the worker engine (Algorithm 2, worker.go) as a resumable
// state machine for des.SpawnFSM: a blocked worker is this one struct
// instead of a parked goroutine stack, which is what makes 100k-worker
// configurations affordable. The control flow is worker.go's, flattened
// into explicit program counters — the main loop (pc), and one counter per
// nested sub-machine: the drain loop (drainPC), a batch write (writePC),
// and a task (taskPC). Every blocking composite runs through the same op
// structs the goroutine path's wrappers use, so both engines produce the
// identical event schedule; the cross-model pin in worker_fsm_test.go and
// the golden fingerprints hold either engine to it.
type workerFSM struct {
	rt *runtime
	g  *group
	r  *mpi.Rank
	pt *PhaseTimer
	st *workerState

	pc      uint8
	drainPC uint8
	writePC uint8
	taskPC  uint8

	progress      bool
	drainHandled  bool
	tracksBatches bool

	// Scratch ops, one of each kind: the worker runs at most one blocking
	// composite at a time, so each op is reused across the whole run.
	bcast   mpi.BcastOp
	barrier mpi.BarrierOp
	wait    mpi.WaitOp
	waitAny mpi.WaitAnyOp
	waitAll mpi.WaitAllOp
	issue   pvfs.IssueOp
	wsegs   romio.WriteSegsOp
	coll    romio.CollWriteOp
	rsegs   romio.ReadSegsOp
	rcoll   romio.CollReadOp

	waitSet  []*mpi.Request // scratch for waitAny arming
	replyReq *mpi.Request

	rbLeft int  // in-run readback rounds remaining for this batch
	rbColl bool // current readback rounds are collective

	t          task
	taskBytes  int64
	taskCount  int
	om         offsetMsg
	segs       []pvfs.Segment
	sleepStart des.Time // causal start of an in-flight compute/merge sleep
}

// Main program counters (workerFSM.pc), in worker.go order.
const (
	wfStart       uint8 = iota // first step: timer setup, config broadcast
	wfBcast                    // setup broadcast in flight
	wfLoadDB                   // initial database read in flight
	wfLoopHead                 // top of the main loop: done()/iteration start
	wfSendReq                  // work-request send's wait in flight
	wfReplyCheck               // reply posted: dispatch on its completion
	wfReplyDrain               // drain running while awaiting the reply
	wfReplyWait                // parked on reply (and sync token, MW+sync)
	wfTask                     // task sub-machine running
	wfRetire                   // retire completed sends, then tail drain
	wfLoopDrain                // tail drain running
	wfIdleAny                  // idle: parked on the next master notification
	wfIdleAll                  // idle: draining the last score sends
	wfFinalGather              // final WaitAll over in-flight sends
	wfFinalSync                // end-of-application barrier
)

// Drain sub-machine counters (workerDrainIO in worker.go).
const (
	drHead    uint8 = iota // check for an arrived offset list
	drWrite                // batch write sub-machine running
	drOffSync              // per-batch barrier after an offset write
	drTokHead              // check for an arrived sync token
	drTokSync              // per-batch barrier after a token
)

// Batch-write sub-machine counters (workerWrite in worker.go).
const (
	wwFormat    uint8 = iota // result-formatting sleep in flight
	wwRoute                  // dispatch on strategy
	wwCollEntry              // two-phase gather barrier
	wwColl                   // collective write in flight
	wwSegs                   // individual noncontiguous write in flight
	wwSync                   // post-write file sync in flight
	wwRead                   // in-run readback: individual read in flight
	wwRColl                  // in-run readback: collective read round in flight
)

// Task sub-machine counters (workerTask in worker.go).
const (
	tkGate      uint8 = iota // WW-Coll: check the batch-completion gate
	tkGateWait               // WW-Coll: parked awaiting an offset list
	tkGateDrain              // WW-Coll: drain after the gate wait
	tkReread                 // query-seg overflow re-read in flight
	tkCompute                // search compute sleep in flight
	tkMerge                  // local merge sleep in flight
)

// Step advances the worker to its next park. It is the Machine contract's
// entry point: called once per resumption from the kernel run loop.
func (m *workerFSM) Step(p *des.Proc) {
	for m.step() {
	}
}

// step runs the current main state; false means the worker parked (or
// finished at wfFinalSync).
func (m *workerFSM) step() bool {
	rt, r, g := m.rt, m.r, m.g
	cfg := rt.cfg
	boss := g.masterRank
	switch m.pc {
	case wfStart:
		m.pt = NewPhaseTimer(rt.sim)
		m.pt.Trace(cfg.sink(), r.Proc().Name())
		rt.timers[r.Rank()] = m.pt

		// Step 1: receive input variables (broadcast from the group master).
		m.pt.Switch(PhaseSetup)
		m.bcast.Init(g.team, r, boss, configMsgBytes, nil)
		m.pc = wfBcast
	case wfBcast:
		if !m.bcast.Step() {
			return false
		}
		// Input-I/O extension: load the sequence database.
		if m.armLoadDatabase() {
			m.pc = wfLoadDB
			return true
		}
		m.initState()
		m.pc = wfLoopHead
	case wfLoadDB:
		if !m.issue.Step() {
			return false
		}
		m.initState()
		m.pc = wfLoopHead
	case wfLoopHead:
		if m.done() {
			m.pt.Switch(PhaseGather)
			m.waitAll.Init(r, m.st.pending)
			m.pc = wfFinalGather
			return true
		}
		m.progress = false
		if m.st.noMore {
			m.pc = wfRetire
			return true
		}
		// Steps 3–4: request and receive work. The reply receive is
		// blocking (Algorithm 2 step 4), except that MW sync tokens are
		// honored while waiting so a request-blocked worker joins the
		// post-write barrier without first taking another task.
		m.pt.Switch(PhaseDataDist)
		m.wait.Init(r, r.Isend(boss, tagWorkRequest, requestMsgBytes, nil))
		m.pc = wfSendReq
	case wfSendReq:
		if !m.wait.Step() {
			return false
		}
		m.replyReq = r.Irecv(boss, tagWorkReply)
		m.pc = wfReplyCheck
	case wfReplyCheck:
		if m.replyReq.Done() {
			reply := m.replyReq.Message()
			if reply.Payload == nil {
				m.st.noMore = true
				m.progress = true
				m.pc = wfRetire
				return true
			}
			m.startTask(reply.Payload.(task))
			m.pc = wfTask
			return true
		}
		// Serving masters hold work requests across arrival gaps, so a
		// request-blocked worker must also service offset lists
		// (worker.go's reply-wait loop); adaptive runs drain here too so an
		// MW batch's post-write notification is honored before the next task.
		if m.st.tokReq != nil || m.rt.serve != nil || m.rt.ad != nil {
			m.startDrain()
			m.pc = wfReplyDrain
			return true
		}
		m.armReplyWait()
		m.pc = wfReplyWait
	case wfReplyDrain:
		if !m.stepDrain() {
			return false
		}
		if m.drainHandled {
			m.pt.Switch(PhaseDataDist)
			m.pc = wfReplyCheck
			return true
		}
		m.armReplyWait()
		m.pc = wfReplyWait
	case wfReplyWait:
		if !m.waitAny.Step() {
			return false
		}
		m.pc = wfReplyCheck
	case wfTask:
		if !m.stepTask() {
			return false
		}
		m.progress = true
		m.pc = wfRetire
	case wfRetire:
		// Step 15: retire completed score sends.
		m.pt.Switch(PhaseGather)
		kept := m.st.pending[:0]
		for _, req := range m.st.pending {
			if !req.Done() {
				kept = append(kept, req)
			}
		}
		m.st.pending = kept
		// Steps 16–19: handle any offset lists (or sync tokens) that have
		// arrived, without blocking.
		m.startDrain()
		m.pc = wfLoopDrain
	case wfLoopDrain:
		if !m.stepDrain() {
			return false
		}
		if m.drainHandled {
			m.progress = true
		}
		if !m.progress && !m.done() {
			m.armIdleWait()
			return true
		}
		m.pc = wfLoopHead
	case wfIdleAny:
		if !m.waitAny.Step() {
			return false
		}
		m.pc = wfLoopHead
	case wfIdleAll:
		if !m.waitAll.Step() {
			return false
		}
		m.st.pending = nil
		m.pc = wfLoopHead
	case wfFinalGather:
		if !m.waitAll.Step() {
			return false
		}
		// End-of-application synchronization.
		m.pt.Switch(PhaseSync)
		m.barrier.Init(rt.final, r)
		m.pc = wfFinalSync
	case wfFinalSync:
		if !m.barrier.Step() {
			return false
		}
		m.pt.Finish()
		return false // machine returns unparked: the worker is done
	}
	return true
}

// done is worker.go's termination predicate.
func (m *workerFSM) done() bool {
	st := m.st
	if !st.noMore || len(st.pending) > 0 {
		return false
	}
	return !m.tracksBatches || st.batchesHandled == len(m.g.batches)
}

// initState posts the long-lived receives, exactly as worker.go does after
// the database load.
func (m *workerFSM) initState() {
	cfg, r, boss := m.rt.cfg, m.r, m.g.masterRank
	m.st = &workerState{g: m.g, mergeAcc: make(map[int]int64)}
	// Adaptive workers always track offset lists: every batch sends one,
	// whichever strategy its controller picked (MW batches send empty lists).
	if m.rt.ad != nil || cfg.Strategy.WorkerWriting() {
		m.st.offReq = r.Irecv(boss, tagOffsets)
	} else if cfg.QuerySync {
		m.st.tokReq = r.Irecv(boss, tagSyncToken)
	}
	m.tracksBatches = m.st.offReq != nil || m.st.tokReq != nil
}

// armLoadDatabase starts the initial database read (workerLoadDatabase) and
// reports whether one is in flight.
func (m *workerFSM) armLoadDatabase() bool {
	cfg := m.rt.cfg
	if cfg.DatabaseBytes <= 0 {
		return false
	}
	m.pt.Switch(PhaseIO)
	if cfg.Segmentation == QuerySeg {
		n := cfg.DatabaseBytes
		if n > cfg.WorkerMemoryBytes {
			n = cfg.WorkerMemoryBytes
		}
		m.rt.dbFile.StartReadAt(&m.issue, m.r, 0, n)
		return true
	}
	share := cfg.DatabaseBytes / int64(m.rt.totalWorkers())
	if share <= 0 {
		return false
	}
	off := (share * int64(m.r.Rank())) % cfg.DatabaseBytes
	m.rt.dbFile.StartReadAt(&m.issue, m.r, off, share)
	return true
}

// armReplyWait parks the worker on the reply (plus the sync-token receive
// under MW+sync) — worker.go's workerWaitSet.
func (m *workerFSM) armReplyWait() {
	m.waitSet = append(m.waitSet[:0], m.replyReq)
	if m.st.tokReq != nil {
		m.waitSet = append(m.waitSet, m.st.tokReq)
	}
	if (m.rt.serve != nil || m.rt.ad != nil) && m.st.offReq != nil {
		m.waitSet = append(m.waitSet, m.st.offReq)
	}
	m.waitAny.Init(m.r, m.waitSet)
}

// armIdleWait blocks a worker with nothing left to compute until the next
// master notification arrives (workerIdleWait).
func (m *workerFSM) armIdleWait() {
	st := m.st
	switch {
	case st.offReq != nil:
		m.pt.Switch(PhaseDataDist)
		m.waitSet = append(m.waitSet[:0], st.offReq)
		m.waitAny.Init(m.r, m.waitSet)
		m.pc = wfIdleAny
	case st.tokReq != nil:
		m.pt.Switch(PhaseDataDist)
		m.waitSet = append(m.waitSet[:0], st.tokReq)
		m.waitAny.Init(m.r, m.waitSet)
		m.pc = wfIdleAny
	default:
		m.pt.Switch(PhaseGather)
		m.waitAll.Init(m.r, st.pending)
		m.pc = wfIdleAll
	}
}

// startDrain arms the drain sub-machine (workerDrainIO).
func (m *workerFSM) startDrain() {
	m.drainPC = drHead
	m.drainHandled = false
}

// stepDrain handles every already-arrived offset list or sync token,
// reposting the receive each time; m.drainHandled reports whether anything
// was handled. Returns false when the worker parked inside a handler.
func (m *workerFSM) stepDrain() bool {
	st, r := m.st, m.r
	boss := m.g.masterRank
	for {
		switch m.drainPC {
		case drHead:
			if st.offReq != nil && st.offReq.Done() {
				m.om = st.offReq.Message().Payload.(offsetMsg)
				st.offReq = r.Irecv(boss, tagOffsets)
				m.startWrite()
				m.drainPC = drWrite
				continue
			}
			m.drainPC = drTokHead
		case drWrite:
			if !m.stepWrite() {
				return false
			}
			st.batchesHandled++
			if m.rt.cfg.QuerySync {
				m.pt.Switch(PhaseSync)
				m.barrier.Init(m.g.querySyn, r)
				m.drainPC = drOffSync
				continue
			}
			m.drainHandled = true
			m.drainPC = drHead
		case drOffSync:
			if !m.barrier.Step() {
				return false
			}
			m.drainHandled = true
			m.drainPC = drHead
		case drTokHead:
			if st.tokReq != nil && st.tokReq.Done() {
				st.tokReq = r.Irecv(boss, tagSyncToken)
				m.pt.Switch(PhaseSync)
				m.barrier.Init(m.g.querySyn, r)
				m.drainPC = drTokSync
				continue
			}
			return true
		case drTokSync:
			if !m.barrier.Step() {
				return false
			}
			st.batchesHandled++
			m.drainHandled = true
			m.drainPC = drTokHead
		}
	}
}

// startWrite arms the batch-write sub-machine for the offset list in m.om
// (workerWrite).
func (m *workerFSM) startWrite() {
	cfg := m.rt.cfg
	if m.rt.ad != nil && m.om.Strat == MW {
		// The master already wrote this batch; the (empty) offset list only
		// tracks batch progress (stepWrite's route returns immediately).
		m.segs = nil
		m.writePC = wwRoute
		return
	}
	m.segs = m.rt.placementsToSegments(m.om.Placements)
	var segBytes int64
	for _, s := range m.segs {
		segBytes += s.Length
	}
	if segBytes > 0 {
		// Format this worker's share of the results before writing (under
		// WW strategies each worker serializes its own output).
		m.pt.Switch(PhaseIO)
		m.sleepStart = m.rt.sim.Now()
		m.r.Proc().Sleep(des.BytesOver(segBytes, cfg.FormatBandwidth))
		m.writePC = wwFormat
		return
	}
	m.writePC = wwRoute
}

// stepWrite drives the batch write; false means the worker parked.
func (m *workerFSM) stepWrite() bool {
	rt, r := m.rt, m.r
	cfg := rt.cfg
	for {
		switch m.writePC {
		case wwFormat:
			if r.Proc().Yielded() {
				return false
			}
			m.billMerge()
			m.writePC = wwRoute
		case wwRoute:
			strat := rt.batchStrat(m.om)
			if rt.ad != nil && strat == MW {
				return true
			}
			if strat == WWColl {
				// Collective write: every group worker participates, with or
				// without data. For two-phase, waiting for the last worker to
				// become ready is billed to data distribution (paper §4); the
				// collective operation itself is I/O.
				if cfg.CollMethod == romio.TwoPhase {
					m.pt.Switch(PhaseDataDist)
					m.barrier.Init(m.g.collEntry, r)
					m.writePC = wwCollEntry
					continue
				}
				m.startColl()
				continue
			}
			if len(m.segs) == 0 {
				return true
			}
			// Individual noncontiguous write (POSIX or list I/O per hints;
			// adaptive batches carry their hint vector in the offset message).
			m.pt.Switch(PhaseIO)
			if rt.ad != nil {
				m.wsegs.InitHinted(rt.file, r, m.segs, m.om.Hints)
			} else {
				m.wsegs.Init(rt.file, r, m.segs)
			}
			m.writePC = wwSegs
		case wwCollEntry:
			if !m.barrier.Step() {
				return false
			}
			m.startColl()
		case wwColl:
			if !m.coll.Step() {
				return false
			}
			if cfg.SyncEveryWrite {
				rt.file.StartSync(&m.issue, r)
				m.writePC = wwSync
				continue
			}
			rt.stampFlush(r.Proc().Name(), m.g, m.om.Batch)
			if m.armReadback(true) {
				continue
			}
			return true
		case wwSegs:
			if !m.wsegs.Step() {
				return false
			}
			if cfg.SyncEveryWrite {
				rt.file.StartSync(&m.issue, r)
				m.writePC = wwSync
				continue
			}
			rt.stampFlush(r.Proc().Name(), m.g, m.om.Batch)
			if m.armReadback(false) {
				continue
			}
			return true
		case wwSync:
			if !m.issue.Step() {
				return false
			}
			rt.stampFlush(r.Proc().Name(), m.g, m.om.Batch)
			if m.armReadback(rt.batchStrat(m.om) == WWColl) {
				continue
			}
			return true
		case wwRead:
			if !m.rsegs.Step() {
				return false
			}
			rt.rbVerify(r.Proc().Name(), m.segs, m.rsegs.Data())
			m.rbLeft--
			if m.rbLeft > 0 {
				m.startReadback()
				continue
			}
			return true
		case wwRColl:
			if !m.rcoll.Step() {
				return false
			}
			rt.rbVerify(r.Proc().Name(), m.segs, m.rcoll.Data())
			m.rbLeft--
			if m.rbLeft > 0 {
				m.startReadback()
				continue
			}
			return true
		}
	}
}

// startColl arms the collective write round.
func (m *workerFSM) startColl() {
	m.pt.Switch(PhaseIO)
	if m.rt.ad != nil {
		m.coll.InitHinted(m.g.collGroup, m.r, m.segs, m.om.Hints)
	} else {
		m.coll.Init(m.g.collGroup, m.r, m.segs)
	}
	m.writePC = wwColl
}

// armReadback arms the first in-run verification read after a batch write
// (workerWrite's rbInRunWorker, resumable). False means readback is off or
// there is nothing to read individually.
func (m *workerFSM) armReadback(collective bool) bool {
	rb := m.rt.rb
	if rb == nil || rb.conf.InRunReads == 0 {
		return false
	}
	m.rbColl = collective && rb.conf.Collective
	if !m.rbColl && len(m.segs) == 0 {
		return false
	}
	m.rbLeft = rb.conf.InRunReads
	m.startReadback()
	return true
}

// startReadback arms one in-run readback round.
func (m *workerFSM) startReadback() {
	m.pt.Switch(PhaseIO)
	if m.rbColl {
		m.rcoll.Init(m.g.collGroup, m.r, m.segs)
		m.writePC = wwRColl
		return
	}
	m.rsegs.Init(m.rt.file, m.r, m.rt.rb.conf.Method, m.segs)
	m.writePC = wwRead
}

// startTask arms the task sub-machine for t (workerTask).
func (m *workerFSM) startTask(t task) {
	m.t = t
	m.taskBytes = m.rt.wl.TaskBytes(t.Q, t.F)
	m.taskCount = m.rt.wl.TaskCount(t.Q, t.F)
	m.taskPC = tkGate
}

// stepTask models one (query, fragment) search; false means the worker
// parked.
func (m *workerFSM) stepTask() bool {
	rt, r := m.rt, m.r
	cfg := rt.cfg
	for {
		switch m.taskPC {
		case tkGate:
			// Under WW-Coll a worker cannot begin an upcoming query until the
			// collective I/O for all earlier batches has completed (§2.3).
			if rt.taskStrat(m.t) == WWColl {
				// Serving runs flush out of order; the master sends the gate
				// directly (task.Gate, see workerTask).
				need := (m.t.Q - m.g.loQ) / cfg.QueriesPerWrite
				if rt.serve != nil {
					need = m.t.Gate
				}
				if m.st.batchesHandled < need {
					m.pt.Switch(PhaseDataDist)
					m.waitSet = append(m.waitSet[:0], m.st.offReq)
					m.waitAny.Init(r, m.waitSet)
					m.taskPC = tkGateWait
					continue
				}
			}
			// Query segmentation with a database larger than worker memory
			// must re-read the overflow for every query (§1's repeated I/O).
			if cfg.Segmentation == QuerySeg && cfg.DatabaseBytes > cfg.WorkerMemoryBytes {
				m.pt.Switch(PhaseIO)
				rt.dbFile.StartReadAt(&m.issue, r,
					cfg.WorkerMemoryBytes, cfg.DatabaseBytes-cfg.WorkerMemoryBytes)
				m.taskPC = tkReread
				continue
			}
			m.armCompute()
		case tkGateWait:
			if !m.waitAny.Step() {
				return false
			}
			m.startDrain()
			m.taskPC = tkGateDrain
		case tkGateDrain:
			if !m.stepDrain() {
				return false
			}
			m.taskPC = tkGate
		case tkReread:
			if !m.issue.Step() {
				return false
			}
			m.armCompute()
		case tkCompute:
			if r.Proc().Yielded() {
				return false
			}
			if c := r.World().Causal(); c != nil {
				c.Busy(r.Proc().Name(), causal.CatCompute, m.sleepStart, r.Now())
			}
			// Step 8: merge with previous results for this query.
			if rt.taskStrat(m.t).WorkerWriting() {
				m.pt.Switch(PhaseMerge)
				m.sleepStart = rt.sim.Now()
				r.Proc().Sleep(cfg.mergeTime(m.st.mergeAcc[m.t.Q], m.taskBytes))
				m.taskPC = tkMerge
				continue
			}
			m.taskSend()
			return true
		case tkMerge:
			if r.Proc().Yielded() {
				return false
			}
			m.billMerge()
			m.st.mergeAcc[m.t.Q] += m.taskBytes
			m.taskSend()
			return true
		}
	}
}

// armCompute starts the search-compute sleep (step 6).
func (m *workerFSM) armCompute() {
	cfg := m.rt.cfg
	m.pt.Switch(PhaseCompute)
	m.sleepStart = m.rt.sim.Now()
	m.r.Proc().Sleep(cfg.Compute.TaskTime(m.taskBytes, cfg.ComputeSpeed))
	m.taskPC = tkCompute
}

// taskSend ships ordered scores (and the result data itself under MW) —
// step 10, a nonblocking send retired later.
func (m *workerFSM) taskSend() {
	cfg := m.rt.cfg
	m.pt.Switch(PhaseGather)
	wire := int64(m.taskCount) * cfg.ScoreEntryBytes
	if m.rt.taskStrat(m.t) == MW {
		wire += m.taskBytes
	}
	m.st.pending = append(m.st.pending,
		m.r.Isend(m.g.masterRank, tagScores, wire,
			scoreMsg{Task: m.t, Count: m.taskCount, ResultBytes: m.taskBytes}))
}

// billMerge records a completed merge/format sleep for causal attribution,
// mirroring runtime.mergeSleep.
func (m *workerFSM) billMerge() {
	if c := m.rt.cfg.Causal; c != nil {
		c.Busy(m.r.Proc().Name(), causal.CatMerge, m.sleepStart, m.rt.sim.Now())
	}
}
